// Command profilegen generates heterogeneity profiles from the families
// used across the paper and this repository's experiments, emitting either
// a comma-separated list (for piping into hetero/cepsim) or JSON.
//
// Example:
//
//	profilegen -kind harmonic -n 8
//	profilegen -kind twopoint -n 16 -mean 0.5 -offset 0.42 -json
//	hetero hecr -profile "$(profilegen -kind linear -n 8)"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hetero/internal/profile"
	"hetero/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profilegen", flag.ContinueOnError)
	kind := fs.String("kind", "linear", "family: linear | harmonic | zipf | homogeneous | geometric | random | spread | twopoint")
	n := fs.Int("n", 8, "cluster size")
	rho := fs.Float64("rho", 0.5, "speed for -kind homogeneous")
	ratio := fs.Float64("ratio", 0.7, "ratio for -kind geometric")
	zipfS := fs.Float64("s", 1.5, "exponent for -kind zipf")
	mean := fs.Float64("mean", 0.5, "mean for -kind spread/twopoint")
	frac := fs.Float64("frac", 0.8, "spread fraction for -kind spread")
	offset := fs.Float64("offset", 0.3, "offset d for -kind twopoint")
	seed := fs.Uint64("seed", 1, "RNG seed for random families")
	asJSON := fs.Bool("json", false, "emit JSON instead of a comma list")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		p   profile.Profile
		err error
	)
	switch *kind {
	case "linear":
		p = profile.Linear(*n)
	case "harmonic":
		p = profile.Harmonic(*n)
	case "zipf":
		p = profile.Zipf(*n, *zipfS)
	case "homogeneous":
		p = profile.Homogeneous(*n, *rho)
	case "geometric":
		p = profile.Geometric(*n, *ratio)
	case "random":
		p = profile.RandomNormalized(stats.NewRNG(*seed), *n)
	case "spread":
		p, err = profile.SpreadAround(stats.NewRNG(*seed), *n, *mean, *frac)
	case "twopoint":
		p, err = profile.TwoPoint(*n, *mean, *offset)
	default:
		return fmt.Errorf("unknown profile kind %q", *kind)
	}
	if err != nil {
		return err
	}

	if *asJSON {
		data, err := json.Marshal(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	parts := make([]string, len(p))
	for i, r := range p {
		parts[i] = fmt.Sprintf("%g", r)
	}
	fmt.Fprintln(out, strings.Join(parts, ","))
	return nil
}
