package main

import (
	"strings"
	"testing"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return strings.TrimSpace(b.String())
}

func TestKinds(t *testing.T) {
	cases := []struct {
		args   []string
		values int
	}{
		{[]string{"-kind", "linear", "-n", "8"}, 8},
		{[]string{"-kind", "harmonic", "-n", "4"}, 4},
		{[]string{"-kind", "homogeneous", "-n", "3", "-rho", "0.5"}, 3},
		{[]string{"-kind", "geometric", "-n", "5", "-ratio", "0.5"}, 5},
		{[]string{"-kind", "random", "-n", "6", "-seed", "9"}, 6},
		{[]string{"-kind", "spread", "-n", "7", "-mean", "0.4"}, 7},
		{[]string{"-kind", "twopoint", "-n", "4", "-mean", "0.5", "-offset", "0.3"}, 4},
	}
	for _, tc := range cases {
		out := gen(t, tc.args...)
		if got := len(strings.Split(out, ",")); got != tc.values {
			t.Fatalf("%v -> %d values (%q)", tc.args, got, out)
		}
	}
}

func TestLinearMatchesPaper(t *testing.T) {
	out := gen(t, "-kind", "linear", "-n", "4")
	if out != "1,0.75,0.5,0.25" {
		t.Fatalf("linear(4) = %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	out := gen(t, "-kind", "harmonic", "-n", "2", "-json")
	if out != "[1,0.5]" {
		t.Fatalf("json = %q", out)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := gen(t, "-kind", "random", "-n", "5", "-seed", "11")
	b := gen(t, "-kind", "random", "-n", "5", "-seed", "11")
	c := gen(t, "-kind", "random", "-n", "5", "-seed", "12")
	if a != b {
		t.Fatal("same seed differed")
	}
	if a == c {
		t.Fatal("different seeds collided")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-kind", "twopoint", "-mean", "0.5", "-offset", "0.6"},
		{"-kind", "spread", "-mean", "0", "-n", "3"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

func TestZipfKind(t *testing.T) {
	out := gen(t, "-kind", "zipf", "-n", "4", "-s", "1")
	if out != "1,0.5,0.3333333333333333,0.25" {
		t.Fatalf("zipf(4, s=1) = %q", out)
	}
}
