package main

import "testing"

func TestBuildReportQuick(t *testing.T) {
	rep, err := buildReport(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead.PlainNsPerOp <= 0 || rep.Overhead.FaultyNsPerOp <= 0 {
		t.Fatalf("non-positive overhead timings: %+v", rep.Overhead)
	}
	if rep.Overhead.Overhead <= 0 {
		t.Fatalf("non-positive overhead ratio: %+v", rep.Overhead)
	}
	if rep.Replan.NsPerOp <= 0 || rep.Replan.Rounds <= 0 || rep.Replan.Faults <= 0 || rep.Replan.Decisions <= 0 {
		t.Fatalf("implausible replan row: %+v", rep.Replan)
	}
}
