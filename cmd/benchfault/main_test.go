package main

import "testing"

func TestBuildReportQuick(t *testing.T) {
	rep, err := buildReport(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead.PlainNsPerOp <= 0 || rep.Overhead.FaultyNsPerOp <= 0 {
		t.Fatalf("non-positive overhead timings: %+v", rep.Overhead)
	}
	if rep.Overhead.Overhead <= 0 {
		t.Fatalf("non-positive overhead ratio: %+v", rep.Overhead)
	}
	if rep.Replan.NsPerOp <= 0 || rep.Replan.Rounds <= 0 || rep.Replan.Faults <= 0 || rep.Replan.Decisions <= 0 {
		t.Fatalf("implausible replan row: %+v", rep.Replan)
	}
	if len(rep.Regimes) != 1 {
		t.Fatalf("regimes = %d, want the churn regime", len(rep.Regimes))
	}
	churn := rep.Regimes[0]
	if churn.Name != "churn" || churn.Seeds < 5 || churn.BaseN != 8 || churn.Joins != 2 {
		t.Fatalf("implausible churn shape: %+v", churn)
	}
	// The churn gate is deterministic (no timing), so even a quick run must
	// certify: raw sums positive, the reported speedup re-derivable from
	// them, and both thresholds met.
	if churn.UsefulReplan <= 0 || churn.UsefulRedundant <= 0 {
		t.Fatalf("non-positive useful-work sums: %+v", churn)
	}
	if got := churn.UsefulRedundant / churn.UsefulReplan; got != churn.Speedup {
		t.Fatalf("speedup %v not derived from raw sums (want %v)", churn.Speedup, got)
	}
	if !churn.MeetsThreshold || churn.Speedup < churn.Threshold {
		t.Fatalf("churn gate not met: %+v", churn)
	}
	if !churn.OverheadOK || churn.EmptyPlanOverhead > churn.OverheadThreshold*(1+1e-9) {
		t.Fatalf("empty-plan overhead gate not met: %+v", churn)
	}
	if churn.EmptyPlanOverhead < 1 {
		t.Fatalf("replicated dispatch cannot duplicate less than 1x: %+v", churn)
	}
}
