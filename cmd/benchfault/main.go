// Command benchfault certifies the cost of the fault layer. It times, via
// testing.Benchmark, at n = 1024:
//
//   - RunCEP vs RunCEPFaulty with an empty fault plan (acceptance: the
//     fault-aware integrator's no-fault path costs ≤ 2× the plain
//     simulator — it performs the same event sequence plus timeline
//     lookups), and
//   - the replanner under a seeded multi-fault plan, reported for scale
//     (informational; there is no fault-free baseline for replanning).
//
// It prints one JSON document to stdout — the content of BENCH_fault.json
// (see `make bench`):
//
//	go run ./cmd/benchfault > BENCH_fault.json
//
// The -quick flag caps each measurement at a fixed small iteration count so
// CI smoke tests finish in well under a second (ratios are then noisy and
// not certified).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// OverheadResult reports the empty-plan fault-integrator overhead.
type OverheadResult struct {
	N              int     `json:"n"`
	PlainNsPerOp   float64 `json:"plain_ns_per_op"`
	FaultyNsPerOp  float64 `json:"faulty_ns_per_op"`
	Overhead       float64 `json:"overhead"`
	Threshold      float64 `json:"threshold"`
	MeetsThreshold bool    `json:"meets_threshold"`
}

// ReplanResult reports the replanner's cost under a seeded fault plan.
// Every fault event costs one ride-vs-replan decision (a candidate CEP
// solve plus an exact rollout), whether or not a new round is adopted, so
// ns_per_decision is the meaningful unit cost.
type ReplanResult struct {
	N             int     `json:"n"`
	Faults        int     `json:"faults"`
	Decisions     int     `json:"decisions"`
	Rounds        int     `json:"rounds"`
	NsPerOp       float64 `json:"ns_per_op"`
	NsPerDecision float64 `json:"ns_per_decision"`
}

// Report is the BENCH_fault.json document.
type Report struct {
	Overhead OverheadResult `json:"empty_plan_overhead"`
	Replan   ReplanResult   `json:"replan"`
	Pass     bool           `json:"pass"`
}

func main() {
	quick := flag.Bool("quick", false, "single short iteration per benchmark (smoke test; ratios not certified)")
	flag.Parse()
	rep, err := buildReport(*quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfault:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchfault:", err)
		os.Exit(1)
	}
	if !rep.Pass && !*quick {
		fmt.Fprintln(os.Stderr, "benchfault: overhead threshold not met")
		os.Exit(1)
	}
}

// bench returns ns/op for f, mirroring benchincr: certified runs defer to
// testing.Benchmark's calibration, quick mode times three iterations.
func bench(quick bool, f func(b *testing.B)) float64 {
	if quick {
		var b testing.B
		b.N = 3
		start := time.Now()
		f(&b)
		return float64(time.Since(start).Nanoseconds()) / float64(b.N)
	}
	r := testing.Benchmark(f)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func buildReport(quick bool) (Report, error) {
	var rep Report
	const n = 1024
	const lifespan = 3600.0
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(n), n)
	pr, err := sim.OptimalFIFO(m, p, lifespan)
	if err != nil {
		return rep, err
	}

	rep.Overhead = OverheadResult{N: n, Threshold: 2}
	rep.Overhead.PlainNsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunCEP(m, p, pr, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Overhead.FaultyNsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunCEPFaulty(m, p, pr, fault.Plan{}, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Overhead.Overhead = rep.Overhead.FaultyNsPerOp / rep.Overhead.PlainNsPerOp
	rep.Overhead.MeetsThreshold = rep.Overhead.Overhead <= rep.Overhead.Threshold

	plan := fault.Random(stats.NewRNG(7), n, lifespan, 16)
	first, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, true, sim.Options{})
	if err != nil {
		return rep, err
	}
	rep.Replan = ReplanResult{N: n, Faults: len(plan.Faults), Decisions: len(first.Decisions), Rounds: len(first.Rounds)}
	rep.Replan.NsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, true, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if rep.Replan.Decisions > 0 {
		rep.Replan.NsPerDecision = rep.Replan.NsPerOp / float64(rep.Replan.Decisions)
	}

	rep.Pass = rep.Overhead.MeetsThreshold
	return rep, nil
}
