// Command benchfault certifies the cost of the fault layer. It times, via
// testing.Benchmark, at n = 1024:
//
//   - RunCEP vs RunCEPFaulty with an empty fault plan (acceptance: the
//     fault-aware integrator's no-fault path costs ≤ 2× the plain
//     simulator — it performs the same event sequence plus timeline
//     lookups), and
//   - the replanner under a seeded multi-fault plan, reported for scale
//     (informational; there is no fault-free baseline for replanning).
//
// It also certifies the deterministic elastic-churn robustness regime
// (see ChurnRegimeResult): replicated redundancy must out-salvage the
// ride-vs-replan server by ≥1.2× aggregate useful work on the fixed
// heavy-churn plan, while its fault-free duplication overhead stays ≤2×.
//
// It prints one JSON document to stdout — the content of BENCH_fault.json
// (see `make bench`):
//
//	go run ./cmd/benchfault > BENCH_fault.json
//
// The -quick flag caps each measurement at a fixed small iteration count so
// CI smoke tests finish in well under a second (ratios are then noisy and
// not certified).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// OverheadResult reports the empty-plan fault-integrator overhead.
type OverheadResult struct {
	N              int     `json:"n"`
	PlainNsPerOp   float64 `json:"plain_ns_per_op"`
	FaultyNsPerOp  float64 `json:"faulty_ns_per_op"`
	Overhead       float64 `json:"overhead"`
	Threshold      float64 `json:"threshold"`
	MeetsThreshold bool    `json:"meets_threshold"`
}

// ReplanResult reports the replanner's cost under a seeded fault plan.
// Every fault event costs one ride-vs-replan decision (a candidate CEP
// solve plus an exact rollout), whether or not a new round is adopted, so
// ns_per_decision is the meaningful unit cost.
type ReplanResult struct {
	N             int     `json:"n"`
	Faults        int     `json:"faults"`
	Decisions     int     `json:"decisions"`
	Rounds        int     `json:"rounds"`
	NsPerOp       float64 `json:"ns_per_op"`
	NsPerDecision float64 `json:"ns_per_decision"`
}

// ChurnRegimeResult certifies the elastic-churn robustness regime: on a
// fixed heavy-churn plan (targeted slowdowns, a crash, a long outage, and
// a join cohort on a homogeneous base cluster) with unpredicted ρ-jitter,
// the margined replicated scheme must return at least Threshold× the
// useful work of the clairvoyant ride-vs-replan salvager, aggregated over
// a fixed seed pool. The gate is deterministic — no timing involved — and
// checkbench re-derives Speedup from the raw useful-work sums, so a
// hand-edited ratio cannot pass. EmptyPlanOverhead is the same scheme's
// dispatched/useful ratio on a fault-free run: deliberate duplication must
// stay within OverheadThreshold (2× for replicated-2).
type ChurnRegimeResult struct {
	Name              string  `json:"name"`
	BaseN             int     `json:"base_n"`
	Joins             int     `json:"joins"`
	Seeds             int     `json:"seeds"`
	Jitter            float64 `json:"jitter"`
	Scheme            string  `json:"scheme"`
	UsefulReplan      float64 `json:"useful_replan"`
	UsefulRedundant   float64 `json:"useful_redundant"`
	Speedup           float64 `json:"speedup"`
	Threshold         float64 `json:"threshold"`
	MeetsThreshold    bool    `json:"meets_threshold"`
	EmptyPlanOverhead float64 `json:"empty_plan_overhead"`
	OverheadThreshold float64 `json:"overhead_threshold"`
	OverheadOK        bool    `json:"overhead_ok"`
}

// Report is the BENCH_fault.json document.
type Report struct {
	Overhead OverheadResult      `json:"empty_plan_overhead"`
	Replan   ReplanResult        `json:"replan"`
	Regimes  []ChurnRegimeResult `json:"regimes"`
	Pass     bool                `json:"pass"`
}

func main() {
	quick := flag.Bool("quick", false, "single short iteration per benchmark (smoke test; ratios not certified)")
	flag.Parse()
	rep, err := buildReport(*quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfault:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchfault:", err)
		os.Exit(1)
	}
	if !rep.Pass && !*quick {
		fmt.Fprintln(os.Stderr, "benchfault: overhead threshold not met")
		os.Exit(1)
	}
}

// bench returns ns/op for f, mirroring benchincr: certified runs defer to
// testing.Benchmark's calibration, quick mode times three iterations.
func bench(quick bool, f func(b *testing.B)) float64 {
	if quick {
		var b testing.B
		b.N = 3
		start := time.Now()
		f(&b)
		return float64(time.Since(start).Nanoseconds()) / float64(b.N)
	}
	r := testing.Benchmark(f)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func buildReport(quick bool) (Report, error) {
	var rep Report
	const n = 1024
	const lifespan = 3600.0
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(n), n)
	pr, err := sim.OptimalFIFO(m, p, lifespan)
	if err != nil {
		return rep, err
	}

	rep.Overhead = OverheadResult{N: n, Threshold: 2}
	rep.Overhead.PlainNsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunCEP(m, p, pr, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Overhead.FaultyNsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunCEPFaulty(m, p, pr, fault.Plan{}, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Overhead.Overhead = rep.Overhead.FaultyNsPerOp / rep.Overhead.PlainNsPerOp
	rep.Overhead.MeetsThreshold = rep.Overhead.Overhead <= rep.Overhead.Threshold

	plan := fault.Random(stats.NewRNG(7), n, lifespan, 16)
	first, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, true, sim.Options{})
	if err != nil {
		return rep, err
	}
	rep.Replan = ReplanResult{N: n, Faults: len(plan.Faults), Decisions: len(first.Decisions), Rounds: len(first.Rounds)}
	rep.Replan.NsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, true, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if rep.Replan.Decisions > 0 {
		rep.Replan.NsPerDecision = rep.Replan.NsPerOp / float64(rep.Replan.Decisions)
	}

	churn, err := churnRegime()
	if err != nil {
		return rep, err
	}
	rep.Regimes = append(rep.Regimes, churn)

	rep.Pass = rep.Overhead.MeetsThreshold && churn.MeetsThreshold && churn.OverheadOK
	return rep, nil
}

// heavyChurnPlan is the fixed elastic plan behind the churn regime,
// mirroring TestSimulateElasticRedundancyBeatsSalvageUnderChurn: every
// disruption class plus a two-machine join cohort against an 8-machine
// ρ = 0.5 base cluster over a 3600 lifespan.
func heavyChurnPlan() fault.Plan {
	return fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Slowdown, Computer: 0, At: 500, Factor: 7},
		{Kind: fault.Crash, Computer: 2, At: 1300},
		{Kind: fault.Outage, Computer: 4, At: 2000, Until: 3200},
		{Kind: fault.Slowdown, Computer: 6, At: 2600, Factor: 9},
		{Kind: fault.Join, Computer: 8, At: 600, Rho: 0.5},
		{Kind: fault.Join, Computer: 9, At: 600, Rho: 0.5},
	}}
}

// churnRegime runs the deterministic robustness gate: replicated-2@0.15
// against the ride-vs-replan salvager over five jitter seeds of the
// heavy-churn plan, plus the scheme's empty-plan duplication overhead.
func churnRegime() (ChurnRegimeResult, error) {
	m := model.Table1()
	const lifespan = 3600.0
	const seeds = 5
	p := make(profile.Profile, 8)
	for i := range p {
		p[i] = 0.5
	}
	red := sim.Redundancy{Replicas: 2, Margin: 0.15}
	res := ChurnRegimeResult{
		Name: "churn", BaseN: len(p), Joins: 2, Seeds: seeds, Jitter: 0.15,
		Scheme: red.String(), Threshold: 1.2, OverheadThreshold: 2,
	}
	plan := heavyChurnPlan()
	for seed := uint64(1); seed <= seeds; seed++ {
		opt := sim.Options{RhoJitter: res.Jitter, Seed: seed}
		rp, err := sim.SimulateElastic(context.Background(), m, p, lifespan, plan,
			sim.ElasticPolicy{Replan: true}, opt)
		if err != nil {
			return res, err
		}
		rd, err := sim.SimulateElastic(context.Background(), m, p, lifespan, plan,
			sim.ElasticPolicy{Redundancy: red}, opt)
		if err != nil {
			return res, err
		}
		res.UsefulReplan += rp.Useful
		res.UsefulRedundant += rd.Useful
	}
	if res.UsefulReplan > 0 {
		res.Speedup = res.UsefulRedundant / res.UsefulReplan
	}
	res.MeetsThreshold = res.Speedup >= res.Threshold

	calm, err := sim.SimulateElastic(context.Background(), m, p, lifespan, fault.Plan{},
		sim.ElasticPolicy{Redundancy: red}, sim.Options{})
	if err != nil {
		return res, err
	}
	res.EmptyPlanOverhead = calm.Overhead
	res.OverheadOK = res.EmptyPlanOverhead <= res.OverheadThreshold*(1+1e-9)
	return res, nil
}
