package main

import (
	"encoding/json"
	"testing"

	"hetero/internal/api"
)

func TestBuildReportQuick(t *testing.T) {
	rep := buildReport(true)
	if len(rep.Regimes) != 8 {
		t.Fatalf("%d regimes, want 8", len(rep.Regimes))
	}
	names := map[string]bool{}
	for _, r := range rep.Regimes {
		names[r.Name] = true
		if r.Requests <= 0 {
			t.Fatalf("regime %s: no requests", r.Name)
		}
		if r.BaselineOpsPerSec <= 0 || r.TunedOpsPerSec <= 0 {
			t.Fatalf("regime %s: non-positive throughput: %+v", r.Name, r)
		}
		if r.Speedup <= 0 {
			t.Fatalf("regime %s: non-positive speedup", r.Name)
		}
		if r.TunedP99Ms < r.TunedP50Ms {
			t.Fatalf("regime %s: p99 %v < p50 %v", r.Name, r.TunedP99Ms, r.TunedP50Ms)
		}
	}
	for _, want := range []string{"hit", "miss", "mixed", "large_n", "many_clients", "fleet", "sweep", "restart"} {
		if !names[want] {
			t.Fatalf("missing regime %q", want)
		}
	}
	if rep.GOMAXPROCS < 8 {
		t.Fatalf("GOMAXPROCS = %d, want ≥ 8 (the certificate's environment)", rep.GOMAXPROCS)
	}
	// The document must round-trip as JSON (it becomes BENCH_serve.json).
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
}

func TestLargeProfileQueryIsValid(t *testing.T) {
	q := largeProfileQuery(512)
	if len(q) < 512 {
		t.Fatalf("suspiciously short query: %d bytes", len(q))
	}
	s := api.NewServer()
	if status, _ := s.MeasureQuery(q); status != 200 {
		t.Fatalf("large profile query rejected: status %d", status)
	}
}
