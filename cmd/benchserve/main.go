// Command benchserve certifies the serving hot-path overhaul. It drives the
// /v1/measure path in-process (through api.Server.MeasureQuery, free of
// net/http overhead) under six load regimes:
//
//	hit           concurrent requests over a warm working set of small
//	              profiles
//	miss          every request a distinct cold small profile
//	mixed         thundering-herd waves: all workers demand the same fresh
//	              large profile at once, interleaved with warm hits — the
//	              regime the singleflight + raw-query layers exist for
//	large_n       a repeated identical large profile (n ≥ the chunked-kernel
//	              cutover), measuring the raw-query fast path
//	many_clients  hundreds of concurrent clients sweeping *distinct* small
//	              keys (one parameter point each) over a shared fresh
//	              profile per wave — the paper's §4.3 sensitivity-sweep
//	              shape, which singleflight cannot coalesce. Measures the
//	              cross-request admission batcher (EnableCoalesce) against
//	              the same server without it.
//	fleet         a round-robin client over four in-process replicas with
//	              the distributed cache tier on vs. the same fleet without
//	              it (see fleet.go): certifies both cross-replica hit
//	              amplification (≈ 1 evaluation per distinct key fleet-wide
//	              instead of ≈ one per replica) and the wall-clock speedup,
//	              benchstat-style. -fleet-chaos runs the availability drill
//	              instead: one replica dies mid-run and every request must
//	              still be served byte-identically (`make chaos`).
//
// The first four regimes run against two servers built from the same code:
// the tuned configuration (sharded cache, singleflight coalescing,
// raw-query front layer) and the historical baseline (single-lock cache, no
// coalescing, no raw layer — api.NewServerCacheOpts(n, 1, false)). The
// report records ops/sec for both, the speedup, and tuned-side p50/p99
// latency and allocations per operation.
//
// Two acceptance thresholds:
//
//   - mixed: tuned throughput ≥ 3× baseline at GOMAXPROCS ≥ 8 (forced to 16
//     when the host gives less). On a single-core host the win is
//     algorithmic, not parallel: the baseline evaluates a herd of identical
//     misses once per worker, the tuned path exactly once per wave.
//   - many_clients: certified benchstat-style — ≥ 5 paired samples, and the
//     LOW end of the 95% confidence interval of the coalesced/uncoalesced
//     throughput ratio must be ≥ 2×. Per flush the batcher pays the
//     profile-sized costs (decode, canonical suffix, moments, echo) once
//     per distinct profile instead of once per request, so a herd of N
//     distinct small queries collapses from N pool dispatches into
//     ~N/flush-size coalesced dispatches.
//
// It prints one JSON document to stdout — the content of BENCH_serve.json
// (see `make bench`):
//
//	go run ./cmd/benchserve > BENCH_serve.json
//
// The -quick flag shrinks every regime so CI smoke tests finish fast;
// ratios are then noisy and not certified.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hetero/internal/api"
	"hetero/internal/core"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// mixedThreshold is the certified floor for tuned/baseline throughput in
// the mixed regime.
const mixedThreshold = 3.0

// manyClientsThreshold is the certified floor for the 95% CI low end of the
// coalesced/uncoalesced throughput ratio in the many_clients regime.
const manyClientsThreshold = 2.0

// manyClientsSamples is the benchstat-style paired-sample count the
// many_clients certificate carries; cmd/checkbench rejects certificates
// below its own minSamples floor (5), so a -quick document cannot certify.
const manyClientsSamples = 5

// RegimeResult reports one load regime's baseline-vs-tuned comparison.
// Samples and SpeedupCILow are carried only by benchstat-style regimes
// (many_clients): Speedup is then the mean ratio over the paired samples
// and SpeedupCILow the low end of its 95% confidence interval — the number
// the threshold gates on.
type RegimeResult struct {
	Name              string  `json:"name"`
	Requests          int     `json:"requests"`
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	TunedOpsPerSec    float64 `json:"tuned_ops_per_sec"`
	Speedup           float64 `json:"speedup"`
	SpeedupCILow      float64 `json:"speedup_ci_low,omitempty"`
	Samples           int     `json:"samples,omitempty"`
	TunedP50Ms        float64 `json:"tuned_p50_ms"`
	TunedP99Ms        float64 `json:"tuned_p99_ms"`
	TunedAllocsPerOp  float64 `json:"tuned_allocs_per_op"`
	Threshold         float64 `json:"threshold,omitempty"`
	MeetsThreshold    bool    `json:"meets_threshold"`

	// Fleet-regime extras (see fleet.go): raw evaluation counters summed
	// over all samples, and the per-distinct-key amplification they derive
	// to — FleetEvals / (DistinctKeys × Samples) — gated at AmpThreshold.
	// cmd/checkbench re-derives the division and rejects a certificate whose
	// recorded amplification disagrees with its own counters.
	Replicas              int     `json:"replicas,omitempty"`
	DistinctKeys          int     `json:"distinct_keys,omitempty"`
	Passes                int     `json:"passes,omitempty"`
	FleetEvals            uint64  `json:"fleet_evals,omitempty"`
	BaselineEvals         uint64  `json:"baseline_evals,omitempty"`
	Amplification         float64 `json:"amplification,omitempty"`
	BaselineAmplification float64 `json:"baseline_amplification,omitempty"`
	AmpThreshold          float64 `json:"amp_threshold,omitempty"`

	// Sweep-regime extras (see sweep.go): per-sample paired wall clocks
	// for the identical streamed sweep against fresh spill-off and
	// spill-on servers — cmd/checkbench re-derives the speedup and its CI
	// from these raws rather than trusting the summary — plus the
	// spill-hit count over every timed pass and the sampled heap peak of
	// serving one spill hit, gated at PeakBytes ≤ PeakThreshold ×
	// ResponseBytes (a buffered serve would sit at ≥ 1×).
	SweepBodies    int     `json:"sweep_bodies,omitempty"`
	SweepProfiles  int     `json:"sweep_profiles,omitempty"`
	WallNsSpillOff []int64 `json:"wall_ns_spill_off,omitempty"`
	WallNsSpillOn  []int64 `json:"wall_ns_spill_on,omitempty"`
	SpillHits      uint64  `json:"spill_hits,omitempty"`
	ResponseBytes  int64   `json:"response_bytes,omitempty"`
	PeakBytes      int64   `json:"peak_bytes,omitempty"`
	PeakThreshold  float64 `json:"peak_threshold,omitempty"`

	// Restart-regime extras (see restart.go): per-sample raw counters from
	// the reopened server — re-evaluations over the RestartKeys replayed
	// point queries and the spill-hit count that must cover the keys it did
	// not re-evaluate. Speedup for this regime is the certified hit rate
	// 1 − ΣRestartReevals/(RestartKeys × Samples), gated at
	// RestartHitThreshold; cmd/checkbench re-derives it from the arrays.
	RestartKeys         int     `json:"restart_keys,omitempty"`
	RestartReevals      []int64 `json:"restart_reevals,omitempty"`
	RestartSpillHits    []int64 `json:"restart_spill_hits,omitempty"`
	RestartHitThreshold float64 `json:"restart_hit_threshold,omitempty"`
}

// Report is the BENCH_serve.json document.
type Report struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Regimes    []RegimeResult `json:"regimes"`
	Pass       bool           `json:"pass"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink every regime (smoke test; ratios not certified)")
	fleetChaos := flag.Bool("fleet-chaos", false, "run only the fleet chaos drill: kill one replica mid-run and require every request to survive byte-identically (see `make chaos`)")
	spillChaos := flag.Bool("spill-chaos", false, "run only the spill chaos drill: bit-flip every on-disk segment under a warm spill tier and require byte-identical fallback to evaluation (see `make chaos`)")
	flag.Parse()
	if *spillChaos {
		rep := Report{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Pass: true}
		rep.Regimes = append(rep.Regimes, runSpillChaos())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve:", err)
			os.Exit(1)
		}
		return
	}
	if *fleetChaos {
		if runtime.GOMAXPROCS(0) < 16 {
			runtime.GOMAXPROCS(16)
		}
		rep := Report{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Pass: true}
		rep.Regimes = append(rep.Regimes, runFleetChaos())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchserve:", err)
			os.Exit(1)
		}
		return
	}
	rep := buildReport(*quick)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	if !rep.Pass && !*quick {
		fmt.Fprintln(os.Stderr, "benchserve: a speedup threshold was not met")
		os.Exit(1)
	}
}

// sizes are the regime dimensions; quick mode shrinks them all.
type sizes struct {
	workers     int // concurrent load generators
	warmKeys    int // hit-regime working set
	hitIters    int // hit requests per worker
	missIters   int // distinct cold keys per worker
	waves       int // mixed-regime herd waves
	warmPerWave int // warm hits each worker adds per wave
	largeN      int // profile size for mixed / large_n
	largeIters  int // large_n repeats per worker
}

func defaultSizes(quick bool) sizes {
	if quick {
		return sizes{workers: 4, warmKeys: 8, hitIters: 50, missIters: 50,
			waves: 1, warmPerWave: 2, largeN: 2 * core.ParallelCutover, largeIters: 4}
	}
	return sizes{workers: 16, warmKeys: 64, hitIters: 2000, missIters: 1000,
		waves: 6, warmPerWave: 4, largeN: 1 << 16, largeIters: 10}
}

func buildReport(quick bool) Report {
	// The certificate is defined at GOMAXPROCS ≥ 8; force 16 so the herd
	// regimes exercise real scheduler interleaving even on small hosts.
	if runtime.GOMAXPROCS(0) < 16 {
		runtime.GOMAXPROCS(16)
	}
	sz := defaultSizes(quick)
	rep := Report{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Pass: true}

	newBaseline := func() *api.Server {
		return api.NewServerCacheOpts(api.DefaultMeasureCacheSize, 1, false)
	}
	newTuned := func() *api.Server { return api.NewServer() }

	warm := warmQueries(sz.warmKeys)
	largeBase := largeProfileQuery(sz.largeN)

	for _, regime := range []struct {
		name      string
		threshold float64
		run       func(s *api.Server) loadStats
	}{
		{"hit", 0, func(s *api.Server) loadStats {
			warmServer(s, warm)
			return drive(s, sz.workers, sz.hitIters, func(worker, i int) string {
				return warm[(worker*13+i)%len(warm)]
			})
		}},
		{"miss", 0, func(s *api.Server) loadStats {
			return drive(s, sz.workers, sz.missIters, func(worker, i int) string {
				return fmt.Sprintf("profile=1,0.5,0.%03d&pi=0.00%d%04d", i%999+1, worker+1, i)
			})
		}},
		{"mixed", mixedThreshold, func(s *api.Server) loadStats {
			warmServer(s, warm)
			return driveMixed(s, sz.workers, sz.waves, sz.warmPerWave, largeBase, warm)
		}},
		{"large_n", 0, func(s *api.Server) loadStats {
			return drive(s, sz.workers, sz.largeIters, func(worker, i int) string {
				return largeBase // one shared large key: 1 miss, then fast-path hits
			})
		}},
	} {
		base := regime.run(newBaseline())
		tuned := regime.run(newTuned())
		r := RegimeResult{
			Name:              regime.name,
			Requests:          tuned.ops,
			BaselineOpsPerSec: base.opsPerSec(),
			TunedOpsPerSec:    tuned.opsPerSec(),
			TunedP50Ms:        tuned.percentileMs(50),
			TunedP99Ms:        tuned.percentileMs(99),
			TunedAllocsPerOp:  tuned.allocsPerOp,
			Threshold:         regime.threshold,
		}
		if r.BaselineOpsPerSec > 0 {
			r.Speedup = r.TunedOpsPerSec / r.BaselineOpsPerSec
		}
		r.MeetsThreshold = regime.threshold == 0 || r.Speedup >= regime.threshold
		if !r.MeetsThreshold {
			rep.Pass = false
		}
		rep.Regimes = append(rep.Regimes, r)
	}

	mc := runManyClients(quick)
	if !mc.MeetsThreshold {
		rep.Pass = false
	}
	rep.Regimes = append(rep.Regimes, mc)

	fl := runFleet(quick)
	if !fl.MeetsThreshold {
		rep.Pass = false
	}
	rep.Regimes = append(rep.Regimes, fl)

	sw := runSweep(quick)
	if !sw.MeetsThreshold {
		rep.Pass = false
	}
	rep.Regimes = append(rep.Regimes, sw)

	rs := runRestart(quick)
	if !rs.MeetsThreshold {
		rep.Pass = false
	}
	rep.Regimes = append(rep.Regimes, rs)
	return rep
}

// runManyClients certifies the admission batcher: per sample, the same
// distinct-key sweep traffic is driven against a fresh tuned server without
// coalescing and a fresh one with it, and the throughput ratio recorded.
// The pairs are GC-leveled and the gate is the 95% CI low end over ≥ 5
// samples, so one lucky run cannot certify and one noisy one cannot mask.
func runManyClients(quick bool) RegimeResult {
	clients, waves, n, samples := 256, 4, 1000, manyClientsSamples
	if quick {
		clients, waves, n, samples = 16, 2, 800, 2
	}
	// Per wave a fresh shared fleet profile; per client a distinct tau over
	// it — distinct cache keys by construction, so neither singleflight
	// layer can collapse them. The profile is long enough to engage the raw
	// front (the batcher's raw submission flavor, which shares the decode
	// itself across a flush) but far below the chunked-kernel cutover: each
	// request is a small serial evaluation, the worst case for amortizing
	// per-request overhead anywhere but in the batcher.
	queries := make([][]string, waves)
	for v := range queries {
		base := profileQuery(n, uint64(0xC0A1+v))
		queries[v] = make([]string, clients)
		for c := range queries[v] {
			queries[v][c] = fmt.Sprintf("%s&tau=0.%04d", base, c+101)
		}
	}

	ratios := make([]float64, 0, samples)
	var sumBase, sumTuned float64
	var lastTuned loadStats
	for k := 0; k < samples; k++ {
		base := driveWaves(api.NewServer(), clients, queries)
		coalSrv := api.NewServer()
		coalSrv.EnableCoalesce(api.CoalesceConfig{})
		tuned := driveWaves(coalSrv, clients, queries)
		coalSrv.CloseCoalesce()
		if base.opsPerSec() > 0 {
			ratios = append(ratios, tuned.opsPerSec()/base.opsPerSec())
		}
		sumBase += base.opsPerSec()
		sumTuned += tuned.opsPerSec()
		lastTuned = tuned
	}
	mean, lo, _ := meanCI95(ratios)
	r := RegimeResult{
		Name:              "many_clients",
		Requests:          clients * waves,
		BaselineOpsPerSec: sumBase / float64(samples),
		TunedOpsPerSec:    sumTuned / float64(samples),
		Speedup:           mean,
		SpeedupCILow:      lo,
		Samples:           len(ratios),
		TunedP50Ms:        lastTuned.percentileMs(50),
		TunedP99Ms:        lastTuned.percentileMs(99),
		TunedAllocsPerOp:  lastTuned.allocsPerOp,
		Threshold:         manyClientsThreshold,
	}
	r.MeetsThreshold = r.SpeedupCILow >= r.Threshold
	return r
}

// driveWaves releases all clients together once per wave, one request each,
// with a barrier between waves — every key distinct and cold, arriving as a
// herd the way a sweep dashboard fans out.
func driveWaves(s *api.Server, clients int, queries [][]string) loadStats {
	lats := make([]time.Duration, 0, len(queries)*clients)
	runtime.GC() // level the GC state so paired runs compare fairly
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for v := range queries {
		var wg sync.WaitGroup
		start := make(chan struct{})
		waveLats := make([]time.Duration, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				t1 := time.Now()
				status, _ := s.MeasureQuery(queries[v][c])
				waveLats[c] = time.Since(t1)
				if status != 200 {
					panic(fmt.Sprintf("benchserve: many_clients query %q: status %d", queries[v][c], status))
				}
			}(c)
		}
		close(start)
		wg.Wait()
		lats = append(lats, waveLats...)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	out := loadStats{ops: len(queries) * clients, wall: wall, latencies: lats}
	if out.ops > 0 {
		out.allocsPerOp = math.Round(float64(after.Mallocs-before.Mallocs)/float64(out.ops)*1000) / 1000
	}
	return out
}

// meanCI95 returns the sample mean and its 95% Student-t confidence
// interval (matching cmd/benchbatch's gate arithmetic).
func meanCI95(xs []float64) (mean, lo, hi float64) {
	n := len(xs)
	mean = stats.Mean(xs)
	if n < 2 {
		return mean, mean, mean
	}
	sd := math.Sqrt(stats.Variance(xs) * float64(n) / float64(n-1)) // sample sd
	half := tValue95(n-1) * sd / math.Sqrt(float64(n))
	return mean, mean - half, mean + half
}

// tValue95 is the two-sided 95% Student-t critical value for df degrees of
// freedom (df ≥ 8 rounds down to the asymptotic value).
func tValue95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306}
	if df <= 0 {
		return table[1]
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// loadStats aggregates one regime run on one server.
type loadStats struct {
	ops         int
	wall        time.Duration
	latencies   []time.Duration // one per request, unsorted
	allocsPerOp float64
}

func (l loadStats) opsPerSec() float64 {
	if l.wall <= 0 {
		return 0
	}
	return float64(l.ops) / l.wall.Seconds()
}

func (l loadStats) percentileMs(p int) float64 {
	if len(l.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// drive fans perWorker requests per worker over the server, all workers
// released together, and returns wall time, per-request latencies, and the
// heap-allocation delta per operation.
func drive(s *api.Server, workers, perWorker int, query func(worker, i int) string) loadStats {
	// Pre-build the query strings and latency buffers so the measured
	// section allocates only what the serving path allocates.
	queries := make([][]string, workers)
	lats := make([][]time.Duration, workers)
	for w := 0; w < workers; w++ {
		queries[w] = make([]string, perWorker)
		for i := 0; i < perWorker; i++ {
			queries[w][i] = query(w, i)
		}
		lats[w] = make([]time.Duration, perWorker)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				status, _ := s.MeasureQuery(queries[w][i])
				lats[w][i] = time.Since(t0)
				if status != 200 {
					panic(fmt.Sprintf("benchserve: worker %d query %q: status %d", w, queries[w][i], status))
				}
			}
		}(w)
	}
	runtime.GC() // level the GC state so paired runs compare fairly
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	out := loadStats{ops: workers * perWorker, wall: wall}
	for w := range lats {
		out.latencies = append(out.latencies, lats[w]...)
	}
	if out.ops > 0 {
		out.allocsPerOp = math.Round(float64(after.Mallocs-before.Mallocs)/float64(out.ops)*1000) / 1000
	}
	return out
}

// driveMixed runs herd waves: per wave, every worker requests the same
// fresh large-profile key (byte-identical spellings, so the raw-query layer
// can coalesce) plus warmPerWave warm hits. Waves are separated by a
// barrier so each herd arrives together, as a cache-expiry or deploy wave
// does in production.
func driveMixed(s *api.Server, workers, waves, warmPerWave int, largeBase string, warm []string) loadStats {
	perWave := 1 + warmPerWave
	lats := make([][]time.Duration, workers)
	for w := range lats {
		lats[w] = make([]time.Duration, 0, waves*perWave)
	}
	hot := make([]string, waves)
	for v := 0; v < waves; v++ {
		// A distinct tau per wave makes each wave's hot key fresh without
		// rebuilding the (large) profile string.
		hot[v] = largeBase + "&tau=0.00" + strconv.Itoa(101+v)
	}
	runtime.GC() // level the GC state so paired runs compare fairly
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for v := 0; v < waves; v++ {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				q := hot[v]
				t1 := time.Now()
				status, _ := s.MeasureQuery(q)
				lats[w] = append(lats[w], time.Since(t1))
				if status != 200 {
					panic(fmt.Sprintf("benchserve: mixed hot query: status %d", status))
				}
				for i := 0; i < warmPerWave; i++ {
					wq := warm[(w*7+v*3+i)%len(warm)]
					t2 := time.Now()
					status, _ := s.MeasureQuery(wq)
					lats[w] = append(lats[w], time.Since(t2))
					if status != 200 {
						panic("benchserve: mixed warm query failed")
					}
				}
			}(w)
		}
		close(start)
		wg.Wait()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	out := loadStats{ops: workers * waves * perWave, wall: wall}
	for w := range lats {
		out.latencies = append(out.latencies, lats[w]...)
	}
	if out.ops > 0 {
		out.allocsPerOp = math.Round(float64(after.Mallocs-before.Mallocs)/float64(out.ops)*1000) / 1000
	}
	return out
}

// warmQueries builds the hit-regime working set: small distinct profiles.
func warmQueries(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("profile=1,0.75,0.5,0.%03d", i+100)
	}
	return out
}

// warmServer primes every warm key so the measured run is pure hits.
func warmServer(s *api.Server, warm []string) {
	for _, q := range warm {
		if status, _ := s.MeasureQuery(q); status != 200 {
			panic("benchserve: warmup failed: " + q)
		}
	}
}

// largeProfileQuery renders an n-computer profile with short (3-decimal)
// spellings — realistic measured utilizations, and a query whose parse cost
// is dominated by element count rather than digit count.
func largeProfileQuery(n int) string { return profileQuery(n, uint64(n)) }

// profileQuery renders an n-computer profile query from an explicit seed so
// regimes can draw distinct profiles of the same size.
func profileQuery(n int, seed uint64) string {
	rng := stats.NewRNG(seed)
	p := profile.RandomNormalized(rng, n)
	var b strings.Builder
	b.Grow(8 + 6*n)
	b.WriteString("profile=")
	for i, rho := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		r := math.Round(rho*1000) / 1000
		if r < 0.001 {
			r = 0.001
		}
		if r > 1 {
			r = 1
		}
		if i == 0 {
			r = 1 // keep the profile normalized after rounding
		}
		b.WriteString(strconv.FormatFloat(r, 'g', -1, 64))
	}
	return b.String()
}
