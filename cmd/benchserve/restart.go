package main

// The restart regime certifies the spill tier's write-through durability
// mode (internal/api EnableSpillOptions + the shutdown flush): a server
// that served a working set, drained, and restarted over the same spill
// directory must re-serve that working set from disk — byte-identically
// and without re-evaluating it.
//
// Per sample: a fresh write-through server over a fresh spill dir is
// populated with K distinct point queries (recording every body) plus one
// large streamed /v1/batch body, then shut down via CloseSpill (draining
// the write-through queue and flushing still-resident entries). A second
// server with an empty memory tier reopens the same directory and replays
// the identical traffic. The certificate gates:
//
//   - re-evaluations: the reopened server's MeasureEvals over the K keys,
//     recorded per sample; the certified hit rate is
//     1 − Σreevals/(K × samples), gated at restartHitThreshold.
//     cmd/checkbench re-derives the rate from the raw per-sample counter
//     arrays and rejects a certificate whose summary disagrees;
//   - byte identity: every replayed response — point and streamed batch —
//     must equal the populate-time bytes exactly (divergence panics, so a
//     certificate cannot exist for a byte-unfaithful restart);
//   - provenance: per sample, the reopened server's spill-hit counter must
//     cover every key it did not re-evaluate (the answers came from the
//     reopened segments, not from some other warm path).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hetero/internal/api"
	"hetero/internal/spill"
)

// restartHitThreshold is the certified floor for the fraction of
// previously served keys a restarted server answers without re-evaluation.
const restartHitThreshold = 0.9

// restartSamples sits above cmd/checkbench's minSamples floor, like
// sweepSamples and fleetSamples.
const restartSamples = 7

type restartSizes struct {
	keys    int // distinct point queries K per sample
	samples int
}

func restartDefaultSizes(quick bool) restartSizes {
	if quick {
		return restartSizes{keys: 16, samples: 2}
	}
	return restartSizes{keys: 64, samples: restartSamples}
}

// newRestartServer opens (or reopens) the spill store under dir in
// write-through mode on a fresh server. The memory byte budget is modest
// on purpose: part of the working set evicts (reaching disk the PR-9 way)
// and part stays resident (reaching disk only via write-through and the
// shutdown flush), so a certificate covers both durability routes.
func newRestartServer(dir string) *api.Server {
	st, err := spill.Open(spill.Config{Dir: dir})
	if err != nil {
		panic(fmt.Sprintf("benchserve: restart spill store: %v", err))
	}
	s := api.NewServerWithCache(api.CacheConfig{Entries: 256, MaxBytes: 256 << 10, Coalesce: true})
	s.EnableSpillOptions(st, api.SpillOptions{WriteThrough: true})
	return s
}

func restartQuery(i int) string {
	return fmt.Sprintf("profile=1,0.5,0.%03d&pi=0.0%03d", i%899+101, i)
}

// runRestart runs the paired populate → drain → reopen → replay samples
// and builds the certificate.
func runRestart(quick bool) RegimeResult {
	sz := restartDefaultSizes(quick)
	tmp, err := os.MkdirTemp("", "benchserve-restart-")
	if err != nil {
		panic(fmt.Sprintf("benchserve: restart tempdir: %v", err))
	}
	defer os.RemoveAll(tmp)

	streamBody := sweepBodies(1, 1024)[0]
	reevals := make([]int64, 0, sz.samples)
	spillHits := make([]int64, 0, sz.samples)
	var populateNs, replayNs int64
	var lastLats []time.Duration
	for k := 0; k < sz.samples; k++ {
		dir := filepath.Join(tmp, fmt.Sprintf("s%d", k))

		// Populate: every key evaluates once; write-through carries the
		// bodies to disk as they are admitted.
		s1 := newRestartServer(dir)
		want := make([][]byte, sz.keys)
		t0 := time.Now()
		for i := range want {
			status, body := s1.MeasureQuery(restartQuery(i))
			if status != 200 {
				panic(fmt.Sprintf("benchserve: restart populate key %d: status %d", i, status))
			}
			want[i] = body
		}
		populateNs += time.Since(t0).Nanoseconds()
		if evals := s1.MeasureEvals(); evals != uint64(sz.keys) {
			panic(fmt.Sprintf("benchserve: restart populate ran %d evals for %d keys", evals, sz.keys))
		}
		golden := &sweepHashWriter{}
		if status, msg, err := s1.BatchBodyStream(context.Background(), golden, streamBody); status != 200 || err != nil {
			panic(fmt.Sprintf("benchserve: restart populate stream: status %d msg %q err %v", status, msg, err))
		}
		s1.CloseSpill() // drain the queue, flush residents, fsync the segments closed

		// Replay against an empty memory tier over the reopened segments.
		s2 := newRestartServer(dir)
		lats := make([]time.Duration, 0, sz.keys)
		t1 := time.Now()
		for i := range want {
			lt := time.Now()
			status, body := s2.MeasureQuery(restartQuery(i))
			lats = append(lats, time.Since(lt))
			if status != 200 {
				panic(fmt.Sprintf("benchserve: restart replay key %d: status %d", i, status))
			}
			if !bytes.Equal(body, want[i]) {
				panic(fmt.Sprintf("benchserve: restart replay key %d diverged from the populate-time bytes", i))
			}
		}
		replayNs += time.Since(t1).Nanoseconds()
		replayed := &sweepHashWriter{}
		if status, msg, err := s2.BatchBodyStream(context.Background(), replayed, streamBody); status != 200 || err != nil {
			panic(fmt.Sprintf("benchserve: restart replay stream: status %d msg %q err %v", status, msg, err))
		}
		if replayed.h != golden.h || replayed.n != golden.n {
			panic("benchserve: restart replay streamed batch diverged from the populate-time bytes")
		}

		re := int64(s2.MeasureEvals())
		st := s2.SpillStatsNow()
		if !st.WriteThrough {
			panic("benchserve: restart server does not report write-through")
		}
		if int64(st.Hits) < int64(sz.keys)-re {
			panic(fmt.Sprintf("benchserve: restart sample %d: %d spill hits cannot cover %d served keys (%d re-evals)",
				k, st.Hits, sz.keys, re))
		}
		reevals = append(reevals, re)
		spillHits = append(spillHits, int64(st.Hits))
		s2.CloseSpill()
		lastLats = lats
		fmt.Fprintf(os.Stderr, "benchserve: restart sample %d/%d: keys=%d reevals=%d spill_hits=%d\n",
			k+1, sz.samples, sz.keys, re, st.Hits)
	}

	var totalReevals int64
	for _, re := range reevals {
		totalReevals += re
	}
	totalKeys := int64(sz.keys) * int64(len(reevals))
	hitRate := 1 - float64(totalReevals)/float64(totalKeys)
	tuned := loadStats{ops: sz.keys, latencies: lastLats}
	r := RegimeResult{
		Name:                "restart",
		Requests:            2 * (sz.keys + 1) * sz.samples,
		BaselineOpsPerSec:   float64(totalKeys) * float64(time.Second) / float64(populateNs),
		TunedOpsPerSec:      float64(totalKeys) * float64(time.Second) / float64(replayNs),
		Speedup:             hitRate,
		Samples:             len(reevals),
		TunedP50Ms:          tuned.percentileMs(50),
		TunedP99Ms:          tuned.percentileMs(99),
		Threshold:           restartHitThreshold,
		RestartKeys:         sz.keys,
		RestartReevals:      reevals,
		RestartSpillHits:    spillHits,
		RestartHitThreshold: restartHitThreshold,
	}
	r.MeetsThreshold = hitRate >= restartHitThreshold
	return r
}
