package main

// The sweep regime certifies the on-disk spill tier (internal/spill + the
// wiring in internal/api): repeated large streamed /v1/batch sweeps whose
// working set exceeds any in-memory cache, paired spill-off vs spill-on.
//
// Traffic is D distinct batch bodies, each P profiles, driven through
// BatchBodyStream — the streaming render path never admits its response to
// the memory front (bytes that were never assembled cannot be cached), so
// without the spill tier every pass pays the full decode + evaluate +
// render; with it, the first pass tees the streamed bytes into a segment
// file and every later pass serves them straight from the segment reader.
// Per sample both servers are fresh (the spill-on one with a fresh temp
// dir), the same sweep runs warm then timed on each, and the certificate
// gates three claims:
//
//   - wall clock: the 95% CI low end of the off/on wall-time ratio over
//     ≥ 5 paired samples ≥ 2×, re-derived by cmd/checkbench from the raw
//     per-sample nanosecond arrays;
//   - byte identity: every response — rendered or spill-served — must
//     hash identically to the first rendering (the golden sweep);
//   - bounded memory: the sampled heap peak of serving one spill hit must
//     stay ≤ sweepPeakRatioMax × the response size. A buffered serve
//     holds the whole response (ratio ≥ 1), so clearing the gate certifies
//     the fragment-by-fragment path end to end.

import (
	"context"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hetero/internal/api"
	"hetero/internal/spill"
)

// sweepThreshold is the certified floor for the 95% CI low end of the
// spill-off / spill-on wall-time ratio.
const sweepThreshold = 2.0

// sweepPeakRatioMax bounds the sampled heap peak of serving one spill hit
// relative to the response it serves. The serve path's live state is one
// store key (O(request)), the verify and copy chunks (64 KiB each), and
// allocator slop; a buffered serve would hold the full response and sit
// at ≥ 1×.
const sweepPeakRatioMax = 0.5

// sweepSamples sits above the benchstat-style floor (cmd/checkbench
// rejects certificates below minSamples = 5) for a tighter Student-t
// interval on a time-shared host, like fleetSamples.
const sweepSamples = 7

// sweepTimedPasses is how many whole sweeps one timed measurement spans.
// A single spill-on sweep is a few milliseconds — the same order as one
// scheduler stall on a noisy host — so each sample times several passes
// and lets the stall amortize instead of tanking the ratio.
const sweepTimedPasses = 2

type sweepSizes struct {
	bodies   int // distinct sweep bodies D
	profiles int // profiles per body P (≤ api.MaxBatchProfiles)
	samples  int
}

func sweepDefaultSizes(quick bool) sweepSizes {
	if quick {
		return sweepSizes{bodies: 2, profiles: 512, samples: 2}
	}
	return sweepSizes{bodies: 4, profiles: api.MaxBatchProfiles, samples: sweepSamples}
}

// sweepBodies builds D distinct batch bodies of P profiles each. Every
// profile is distinct within and across bodies (no dedupe, no canonical
// cache sharing), and short ρ spellings keep the request an order of
// magnitude smaller than the response it produces.
func sweepBodies(d, p int) [][]byte {
	out := make([][]byte, d)
	for b := range out {
		var sb strings.Builder
		sb.Grow(16 + 24*p)
		sb.WriteString(`{"profiles":[`)
		for i := 0; i < p; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			// [1, 0.x, 0.y, 0.z]: (x, y) walk within the body so no two
			// profiles dedupe, z pins the body.
			sb.WriteString("[1,0.")
			sb.WriteString(strconv.Itoa(i%899 + 101))
			sb.WriteString(",0.")
			sb.WriteString(strconv.Itoa(i/899 + 101))
			sb.WriteString(",0.")
			sb.WriteString(strconv.Itoa(b + 101))
			sb.WriteString("]")
		}
		sb.WriteString("]}")
		out[b] = []byte(sb.String())
	}
	return out
}

// sweepHashWriter digests and counts a streamed response without
// retaining it — the memory-honest stand-in for a network socket. The
// digest is CRC32-Castagnoli (hardware-accelerated on amd64/arm64): the
// identity check must not cost the same order as the disk serve it
// measures, and 32 bits over a handful of golden comparisons is ample.
type sweepHashWriter struct {
	h uint32
	n int64
}

var sweepCRCTable = crc32.MakeTable(crc32.Castagnoli)

func (w *sweepHashWriter) Write(p []byte) (int, error) {
	w.h = crc32.Update(w.h, sweepCRCTable, p)
	w.n += int64(len(p))
	return len(p), nil
}

// sweepGolden is the reference digest of one body's response.
type sweepGolden struct {
	hash uint32
	n    int64
}

// driveSweep streams every body passes times against s, checking each
// response against its golden digest (with record, the first pass writes
// the digests instead). Returns the wall time and per-request latencies.
func driveSweep(s *api.Server, bodies [][]byte, golden []sweepGolden, record bool, passes int) (time.Duration, []time.Duration) {
	lats := make([]time.Duration, 0, passes*len(bodies))
	runtime.GC() // level the GC state so paired runs compare fairly
	t0 := time.Now()
	for p := 0; p < passes; p++ {
		for i, body := range bodies {
			w := &sweepHashWriter{}
			t1 := time.Now()
			status, msg, err := s.BatchBodyStream(context.Background(), w, body)
			lats = append(lats, time.Since(t1))
			if status != 200 || err != nil {
				panic(fmt.Sprintf("benchserve: sweep body %d: status %d msg %q err %v", i, status, msg, err))
			}
			if record && p == 0 {
				golden[i] = sweepGolden{hash: w.h, n: w.n}
			} else if w.h != golden[i].hash || w.n != golden[i].n {
				panic(fmt.Sprintf("benchserve: sweep body %d: response diverges from the golden rendering (%d bytes vs %d)",
					i, w.n, golden[i].n))
			}
		}
	}
	return time.Since(t0), lats
}

// newSpillServer opens a fresh spill store under dir and attaches it to a
// fresh tuned server with a deliberately tiny memory byte budget, so the
// sweep's working set cannot hide in RAM.
func newSpillServer(dir string) *api.Server {
	st, err := spill.Open(spill.Config{Dir: dir})
	if err != nil {
		panic(fmt.Sprintf("benchserve: sweep spill store: %v", err))
	}
	s := api.NewServerWithCache(api.CacheConfig{Entries: 256, MaxBytes: 64 << 10, Coalesce: true})
	s.EnableSpill(st)
	return s
}

// runSweep runs the paired sweep samples and builds the certificate.
func runSweep(quick bool) RegimeResult {
	sz := sweepDefaultSizes(quick)
	bodies := sweepBodies(sz.bodies, sz.profiles)
	golden := make([]sweepGolden, len(bodies))
	driveSweep(api.NewServer(), bodies, golden, true, 1) // golden digests, solo server

	tmp, err := os.MkdirTemp("", "benchserve-sweep-")
	if err != nil {
		panic(fmt.Sprintf("benchserve: sweep tempdir: %v", err))
	}
	defer os.RemoveAll(tmp)

	offNs := make([]int64, 0, sz.samples)
	onNs := make([]int64, 0, sz.samples)
	ratios := make([]float64, 0, sz.samples)
	var spillHits uint64
	var peak uint64
	var lastLats []time.Duration
	for k := 0; k < sz.samples; k++ {
		// Spill-off: the streaming path re-renders every pass by design.
		off := api.NewServerWithCache(api.CacheConfig{Entries: 256, MaxBytes: 64 << 10, Coalesce: true})
		driveSweep(off, bodies, golden, false, 1) // warm (symmetric with the on side)
		wallOff, _ := driveSweep(off, bodies, golden, false, sweepTimedPasses)

		// Spill-on: the warm pass renders and tees; the timed passes must
		// be all segment-reader hits.
		on := newSpillServer(filepath.Join(tmp, fmt.Sprintf("s%d", k)))
		driveSweep(on, bodies, golden, false, 1) // warm: render + tee (synchronous commits)
		hits0 := on.SpillStatsNow().Hits
		wallOn, lats := driveSweep(on, bodies, golden, false, sweepTimedPasses)
		st := on.SpillStatsNow()
		if got := st.Hits - hits0; got < uint64(sweepTimedPasses*len(bodies)) {
			panic(fmt.Sprintf("benchserve: sweep sample %d: only %d/%d spill hits in the timed passes",
				k, got, sweepTimedPasses*len(bodies)))
		}
		spillHits += st.Hits - hits0

		// Sampled heap peak of one more spill-hit serve of body 0.
		if p := measureSweepPeak(func() {
			w := &sweepHashWriter{}
			if status, _, err := on.BatchBodyStream(context.Background(), w, bodies[0]); status != 200 || err != nil {
				panic("benchserve: sweep peak drive failed")
			}
			if w.h != golden[0].hash || w.n != golden[0].n {
				panic("benchserve: sweep peak drive diverged from golden")
			}
		}); p > peak {
			peak = p
		}
		on.CloseSpill()

		offNs = append(offNs, wallOff.Nanoseconds())
		onNs = append(onNs, wallOn.Nanoseconds())
		if wallOn > 0 {
			ratio := float64(wallOff) / float64(wallOn)
			ratios = append(ratios, ratio)
			fmt.Fprintf(os.Stderr, "benchserve: sweep sample %d/%d: off=%s on=%s ratio=%.3f\n",
				k+1, sz.samples, wallOff, wallOn, ratio)
		}
		lastLats = lats
	}

	mean, lo, _ := meanCI95(ratios)
	responseBytes := golden[0].n
	for _, g := range golden {
		if g.n > responseBytes {
			responseBytes = g.n
		}
	}
	var sumOff, sumOn float64
	for i := range offNs {
		sumOff += float64(offNs[i])
		sumOn += float64(onNs[i])
	}
	timedReqs := len(bodies) * sweepTimedPasses
	perSweep := float64(timedReqs) * float64(time.Second)
	tuned := loadStats{ops: timedReqs, latencies: lastLats}
	r := RegimeResult{
		Name:              "sweep",
		Requests:          timedReqs * 2 * sz.samples,
		BaselineOpsPerSec: perSweep * float64(sz.samples) / sumOff,
		TunedOpsPerSec:    perSweep * float64(sz.samples) / sumOn,
		Speedup:           mean,
		SpeedupCILow:      lo,
		Samples:           len(ratios),
		TunedP50Ms:        tuned.percentileMs(50),
		TunedP99Ms:        tuned.percentileMs(99),
		Threshold:         sweepThreshold,
		SweepBodies:       sz.bodies,
		SweepProfiles:     sz.profiles,
		WallNsSpillOff:    offNs,
		WallNsSpillOn:     onNs,
		SpillHits:         spillHits,
		ResponseBytes:     responseBytes,
		PeakBytes:         int64(peak),
		PeakThreshold:     sweepPeakRatioMax,
	}
	r.MeetsThreshold = r.SpeedupCILow >= r.Threshold &&
		float64(r.PeakBytes) <= r.PeakThreshold*float64(r.ResponseBytes) &&
		r.SpillHits >= uint64(sz.bodies*sweepTimedPasses*sz.samples)
	return r
}

// measureSweepPeak runs fn while sampling runtime.MemStats.HeapAlloc and
// returns the peak growth over the baseline (cmd/benchbatch's gate
// arithmetic).
func measureSweepPeak(fn func()) uint64 {
	runtime.GC()
	runtime.GC() // settle finalizer-freed memory so the baseline is stable
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&s)
			for {
				p := peak.Load()
				if s.HeapAlloc <= p || peak.CompareAndSwap(p, s.HeapAlloc) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	fn()
	close(stop)
	<-done
	if p := peak.Load(); p > baseline {
		return p - baseline
	}
	return 0
}

// runSpillChaos is the `make chaos` spill run: a warm spill store has
// every segment bit-flipped on disk, and the same sweep is driven again.
// Every response must still be byte-identical to the golden rendering —
// the CRC pre-verification turns corruption into a miss and the path
// falls back to evaluation (re-teeing fresh segments), never serving a
// corrupt byte. A third pass must then hit the repaired segments, again
// byte-identically: degradation may cost renders, never correctness.
func runSpillChaos() RegimeResult {
	sz := sweepSizes{bodies: 4, profiles: 1024}
	bodies := sweepBodies(sz.bodies, sz.profiles)
	golden := make([]sweepGolden, len(bodies))
	driveSweep(api.NewServer(), bodies, golden, true, 1)

	tmp, err := os.MkdirTemp("", "benchserve-spill-chaos-")
	if err != nil {
		panic(fmt.Sprintf("benchserve: spill chaos tempdir: %v", err))
	}
	defer os.RemoveAll(tmp)
	s := newSpillServer(tmp)
	defer s.CloseSpill()
	driveSweep(s, bodies, golden, false, 1) // warm: render + tee

	segs, err := filepath.Glob(filepath.Join(tmp, "*.seg"))
	if err != nil || len(segs) == 0 {
		panic(fmt.Sprintf("benchserve: spill chaos found no segments (err %v)", err))
	}
	for _, p := range segs {
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			panic(fmt.Sprintf("benchserve: spill chaos open: %v", err))
		}
		info, err := f.Stat()
		if err != nil {
			panic(fmt.Sprintf("benchserve: spill chaos stat: %v", err))
		}
		buf := []byte{0}
		off := info.Size() / 2
		if _, err := f.ReadAt(buf, off); err != nil {
			panic(fmt.Sprintf("benchserve: spill chaos read: %v", err))
		}
		buf[0] ^= 0xff
		if _, err := f.WriteAt(buf, off); err != nil {
			panic(fmt.Sprintf("benchserve: spill chaos write: %v", err))
		}
		f.Close()
	}

	wall, _ := driveSweep(s, bodies, golden, false, 1) // every hit is corrupt → fall back, byte-identical
	st := s.SpillStatsNow()
	if st.Corrupt == 0 {
		panic("benchserve: spill chaos: no corruption detected by the CRC check")
	}
	hits0 := st.Hits
	_, _ = driveSweep(s, bodies, golden, false, 1) // repaired segments serve again
	st = s.SpillStatsNow()
	if st.Hits == hits0 {
		panic("benchserve: spill chaos: repaired segments never served")
	}
	fmt.Fprintf(os.Stderr,
		"benchserve: spill_chaos survived segment corruption: %d bodies ok (corrupt=%d rehits=%d)\n",
		len(bodies)*2, st.Corrupt, st.Hits-hits0)
	return RegimeResult{
		Name:           "spill_chaos",
		Requests:       len(bodies) * 3,
		TunedOpsPerSec: float64(len(bodies)) / wall.Seconds(),
		MeetsThreshold: true, // availability regime: reaching here means every byte matched
	}
}
