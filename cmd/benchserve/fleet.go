package main

// The fleet regime certifies the distributed cache tier (internal/cluster +
// the peer hooks in internal/api): N in-process replicas, each a full tuned
// api.Server whose handler — including the /internal/peer endpoints — is
// served on its own loopback listener, so the peer protocol crosses a real
// HTTP boundary while the client drive stays in-process (MeasureQuery),
// measuring the serving path rather than client-side HTTP overhead.
//
// Traffic is a round-robin client over D distinct large profiles: pass p
// sends key i to replica (i+p) mod R, with a barrier between passes. With
// passes == replicas every (key, replica) pair is visited exactly once, so
// the no-peer baseline fleet pays a full cold miss (parse, canonical key,
// evaluation, render) for every single request — D×R evaluations — while
// the peer fleet evaluates each key once fleet-wide (the first toucher
// evaluates and synchronously pushes to the owner; every later replica
// peer-fetches the bytes). The certificate gates both effects:
//
//   - hit amplification: total evaluations per distinct key ≤ 1.25 with the
//     tier on (vs ≈ replicas without), re-derived by cmd/checkbench from the
//     raw eval counters;
//   - wall clock: the 95% CI low end of the peer/no-peer throughput ratio
//     over ≥ 5 paired samples ≥ 2×; each recorded sample is the
//     median-ratio pair of three back-to-back fresh-fleet drive pairs
//     (see fleetPairsPerSample).
//
// Every tuned-fleet body is compared byte-for-byte against a solo server's
// evaluation of the same query, so the regime doubles as a golden test: a
// peer-fetched response must be indistinguishable from a local one.

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"hetero/internal/api"
	"hetero/internal/cluster"
)

// fleetThreshold is the certified floor for the 95% CI low end of the
// peer-fleet / no-peer-fleet throughput ratio.
const fleetThreshold = 2.0

// fleetAmpThreshold is the certified ceiling on evaluations per distinct key
// with the tier on. The ideal is exactly 1.0 (barriers plus synchronous
// push-on-fallback make every later touch a local or peer hit); the slack
// absorbs the occasional peer fetch lost to a timeout under CPU contention,
// each of which falls back to one extra local evaluation by design.
const fleetAmpThreshold = 1.25

// fleetSamples is the benchstat-style paired-sample count; cmd/checkbench
// rejects certificates below its minSamples floor (5), so -quick cannot
// certify. Nine samples (vs the floor of five) buy a usefully tighter
// Student-t interval on a single-CPU host where scheduler noise is real.
const fleetSamples = 9

// fleetHedgeDelay for the certified run sits well above a healthy loopback
// round trip: hedges are a tail-rescue mechanism, and firing them against
// an unloaded twin would only double the request count. The chaos run uses
// an aggressive delay instead, precisely to exercise them.
const fleetHedgeDelay = 25 * time.Millisecond

// fleetPairsPerSample: each recorded sample is the median-ratio pair of
// three back-to-back (baseline, tuned) fresh-fleet drive pairs. A
// time-shared host stalls in two modes — transient (~30 ms) blips and
// sustained multi-second slow windows — and either one landing on a
// single drive swings that sample's ratio by 2×, enough to blow the 95%
// CI even when every sample still clears the threshold. Pairing the
// sides back-to-back makes a sustained slowdown hit both drives of a
// pair and cancel in their ratio; a one-sided stall corrupts only one
// pair, and the median rejects it without trimming the recorded sample
// pool itself. The median pair's wall clocks and its eval counters are
// recorded together, so checkbench's amplification audit reads exactly
// the drives the wall-clock claim is built from.
const fleetPairsPerSample = 3

type fleetSizes struct {
	replicas int // fleet size R
	keys     int // distinct large keys D
	passes   int // rotations; == replicas so every baseline request is cold
	profileN int // elements per profile (≥ rawFastPathMinQuery bytes as a query)
	samples  int
	clients  int // concurrent in-flight requests within a pass
}

func fleetDefaultSizes(quick bool) fleetSizes {
	if quick {
		return fleetSizes{replicas: 2, keys: 4, passes: 2, profileN: 6000, samples: 2, clients: 4}
	}
	// 48 keys (not 24) keeps each timed drive long enough — roughly a
	// second for the baseline, half that tuned — that a single ~30ms
	// scheduler stall on a time-shared host cannot move a sample by
	// tens of percent. passes == replicas is load-bearing: the rotation
	// then hands every key to every replica exactly once, so every
	// baseline request is a cold miss by construction.
	return fleetSizes{replicas: 4, keys: 48, passes: 4, profileN: 24576, samples: fleetSamples, clients: 4}
}

// fleet is N live replicas with their peer listeners.
type fleet struct {
	servers []*api.Server
	https   []*http.Server
	addrs   []string
}

// startFleet boots n replicas. With peer=true every replica gets the cache
// tier with the identical membership list — late-bound after all listeners
// exist, exactly as heterod's -peers/-self flags would configure a static
// fleet. With peer=false the same servers run with no tier: the no-peer
// baseline fleet.
func startFleet(n int, peer bool, hedge, timeout time.Duration) *fleet {
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv := api.NewServer()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("benchserve: fleet listener: %v", err))
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
		f.servers = append(f.servers, srv)
		f.https = append(f.https, hs)
		f.addrs = append(f.addrs, ln.Addr().String())
	}
	if peer {
		for i, srv := range f.servers {
			tier, err := cluster.New(cluster.Config{
				Self:       f.addrs[i],
				Peers:      f.addrs,
				HedgeDelay: hedge,
				Timeout:    timeout,
			})
			if err != nil {
				panic(fmt.Sprintf("benchserve: fleet tier: %v", err))
			}
			srv.EnableCluster(tier)
		}
	}
	return f
}

func (f *fleet) close() {
	for _, hs := range f.https {
		hs.Close()
	}
}

// evals sums measure-path evaluations across the fleet — the quantity the
// amplification gate divides by distinct keys.
func (f *fleet) evals() uint64 {
	var sum uint64
	for _, s := range f.servers {
		sum += s.MeasureEvals()
	}
	return sum
}

// driveFleet runs the rotating round-robin drive: pass p sends key i to
// replica route(p, i), clients requests in flight at a time, a barrier
// between passes (so a pass's synchronous pushes have landed before the
// next pass reads). want, when non-nil, is the per-key golden body from a
// solo server; every response must match it byte-for-byte. beforePass, when
// non-nil, runs at each pass boundary (the chaos hook).
func driveFleet(f *fleet, queries []string, passes, clients int, want [][]byte,
	route func(p, i int) int, beforePass func(p int)) loadStats {
	lats := make([]time.Duration, 0, passes*len(queries))
	var mu sync.Mutex
	runtime.GC() // level the GC state so paired runs compare fairly
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for p := 0; p < passes; p++ {
		if beforePass != nil {
			beforePass(p)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, clients)
		for i, q := range queries {
			replica := f.servers[route(p, i)]
			wg.Add(1)
			sem <- struct{}{}
			go func(replica *api.Server, i int, q string) {
				defer wg.Done()
				defer func() { <-sem }()
				t1 := time.Now()
				status, body := replica.MeasureQuery(q)
				d := time.Since(t1)
				if status != 200 {
					panic(fmt.Sprintf("benchserve: fleet key %d: status %d", i, status))
				}
				if want != nil && !bytes.Equal(body, want[i]) {
					panic(fmt.Sprintf("benchserve: fleet key %d: body diverges from solo evaluation", i))
				}
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			}(replica, i, q)
		}
		wg.Wait()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	out := loadStats{ops: passes * len(queries), wall: wall, latencies: lats}
	if out.ops > 0 {
		out.allocsPerOp = math.Round(float64(after.Mallocs-before.Mallocs)/float64(out.ops)*1000) / 1000
	}
	return out
}

// fleetQueries builds D distinct large-profile keys; deterministic seeds so
// every sample (and checkbench's mental model) sees identical traffic.
func fleetQueries(keys, profileN int) []string {
	out := make([]string, keys)
	for i := range out {
		out[i] = profileQuery(profileN, uint64(0xF1EE7+i*7919))
	}
	return out
}

// goldenBodies evaluates every query on a solo tier-less server — the
// reference a peer-served byte must equal.
func goldenBodies(queries []string) [][]byte {
	ref := api.NewServer()
	want := make([][]byte, len(queries))
	for i, q := range queries {
		status, body := ref.MeasureQuery(q)
		if status != 200 {
			panic(fmt.Sprintf("benchserve: fleet golden key %d: status %d", i, status))
		}
		want[i] = body
	}
	return want
}

// medianFleetPair runs fleetPairsPerSample back-to-back (baseline, tuned)
// fresh-fleet drive pairs and returns the load stats and fleet-wide eval
// counts of the pair with the median tuned/baseline throughput ratio —
// one recorded sample.
func medianFleetPair(sz fleetSizes, queries []string, want [][]byte,
	route func(p, i int) int) (base, tuned loadStats, baseEvals, tunedEvals uint64) {
	type pair struct {
		base, tuned    loadStats
		bEvals, tEvals uint64
		ratio          float64
	}
	pairs := make([]pair, fleetPairsPerSample)
	for j := range pairs {
		bf := startFleet(sz.replicas, false, 0, 0)
		pairs[j].base = driveFleet(bf, queries, sz.passes, sz.clients, want, route, nil)
		pairs[j].bEvals = bf.evals()
		bf.close()

		tf := startFleet(sz.replicas, true, fleetHedgeDelay, 2*time.Second)
		pairs[j].tuned = driveFleet(tf, queries, sz.passes, sz.clients, want, route, nil)
		pairs[j].tEvals = tf.evals()
		tf.close()

		pairs[j].ratio = pairs[j].tuned.opsPerSec() / pairs[j].base.opsPerSec()
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].ratio < pairs[b].ratio })
	med := pairs[len(pairs)/2]
	return med.base, med.tuned, med.bEvals, med.tEvals
}

// runFleet runs the paired fleet samples and builds the certificate.
func runFleet(quick bool) RegimeResult {
	sz := fleetDefaultSizes(quick)
	queries := fleetQueries(sz.keys, sz.profileN)
	want := goldenBodies(queries)
	rotate := func(p, i int) int { return (i + p) % sz.replicas }

	ratios := make([]float64, 0, sz.samples)
	var sumBase, sumTuned float64
	var fleetEvals, baseEvals uint64
	var lastTuned loadStats
	for k := 0; k < sz.samples; k++ {
		base, tuned, bEvals, tEvals := medianFleetPair(sz, queries, want, rotate)
		baseEvals += bEvals
		fleetEvals += tEvals

		if base.opsPerSec() > 0 {
			ratios = append(ratios, tuned.opsPerSec()/base.opsPerSec())
			fmt.Fprintf(os.Stderr, "benchserve: fleet sample %d/%d: base=%.0f ops/s tuned=%.0f ops/s ratio=%.3f\n",
				k+1, sz.samples, base.opsPerSec(), tuned.opsPerSec(), tuned.opsPerSec()/base.opsPerSec())
		}
		sumBase += base.opsPerSec()
		sumTuned += tuned.opsPerSec()
		lastTuned = tuned
	}
	mean, lo, _ := meanCI95(ratios)
	perKey := float64(sz.keys * sz.samples)
	r := RegimeResult{
		Name:                  "fleet",
		Requests:              sz.keys * sz.passes,
		BaselineOpsPerSec:     sumBase / float64(sz.samples),
		TunedOpsPerSec:        sumTuned / float64(sz.samples),
		Speedup:               mean,
		SpeedupCILow:          lo,
		Samples:               len(ratios),
		TunedP50Ms:            lastTuned.percentileMs(50),
		TunedP99Ms:            lastTuned.percentileMs(99),
		TunedAllocsPerOp:      lastTuned.allocsPerOp,
		Threshold:             fleetThreshold,
		Replicas:              sz.replicas,
		DistinctKeys:          sz.keys,
		Passes:                sz.passes,
		FleetEvals:            fleetEvals,
		BaselineEvals:         baseEvals,
		Amplification:         float64(fleetEvals) / perKey,
		BaselineAmplification: float64(baseEvals) / perKey,
		AmpThreshold:          fleetAmpThreshold,
	}
	r.MeetsThreshold = r.SpeedupCILow >= r.Threshold && r.Amplification <= r.AmpThreshold
	return r
}

// runFleetChaos is the `make chaos` fleet run: a live peer fleet loses one
// replica mid-drive — its listener closes after pass 2, so surviving
// replicas' fetches and pushes toward it start failing — and the client
// routes the victim's share to survivors. Every request must still return
// 200 with bytes identical to a solo evaluation: peer-tier degradation may
// cost evaluations, never correctness or availability. The aggressive hedge
// delay and short timeout make the hedged/fallback paths fire under real
// churn rather than only in unit tests.
func runFleetChaos() RegimeResult {
	sz := fleetSizes{replicas: 4, keys: 12, passes: 4, profileN: 8192, clients: 8}
	queries := fleetQueries(sz.keys, sz.profileN)
	want := goldenBodies(queries)
	const victim = 1
	f := startFleet(sz.replicas, true, time.Millisecond, 300*time.Millisecond)
	defer f.close()

	killAt := sz.passes / 2
	route := func(p, i int) int {
		r := (i + p) % sz.replicas
		if p >= killAt && r == victim {
			r = (r + 1) % sz.replicas
		}
		return r
	}
	stats := driveFleet(f, queries, sz.passes, sz.clients, want, route,
		func(p int) {
			if p == killAt {
				f.https[victim].Close()
			}
		})

	var errors, fallbacks, hedges uint64
	for i, s := range f.servers {
		if i == victim {
			continue
		}
		for _, ps := range s.Cluster().Stats() {
			errors += ps.Errors
			fallbacks += ps.Fallbacks
			hedges += ps.Hedges
		}
	}
	fmt.Fprintf(os.Stderr,
		"benchserve: fleet_chaos survived replica kill: %d requests ok (errors=%d fallbacks=%d hedges=%d across survivors)\n",
		stats.ops, errors, fallbacks, hedges)
	return RegimeResult{
		Name:             "fleet_chaos",
		Requests:         stats.ops,
		TunedOpsPerSec:   stats.opsPerSec(),
		TunedP50Ms:       stats.percentileMs(50),
		TunedP99Ms:       stats.percentileMs(99),
		TunedAllocsPerOp: stats.allocsPerOp,
		MeetsThreshold:   true, // availability regime: reaching here means every request passed
	}
}
