package main

import (
	"testing"
	"time"
)

// TestFleetConvergesToOneEvalPerKey is the fleet-harness smoke: a 2-replica
// peer fleet driven with the rotating round-robin client must evaluate each
// distinct key exactly once fleet-wide (first toucher evaluates and pushes
// to the owner; every later touch is a local or peer hit), with every body
// byte-identical to a solo server's evaluation — driveFleet panics on any
// divergence. Hedging is disabled so the request count is deterministic.
func TestFleetConvergesToOneEvalPerKey(t *testing.T) {
	queries := fleetQueries(3, 6000)
	want := goldenBodies(queries)
	f := startFleet(2, true, -1, 2*time.Second)
	defer f.close()
	driveFleet(f, queries, 2, 2, want, func(p, i int) int { return (i + p) % 2 }, nil)
	if got := f.evals(); got != uint64(len(queries)) {
		t.Fatalf("fleet evaluated %d times for %d distinct keys, want exactly one each", got, len(queries))
	}
}

// TestFleetBaselineReEvaluatesEverywhere pins the other side of the pairing:
// without the tier the same drive pays one evaluation per (key, replica)
// visit, the amplification the certificate's baseline counters must show.
func TestFleetBaselineReEvaluatesEverywhere(t *testing.T) {
	queries := fleetQueries(3, 6000)
	want := goldenBodies(queries)
	f := startFleet(2, false, 0, 0)
	defer f.close()
	driveFleet(f, queries, 2, 2, want, func(p, i int) int { return (i + p) % 2 }, nil)
	if got, wantN := f.evals(), uint64(2*len(queries)); got != wantN {
		t.Fatalf("no-peer fleet evaluated %d times, want %d (one per key per replica)", got, wantN)
	}
}
