// Command checkbench guards the repository's benchmark certificates. Each
// BENCH_*.json document is produced by its generator (cmd/benchincr,
// cmd/benchfault, cmd/benchserve, cmd/benchbatch) with a top-level "pass"
// flag that encodes that generator's acceptance thresholds; checkbench
// verifies every document exists, parses, and passed, and exits non-zero
// otherwise — the hook `make check` uses to fail a build whose perf claims
// regressed.
//
// Regimes that carry benchstat-style evidence ("samples" and
// "speedup_ci_low" fields) are held to the stronger gate: at least
// minSamples samples, and the low end of the 95% confidence interval — not
// the mean — must clear the threshold. A certificate generated with -quick
// (too few samples) therefore cannot pass a thresholded regime, and a
// hand-edited mean cannot mask a noisy run.
//
//	go run ./cmd/checkbench                  # checks the default documents
//	go run ./cmd/checkbench A.json B.json    # checks an explicit list
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// defaultDocs are the certificates `make bench` regenerates.
var defaultDocs = []string{"BENCH_incr.json", "BENCH_fault.json", "BENCH_serve.json", "BENCH_batch.json"}

// minSamples is the benchstat-style floor for confidence-interval regimes,
// matching cmd/benchbatch.
const minSamples = 5

func main() {
	docs := os.Args[1:]
	if len(docs) == 0 {
		docs = defaultDocs
	}
	failures := 0
	for _, path := range docs {
		if err := checkDoc(path); err != nil {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %v\n", path, err)
			failures++
			continue
		}
		fmt.Printf("checkbench: %s ok\n", path)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "checkbench: %d of %d certificates failed (run `make bench` to regenerate)\n",
			failures, len(docs))
		os.Exit(1)
	}
}

// checkDoc validates one certificate: it must parse as a JSON object whose
// "pass" field is boolean true, and every regime entry must satisfy
// checkRegime — so a hand-edited pass flag cannot mask a failed regime.
func checkDoc(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	pass, ok := doc["pass"].(bool)
	if !ok {
		return fmt.Errorf(`missing boolean "pass" field`)
	}
	if !pass {
		return fmt.Errorf("certificate reports pass = false")
	}
	if regimes, ok := doc["regimes"].([]interface{}); ok {
		for _, r := range regimes {
			regime, ok := r.(map[string]interface{})
			if !ok {
				return fmt.Errorf("malformed regimes entry")
			}
			if err := checkRegime(regime); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkRegime validates one regime entry. Every regime must report
// meets_threshold = true (when present). Regimes carrying
// confidence-interval evidence are re-derived from the raw fields rather
// than trusted: samples ≥ minSamples and speedup_ci_low ≥ threshold.
func checkRegime(regime map[string]interface{}) error {
	name := regime["name"]
	if met, ok := regime["meets_threshold"].(bool); ok && !met {
		return fmt.Errorf("regime %v misses its threshold", name)
	}
	threshold, hasThreshold := regime["threshold"].(float64)
	ciLow, hasCI := regime["speedup_ci_low"].(float64)
	if !hasCI {
		return nil // fixed-threshold document (older generators)
	}
	samples, ok := regime["samples"].(float64)
	if !ok {
		return fmt.Errorf("regime %v has a confidence interval but no sample count", name)
	}
	if !hasThreshold || threshold <= 0 {
		return nil // report-only regime
	}
	if int(samples) < minSamples {
		return fmt.Errorf("regime %v certified from %d samples, need ≥ %d (was it generated with -quick?)",
			name, int(samples), minSamples)
	}
	if ciLow < threshold {
		return fmt.Errorf("regime %v: speedup CI low %.3f misses threshold %.3f", name, ciLow, threshold)
	}
	return nil
}
