// Command checkbench guards the repository's benchmark certificates. Each
// BENCH_*.json document is produced by its generator (cmd/benchincr,
// cmd/benchfault, cmd/benchserve) with a top-level "pass" flag that encodes
// that generator's acceptance thresholds; checkbench verifies every
// document exists, parses, and passed, and exits non-zero otherwise — the
// hook `make check` uses to fail a build whose perf claims regressed.
//
//	go run ./cmd/checkbench                  # checks the default three
//	go run ./cmd/checkbench A.json B.json    # checks an explicit list
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// defaultDocs are the certificates `make bench` regenerates.
var defaultDocs = []string{"BENCH_incr.json", "BENCH_fault.json", "BENCH_serve.json"}

func main() {
	docs := os.Args[1:]
	if len(docs) == 0 {
		docs = defaultDocs
	}
	failures := 0
	for _, path := range docs {
		if err := checkDoc(path); err != nil {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %v\n", path, err)
			failures++
			continue
		}
		fmt.Printf("checkbench: %s ok\n", path)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "checkbench: %d of %d certificates failed (run `make bench` to regenerate)\n",
			failures, len(docs))
		os.Exit(1)
	}
}

// checkDoc validates one certificate: it must parse as a JSON object whose
// "pass" field is boolean true. Documents with per-regime thresholds
// (BENCH_serve.json) additionally have every "meets_threshold" checked, so
// a hand-edited pass flag cannot mask a failed regime.
func checkDoc(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	pass, ok := doc["pass"].(bool)
	if !ok {
		return fmt.Errorf(`missing boolean "pass" field`)
	}
	if !pass {
		return fmt.Errorf("certificate reports pass = false")
	}
	if regimes, ok := doc["regimes"].([]interface{}); ok {
		for _, r := range regimes {
			regime, ok := r.(map[string]interface{})
			if !ok {
				return fmt.Errorf("malformed regimes entry")
			}
			if met, ok := regime["meets_threshold"].(bool); ok && !met {
				return fmt.Errorf("regime %v misses its threshold", regime["name"])
			}
		}
	}
	return nil
}
