// Command checkbench guards the repository's benchmark certificates. Each
// BENCH_*.json document is produced by its generator (cmd/benchincr,
// cmd/benchfault, cmd/benchserve, cmd/benchbatch) with a top-level "pass"
// flag that encodes that generator's acceptance thresholds; checkbench
// verifies every document exists, parses, and passed, and exits non-zero
// otherwise — the hook `make check` uses to fail a build whose perf claims
// regressed.
//
// Regimes that carry benchstat-style evidence ("samples" and
// "speedup_ci_low" fields) are held to the stronger gate: at least
// minSamples samples, and the low end of the 95% confidence interval — not
// the mean — must clear the threshold. A certificate generated with -quick
// (too few samples) therefore cannot pass a thresholded regime, and a
// hand-edited mean cannot mask a noisy run.
//
// Certificates are additionally compared against the committed previous
// certificate of the same name in -history (default bench_history/), when
// one exists. Two history gates apply: a document carrying a "memory" regime
// (cmd/benchbatch's bounded-peak-memory certificate) may not grow its
// streamed peak more than 20% over the committed one, and any thresholded
// regime (cmd/benchserve's herd regimes, cmd/benchbatch's few_large) may not
// drop its speedup below 70% of the committed value. Either way a change
// that quietly regresses — while still clearing the absolute threshold —
// fails the build until the committed history is deliberately updated.
//
//	go run ./cmd/checkbench                  # checks the default documents
//	go run ./cmd/checkbench A.json B.json    # checks an explicit list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// defaultDocs are the certificates `make bench` regenerates.
var defaultDocs = []string{"BENCH_incr.json", "BENCH_fault.json", "BENCH_serve.json", "BENCH_batch.json"}

// minSamples is the benchstat-style floor for confidence-interval regimes,
// matching cmd/benchbatch.
const minSamples = 5

// maxPeakGrowth bounds the streamed peak against the committed history:
// current peak_stream_bytes may be at most 1.2× the committed value.
const maxPeakGrowth = 1.20

// minSpeedupKeep bounds thresholded regimes against the committed history:
// a regime's speedup may not fall below this fraction of the committed
// value. The slack absorbs run-to-run noise (the absolute threshold already
// guards correctness) while still catching a change that, say, halves the
// coalescing win without tripping the 2× floor.
const minSpeedupKeep = 0.70

func main() {
	history := flag.String("history", "bench_history",
		"directory of committed prior certificates for the peak-memory regression gate (empty disables)")
	flag.Parse()
	docs := flag.Args()
	if len(docs) == 0 {
		docs = defaultDocs
	}
	failures := 0
	for _, path := range docs {
		if err := checkDoc(path); err != nil {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %v\n", path, err)
			failures++
			continue
		}
		if err := checkHistory(path, *history); err != nil {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %v\n", path, err)
			failures++
			continue
		}
		fmt.Printf("checkbench: %s ok\n", path)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "checkbench: %d of %d certificates failed (run `make bench` to regenerate)\n",
			failures, len(docs))
		os.Exit(1)
	}
}

// checkDoc validates one certificate: it must parse as a JSON object whose
// "pass" field is boolean true, and every regime entry must satisfy
// checkRegime — so a hand-edited pass flag cannot mask a failed regime.
func checkDoc(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	pass, ok := doc["pass"].(bool)
	if !ok {
		return fmt.Errorf(`missing boolean "pass" field`)
	}
	if !pass {
		return fmt.Errorf("certificate reports pass = false")
	}
	if regimes, ok := doc["regimes"].([]interface{}); ok {
		for _, r := range regimes {
			regime, ok := r.(map[string]interface{})
			if !ok {
				return fmt.Errorf("malformed regimes entry")
			}
			if err := checkRegime(regime); err != nil {
				return err
			}
		}
	}
	if mem, ok := doc["memory"].(map[string]interface{}); ok {
		if err := checkMemory(mem); err != nil {
			return err
		}
	}
	return nil
}

// checkMemory validates the bounded-peak-memory regime: meets_threshold must
// be true and the ratio is re-derived from the raw peaks rather than
// trusted, so a hand-edited flag cannot mask a blown memory budget.
func checkMemory(mem map[string]interface{}) error {
	if met, ok := mem["meets_threshold"].(bool); !ok || !met {
		return fmt.Errorf("memory regime misses its threshold")
	}
	streamPeak, okS := mem["peak_stream_bytes"].(float64)
	bufPeak, okB := mem["peak_buffered_bytes"].(float64)
	threshold, okT := mem["ratio_threshold"].(float64)
	if !okS || !okB || !okT || bufPeak <= 0 || threshold <= 0 {
		return fmt.Errorf("memory regime missing peak or threshold fields")
	}
	if ratio := streamPeak / bufPeak; ratio > threshold {
		return fmt.Errorf("memory regime: peak ratio %.3f exceeds threshold %.3f", ratio, threshold)
	}
	return nil
}

// checkHistory compares a certificate against the committed previous
// certificate of the same name in dir: peak memory may not grow beyond
// maxPeakGrowth, and no thresholded regime's speedup may fall below
// minSpeedupKeep of the committed value. Absent history (no directory, no
// prior document, no comparable regime on the committed side) passes — the
// gate only ever tightens when the committed side carries evidence.
func checkHistory(path, dir string) error {
	if dir == "" {
		return nil
	}
	committed := filepath.Join(dir, filepath.Base(path))
	if prev, ok := memoryPeakOf(committed); ok {
		cur, ok := memoryPeakOf(path)
		if !ok {
			return fmt.Errorf("committed history has a memory regime but the current certificate does not")
		}
		if cur > prev*maxPeakGrowth {
			return fmt.Errorf("peak_stream_bytes %.0f regressed more than %d%% over the committed %.0f (update %s if intended)",
				cur, int(maxPeakGrowth*100)-100, prev, committed)
		}
	}
	prevSpeedups := speedupsOf(committed)
	if len(prevSpeedups) == 0 {
		return nil
	}
	curSpeedups := speedupsOf(path)
	for name, prev := range prevSpeedups {
		cur, ok := curSpeedups[name]
		if !ok {
			return fmt.Errorf("committed history certifies regime %q but the current certificate dropped it", name)
		}
		if cur < prev*minSpeedupKeep {
			return fmt.Errorf("regime %q: speedup %.3f fell below %d%% of the committed %.3f (update %s if intended)",
				name, cur, int(minSpeedupKeep*100), prev, committed)
		}
	}
	return nil
}

// speedupsOf reads a certificate's thresholded regimes as name → speedup.
// Only regimes carrying both a positive threshold and a positive speedup
// participate in the history gate — report-only regimes (no threshold) may
// drift freely. cmd/benchincr's "speedup_search" entries (keyed by cluster
// size rather than name) fold in as "speedup_search_n<N>", so BENCH_incr
// joins the history gate alongside the named regimes. An absent or
// malformed file reads as no regimes.
func speedupsOf(path string) map[string]float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc struct {
		Regimes []struct {
			Name      string  `json:"name"`
			Threshold float64 `json:"threshold"`
			Speedup   float64 `json:"speedup"`
		} `json:"regimes"`
		Search []struct {
			N         int     `json:"n"`
			Threshold float64 `json:"threshold"`
			Speedup   float64 `json:"speedup"`
		} `json:"speedup_search"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil
	}
	out := make(map[string]float64)
	for _, r := range doc.Regimes {
		if r.Threshold > 0 && r.Speedup > 0 {
			out[r.Name] = r.Speedup
		}
	}
	for _, r := range doc.Search {
		if r.Threshold > 0 && r.Speedup > 0 {
			out[fmt.Sprintf("speedup_search_n%d", r.N)] = r.Speedup
		}
	}
	return out
}

// memoryPeakOf reads a certificate's memory.peak_stream_bytes; ok = false
// when the file is absent or carries no usable memory regime.
func memoryPeakOf(path string) (float64, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var doc struct {
		Memory *struct {
			PeakStreamBytes float64 `json:"peak_stream_bytes"`
		} `json:"memory"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Memory == nil || doc.Memory.PeakStreamBytes <= 0 {
		return 0, false
	}
	return doc.Memory.PeakStreamBytes, true
}

// checkRegime validates one regime entry. Every regime must report
// meets_threshold = true (when present). Regimes carrying
// confidence-interval evidence are re-derived from the raw fields rather
// than trusted: samples ≥ minSamples and speedup_ci_low ≥ threshold.
// Elastic-churn regimes (cmd/benchfault) carry raw useful-work sums and
// are re-derived the same way — see checkChurnRegime.
func checkRegime(regime map[string]interface{}) error {
	name := regime["name"]
	if met, ok := regime["meets_threshold"].(bool); ok && !met {
		return fmt.Errorf("regime %v misses its threshold", name)
	}
	if _, isChurn := regime["useful_replan"]; isChurn {
		return checkChurnRegime(regime)
	}
	if _, isRestart := regime["restart_reevals"]; isRestart {
		// Restart regime: no CI gate (the metric is a hit rate, not a
		// ratio distribution), so the re-derivation below is the whole
		// gate.
		return checkRestartRegime(regime)
	}
	if _, isFleet := regime["fleet_evals"]; isFleet {
		// The amplification gate is extra; the fleet regime then falls
		// through to the ordinary CI gate below for its wall-clock claim.
		if err := checkFleetRegime(regime); err != nil {
			return err
		}
	}
	if _, isSweep := regime["wall_ns_spill_on"]; isSweep {
		// The raw wall-clock re-derivation and the peak-memory gate are
		// extra; the sweep regime then falls through to the ordinary CI
		// gate below.
		if err := checkSweepRegime(regime); err != nil {
			return err
		}
	}
	threshold, hasThreshold := regime["threshold"].(float64)
	ciLow, hasCI := regime["speedup_ci_low"].(float64)
	if !hasCI {
		return nil // fixed-threshold document (older generators)
	}
	samples, ok := regime["samples"].(float64)
	if !ok {
		return fmt.Errorf("regime %v has a confidence interval but no sample count", name)
	}
	if !hasThreshold || threshold <= 0 {
		return nil // report-only regime
	}
	if int(samples) < minSamples {
		return fmt.Errorf("regime %v certified from %d samples, need ≥ %d (was it generated with -quick?)",
			name, int(samples), minSamples)
	}
	if ciLow < threshold {
		return fmt.Errorf("regime %v: speedup CI low %.3f misses threshold %.3f", name, ciLow, threshold)
	}
	return nil
}

// checkFleetRegime validates cmd/benchserve's distributed-cache-tier regime.
// The hit-amplification claim is re-derived from the raw evaluation counters
// rather than trusted: amplification must equal fleet_evals /
// (distinct_keys × samples) and sit within amp_threshold, and the no-peer
// baseline must actually have paid near one cold evaluation per replica per
// key (≥ 75% of replicas) — otherwise the wall-clock ratio was measured
// against a baseline that wasn't doing the work the certificate claims.
func checkFleetRegime(regime map[string]interface{}) error {
	name := regime["name"]
	evals, okE := regime["fleet_evals"].(float64)
	baseEvals, okB := regime["baseline_evals"].(float64)
	keys, okK := regime["distinct_keys"].(float64)
	samples, okS := regime["samples"].(float64)
	ampMax, okT := regime["amp_threshold"].(float64)
	replicas, okR := regime["replicas"].(float64)
	if !okE || !okB || !okK || !okS || !okT || !okR ||
		keys <= 0 || samples <= 0 || ampMax <= 0 || replicas < 2 {
		return fmt.Errorf("regime %v missing raw fleet fields", name)
	}
	if int(samples) < minSamples {
		return fmt.Errorf("regime %v certified from %d samples, need ≥ %d (was it generated with -quick?)",
			name, int(samples), minSamples)
	}
	derived := evals / (keys * samples)
	if reported, ok := regime["amplification"].(float64); ok &&
		!(derived <= reported*1.001+1e-9 && derived >= reported*0.999-1e-9) {
		return fmt.Errorf("regime %v: reported amplification %.3f disagrees with raw counters (%.3f)",
			name, reported, derived)
	}
	if derived > ampMax {
		return fmt.Errorf("regime %v: hit amplification %.3f exceeds threshold %.3f", name, derived, ampMax)
	}
	if baseAmp := baseEvals / (keys * samples); baseAmp < 0.75*replicas {
		return fmt.Errorf("regime %v: baseline amplification %.3f is below 0.75× replicas (%.0f) — the no-peer baseline did not pay its cold misses",
			name, baseAmp, replicas)
	}
	return nil
}

// checkSweepRegime validates cmd/benchserve's on-disk spill-tier regime.
// Nothing is trusted: the per-sample off/on wall-time ratios are re-derived
// from the raw nanosecond arrays and their mean and 95% CI low end must
// agree with the reported speedup and speedup_ci_low within 0.1% (so a
// forged summary cannot pass), the sample count is the array length itself
// (so a -quick run cannot certify), the served-from-disk claim is checked
// against the raw spill-hit counter, and the bounded-memory claim is
// re-derived as peak_bytes ≤ peak_threshold × response_bytes.
func checkSweepRegime(regime map[string]interface{}) error {
	name := regime["name"]
	off, okO := floatsOf(regime["wall_ns_spill_off"])
	on, okN := floatsOf(regime["wall_ns_spill_on"])
	if !okO || !okN || len(off) == 0 || len(off) != len(on) {
		return fmt.Errorf("regime %v: malformed raw wall-clock arrays", name)
	}
	if len(on) < minSamples {
		return fmt.Errorf("regime %v certified from %d samples, need ≥ %d (was it generated with -quick?)",
			name, len(on), minSamples)
	}
	ratios := make([]float64, len(on))
	for i := range on {
		if on[i] <= 0 || off[i] <= 0 {
			return fmt.Errorf("regime %v: non-positive wall clock in sample %d", name, i)
		}
		ratios[i] = off[i] / on[i]
	}
	mean, lo := meanCI95Low(ratios)
	if reported, ok := regime["speedup"].(float64); ok &&
		!(mean <= reported*1.001 && mean >= reported*0.999) {
		return fmt.Errorf("regime %v: reported speedup %.3f disagrees with raw wall clocks (%.3f)",
			name, reported, mean)
	}
	if reported, ok := regime["speedup_ci_low"].(float64); ok &&
		!(lo <= reported*1.001+1e-9 && lo >= reported*0.999-1e-9) {
		return fmt.Errorf("regime %v: reported speedup_ci_low %.3f disagrees with raw wall clocks (%.3f)",
			name, reported, lo)
	}
	bodies, okB := regime["sweep_bodies"].(float64)
	hits, okH := regime["spill_hits"].(float64)
	if !okB || !okH || bodies <= 0 {
		return fmt.Errorf("regime %v missing raw spill-hit fields", name)
	}
	if hits < bodies*float64(len(on)) {
		return fmt.Errorf("regime %v: %0.f spill hits cannot cover %0.f bodies × %d samples — the timed passes were not served from disk",
			name, hits, bodies, len(on))
	}
	peak, okP := regime["peak_bytes"].(float64)
	resp, okR := regime["response_bytes"].(float64)
	ratioMax, okT := regime["peak_threshold"].(float64)
	if !okP || !okR || !okT || resp <= 0 || ratioMax <= 0 {
		return fmt.Errorf("regime %v missing peak-memory fields", name)
	}
	if peak > ratioMax*resp {
		return fmt.Errorf("regime %v: spill-hit heap peak %.0f exceeds %.2f× the %.0f-byte response — the streamed serve is not bounded",
			name, peak, ratioMax, resp)
	}
	return nil
}

// checkRestartRegime validates cmd/benchserve's warm-restart durability
// regime. Nothing is trusted: the hit rate is re-derived from the raw
// per-sample re-evaluation counters as 1 − Σreevals/(keys × samples) and
// must agree with the reported speedup within 0.1% (so a forged summary
// cannot pass), the sample count is the array length itself (so a -quick
// run cannot certify), and every sample's spill-hit counter must cover the
// keys it did not re-evaluate (so the answers provably came from the
// reopened segments rather than some other warm path).
func checkRestartRegime(regime map[string]interface{}) error {
	name := regime["name"]
	reevals, okR := floatsOf(regime["restart_reevals"])
	hits, okH := floatsOf(regime["restart_spill_hits"])
	keys, okK := regime["restart_keys"].(float64)
	threshold, okT := regime["restart_hit_threshold"].(float64)
	if !okR || !okH || !okK || !okT || keys <= 0 || threshold <= 0 ||
		len(reevals) == 0 || len(reevals) != len(hits) {
		return fmt.Errorf("regime %v missing raw restart fields", name)
	}
	if len(reevals) < minSamples {
		return fmt.Errorf("regime %v certified from %d samples, need ≥ %d (was it generated with -quick?)",
			name, len(reevals), minSamples)
	}
	if samples, ok := regime["samples"].(float64); ok && int(samples) != len(reevals) {
		return fmt.Errorf("regime %v: reported %d samples but carries %d raw samples",
			name, int(samples), len(reevals))
	}
	var total float64
	for i, re := range reevals {
		if re < 0 || re > keys {
			return fmt.Errorf("regime %v: sample %d re-evaluations %.0f outside [0, %.0f]", name, i, re, keys)
		}
		if hits[i] < keys-re {
			return fmt.Errorf("regime %v: sample %d spill hits %.0f cannot cover %.0f keys at %.0f re-evals — the replay was not served from the reopened segments",
				name, i, hits[i], keys, re)
		}
		total += re
	}
	derived := 1 - total/(keys*float64(len(reevals)))
	if reported, ok := regime["speedup"].(float64); ok &&
		!(derived <= reported*1.001+1e-9 && derived >= reported*0.999-1e-9) {
		return fmt.Errorf("regime %v: reported hit rate %.3f disagrees with raw counters (%.3f)",
			name, reported, derived)
	}
	if derived < threshold {
		return fmt.Errorf("regime %v: restart hit rate %.3f misses threshold %.3f", name, derived, threshold)
	}
	return nil
}

// floatsOf reads a JSON array field as float64s.
func floatsOf(v interface{}) ([]float64, bool) {
	arr, ok := v.([]interface{})
	if !ok {
		return nil, false
	}
	out := make([]float64, len(arr))
	for i, e := range arr {
		f, ok := e.(float64)
		if !ok {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// meanCI95Low re-derives the sample mean and the low end of its 95%
// Student-t confidence interval, matching the generators' arithmetic
// (cmd/benchserve, cmd/benchbatch).
func meanCI95Low(xs []float64) (mean, lo float64) {
	n := len(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, mean
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, mean - tValue95(n-1)*sd/math.Sqrt(float64(n))
}

// tValue95 is the two-sided 95% Student-t critical value for df degrees
// of freedom (df ≥ 8 rounds down to the asymptotic value), matching
// cmd/benchserve.
func tValue95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306}
	if df <= 0 {
		return table[1]
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// checkChurnRegime validates cmd/benchfault's elastic-churn robustness
// regime. Nothing is trusted: the useful-work ratio is re-derived from the
// raw sums (so a forged "speedup" cannot pass), the seed pool must be at
// least minSamples (so a thinned run cannot pass), and the scheme's
// fault-free duplication overhead must sit within its own threshold.
func checkChurnRegime(regime map[string]interface{}) error {
	name := regime["name"]
	replan, okR := regime["useful_replan"].(float64)
	redundant, okD := regime["useful_redundant"].(float64)
	threshold, okT := regime["threshold"].(float64)
	seeds, okS := regime["seeds"].(float64)
	if !okR || !okD || !okT || !okS || threshold <= 0 {
		return fmt.Errorf("regime %v missing raw churn fields", name)
	}
	if int(seeds) < minSamples {
		return fmt.Errorf("regime %v certified from %d seeds, need ≥ %d", name, int(seeds), minSamples)
	}
	if replan <= 0 {
		return fmt.Errorf("regime %v reports no replan salvage to compare against", name)
	}
	derived := redundant / replan
	if reported, ok := regime["speedup"].(float64); ok && !(derived <= reported*1.001 && derived >= reported*0.999) {
		return fmt.Errorf("regime %v: reported speedup %.3f disagrees with raw ratio %.3f", name, reported, derived)
	}
	if derived < threshold {
		return fmt.Errorf("regime %v: useful-work ratio %.3f misses threshold %.3f", name, derived, threshold)
	}
	overhead, okO := regime["empty_plan_overhead"].(float64)
	overheadMax, okM := regime["overhead_threshold"].(float64)
	if !okO || !okM || overheadMax <= 0 {
		return fmt.Errorf("regime %v missing overhead fields", name)
	}
	if overhead > overheadMax*(1+1e-9) {
		return fmt.Errorf("regime %v: empty-plan overhead %.3f exceeds %.3f", name, overhead, overheadMax)
	}
	return nil
}
