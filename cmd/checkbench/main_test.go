package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDoc(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantErr bool
	}{
		{"passing", `{"pass": true}`, false},
		{"failing", `{"pass": false}`, true},
		{"missing pass", `{"speedup": 12}`, true},
		{"pass not boolean", `{"pass": "true"}`, true},
		{"not json", `{pass: yes}`, true},
		{"regimes all met", `{"pass": true, "regimes": [{"name": "mixed", "meets_threshold": true}]}`, false},
		{"regime missed but pass forged", `{"pass": true, "regimes": [{"name": "mixed", "meets_threshold": false}]}`, true},
		{"ci gate met", `{"pass": true, "regimes": [{"name": "few_large", "meets_threshold": true,
			"threshold": 3, "samples": 5, "speedup": 5.1, "speedup_ci_low": 4.2}]}`, false},
		{"ci low under threshold despite forged flags", `{"pass": true, "regimes": [{"name": "few_large",
			"meets_threshold": true, "threshold": 3, "samples": 5, "speedup": 5.1, "speedup_ci_low": 2.4}]}`, true},
		{"quick run cannot certify", `{"pass": true, "regimes": [{"name": "few_large", "meets_threshold": true,
			"threshold": 3, "samples": 2, "speedup": 9.9, "speedup_ci_low": 9.0}]}`, true},
		{"ci without samples", `{"pass": true, "regimes": [{"name": "few_large", "meets_threshold": true,
			"threshold": 3, "speedup_ci_low": 4.0}]}`, true},
		{"report-only ci regime needs no samples gate", `{"pass": true, "regimes": [{"name": "many_small",
			"meets_threshold": true, "samples": 2, "speedup_ci_low": 0.9}]}`, false},
		{"memory regime met", `{"pass": true, "memory": {"meets_threshold": true,
			"peak_stream_bytes": 20, "peak_buffered_bytes": 100, "ratio_threshold": 0.25}}`, false},
		{"memory regime missed", `{"pass": true, "memory": {"meets_threshold": false,
			"peak_stream_bytes": 20, "peak_buffered_bytes": 100, "ratio_threshold": 0.25}}`, true},
		{"memory ratio over threshold despite forged flag", `{"pass": true, "memory": {"meets_threshold": true,
			"peak_stream_bytes": 30, "peak_buffered_bytes": 100, "ratio_threshold": 0.25}}`, true},
		{"memory regime missing peaks", `{"pass": true, "memory": {"meets_threshold": true}}`, true},
		{"churn regime met", `{"pass": true, "regimes": [{"name": "churn", "meets_threshold": true,
			"threshold": 1.2, "seeds": 5, "useful_replan": 100, "useful_redundant": 150, "speedup": 1.5,
			"empty_plan_overhead": 2.0, "overhead_threshold": 2, "overhead_ok": true}]}`, false},
		{"churn forged speedup disagrees with raw sums", `{"pass": true, "regimes": [{"name": "churn",
			"meets_threshold": true, "threshold": 1.2, "seeds": 5, "useful_replan": 100, "useful_redundant": 110,
			"speedup": 1.5, "empty_plan_overhead": 2.0, "overhead_threshold": 2, "overhead_ok": true}]}`, true},
		{"churn raw ratio under threshold despite forged flag", `{"pass": true, "regimes": [{"name": "churn",
			"meets_threshold": true, "threshold": 1.2, "seeds": 5, "useful_replan": 100, "useful_redundant": 110,
			"speedup": 1.1, "empty_plan_overhead": 2.0, "overhead_threshold": 2, "overhead_ok": true}]}`, true},
		{"churn thinned seed pool cannot certify", `{"pass": true, "regimes": [{"name": "churn",
			"meets_threshold": true, "threshold": 1.2, "seeds": 2, "useful_replan": 100, "useful_redundant": 150,
			"speedup": 1.5, "empty_plan_overhead": 2.0, "overhead_threshold": 2, "overhead_ok": true}]}`, true},
		{"churn blown duplication overhead", `{"pass": true, "regimes": [{"name": "churn",
			"meets_threshold": true, "threshold": 1.2, "seeds": 5, "useful_replan": 100, "useful_redundant": 150,
			"speedup": 1.5, "empty_plan_overhead": 2.6, "overhead_threshold": 2, "overhead_ok": true}]}`, true},
		{"churn missing raw fields", `{"pass": true, "regimes": [{"name": "churn", "meets_threshold": true,
			"threshold": 1.2, "useful_replan": 100, "speedup": 1.5}]}`, true},
		{"churn zero replan salvage", `{"pass": true, "regimes": [{"name": "churn", "meets_threshold": true,
			"threshold": 1.2, "seeds": 5, "useful_replan": 0, "useful_redundant": 150, "speedup": 1.5,
			"empty_plan_overhead": 2.0, "overhead_threshold": 2, "overhead_ok": true}]}`, true},
		{"fleet regime met", `{"pass": true, "regimes": [{"name": "fleet", "meets_threshold": true,
			"threshold": 2, "samples": 5, "speedup": 2.3, "speedup_ci_low": 2.1, "replicas": 4,
			"distinct_keys": 20, "passes": 4, "fleet_evals": 100, "baseline_evals": 400,
			"amplification": 1.0, "baseline_amplification": 4.0, "amp_threshold": 1.25}]}`, false},
		{"fleet forged amplification disagrees with raw counters", `{"pass": true, "regimes": [{"name": "fleet",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 2.3, "speedup_ci_low": 2.1,
			"replicas": 4, "distinct_keys": 20, "passes": 4, "fleet_evals": 180, "baseline_evals": 400,
			"amplification": 1.0, "baseline_amplification": 4.0, "amp_threshold": 1.25}]}`, true},
		{"fleet amplification over threshold despite forged flag", `{"pass": true, "regimes": [{"name": "fleet",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 2.3, "speedup_ci_low": 2.1,
			"replicas": 4, "distinct_keys": 20, "passes": 4, "fleet_evals": 180, "baseline_evals": 400,
			"amplification": 1.8, "baseline_amplification": 4.0, "amp_threshold": 1.25}]}`, true},
		{"fleet lazy baseline cannot certify", `{"pass": true, "regimes": [{"name": "fleet",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 2.3, "speedup_ci_low": 2.1,
			"replicas": 4, "distinct_keys": 20, "passes": 4, "fleet_evals": 100, "baseline_evals": 120,
			"amplification": 1.0, "baseline_amplification": 1.2, "amp_threshold": 1.25}]}`, true},
		{"fleet quick run cannot certify", `{"pass": true, "regimes": [{"name": "fleet",
			"meets_threshold": true, "threshold": 2, "samples": 2, "speedup": 2.3, "speedup_ci_low": 2.1,
			"replicas": 2, "distinct_keys": 4, "passes": 2, "fleet_evals": 8, "baseline_evals": 16,
			"amplification": 1.0, "baseline_amplification": 2.0, "amp_threshold": 1.25}]}`, true},
		{"fleet ci low under wall-clock threshold despite clean counters", `{"pass": true, "regimes": [{"name": "fleet",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 2.3, "speedup_ci_low": 1.7,
			"replicas": 4, "distinct_keys": 20, "passes": 4, "fleet_evals": 100, "baseline_evals": 400,
			"amplification": 1.0, "baseline_amplification": 4.0, "amp_threshold": 1.25}]}`, true},
		{"fleet missing raw counters", `{"pass": true, "regimes": [{"name": "fleet",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 2.3, "speedup_ci_low": 2.1,
			"fleet_evals": 100, "amplification": 1.0}]}`, true},
		{"sweep regime met", `{"pass": true, "regimes": [{"name": "sweep", "meets_threshold": true,
			"threshold": 2, "samples": 5, "speedup": 3.0, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 20, "peak_bytes": 100000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, false},
		{"sweep forged speedup disagrees with raw wall clocks", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 4.5, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 20, "peak_bytes": 100000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, true},
		{"sweep forged ci low disagrees with raw wall clocks", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 3.0, "speedup_ci_low": 2.9,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 20, "peak_bytes": 100000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, true},
		{"sweep quick run cannot certify", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 2, "speedup": 3.0, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000], "wall_ns_spill_on": [1000, 1000],
			"sweep_bodies": 4, "spill_hits": 8, "peak_bytes": 100000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, true},
		{"sweep peak over threshold despite forged flag", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 3.0, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 20, "peak_bytes": 500000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, true},
		{"sweep timed passes not served from disk", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 3.0, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 7, "peak_bytes": 100000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, true},
		{"sweep missing peak fields", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 3.0, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 20}]}`, true},
		{"sweep mismatched raw arrays", `{"pass": true, "regimes": [{"name": "sweep",
			"meets_threshold": true, "threshold": 2, "samples": 5, "speedup": 3.0, "speedup_ci_low": 3.0,
			"wall_ns_spill_off": [3000, 3000, 3000, 3000], "wall_ns_spill_on": [1000, 1000, 1000, 1000, 1000],
			"sweep_bodies": 4, "spill_hits": 20, "peak_bytes": 100000, "response_bytes": 800000,
			"peak_threshold": 0.5}]}`, true},
		{"restart regime met", `{"pass": true, "regimes": [{"name": "restart", "meets_threshold": true,
			"threshold": 0.9, "samples": 5, "speedup": 1.0, "restart_keys": 64,
			"restart_reevals": [0, 0, 0, 0, 0], "restart_spill_hits": [65, 65, 65, 65, 65],
			"restart_hit_threshold": 0.9}]}`, false},
		{"restart tolerates re-evals above the floor", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 5, "speedup": 0.9875, "restart_keys": 64,
			"restart_reevals": [0, 0, 4, 0, 0], "restart_spill_hits": [65, 65, 61, 65, 65],
			"restart_hit_threshold": 0.9}]}`, false},
		{"restart forged hit rate disagrees with raw counters", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 5, "speedup": 1.0, "restart_keys": 64,
			"restart_reevals": [8, 8, 8, 8, 8], "restart_spill_hits": [65, 65, 65, 65, 65],
			"restart_hit_threshold": 0.9}]}`, true},
		{"restart raw hit rate under threshold despite forged flag", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 5, "speedup": 0.75, "restart_keys": 64,
			"restart_reevals": [16, 16, 16, 16, 16], "restart_spill_hits": [65, 65, 65, 65, 65],
			"restart_hit_threshold": 0.9}]}`, true},
		{"restart quick run cannot certify", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 2, "speedup": 1.0, "restart_keys": 16,
			"restart_reevals": [0, 0], "restart_spill_hits": [17, 17],
			"restart_hit_threshold": 0.9}]}`, true},
		{"restart forged sample count disagrees with raw arrays", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 7, "speedup": 1.0, "restart_keys": 64,
			"restart_reevals": [0, 0, 0, 0, 0], "restart_spill_hits": [65, 65, 65, 65, 65],
			"restart_hit_threshold": 0.9}]}`, true},
		{"restart spill hits cannot cover served keys", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 5, "speedup": 1.0, "restart_keys": 64,
			"restart_reevals": [0, 0, 0, 0, 0], "restart_spill_hits": [65, 65, 10, 65, 65],
			"restart_hit_threshold": 0.9}]}`, true},
		{"restart missing raw fields", `{"pass": true, "regimes": [{"name": "restart",
			"meets_threshold": true, "threshold": 0.9, "samples": 5, "speedup": 1.0,
			"restart_reevals": [0, 0, 0, 0, 0], "restart_hit_threshold": 0.9}]}`, true},
	}
	for _, tc := range cases {
		path := writeDoc(t, "doc.json", tc.content)
		err := checkDoc(path)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestCheckDocMissingFile(t *testing.T) {
	if err := checkDoc(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCheckHistory pins the peak-memory regression gate: within 20% of the
// committed streamed peak passes, beyond it fails, and absent history on
// either side never blocks.
func TestCheckHistory(t *testing.T) {
	doc := func(peak float64) string {
		return fmt.Sprintf(`{"pass": true, "memory": {"meets_threshold": true,
			"peak_stream_bytes": %g, "peak_buffered_bytes": 1000, "ratio_threshold": 0.25}}`, peak)
	}
	dir := t.TempDir()
	histDir := filepath.Join(dir, "bench_history")
	if err := os.Mkdir(histDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cur := filepath.Join(dir, "BENCH_batch.json")
	write(filepath.Join(histDir, "BENCH_batch.json"), doc(100))

	write(cur, doc(110)) // +10%: within the budget
	if err := checkHistory(cur, histDir); err != nil {
		t.Fatalf("10%% growth rejected: %v", err)
	}
	write(cur, doc(150)) // +50%: regression
	if err := checkHistory(cur, histDir); err == nil {
		t.Fatal("50% peak growth accepted")
	}
	write(cur, `{"pass": true}`) // history has memory, current dropped it
	if err := checkHistory(cur, histDir); err == nil {
		t.Fatal("dropped memory regime accepted against committed history")
	}
	// No committed history → nothing to compare.
	if err := checkHistory(cur, filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("absent history dir blocked: %v", err)
	}
	if err := checkHistory(cur, ""); err != nil {
		t.Fatalf("disabled history blocked: %v", err)
	}
}

// TestCheckHistorySpeedups pins the throughput regression gate: thresholded
// regimes may not drop below 70% of the committed speedup, report-only
// regimes drift freely, and a certified regime cannot silently vanish.
func TestCheckHistorySpeedups(t *testing.T) {
	doc := func(manyClients, hit float64) string {
		// many_clients is thresholded (history-gated); hit is report-only.
		return fmt.Sprintf(`{"pass": true, "regimes": [
			{"name": "many_clients", "threshold": 2, "speedup": %g, "meets_threshold": true},
			{"name": "hit", "speedup": %g, "meets_threshold": true}]}`, manyClients, hit)
	}
	dir := t.TempDir()
	histDir := filepath.Join(dir, "bench_history")
	if err := os.Mkdir(histDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cur := filepath.Join(dir, "BENCH_serve.json")
	write(filepath.Join(histDir, "BENCH_serve.json"), doc(6.0, 1.2))

	write(cur, doc(5.0, 1.2)) // -17%: inside the 70% keep
	if err := checkHistory(cur, histDir); err != nil {
		t.Fatalf("17%% speedup drop rejected: %v", err)
	}
	write(cur, doc(3.0, 1.2)) // halved: regression even though 3.0 > threshold 2
	if err := checkHistory(cur, histDir); err == nil {
		t.Fatal("halved thresholded speedup accepted against committed history")
	}
	write(cur, doc(6.0, 0.1)) // report-only regime collapsed: not gated
	if err := checkHistory(cur, histDir); err != nil {
		t.Fatalf("report-only regime drift blocked: %v", err)
	}
	write(cur, `{"pass": true, "regimes": [{"name": "hit", "speedup": 1.2, "meets_threshold": true}]}`)
	if err := checkHistory(cur, histDir); err == nil {
		t.Fatal("dropped thresholded regime accepted against committed history")
	}
	// History without thresholded regimes gates nothing.
	write(filepath.Join(histDir, "BENCH_serve.json"), `{"pass": true, "regimes": [{"name": "hit", "speedup": 9.9}]}`)
	write(cur, doc(6.0, 1.2))
	if err := checkHistory(cur, histDir); err != nil {
		t.Fatalf("unthresholded history blocked: %v", err)
	}
}

// TestCheckHistorySpeedupSearch pins that cmd/benchincr's "speedup_search"
// entries (keyed by cluster size, not name) participate in the history gate
// under synthesized speedup_search_n<N> names.
func TestCheckHistorySpeedupSearch(t *testing.T) {
	doc := func(n1024 float64) string {
		return fmt.Sprintf(`{"pass": true, "speedup_search": [
			{"n": 256, "threshold": 0, "speedup": 3.0},
			{"n": 1024, "threshold": 2, "speedup": %g, "meets_threshold": true}]}`, n1024)
	}
	dir := t.TempDir()
	histDir := filepath.Join(dir, "bench_history")
	if err := os.Mkdir(histDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cur := filepath.Join(dir, "BENCH_incr.json")
	write(filepath.Join(histDir, "BENCH_incr.json"), doc(8.0))

	write(cur, doc(7.0)) // -12.5%: inside the 70% keep
	if err := checkHistory(cur, histDir); err != nil {
		t.Fatalf("small speedup_search drop rejected: %v", err)
	}
	write(cur, doc(4.0)) // halved: regression even though 4.0 > threshold 2
	if err := checkHistory(cur, histDir); err == nil {
		t.Fatal("halved speedup_search entry accepted against committed history")
	}
	write(cur, `{"pass": true}`)
	if err := checkHistory(cur, histDir); err == nil {
		t.Fatal("dropped speedup_search entry accepted against committed history")
	}
}
