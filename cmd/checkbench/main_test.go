package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDoc(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantErr bool
	}{
		{"passing", `{"pass": true}`, false},
		{"failing", `{"pass": false}`, true},
		{"missing pass", `{"speedup": 12}`, true},
		{"pass not boolean", `{"pass": "true"}`, true},
		{"not json", `{pass: yes}`, true},
		{"regimes all met", `{"pass": true, "regimes": [{"name": "mixed", "meets_threshold": true}]}`, false},
		{"regime missed but pass forged", `{"pass": true, "regimes": [{"name": "mixed", "meets_threshold": false}]}`, true},
		{"ci gate met", `{"pass": true, "regimes": [{"name": "few_large", "meets_threshold": true,
			"threshold": 3, "samples": 5, "speedup": 5.1, "speedup_ci_low": 4.2}]}`, false},
		{"ci low under threshold despite forged flags", `{"pass": true, "regimes": [{"name": "few_large",
			"meets_threshold": true, "threshold": 3, "samples": 5, "speedup": 5.1, "speedup_ci_low": 2.4}]}`, true},
		{"quick run cannot certify", `{"pass": true, "regimes": [{"name": "few_large", "meets_threshold": true,
			"threshold": 3, "samples": 2, "speedup": 9.9, "speedup_ci_low": 9.0}]}`, true},
		{"ci without samples", `{"pass": true, "regimes": [{"name": "few_large", "meets_threshold": true,
			"threshold": 3, "speedup_ci_low": 4.0}]}`, true},
		{"report-only ci regime needs no samples gate", `{"pass": true, "regimes": [{"name": "many_small",
			"meets_threshold": true, "samples": 2, "speedup_ci_low": 0.9}]}`, false},
	}
	for _, tc := range cases {
		path := writeDoc(t, "doc.json", tc.content)
		err := checkDoc(path)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestCheckDocMissingFile(t *testing.T) {
	if err := checkDoc(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
