// Command benchbatch certifies the memory-aware batch engine. It drives the
// POST /v1/batch path in-process (through api.Server.BatchBody, free of
// net/http overhead) under three workload regimes:
//
//	many_small   batches of many small distinct profiles — the across-profile
//	             fan-out shape the old engine already handled; reported to
//	             prove the new engine does not regress it
//	few_large    a repeated sweep of one batch holding a few very large
//	             profiles (n ≥ the chunked-kernel cutover) — the shape the
//	             size-adaptive kernel and the raw body-front cache exist for
//	dedup_heavy  batches where most entries are bit-identical duplicates of a
//	             few unique profiles, each repeat a distinct spelling so the
//	             raw front never engages — isolating the within-request
//	             dedupe and fragment-render wins
//
// Each regime runs PAIRED SAMPLES: per sample, a fresh tuned server
// (api.NewServer: dedupe, canonical-cache reuse, raw body-front,
// size-adaptive scheduling) and a fresh baseline replicating the PR 3
// /v1/batch engine exactly — one across-profile incr.BatchMeasure fan-out
// plus a parallel moments pass and whole-struct JSON encoding — process the
// same bodies, and the sample's speedup is the wall-time ratio. The gate is
// benchstat-style: ≥ 5 samples, and the LOW end of the 95% confidence
// interval of the mean speedup must clear the regime threshold, so a single
// lucky run cannot certify and a single noisy one cannot flake the build.
//
// The acceptance threshold rides on few_large (≥ 3×): the repeated sweep is
// served from the body-front cache after the first evaluation, so the win is
// algorithmic — one evaluation per sweep instead of one per request — and
// holds on any core count. dedup_heavy must clear a more modest bar; its
// duplicate entries still pay full JSON decode on both sides.
//
// It prints one JSON document to stdout — the content of BENCH_batch.json
// (see `make bench`):
//
//	go run ./cmd/benchbatch > BENCH_batch.json
//
// The -quick flag shrinks sizes and samples so CI smoke tests finish fast;
// the resulting document is not a certificate (too few samples).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"hetero/internal/api"
	"hetero/internal/core"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

const (
	fewLargeThreshold   = 3.0
	dedupHeavyThreshold = 1.1
	// minSamples is the benchstat-style floor: a regime with fewer samples
	// cannot certify (checkbench enforces this on the document too).
	minSamples = 5
)

// RegimeResult reports one regime's paired baseline-vs-tuned comparison.
type RegimeResult struct {
	Name              string    `json:"name"`
	RequestsPerSample int       `json:"requests_per_sample"`
	ProfilesPerBatch  int       `json:"profiles_per_batch"`
	ProfileN          int       `json:"profile_n"`
	Samples           int       `json:"samples"`
	Speedups          []float64 `json:"speedups"` // one per paired sample
	BaselineOpsPerSec float64   `json:"baseline_ops_per_sec"`
	TunedOpsPerSec    float64   `json:"tuned_ops_per_sec"`
	Speedup           float64   `json:"speedup"` // mean over samples
	SpeedupCILow      float64   `json:"speedup_ci_low"`
	SpeedupCIHigh     float64   `json:"speedup_ci_high"`
	Threshold         float64   `json:"threshold,omitempty"`
	MeetsThreshold    bool      `json:"meets_threshold"`
}

// MemoryResult certifies the bounded-peak-memory claim of the streaming
// render path: the same large batch is served once through the buffered
// engine (BatchBody) and once through the streaming engine (BatchBodyStream
// into a discarding writer), on cache-disabled servers so no layer retains
// bytes, while a sampler tracks peak heap growth over the pre-serve
// baseline. The gate is the ratio of the two peaks: streaming must hold
// peak memory at or below RatioThreshold of the buffered baseline. The
// streamed bytes are hash-checked against the buffered response, so the
// certificate also witnesses bit-identity at full scale.
type MemoryResult struct {
	ProfilesPerBatch  int      `json:"profiles_per_batch"`
	ProfileN          int      `json:"profile_n"`
	Samples           int      `json:"samples"`
	ResponseBytes     int      `json:"response_bytes"`
	StreamPeaks       []uint64 `json:"stream_peaks"`
	BufferedPeaks     []uint64 `json:"buffered_peaks"`
	PeakStreamBytes   uint64   `json:"peak_stream_bytes"`   // mean over samples
	PeakBufferedBytes uint64   `json:"peak_buffered_bytes"` // mean over samples
	PeakRatio         float64  `json:"peak_ratio"`          // mean stream / mean buffered
	RatioThreshold    float64  `json:"ratio_threshold"`
	MeetsThreshold    bool     `json:"meets_threshold"`
}

// Report is the BENCH_batch.json document.
type Report struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Baseline   string         `json:"baseline"`
	Gate       string         `json:"gate"`
	Regimes    []RegimeResult `json:"regimes"`
	Memory     *MemoryResult  `json:"memory,omitempty"`
	Pass       bool           `json:"pass"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink sizes and samples (smoke test; not a certificate)")
	flag.Parse()
	rep := buildReport(*quick)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchbatch:", err)
		os.Exit(1)
	}
	if !rep.Pass && !*quick {
		fmt.Fprintln(os.Stderr, "benchbatch: a regime's speedup confidence interval missed its threshold")
		os.Exit(1)
	}
}

// regimeSpec is one workload shape: bodies(sample) returns the request
// bodies one sample replays in order (a fresh server per side per sample).
type regimeSpec struct {
	name      string
	profiles  int // per batch
	n         int // ρ-values per profile
	threshold float64
	bodies    func(sample int) [][]byte
}

func buildReport(quick bool) Report {
	// Like benchserve, the certificate is defined at GOMAXPROCS ≥ 8 so the
	// size-adaptive scheduler has a pool worth turning inward.
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
	samples := minSamples
	repeats := 8
	smallProfiles, smallN := 512, 24
	largeN := 1 << 16
	dedupEntries, dedupUniq, dedupN := 192, 12, 4096
	if quick {
		samples, repeats = 2, 3
		smallProfiles, smallN = 64, 8
		largeN = core.ParallelCutover
		dedupEntries, dedupUniq, dedupN = 24, 4, 512
	}

	rep := Report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Baseline:   "PR3 /v1/batch engine: across-profile incr.BatchMeasure fan-out + moments pass + whole-struct JSON encode, no batch caching",
		Gate:       fmt.Sprintf("mean speedup over ≥%d paired samples; 95%% CI low end must clear the threshold", minSamples),
		Pass:       true,
	}

	regimes := []regimeSpec{
		{
			// Distinct bodies every request: no layer can reuse anything, so
			// this is the honest head-to-head of the two compute paths.
			name: "many_small", profiles: smallProfiles, n: smallN, threshold: 0,
			bodies: func(sample int) [][]byte {
				out := make([][]byte, repeats)
				for r := range out {
					out[r] = batchBody(randomProfiles(smallProfiles, smallN, uint64(1+sample*64+r)), 0)
				}
				return out
			},
		},
		{
			// One body, replayed: the §4.3 sweep shape. The tuned side
			// evaluates once and serves the rest from the body-front cache.
			name: "few_large", profiles: 3, n: largeN, threshold: fewLargeThreshold,
			bodies: func(sample int) [][]byte {
				body := batchBody(randomProfiles(3, largeN, uint64(101+sample)), 0)
				out := make([][]byte, repeats)
				for r := range out {
					out[r] = body
				}
				return out
			},
		},
		{
			// Mostly-duplicate entries, but every repeat respells the request
			// (a fresh tau) so neither raw body-front nor canonical cache can
			// carry work across repeats — the speedup is dedupe + fragment
			// rendering alone, decode cost paid equally by both sides.
			name: "dedup_heavy", profiles: dedupEntries, n: dedupN, threshold: dedupHeavyThreshold,
			bodies: func(sample int) [][]byte {
				uniq := randomProfiles(dedupUniq, dedupN, uint64(701+sample))
				entries := make([][]float64, dedupEntries)
				for i := range entries {
					entries[i] = uniq[i%dedupUniq]
				}
				out := make([][]byte, repeats)
				for r := range out {
					out[r] = batchBody(entries, 0.101+0.0001*float64(r))
				}
				return out
			},
		},
	}

	for _, spec := range regimes {
		r := runRegime(spec, samples, repeats)
		if !r.MeetsThreshold {
			rep.Pass = false
		}
		rep.Regimes = append(rep.Regimes, r)
	}

	memProfiles, memN := 4096, 1024
	if quick {
		memProfiles, memN = 1024, 1024
	}
	mem := runMemoryRegime(memProfiles, memN, samples)
	if !mem.MeetsThreshold {
		rep.Pass = false
	}
	rep.Memory = &mem
	return rep
}

// streamMemoryRatio is the bounded-memory gate: the streaming path's peak
// heap growth must stay at or below this fraction of the buffered path's on
// the certificate workload.
const streamMemoryRatio = 0.25

// runMemoryRegime measures peak heap growth for one large batch served
// buffered vs streamed. Full-precision ρ spellings keep the response (the
// thing streaming bounds) dominant over the decoded profiles (the floor both
// paths share); cache-disabled servers keep retained cache bytes out of
// both peaks.
func runMemoryRegime(profiles, n, samples int) MemoryResult {
	r := MemoryResult{
		ProfilesPerBatch: profiles,
		ProfileN:         n,
		Samples:          samples,
		RatioThreshold:   streamMemoryRatio,
	}
	// A tight GC keeps sampled HeapAlloc tracking live memory instead of
	// accumulated garbage — without it the decode append-growth and
	// per-fragment render garbage on the streaming side inflates its "peak"
	// by whole GC cycles. 5% is slow but this regime is untimed.
	defer debug.SetGCPercent(debug.SetGCPercent(5))
	body := batchBody(fullPrecisionProfiles(profiles, n, 901), 0)

	// One unmeasured pass per side: the first serve pays one-off heap growth
	// (allocator arenas, stack growth) that would otherwise inflate sample 0.
	{
		s := api.NewServerCacheSize(0)
		if status, _, err := s.BatchBodyStream(context.Background(), &countingHashWriter{}, body); status != 200 || err != nil {
			panic("benchbatch: warm-up stream serve failed")
		}
		s = api.NewServerCacheSize(0)
		if status, _, _ := s.BatchBody(body); status != 200 {
			panic("benchbatch: warm-up buffered serve failed")
		}
	}

	for k := 0; k < samples; k++ {
		var streamed countingHashWriter
		streamPeak := measurePeak(func() {
			s := api.NewServerCacheSize(0) // cache-disabled: nothing retained
			status, msg, err := s.BatchBodyStream(context.Background(), &streamed, body)
			if status != 200 || err != nil {
				panic(fmt.Sprintf("benchbatch: stream serve failed: status %d %s err %v", status, msg, err))
			}
		})
		var bufHash uint64
		bufPeak := measurePeak(func() {
			s := api.NewServerCacheSize(0)
			status, resp, msg := s.BatchBody(body)
			if status != 200 {
				panic(fmt.Sprintf("benchbatch: buffered serve failed: status %d %s", status, msg))
			}
			h := fnv.New64a()
			h.Write(resp)
			bufHash = h.Sum64()
			r.ResponseBytes = len(resp)
		})
		if streamed.hash.Sum64() != bufHash || streamed.n != r.ResponseBytes {
			panic(fmt.Sprintf("benchbatch: streamed bytes diverge from buffered (%d vs %d bytes)",
				streamed.n, r.ResponseBytes))
		}
		r.StreamPeaks = append(r.StreamPeaks, streamPeak)
		r.BufferedPeaks = append(r.BufferedPeaks, bufPeak)
	}
	r.PeakStreamBytes = meanU64(r.StreamPeaks)
	r.PeakBufferedBytes = meanU64(r.BufferedPeaks)
	r.PeakRatio = float64(r.PeakStreamBytes) / float64(r.PeakBufferedBytes)
	r.MeetsThreshold = r.PeakRatio <= r.RatioThreshold
	return r
}

// measurePeak runs fn while sampling runtime.MemStats.HeapAlloc and returns
// the peak growth over the post-GC baseline taken just before fn.
func measurePeak(fn func()) uint64 {
	runtime.GC()
	runtime.GC() // settle finalizer-freed memory so the baseline is stable
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&s)
			for {
				p := peak.Load()
				if s.HeapAlloc <= p || peak.CompareAndSwap(p, s.HeapAlloc) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	fn()
	close(stop)
	<-done
	if p := peak.Load(); p > baseline {
		return p - baseline
	}
	return 0
}

// countingHashWriter hashes and counts the stream without retaining it —
// the memory-honest stand-in for a network socket.
type countingHashWriter struct {
	hash maphash64
	n    int
}

// maphash64 wraps hash/fnv's 64-bit FNV-1a so the zero value is usable.
type maphash64 struct{ h hash.Hash64 }

func (m *maphash64) ensure() {
	if m.h == nil {
		m.h = fnv.New64a()
	}
}

func (m *maphash64) Sum64() uint64 {
	m.ensure()
	return m.h.Sum64()
}

func (w *countingHashWriter) Write(p []byte) (int, error) {
	w.hash.ensure()
	w.hash.h.Write(p)
	w.n += len(p)
	return len(p), nil
}

func meanU64(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	var sum uint64
	for _, x := range xs {
		sum += x
	}
	return sum / uint64(len(xs))
}

// fullPrecisionProfiles draws count normalized n-computer profiles at full
// float64 precision (~18-byte spellings): the certificate shape where the
// rendered response, not the decoded floats, dominates peak memory.
func fullPrecisionProfiles(count, n int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	out := make([][]float64, count)
	for c := range out {
		out[c] = []float64(profile.RandomNormalized(rng, n))
	}
	return out
}

// runRegime collects paired samples for one workload shape and applies the
// confidence-interval gate.
func runRegime(spec regimeSpec, samples, repeats int) RegimeResult {
	r := RegimeResult{
		Name:              spec.name,
		RequestsPerSample: repeats,
		ProfilesPerBatch:  spec.profiles,
		ProfileN:          spec.n,
		Samples:           samples,
		Threshold:         spec.threshold,
	}
	// One untimed paired replay first: the process's first pass over a
	// regime pays one-off costs (heap growth, page faults, branch warmup)
	// that would otherwise land entirely in sample 0 and widen the CI.
	warm := spec.bodies(samples)
	replay(warm, baselineBatchServer())
	replay(warm, tunedBatchServer())
	var baseWall, tunedWall time.Duration
	for k := 0; k < samples; k++ {
		bodies := spec.bodies(k)
		base := replay(bodies, baselineBatchServer())
		tuned := replay(bodies, tunedBatchServer())
		baseWall += base
		tunedWall += tuned
		r.Speedups = append(r.Speedups, float64(base)/float64(tuned))
	}
	ops := samples * repeats
	r.BaselineOpsPerSec = float64(ops) / baseWall.Seconds()
	r.TunedOpsPerSec = float64(ops) / tunedWall.Seconds()
	r.Speedup, r.SpeedupCILow, r.SpeedupCIHigh = meanCI95(r.Speedups)
	r.MeetsThreshold = spec.threshold == 0 ||
		(len(r.Speedups) >= minSamples && r.SpeedupCILow >= spec.threshold)
	return r
}

// batchFunc serves one raw /v1/batch body.
type batchFunc func(body []byte) (status int, resp []byte)

// tunedBatchServer is the engine under test, on a fresh server.
func tunedBatchServer() batchFunc {
	s := api.NewServer()
	return func(body []byte) (int, []byte) {
		status, resp, _ := s.BatchBody(body)
		return status, resp
	}
}

// baselineBatchServer replicates the PR 3 /v1/batch engine exactly: decode,
// one across-profile fan-out for the measures, a parallel moments pass, and
// json encoding of the whole response struct. No dedupe, no cache layer —
// the configuration the tentpole's speedups are claimed against.
func baselineBatchServer() batchFunc {
	defaults := model.Table1()
	return func(body []byte) (int, []byte) {
		var req api.BatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return 400, nil
		}
		m := defaults
		if req.Params != nil {
			m = *req.Params
		}
		if err := m.Validate(); err != nil {
			return 400, nil
		}
		profiles := make([]profile.Profile, len(req.Profiles))
		for i, rhos := range req.Profiles {
			p, err := profile.New(rhos...)
			if err != nil {
				return 400, nil
			}
			profiles[i] = p
		}
		measures := incr.BatchMeasure(m, profiles, 0)
		results := make([]api.MeasureResponse, len(profiles))
		parallel.ForEach(0, len(profiles), func(i int) {
			p := profiles[i]
			results[i] = api.MeasureResponse{
				Profile:  p,
				X:        measures[i].X,
				HECR:     measures[i].HECR,
				WorkRate: measures[i].WorkRate,
				Mean:     p.Mean(),
				Variance: p.Variance(),
				GeoMean:  p.GeoMean(),
			}
		})
		out, err := json.Marshal(api.BatchResponse{Count: len(results), Results: results})
		if err != nil {
			return 500, nil
		}
		return 200, append(out, '\n')
	}
}

// replay serves every body in order and returns the wall time of the whole
// replay (the sweep is sequential: batch requests are throughput work, and
// concurrency contention is benchserve's domain).
func replay(bodies [][]byte, serve batchFunc) time.Duration {
	runtime.GC() // level the GC state so paired runs compare fairly
	t0 := time.Now()
	for _, body := range bodies {
		status, resp := serve(body)
		if status != 200 || len(resp) == 0 {
			panic(fmt.Sprintf("benchbatch: batch request failed with status %d", status))
		}
	}
	return time.Since(t0)
}

// meanCI95 returns the sample mean and its two-sided 95% confidence
// interval using the t-distribution (benchstat's gate, without the external
// dependency). With one sample the interval collapses to the point.
func meanCI95(xs []float64) (mean, lo, hi float64) {
	n := len(xs)
	mean = stats.Mean(xs)
	if n < 2 {
		return mean, mean, mean
	}
	sd := math.Sqrt(stats.Variance(xs) * float64(n) / float64(n-1)) // sample sd
	half := tValue95(n-1) * sd / math.Sqrt(float64(n))
	return mean, mean - half, mean + half
}

// tValue95 is the two-sided 95% Student-t critical value for df degrees of
// freedom (df ≥ 8 rounds down to the asymptotic value).
func tValue95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306}
	if df <= 0 {
		return table[1]
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// randomProfiles draws count normalized n-computer profiles with 3-decimal
// spellings — realistic measured utilizations whose JSON stays compact.
func randomProfiles(count, n int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	out := make([][]float64, count)
	for c := range out {
		p := profile.RandomNormalized(rng, n)
		rhos := make([]float64, n)
		for i, rho := range p {
			r := math.Round(rho*1000) / 1000
			if r < 0.001 {
				r = 0.001
			}
			if r > 1 {
				r = 1
			}
			rhos[i] = r
		}
		rhos[0] = 1 // keep the profile normalized after rounding
		out[c] = rhos
	}
	return out
}

// batchBody renders one POST /v1/batch request body; tau > 0 overrides the
// default parameters so respelled repeats stay cache-distinct.
func batchBody(profiles [][]float64, tau float64) []byte {
	req := api.BatchRequest{Profiles: profiles}
	if tau > 0 {
		m := model.Table1()
		m.Tau = tau
		req.Params = &m
	}
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return body
}
