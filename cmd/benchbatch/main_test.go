package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestBuildReportQuick(t *testing.T) {
	rep := buildReport(true)
	if len(rep.Regimes) != 3 {
		t.Fatalf("%d regimes, want 3", len(rep.Regimes))
	}
	names := map[string]bool{}
	for _, r := range rep.Regimes {
		names[r.Name] = true
		if r.RequestsPerSample <= 0 || r.Samples <= 0 {
			t.Fatalf("regime %s: empty sampling plan: %+v", r.Name, r)
		}
		if len(r.Speedups) != r.Samples {
			t.Fatalf("regime %s: %d speedups for %d samples", r.Name, len(r.Speedups), r.Samples)
		}
		if r.BaselineOpsPerSec <= 0 || r.TunedOpsPerSec <= 0 {
			t.Fatalf("regime %s: non-positive throughput: %+v", r.Name, r)
		}
		if r.SpeedupCILow > r.Speedup || r.Speedup > r.SpeedupCIHigh {
			t.Fatalf("regime %s: mean %v outside its CI [%v, %v]",
				r.Name, r.Speedup, r.SpeedupCILow, r.SpeedupCIHigh)
		}
	}
	for _, want := range []string{"many_small", "few_large", "dedup_heavy"} {
		if !names[want] {
			t.Fatalf("missing regime %q", want)
		}
	}
	if rep.Memory == nil {
		t.Fatal("report carries no memory regime")
	}
	if rep.Memory.PeakStreamBytes == 0 || rep.Memory.PeakBufferedBytes == 0 {
		t.Fatalf("memory regime measured nothing: %+v", rep.Memory)
	}
	if rep.Memory.PeakRatio <= 0 || rep.Memory.RatioThreshold != streamMemoryRatio {
		t.Fatalf("memory regime gate malformed: %+v", rep.Memory)
	}
	if len(rep.Memory.StreamPeaks) != rep.Memory.Samples || len(rep.Memory.BufferedPeaks) != rep.Memory.Samples {
		t.Fatalf("memory regime peak samples incomplete: %+v", rep.Memory)
	}
	// The document must round-trip as JSON (it becomes BENCH_batch.json).
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
}

// TestBaselineAndTunedAgree pins the benchmark's own validity: both engines
// must serve the same batches successfully and report the same profile
// count, so the speedup compares equal work. (Float spellings can differ at
// the last digit for chunked-kernel sizes, so body equality is only
// asserted below the cutover.)
func TestBaselineAndTunedAgree(t *testing.T) {
	body := batchBody(randomProfiles(6, 64, 42), 0)
	baseStatus, baseResp := baselineBatchServer()(body)
	tunedStatus, tunedResp := tunedBatchServer()(body)
	if baseStatus != 200 || tunedStatus != 200 {
		t.Fatalf("statuses %d / %d", baseStatus, tunedStatus)
	}
	if !bytes.Equal(baseResp, tunedResp) {
		t.Fatalf("small-profile batch responses diverge:\nbaseline %q\ntuned    %q",
			truncate(baseResp), truncate(tunedResp))
	}
}

func TestMeanCI95(t *testing.T) {
	mean, lo, hi := meanCI95([]float64{5, 5, 5, 5, 5})
	if mean != 5 || lo != 5 || hi != 5 {
		t.Fatalf("constant samples: mean %v ci [%v, %v], want exactly 5", mean, lo, hi)
	}
	mean, lo, hi = meanCI95([]float64{4, 5, 6, 5, 5})
	if mean != 5 || lo >= 5 || hi <= 5 || lo <= 3 || hi >= 7 {
		t.Fatalf("noisy samples: mean %v ci [%v, %v]", mean, lo, hi)
	}
	if _, lo, hi = meanCI95([]float64{3}); lo != 3 || hi != 3 {
		t.Fatalf("single sample must collapse to the point, got [%v, %v]", lo, hi)
	}
}

func truncate(b []byte) []byte {
	if len(b) > 200 {
		return b[:200]
	}
	return b
}
