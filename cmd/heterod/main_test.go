package main

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"hetero/internal/api"
)

func TestServeEndToEnd(t *testing.T) {
	// Bind an ephemeral port and exercise the real TCP path once.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: api.NewServer().Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ln.Addr().String() + "/v1/measure?profile=1,0.5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out api.MeasureResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.X <= 0 {
		t.Fatalf("X = %v", out.X)
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.256.256.256:99999"}); err == nil {
		t.Fatal("bad address accepted")
	}
}
