package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"hetero/internal/api"
)

func TestServeEndToEnd(t *testing.T) {
	// Bind an ephemeral port and exercise the real TCP path once, then shut
	// down gracefully via context cancellation (the signal path in
	// production) and assert a clean exit.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{
		Handler:           api.NewServer().Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 5*time.Second, nil) }()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + ln.Addr().String() + "/v1/measure?profile=1,0.5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out api.MeasureResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.X <= 0 {
		t.Fatalf("X = %v", out.X)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
}

func TestServeDrainsInFlightRequests(t *testing.T) {
	// A request in flight when shutdown begins must still complete.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		<-slow
		w.WriteHeader(200)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 5*time.Second, nil) }()

	got := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- -1
			return
		}
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the handler
	cancel()                           // begin the drain while /slow is blocked
	time.Sleep(100 * time.Millisecond)
	close(slow)
	if code := <-got; code != 200 {
		t.Fatalf("in-flight request got %d, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}

func TestServeDrainMidFlushAnswersBatchedItems(t *testing.T) {
	// Regression for the batcher drain ordering: requests queued in the
	// admission batcher when SIGTERM arrives — the flush timer still pending
	// — must be flushed and answered before the drain completes. serve()
	// guarantees this by running CloseCoalesce only after srv.Shutdown
	// returns, so the collector keeps flushing while handlers drain.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	apiSrv := api.NewServer()
	// A long max-wait keeps the herd queued in the collector so the drain
	// begins mid-flush, before the timer seals the batch.
	apiSrv.EnableCoalesce(api.CoalesceConfig{MaxBatch: 64, MaxWait: 500 * time.Millisecond})
	srv := &http.Server{Handler: apiSrv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 10*time.Second, apiSrv.CloseCoalesce) }()
	base := "http://" + ln.Addr().String()

	const herd = 4
	got := make(chan int, herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			resp, err := http.Get(fmt.Sprintf("%s/v1/measure?profile=1,0.5,0.25&tau=0.1%d", base, i))
			if err != nil {
				got <- -1
				return
			}
			io.ReadAll(resp.Body)
			resp.Body.Close()
			got <- resp.StatusCode
		}(i)
	}

	// Poll /v1/statz until all herd members sit in the batcher, then begin
	// the drain while they are still queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var statz api.StatzResponse
		resp, err := http.Get(base + "/v1/statz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&statz)
			resp.Body.Close()
		}
		if err == nil && statz.Coalesce.Submitted >= herd {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("herd never reached the batcher (submitted = %d)", statz.Coalesce.Submitted)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	for i := 0; i < herd; i++ {
		if code := <-got; code != 200 {
			t.Fatalf("batched request answered %d during drain, want 200", code)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain with items mid-flush")
	}
}

func TestPprofHandlerServesProfiles(t *testing.T) {
	// The -pprof-addr mux must expose the standard debug endpoints. Use
	// httptest against the handler directly; profile?seconds=... is not
	// exercised (a CPU profile blocks for its duration).
	ts := httptest.NewServer(pprofHandler())
	defer ts.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/goroutine?debug=1",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d (body %q)", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
}

func TestRunStartsPprofListener(t *testing.T) {
	// End-to-end: run() with -pprof-addr serves the profiler on the second
	// listener and still drains cleanly. run() owns its listeners, so :0 is
	// not an option; use fixed loopback ports and poll until the profiler
	// answers.
	const apiAddr, profAddr = "127.0.0.1:18098", "127.0.0.1:18099"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", apiAddr, "-pprof-addr", profAddr, "-grace", "2s",
			"-coalesce", "-coalesce-max", "8", "-coalesce-wait", "1ms"})
	}()
	client := &http.Client{Timeout: 2 * time.Second}
	var resp *http.Response
	var err error
	for i := 0; i < 50; i++ {
		resp, err = client.Get("http://" + profAddr + "/debug/pprof/cmdline")
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("pprof listener never came up: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) == 0 {
		t.Fatalf("cmdline: status %d, body %q", resp.StatusCode, body)
	}
	// The serving address must NOT expose the profiler.
	if resp, err := client.Get("http://" + apiAddr + "/debug/pprof/"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Fatal("profiler exposed on the serving address")
		}
	}
	// run() blocks until a signal; deliver one to exercise the drain.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

func TestResolveMaxBody(t *testing.T) {
	cases := []struct {
		name       string
		maxBody    int
		maxBodySet bool
		alias      int
		want       int
		wantWarn   bool
	}{
		{"defaults", api.DefaultMaxBody, false, 0, api.DefaultMaxBody, false},
		{"alias only", api.DefaultMaxBody, false, 123, 123, true},
		{"max-body only", 456, true, 0, 456, false},
		{"both set: -max-body wins", 456, true, 123, 456, true},
		// An explicit -max-body spelled as the default still wins over the
		// alias (the historical value-comparison logic got this wrong).
		{"explicit default beats alias", api.DefaultMaxBody, true, 123, api.DefaultMaxBody, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var warn strings.Builder
			got := resolveMaxBody(tc.maxBody, tc.maxBodySet, tc.alias, &warn)
			if got != tc.want {
				t.Fatalf("resolveMaxBody = %d, want %d", got, tc.want)
			}
			if warned := strings.Contains(warn.String(), "deprecated"); warned != tc.wantWarn {
				t.Fatalf("warning %q, wantWarn %v", warn.String(), tc.wantWarn)
			}
			if tc.wantWarn && strings.Count(warn.String(), "\n") != 1 {
				t.Fatalf("want exactly one warning line, got %q", warn.String())
			}
		})
	}
}

func TestBuildClusterTier(t *testing.T) {
	if tier, err := buildClusterTier("", "", 0, 0); err != nil || tier != nil {
		t.Fatalf("no flags: tier=%v err=%v", tier, err)
	}
	if _, err := buildClusterTier("a:1,b:2", "", 0, 0); err == nil {
		t.Fatal("-peers without -self accepted")
	}
	if _, err := buildClusterTier("", "a:1", 0, 0); err == nil {
		t.Fatal("-self without -peers accepted")
	}
	tier, err := buildClusterTier(" a:1 , b:2 ", "a:1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Ring().Size() != 2 || tier.Self() != "a:1" {
		t.Fatalf("tier: size=%d self=%q", tier.Ring().Size(), tier.Self())
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.256.256.256:99999"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDrainCompletesFaultySimWhileShedding(t *testing.T) {
	// Regression for the shutdown path: an in-flight POST /v1/simulate/faulty
	// must run to completion inside the SIGTERM grace window, while requests
	// arriving after the drain begins are turned away.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := api.NewServer().Handler()
	gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/simulate/faulty" {
			close(entered)
			<-release
		}
		inner.ServeHTTP(w, r)
	})
	srv := &http.Server{Handler: gate, ReadHeaderTimeout: 5 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 10*time.Second, nil) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		body []byte
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate/faulty", "application/json",
			strings.NewReader(`{"profile":[1,0.5],"lifespan":3600,"replan":true,"faults":[{"kind":"crash","computer":1,"at":900}]}`))
		if err != nil {
			got <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		got <- result{code: resp.StatusCode, body: body}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("faulty request never reached the handler")
	}
	cancel() // SIGTERM equivalent: the drain begins with the request in flight
	time.Sleep(100 * time.Millisecond)

	// New arrivals during the drain are turned away (the listener is closed).
	if resp, err := http.Get(base + "/v1/healthz"); err == nil {
		resp.Body.Close()
		t.Fatalf("new request served during drain: %d", resp.StatusCode)
	}

	close(release)
	r := <-got
	if r.code != 200 {
		t.Fatalf("in-flight simulation got %d (body %q), want 200", r.code, r.body)
	}
	var rep map[string]interface{}
	if err := json.Unmarshal(r.body, &rep); err != nil || rep["degradation"] == nil {
		t.Fatalf("drained response not a degradation report: %q", r.body)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}
