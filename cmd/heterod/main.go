// Command heterod serves the library over HTTP (see internal/api for the
// endpoint reference):
//
//	heterod -addr :8080
//	curl 'localhost:8080/v1/measure?profile=1,0.5,0.25'
//	curl -X POST localhost:8080/v1/batch -d '{"profiles":[[1,0.5],[1,0.25]]}'
//	curl -X POST localhost:8080/v1/schedule -d '{"profile":[1,0.5],"lifespan":3600}'
//	curl 'localhost:8080/v1/statz'
//
// The server is hardened for unattended operation: header/read/write/idle
// timeouts bound slow or stuck clients; a bounded admission queue
// (-max-concurrent, -queue-depth) sheds overload with 429 + Retry-After;
// every request carries a -request-timeout context deadline; handler panics
// become JSON 500s; and SIGINT/SIGTERM trigger a graceful drain before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetero/internal/api"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "heterod:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("heterod", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache-size", api.DefaultMeasureCacheSize, "bound on the /v1/measure response cache (0 disables)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain deadline after SIGINT/SIGTERM")
	maxConcurrent := fs.Int("max-concurrent", api.DefaultMaxConcurrent, "bound on simultaneously executing requests")
	queueDepth := fs.Int("queue-depth", api.DefaultQueueDepth, "admission queue beyond -max-concurrent; arrivals past it are shed with 429")
	requestTimeout := fs.Duration("request-timeout", api.DefaultRequestTimeout, "per-request context deadline (negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	apiSrv := api.NewServerCacheSize(*cacheSize)
	apiSrv.Serving = api.ServingConfig{
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		RequestTimeout: *requestTimeout,
	}
	srv := &http.Server{
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, srv, *grace)
}

// serve runs srv on ln until ctx is cancelled (a termination signal in
// production), then drains in-flight requests for up to grace before
// forcing connections closed. A nil return means a clean start and a clean
// stop.
func serve(ctx context.Context, ln net.Listener, srv *http.Server, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("heterod listening on %s", ln.Addr())
	select {
	case err := <-errc:
		// Serve never returns nil; without a shutdown this is a real error.
		return err
	case <-ctx.Done():
	}
	log.Printf("heterod draining (grace %s)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
