// Command heterod serves the library over HTTP (see internal/api for the
// endpoint reference):
//
//	heterod -addr :8080
//	curl 'localhost:8080/v1/measure?profile=1,0.5,0.25'
//	curl -X POST localhost:8080/v1/batch -d '{"profiles":[[1,0.5],[1,0.25]]}'
//	curl -X POST localhost:8080/v1/schedule -d '{"profile":[1,0.5],"lifespan":3600}'
//	curl 'localhost:8080/v1/statz'
//
// The server is hardened for unattended operation: header/read/write/idle
// timeouts bound slow or stuck clients; a bounded admission queue
// (-max-concurrent, -queue-depth) sheds overload with 429 + Retry-After;
// every request carries a -request-timeout context deadline; handler panics
// become JSON 500s; and SIGINT/SIGTERM trigger a graceful drain before
// exit.
//
// -coalesce enables the cross-request admission batcher for /v1/measure:
// concurrent cache misses for *distinct* keys are merged into shared flushes
// (sealed at -coalesce-max items or after -coalesce-wait, whichever first),
// trading at most -coalesce-wait of added miss latency for a large reduction
// in per-request work under herd traffic. Off by default; off, the serving
// path is byte-for-byte the historical one.
//
// -spill-dir enables the bounded on-disk spill tier: entries evicted from
// the in-memory response caches are written to append-only segment files
// and consulted on later misses before peer fetch or re-evaluation, with
// -spill-bytes bounding total disk use (whole segments retire oldest-first)
// and -spill-index-bytes bounding the in-memory index. Streamed /v1/batch
// responses are served straight from the segment reader in O(fragment)
// memory. Off by default; off, the read path is byte-for-byte the
// historical one.
//
// -spill-write-through (with -spill-dir) turns the spill tier into a
// durability layer for restarts: memory-tier inserts are offered to the
// spill queue at admission time, not only on eviction, and shutdown adds a
// bounded best-effort flush of still-resident entries — so a warm restart
// re-serves the working set from segment recovery with zero
// re-evaluations. -spill-compact-rate caps compaction rewrite bandwidth in
// bytes/sec (0 = default 32 MiB/s, negative = unlimited) so the
// write-through firehose can't make background compaction starve the
// foreground writer.
//
// For profiling in production, -pprof-addr exposes net/http/pprof on a
// separate listener (off by default; bind it to localhost or a management
// network, never the serving address):
//
//	heterod -addr :8080 -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetero/internal/api"
	"hetero/internal/cluster"
	"hetero/internal/spill"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "heterod:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("heterod", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	pprofAddr := fs.String("pprof-addr", "", "listen address for net/http/pprof on a separate listener (empty disables; keep it off public interfaces)")
	cacheSize := fs.Int("cache-size", api.DefaultMeasureCacheSize, "bound on the /v1/measure response cache (0 disables)")
	cacheShards := fs.Int("cache-shards", 0, "lock shards for the measure cache (0 = automatic, rounded down to a power of two)")
	cacheBytes := fs.Int64("cache-bytes", api.DefaultCacheBytes, "byte budget per response cache, counting key+body per entry (0 = unlimited)")
	cacheAdaptive := fs.Bool("cache-adaptive", true, "grow cache shard count from observed contention (only with -cache-shards 0)")
	maxBody := fs.Int("max-body", api.DefaultMaxBody, "byte cap on any POST request body")
	maxBatchBody := fs.Int("max-batch-body", 0, "deprecated alias for -max-body (0 = unset)")
	streamBatchThreshold := fs.Int("stream-batch-threshold", 0, "work-units estimate (total ρ-values per batch) past which /v1/batch responses stream instead of buffering (0 = default, negative disables streaming)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain deadline after SIGINT/SIGTERM")
	maxConcurrent := fs.Int("max-concurrent", api.DefaultMaxConcurrent, "bound on simultaneously executing requests")
	queueDepth := fs.Int("queue-depth", api.DefaultQueueDepth, "admission queue beyond -max-concurrent; arrivals past it are shed with 429")
	requestTimeout := fs.Duration("request-timeout", api.DefaultRequestTimeout, "per-request context deadline (negative disables)")
	coalesce := fs.Bool("coalesce", false, "batch concurrent /v1/measure cache misses for distinct keys into shared evaluations (off: byte-for-byte historical behavior)")
	coalesceMax := fs.Int("coalesce-max", api.DefaultCoalesceMaxBatch, "seal a coalesced flush at this many items (with -coalesce)")
	coalesceWait := fs.Duration("coalesce-wait", api.DefaultCoalesceMaxWait, "seal a coalesced flush when its oldest item has waited this long (with -coalesce)")
	spillDir := fs.String("spill-dir", "", "directory for the on-disk spill tier under the response caches (empty disables)")
	spillBytes := fs.Int64("spill-bytes", spill.DefaultMaxBytes, "byte budget for spill segment files on disk; whole segments retire oldest-first past it (with -spill-dir)")
	spillIndexBytes := fs.Int64("spill-index-bytes", spill.DefaultMaxIndexBytes, "byte budget for the in-memory spill index (with -spill-dir)")
	spillWriteThrough := fs.Bool("spill-write-through", false, "offer memory-tier inserts to the spill tier at admission time and flush resident entries on shutdown, so a warm restart serves the working set without re-evaluation (with -spill-dir)")
	spillCompactRate := fs.Int64("spill-compact-rate", 0, "spill compaction rewrite budget in bytes/sec; 0 = default, negative = unlimited (with -spill-dir)")
	peers := fs.String("peers", "", "comma-separated fleet membership, host:port per replica (every replica gets the identical list); empty disables the peer cache tier")
	self := fs.String("self", "", "this replica's own address within -peers (required with -peers)")
	peerHedgeDelay := fs.Duration("peer-hedge-delay", cluster.DefaultHedgeDelay, "delay before the hedged second peer request (0 = default, negative disables hedging)")
	peerTimeout := fs.Duration("peer-timeout", cluster.DefaultTimeout, "bound on one whole peer fetch or push; expiry falls back to local evaluation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	maxBodySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "max-body" {
			maxBodySet = true
		}
	})
	tier, err := buildClusterTier(*peers, *self, *peerHedgeDelay, *peerTimeout)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			return err
		}
		pprofSrv := &http.Server{
			Handler:           pprofHandler(),
			ReadHeaderTimeout: *readHeaderTimeout,
		}
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("heterod pprof: %v", err)
			}
		}()
		log.Printf("heterod pprof listening on %s", pln.Addr())
		defer pprofSrv.Close()
	}
	budget := *cacheBytes
	if budget <= 0 {
		budget = -1 // CacheConfig: negative = unlimited, 0 = default
	}
	apiSrv := api.NewServerWithCache(api.CacheConfig{
		Entries:  *cacheSize,
		MaxBytes: budget,
		Shards:   *cacheShards,
		Coalesce: true,
		Adaptive: *cacheAdaptive,
	})
	apiSrv.MaxBody = resolveMaxBody(*maxBody, maxBodySet, *maxBatchBody, os.Stderr)
	apiSrv.StreamBatchThreshold = *streamBatchThreshold
	if *spillDir != "" {
		st, err := spill.Open(spill.Config{
			Dir:                *spillDir,
			MaxBytes:           *spillBytes,
			MaxIndexBytes:      *spillIndexBytes,
			CompactBytesPerSec: *spillCompactRate,
		})
		if err != nil {
			ln.Close()
			return fmt.Errorf("opening spill tier: %w", err)
		}
		apiSrv.EnableSpillOptions(st, api.SpillOptions{WriteThrough: *spillWriteThrough})
		log.Printf("heterod spill tier: dir=%s bytes=%d index-bytes=%d write-through=%v compact-rate=%d",
			*spillDir, *spillBytes, *spillIndexBytes, *spillWriteThrough, *spillCompactRate)
	}
	if tier != nil {
		apiSrv.EnableCluster(tier)
		log.Printf("heterod fleet tier: self=%s replicas=%d hedge=%s timeout=%s",
			tier.Self(), tier.Ring().Size(), tier.HedgeDelay(), tier.Timeout())
	}
	apiSrv.Serving = api.ServingConfig{
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		RequestTimeout: *requestTimeout,
	}
	if *coalesce {
		apiSrv.EnableCoalesce(api.CoalesceConfig{
			MaxBatch: *coalesceMax,
			MaxWait:  *coalesceWait,
		})
	}
	srv := &http.Server{
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Drain order: the batcher first (in-flight handlers may be waiting on
	// its flushes), then the spill tier (its evict writer drains the queued
	// entries and closes the store once nothing can evict anymore).
	return serve(ctx, ln, srv, *grace, func() {
		apiSrv.CloseCoalesce()
		apiSrv.CloseSpill()
	})
}

// resolveMaxBody unifies -max-body with its deprecated -max-batch-body
// alias: an explicitly set -max-body always wins (maxBodySet reports whether
// the flag appeared on the command line), otherwise a set alias applies.
// Using the alias at all earns a one-line deprecation warning on warn.
func resolveMaxBody(maxBody int, maxBodySet bool, maxBatchBody int, warn io.Writer) int {
	if maxBatchBody > 0 {
		fmt.Fprintln(warn, "heterod: -max-batch-body is deprecated; use -max-body")
		if !maxBodySet {
			return maxBatchBody
		}
	}
	return maxBody
}

// buildClusterTier validates and builds the peer cache tier from the fleet
// flags; (nil, nil) when clustering is off.
func buildClusterTier(peers, self string, hedge, timeout time.Duration) (*cluster.Peers, error) {
	if peers == "" {
		if self != "" {
			return nil, errors.New("-self requires -peers")
		}
		return nil, nil
	}
	if self == "" {
		return nil, errors.New("-peers requires -self")
	}
	list := strings.Split(peers, ",")
	for i := range list {
		list[i] = strings.TrimSpace(list[i])
	}
	return cluster.New(cluster.Config{
		Self:       strings.TrimSpace(self),
		Peers:      list,
		HedgeDelay: hedge,
		Timeout:    timeout,
	})
}

// pprofHandler builds the mux served on -pprof-addr. The handlers are
// registered explicitly on a dedicated mux — importing net/http/pprof for
// its DefaultServeMux side effect would silently expose the profiler on
// the serving address too.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs srv on ln until ctx is cancelled (a termination signal in
// production), then drains in-flight requests for up to grace before
// forcing connections closed. A nil return means a clean start and a clean
// stop.
//
// drain (the admission batcher's CloseCoalesce; nil when there is nothing
// to drain) runs strictly AFTER srv.Shutdown returns. Ordering matters: an
// in-flight /v1/measure request may be blocked inside the batcher waiting
// for its flush, and Shutdown waits for that request — so the batcher must
// keep flushing (its max-wait timer fires regardless) until every handler
// has been answered. Only then is it safe to stop the collector; drain then
// flushes anything still queued so no accepted item is ever dropped.
func serve(ctx context.Context, ln net.Listener, srv *http.Server, grace time.Duration, drain func()) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("heterod listening on %s", ln.Addr())
	select {
	case err := <-errc:
		// Serve never returns nil; without a shutdown this is a real error.
		return err
	case <-ctx.Done():
	}
	log.Printf("heterod draining (grace %s)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if drain != nil {
		// Even when Shutdown timed out, drain: connections may be force-closed
		// but accepted batcher items still get flushed and their handlers
		// unblocked.
		drain()
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
