// Command heterod serves the library over HTTP (see internal/api for the
// endpoint reference):
//
//	heterod -addr :8080
//	curl 'localhost:8080/v1/measure?profile=1,0.5,0.25'
//	curl -X POST localhost:8080/v1/schedule -d '{"profile":[1,0.5],"lifespan":3600}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"hetero/internal/api"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "heterod:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("heterod", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("heterod listening on %s", ln.Addr())
	return http.Serve(ln, api.NewServer().Handler())
}
