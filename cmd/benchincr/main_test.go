package main

import "testing"

func TestBuildReportQuick(t *testing.T) {
	rep, err := buildReport(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Search) != 2 {
		t.Fatalf("%d search rows, want 2", len(rep.Search))
	}
	for _, r := range rep.Search {
		if r.BruteNsPerOp <= 0 || r.IncrNsPerOp <= 0 {
			t.Fatalf("non-positive timing at n=%d: %+v", r.N, r)
		}
		if r.Speedup <= 0 {
			t.Fatalf("non-positive speedup at n=%d", r.N)
		}
	}
	if rep.Serving.UncachedNsPerOp <= 0 || rep.Serving.CachedNsPerOp <= 0 {
		t.Fatalf("non-positive serving timings: %+v", rep.Serving)
	}
}
