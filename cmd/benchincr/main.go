// Command benchincr certifies the perf claims of the incremental evaluator
// and the batched/cached serving path. It times, via testing.Benchmark:
//
//   - the O(n²) brute-force speedup search vs the O(n) incremental search
//     at n ∈ {256, 4096} (acceptance: ≥10× at n = 4096), and
//   - /v1/measure throughput with the response cache warm vs disabled.
//
// It prints one JSON document to stdout — the content of BENCH_incr.json
// (see `make bench`):
//
//	go run ./cmd/benchincr > BENCH_incr.json
//
// The -quick flag caps each measurement at a fixed small iteration count so
// CI smoke tests finish in well under a second (ratios are then noisy and
// not certified).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"hetero/internal/api"
	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// SearchResult reports one brute-vs-incremental speedup-search comparison.
type SearchResult struct {
	N              int     `json:"n"`
	BruteNsPerOp   float64 `json:"brute_ns_per_op"`
	IncrNsPerOp    float64 `json:"incremental_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	MeetsThreshold bool    `json:"meets_threshold"`
	Threshold      float64 `json:"threshold"`
}

// ServeResult reports the cached-vs-uncached /v1/measure comparison.
type ServeResult struct {
	UncachedNsPerOp float64 `json:"uncached_ns_per_op"`
	CachedNsPerOp   float64 `json:"cached_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// Report is the BENCH_incr.json document.
type Report struct {
	Search  []SearchResult `json:"speedup_search"`
	Serving ServeResult    `json:"measure_serving"`
	Pass    bool           `json:"pass"`
}

func main() {
	quick := flag.Bool("quick", false, "single short iteration per benchmark (smoke test; ratios not certified)")
	flag.Parse()
	rep, err := buildReport(*quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchincr:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchincr:", err)
		os.Exit(1)
	}
	if !rep.Pass && !*quick {
		fmt.Fprintln(os.Stderr, "benchincr: speedup threshold not met")
		os.Exit(1)
	}
}

// bench returns ns/op for f. The certified path defers to testing.Benchmark
// (which calibrates iteration counts itself); quick mode times a fixed
// three-iteration run directly, since fighting the harness's calibration
// loop with a pinned b.N never terminates.
func bench(quick bool, f func(b *testing.B)) float64 {
	if quick {
		var b testing.B
		b.N = 3
		start := time.Now()
		f(&b)
		return float64(time.Since(start).Nanoseconds()) / float64(b.N)
	}
	r := testing.Benchmark(f)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func buildReport(quick bool) (Report, error) {
	var rep Report
	m := model.Figs34()
	// The n=4096 floor certifies the headline O(n²)→O(n) claim; n=256 shows
	// the win is not an asymptotic artifact.
	for _, tc := range []struct {
		n         int
		threshold float64
	}{
		{256, 2},
		{4096, 10},
	} {
		p := profile.RandomNormalized(stats.NewRNG(uint64(tc.n)), tc.n)
		if _, err := core.BestMultiplicative(m, p, 0.5); err != nil {
			return rep, err
		}
		brute := bench(quick, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BestMultiplicativeBruteForce(m, p, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		incremental := bench(quick, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BestMultiplicative(m, p, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		r := SearchResult{
			N:            tc.n,
			BruteNsPerOp: brute,
			IncrNsPerOp:  incremental,
			Speedup:      brute / incremental,
			Threshold:    tc.threshold,
		}
		r.MeetsThreshold = r.Speedup >= tc.threshold
		rep.Search = append(rep.Search, r)
	}

	req := httptest.NewRequest("GET", "/v1/measure?profile=1,0.5,0.25,0.125", nil)
	uncachedHandler := api.NewServerCacheSize(0).Handler()
	cachedHandler := api.NewServer().Handler()
	// Warm the cache so the cached series measures pure hits.
	{
		rec := httptest.NewRecorder()
		cachedHandler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			return rep, fmt.Errorf("cache warmup status %d", rec.Code)
		}
	}
	rep.Serving.UncachedNsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			uncachedHandler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	rep.Serving.CachedNsPerOp = bench(quick, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			cachedHandler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	rep.Serving.Speedup = rep.Serving.UncachedNsPerOp / rep.Serving.CachedNsPerOp

	rep.Pass = true
	for _, r := range rep.Search {
		if !r.MeetsThreshold {
			rep.Pass = false
		}
	}
	return rep, nil
}
