package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifact files")

// goldenCases are the fully deterministic artifacts whose exact text is
// pinned under testdata/. Randomized studies (variance, predictors, …) are
// excluded — their seeds are fixed but their renders carry CI intervals
// whose wording may legitimately evolve.
var goldenCases = []struct {
	name string
	args []string
}{
	{"table2", []string{"table2"}},
	{"table3", []string{"table3"}},
	{"table4", []string{"table4"}},
	{"fig1", []string{"fig1"}},
	{"fig4", []string{"fig4"}},
	{"counterexample", []string{"counterexample"}},
	{"protocols", []string{"protocols", "-profile", "1,0.6,0.35,0.2", "-L", "1000"}},
	{"sensitivity", []string{"sensitivity", "-profile", "1,0.5,0.25"}},
	{"hecr", []string{"hecr", "-profile", "1,0.5,0.25"}},
}

func TestGoldenArtifacts(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tc.args, &b); err != nil {
				t.Fatal(err)
			}
			got := b.String()
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./cmd/hetero -run Golden -update`): %v", err)
			}
			if got != string(want) {
				t.Fatalf("artifact %s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}
