package main

import (
	"os"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestSubcommandsSmoke(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"params"}, "Theorem 4 threshold"},
		{[]string{"table2"}, "coarse"},
		{[]string{"table3"}, "0.366"},
		{[]string{"table3", "-csv"}, "hecr_c1"},
		{[]string{"table4"}, "Theorem 3"},
		{[]string{"fig1"}, "end-to-end"},
		{[]string{"fig2", "-width", "60"}, "channel"},
		{[]string{"fig3"}, "round 16"},
		{[]string{"fig4"}, "round 4"},
		{[]string{"counterexample"}, "0.99"},
		{[]string{"variance", "-sizes", "4,8", "-trials", "40"}, "bad %"},
		{[]string{"variance", "-sizes", "4", "-trials", "30", "-csv"}, "bad pairs"},
		{[]string{"baselines", "-n", "4", "-L", "500", "-csv"}, "equal loss"},
		{[]string{"installments", "-L", "50", "-taus", "0.01", "-k", "1,2", "-csv"}, "installments k"},
		{[]string{"threshold", "-sizes", "4,8", "-trials", "20"}, "100% correct"},
		{[]string{"hecr", "-profile", "1,0.5,0.25"}, "HECR"},
		{[]string{"compare", "-p1", "0.99,0.02", "-p2", "0.5,0.5"}, "P1 outperforms P2"},
		{[]string{"speedup", "-profile", "1,0.5,0.25", "-phi", "0.05"}, "Theorem 3"},
		{[]string{"speedup", "-profile", "1,1", "-psi", "0.5", "-rounds", "2"}, "round 2"},
		{[]string{"schedule", "-profile", "1,0.5", "-L", "100", "-width", "50"}, "total work"},
		{[]string{"protocols", "-profile", "1,0.6,0.3", "-L", "500"}, "loss vs FIFO"},
		{[]string{"sensitivity", "-profile", "1,0.5,0.25"}, "most valuable single upgrade: C3"},
		{[]string{"baselines", "-n", "4", "-L", "500"}, "equal loss"},
		{[]string{"moments", "-n", "4", "-trials", "200"}, "geo-mean"},
		{[]string{"predictors", "-n", "4", "-train", "150", "-eval", "150"}, "learned linear weights"},
		{[]string{"cost", "-n", "4", "-alpha", "1.2", "-budget", "50"}, "work per price unit"},
		{[]string{"links", "-profile", "0.5,0.4,0.3", "-taus", "0.000001,0.001,0.01", "-L", "500"}, "order spread"},
		{[]string{"execute", "-task", "smoothing", "-profile", "1,0.5", "-L", "30"}, "work really done"},
		{[]string{"hierarchy", "-n", "8"}, "loss vs flat"},
		{[]string{"adaptive", "-rounds", "3", "-L", "100"}, "final estimates"},
		{[]string{"adaptive", "-rounds", "3", "-jitter", "0.1"}, "efficiency"},
		{[]string{"adaptive", "-rounds", "8", "-sweep"}, "tradeoff surface"},
		{[]string{"design", "-budget", "30"}, "knapsack optimum"},
		{[]string{"replicate", "-trials", "100"}, "documented deviations"},
		{[]string{"installments", "-L", "50", "-taus", "0.01", "-k", "1,2"}, "gain vs single round"},
		{[]string{"replicate", "-trials", "100", "-json"}, `"paper"`},
		{[]string{"hierarchy", "-profile", "1,0.8,0.6,0.4", "-tau", "0.01"}, "chain"},
		{[]string{"jitter", "-n", "4", "-seeds", "5", "-L", "200"}, "makespan/L"},
		{[]string{"churn", "-n", "4", "-seeds", "3", "-L", "500"}, "coded>replan"},
		{[]string{"agreement"}, "max relative error"},
	}
	for _, tc := range cases {
		t.Run(strings.Join(tc.args, "_"), func(t *testing.T) {
			out := runCLI(t, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output of %v missing %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	cases := [][]string{
		nil,
		{"bogus"},
		{"hecr"},                         // missing profile
		{"hecr", "-profile", "1,abc"},    // unparseable
		{"hecr", "-profile", "1,-0.5"},   // invalid
		{"compare", "-p1", "1"},          // missing p2
		{"speedup", "-profile", "1,0.5"}, // neither phi nor psi
		{"speedup", "-profile", "1,0.5", "-phi", "0.1", "-psi", "0.5"}, // both
		{"table3", "-sizes", "8,x"},
		{"variance", "-trials", "0", "-sizes", "4"},
		{"execute", "-task", "mandelbrot"},
		{"links", "-profile", "1,0.5", "-taus", "bad"},
	}
	for _, args := range cases {
		if err := run(args, &b); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

func TestCompareReportsMinorization(t *testing.T) {
	out := runCLI(t, "compare", "-p1", "0.5,0.25", "-p2", "1,0.5")
	if !strings.Contains(out, "P1 minorizes P2") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "Proposition 3 certifies P1 > P2") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestParseProfile(t *testing.T) {
	p, err := parseProfile(" 1 , 0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[1] != 0.5 {
		t.Fatalf("parsed %v", p)
	}
}

func TestParseInts(t *testing.T) {
	ns, err := parseInts("4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || ns[2] != 16 {
		t.Fatalf("parsed %v", ns)
	}
}

func TestAllRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration is slow")
	}
	out := runCLI(t, "all", "-trials", "60", "-max-size-log", "6")
	for _, frag := range []string{"Table 3", "Figure 4", "§4.3 variance study", "Theorem 2 validation"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("all output missing %q", frag)
		}
	}
}

func TestScheduleTraceExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sched.json"
	out := runCLI(t, "schedule", "-profile", "1,0.5", "-L", "100", "-trace", path)
	if !strings.Contains(out, "trace written") {
		t.Fatalf("output:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Fatal("trace file malformed")
	}
}
