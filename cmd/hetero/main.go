// Command hetero regenerates every table and figure of "Toward
// Understanding Heterogeneity in Computing" (Rosenberg & Chiang, IPDPS
// 2010), plus the extension studies described in DESIGN.md.
//
// Usage:
//
//	hetero <subcommand> [flags]
//
// Paper artifacts:
//
//	params         Table 1 parameters and derived constants
//	table2         Table 2 (A, B for coarse/fine tasks)
//	table3         Table 3 (HECRs of the sample clusters)
//	table4         Table 4 (additive speedup work ratios)
//	fig1           Figure 1 (single-computer action/time diagram)
//	fig2           Figure 2 (3-computer FIFO schedule, ASCII Gantt)
//	fig3           Figure 3 (iterated speedups, phase 1)
//	fig4           Figure 4 (iterated speedups, phase 2)
//	counterexample §4's mean-speed counterexample
//	variance       §4.3 variance-predictor study
//	threshold      §4.3 θ-threshold verification
//
// Analysis tools and extensions:
//
//	hecr           X, HECR, work rate of a profile
//	compare        compare two clusters (X, HECR, moments, Prop. 3)
//	speedup        best single speedup for a profile (Theorems 3–4)
//	schedule       build + verify + render a FIFO schedule
//	protocols      every gap-free (Σ,Φ) protocol vs FIFO ([1]'s Theorem 1)
//	sensitivity    marginal value −∂X/∂ρᵢ of speeding up each computer
//	baselines      optimal FIFO vs equal/proportional allocations
//	moments        moment-predictor ablation
//	predictors     full predictor race incl. a trained linear scorer
//	cost           cost-effectiveness of cluster shapes at equal budgets
//	links          startup-order optimization under heterogeneous links
//	execute        run a REAL workload (montecarlo/patternmatch/smoothing/raytrace)
//	               end to end under the optimal protocol, with verification
//	hierarchy      flat vs federated vs chained cluster organizations
//	adaptive       learn unknown speeds online over repeated CEP rounds
//	design         budget-optimal cluster composition from a machine catalog
//	replicate      claim-by-claim replication certificate (text or -json)
//	installments   multi-installment worksharing vs link cost
//	jitter         robustness to speed misestimation
//	faults         work degradation under injected faults, fixed vs replan
//	churn          elastic churn: reactive salvage vs replicated/coded dispatch
//	agreement      simulation vs Theorem 2 validation
//	all            run every paper artifact with defaults
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hetero/internal/adaptive"
	"hetero/internal/catalog"
	"hetero/internal/core"
	"hetero/internal/experiments"
	"hetero/internal/harness"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/schedule"
	"hetero/internal/trace"
	"hetero/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetero:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand; run with one of: params table2 table3 table4 fig1 fig2 fig3 fig4 counterexample variance threshold hecr compare speedup schedule protocols sensitivity baselines moments jitter agreement all")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "params":
		return cmdParams(rest, out)
	case "table2":
		fmt.Fprint(out, experiments.Table2().Render())
		return nil
	case "table3":
		return cmdTable3(rest, out)
	case "table4":
		return cmdTable4(rest, out)
	case "fig1":
		return cmdFig1(rest, out)
	case "fig2":
		return cmdFig2(rest, out)
	case "fig3":
		return cmdFigSpeedup(out, true)
	case "fig4":
		return cmdFigSpeedup(out, false)
	case "counterexample":
		fmt.Fprint(out, experiments.MeanCounterexample().Render())
		return nil
	case "variance":
		return cmdVariance(rest, out)
	case "threshold":
		return cmdThreshold(rest, out)
	case "hecr":
		return cmdHECR(rest, out)
	case "compare":
		return cmdCompare(rest, out)
	case "speedup":
		return cmdSpeedup(rest, out)
	case "schedule":
		return cmdSchedule(rest, out)
	case "protocols":
		return cmdProtocols(rest, out)
	case "sensitivity":
		return cmdSensitivity(rest, out)
	case "baselines":
		return cmdBaselines(rest, out)
	case "moments":
		return cmdMoments(rest, out)
	case "predictors":
		return cmdPredictors(rest, out)
	case "cost":
		return cmdCost(rest, out)
	case "links":
		return cmdLinks(rest, out)
	case "execute":
		return cmdExecute(rest, out)
	case "hierarchy":
		return cmdHierarchy(rest, out)
	case "adaptive":
		return cmdAdaptive(rest, out)
	case "design":
		return cmdDesign(rest, out)
	case "replicate":
		return cmdReplicate(rest, out)
	case "installments":
		return cmdInstallments(rest, out)
	case "jitter":
		return cmdJitter(rest, out)
	case "faults":
		return cmdFaults(rest, out)
	case "churn":
		return cmdChurn(rest, out)
	case "agreement":
		return cmdAgreement(rest, out)
	case "all":
		return cmdAll(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// modelFlags installs -tau/-pi/-delta on fs, defaulting to Table 1.
func modelFlags(fs *flag.FlagSet) *model.Params {
	p := model.Table1()
	fs.Float64Var(&p.Tau, "tau", p.Tau, "network transit rate τ (time units per work unit)")
	fs.Float64Var(&p.Pi, "pi", p.Pi, "packaging rate π of a speed-1 computer")
	fs.Float64Var(&p.Delta, "delta", p.Delta, "output-to-input ratio δ")
	return &p
}

// parseProfile parses "1,0.5,0.25" into a validated profile.
func parseProfile(s string) (profile.Profile, error) {
	if s == "" {
		return nil, fmt.Errorf("empty profile; pass -profile \"1,0.5,0.25\"")
	}
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ-value %q: %v", part, err)
		}
		rhos = append(rhos, v)
	}
	return profile.New(rhos...)
}

func cmdParams(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("params", flag.ContinueOnError)
	m := modelFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	t := render.NewTable("Table 1: model parameters", "parameter", "value")
	t.Add("transit rate τ", fmt.Sprintf("%g per work unit", m.Tau))
	t.Add("packaging rate π", fmt.Sprintf("%g per work unit", m.Pi))
	t.Add("result-size ratio δ", fmt.Sprintf("%g", m.Delta))
	t.Add("A = π + τ", fmt.Sprintf("%g", m.A()))
	t.Add("B = 1 + (1+δ)π", fmt.Sprintf("%g", m.B()))
	t.Add("Theorem 4 threshold Aτδ/B²", fmt.Sprintf("%g", m.Theorem4Threshold()))
	fmt.Fprint(out, t.String())
	return nil
}

func cmdTable3(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("table3", flag.ContinueOnError)
	m := modelFlags(fs)
	sizes := fs.String("sizes", "8,16,32", "comma-separated cluster sizes")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*sizes)
	if err != nil {
		return err
	}
	res := experiments.Table3For(*m, ns)
	if *csv {
		t := render.NewTable("", "n", "hecr_c1", "hecr_c2", "ratio")
		for _, row := range res.Rows {
			t.Addf(row.N, row.HECRC1, row.HECRC2, row.Ratio)
		}
		fmt.Fprint(out, t.CSV())
		return nil
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdTable4(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("table4", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.5,0.333333333333333,0.25", "base heterogeneity profile")
	phi := fs.Float64("phi", 1.0/16, "additive speedup term φ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	res, err := experiments.Table4For(*m, p, *phi)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdFig1(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	m := modelFlags(fs)
	rho := fs.Float64("rho", 0.5, "remote computer speed ρ")
	w := fs.Float64("w", 100, "work units shared")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprint(out, experiments.Fig1(*m, *rho, *w))
	return nil
}

func cmdFig2(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fig2", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.5,0.25", "heterogeneity profile")
	lifespan := fs.Float64("L", 3600, "lifespan")
	width := fs.Int("width", 96, "Gantt chart width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	s, err := experiments.Fig2(*m, p, *lifespan, *width)
	if err != nil {
		return err
	}
	fmt.Fprint(out, s)
	return nil
}

func cmdFigSpeedup(out io.Writer, phase1 bool) error {
	var (
		res experiments.FigSpeedupResult
		err error
	)
	if phase1 {
		res, err = experiments.Fig3()
	} else {
		res, err = experiments.Fig4()
	}
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdVariance(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("variance", flag.ContinueOnError)
	m := modelFlags(fs)
	sizes := fs.String("sizes", "4,8,16,32,64,128,256,512,1024", "comma-separated cluster sizes")
	trials := fs.Int("trials", 400, "trials per size")
	seed := fs.Uint64("seed", 20100419, "RNG seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*sizes)
	if err != nil {
		return err
	}
	cfg := experiments.VarianceConfig{Params: *m, Sizes: ns, TrialsPerSize: *trials, Seed: *seed, Workers: *workers}
	res, err := experiments.VariancePredictor(cfg)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprint(out, res.Table().CSV())
		return nil
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdThreshold(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("threshold", flag.ContinueOnError)
	m := modelFlags(fs)
	sizes := fs.String("sizes", "4,16,64,256,1024", "comma-separated cluster sizes")
	trials := fs.Int("trials", 200, "trials per size")
	theta := fs.Float64("theta", experiments.PaperTheta, "variance-gap threshold θ")
	seed := fs.Uint64("seed", 20100419, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*sizes)
	if err != nil {
		return err
	}
	cfg := experiments.VarianceConfig{Params: *m, Sizes: ns, TrialsPerSize: *trials, Seed: *seed}
	res, err := experiments.VarianceThreshold(cfg, *theta)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdHECR(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hecr", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "", "heterogeneity profile, e.g. \"1,0.5,0.25\"")
	lifespan := fs.Float64("L", 3600, "lifespan for the work figure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	t := render.NewTable(fmt.Sprintf("Cluster %v under %v", p, *m), "measure", "value")
	t.Add("X(P)", fmt.Sprintf("%.6f", core.X(*m, p)))
	t.Add("HECR", fmt.Sprintf("%.6f", core.HECR(*m, p)))
	t.Add("work rate W(L;P)/L", fmt.Sprintf("%.6f", core.WorkRate(*m, p)))
	t.Add(fmt.Sprintf("W(L=%g;P)", *lifespan), fmt.Sprintf("%.6g", core.W(*m, p, *lifespan)))
	t.Add("mean ρ", fmt.Sprintf("%.6f", p.Mean()))
	t.Add("VAR(P)", fmt.Sprintf("%.6f", p.Variance()))
	t.Add("GEO-MEAN(P)", fmt.Sprintf("%.6f", p.GeoMean()))
	fmt.Fprint(out, t.String())
	return nil
}

func cmdCompare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	m := modelFlags(fs)
	p1s := fs.String("p1", "", "first profile")
	p2s := fs.String("p2", "", "second profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p1, err := parseProfile(*p1s)
	if err != nil {
		return fmt.Errorf("-p1: %w", err)
	}
	p2, err := parseProfile(*p2s)
	if err != nil {
		return fmt.Errorf("-p2: %w", err)
	}
	t := render.NewTable("Cluster comparison", "measure", "P1", "P2")
	t.Add("profile", p1.String(), p2.String())
	t.Addf("X(P)", core.X(*m, p1), core.X(*m, p2))
	t.Addf("HECR", core.HECR(*m, p1), core.HECR(*m, p2))
	t.Addf("mean ρ", p1.Mean(), p2.Mean())
	t.Addf("VAR", p1.Variance(), p2.Variance())
	fmt.Fprint(out, t.String())
	switch core.Compare(*m, p1, p2) {
	case 1:
		fmt.Fprintln(out, "P1 outperforms P2")
	case -1:
		fmt.Fprintln(out, "P2 outperforms P1")
	default:
		fmt.Fprintln(out, "exact tie")
	}
	if len(p1) == len(p2) {
		if ok, err := core.Prop3Predicts(p1, p2); err == nil && ok {
			fmt.Fprintln(out, "Proposition 3 certifies P1 > P2 from symmetric functions alone")
		} else if ok, err := core.Prop3Predicts(p2, p1); err == nil && ok {
			fmt.Fprintln(out, "Proposition 3 certifies P2 > P1 from symmetric functions alone")
		} else {
			fmt.Fprintln(out, "Proposition 3 inconclusive for this pair")
		}
		if profile.Minorizes(p1, p2) {
			fmt.Fprintln(out, "P1 minorizes P2 (Proposition 2 applies)")
		} else if profile.Minorizes(p2, p1) {
			fmt.Fprintln(out, "P2 minorizes P1 (Proposition 2 applies)")
		}
	}
	return nil
}

func cmdSpeedup(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("speedup", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "", "heterogeneity profile")
	phi := fs.Float64("phi", 0, "additive speedup term (exclusive with -psi)")
	psi := fs.Float64("psi", 0, "multiplicative speedup factor in (0,1)")
	rounds := fs.Int("rounds", 1, "iterated rounds for multiplicative speedups")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	switch {
	case *phi > 0 && *psi > 0:
		return fmt.Errorf("pass exactly one of -phi, -psi")
	case *phi > 0:
		choice, err := core.BestAdditive(*m, p, *phi)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "best additive speedup by φ=%g: C%d (the fastest computer, per Theorem 3)\n", *phi, choice.Index+1)
		fmt.Fprintf(out, "new profile: %v\nwork ratio: %.6f\n", choice.After, choice.WorkRatio)
	case *psi > 0:
		steps, err := core.GreedyMultiplicativePlan(*m, p, *psi, *rounds)
		if err != nil {
			return err
		}
		res := experiments.FigSpeedupResult{Params: *m, Psi: *psi, Steps: steps}
		fmt.Fprint(out, res.Render())
	default:
		return fmt.Errorf("pass one of -phi, -psi")
	}
	return nil
}

func cmdSchedule(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.5,0.25", "heterogeneity profile (startup order)")
	lifespan := fs.Float64("L", 3600, "lifespan")
	width := fs.Int("width", 96, "Gantt chart width")
	traceFile := fs.String("trace", "", "also write a Chrome trace-event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	s, err := experiments.Fig2(*m, p, *lifespan, *width)
	if err != nil {
		return err
	}
	fmt.Fprint(out, s)
	if *traceFile != "" {
		sched, err := schedule.BuildFIFO(*m, p, *lifespan)
		if err != nil {
			return err
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := (trace.Exporter{}).WriteSchedule(f, sched); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written: %s\n", *traceFile)
	}
	return nil
}

func cmdProtocols(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("protocols", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.6,0.35,0.2", "heterogeneity profile (startup order)")
	lifespan := fs.Float64("L", 1000, "lifespan")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	res, err := experiments.ProtocolStudy(*m, p, *lifespan)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdSensitivity(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sensitivity", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "", "heterogeneity profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	values := core.MarginalSpeedupValue(*m, p)
	t := render.NewTable(fmt.Sprintf("Marginal speedup value −∂X/∂ρᵢ for %v", p),
		"computer", "ρ", "marginal value")
	for i, v := range values {
		t.Add(fmt.Sprintf("C%d", i+1), fmt.Sprintf("%.4g", p[i]), fmt.Sprintf("%.6g", v))
	}
	fmt.Fprint(out, t.String())
	fmt.Fprintf(out, "most valuable single upgrade: C%d (Theorem 3: the fastest computer)\n",
		core.MostSensitiveIndex(*m, p)+1)
	return nil
}

func cmdBaselines(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("baselines", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "cluster size")
	lifespan := fs.Float64("L", 2000, "lifespan")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.BaselineComparison(*m, *lifespan, experiments.DefaultBaselineClusters(*n))
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprint(out, res.Table().CSV())
		return nil
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdMoments(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("moments", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "cluster size")
	trials := fs.Int("trials", 2000, "random pairs")
	seed := fs.Uint64("seed", 99, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.MomentPredictors(*m, *n, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdPredictors(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("predictors", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "cluster size")
	train := fs.Int("train", 600, "training pairs for the linear scorer")
	eval := fs.Int("eval", 600, "evaluation pairs per regime")
	seed := fs.Uint64("seed", 77, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.PredictorRace(*m, *n, *train, *eval, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdCost(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cost", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "cluster size")
	alpha := fs.Float64("alpha", 1.5, "price-of-speed exponent (price = speed^α)")
	budget := fs.Float64("budget", 150, "common cluster budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clusters, err := experiments.EqualBudgetClusters(experiments.CostModel{Alpha: *alpha}, *n, *budget)
	if err != nil {
		return err
	}
	res, err := experiments.CostEffectiveness(*m, experiments.CostModel{Alpha: *alpha}, clusters)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdLinks(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("links", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "0.5,0.4,0.3,0.2", "heterogeneity profile")
	links := fs.String("taus", "0.000001,0.001,0.005,0.02", "per-computer link transit rates")
	lifespan := fs.Float64("L", 1000, "lifespan")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	taus, err := parseFloats(*links)
	if err != nil {
		return err
	}
	res, err := experiments.LinkOrderStudy(*m, p, taus, *lifespan)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdExecute(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("execute", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.5,0.25", "heterogeneity profile")
	taskName := fs.String("task", "montecarlo", "workload: montecarlo | patternmatch | smoothing | raytrace")
	lifespan := fs.Float64("L", 200, "lifespan (virtual time units)")
	seed := fs.Uint64("seed", 1, "workload seed")
	verify := fs.Bool("verify", true, "recompute sequentially and check digests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	task, err := workload.ByName(*taskName, *seed)
	if err != nil {
		return err
	}
	rep, err := harness.RunFIFO(*m, p, task, *lifespan)
	if err != nil {
		return err
	}
	t := render.NewTable(
		fmt.Sprintf("End-to-end %s run: n=%d, L=%g (virtual)", rep.Task, len(p), *lifespan),
		"computer", "ρ", "units", "results at", "digest")
	for _, c := range rep.Computers {
		t.Add(fmt.Sprintf("C%d", c.Index+1),
			fmt.Sprintf("%.4g", c.Rho),
			fmt.Sprintf("%d", c.Units),
			fmt.Sprintf("%.6g", c.ResultsAt),
			fmt.Sprintf("%016x", c.Digest))
	}
	fmt.Fprint(out, t.String())
	fmt.Fprintf(out, "units computed:   %d (model predicts %.2f; rounding loss %.2f)\n",
		rep.UnitsDone, rep.ModelWork, rep.RoundingLoss())
	fmt.Fprintf(out, "virtual makespan: %.6g\n", rep.Makespan)
	fmt.Fprintf(out, "run digest:       %016x\n", rep.Digest)
	if *verify {
		if err := rep.VerifySequential(task); err != nil {
			return err
		}
		fmt.Fprintln(out, "verification:     sequential recomputation matches — work really done")
	}
	return nil
}

func cmdHierarchy(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "", "machine speeds (default: linear profile of size -n)")
	n := fs.Int("n", 8, "cluster size when -profile is not given")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		p   profile.Profile
		err error
	)
	if *prof != "" {
		p, err = parseProfile(*prof)
		if err != nil {
			return err
		}
	} else {
		p = profile.Linear(*n)
	}
	res, err := experiments.HierarchyStudy(*m, p)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdAdaptive(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptive", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.5,0.25,0.125", "TRUE heterogeneity profile (unknown to the server)")
	rounds := fs.Int("rounds", 8, "CEP rounds")
	lifespan := fs.Float64("L", 500, "round lifespan")
	alpha := fs.Float64("alpha", 1, "smoothing factor in (0,1]")
	jitter := fs.Float64("jitter", 0, "per-round speed fluctuation ±jitter")
	seed := fs.Uint64("seed", 42, "fluctuation seed")
	sweep := fs.Bool("sweep", false, "sweep α × jitter instead of a single run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	if *sweep {
		sw, err := experiments.AdaptiveSweep(*m, p, *rounds,
			[]float64{0.1, 0.3, 0.7, 1}, []float64{0, 0.05, 0.15, 0.3}, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, sw.Render())
		return nil
	}
	res, err := adaptive.Run(adaptive.Config{
		Params: *m, True: p, Rounds: *rounds, RoundLifespan: *lifespan,
		Alpha: *alpha, Jitter: *jitter, Seed: *seed,
	})
	if err != nil {
		return err
	}
	t := render.NewTable(
		fmt.Sprintf("Adaptive worksharing: learning %v online (α=%g, jitter=%g)", p, *alpha, *jitter),
		"round", "max est. error", "mean est. error", "efficiency", "makespan overrun")
	for _, r := range res.Rounds {
		t.Add(fmt.Sprintf("%d", r.Round),
			fmt.Sprintf("%.4f", r.MaxRelErr),
			fmt.Sprintf("%.4f", r.MeanRelErr),
			fmt.Sprintf("%.4f", r.Efficiency),
			fmt.Sprintf("%+.4f", r.MakespanOverrun))
	}
	fmt.Fprint(out, t.String())
	effs := make([]float64, len(res.Rounds))
	for i, r := range res.Rounds {
		effs[i] = r.Efficiency
	}
	fmt.Fprintf(out, "efficiency per round: %s\n", render.Sparkline(effs))
	fmt.Fprintf(out, "final estimates: %v\n", res.Estimates)
	return nil
}

func cmdDesign(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("design", flag.ContinueOnError)
	m := modelFlags(fs)
	spec := fs.String("catalog", "econo:1:1,mid:0.5:3,fast:0.25:5,turbo:0.1:14",
		"machine catalog as name:rho:price entries")
	budget := fs.Int("budget", 50, "total budget (integer price units)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, err := parseCatalog(*spec)
	if err != nil {
		return err
	}
	opt, err := catalog.Optimize(*m, cat, *budget)
	if err != nil {
		return err
	}
	t := render.NewTable(
		fmt.Sprintf("Budget-optimal cluster for budget %d (exact knapsack on −log r)", *budget),
		"strategy", "composition", "n", "cost", "X", "HECR")
	describe := func(name string, d catalog.Design, err error) {
		if err != nil {
			t.Add(name, err.Error(), "-", "-", "-", "-")
			return
		}
		parts := make([]string, 0, len(cat))
		for i, n := range d.Counts {
			if n > 0 {
				parts = append(parts, fmt.Sprintf("%d×%s", n, cat[i].Name))
			}
		}
		t.Add(name, strings.Join(parts, " + "),
			fmt.Sprintf("%d", len(d.Profile)),
			fmt.Sprintf("%d", d.Cost),
			fmt.Sprintf("%.4f", d.X),
			fmt.Sprintf("%.4f", core.HECR(*m, d.Profile)))
	}
	describe("knapsack optimum", opt, nil)
	fastest, ferr := catalog.BuyFastest(*m, cat, *budget)
	describe("buy-fastest heuristic", fastest, ferr)
	most, merr := catalog.BuyMost(*m, cat, *budget)
	describe("buy-most heuristic", most, merr)
	fmt.Fprint(out, t.String())
	return nil
}

func cmdInstallments(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("installments", flag.ContinueOnError)
	m := modelFlags(fs)
	prof := fs.String("profile", "1,0.8,0.6,0.4", "heterogeneity profile")
	lifespan := fs.Float64("L", 100, "lifespan")
	tausFlag := fs.String("taus", "0.000001,0.01,0.05", "link costs to sweep")
	ksFlag := fs.String("k", "1,2,4,8", "installment counts to sweep")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	taus, err := parseFloats(*tausFlag)
	if err != nil {
		return err
	}
	ks, err := parseInts(*ksFlag)
	if err != nil {
		return err
	}
	res, err := experiments.InstallmentStudy(*m, p, *lifespan, taus, ks)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprint(out, res.Table().CSV())
		return nil
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdReplicate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replicate", flag.ContinueOnError)
	trials := fs.Int("trials", 300, "trials per size for the randomized checks")
	seed := fs.Uint64("seed", 20100419, "RNG seed")
	asJSON := fs.Bool("json", false, "emit the certificate as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := experiments.Replicate(experiments.ReplicationConfig{VarianceTrials: *trials, Seed: *seed})
	if err != nil {
		return err
	}
	if *asJSON {
		s, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s)
	} else {
		fmt.Fprint(out, rep.Render())
	}
	if rep.Failed > 0 {
		return fmt.Errorf("replication certificate has %d failed checks", rep.Failed)
	}
	return nil
}

// parseCatalog parses "name:rho:price,name:rho:price,…".
func parseCatalog(s string) (catalog.Catalog, error) {
	var cat catalog.Catalog
	for _, entry := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad catalog entry %q, want name:rho:price", entry)
		}
		rho, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ in %q: %v", entry, err)
		}
		price, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bad price in %q: %v", entry, err)
		}
		cat = append(cat, catalog.Tier{Name: fields[0], Rho: rho, Price: price})
	}
	return cat, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	vals := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func cmdJitter(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jitter", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "cluster size (linear profile)")
	lifespan := fs.Float64("L", 1000, "lifespan")
	seeds := fs.Int("seeds", 50, "perturbation seeds per level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.JitterRobustness(*m, profile.Linear(*n), *lifespan,
		[]float64{0, 0.01, 0.05, 0.1, 0.2}, *seeds)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdFaults(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "cluster size (seeded random profiles)")
	lifespan := fs.Float64("L", 3600, "lifespan")
	seeds := fs.Int("seeds", 30, "seeded trials per fault intensity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.FaultTolerance(*m, *n, *lifespan, []int{0, 1, 2, 4, 8}, *seeds)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdChurn(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	m := modelFlags(fs)
	n := fs.Int("n", 8, "base cluster size (seeded random profiles)")
	lifespan := fs.Float64("L", 3600, "lifespan")
	seeds := fs.Int("seeds", 20, "seeded trials per churn intensity")
	jitter := fs.Float64("jitter", 0.15, "unpredicted straggler jitter: realized ρ·(1±jitter)")
	margin := fs.Float64("margin", 0.15, "redundancy deadline margin (fraction of L)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.ElasticChurn(*m, *n, *lifespan, []int{0, 2, 4, 8}, *seeds, *jitter, *margin)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdAgreement(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("agreement", flag.ContinueOnError)
	m := modelFlags(fs)
	seed := fs.Uint64("seed", 5, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.SimAgreement(*m, []int{1, 4, 16, 64}, []float64{100, 3600, 1e6}, *seed)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

func cmdAll(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	trials := fs.Int("trials", 400, "trials per size for the §4.3 study")
	maxSizeLog := fs.Int("max-size-log", 10, "largest §4.3 cluster size as log2(n)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	steps := []struct {
		title string
		run   func() error
	}{
		{"Table 1", func() error { return cmdParams(nil, out) }},
		{"Table 2", func() error { fmt.Fprint(out, experiments.Table2().Render()); return nil }},
		{"Table 3", func() error { fmt.Fprint(out, experiments.Table3().Render()); return nil }},
		{"Table 4", func() error {
			res, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{"Figure 1", func() error { return cmdFig1(nil, out) }},
		{"Figure 2", func() error { return cmdFig2(nil, out) }},
		{"Figure 3", func() error { return cmdFigSpeedup(out, true) }},
		{"Figure 4", func() error { return cmdFigSpeedup(out, false) }},
		{"§4 counterexample", func() error { fmt.Fprint(out, experiments.MeanCounterexample().Render()); return nil }},
		{"§4.3 variance study", func() error {
			sizes := make([]int, 0, *maxSizeLog-1)
			for k := 2; k <= *maxSizeLog; k++ {
				sizes = append(sizes, 1<<k)
			}
			cfg := experiments.VarianceConfig{Params: model.Table1(), Sizes: sizes, TrialsPerSize: *trials, Seed: 20100419}
			res, err := experiments.VariancePredictor(cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{"§4.3 threshold", func() error {
			cfg := experiments.VarianceConfig{Params: model.Table1(), Sizes: []int{4, 16, 64, 256, 1024}, TrialsPerSize: 200, Seed: 20100419}
			res, err := experiments.VarianceThreshold(cfg, experiments.PaperTheta)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{"Protocol study ([1] Theorem 1)", func() error { return cmdProtocols(nil, out) }},
		{"HECR growth (Table 3 trend extended)", func() error {
			res, err := experiments.HECRGrowth(model.Table1(), 1024)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{"Baselines (extension)", func() error { return cmdBaselines(nil, out) }},
		{"Predictor race (extension)", func() error {
			return cmdPredictors([]string{"-train", "300", "-eval", "300"}, out)
		}},
		{"Cost effectiveness (extension)", func() error { return cmdCost(nil, out) }},
		{"Hierarchy (extension)", func() error { return cmdHierarchy(nil, out) }},
		{"Heterogeneous links (extension)", func() error { return cmdLinks(nil, out) }},
		{"Multi-installment protocols (extension)", func() error { return cmdInstallments(nil, out) }},
		{"Adaptive worksharing (extension)", func() error {
			return cmdAdaptive([]string{"-rounds", "12", "-sweep"}, out)
		}},
		{"Real-workload execution", func() error {
			return cmdExecute([]string{"-task", "montecarlo", "-L", "100"}, out)
		}},
		{"Moment predictors (extension)", func() error { return cmdMoments(nil, out) }},
		{"Jitter robustness (extension)", func() error { return cmdJitter(nil, out) }},
		{"Theorem 2 validation", func() error { return cmdAgreement(nil, out) }},
		{"Replication certificate", func() error { return cmdReplicate([]string{"-trials", "200"}, out) }},
	}
	for _, s := range steps {
		fmt.Fprintf(out, "\n==================== %s ====================\n", s.title)
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.title, err)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ns := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		ns = append(ns, v)
	}
	return ns, nil
}
