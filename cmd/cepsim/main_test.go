package main

import (
	"os"
	"strings"
	"testing"
)

func TestCepsimStrategies(t *testing.T) {
	for _, strategy := range []string{"optimal", "equal", "proportional"} {
		var b strings.Builder
		if err := run([]string{"-profile", "1,0.5,0.25", "-L", "500", "-strategy", strategy}, &b); err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		out := b.String()
		for _, frag := range []string{"makespan", "work completed by L", "Theorem 2", "mean utilization"} {
			if !strings.Contains(out, frag) {
				t.Fatalf("%s output missing %q:\n%s", strategy, frag, out)
			}
		}
	}
}

func TestCepsimJitter(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-profile", "1,0.5", "-L", "100", "-jitter", "0.1", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "jitter=0.1") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestCepsimErrors(t *testing.T) {
	cases := [][]string{
		{"-profile", "1,bad"},
		{"-profile", "1,0.5", "-strategy", "nope"},
		{"-profile", "1,0.5", "-tau", "-1"},
		{"-profile", "1,0.5", "-jitter", "2"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

func TestCepsimTraceExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/run.json"
	var b strings.Builder
	if err := run([]string{"-profile", "1,0.5", "-L", "100", "-trace", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Fatalf("trace file missing traceEvents: %s", data)
	}
	if !strings.Contains(b.String(), "trace written") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestCepsimFaultPlan(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-profile", "1,0.5,0.25", "-L", "3600",
		"-faults", `[{"kind":"outage","computer":2,"at":100,"until":600}]`, "-replan"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"replanning rounds", "drop C3", "degradation:", "fault-free W(L;P)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The same plan from a file, without replanning.
	dir := t.TempDir()
	path := dir + "/plan.json"
	if err := os.WriteFile(path, []byte(`[{"kind":"crash","computer":1,"at":900}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"-profile", "1,0.5", "-L", "3600", "-faults", "@" + path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fixed optimal protocol") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestCepsimElastic(t *testing.T) {
	// A join in the plan routes through the elastic pipeline even without
	// -elastic; -replan recruits the joiner.
	var b strings.Builder
	err := run([]string{"-profile", "0.95,0.9", "-L", "3600", "-replan",
		"-faults", `[{"kind":"join","computer":2,"at":600,"rho":0.5}]`}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"elastic CEP simulation", "policy salvage-replan", "1 joins", "useful work by L"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Redundancy with margin and jitter: the redundant-units summary and the
	// per-cohort dispatch rounds appear.
	b.Reset()
	err = run([]string{"-profile", "0.5,0.5,0.5,0.5", "-L", "3600",
		"-redundancy", "2@0.15", "-jitter", "0.15",
		"-faults", `[{"kind":"join","computer":4,"at":600,"rho":0.5}]`}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{"policy replicated-2@0.15", "redundant units:", "dispatch rounds", "overhead:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// -elastic alone (empty plan, coded scheme) works too.
	b.Reset()
	if err := run([]string{"-profile", "0.5,0.5,0.5", "-L", "3600", "-elastic", "-redundancy", "coded:2of3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "policy coded-2of3") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestCepsimFaultPlanRejections(t *testing.T) {
	cases := [][]string{
		{"-profile", "1,0.5", "-faults", "not json"},
		{"-profile", "1,0.5", "-faults", `[{"kind":"crash","computer":7,"at":1}]`},
		{"-profile", "1,0.5", "-faults", `[{"kind":"crash","computer":0,"at":1}]`, "-strategy", "equal"},
		{"-profile", "1,0.5", "-faults", "@/no/such/file.json"},
		{"-profile", "1,0.5", "-redundancy", "bogus"},
		{"-profile", "1,0.5", "-redundancy", "2", "-replan", "-elastic"},
		{"-profile", "1,0.5", "-elastic", "-strategy", "equal"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
