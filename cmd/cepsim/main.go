// Command cepsim runs the discrete-event Cluster-Exploitation-Problem
// simulator on a single cluster and protocol, printing the per-computer
// trace and the work production — the raw tool behind the repository's
// simulation-based experiments.
//
// Example:
//
//	cepsim -profile "1,0.5,0.25" -L 3600 -strategy optimal
//	cepsim -profile "1,0.5,0.25" -L 3600 -strategy equal -jitter 0.1 -seed 7
//
// With -faults the run goes through the fault-aware integrator and prints a
// degradation report instead of the trace table; -replan switches on the
// round-based replanner:
//
//	cepsim -profile "1,0.5,0.25" -L 3600 \
//	    -faults '[{"kind":"crash","computer":2,"at":900}]' -replan
//	cepsim -profile "1,0.5" -L 3600 -faults @plan.json
//
// With -elastic (implied by -redundancy or by a join event in the plan)
// the run goes through the elastic-churn pipeline: joins are recruited,
// and -redundancy switches from reactive salvage to proactive replicated
// or coded dispatch:
//
//	cepsim -profile "0.5,0.5,0.5,0.5" -L 3600 -redundancy 2@0.15 -jitter 0.15 \
//	    -faults '[{"kind":"join","computer":4,"at":600,"rho":0.5}]'
//	cepsim -profile "0.5,0.5,0.5" -L 3600 -redundancy coded:2of3 -elastic
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"hetero/internal/core"
	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cepsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cepsim", flag.ContinueOnError)
	m := model.Table1()
	fs.Float64Var(&m.Tau, "tau", m.Tau, "network transit rate τ")
	fs.Float64Var(&m.Pi, "pi", m.Pi, "packaging rate π")
	fs.Float64Var(&m.Delta, "delta", m.Delta, "output-to-input ratio δ")
	prof := fs.String("profile", "1,0.5,0.25", "heterogeneity profile (startup order)")
	lifespan := fs.Float64("L", 3600, "lifespan to target")
	strategy := fs.String("strategy", "optimal", "allocation strategy: optimal | equal | proportional")
	jitter := fs.Float64("jitter", 0, "speed misestimation: simulate with ρ·(1±jitter)")
	seed := fs.Uint64("seed", 1, "jitter RNG seed")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in chrome://tracing or ui.perfetto.dev)")
	faultsArg := fs.String("faults", "", "fault plan: inline JSON array of faults, or @file; kinds: crash, outage, slowdown, blackout, join")
	replan := fs.Bool("replan", false, "with -faults: re-solve the remaining-lifespan CEP at each fault event")
	elastic := fs.Bool("elastic", false, "run the elastic-churn pipeline (joins recruited; implied by -redundancy or a join in -faults)")
	redundancyArg := fs.String("redundancy", "", "proactive redundancy scheme: r (replication factor), coded:K[ofN], optional @margin (e.g. 2@0.15)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	red, err := sim.ParseRedundancy(*redundancyArg)
	if err != nil {
		return err
	}
	if *faultsArg != "" || *elastic || red.Enabled() {
		var plan fault.Plan
		if *faultsArg != "" {
			if plan, err = parseFaultPlan(*faultsArg, len(p)); err != nil {
				return err
			}
		}
		if *strategy != "optimal" {
			return fmt.Errorf("-faults/-elastic simulate the optimal protocol; drop -strategy %q", *strategy)
		}
		opt := sim.Options{RhoJitter: *jitter, Seed: *seed}
		if *elastic || red.Enabled() || plan.NumJoins() > 0 {
			pol := sim.ElasticPolicy{Replan: *replan, Redundancy: red}
			return runElastic(out, m, p, *lifespan, plan, pol, opt)
		}
		return runFaulty(out, m, p, *lifespan, plan, *replan, opt)
	}

	var proto sim.Protocol
	switch *strategy {
	case "optimal":
		proto, err = sim.OptimalFIFO(m, p, *lifespan)
	case "equal":
		proto, _, err = sim.EqualSplit(m, p, *lifespan)
	case "proportional":
		proto, _, err = sim.ProportionalSplit(m, p, *lifespan)
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if err != nil {
		return err
	}
	res, err := sim.RunCEP(m, p, proto, sim.Options{RhoJitter: *jitter, Seed: *seed})
	if err != nil {
		return err
	}

	t := render.NewTable(
		fmt.Sprintf("CEP simulation: %s allocation, n=%d, L=%g, jitter=%g", *strategy, len(p), *lifespan, *jitter),
		"k", "computer", "ρ (eff)", "work", "recv end", "busy end", "results at")
	for k, tr := range res.Computers {
		t.Add(fmt.Sprintf("%d", k+1),
			fmt.Sprintf("C%d", tr.ID+1),
			fmt.Sprintf("%.4g (%.4g)", tr.Rho, tr.EffRho),
			fmt.Sprintf("%.6g", tr.Work),
			fmt.Sprintf("%.6g", tr.RecvEnd),
			fmt.Sprintf("%.6g", tr.BusyEnd),
			fmt.Sprintf("%.6g", tr.ResultsAt))
	}
	fmt.Fprint(out, t.String())
	fmt.Fprintf(out, "makespan:            %.8g\n", res.Makespan)
	fmt.Fprintf(out, "work completed by L: %.8g\n", res.CompletedBy(*lifespan))
	fmt.Fprintf(out, "Theorem 2 W(L;P):    %.8g (optimal FIFO)\n", core.W(m, p, *lifespan))
	fmt.Fprintf(out, "events processed:    %d\n", res.Events)
	u := res.Utilization()
	fmt.Fprintf(out, "mean utilization:    %.4f (channel duty cycle %.6f)\n", u.Mean, u.Channel)

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := (trace.Exporter{}).WriteSimResult(f, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written:       %s\n", *traceFile)
	}
	return nil
}

// parseFaultPlan reads a fault plan from an inline JSON array or, with a
// leading @, from a file. Outage/blackout faults with "until" omitted are
// permanent, matching the HTTP API's shorthand.
func parseFaultPlan(arg string, n int) (fault.Plan, error) {
	data := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		var err error
		if data, err = os.ReadFile(arg[1:]); err != nil {
			return fault.Plan{}, err
		}
	}
	var faults []fault.Fault
	if err := json.Unmarshal(data, &faults); err != nil {
		return fault.Plan{}, fmt.Errorf("fault plan: %v", err)
	}
	for i := range faults {
		f := &faults[i]
		if (f.Kind == fault.Outage || f.Kind == fault.Blackout) && f.Until == 0 {
			f.Until = math.Inf(1)
		}
	}
	plan := fault.Plan{Faults: faults}
	return plan, plan.Validate(n)
}

// runFaulty prints the degradation report for a fault-aware run: the
// replanner's per-round table when -replan is set, then the salvage/loss
// summary against Theorem 2's fault-free optimum.
func runFaulty(out io.Writer, m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, replan bool, opt sim.Options) error {
	rep, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, replan, opt)
	if err != nil {
		return err
	}
	mode := "fixed optimal protocol"
	if replan {
		mode = "replan at each fault event"
	}
	fmt.Fprintf(out, "fault-aware CEP simulation: n=%d, L=%g, %d faults, %s\n",
		len(p), lifespan, len(plan.Faults), mode)
	if replan {
		t := render.NewTable("replanning rounds",
			"round", "window", "computers", "planned rate", "dispatched", "salvaged")
		for i, r := range rep.Rounds {
			t.Add(fmt.Sprintf("%d", i+1),
				fmt.Sprintf("[%.6g, %.6g)", r.Start, r.End),
				formatComputers(r.Computers),
				fmt.Sprintf("%.6g", r.PlannedRate),
				fmt.Sprintf("%.6g", r.Dispatched),
				fmt.Sprintf("%.6g", r.Salvaged))
		}
		fmt.Fprint(out, t.String())
		for _, d := range rep.Decisions {
			for _, dp := range d.DropPrices {
				fmt.Fprintf(out, "drop C%d at t=%.6g: cluster work rate falls to %.6g\n",
					dp.Computer+1, d.At, dp.WorkRate)
			}
			verdict := "ride out the in-flight round"
			if d.Replanned {
				verdict = "abandon and replan"
			}
			fmt.Fprintf(out, "event t=%.6g: ride projects %.6g, replan projects %.6g → %s\n",
				d.At, d.RideValue, math.Max(0, d.ReplanValue), verdict)
		}
	}
	fmt.Fprintf(out, "fault-free W(L;P):   %.8g\n", rep.FaultFree)
	fmt.Fprintf(out, "work salvaged by L:  %.8g\n", rep.Salvaged)
	fmt.Fprintf(out, "work dispatched:     %.8g\n", rep.Dispatched)
	fmt.Fprintf(out, "work lost:           %.8g\n", rep.Lost)
	fmt.Fprintf(out, "degradation:         %.4f\n", rep.Degradation)
	fmt.Fprintf(out, "events processed:    %d\n", rep.Events)
	return nil
}

// runElastic prints the elastic-churn report: the dispatch rounds (replan
// rounds, or the base and per-join-cohort redundant rounds), the
// replanner's decision trail when applicable, then the useful-work summary
// against the base cluster's fault-free optimum.
func runElastic(out io.Writer, m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, pol sim.ElasticPolicy, opt sim.Options) error {
	rep, err := sim.SimulateElastic(context.Background(), m, p, lifespan, plan, pol, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "elastic CEP simulation: base n=%d, %d joins, L=%g, %d faults, policy %s\n",
		rep.BaseN, rep.Joins, lifespan, len(plan.Faults)-rep.Joins, rep.Policy)
	if len(rep.Rounds) > 0 {
		t := render.NewTable("dispatch rounds",
			"round", "window", "computers", "planned rate", "dispatched", "salvaged")
		for i, r := range rep.Rounds {
			t.Add(fmt.Sprintf("%d", i+1),
				fmt.Sprintf("[%.6g, %.6g)", r.Start, r.End),
				formatComputers(r.Computers),
				fmt.Sprintf("%.6g", r.PlannedRate),
				fmt.Sprintf("%.6g", r.Dispatched),
				fmt.Sprintf("%.6g", r.Salvaged))
		}
		fmt.Fprint(out, t.String())
	}
	for _, d := range rep.Decisions {
		verdict := "ride out the in-flight round"
		if d.Replanned {
			verdict = "abandon and replan"
		}
		fmt.Fprintf(out, "event t=%.6g: ride projects %.6g, replan projects %.6g → %s\n",
			d.At, d.RideValue, math.Max(0, d.ReplanValue), verdict)
	}
	if rep.Units > 0 {
		fmt.Fprintf(out, "redundant units:     %d dispatched, %d completed\n", rep.Units, rep.UnitsCompleted)
	}
	fmt.Fprintf(out, "fault-free W(L;P):   %.8g (base cluster)\n", rep.FaultFree)
	fmt.Fprintf(out, "useful work by L:    %.8g\n", rep.Useful)
	fmt.Fprintf(out, "work dispatched:     %.8g\n", rep.Dispatched)
	fmt.Fprintf(out, "work lost:           %.8g\n", rep.Lost)
	fmt.Fprintf(out, "overhead:            %.4f\n", rep.Overhead)
	fmt.Fprintf(out, "degradation:         %.4f\n", rep.Degradation)
	fmt.Fprintf(out, "events processed:    %d\n", rep.Events)
	return nil
}

func formatComputers(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("C%d", id+1)
	}
	return strings.Join(parts, ",")
}

func parseProfile(s string) (profile.Profile, error) {
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ-value %q: %v", part, err)
		}
		rhos = append(rhos, v)
	}
	return profile.New(rhos...)
}
