// Command cepsim runs the discrete-event Cluster-Exploitation-Problem
// simulator on a single cluster and protocol, printing the per-computer
// trace and the work production — the raw tool behind the repository's
// simulation-based experiments.
//
// Example:
//
//	cepsim -profile "1,0.5,0.25" -L 3600 -strategy optimal
//	cepsim -profile "1,0.5,0.25" -L 3600 -strategy equal -jitter 0.1 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cepsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cepsim", flag.ContinueOnError)
	m := model.Table1()
	fs.Float64Var(&m.Tau, "tau", m.Tau, "network transit rate τ")
	fs.Float64Var(&m.Pi, "pi", m.Pi, "packaging rate π")
	fs.Float64Var(&m.Delta, "delta", m.Delta, "output-to-input ratio δ")
	prof := fs.String("profile", "1,0.5,0.25", "heterogeneity profile (startup order)")
	lifespan := fs.Float64("L", 3600, "lifespan to target")
	strategy := fs.String("strategy", "optimal", "allocation strategy: optimal | equal | proportional")
	jitter := fs.Float64("jitter", 0, "speed misestimation: simulate with ρ·(1±jitter)")
	seed := fs.Uint64("seed", 1, "jitter RNG seed")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (view in chrome://tracing or ui.perfetto.dev)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parseProfile(*prof)
	if err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}

	var proto sim.Protocol
	switch *strategy {
	case "optimal":
		proto, err = sim.OptimalFIFO(m, p, *lifespan)
	case "equal":
		proto, _, err = sim.EqualSplit(m, p, *lifespan)
	case "proportional":
		proto, _, err = sim.ProportionalSplit(m, p, *lifespan)
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if err != nil {
		return err
	}
	res, err := sim.RunCEP(m, p, proto, sim.Options{RhoJitter: *jitter, Seed: *seed})
	if err != nil {
		return err
	}

	t := render.NewTable(
		fmt.Sprintf("CEP simulation: %s allocation, n=%d, L=%g, jitter=%g", *strategy, len(p), *lifespan, *jitter),
		"k", "computer", "ρ (eff)", "work", "recv end", "busy end", "results at")
	for k, tr := range res.Computers {
		t.Add(fmt.Sprintf("%d", k+1),
			fmt.Sprintf("C%d", tr.ID+1),
			fmt.Sprintf("%.4g (%.4g)", tr.Rho, tr.EffRho),
			fmt.Sprintf("%.6g", tr.Work),
			fmt.Sprintf("%.6g", tr.RecvEnd),
			fmt.Sprintf("%.6g", tr.BusyEnd),
			fmt.Sprintf("%.6g", tr.ResultsAt))
	}
	fmt.Fprint(out, t.String())
	fmt.Fprintf(out, "makespan:            %.8g\n", res.Makespan)
	fmt.Fprintf(out, "work completed by L: %.8g\n", res.CompletedBy(*lifespan))
	fmt.Fprintf(out, "Theorem 2 W(L;P):    %.8g (optimal FIFO)\n", core.W(m, p, *lifespan))
	fmt.Fprintf(out, "events processed:    %d\n", res.Events)
	u := res.Utilization()
	fmt.Fprintf(out, "mean utilization:    %.4f (channel duty cycle %.6f)\n", u.Mean, u.Channel)

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := (trace.Exporter{}).WriteSimResult(f, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written:       %s\n", *traceFile)
	}
	return nil
}

func parseProfile(s string) (profile.Profile, error) {
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ-value %q: %v", part, err)
		}
		rhos = append(rhos, v)
	}
	return profile.New(rhos...)
}
