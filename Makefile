# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test bench vet fmt cover replicate artifacts clean FORCE

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/incr ./internal/api

bench: BENCH_incr.json
	$(GO) test -bench=. -benchmem ./...

# Perf certificate for the incremental evaluator + cached serving path
# (non-zero exit if the ≥10× n=4096 speedup-search threshold is missed).
BENCH_incr.json: FORCE
	$(GO) run ./cmd/benchincr > $@

FORCE:

vet:
	$(GO) vet ./...

fmt:
	gofmt -w cmd internal examples bench_test.go

cover:
	$(GO) test -cover ./...

# Claim-by-claim replication certificate (non-zero exit on any failure).
replicate:
	$(GO) run ./cmd/hetero replicate

# Regenerate every paper table/figure into artifacts.txt.
artifacts:
	$(GO) run ./cmd/hetero all > artifacts.txt

clean:
	rm -f artifacts.txt test_output.txt bench_output.txt BENCH_incr.json
