# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test bench vet fmt cover replicate artifacts clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w cmd internal examples bench_test.go

cover:
	$(GO) test -cover ./...

# Claim-by-claim replication certificate (non-zero exit on any failure).
replicate:
	$(GO) run ./cmd/hetero replicate

# Regenerate every paper table/figure into artifacts.txt.
artifacts:
	$(GO) run ./cmd/hetero all > artifacts.txt

clean:
	rm -f artifacts.txt test_output.txt bench_output.txt
