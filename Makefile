# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test bench chaos vet lint check fmt cover replicate artifacts clean FORCE

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/incr ./internal/api ./internal/cluster ./internal/fault ./internal/sim ./internal/spill

bench: BENCH_incr.json BENCH_fault.json BENCH_serve.json BENCH_batch.json
	$(GO) test -bench=. -benchmem ./...

# Perf certificate for the incremental evaluator + cached serving path
# (non-zero exit if the ≥10× n=4096 speedup-search threshold is missed).
BENCH_incr.json: FORCE
	$(GO) run ./cmd/benchincr > $@

# Perf certificate for the fault layer: the fault-aware integrator's
# empty-plan run must cost ≤2× plain RunCEP at n=1024; replanner timing is
# reported for scale. The elastic-churn robustness regime rides along:
# replicated-2@0.15 must out-salvage ride-vs-replan ≥1.2× aggregate useful
# work over ≥5 jitter seeds of the fixed heavy-churn plan, with fault-free
# duplication overhead ≤2×. checkbench re-derives the ratio from the raw
# useful-work sums and history-gates it like any thresholded regime.
BENCH_fault.json: FORCE
	$(GO) run ./cmd/benchfault > $@

# Perf certificate for the serving hot path: sharded singleflight cache,
# raw-query front layer, zero-alloc measure path, admission batcher,
# distributed cache tier. The mixed (thundering herd) regime must show ≥3×
# throughput over the single-lock baseline; many_clients (distinct-key herd)
# must certify ≥2× coalesced-over-uncoalesced benchstat-style (≥5 paired
# samples, 95% CI low end); fleet (4 peer replicas vs the same fleet with no
# tier) must certify ≥2× wall clock the same way AND ≤1.25 evaluations per
# distinct key fleet-wide, re-derived by checkbench from the raw eval
# counters. The sweep regime (repeated large streamed batch sweeps, working
# set past the memory budget) must certify ≥2× spill-on over spill-off wall
# clock benchstat-style with byte-identical responses, plus a bounded heap
# peak (≤0.5× the response) while serving a spill hit — both re-derived by
# checkbench from the raw per-sample fields. The restart regime (populate →
# CloseSpill → reopen the same spill dir under an empty memory tier) must
# certify ≥90% of previously served keys answered without re-evaluation and
# byte-identically, re-derived by checkbench from the raw per-sample
# re-evaluation counters. checkbench also holds thresholded regimes to ≥70%
# of the committed bench_history/ speedups.
BENCH_serve.json: FORCE
	$(GO) run ./cmd/benchserve > $@

# Perf certificate for the memory-aware batch engine: dedupe, raw body-front
# cache, size-adaptive kernels. Gated benchstat-style (≥5 paired samples,
# 95% CI low end vs threshold); few_large must certify ≥3× over the PR 3
# across-profile-only baseline.
BENCH_batch.json: FORCE
	$(GO) run ./cmd/benchbatch > $@

FORCE:

lint:
	$(GO) vet ./...
	gofmt -l cmd internal examples bench_test.go | tee /dev/stderr | wc -l | grep -q '^0$$'

# check = lint + no stray generator artifacts + the benchmark certificates
# parse and meet their thresholds. Run `make bench` first (or on failure)
# to regenerate them. The *.json.new guard catches half-finished
# regenerations (a BENCH_*.json.new left behind by an interrupted
# write-then-rename) before they get committed.
check: lint
	@stray=$$(find . -path ./.git -prune -o -name '*.json.new' -print); \
	if [ -n "$$stray" ]; then \
		echo "make check: stray *.json.new artifacts (remove or finish the rename):" >&2; \
		echo "$$stray" >&2; \
		exit 1; \
	fi
	$(GO) run ./cmd/checkbench

# Chaos suite: the fault/replan/elastic property tests, repeated under the
# race detector to shake out both nondeterminism and data races. The fault
# package's own tests all exercise the fault machinery, so it runs whole;
# the churn sweep drives the full elastic-churn study (both regimes, all
# four policies) end to end through the CLI; the benchserve -fleet-chaos
# drill kills one replica of a live peer-cache fleet mid-run and requires
# every request to survive byte-identically through hedges and local
# fallback; the -spill-chaos drill bit-flips every on-disk spill segment
# under a warm tier and requires byte-identical fallback to evaluation
# (CRC pre-verification turns corruption into a miss, never a bad byte).
chaos:
	$(GO) test -race -count=3 ./internal/fault ./internal/cluster ./internal/spill
	$(GO) test -race -count=3 -run 'Chaos|Fault|Replan|Elastic|Redundant|Peer|Spill' ./internal/sim ./internal/api
	$(GO) run ./cmd/hetero churn -n 6 -L 1200 -seeds 5
	$(GO) run ./cmd/benchserve -fleet-chaos > /dev/null
	$(GO) run ./cmd/benchserve -spill-chaos > /dev/null

vet:
	$(GO) vet ./...

fmt:
	gofmt -w cmd internal examples bench_test.go

cover:
	$(GO) test -cover ./...

# Claim-by-claim replication certificate (non-zero exit on any failure).
replicate:
	$(GO) run ./cmd/hetero replicate

# Regenerate every paper table/figure into artifacts.txt.
artifacts:
	$(GO) run ./cmd/hetero all > artifacts.txt

clean:
	rm -f artifacts.txt test_output.txt bench_output.txt BENCH_incr.json BENCH_fault.json BENCH_serve.json BENCH_batch.json
