// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the extension studies called out in DESIGN.md.
// Each driver returns a structured result with a Render method producing
// the same rows/series the paper reports, so that CLI tools, tests, and
// benchmarks all regenerate the published artifacts from a single
// implementation.
//
// Drivers and their paper artifacts:
//
//	Table2              derived model constants (Table 2)
//	Table3              HECRs of the §2.5 sample clusters (Table 3)
//	Table4              additive-speedup work ratios (Table 4)
//	Fig1                single-computer action/time diagram (Figure 1)
//	Fig2                3-computer FIFO schedule (Figure 2)
//	Fig3, Fig4          iterated multiplicative speedups (Figures 3–4)
//	MeanCounterexample  §4's ⟨0.99,0.02⟩ vs ⟨0.5,0.5⟩ example
//	VariancePredictor   §4.3 equal-mean variance study
//	VarianceThreshold   §4.3 threshold search (θ = 0.167 in the paper)
//	BaselineComparison  FIFO vs equal/proportional splits (extension)
//	MomentPredictors    which profile moments rank clusters best (extension)
//	JitterRobustness    FIFO allocations under speed perturbation (extension)
//	SimAgreement        event-driven simulation vs Theorem 2 (validation)
package experiments
