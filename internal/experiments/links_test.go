package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestLinkOrderStudy(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(0.5, 0.4, 0.3, 0.2)
	taus := []float64{1e-6, 1e-3, 5e-3, 2e-2}
	r, err := LinkOrderStudy(m, p, taus, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows)+r.Infeasible != 24 {
		t.Fatalf("rows %d + infeasible %d != 24", len(r.Rows), r.Infeasible)
	}
	// The whole point: ordering matters with heterogeneous links.
	if r.Spread() <= 0 {
		t.Fatalf("spread = %v; orders should differ", r.Spread())
	}
	// Rows sorted best-first.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Work > r.Rows[i-1].Work {
			t.Fatal("rows not sorted by work")
		}
	}
	// Heuristics evaluated and bounded by the optimum.
	best := r.Rows[0].Work
	if r.FastLinkFirstWork > best+1e-9 || r.SlowLinkFirstWork > best+1e-9 {
		t.Fatal("a heuristic beat the enumerated optimum")
	}
	out := r.Render()
	for _, frag := range []string{"Startup orders", "order spread", "fast-links-first"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestLinkOrderStudyUniformLinksDegenerate(t *testing.T) {
	// With uniform links the study must rediscover Theorem 1.2: all orders
	// tie (spread ≈ 0).
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	taus := []float64{m.Tau, m.Tau, m.Tau}
	r, err := LinkOrderStudy(m, p, taus, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spread() > 1e-9 {
		t.Fatalf("uniform links show spread %v; Theorem 1.2 violated", r.Spread())
	}
}

func TestLinkOrderStudyValidation(t *testing.T) {
	m := model.Table1()
	if _, err := LinkOrderStudy(m, profile.Linear(9), make([]float64, 9), 100); err == nil {
		t.Fatal("n=9 accepted")
	}
	if _, err := LinkOrderStudy(m, profile.Linear(3), []float64{1e-6}, 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
