package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestProtocolStudyFIFOWins(t *testing.T) {
	m := model.Table1()
	r, err := ProtocolStudy(m, profile.MustNew(1, 0.6, 0.35, 0.2), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d, want 4! = 24", len(r.Rows))
	}
	best := r.Best()
	if !best.Feasible {
		t.Fatal("best order infeasible")
	}
	for i, idx := range best.Phi {
		if idx != i {
			t.Fatalf("best order %v is not FIFO", best.Phi)
		}
	}
	if best.LossVsFIFO != 0 {
		t.Fatalf("FIFO loss = %v", best.LossVsFIFO)
	}
	// Every other feasible order loses strictly.
	for _, row := range r.Rows[1:] {
		if row.Feasible && row.LossVsFIFO <= 0 {
			t.Fatalf("order %v does not lose to FIFO: %+v", row.Phi, row)
		}
	}
}

func TestProtocolStudyRender(t *testing.T) {
	m := model.Table1()
	r, err := ProtocolStudy(m, profile.MustNew(1, 0.9, 0.8), 500)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, frag := range []string{"finishing order", "loss vs FIFO", "0.0000%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestProtocolStudyRejectsLargeN(t *testing.T) {
	if _, err := ProtocolStudy(model.Table1(), profile.Linear(9), 100); err == nil {
		t.Fatal("n=9 accepted (would enumerate 362880 orders)")
	}
}

func TestForEachPermutationCountsFactorial(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24, 5: 120} {
		count := 0
		seen := map[string]bool{}
		forEachPermutation(n, func(p []int) {
			count++
			key := ""
			for _, v := range p {
				key += string(rune('a' + v))
			}
			seen[key] = true
		})
		if count != want || len(seen) != want {
			t.Fatalf("n=%d: %d calls, %d distinct, want %d", n, count, len(seen), want)
		}
	}
}
