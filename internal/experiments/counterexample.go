package experiments

import (
	"fmt"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

// MeanCounterexampleResult reproduces the §4 example showing that mean
// speed does not predict cluster power: ⟨0.99, 0.02⟩ beats ⟨0.5, 0.5⟩
// although its mean ρ is worse — while variance (Theorem 5(2)) calls it
// correctly.
type MeanCounterexampleResult struct {
	Params         model.Params
	Hetero, Homo   profile.Profile
	XHetero, XHomo float64
	HECRHetero     float64
	HECRHomo       float64
}

// MeanCounterexample evaluates the example under Table 1 parameters.
func MeanCounterexample() MeanCounterexampleResult {
	m := model.Table1()
	het := profile.MustNew(0.99, 0.02)
	hom := profile.MustNew(0.5, 0.5)
	return MeanCounterexampleResult{
		Params:     m,
		Hetero:     het,
		Homo:       hom,
		XHetero:    core.X(m, het),
		XHomo:      core.X(m, hom),
		HECRHetero: core.HECR(m, het),
		HECRHomo:   core.HECR(m, hom),
	}
}

// Render returns the comparison table.
func (r MeanCounterexampleResult) Render() string {
	t := render.NewTable("§4: mean speed is not a power predictor",
		"cluster", "mean ρ", "VAR", "X(P)", "HECR")
	for _, row := range []struct {
		p profile.Profile
		x float64
		h float64
	}{{r.Hetero, r.XHetero, r.HECRHetero}, {r.Homo, r.XHomo, r.HECRHomo}} {
		t.Add(row.p.String(),
			fmt.Sprintf("%.4f", row.p.Mean()),
			fmt.Sprintf("%.4f", row.p.Variance()),
			fmt.Sprintf("%.4f", row.x),
			fmt.Sprintf("%.4f", row.h))
	}
	verdict := "heterogeneous cluster wins despite the worse mean — variance, not mean, tracks power here"
	return t.String() + verdict + "\n"
}
