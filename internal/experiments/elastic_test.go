package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
)

func TestElasticChurn(t *testing.T) {
	m := model.Table1()
	r, err := ElasticChurn(m, 6, 2000, []int{0, 3}, 4, 0.15, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Two regimes × two intensities.
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Yields are fractions of the fault-free optimum; joins can push a
		// policy above 1 but never to absurd values, and never below 0.
		for _, y := range []float64{row.YieldRide, row.YieldReplan, row.YieldRep2, row.YieldCoded} {
			if y < 0 || y > 3 {
				t.Fatalf("yield out of range: %+v", row)
			}
		}
		// The greedy ride-vs-replan rule guarantees replan never salvages
		// less than ride on identical plans and draws.
		if row.YieldReplan < row.YieldRide-1e-9 {
			t.Fatalf("replan below ride: %+v", row)
		}
	}
	out := r.Render()
	for _, want := range []string{"useful-work yield under elastic churn", "random", "adversarial",
		"replicated-2@0.15", "coded-2of3@0.15", "coded>replan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestElasticChurnAdversarialFavorsRedundancy(t *testing.T) {
	// The adversarial regime is the one redundancy exists for: with
	// unpredicted jitter and targeted churn, the coded scheme out-yields
	// the replanner in the zero-extra-events cell (joins + jitter only).
	m := model.Table1()
	r, err := ElasticChurn(m, 8, 3600, []int{0}, 8, 0.15, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Regime != RegimeAdversarial {
			continue
		}
		if row.YieldCoded <= row.YieldReplan {
			t.Fatalf("coded %.3f did not beat replan %.3f in the adversarial regime", row.YieldCoded, row.YieldReplan)
		}
	}
}

func TestElasticChurnValidation(t *testing.T) {
	if _, err := ElasticChurn(model.Table1(), 6, 100, []int{1}, 0, 0.1, 0.1); err == nil {
		t.Fatal("seeds=0 accepted")
	}
	if _, err := ElasticChurn(model.Table1(), 1, 100, []int{1}, 3, 0.1, 0.1); err == nil {
		t.Fatal("n=1 accepted")
	}
}
