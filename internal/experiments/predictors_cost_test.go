package experiments

import (
	"math"
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestPredictorRace(t *testing.T) {
	m := model.Table1()
	r, err := PredictorRace(m, 8, 400, 400, 77)
	if err != nil {
		t.Fatal(err)
	}
	// General regime: total speed ≈ perfect, trained linear strong, raw
	// variance weak.
	if r.General.Accuracy["neg-total-speed"] < 0.99 {
		t.Fatalf("total-speed accuracy %.3f", r.General.Accuracy["neg-total-speed"])
	}
	if r.General.Accuracy["linear"] < 0.9 {
		t.Fatalf("trained accuracy %.3f", r.General.Accuracy["linear"])
	}
	if !(r.General.Accuracy["neg-variance"] < r.General.Accuracy["geo-mean"]) {
		t.Fatal("variance should trail geo-mean on general pairs")
	}
	// Equal-mean regime: variance climbs to the §4.3 ≈76% band.
	acc := r.EqualMean.Accuracy["neg-variance"]
	if acc < 0.55 || acc > 0.95 {
		t.Fatalf("equal-mean variance accuracy %.3f outside §4.3 band", acc)
	}
	// The rank-correlation lens must agree with the pairwise one: total
	// speed ranks essentially perfectly.
	if r.RankCorrelation["neg-total-speed"] < 0.999 {
		t.Fatalf("total-speed Spearman %v", r.RankCorrelation["neg-total-speed"])
	}
	out := r.Render()
	for _, frag := range []string{"general pairs", "§4.3 regime", "learned linear weights", "total-speed", "Spearman"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestCostEffectivenessPricingRegimes(t *testing.T) {
	// The abstract's cost-effectiveness question has a crisp answer in this
	// model: because CEP work at µs-scale communication tracks total speed
	// Σ1/ρ, maximizing work under the budget Σ(1/ρ)^α = B is an ℓ_α-ball
	// problem. For α > 1 (superlinear pricing) the symmetric — homogeneous
	// — cluster maximizes total speed per unit price; for α < 1 (bulk
	// discounts at the top bin) the corner — heterogeneous — shapes win.
	m := model.Table1()
	winner := func(alpha, budget float64) CostRow {
		cost := CostModel{Alpha: alpha}
		clusters, err := EqualBudgetClusters(cost, 8, budget)
		if err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		res, err := CostEffectiveness(m, cost, clusters)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		var best CostRow
		for _, row := range res.Rows {
			if math.Abs(row.Price-budget)/budget > 1e-6 {
				t.Fatalf("%s price %v, want %v", row.Name, row.Price, budget)
			}
			if row.WorkPerDollar > best.WorkPerDollar {
				best = row
			}
		}
		return best
	}
	if best := winner(1.5, 150); best.Name != "homogeneous" {
		t.Fatalf("α=1.5: winner %q, want homogeneous", best.Name)
	}
	if best := winner(0.7, 30); best.Name == "homogeneous" {
		t.Fatalf("α=0.7: homogeneous should lose to a heterogeneous shape")
	}
	cost := CostModel{Alpha: 0.7}
	clusters, err := EqualBudgetClusters(cost, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CostEffectiveness(m, cost, clusters)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "work per price unit") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCostLinearPricingFavorsNobody(t *testing.T) {
	// With α = 1 price equals total speed, and total speed ≈ work at these
	// parameter scales, so work-per-price is nearly shape-independent —
	// heterogeneity's cost advantage is a consequence of superlinear
	// pricing, not of the CEP itself.
	m := model.Table1()
	cost := CostModel{Alpha: 1}
	clusters, err := EqualBudgetClusters(cost, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CostEffectiveness(m, cost, clusters)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), 0.0
	for _, row := range res.Rows {
		if row.WorkPerDollar < lo {
			lo = row.WorkPerDollar
		}
		if row.WorkPerDollar > hi {
			hi = row.WorkPerDollar
		}
	}
	if (hi-lo)/hi > 0.01 {
		t.Fatalf("α=1 work-per-price spread %.3f%% should be <1%%", 100*(hi-lo)/hi)
	}
}

func TestCostValidation(t *testing.T) {
	if _, err := CostEffectiveness(model.Table1(), CostModel{Alpha: 0}, nil); err == nil {
		t.Fatal("α=0 accepted")
	}
	if _, err := EqualBudgetClusters(CostModel{Alpha: 1}, 1, 10); err == nil {
		t.Fatal("n=1 accepted")
	}
	// A budget so small every machine would need ρ > 1.
	if _, err := EqualBudgetClusters(CostModel{Alpha: 1}, 8, 1e-9); err == nil {
		t.Fatal("unreachable budget accepted")
	}
}

func TestCostPriceMonotoneInSpeed(t *testing.T) {
	cost := CostModel{Alpha: 2}
	slow := profile.MustNew(1, 1)
	fast := profile.MustNew(0.5, 0.5)
	if !(cost.Price(fast) > cost.Price(slow)) {
		t.Fatal("faster cluster should cost more")
	}
}
