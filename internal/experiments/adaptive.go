package experiments

import (
	"fmt"

	"hetero/internal/adaptive"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/stats"
)

// AdaptiveSweepRow is one (α, jitter) cell of the adaptive study.
type AdaptiveSweepRow struct {
	Alpha  float64
	Jitter float64
	// LateEfficiency averages oracle-relative efficiency over the second
	// half of the rounds (after the estimator has had time to learn).
	LateEfficiency float64
	// LateError averages the mean estimation error over the same window.
	LateError float64
}

// AdaptiveSweepResult sweeps the smoothing factor against the speed
// fluctuation level: the online-estimation tradeoff surface for the
// adaptive worksharing loop.
type AdaptiveSweepResult struct {
	Params  model.Params
	Profile profile.Profile
	Rounds  int
	Rows    []AdaptiveSweepRow
}

// AdaptiveSweep runs the loop for every (alpha, jitter) combination.
func AdaptiveSweep(m model.Params, p profile.Profile, rounds int, alphas, jitters []float64, seed uint64) (AdaptiveSweepResult, error) {
	if len(alphas) == 0 || len(jitters) == 0 {
		return AdaptiveSweepResult{}, fmt.Errorf("experiments: empty α or jitter sweep")
	}
	if rounds < 4 {
		return AdaptiveSweepResult{}, fmt.Errorf("experiments: need ≥4 rounds for a late window, got %d", rounds)
	}
	res := AdaptiveSweepResult{Params: m, Profile: p, Rounds: rounds}
	for _, jitter := range jitters {
		for _, alpha := range alphas {
			run, err := adaptive.Run(adaptive.Config{
				Params: m, True: p, Rounds: rounds, RoundLifespan: 500,
				Alpha: alpha, Jitter: jitter, Seed: seed,
			})
			if err != nil {
				return res, fmt.Errorf("experiments: α=%v jitter=%v: %w", alpha, jitter, err)
			}
			var eff, errs stats.KahanSum
			late := run.Rounds[rounds/2:]
			for _, r := range late {
				eff.Add(r.Efficiency)
				errs.Add(r.MeanRelErr)
			}
			res.Rows = append(res.Rows, AdaptiveSweepRow{
				Alpha:          alpha,
				Jitter:         jitter,
				LateEfficiency: eff.Sum() / float64(len(late)),
				LateError:      errs.Sum() / float64(len(late)),
			})
		}
	}
	return res, nil
}

// Table returns the sweep as a render table.
func (r AdaptiveSweepResult) Table() *render.Table {
	t := render.NewTable(
		fmt.Sprintf("Adaptive worksharing tradeoff surface (n = %d, %d rounds)", len(r.Profile), r.Rounds),
		"jitter ±", "α", "late efficiency", "late est. error")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%.0f%%", 100*row.Jitter),
			fmt.Sprintf("%.2f", row.Alpha),
			fmt.Sprintf("%.4f", row.LateEfficiency),
			fmt.Sprintf("%.4f", row.LateError))
	}
	return t
}

// Render returns the sweep as text.
func (r AdaptiveSweepResult) Render() string { return r.Table().String() }
