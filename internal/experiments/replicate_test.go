package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestReplicateCertificate(t *testing.T) {
	cfg := DefaultReplicationConfig()
	cfg.VarianceTrials = 200
	rep, err := Replicate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("certificate has failures:\n%s", rep.Render())
	}
	if rep.Passed < 10 {
		t.Fatalf("only %d checks passed; certificate too thin:\n%s", rep.Passed, rep.Render())
	}
	// The Table 4 numeric comparison is the one documented deviation.
	if rep.Deviations != 1 {
		t.Fatalf("deviations = %d, want exactly 1 (table4-values):\n%s", rep.Deviations, rep.Render())
	}
	var t4 *Check
	for i := range rep.Checks {
		if rep.Checks[i].ID == "table4-values" {
			t4 = &rep.Checks[i]
		}
	}
	if t4 == nil || t4.Status != StatusDeviation || t4.Note == "" {
		t.Fatalf("table4-values check malformed: %+v", t4)
	}
}

func TestReplicateJSON(t *testing.T) {
	cfg := DefaultReplicationConfig()
	cfg.VarianceTrials = 100
	rep, err := Replicate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded ReplicationReport
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("JSON roundtrip: %v", err)
	}
	if decoded.Paper == "" || len(decoded.Checks) != len(rep.Checks) {
		t.Fatalf("roundtrip lost content: %+v", decoded)
	}
}

func TestReplicateRender(t *testing.T) {
	cfg := DefaultReplicationConfig()
	cfg.VarianceTrials = 100
	rep, err := Replicate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, frag := range []string{"Replication certificate", "fig3-sequence", "passed", "note [table4-values]"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate(ReplicationConfig{VarianceTrials: 0}); err == nil {
		t.Fatal("zero trials accepted")
	}
}
