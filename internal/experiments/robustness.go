package experiments

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// JitterRow summarizes one jitter level of the robustness study.
type JitterRow struct {
	Jitter float64
	// MeanOverrun is the mean makespan/L across seeds: how late the last
	// results arrive when the world's speeds deviate from the profile the
	// allocations were computed for.
	MeanOverrun float64
	MaxOverrun  float64
	// MeanOnTimeFraction is the mean fraction of allocated work whose
	// results still arrive by L.
	MeanOnTimeFraction float64
}

// JitterResult is the extension study probing the optimal FIFO protocol's
// sensitivity to misestimated computer speeds — a question the paper's
// deterministic model abstracts away but any deployment faces.
type JitterResult struct {
	Params   model.Params
	Profile  profile.Profile
	Lifespan float64
	Seeds    int
	Rows     []JitterRow
}

// JitterRobustness simulates the nominal-optimal protocol against worlds
// whose speeds are perturbed by ±jitter, for each jitter level.
func JitterRobustness(m model.Params, p profile.Profile, lifespan float64, jitters []float64, seeds int) (JitterResult, error) {
	if seeds <= 0 {
		return JitterResult{}, fmt.Errorf("experiments: seeds = %d must be positive", seeds)
	}
	proto, err := sim.OptimalFIFO(m, p, lifespan)
	if err != nil {
		return JitterResult{}, err
	}
	var totalAlloc stats.KahanSum
	for _, w := range proto.Alloc {
		totalAlloc.Add(w)
	}
	res := JitterResult{Params: m, Profile: p, Lifespan: lifespan, Seeds: seeds}
	for _, j := range jitters {
		row := JitterRow{Jitter: j}
		var overruns, onTime stats.KahanSum
		for s := 0; s < seeds; s++ {
			r, err := sim.RunCEP(m, p, proto, sim.Options{RhoJitter: j, Seed: uint64(s) + 1})
			if err != nil {
				return res, err
			}
			overrun := r.Makespan / lifespan
			overruns.Add(overrun)
			if overrun > row.MaxOverrun {
				row.MaxOverrun = overrun
			}
			onTime.Add(r.CompletedBy(lifespan) / totalAlloc.Sum())
		}
		row.MeanOverrun = overruns.Sum() / float64(seeds)
		row.MeanOnTimeFraction = onTime.Sum() / float64(seeds)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render returns the per-jitter summary.
func (r JitterResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("FIFO robustness to speed misestimation (n = %d, L = %g, %d seeds)", len(r.Profile), r.Lifespan, r.Seeds),
		"jitter ±", "mean makespan/L", "max makespan/L", "work on time")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%.0f%%", 100*row.Jitter),
			fmt.Sprintf("%.4f", row.MeanOverrun),
			fmt.Sprintf("%.4f", row.MaxOverrun),
			fmt.Sprintf("%.1f%%", 100*row.MeanOnTimeFraction))
	}
	return t.String()
}
