package experiments

import (
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// SimAgreementRow records the relative deviation between the event-driven
// simulation and Theorem 2's closed form for one (n, L) cell.
type SimAgreementRow struct {
	N         int
	Lifespan  float64
	Analytic  float64
	Simulated float64
	RelError  float64
}

// SimAgreementResult validates Theorem 2 end to end: executing the optimal
// FIFO allocations on the discrete-event simulator must complete exactly
// W(L;P) = L/(τδ + 1/X(P)) work. In this model the formula is exact (not
// merely asymptotic), so the residuals are pure floating-point noise; the
// study documents that the two independently-built artifacts agree.
type SimAgreementResult struct {
	Params model.Params
	Rows   []SimAgreementRow
	MaxRel float64
}

// SimAgreement sweeps cluster sizes and lifespans.
func SimAgreement(m model.Params, sizes []int, lifespans []float64, seed uint64) (SimAgreementResult, error) {
	res := SimAgreementResult{Params: m}
	rng := stats.NewRNG(seed)
	for _, n := range sizes {
		p := profile.RandomNormalized(rng, n)
		for _, l := range lifespans {
			proto, err := sim.OptimalFIFO(m, p, l)
			if err != nil {
				return res, err
			}
			r, err := sim.RunCEP(m, p, proto, sim.Options{})
			if err != nil {
				return res, err
			}
			analytic := core.W(m, p, l)
			rel := math.Abs(r.Completed-analytic) / analytic
			res.Rows = append(res.Rows, SimAgreementRow{
				N: n, Lifespan: l, Analytic: analytic, Simulated: r.Completed, RelError: rel,
			})
			if rel > res.MaxRel {
				res.MaxRel = rel
			}
		}
	}
	return res, nil
}

// Render returns the agreement table.
func (r SimAgreementResult) Render() string {
	t := render.NewTable("Theorem 2 validation: event-driven simulation vs closed form",
		"n", "L", "W analytic", "W simulated", "rel. error")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%g", row.Lifespan),
			fmt.Sprintf("%.8g", row.Analytic),
			fmt.Sprintf("%.8g", row.Simulated),
			fmt.Sprintf("%.2e", row.RelError))
	}
	return t.String() + fmt.Sprintf("max relative error: %.2e (float64 noise)\n", r.MaxRel)
}
