package experiments

import (
	"math"
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestTable2Values(t *testing.T) {
	r := Table2()
	if math.Abs(r.A-11e-6) > 1e-12 {
		t.Fatalf("A = %v, want 11µs", r.A)
	}
	if math.Abs(r.BCoarse-1.00002) > 1e-9 {
		t.Fatalf("B coarse = %v", r.BCoarse)
	}
	// Fine tasks: 0.1 s per task, so B in seconds ≈ 0.1 + overhead.
	if r.BFine < 0.1 || r.BFine > 0.1001 {
		t.Fatalf("B fine = %v, want ≈0.10001 s", r.BFine)
	}
	out := r.Render()
	for _, frag := range []string{"Table 2", "A = π + τ", "coarse", "finer"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevRatio := 0.0
	for _, row := range r.Rows {
		// C1's HECR exceeds C2's at every size…
		if !(row.HECRC1 > row.HECRC2) {
			t.Fatalf("n=%d: HECR(C1)=%v not > HECR(C2)=%v", row.N, row.HECRC1, row.HECRC2)
		}
		// …and within 3% of the published values…
		if math.Abs(row.HECRC1-row.PaperC1)/row.PaperC1 > 0.03 {
			t.Fatalf("n=%d: C1 HECR %v vs paper %v", row.N, row.HECRC1, row.PaperC1)
		}
		if math.Abs(row.HECRC2-row.PaperC2)/row.PaperC2 > 0.03 {
			t.Fatalf("n=%d: C2 HECR %v vs paper %v", row.N, row.HECRC2, row.PaperC2)
		}
		// …and C2's advantage grows with cluster size (1.7 → 2.6 → 4+).
		if !(row.Ratio > prevRatio) {
			t.Fatalf("advantage ratio not growing: %v after %v", row.Ratio, prevRatio)
		}
		prevRatio = row.Ratio
	}
	if r.Rows[2].Ratio < 4 {
		t.Fatalf("n=32 ratio %v, paper says 'more than 4'", r.Rows[2].Ratio)
	}
	out := r.Render()
	if !strings.Contains(out, "paper C1") || !strings.Contains(out, "0.366") {
		t.Fatalf("render missing paper reference columns:\n%s", out)
	}
}

func TestTable3ForCustomSizes(t *testing.T) {
	r := Table3For(model.Table1(), []int{4})
	if len(r.Rows) != 1 || r.Rows[0].N != 4 {
		t.Fatalf("rows = %+v", r.Rows)
	}
	if r.Rows[0].PaperC1 != 0 {
		t.Fatal("paper reference attached to a non-paper size")
	}
	if !strings.Contains(r.Render(), "-") {
		t.Fatal("render should dash out missing paper values")
	}
}

func TestTable4ShapeAndTheorem3(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Ratios increase strictly toward the fastest computer, which wins.
	for i := 1; i < 4; i++ {
		if !(r.Rows[i].WorkRatio > r.Rows[i-1].WorkRatio) {
			t.Fatalf("ratios not increasing: %+v", r.Rows)
		}
	}
	if r.Best != 3 {
		t.Fatalf("best speedup = C%d, want C4", r.Best+1)
	}
	// Every ratio exceeds 1 (Proposition 2) and the winner clears 13%.
	if r.Rows[0].WorkRatio <= 1 || r.Rows[3].WorkRatio < 1.13 {
		t.Fatalf("ratio bounds: %+v", r.Rows)
	}
	out := r.Render()
	for _, frag := range []string{"Table 4", "paper", "1.159", "Theorem 3"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestTable4ForRejectsBadPhi(t *testing.T) {
	if _, err := Table4For(model.Table1(), profile.MustNew(1, 0.5), 0.5); err == nil {
		t.Fatal("φ ≥ ρ_fastest accepted")
	}
}
