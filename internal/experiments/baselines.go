package experiments

import (
	"fmt"
	"sort"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
)

// BaselineRow compares protocols on one cluster.
type BaselineRow struct {
	Name         string
	Profile      profile.Profile
	Optimal      float64 // work completed by L under the optimal FIFO protocol
	Equal        float64 // … under the equal-allocation baseline
	Proportional float64 // … under the speed-proportional baseline
}

// EqualPenalty returns the fraction of work lost by equal allocation.
func (r BaselineRow) EqualPenalty() float64 { return 1 - r.Equal/r.Optimal }

// ProportionalPenalty returns the fraction lost by proportional allocation.
func (r BaselineRow) ProportionalPenalty() float64 { return 1 - r.Proportional/r.Optimal }

// BaselineResult is the extension study comparing the optimal FIFO protocol
// against naive allocations, all executed on the event-driven simulator.
type BaselineResult struct {
	Params   model.Params
	Lifespan float64
	Rows     []BaselineRow
}

// BaselineComparison runs the named clusters through all three protocols.
func BaselineComparison(m model.Params, lifespan float64, clusters map[string]profile.Profile) (BaselineResult, error) {
	if !(lifespan > 0) {
		return BaselineResult{}, fmt.Errorf("experiments: lifespan %v must be positive", lifespan)
	}
	res := BaselineResult{Params: m, Lifespan: lifespan}
	// Deterministic iteration order: sorted names.
	names := make([]string, 0, len(clusters))
	for name := range clusters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := clusters[name]
		opt, err := sim.OptimalFIFO(m, p, lifespan)
		if err != nil {
			return res, fmt.Errorf("experiments: %s: %w", name, err)
		}
		optRes, err := sim.RunCEP(m, p, opt, sim.Options{})
		if err != nil {
			return res, fmt.Errorf("experiments: %s: %w", name, err)
		}
		_, eqRes, err := sim.EqualSplit(m, p, lifespan)
		if err != nil {
			return res, fmt.Errorf("experiments: %s: %w", name, err)
		}
		_, propRes, err := sim.ProportionalSplit(m, p, lifespan)
		if err != nil {
			return res, fmt.Errorf("experiments: %s: %w", name, err)
		}
		res.Rows = append(res.Rows, BaselineRow{
			Name:         name,
			Profile:      p,
			Optimal:      optRes.CompletedBy(lifespan),
			Equal:        eqRes.CompletedBy(lifespan),
			Proportional: propRes.CompletedBy(lifespan),
		})
	}
	return res, nil
}

// DefaultBaselineClusters returns the cluster menagerie used by the CLI:
// the paper's two §2.5 families plus geometric and near-homogeneous
// controls.
func DefaultBaselineClusters(n int) map[string]profile.Profile {
	return map[string]profile.Profile{
		"linear":    profile.Linear(n),
		"harmonic":  profile.Harmonic(n),
		"geometric": profile.Geometric(n, 0.7),
		"uniform":   profile.Homogeneous(n, 0.6),
	}
}

// Table returns the comparison as a render table (use .CSV() for
// machine-readable output).
func (r BaselineResult) Table() *render.Table {
	t := render.NewTable(
		fmt.Sprintf("Optimal FIFO vs naive allocations (simulated, L = %g)", r.Lifespan),
		"cluster", "n", "optimal work", "equal split", "prop. split", "equal loss", "prop. loss")
	for _, row := range r.Rows {
		t.Add(row.Name,
			fmt.Sprintf("%d", len(row.Profile)),
			fmt.Sprintf("%.6g", row.Optimal),
			fmt.Sprintf("%.6g", row.Equal),
			fmt.Sprintf("%.6g", row.Proportional),
			fmt.Sprintf("%.2f%%", 100*row.EqualPenalty()),
			fmt.Sprintf("%.3f%%", 100*row.ProportionalPenalty()))
	}
	return t
}

// Render returns the comparison table as text.
func (r BaselineResult) Render() string { return r.Table().String() }
