package experiments

import (
	"context"
	"fmt"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// ChurnRegime names the distribution elastic events are drawn from.
type ChurnRegime string

const (
	// RegimeRandom draws fault.RandomElastic's even mix (crashes, outages,
	// slowdowns, blackouts, joins) against seeded random clusters. Churn is
	// diffuse here, so reactive salvage keeps most of its capacity and the
	// 2× duplication of redundancy rarely pays.
	RegimeRandom ChurnRegime = "random"
	// RegimeAdversarial staggers severe targeted disruptions across a
	// homogeneous cluster — every salvage round gets wounded mid-flight
	// while each replica pair keeps one healthy member — and recruits a
	// small join cohort. This is the regime proactive redundancy exists
	// for; cmd/benchfault certifies a fixed instance of it.
	RegimeAdversarial ChurnRegime = "adversarial"
)

// ElasticRow summarizes one (regime, intensity) cell of the elastic study:
// total useful work per policy, summed over the seeded trials, normalized
// by the summed fault-free optimum of the base clusters.
type ElasticRow struct {
	Regime ChurnRegime
	// Events is the number of random elastic events (faults and joins)
	// injected per seeded trial.
	Events int
	// Yield* is Σ useful / Σ W(L;P) over the trials for each policy.
	YieldRide   float64
	YieldReplan float64
	YieldRep2   float64
	YieldCoded  float64
	// CodedWins counts trials where the coded scheme returned strictly
	// more useful work than the replanner.
	CodedWins int
}

// ElasticResult is the extension study pitting proactive redundancy
// against reactive salvage under elastic churn — machines crash, stall,
// and join mid-lifespan while realized speeds jitter around the profile
// the planner sees. Salvage policies replan on exact rollouts but still
// aim every round at the deadline, so an unpredicted straggler forfeits
// its whole allocation; redundancy pays a known duplication overhead and
// needs only the fastest replica (or any k of n shards) to land inside
// the deadline margin.
type ElasticResult struct {
	Params    model.Params
	N         int
	Lifespan  float64
	Seeds     int
	Jitter    float64
	Margin    float64
	Rows      []ElasticRow
	Redundant sim.Redundancy
	Coded     sim.Redundancy
}

// adversarialChurnPlan staggers count severe disruptions — ×5–9 slowdowns,
// crashes, and long outages, cycling — across distinct machines at spread
// instants in [0.1L, 0.8L], and recruits a two-machine join cohort early.
func adversarialChurnPlan(rng *stats.RNG, n int, lifespan float64, count int) fault.Plan {
	pl := fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Join, Computer: n, At: lifespan / 6, Rho: 0.5},
		{Kind: fault.Join, Computer: n + 1, At: lifespan / 6, Rho: 0.5},
	}}
	crashed := make(map[int]bool)
	outaged := make(map[int]bool)
	for k := 0; k < count; k++ {
		c := k % n
		at := (0.1 + 0.7*float64(k)/float64(count)) * lifespan
		kind := k % 3
		// A second crash or overlapping outage on one machine is invalid;
		// downgrade repeats to slowdowns, which stack freely.
		if (kind == 1 && crashed[c]) || (kind == 2 && outaged[c]) {
			kind = 0
		}
		switch kind {
		case 0:
			pl.Faults = append(pl.Faults, fault.Fault{
				Kind: fault.Slowdown, Computer: c, At: at, Factor: rng.InRange(5, 9),
			})
		case 1:
			crashed[c] = true
			pl.Faults = append(pl.Faults, fault.Fault{Kind: fault.Crash, Computer: c, At: at})
		default:
			outaged[c] = true
			pl.Faults = append(pl.Faults, fault.Fault{
				Kind: fault.Outage, Computer: c, At: at,
				Until: at + rng.InRange(0.3, 0.5)*lifespan,
			})
		}
	}
	return pl
}

// ElasticChurn sweeps churn intensities under both regimes: for each
// (regime, count) it draws seeded elastic plans against n-computer base
// clusters and runs all four policies on identical plans and identical
// jitter draws.
func ElasticChurn(m model.Params, n int, lifespan float64, counts []int, seeds int, jitter, margin float64) (ElasticResult, error) {
	if seeds <= 0 {
		return ElasticResult{}, fmt.Errorf("experiments: seeds = %d must be positive", seeds)
	}
	if n <= 1 {
		return ElasticResult{}, fmt.Errorf("experiments: n = %d must exceed 1 for redundancy", n)
	}
	res := ElasticResult{
		Params: m, N: n, Lifespan: lifespan, Seeds: seeds, Jitter: jitter, Margin: margin,
		Redundant: sim.Redundancy{Replicas: 2, Margin: margin},
		Coded:     sim.Redundancy{CodedK: 2, CodedN: 3, Margin: margin},
	}
	pols := []sim.ElasticPolicy{
		{},
		{Replan: true},
		{Redundancy: res.Redundant},
		{Redundancy: res.Coded},
	}
	uniform := make(profile.Profile, n)
	for i := range uniform {
		uniform[i] = 0.5
	}
	for _, regime := range []ChurnRegime{RegimeRandom, RegimeAdversarial} {
		for _, count := range counts {
			row := ElasticRow{Regime: regime, Events: count}
			var free stats.KahanSum
			var useful [4]stats.KahanSum
			for s := 0; s < seeds; s++ {
				rng := stats.NewRNG(uint64(count)*1000 + uint64(s) + 1)
				p := uniform
				var plan fault.Plan
				if regime == RegimeRandom {
					p = profile.RandomNormalized(rng, n)
					plan = fault.RandomElastic(rng, n, lifespan, count)
				} else {
					plan = adversarialChurnPlan(rng, n, lifespan, count)
				}
				opt := sim.Options{RhoJitter: jitter, Seed: uint64(count)*1000 + uint64(s) + 1}
				var trial [4]float64
				for pi, pol := range pols {
					rep, err := sim.SimulateElastic(context.Background(), m, p, lifespan, plan, pol, opt)
					if err != nil {
						return res, err
					}
					if pi == 0 {
						free.Add(rep.FaultFree)
					}
					useful[pi].Add(rep.Useful)
					trial[pi] = rep.Useful
				}
				if trial[3] > trial[1] {
					row.CodedWins++
				}
			}
			f := free.Sum()
			if f > 0 {
				row.YieldRide = useful[0].Sum() / f
				row.YieldReplan = useful[1].Sum() / f
				row.YieldRep2 = useful[2].Sum() / f
				row.YieldCoded = useful[3].Sum() / f
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render returns the per-cell summary.
func (r ElasticResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("useful-work yield under elastic churn (n = %d, L = %g, %d seeds, jitter %g, margin %g)",
			r.N, r.Lifespan, r.Seeds, r.Jitter, r.Margin),
		"regime", "events", "ride", "replan", r.Redundant.String(), r.Coded.String(), "coded>replan")
	for _, row := range r.Rows {
		t.Add(string(row.Regime),
			fmt.Sprintf("%d", row.Events),
			fmt.Sprintf("%.1f%%", 100*row.YieldRide),
			fmt.Sprintf("%.1f%%", 100*row.YieldReplan),
			fmt.Sprintf("%.1f%%", 100*row.YieldRep2),
			fmt.Sprintf("%.1f%%", 100*row.YieldCoded),
			fmt.Sprintf("%d/%d", row.CodedWins, r.Seeds))
	}
	return t.String()
}
