package experiments

import (
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

// GrowthRow is one cluster size of the HECR growth study.
type GrowthRow struct {
	N        int
	HECRLin  float64
	HECRHarm float64
	HECRGeo  float64
	Ratio    float64 // linear/harmonic, Table 3's advantage column
}

// GrowthResult extends Table 3's trend to large clusters: how the HECRs of
// the linear, harmonic, and geometric families scale with n, and where the
// harmonic family's advantage is headed. Table 3 stops at n = 32 with the
// advantage "more than 4"; this study shows it keeps compounding (the
// harmonic cluster's HECR behaves like the r-preimage of a geometric mean
// whose mass concentrates on ever-faster computers).
type GrowthResult struct {
	Params model.Params
	Rows   []GrowthRow
}

// HECRGrowth sweeps sizes (doubling) from 8 to maxN.
func HECRGrowth(m model.Params, maxN int) (GrowthResult, error) {
	if maxN < 8 {
		return GrowthResult{}, fmt.Errorf("experiments: maxN = %d must be at least 8", maxN)
	}
	res := GrowthResult{Params: m}
	for n := 8; n <= maxN; n *= 2 {
		row := GrowthRow{
			N:        n,
			HECRLin:  core.HECR(m, profile.Linear(n)),
			HECRHarm: core.HECR(m, profile.Harmonic(n)),
			HECRGeo:  core.HECR(m, profile.Geometric(n, 0.9)),
		}
		row.Ratio = row.HECRLin / row.HECRHarm
		if math.IsNaN(row.Ratio) || math.IsInf(row.Ratio, 0) {
			return res, fmt.Errorf("experiments: HECR ratio diverged at n = %d", n)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table returns the sweep as a render table.
func (r GrowthResult) Table() *render.Table {
	t := render.NewTable("HECR growth with cluster size (Table 3's trend, extended)",
		"n", "linear ⟨1-(i-1)/n⟩", "harmonic ⟨1/i⟩", "geometric (0.9)", "lin/harm advantage")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.4f", row.HECRLin),
			fmt.Sprintf("%.5f", row.HECRHarm),
			fmt.Sprintf("%.5f", row.HECRGeo),
			fmt.Sprintf("%.1f", row.Ratio))
	}
	return t
}

// Render lists the sweep as text.
func (r GrowthResult) Render() string { return r.Table().String() }
