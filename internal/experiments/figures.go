package experiments

import (
	"fmt"
	"strings"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/schedule"
)

// Fig1 renders the paper's Figure 1 — the action/time diagram of
// worksharing w units with a single remote computer of speed rho — as a
// labelled phase table.
func Fig1(m model.Params, rho, w float64) string {
	phases := schedule.SingleTimeline(m.Pi, m.Tau, m.Pi, m.Delta, rho, w)
	t := render.NewTable(
		fmt.Sprintf("Figure 1: worksharing %g units with one computer (ρ = %g)", w, rho),
		"phase", "duration")
	total := 0.0
	for _, ph := range phases {
		t.Add(ph.Label, fmt.Sprintf("%.6g", ph.Duration))
		total += ph.Duration
	}
	return t.String() + fmt.Sprintf("end-to-end: %.6g time units\n", total)
}

// Fig2 builds and renders the 3-computer FIFO schedule of Figure 2 as an
// ASCII Gantt chart.
func Fig2(m model.Params, p profile.Profile, lifespan float64, width int) (string, error) {
	s, err := schedule.BuildFIFO(m, p, lifespan)
	if err != nil {
		return "", err
	}
	if err := s.Verify(); err != nil {
		return "", fmt.Errorf("experiments: built schedule failed verification: %w", err)
	}
	return "Figure 2: FIFO worksharing protocol\n" + s.Gantt(width) + "\n" + s.Table(), nil
}

// FigSpeedupResult holds the iterated multiplicative speedup experiment
// behind Figures 3 and 4.
type FigSpeedupResult struct {
	Params model.Params
	Psi    float64
	Steps  []core.PlanStep
}

// Fig3 runs phase 1 of the experiment: 16 rounds from ⟨1,1,1,1⟩, during
// which condition (1) of Theorem 4 (with the tie-break rule) repeatedly
// selects the then-fastest computer, ending at ⟨1/16,1/16,1/16,1/16⟩.
func Fig3() (FigSpeedupResult, error) {
	m := model.Figs34()
	steps, err := core.GreedyMultiplicativePlan(m, profile.MustNew(1, 1, 1, 1), 0.5, 16)
	return FigSpeedupResult{Params: m, Psi: 0.5, Steps: steps}, err
}

// Fig4 runs phase 2: 4 further rounds from ⟨1/16,…⟩, during which
// condition (2) selects the then-slowest computer each time, ending at
// ⟨1/32,…⟩.
func Fig4() (FigSpeedupResult, error) {
	m := model.Figs34()
	start := profile.MustNew(1.0/16, 1.0/16, 1.0/16, 1.0/16)
	steps, err := core.GreedyMultiplicativePlan(m, start, 0.5, 4)
	return FigSpeedupResult{Params: m, Psi: 0.5, Steps: steps}, err
}

// Render draws each round's profile as a bar graph (bar height = ρ-value),
// mirroring the snapshots of Figures 3–4.
func (r FigSpeedupResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Iterated multiplicative speedup, ψ = %g, Aτδ/B² = %.4g\n",
		r.Psi, r.Params.Theorem4Threshold())
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "\nround %d: sped up C%d (X %.4g → %.4g)\n", s.Round, s.Index+1, s.XBefore, s.XAfter)
		labels := make([]string, len(s.After))
		for i := range s.After {
			labels[i] = fmt.Sprintf("C%d", i+1)
		}
		b.WriteString(render.Bars(labels, s.After, 48))
	}
	return b.String()
}

// SelectionSequence returns, for each round, which computer (1-based) was
// sped up — the compact fingerprint of Figures 3–4 used by tests and
// EXPERIMENTS.md.
func (r FigSpeedupResult) SelectionSequence() []int {
	seq := make([]int, len(r.Steps))
	for i, s := range r.Steps {
		seq[i] = s.Index + 1
	}
	return seq
}
