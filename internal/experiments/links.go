package experiments

import (
	"fmt"
	"sort"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/schedule"
)

// LinkOrderRow is one startup order's work production in the link study.
type LinkOrderRow struct {
	Order []int // positions into the original (computer, link) pairs
	Work  float64
	Err   error
}

// LinkOrderStudyResult explores startup orders for a link-heterogeneous
// cluster — the regime the paper's §1 motivates ("layered networks of
// varying speeds") but its uniform-τ model deliberately excludes. With
// per-computer links, Theorem 1.2 fails: the startup order changes work
// production, and choosing it becomes an optimization problem. The study
// enumerates all orders (n ≤ 8) and reports the spread plus how two natural
// heuristics fare.
type LinkOrderStudyResult struct {
	Params   model.Params
	Profile  profile.Profile
	Taus     []float64
	Lifespan float64
	Rows     []LinkOrderRow // feasible orders, best first
	// Infeasible counts orders the gap-free protocol cannot realize.
	Infeasible int
	// Heuristic work productions, for comparison with Rows[0].
	FastLinkFirstWork float64
	SlowLinkFirstWork float64
}

// LinkOrderStudy enumerates the startup orders of the (computer, link)
// pairs given by p and taus.
func LinkOrderStudy(m model.Params, p profile.Profile, taus []float64, lifespan float64) (LinkOrderStudyResult, error) {
	n := len(p)
	if n > 8 {
		return LinkOrderStudyResult{}, fmt.Errorf("experiments: link study enumerates n! orders; n = %d is too large (max 8)", n)
	}
	if len(taus) != n {
		return LinkOrderStudyResult{}, fmt.Errorf("experiments: %d link rates for %d computers", len(taus), n)
	}
	res := LinkOrderStudyResult{Params: m, Profile: p, Taus: taus, Lifespan: lifespan}

	evalOrder := func(order []int) (float64, error) {
		pp := make(profile.Profile, n)
		tt := make([]float64, n)
		for pos, idx := range order {
			pp[pos] = p[idx]
			tt[pos] = taus[idx]
		}
		return schedule.LinkWork(m, pp, tt, lifespan)
	}

	forEachPermutation(n, func(order []int) {
		w, err := evalOrder(order)
		if err != nil {
			res.Infeasible++
			return
		}
		res.Rows = append(res.Rows, LinkOrderRow{Order: append([]int(nil), order...), Work: w})
	})
	if len(res.Rows) == 0 {
		return res, fmt.Errorf("experiments: no feasible startup order for this cluster")
	}
	sort.SliceStable(res.Rows, func(i, j int) bool { return res.Rows[i].Work > res.Rows[j].Work })

	// Heuristics: serve fast links first vs slow links first.
	byLink := make([]int, n)
	for i := range byLink {
		byLink[i] = i
	}
	sort.SliceStable(byLink, func(a, b int) bool { return taus[byLink[a]] < taus[byLink[b]] })
	if w, err := evalOrder(byLink); err == nil {
		res.FastLinkFirstWork = w
	}
	reversed := make([]int, n)
	for i := range reversed {
		reversed[i] = byLink[n-1-i]
	}
	if w, err := evalOrder(reversed); err == nil {
		res.SlowLinkFirstWork = w
	}
	return res, nil
}

// Spread returns (best − worst)/best over feasible orders: how much startup
// ordering matters for this cluster.
func (r LinkOrderStudyResult) Spread() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	best := r.Rows[0].Work
	worst := r.Rows[len(r.Rows)-1].Work
	return (best - worst) / best
}

// Render shows the best and worst orders and the heuristics.
func (r LinkOrderStudyResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("Startup orders under heterogeneous links (n = %d, L = %g)", len(r.Profile), r.Lifespan),
		"startup order Σ", "work", "loss vs best")
	best := r.Rows[0].Work
	show := r.Rows
	const cap = 10
	truncated := 0
	if len(show) > cap {
		truncated = len(show) - cap
		show = show[:cap]
	}
	for _, row := range show {
		t.Add(fmt.Sprintf("%v", row.Order),
			fmt.Sprintf("%.6g", row.Work),
			fmt.Sprintf("%.4f%%", 100*(1-row.Work/best)))
	}
	out := t.String()
	if truncated > 0 {
		out += fmt.Sprintf("… %d further orders omitted\n", truncated)
	}
	out += fmt.Sprintf("order spread (best vs worst): %.4f%%\n", 100*r.Spread())
	out += fmt.Sprintf("fast-links-first heuristic: %.6g (%.4f%% off best)\n",
		r.FastLinkFirstWork, 100*(1-r.FastLinkFirstWork/best))
	out += fmt.Sprintf("slow-links-first heuristic: %.6g (%.4f%% off best)\n",
		r.SlowLinkFirstWork, 100*(1-r.SlowLinkFirstWork/best))
	return out
}
