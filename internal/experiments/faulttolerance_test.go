package experiments

import (
	"math"
	"strings"
	"testing"

	"hetero/internal/model"
)

func TestFaultTolerance(t *testing.T) {
	m := model.Table1()
	r, err := FaultTolerance(m, 4, 2000, []int{0, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Two regimes × two intensities.
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Zero faults: both modes reproduce the fault-free optimum exactly.
		if row.Faults == 0 {
			if math.Abs(row.MeanDegradationFixed) > 1e-9 || math.Abs(row.MeanDegradationReplan) > 1e-9 || row.ReplanWins != 0 {
				t.Fatalf("zero-fault row degraded: %+v", row)
			}
			continue
		}
		// Faults degrade, and the replanner's greedy ride-vs-replan rule
		// guarantees it never salvages less than the fixed protocol, so its
		// mean degradation cannot exceed fixed's.
		if !(row.MeanDegradationFixed > 0) {
			t.Fatalf("faults did not degrade: %+v", row)
		}
		if row.MeanDegradationReplan > row.MeanDegradationFixed+1e-9 {
			t.Fatalf("replan degraded more than fixed: %+v", row)
		}
	}
	out := r.Render()
	for _, want := range []string{"work degradation under injected faults", "mixed", "disruptive", "replan wins"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFaultToleranceValidation(t *testing.T) {
	if _, err := FaultTolerance(model.Table1(), 4, 100, []int{1}, 0); err == nil {
		t.Fatal("seeds=0 accepted")
	}
	if _, err := FaultTolerance(model.Table1(), 0, 100, []int{1}, 3); err == nil {
		t.Fatal("n=0 accepted")
	}
}
