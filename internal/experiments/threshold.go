package experiments

import (
	"fmt"
	"math"

	"hetero/internal/incr"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/stats"
)

// PaperTheta is the variance-gap threshold the paper reports as a
// (empirically) perfect predictor: θ = 0.167.
const PaperTheta = 0.167

// ThresholdSizeResult is one cluster size of the targeted threshold study.
type ThresholdSizeResult struct {
	N           int
	Trials      int
	WrongAbove  int     // mispredictions among pairs with var-gap ≥ θ
	MinGap      float64 // smallest gap actually generated (sanity: ≥ θ)
	MeanHECRGap float64
}

// ThresholdResult is the §4.3 threshold verification: pairs are *generated*
// with variance gaps at or above θ, then the variance prediction is checked
// against the HECR ground truth. The paper found zero errors at θ = 0.167
// for every n = 2^k, k ≤ 16.
type ThresholdResult struct {
	Config VarianceConfig
	Theta  float64
	Rows   []ThresholdSizeResult
}

// VarianceThreshold runs the targeted study at the given θ (use PaperTheta
// for the paper's value). Pairs are built from a high-variance two-point
// cluster and a low-variance cluster sharing its mean, so every trial's
// variance gap is ≥ θ by construction.
func VarianceThreshold(cfg VarianceConfig, theta float64) (ThresholdResult, error) {
	if !(theta > 0) || theta >= 0.25 {
		return ThresholdResult{}, fmt.Errorf("experiments: θ = %v outside (0, 0.25) (0.25 is the max variance on (0,1])", theta)
	}
	if cfg.TrialsPerSize <= 0 {
		return ThresholdResult{}, fmt.Errorf("experiments: TrialsPerSize = %d must be positive", cfg.TrialsPerSize)
	}
	res := ThresholdResult{Config: cfg, Theta: theta}
	// The low-variance partner is drawn with spread fraction ≤ 0.1, so its
	// variance is at most 0.1² = 0.01; the two-point cluster must overshoot
	// θ by that budget (plus slack) for the pair's gap to clear θ. For odd
	// n the two-point variance is d²·(n−1)/n, handled per size below.
	const partnerVarCap = 0.01
	targetVar := theta + partnerVarCap + 0.002
	if targetVar >= 0.24 {
		return res, fmt.Errorf("experiments: θ = %v leaves no two-point headroom (max variance on (0,1] is 0.25)", theta)
	}
	for _, n := range cfg.Sizes {
		if n < 2 {
			return res, fmt.Errorf("experiments: cluster size %d must be at least 2", n)
		}
		row := ThresholdSizeResult{N: n, MinGap: math.Inf(1)}
		var hecrGaps stats.KahanSum
		rng := stats.NewRNG(cfg.Seed ^ 0xabcd ^ uint64(n)<<20)
		// Two-point variance is d² for even n, d²·(n−1)/n for odd n.
		varScale := 1.0
		if n%2 == 1 {
			varScale = float64(n) / float64(n-1)
		}
		dmin := math.Sqrt(targetVar * varScale)
		lo := dmin + 0.011 // keep m−d above the generator's ρ floor
		hi := 1 - lo
		if lo >= hi {
			return res, fmt.Errorf("experiments: θ = %v leaves no admissible mean range at n = %d", theta, n)
		}
		// Stage 1: generate every pair sequentially (the per-size RNG stream
		// is shared across trials, so generation order is part of the
		// experiment's determinism)...
		profiles := make([]profile.Profile, 0, 2*cfg.TrialsPerSize)
		for t := 0; t < cfg.TrialsPerSize; t++ {
			m := rng.InRange(lo, hi)
			dmax := profile.MaxTwoPointOffset(m)
			if dmin >= dmax {
				return res, fmt.Errorf("experiments: cannot reach θ = %v at mean %v", theta, m)
			}
			big, err := profile.TwoPoint(n, m, rng.InRange(dmin, dmax))
			if err != nil {
				return res, err
			}
			// Low-variance partner: mean-preserving spread narrow enough to
			// keep the gap above θ.
			small, err := profile.SpreadAround(rng, n, m, 0.1*rng.Float64())
			if err != nil {
				return res, err
			}
			gap := big.Variance() - small.Variance()
			if gap < theta {
				// The narrow spread family tops out near var ≈ d²/300 here,
				// so this indicates a driver bug, not bad luck.
				return res, fmt.Errorf("experiments: generated gap %v below θ = %v", gap, theta)
			}
			if gap < row.MinGap {
				row.MinGap = gap
			}
			profiles = append(profiles, big, small)
		}
		// ...then stage 2: one batched HECR evaluation over all 2·trials
		// profiles, fanned out over the worker pool.
		hecrs := incr.BatchHECR(cfg.Params, profiles, cfg.Workers)
		for t := 0; t < cfg.TrialsPerSize; t++ {
			h1, h2 := hecrs[2*t], hecrs[2*t+1]
			hecrGaps.Add(math.Abs(h1 - h2))
			if !(h1 < h2) { // larger variance must be more powerful
				row.WrongAbove++
			}
			row.Trials++
		}
		row.MeanHECRGap = hecrGaps.Sum() / float64(row.Trials)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Perfect reports whether the threshold predicted every trial correctly.
func (r ThresholdResult) Perfect() bool {
	for _, row := range r.Rows {
		if row.WrongAbove > 0 {
			return false
		}
	}
	return true
}

// Render returns the per-size verification table.
func (r ThresholdResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("§4.3: variance-gap threshold θ = %.3f as a perfect predictor (%d trials/size)", r.Theta, r.Config.TrialsPerSize),
		"n", "trials with gap ≥ θ", "mispredictions", "min gap", "mean HECR gap")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%d", row.Trials),
			fmt.Sprintf("%d", row.WrongAbove),
			fmt.Sprintf("%.4f", row.MinGap),
			fmt.Sprintf("%.3e", row.MeanHECRGap))
	}
	verdict := "threshold holds: 100% correct above θ (matches the paper's Fact)"
	if !r.Perfect() {
		verdict = "threshold VIOLATED above θ — see rows"
	}
	return t.String() + verdict + "\n"
}
