package experiments

import (
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

// CostModel prices a cluster. The paper's abstract asks whether
// heterogeneity enhances cost effectiveness but never prices machines; we
// use the standard superlinear convention that a machine of speed s = 1/ρ
// costs s^Alpha — faster machines cost disproportionately more (Alpha > 1),
// which is how real price lists behave near the top bin.
type CostModel struct {
	// Alpha is the price-of-speed exponent (> 0; 1 = linear pricing).
	Alpha float64
}

// Price returns Σ (1/ρᵢ)^α.
func (c CostModel) Price(p profile.Profile) float64 {
	total := 0.0
	for _, rho := range p {
		total += math.Pow(1/rho, c.Alpha)
	}
	return total
}

// CostRow is one cluster of the cost-effectiveness study.
type CostRow struct {
	Name          string
	Profile       profile.Profile
	Price         float64
	WorkPerDay    float64
	WorkPerDollar float64
}

// CostResult answers the abstract's cost-effectiveness question for a set
// of candidate clusters under one pricing exponent: which shape of cluster
// buys the most CEP work per unit price?
//
// The study's finding (exercised by the tests): because CEP work at
// µs-scale communication tracks total speed Σ1/ρ, the equal-budget
// comparison is an ℓ_α-ball extremum problem — with superlinear pricing
// (α > 1) the homogeneous cluster is the most cost-effective, while with
// sublinear pricing (α < 1, bulk discounts at the top speed bin)
// heterogeneous shapes win. Heterogeneity enhances cost effectiveness
// exactly when speed is cheap at the high end.
type CostResult struct {
	Params model.Params
	Cost   CostModel
	Rows   []CostRow
}

// CostEffectiveness evaluates the named clusters.
func CostEffectiveness(m model.Params, cost CostModel, clusters []struct {
	Name    string
	Profile profile.Profile
}) (CostResult, error) {
	if !(cost.Alpha > 0) {
		return CostResult{}, fmt.Errorf("experiments: pricing exponent α = %v must be positive", cost.Alpha)
	}
	const day = 24 * 3600.0
	res := CostResult{Params: m, Cost: cost}
	for _, c := range clusters {
		price := cost.Price(c.Profile)
		work := core.W(m, c.Profile, day)
		res.Rows = append(res.Rows, CostRow{
			Name:          c.Name,
			Profile:       c.Profile,
			Price:         price,
			WorkPerDay:    work,
			WorkPerDollar: work / price,
		})
	}
	return res, nil
}

// EqualBudgetClusters builds a family of n-computer clusters that all cost
// (almost) exactly the same under the given pricing but differ in shape:
// homogeneous, mildly heterogeneous, and increasingly barbell-shaped. Each
// cluster is constructed by picking a shape and then solving (by bisection
// on a uniform speed scale) for the budget.
func EqualBudgetClusters(cost CostModel, n int, budget float64) ([]struct {
	Name    string
	Profile profile.Profile
}, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: need n ≥ 2, got %d", n)
	}
	shapes := []struct {
		Name string
		Rhos profile.Profile
	}{
		{"homogeneous", profile.Homogeneous(n, 0.5)},
		{"linear", profile.Linear(n)},
		{"harmonic", profile.Harmonic(n)},
		{"geometric", profile.Geometric(n, 0.7)},
	}
	var out []struct {
		Name    string
		Profile profile.Profile
	}
	for _, s := range shapes {
		scaled, err := scaleToBudget(cost, s.Rhos, budget)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		out = append(out, struct {
			Name    string
			Profile profile.Profile
		}{s.Name, scaled})
	}
	return out, nil
}

// scaleToBudget multiplies every ρ by a common factor c ≥ 1 (slowing the
// whole cluster down uniformly) or c ≤ 1 (speeding it up) so the cluster's
// price hits the budget, then clamps into (0, 1] by construction: scaling
// is chosen so the fastest machine stays within the valid range.
func scaleToBudget(cost CostModel, p profile.Profile, budget float64) (profile.Profile, error) {
	if !(budget > 0) {
		return nil, fmt.Errorf("budget %v must be positive", budget)
	}
	price := func(c float64) float64 {
		total := 0.0
		for _, rho := range p {
			total += math.Pow(1/(rho*c), cost.Alpha)
		}
		return total
	}
	// price(c) is strictly decreasing in c. Bracket and bisect.
	lo, hi := 1e-6, 1e6
	if price(lo) < budget || price(hi) > budget {
		return nil, fmt.Errorf("budget %v unreachable for this shape", budget)
	}
	for i := 0; i < 200 && hi-lo > 1e-14*hi; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection suits the power law
		if price(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	c := math.Sqrt(lo * hi)
	q := p.Clone()
	for i := range q {
		q[i] *= c
		if q[i] > 1 {
			return nil, fmt.Errorf("budget %v forces ρ > 1 (cluster too cheap for normalization)", budget)
		}
		if q[i] <= 0 {
			return nil, fmt.Errorf("scaling produced non-positive ρ")
		}
	}
	return q, nil
}

// Render lists the clusters by work per unit price.
func (r CostResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("Cost effectiveness under price(speed) = speed^%.2g", r.Cost.Alpha),
		"cluster", "n", "price", "W(1 day)", "work per price unit")
	for _, row := range r.Rows {
		t.Add(row.Name,
			fmt.Sprintf("%d", len(row.Profile)),
			fmt.Sprintf("%.4g", row.Price),
			fmt.Sprintf("%.4g", row.WorkPerDay),
			fmt.Sprintf("%.4g", row.WorkPerDollar))
	}
	return t.String()
}
