package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestHierarchyStudyTable1(t *testing.T) {
	m := model.Table1()
	r, err := HierarchyStudy(m, profile.Linear(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var flat, chain HierarchyRow
	for _, row := range r.Rows {
		if row.Name == "flat" {
			flat = row
		}
		if row.Name == "chain" {
			chain = row
		}
		// No organization beats flat under store-and-forward composition.
		if row.Loss < -1e-9 {
			t.Fatalf("%s beat flat: %+v", row.Name, row)
		}
	}
	if flat.Loss != 0 {
		t.Fatalf("flat loss = %v", flat.Loss)
	}
	if chain.Depth != 8 {
		t.Fatalf("chain depth = %d, want 8", chain.Depth)
	}
	// At µs communication the two-level losses are tiny, and the chain is
	// the worst organization.
	if chain.Loss < r.Rows[1].Loss {
		t.Fatalf("chain (%v) should lose at least as much as two-level (%v)", chain.Loss, r.Rows[1].Loss)
	}
	out := r.Render()
	for _, frag := range []string{"flat", "chain", "loss vs flat"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestHierarchyLossGrowsWithCommunicationCost(t *testing.T) {
	// Hierarchy is ~free at µs links and visibly costly at expensive links:
	// the study's headline.
	leaves := profile.Linear(8)
	lossAt := func(tau float64) float64 {
		m := model.Params{Tau: tau, Pi: 1e-5, Delta: 1}
		r, err := HierarchyStudy(m, leaves)
		if err != nil {
			t.Fatalf("τ=%v: %v", tau, err)
		}
		for _, row := range r.Rows {
			if row.Name == "two-level (halves)" {
				return row.Loss
			}
		}
		t.Fatal("row missing")
		return 0
	}
	cheap := lossAt(1e-6)
	pricey := lossAt(0.05)
	if !(pricey > cheap) {
		t.Fatalf("two-level loss did not grow with τ: %v vs %v", pricey, cheap)
	}
	if cheap > 1e-3 {
		t.Fatalf("µs-link two-level loss %v suspiciously large", cheap)
	}
}

func TestHierarchyStudyValidation(t *testing.T) {
	if _, err := HierarchyStudy(model.Table1(), profile.MustNew(1, 0.5)); err == nil {
		t.Fatal("n=2 accepted")
	}
}
