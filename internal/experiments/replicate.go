package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
)

// CheckStatus classifies one replication check.
type CheckStatus string

const (
	// StatusPass: the paper's claim reproduces within tolerance.
	StatusPass CheckStatus = "pass"
	// StatusDeviation: the qualitative claim reproduces but the published
	// numbers differ beyond tolerance; the Note documents the analysis.
	StatusDeviation CheckStatus = "deviation"
	// StatusFail: the claim did not reproduce. A failing certificate means
	// the implementation regressed (the shipped library passes all checks).
	StatusFail CheckStatus = "fail"
)

// Check is one claim-level verdict.
type Check struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Status      CheckStatus `json:"status"`
	Measured    string      `json:"measured"`
	Expected    string      `json:"expected"`
	Note        string      `json:"note,omitempty"`
}

// ReplicationReport is the full paper-replication certificate.
type ReplicationReport struct {
	Paper      string  `json:"paper"`
	Checks     []Check `json:"checks"`
	Passed     int     `json:"passed"`
	Deviations int     `json:"deviations"`
	Failed     int     `json:"failed"`
}

// ReplicationConfig sizes the randomized studies inside the certificate.
type ReplicationConfig struct {
	VarianceTrials int
	Seed           uint64
}

// DefaultReplicationConfig keeps the certificate under a few seconds.
func DefaultReplicationConfig() ReplicationConfig {
	return ReplicationConfig{VarianceTrials: 300, Seed: 20100419}
}

// Replicate runs every claim-level check against the paper's published
// values and returns the certificate.
func Replicate(cfg ReplicationConfig) (ReplicationReport, error) {
	if cfg.VarianceTrials <= 0 {
		return ReplicationReport{}, fmt.Errorf("experiments: VarianceTrials = %d must be positive", cfg.VarianceTrials)
	}
	m := model.Table1()
	rep := ReplicationReport{
		Paper: "Rosenberg & Chiang, Toward Understanding Heterogeneity in Computing, IPDPS 2010",
	}
	add := func(c Check) { rep.Checks = append(rep.Checks, c) }

	// --- Table 2: derived constants.
	add(checkClose("table2-A", "A = π + τ equals 11 µs", Table2().A, 11e-6, 1e-12))

	// --- Table 3: HECRs within 3% of published, advantage growing.
	t3 := Table3()
	worstRel := 0.0
	growing := true
	prevRatio := 0.0
	for _, row := range t3.Rows {
		for _, pair := range [][2]float64{{row.HECRC1, row.PaperC1}, {row.HECRC2, row.PaperC2}} {
			if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > worstRel {
				worstRel = rel
			}
		}
		if row.Ratio <= prevRatio {
			growing = false
		}
		prevRatio = row.Ratio
	}
	add(statusIf("table3-hecr", "HECRs match the published Table 3 within 3%",
		worstRel <= 0.03, fmt.Sprintf("worst deviation %.2f%%", 100*worstRel), "≤3%"))
	add(statusIf("table3-trend", "C2's advantage grows with cluster size (≈1.7 → 2.6 → >4)",
		growing && t3.Rows[2].Ratio > 4, fmt.Sprintf("ratios %.2f/%.2f/%.2f", t3.Rows[0].Ratio, t3.Rows[1].Ratio, t3.Rows[2].Ratio), "increasing, last >4"))

	// --- Table 4: Theorem 3 ordering; published middle entries deviate.
	t4, err := Table4()
	if err != nil {
		return rep, err
	}
	ordered := true
	for i := 1; i < len(t4.Rows); i++ {
		if t4.Rows[i].WorkRatio <= t4.Rows[i-1].WorkRatio {
			ordered = false
		}
	}
	advantage := (t4.Rows[3].WorkRatio - 1) / (t4.Rows[0].WorkRatio - 1)
	add(statusIf("table4-order", "speedup payoff increases toward the fastest computer; C4 wins",
		ordered && t4.Best == 3, fmt.Sprintf("ratios %.4f..%.4f, best C%d", t4.Rows[0].WorkRatio, t4.Rows[3].WorkRatio, t4.Best+1), "increasing, best C4"))
	add(statusIf("table4-advantage", "fastest/slowest payoff ratio ≈20× (paper: 15.9/0.8)",
		advantage > 15 && advantage < 25, fmt.Sprintf("%.1f×", advantage), "15–25×"))
	worstT4 := 0.0
	for _, row := range t4.Rows {
		if rel := math.Abs(row.WorkRatio-row.PaperRatio) / row.PaperRatio; rel > worstT4 {
			worstT4 = rel
		}
	}
	t4Exact := Check{
		ID:          "table4-values",
		Description: "published Table 4 work ratios reproduce numerically",
		Measured:    fmt.Sprintf("worst deviation %.1f%%", 100*worstT4),
		Expected:    "≤1%",
	}
	if worstT4 <= 0.01 {
		t4Exact.Status = StatusPass
	} else {
		t4Exact.Status = StatusDeviation
		t4Exact.Note = "three independent evaluations of the paper's expression (1) agree with each other but not with the published middle entries; see EXPERIMENTS.md"
	}
	add(t4Exact)

	// --- Figures 3 & 4: exact selection sequences.
	f3, err := Fig3()
	if err != nil {
		return rep, err
	}
	wantF3 := []int{4, 4, 4, 4, 3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1}
	add(statusIf("fig3-sequence", "phase 1 speeds the then-fastest computer in blocks of four",
		intsEqual(f3.SelectionSequence(), wantF3), fmt.Sprintf("%v", f3.SelectionSequence()), fmt.Sprintf("%v", wantF3)))
	f4, err := Fig4()
	if err != nil {
		return rep, err
	}
	wantF4 := []int{4, 3, 2, 1}
	add(statusIf("fig4-sequence", "phase 2 speeds the then-slowest computer each round",
		intsEqual(f4.SelectionSequence(), wantF4), fmt.Sprintf("%v", f4.SelectionSequence()), fmt.Sprintf("%v", wantF4)))

	// --- §4 counterexample.
	ce := MeanCounterexample()
	add(statusIf("s4-counterexample", "⟨0.99,0.02⟩ outperforms ⟨0.5,0.5⟩ despite the worse mean",
		ce.XHetero > ce.XHomo && ce.Hetero.Mean() > ce.Homo.Mean(),
		fmt.Sprintf("X %.2f vs %.2f", ce.XHetero, ce.XHomo), "heterogeneous X larger"))

	// --- §4.3 variance study: plateau and threshold.
	vcfg := VarianceConfig{Params: m, Sizes: []int{16, 64, 256}, TrialsPerSize: cfg.VarianceTrials, Seed: cfg.Seed}
	vres, err := VariancePredictor(vcfg)
	if err != nil {
		return rep, err
	}
	plateauOK := true
	var fractions []string
	for _, row := range vres.Rows {
		fractions = append(fractions, fmt.Sprintf("%.1f%%", 100*row.BadFraction))
		if row.BadFraction < 0.10 || row.BadFraction > 0.35 {
			plateauOK = false
		}
		if row.Bad == 0 || row.MeanHECRGapBad >= row.MeanHECRGapGood {
			plateauOK = false
		}
	}
	add(statusIf("s43-plateau", "bad-pair fraction plateaus near the paper's ≈23%, with small HECR gaps on bad pairs",
		plateauOK, strings.Join(fractions, ", "), "each in [10%,35%], bad-pair HECR gaps smaller"))
	tres, err := VarianceThreshold(vcfg, PaperTheta)
	if err != nil {
		return rep, err
	}
	add(statusIf("s43-threshold", "variance gaps ≥ θ = 0.167 predict the winner 100% of the time",
		tres.Perfect(), "0 mispredictions", "0 mispredictions"))

	// --- Foundation: FIFO optimal among all (Σ,Φ) orders for n = 4.
	ps, err := ProtocolStudy(m, profile.MustNew(1, 0.6, 0.35, 0.2), 1000)
	if err != nil {
		return rep, err
	}
	fifoBest := true
	for _, row := range ps.Rows {
		if row.Feasible && row.LossVsFIFO < 0 {
			fifoBest = false
		}
	}
	best := ps.Best()
	isIdentity := intsEqual(best.Phi, []int{0, 1, 2, 3})
	add(statusIf("agr-theorem1", "FIFO maximizes work among all 24 finishing orders ([1]'s Theorem 1)",
		fifoBest && isIdentity, fmt.Sprintf("best order %v", best.Phi), "[0 1 2 3]"))

	// --- Theorem 2: simulation equals the closed form.
	p := profile.Linear(8)
	proto, err := sim.OptimalFIFO(m, p, 3600)
	if err != nil {
		return rep, err
	}
	run, err := sim.RunCEP(m, p, proto, sim.Options{})
	if err != nil {
		return rep, err
	}
	rel := math.Abs(run.Completed-core.W(m, p, 3600)) / core.W(m, p, 3600)
	add(statusIf("theorem2-sim", "event-driven simulation reproduces W(L;P) to float precision",
		rel < 1e-9, fmt.Sprintf("rel. error %.1e", rel), "<1e-9"))

	for _, c := range rep.Checks {
		switch c.Status {
		case StatusPass:
			rep.Passed++
		case StatusDeviation:
			rep.Deviations++
		default:
			rep.Failed++
		}
	}
	return rep, nil
}

// JSON serializes the certificate.
func (r ReplicationReport) JSON() (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	return string(data), err
}

// Render returns the human-readable certificate.
func (r ReplicationReport) Render() string {
	t := render.NewTable(fmt.Sprintf("Replication certificate — %s", r.Paper),
		"check", "status", "measured", "expected")
	for _, c := range r.Checks {
		t.Add(c.ID, string(c.Status), c.Measured, c.Expected)
	}
	out := t.String()
	out += fmt.Sprintf("%d passed, %d documented deviations, %d failed\n", r.Passed, r.Deviations, r.Failed)
	for _, c := range r.Checks {
		if c.Note != "" {
			out += fmt.Sprintf("note [%s]: %s\n", c.ID, c.Note)
		}
	}
	return out
}

func checkClose(id, desc string, got, want, tol float64) Check {
	c := Check{ID: id, Description: desc,
		Measured: fmt.Sprintf("%g", got), Expected: fmt.Sprintf("%g", want)}
	if math.Abs(got-want) <= tol {
		c.Status = StatusPass
	} else {
		c.Status = StatusFail
	}
	return c
}

func statusIf(id, desc string, ok bool, measured, expected string) Check {
	c := Check{ID: id, Description: desc, Measured: measured, Expected: expected}
	if ok {
		c.Status = StatusPass
	} else {
		c.Status = StatusFail
	}
	return c
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
