package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestBaselineComparison(t *testing.T) {
	m := model.Table1()
	r, err := BaselineComparison(m, 2000, DefaultBaselineClusters(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Optimal+1e-9 < row.Equal || row.Optimal+1e-9 < row.Proportional {
			t.Fatalf("%s: a baseline beat the optimal protocol: %+v", row.Name, row)
		}
	}
	// Equal split loses badly on the harmonic cluster (8x speed spread)
	// and essentially nothing on the homogeneous control.
	var harmonic, uniform BaselineRow
	for _, row := range r.Rows {
		switch row.Name {
		case "harmonic":
			harmonic = row
		case "uniform":
			uniform = row
		}
	}
	if harmonic.EqualPenalty() < 0.1 {
		t.Fatalf("harmonic equal-split penalty %v suspiciously small", harmonic.EqualPenalty())
	}
	if uniform.EqualPenalty() > 0.001 {
		t.Fatalf("uniform equal-split penalty %v should be ~0", uniform.EqualPenalty())
	}
	if !(harmonic.EqualPenalty() > harmonic.ProportionalPenalty()) {
		t.Fatal("proportional split should beat equal split on a heterogeneous cluster")
	}
	out := r.Render()
	for _, frag := range []string{"harmonic", "equal loss", "prop. loss"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestBaselineComparisonValidation(t *testing.T) {
	if _, err := BaselineComparison(model.Table1(), 0, DefaultBaselineClusters(4)); err == nil {
		t.Fatal("L=0 accepted")
	}
}

func TestMomentPredictors(t *testing.T) {
	r, err := MomentPredictors(model.Table1(), 6, 400, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracy) != len(momentPredictors) {
		t.Fatalf("predictors = %d", len(r.Accuracy))
	}
	// The geometric mean is the closest single-moment proxy for X at these
	// parameter scales (X is driven by the geometric mean of the r(ρᵢ));
	// it must beat the arithmetic mean, and total speed must do well too.
	if !(r.Accuracy["geo-mean"] > r.Accuracy["arith-mean"]) {
		t.Fatalf("geo-mean %.3f not above arith-mean %.3f", r.Accuracy["geo-mean"], r.Accuracy["arith-mean"])
	}
	if r.Accuracy["geo-mean"] < 0.9 {
		t.Fatalf("geo-mean accuracy %.3f implausibly low", r.Accuracy["geo-mean"])
	}
	// Variance alone (without the equal-mean conditioning of §4.3) is a
	// weak predictor on general pairs.
	if r.Accuracy["neg-variance"] > r.Accuracy["geo-mean"] {
		t.Fatal("variance should not beat geo-mean on general pairs")
	}
	out := r.Render()
	if !strings.Contains(out, "geo-mean") || !strings.Contains(out, "%") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestMomentPredictorsValidation(t *testing.T) {
	if _, err := MomentPredictors(model.Table1(), 1, 10, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := MomentPredictors(model.Table1(), 4, 0, 1); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestJitterRobustness(t *testing.T) {
	m := model.Table1()
	r, err := JitterRobustness(m, profile.Linear(6), 1000, []float64{0, 0.05, 0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Zero jitter: exact completion, everything on time.
	if r.Rows[0].MaxOverrun > 1+1e-9 || r.Rows[0].MeanOnTimeFraction < 1-1e-9 {
		t.Fatalf("zero-jitter row: %+v", r.Rows[0])
	}
	// More jitter ⇒ (weakly) worse worst-case overrun and on-time fraction.
	if r.Rows[2].MaxOverrun < r.Rows[1].MaxOverrun-1e-12 {
		t.Fatalf("max overrun shrank with jitter: %+v", r.Rows)
	}
	if r.Rows[2].MeanOnTimeFraction > r.Rows[1].MeanOnTimeFraction+1e-12 {
		t.Fatalf("on-time fraction grew with jitter: %+v", r.Rows)
	}
	out := r.Render()
	if !strings.Contains(out, "makespan/L") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestJitterRobustnessValidation(t *testing.T) {
	if _, err := JitterRobustness(model.Table1(), profile.Linear(4), 100, []float64{0.1}, 0); err == nil {
		t.Fatal("seeds=0 accepted")
	}
}

func TestSimAgreement(t *testing.T) {
	r, err := SimAgreement(model.Table1(), []int{1, 4, 16}, []float64{100, 10000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.MaxRel > 1e-9 {
		t.Fatalf("simulation deviates from Theorem 2 by %v", r.MaxRel)
	}
	out := r.Render()
	if !strings.Contains(out, "Theorem 2") || !strings.Contains(out, "max relative error") {
		t.Fatalf("render:\n%s", out)
	}
}
