package experiments

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
)

// InstallmentRow is one (τ, k) cell of the multi-installment study.
type InstallmentRow struct {
	Tau  float64
	K    int
	Work float64
	// GainVsSingle is Work/Work(k=1) − 1 at the same τ.
	GainVsSingle float64
}

// InstallmentResult is the multi-installment extension study: splitting
// each computer's package into k rounds removes ramp-up idle. The paper's
// single-round protocol is optimal in its asymptotic regime; this study
// shows where multiple installments start paying — exactly when
// communication stops being negligible.
type InstallmentResult struct {
	Params   model.Params // base params; Tau varies per row
	Profile  profile.Profile
	Lifespan float64
	Rows     []InstallmentRow
}

// InstallmentStudy sweeps link costs × installment counts.
func InstallmentStudy(m model.Params, p profile.Profile, lifespan float64, taus []float64, ks []int) (InstallmentResult, error) {
	if len(taus) == 0 || len(ks) == 0 {
		return InstallmentResult{}, fmt.Errorf("experiments: empty τ or k sweep")
	}
	res := InstallmentResult{Params: m, Profile: p, Lifespan: lifespan}
	for _, tau := range taus {
		env := m
		env.Tau = tau
		if err := env.Validate(); err != nil {
			return res, fmt.Errorf("experiments: τ=%v: %w", tau, err)
		}
		var single float64
		for _, k := range ks {
			_, run, err := sim.MultiInstallment(env, p, lifespan, k)
			if err != nil {
				return res, fmt.Errorf("experiments: τ=%v k=%d: %w", tau, k, err)
			}
			row := InstallmentRow{Tau: tau, K: k, Work: run.CompletedBy(lifespan)}
			if k == 1 {
				single = row.Work
			}
			if single > 0 {
				row.GainVsSingle = row.Work/single - 1
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table returns the sweep as a render table.
func (r InstallmentResult) Table() *render.Table {
	t := render.NewTable(
		fmt.Sprintf("Multi-installment worksharing on %v (L = %g)", r.Profile, r.Lifespan),
		"τ", "installments k", "work by L", "gain vs single round")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%g", row.Tau),
			fmt.Sprintf("%d", row.K),
			fmt.Sprintf("%.6g", row.Work),
			fmt.Sprintf("%+.3f%%", 100*row.GainVsSingle))
	}
	return t
}

// Render returns the sweep table as text.
func (r InstallmentResult) Render() string { return r.Table().String() }
