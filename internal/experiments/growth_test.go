package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
)

func TestHECRGrowth(t *testing.T) {
	r, err := HECRGrowth(model.Table1(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 8,16,…,1024
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		// All HECRs decrease with n (more computers = more power)…
		if !(cur.HECRLin < prev.HECRLin && cur.HECRHarm < prev.HECRHarm) {
			t.Fatalf("HECRs not decreasing at n=%d: %+v vs %+v", cur.N, cur, prev)
		}
		// …and the harmonic family's advantage keeps compounding, which is
		// the trend Table 3 shows for 8→16→32.
		if !(cur.Ratio > prev.Ratio) {
			t.Fatalf("advantage not growing at n=%d: %v after %v", cur.N, cur.Ratio, prev.Ratio)
		}
	}
	// Table 3 anchors: the first rows must match the paper's values.
	if r.Rows[0].Ratio < 1.6 || r.Rows[0].Ratio > 1.8 {
		t.Fatalf("n=8 advantage %v outside paper's ≈1.7", r.Rows[0].Ratio)
	}
	out := r.Render()
	if !strings.Contains(out, "advantage") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestHECRGrowthValidation(t *testing.T) {
	if _, err := HECRGrowth(model.Table1(), 4); err == nil {
		t.Fatal("maxN=4 accepted")
	}
}
