package experiments

import (
	"fmt"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

// Table2Result reproduces Table 2: the derived per-work-unit constants for
// the Table 1 environment at coarse (1 s/task) and fine (0.1 s/task)
// normalizations.
type Table2Result struct {
	A            float64 // π + τ, in seconds per work unit
	TauDelta     float64
	BCoarse      float64 // B with 1 s/task work units
	BFine        float64 // B with 0.1 s/task work units, in seconds
	ParamsCoarse model.Params
	ParamsFine   model.Params
}

// Table2 computes the Table 2 quantities.
func Table2() Table2Result {
	coarse := model.Table1()
	fine := model.Table1Fine()
	return Table2Result{
		A:            coarse.A(),
		TauDelta:     coarse.TauDelta(),
		BCoarse:      coarse.B(),
		BFine:        fine.B() * 0.1, // back to seconds: 0.1 s/task × B(work-unit)
		ParamsCoarse: coarse,
		ParamsFine:   fine,
	}
}

// Render returns the table in the paper's layout.
func (r Table2Result) Render() string {
	t := render.NewTable("Table 2: derived environment constants (Table 1 values)",
		"quantity", "wall-clock time/rate")
	t.Add("A = π + τ", fmt.Sprintf("%.6g sec per work unit", r.A))
	t.Add("τδ", fmt.Sprintf("%.6g sec per work unit", r.TauDelta))
	t.Add("B with coarse (1 sec/task) tasks", fmt.Sprintf("%.6f sec per work unit", r.BCoarse))
	t.Add("B with finer (0.1 sec/task) tasks", fmt.Sprintf("%.6f sec per work unit", r.BFine))
	return t.String()
}

// Table3Row is one cluster-size column of Table 3.
type Table3Row struct {
	N       int
	HECRC1  float64 // linear profile ⟨1-(i-1)/n⟩
	HECRC2  float64 // harmonic profile ⟨1/i⟩
	Ratio   float64 // HECR(C1)/HECR(C2): C2's work advantage
	PaperC1 float64 // published values, for side-by-side comparison
	PaperC2 float64
}

// Table3Result reproduces Table 3: HECRs for the §2.5 sample clusters.
type Table3Result struct {
	Params model.Params
	Rows   []Table3Row
}

// Table3 computes HECRs for the paper's cluster sizes 8, 16, 32.
func Table3() Table3Result {
	return Table3For(model.Table1(), []int{8, 16, 32})
}

// Table3For computes the Table 3 sweep for arbitrary parameters and sizes.
// Published reference values are attached for the paper's original sizes.
func Table3For(m model.Params, sizes []int) Table3Result {
	paper := map[int][2]float64{8: {0.366, 0.216}, 16: {0.298, 0.116}, 32: {0.251, 0.060}}
	res := Table3Result{Params: m}
	for _, n := range sizes {
		row := Table3Row{
			N:      n,
			HECRC1: core.HECR(m, profile.Linear(n)),
			HECRC2: core.HECR(m, profile.Harmonic(n)),
		}
		row.Ratio = row.HECRC1 / row.HECRC2
		if p, ok := paper[n]; ok {
			row.PaperC1, row.PaperC2 = p[0], p[1]
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render returns the table with measured and published values side by side.
func (r Table3Result) Render() string {
	t := render.NewTable("Table 3: HECRs for sample heterogeneous clusters",
		"n", "HECR C1 ⟨1-(i-1)/n⟩", "HECR C2 ⟨1/i⟩", "C1/C2", "paper C1", "paper C2")
	for _, row := range r.Rows {
		paperC1, paperC2 := "-", "-"
		if row.PaperC1 != 0 {
			paperC1 = fmt.Sprintf("%.3f", row.PaperC1)
			paperC2 = fmt.Sprintf("%.3f", row.PaperC2)
		}
		t.Add(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.3f", row.HECRC1),
			fmt.Sprintf("%.3f", row.HECRC2),
			fmt.Sprintf("%.2f", row.Ratio),
			paperC1, paperC2)
	}
	return t.String()
}

// Table4Row is one speedup candidate of Table 4.
type Table4Row struct {
	Computer   int // 1-based power index (C1 slowest)
	Profile    profile.Profile
	WorkRatio  float64
	PaperRatio float64
}

// Table4Result reproduces Table 4: work ratios from speeding each computer
// of ⟨1, 1/2, 1/3, 1/4⟩ up by the additive term φ = 1/16.
type Table4Result struct {
	Params model.Params
	Base   profile.Profile
	Phi    float64
	Rows   []Table4Row
	// Best is the 0-based index of the winning speedup; Theorem 3 says it
	// is always the fastest computer.
	Best int
}

// Table4 computes the Table 4 experiment.
func Table4() (Table4Result, error) {
	return Table4For(model.Table1(), profile.MustNew(1, 0.5, 1.0/3, 0.25), 1.0/16)
}

// Table4For runs the additive-speedup comparison for any base profile and
// term.
func Table4For(m model.Params, base profile.Profile, phi float64) (Table4Result, error) {
	paper := map[int]float64{1: 1.008, 2: 1.014, 3: 1.034, 4: 1.159}
	res := Table4Result{Params: m, Base: base, Phi: phi}
	choice, err := core.BestAdditive(m, base, phi)
	if err != nil {
		return res, err
	}
	res.Best = choice.Index
	for i := range base {
		sped, err := base.SpeedUpAdditive(i, phi)
		if err != nil {
			return res, err
		}
		row := Table4Row{
			Computer:  i + 1,
			Profile:   sped,
			WorkRatio: core.WorkRatio(m, sped, base),
		}
		if len(base) == 4 {
			row.PaperRatio = paper[i+1]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render returns the table with measured and published ratios side by side.
func (r Table4Result) Render() string {
	t := render.NewTable(
		fmt.Sprintf("Table 4: additive speedup of %v by φ = %.4g", r.Base, r.Phi),
		"i", "profile P^(i)", "W(L;P^(i)) ÷ W(L;P)", "paper")
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperRatio != 0 {
			paper = fmt.Sprintf("%.3f", row.PaperRatio)
		}
		t.Add(fmt.Sprintf("%d", row.Computer), row.Profile.String(),
			fmt.Sprintf("%.4f", row.WorkRatio), paper)
	}
	return t.String() + fmt.Sprintf("best single speedup: C%d (Theorem 3: the fastest computer)\n", r.Best+1)
}
