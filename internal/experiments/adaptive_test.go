package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestAdaptiveSweep(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25, 0.125)
	r, err := AdaptiveSweep(m, p, 16, []float64{0.3, 1}, []float64{0, 0.15}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byKey := map[[2]float64]AdaptiveSweepRow{}
	for _, row := range r.Rows {
		byKey[[2]float64{row.Jitter, row.Alpha}] = row
	}
	// Noiseless: the eager estimator (α = 1) is exact after one round; the
	// damped one converges geometrically from the homogeneous prior, so it
	// is close but not exact within 16 rounds.
	eager := byKey[[2]float64{0, 1}]
	if eager.LateEfficiency < 1-1e-9 || eager.LateError > 1e-9 {
		t.Fatalf("noiseless α=1 row: %+v", eager)
	}
	damped := byKey[[2]float64{0, 0.3}]
	if damped.LateEfficiency < 0.85 || damped.LateError > 0.15 {
		t.Fatalf("noiseless α=0.3 row off the geometric-convergence track: %+v", damped)
	}
	if !(damped.LateError > eager.LateError) {
		t.Fatal("damped estimator cannot beat exact observations without noise")
	}
	// Under jitter the damped estimator completes more oracle-relative
	// work: chasing each round's fluctuation (α = 1) misallocates, while
	// smoothing toward the true means keeps the schedule near-optimal.
	if !(byKey[[2]float64{0.15, 0.3}].LateEfficiency > byKey[[2]float64{0.15, 1}].LateEfficiency) {
		t.Fatalf("smoothing did not improve efficiency under jitter: %+v", r.Rows)
	}
	out := r.Render()
	if !strings.Contains(out, "late efficiency") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAdaptiveSweepValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	if _, err := AdaptiveSweep(m, p, 16, nil, []float64{0}, 1); err == nil {
		t.Fatal("empty alphas accepted")
	}
	if _, err := AdaptiveSweep(m, p, 2, []float64{1}, []float64{0}, 1); err == nil {
		t.Fatal("too few rounds accepted")
	}
	if _, err := AdaptiveSweep(m, p, 16, []float64{2}, []float64{0}, 1); err == nil {
		t.Fatal("α=2 accepted")
	}
}
