package experiments

import (
	"fmt"

	"hetero/internal/hier"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

// HierarchyRow compares one organization of the same machines.
type HierarchyRow struct {
	Name  string
	Tree  *hier.Node
	Depth int
	X     float64
	Loss  float64 // vs flat
}

// HierarchyResult is the cluster-organization study: the same machines
// arranged flat, as a balanced two-level federation, and as a deep chain,
// across communication scales. It extends the paper's flat model along its
// grid/volunteer-computing motivation and quantifies when hierarchy is
// (nearly) free and when it hurts.
type HierarchyResult struct {
	Params model.Params
	Leaves profile.Profile
	Rows   []HierarchyRow
}

// HierarchyStudy evaluates the standard organizations of the given leaves.
func HierarchyStudy(m model.Params, leaves profile.Profile) (HierarchyResult, error) {
	if len(leaves) < 4 {
		return HierarchyResult{}, fmt.Errorf("experiments: hierarchy study needs ≥4 machines, got %d", len(leaves))
	}
	res := HierarchyResult{Params: m, Leaves: leaves}

	mkLeaves := func(p profile.Profile) []*hier.Node {
		nodes := make([]*hier.Node, len(p))
		for i, rho := range p {
			nodes[i] = hier.Leaf(rho)
		}
		return nodes
	}

	flat := hier.Cluster(mkLeaves(leaves)...)

	// Balanced two-level: split into two federated halves.
	half := len(leaves) / 2
	twoLevel := hier.Cluster(
		hier.Cluster(mkLeaves(leaves[:half])...),
		hier.Cluster(mkLeaves(leaves[half:])...),
	)

	// Quartered two-level.
	q := len(leaves) / 4
	quartered := hier.Cluster(
		hier.Cluster(mkLeaves(leaves[:q])...),
		hier.Cluster(mkLeaves(leaves[q:2*q])...),
		hier.Cluster(mkLeaves(leaves[2*q:3*q])...),
		hier.Cluster(mkLeaves(leaves[3*q:])...),
	)

	// Chain: each level wraps the previous plus one machine — the worst
	// reasonable shape.
	chain := hier.Cluster(mkLeaves(leaves[:2])...)
	for _, rho := range leaves[2:] {
		chain = hier.Cluster(chain, hier.Leaf(rho))
	}

	flatX, err := flat.X(m)
	if err != nil {
		return res, err
	}
	for _, org := range []struct {
		name string
		tree *hier.Node
	}{
		{"flat", flat},
		{"two-level (halves)", twoLevel},
		{"two-level (quarters)", quartered},
		{"chain", chain},
	} {
		x, err := org.tree.X(m)
		if err != nil {
			return res, fmt.Errorf("experiments: %s: %w", org.name, err)
		}
		res.Rows = append(res.Rows, HierarchyRow{
			Name:  org.name,
			Tree:  org.tree,
			Depth: org.tree.Depth(),
			X:     x,
			Loss:  1 - x/flatX,
		})
	}
	return res, nil
}

// Render lists the organizations.
func (r HierarchyResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("Organizing %d machines under %v", len(r.Leaves), r.Params),
		"organization", "depth", "X", "loss vs flat")
	for _, row := range r.Rows {
		t.Add(row.Name,
			fmt.Sprintf("%d", row.Depth),
			fmt.Sprintf("%.4f", row.X),
			fmt.Sprintf("%.4f%%", 100*row.Loss))
	}
	return t.String()
}
