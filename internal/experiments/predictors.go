package experiments

import (
	"fmt"
	"strings"

	"hetero/internal/model"
	"hetero/internal/predict"
)

// PredictorRaceResult is the full statistical-predictor study (the
// companion-paper direction the paper's §5 points to): every predictor
// tier evaluated on both the general and the equal-mean pair regimes.
type PredictorRaceResult struct {
	Params    model.Params
	N         int
	General   predict.Evaluation
	EqualMean predict.Evaluation
	// LinearWeights are the trained scorer's weights over
	// predict.FeatureNames(), for inspection.
	LinearWeights []float64
	// RankCorrelation maps each scalar scorer to its Spearman correlation
	// with the HECR over a random cluster sample — a stricter, non-pairwise
	// quality lens.
	RankCorrelation map[string]float64
}

// PredictorRace trains the linear scorer on general pairs and then races
// every predictor on fresh general and equal-mean pair streams.
func PredictorRace(m model.Params, n, trainPairs, evalPairs int, seed uint64) (PredictorRaceResult, error) {
	lin, err := predict.TrainOnPairs(m, predict.GeneralPairs, n, trainPairs, seed)
	if err != nil {
		return PredictorRaceResult{}, err
	}
	preds := append(append(predict.SingleMoments(), predict.Composites()...), lin)

	general, err := predict.Evaluate(m, preds, predict.GeneralPairs, n, evalPairs, seed+1)
	if err != nil {
		return PredictorRaceResult{}, err
	}
	equalMean, err := predict.Evaluate(m, preds, predict.EqualMeanPairs, n, evalPairs, seed+2)
	if err != nil {
		return PredictorRaceResult{}, err
	}
	ranks, err := predict.RankCorrelations(m, predict.Scorers(), n, evalPairs, seed+3)
	if err != nil {
		return PredictorRaceResult{}, err
	}
	return PredictorRaceResult{
		Params:          m,
		N:               n,
		General:         general,
		EqualMean:       equalMean,
		LinearWeights:   lin.Weights,
		RankCorrelation: ranks,
	}, nil
}

// Render shows both regimes plus the learned weights.
func (r PredictorRaceResult) Render() string {
	var b strings.Builder
	b.WriteString(r.General.Render("Predictor race — general pairs"))
	b.WriteString("\n")
	b.WriteString(r.EqualMean.Render("Predictor race — equal-mean pairs (§4.3 regime)"))
	b.WriteString("\nSpearman rank correlation with the HECR (random clusters):\n")
	for _, s := range predict.Scorers() {
		fmt.Fprintf(&b, "  %-16s %+.4f\n", s.Name, r.RankCorrelation[s.Name])
	}
	b.WriteString("learned linear weights: ")
	for i, name := range predict.FeatureNames() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%.3g", name, r.LinearWeights[i])
	}
	b.WriteString("\n")
	return b.String()
}
