package experiments

import (
	"fmt"

	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/stats"
)

// VarianceConfig parameterizes the §4.3 simulation study.
type VarianceConfig struct {
	Params        model.Params
	Sizes         []int // cluster sizes n (paper: 2^k for k = 2..16)
	TrialsPerSize int
	Seed          uint64
	// Workers bounds the parallel trial evaluation; 0 means GOMAXPROCS.
	Workers int
}

// DefaultVarianceConfig mirrors the paper's setup at a laptop-friendly
// trial count: sizes 2^2..2^16, Table 1 parameters.
func DefaultVarianceConfig() VarianceConfig {
	sizes := make([]int, 0, 15)
	for k := 2; k <= 16; k++ {
		sizes = append(sizes, 1<<k)
	}
	return VarianceConfig{
		Params:        model.Table1(),
		Sizes:         sizes,
		TrialsPerSize: 400,
		Seed:          20100419, // IPDPS 2010 week, for flavor
	}
}

// VarianceSizeResult aggregates one cluster size of the §4.3 study.
type VarianceSizeResult struct {
	N      int
	Trials int
	Good   int // larger variance ⇒ smaller HECR (prediction correct)
	Bad    int
	// BadFraction = Bad/Trials; the paper reports ≈23% at n = 128,
	// steady thereafter (i.e. variance is ≈76-77% correct).
	BadFraction float64
	CILo, CIHi  float64 // 95% CI on BadFraction
	// MaxBadGap is the largest variance difference observed among
	// mispredicted pairs — the per-size empirical threshold θ(n).
	MaxBadGap float64
	// MeanHECRGapBad/Good quantify the paper's observation that "the
	// clusters in the bad pairs had rather small differences in HECR".
	MeanHECRGapBad  float64
	MeanHECRGapGood float64
}

// VariancePredictorResult is the full §4.3 sweep.
type VariancePredictorResult struct {
	Config VarianceConfig
	Rows   []VarianceSizeResult
	// Theta is the overall empirical threshold: the largest variance gap at
	// which the heuristic was ever wrong, across all sizes (paper: 0.167).
	Theta float64
}

type varianceTrial struct {
	bad     bool
	gap     float64 // |VAR(P1) − VAR(P2)|
	hecrGap float64
	err     error
}

// variancePair is the generation-stage output of one trial: the equal-mean
// pair ordered so p1 has the larger variance, before any measure is taken.
type variancePair struct {
	p1, p2 profile.Profile
	gap    float64
	err    error
}

// VariancePredictor runs the §4.3 study: draw equal-mean cluster pairs,
// predict the more powerful one by profile variance, check against the
// HECR (equivalently X) ground truth.
func VariancePredictor(cfg VarianceConfig) (VariancePredictorResult, error) {
	if cfg.TrialsPerSize <= 0 {
		return VariancePredictorResult{}, fmt.Errorf("experiments: TrialsPerSize = %d must be positive", cfg.TrialsPerSize)
	}
	if err := cfg.Params.Validate(); err != nil {
		return VariancePredictorResult{}, err
	}
	res := VariancePredictorResult{Config: cfg}
	for _, n := range cfg.Sizes {
		if n < 2 {
			return res, fmt.Errorf("experiments: cluster size %d must be at least 2", n)
		}
		trials, err := runVarianceTrials(cfg, n)
		if err != nil {
			return res, err
		}
		row := VarianceSizeResult{N: n, Trials: len(trials)}
		var hecrBad, hecrGood stats.KahanSum
		for _, tr := range trials {
			if tr.bad {
				row.Bad++
				hecrBad.Add(tr.hecrGap)
				if tr.gap > row.MaxBadGap {
					row.MaxBadGap = tr.gap
				}
			} else {
				row.Good++
				hecrGood.Add(tr.hecrGap)
			}
		}
		row.BadFraction = float64(row.Bad) / float64(row.Trials)
		row.CILo, row.CIHi = stats.ProportionCI(row.Bad, row.Trials, 1.96)
		if row.Bad > 0 {
			row.MeanHECRGapBad = hecrBad.Sum() / float64(row.Bad)
		}
		if row.Good > 0 {
			row.MeanHECRGapGood = hecrGood.Sum() / float64(row.Good)
		}
		if row.MaxBadGap > res.Theta {
			res.Theta = row.MaxBadGap
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runVarianceTrials is a two-stage batch pipeline: generate every trial's
// equal-mean pair (parallel, deterministic per-trial RNG), then push all
// 2·trials profiles through incr.BatchHECR in one shot so the measure
// evaluation derives the model constants once and fans out over the worker
// pool.
func runVarianceTrials(cfg VarianceConfig, n int) ([]varianceTrial, error) {
	pairs := parallel.Map(cfg.Workers, cfg.TrialsPerSize, func(t int) variancePair {
		return generateVariancePair(cfg, n, t)
	})
	profiles := make([]profile.Profile, 0, 2*len(pairs))
	for _, pr := range pairs {
		if pr.err != nil {
			return nil, pr.err
		}
		profiles = append(profiles, pr.p1, pr.p2)
	}
	hecrs := incr.BatchHECR(cfg.Params, profiles, cfg.Workers)
	trials := make([]varianceTrial, len(pairs))
	for t, pr := range pairs {
		h1, h2 := hecrs[2*t], hecrs[2*t+1]
		hecrGap := h1 - h2
		if hecrGap < 0 {
			hecrGap = -hecrGap
		}
		// Prediction: larger variance ⇒ more powerful ⇒ smaller HECR.
		trials[t] = varianceTrial{bad: !(h1 < h2), gap: pr.gap, hecrGap: hecrGap}
	}
	return trials, nil
}

func generateVariancePair(cfg VarianceConfig, n, t int) variancePair {
	// Deterministic per-trial stream regardless of worker scheduling.
	rng := stats.NewRNG(cfg.Seed ^ (uint64(n) << 32) ^ uint64(t)*0x9e3779b97f4a7c15)
	p1, p2, err := profile.EqualMeanPair(rng, n)
	if err != nil {
		return variancePair{err: err}
	}
	gap := p1.Variance() - p2.Variance()
	if gap < 0 {
		gap = -gap
		p1, p2 = p2, p1 // make p1 the larger-variance cluster
	}
	return variancePair{p1: p1, p2: p2, gap: gap}
}

// Table returns the per-size results as a render table (use .CSV() for
// machine-readable output).
func (r VariancePredictorResult) Table() *render.Table {
	t := render.NewTable(
		fmt.Sprintf("§4.3: variance as a power predictor for equal-mean clusters (%d trials/size)", r.Config.TrialsPerSize),
		"n", "bad pairs", "bad %", "95% CI", "max bad var-gap", "mean HECR gap (bad)", "mean HECR gap (good)")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%d/%d", row.Bad, row.Trials),
			fmt.Sprintf("%.1f%%", 100*row.BadFraction),
			fmt.Sprintf("[%.1f%%, %.1f%%]", 100*row.CILo, 100*row.CIHi),
			fmt.Sprintf("%.4f", row.MaxBadGap),
			fmt.Sprintf("%.2e", row.MeanHECRGapBad),
			fmt.Sprintf("%.2e", row.MeanHECRGapGood))
	}
	return t
}

// Render returns the per-size summary table plus the threshold line.
func (r VariancePredictorResult) Render() string {
	return r.Table().String() + fmt.Sprintf("empirical threshold θ = %.4f (paper: 0.167): every misprediction had a variance gap below θ\n", r.Theta)
}
