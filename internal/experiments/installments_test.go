package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestInstallmentStudy(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.8, 0.6, 0.4)
	r, err := InstallmentStudy(m, p, 100, []float64{1e-6, 0.05}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Cheap links: gains ≈ 0. Expensive links: k=4 strictly positive gain.
	for _, row := range r.Rows {
		switch {
		case row.Tau == 1e-6 && (row.GainVsSingle > 1e-3 || row.GainVsSingle < -1e-3):
			t.Fatalf("µs-link gain %v should be ≈0", row.GainVsSingle)
		case row.Tau == 0.05 && row.K == 4 && row.GainVsSingle <= 0:
			t.Fatalf("expensive-link k=4 gain %v should be positive", row.GainVsSingle)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "gain vs single round") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestInstallmentStudyValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	if _, err := InstallmentStudy(m, p, 100, nil, []int{1}); err == nil {
		t.Fatal("empty τ sweep accepted")
	}
	if _, err := InstallmentStudy(m, p, 100, []float64{-1}, []int{1}); err == nil {
		t.Fatal("negative τ accepted")
	}
	if _, err := InstallmentStudy(m, p, 100, []float64{1e-6}, []int{0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}
