package experiments

import (
	"fmt"
	"math"
	"sort"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/schedule"
)

// ProtocolRow is one finishing order's outcome in the protocol study.
type ProtocolRow struct {
	Phi        []int
	Feasible   bool
	Work       float64
	LossVsFIFO float64 // fraction of FIFO's work lost (0 for FIFO itself)
}

// ProtocolStudyResult compares all gap-free (Σ,Φ) protocols on one cluster
// — the empirical face of Adler–Gong–Rosenberg's Theorem 1, which this
// paper inherits: FIFO maximizes work production, regardless of order.
type ProtocolStudyResult struct {
	Params   model.Params
	Profile  profile.Profile
	Lifespan float64
	FIFOWork float64
	Rows     []ProtocolRow
}

// ProtocolStudy enumerates every finishing order for the cluster (so keep
// n ≤ 8; the count is n!).
func ProtocolStudy(m model.Params, p profile.Profile, lifespan float64) (ProtocolStudyResult, error) {
	if len(p) > 8 {
		return ProtocolStudyResult{}, fmt.Errorf("experiments: protocol study enumerates n! orders; n = %d is too large (max 8)", len(p))
	}
	fifo, err := schedule.BuildFIFO(m, p, lifespan)
	if err != nil {
		return ProtocolStudyResult{}, err
	}
	res := ProtocolStudyResult{Params: m, Profile: p, Lifespan: lifespan, FIFOWork: fifo.TotalWork}
	forEachPermutation(len(p), func(phi []int) {
		row := ProtocolRow{Phi: append([]int(nil), phi...)}
		s, err := schedule.BuildGeneral(m, p, phi, lifespan)
		if err == nil {
			row.Feasible = true
			row.Work = s.TotalWork
			row.LossVsFIFO = 1 - s.TotalWork/fifo.TotalWork
			// Sub-rounding losses are exact ties (e.g. near-homogeneous
			// clusters); clamp so renders do not show "-0.0000%".
			if math.Abs(row.LossVsFIFO) < 1e-12 {
				row.LossVsFIFO = 0
			}
		}
		res.Rows = append(res.Rows, row)
	})
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if res.Rows[i].Feasible != res.Rows[j].Feasible {
			return res.Rows[i].Feasible
		}
		return res.Rows[i].Work > res.Rows[j].Work
	})
	return res, nil
}

// Best returns the top finishing order; by Theorem 1 it is always the
// identity (FIFO).
func (r ProtocolStudyResult) Best() ProtocolRow {
	if len(r.Rows) == 0 {
		return ProtocolRow{}
	}
	return r.Rows[0]
}

// Render lists the orders best-first (truncated to the top and bottom few
// for large n).
func (r ProtocolStudyResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("All gap-free finishing orders for %v (L = %g); FIFO = identity", r.Profile, r.Lifespan),
		"finishing order Φ", "work", "loss vs FIFO")
	show := r.Rows
	const cap = 12
	truncated := 0
	if len(show) > cap {
		truncated = len(show) - cap
		show = show[:cap]
	}
	for _, row := range show {
		if !row.Feasible {
			t.Add(fmt.Sprintf("%v", row.Phi), "infeasible", "-")
			continue
		}
		t.Add(fmt.Sprintf("%v", row.Phi),
			fmt.Sprintf("%.6g", row.Work),
			fmt.Sprintf("%.4f%%", 100*row.LossVsFIFO))
	}
	out := t.String()
	if truncated > 0 {
		out += fmt.Sprintf("… %d further orders omitted\n", truncated)
	}
	return out
}

// forEachPermutation calls fn with every permutation of [0,n) (Heap's
// algorithm; fn must not retain the slice).
func forEachPermutation(n int, fn func([]int)) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	c := make([]int, n)
	fn(perm)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			fn(perm)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
