package experiments

import (
	"context"
	"fmt"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// FaultRegime names the distribution faults are drawn from in the
// fault-tolerance study.
type FaultRegime string

const (
	// RegimeMixed draws from fault.Random's even mix of crashes, short
	// outages, mild slowdowns, and blackouts. Crashes destroy a computer's
	// unreturned work outright, so abandoning the in-flight round rarely
	// projects a gain and the replanner mostly rides — its edge over the
	// fixed protocol is small here.
	RegimeMixed FaultRegime = "mixed"
	// RegimeDisruptive draws only long outages and severe slowdowns — faults
	// that leave computers alive but make the fixed protocol's allocations
	// return after the lifespan, where they count for nothing. This is the
	// regime replanning exists for.
	RegimeDisruptive FaultRegime = "disruptive"
)

// FaultRow summarizes one (regime, intensity) cell of the study.
type FaultRow struct {
	Regime FaultRegime
	// Faults is the number of random faults injected per seeded trial.
	Faults int
	// MeanDegradationFixed is the mean 1 − salvaged/W(L;P) when the optimal
	// protocol is dispatched once and ridden through the faults.
	MeanDegradationFixed float64
	// MeanDegradationReplan is the same under the ride-vs-replan server.
	MeanDegradationReplan float64
	// ReplanWins counts the trials where the replanner salvaged strictly
	// more work than the fixed protocol. (It can never salvage less: the
	// greedy rule only abandons a round when the exact rollout projects at
	// least as much.)
	ReplanWins int
}

// FaultResult is the extension study probing how gracefully the cluster's
// work production degrades under injected faults, and how much a replanning
// server recovers — a question the paper's fault-free model abstracts away
// but any campaign-length deployment faces.
type FaultResult struct {
	Params   model.Params
	N        int
	Lifespan float64
	Seeds    int
	Rows     []FaultRow
}

// disruptivePlan draws a plan of long outages (20–60% of the lifespan) and
// severe slowdowns (2–6×) — no crashes, no blackouts, at most one outage
// per computer so windows stay disjoint.
func disruptivePlan(rng *stats.RNG, n int, lifespan float64, count int) fault.Plan {
	pl := fault.Plan{}
	outaged := make(map[int]bool)
	for k := 0; k < count; k++ {
		c := rng.Intn(n)
		at := rng.InRange(0, lifespan)
		if rng.Intn(2) == 0 && !outaged[c] {
			outaged[c] = true
			pl.Faults = append(pl.Faults, fault.Fault{
				Kind: fault.Outage, Computer: c, At: at, Until: at + rng.InRange(0.2, 0.6)*lifespan,
			})
		} else {
			pl.Faults = append(pl.Faults, fault.Fault{
				Kind: fault.Slowdown, Computer: c, At: at, Factor: rng.InRange(2, 6),
			})
		}
	}
	return pl
}

// FaultTolerance sweeps fault intensities under both regimes: for each
// (regime, count) it draws seeded random fault plans against a seeded random
// n-computer cluster and compares the fixed optimal protocol with the
// replanner, trial by trial on identical plans.
func FaultTolerance(m model.Params, n int, lifespan float64, counts []int, seeds int) (FaultResult, error) {
	if seeds <= 0 {
		return FaultResult{}, fmt.Errorf("experiments: seeds = %d must be positive", seeds)
	}
	if n <= 0 {
		return FaultResult{}, fmt.Errorf("experiments: n = %d must be positive", n)
	}
	res := FaultResult{Params: m, N: n, Lifespan: lifespan, Seeds: seeds}
	for _, regime := range []FaultRegime{RegimeMixed, RegimeDisruptive} {
		for _, count := range counts {
			row := FaultRow{Regime: regime, Faults: count}
			var fixedDeg, replanDeg stats.KahanSum
			for s := 0; s < seeds; s++ {
				rng := stats.NewRNG(uint64(count)*1000 + uint64(s) + 1)
				p := profile.RandomNormalized(rng, n)
				var plan fault.Plan
				if regime == RegimeMixed {
					plan = fault.Random(rng, n, lifespan, count)
				} else {
					plan = disruptivePlan(rng, n, lifespan, count)
				}
				fixed, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, false, sim.Options{})
				if err != nil {
					return res, err
				}
				replanned, err := sim.SimulateFaulty(context.Background(), m, p, lifespan, plan, true, sim.Options{})
				if err != nil {
					return res, err
				}
				fixedDeg.Add(fixed.Degradation)
				replanDeg.Add(replanned.Degradation)
				if replanned.Salvaged > fixed.Salvaged {
					row.ReplanWins++
				}
			}
			row.MeanDegradationFixed = fixedDeg.Sum() / float64(seeds)
			row.MeanDegradationReplan = replanDeg.Sum() / float64(seeds)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render returns the per-cell summary.
func (r FaultResult) Render() string {
	t := render.NewTable(
		fmt.Sprintf("work degradation under injected faults (n = %d, L = %g, %d seeds)", r.N, r.Lifespan, r.Seeds),
		"regime", "faults", "degradation (fixed)", "degradation (replan)", "replan wins")
	for _, row := range r.Rows {
		t.Add(string(row.Regime),
			fmt.Sprintf("%d", row.Faults),
			fmt.Sprintf("%.1f%%", 100*row.MeanDegradationFixed),
			fmt.Sprintf("%.1f%%", 100*row.MeanDegradationReplan),
			fmt.Sprintf("%d/%d", row.ReplanWins, r.Seeds))
	}
	return t.String()
}
