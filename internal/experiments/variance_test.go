package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
)

func smallVarianceConfig() VarianceConfig {
	return VarianceConfig{
		Params:        model.Table1(),
		Sizes:         []int{4, 16, 64},
		TrialsPerSize: 150,
		Seed:          7,
	}
}

func TestVariancePredictorReproducesSection43(t *testing.T) {
	r, err := VariancePredictor(smallVarianceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Trials != 150 {
			t.Fatalf("n=%d ran %d trials", row.N, row.Trials)
		}
		// The paper: bad pairs exist at every size, but the heuristic is
		// right roughly 3/4 of the time (never below ~60% nor a perfect
		// 100% for these sizes at this trial count).
		if row.Bad == 0 {
			t.Fatalf("n=%d: no bad pairs found; §4.3's phenomenon should appear", row.N)
		}
		if row.BadFraction > 0.45 {
			t.Fatalf("n=%d: bad fraction %v way above the paper's ≈23%%", row.N, row.BadFraction)
		}
		// The paper's plateau: for n ≥ 16 the bad fraction sits near 23%
		// (variance is "correct roughly 76% of the time").
		if row.N >= 16 && (row.BadFraction < 0.10 || row.BadFraction > 0.35) {
			t.Fatalf("n=%d: bad fraction %v outside the paper's plateau regime [10%%, 35%%]", row.N, row.BadFraction)
		}
		// Mispredicted pairs have much smaller HECR differences than the
		// correctly-predicted ones (the paper's consolation observation).
		if row.MeanHECRGapBad >= row.MeanHECRGapGood {
			t.Fatalf("n=%d: bad-pair HECR gap %v not smaller than good-pair gap %v",
				row.N, row.MeanHECRGapBad, row.MeanHECRGapGood)
		}
		if row.CILo > row.BadFraction || row.CIHi < row.BadFraction {
			t.Fatalf("n=%d: CI [%v,%v] does not bracket %v", row.N, row.CILo, row.CIHi, row.BadFraction)
		}
	}
	if !(r.Theta > 0) {
		t.Fatal("empirical θ not computed")
	}
	out := r.Render()
	for _, frag := range []string{"§4.3", "bad %", "θ", "0.167"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestVariancePredictorDeterministic(t *testing.T) {
	cfg := smallVarianceConfig()
	cfg.Sizes = []int{8}
	cfg.TrialsPerSize = 60
	a, err := VariancePredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1 // different parallelism must not change results
	b, err := VariancePredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0].Bad != b.Rows[0].Bad || a.Rows[0].MaxBadGap != b.Rows[0].MaxBadGap {
		t.Fatalf("results depend on worker count: %+v vs %+v", a.Rows[0], b.Rows[0])
	}
}

func TestVariancePredictorValidation(t *testing.T) {
	cfg := smallVarianceConfig()
	cfg.TrialsPerSize = 0
	if _, err := VariancePredictor(cfg); err == nil {
		t.Fatal("zero trials accepted")
	}
	cfg = smallVarianceConfig()
	cfg.Sizes = []int{1}
	if _, err := VariancePredictor(cfg); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestVarianceThresholdPerfectAtPaperValue(t *testing.T) {
	// The paper's Fact: with variance gaps ≥ 0.167 the prediction was
	// correct in 100% of trials. Verify on generated large-gap pairs.
	cfg := smallVarianceConfig()
	cfg.TrialsPerSize = 80
	r, err := VarianceThreshold(cfg, PaperTheta)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Perfect() {
		t.Fatalf("mispredictions above θ = %v: %+v", PaperTheta, r.Rows)
	}
	for _, row := range r.Rows {
		if row.MinGap < PaperTheta {
			t.Fatalf("n=%d generated a gap %v below θ", row.N, row.MinGap)
		}
		if row.Trials != 80 {
			t.Fatalf("n=%d trials = %d", row.N, row.Trials)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "100% correct") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestVarianceThresholdValidation(t *testing.T) {
	cfg := smallVarianceConfig()
	for _, theta := range []float64{0, -0.1, 0.25, 0.3} {
		if _, err := VarianceThreshold(cfg, theta); err == nil {
			t.Fatalf("θ = %v accepted", theta)
		}
	}
	cfg.TrialsPerSize = 0
	if _, err := VarianceThreshold(cfg, PaperTheta); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestVariancePredictorFullPaperScale(t *testing.T) {
	// The paper runs its §4.3 study up to n = 2^16; exercise that scale
	// end to end (fewer trials — each trial costs two O(n) HECRs).
	if testing.Short() {
		t.Skip("full-scale §4.3 study skipped in -short mode")
	}
	cfg := VarianceConfig{
		Params:        model.Table1(),
		Sizes:         []int{1 << 12, 1 << 16},
		TrialsPerSize: 40,
		Seed:          20100419,
	}
	r, err := VariancePredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Bad == 0 {
			t.Fatalf("n=%d: no bad pairs at paper scale", row.N)
		}
		if row.BadFraction > 0.45 {
			t.Fatalf("n=%d: bad fraction %v", row.N, row.BadFraction)
		}
	}
}
