package experiments

import (
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestFig1Render(t *testing.T) {
	out := Fig1(model.Table1(), 0.5, 100)
	for _, frag := range []string{"Figure 1", "server packages work", "computer computes", "end-to-end"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q:\n%s", frag, out)
		}
	}
}

func TestFig2RenderAndVerify(t *testing.T) {
	out, err := Fig2(model.Table1(), profile.MustNew(1, 0.5, 0.25), 3600, 72)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Figure 2", "channel", "C1", "C3", "total work"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q:\n%s", frag, out)
		}
	}
}

func TestFig2PropagatesInfeasibility(t *testing.T) {
	if _, err := Fig2(model.Table1(), profile.Harmonic(2000), 1e6, 72); err == nil {
		t.Fatal("infeasible schedule accepted")
	}
}

func TestFig3SelectionSequence(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 4, 4, 3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1}
	got := r.SelectionSequence()
	if len(got) != len(want) {
		t.Fatalf("sequence length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d sped C%d, want C%d (full: %v)", i+1, got[i], want[i], got)
		}
	}
	final := r.Steps[len(r.Steps)-1].After
	for _, rho := range final {
		if rho != 1.0/16 {
			t.Fatalf("final profile %v, want all 1/16", final)
		}
	}
}

func TestFig4SelectionSequence(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 2: slowest each round, tie-break to the largest index.
	want := []int{4, 3, 2, 1}
	got := r.SelectionSequence()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase-2 round %d sped C%d, want C%d", i+1, got[i], want[i])
		}
	}
	final := r.Steps[len(r.Steps)-1].After
	for _, rho := range final {
		if rho != 1.0/32 {
			t.Fatalf("final profile %v, want all 1/32", final)
		}
	}
}

func TestFigRenderHasBars(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if strings.Count(out, "round") != 4 {
		t.Fatalf("rounds in render:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars rendered")
	}
	if !strings.Contains(out, "Aτδ/B²") {
		t.Fatal("threshold not reported")
	}
}

func TestMeanCounterexample(t *testing.T) {
	r := MeanCounterexample()
	if !(r.XHetero > r.XHomo) {
		t.Fatalf("X %v vs %v", r.XHetero, r.XHomo)
	}
	if !(r.HECRHetero < r.HECRHomo) {
		t.Fatalf("HECR %v vs %v", r.HECRHetero, r.HECRHomo)
	}
	if !(r.Hetero.Mean() > r.Homo.Mean()) {
		t.Fatal("example premise broken")
	}
	out := r.Render()
	if !strings.Contains(out, "0.99") || !strings.Contains(out, "variance") {
		t.Fatalf("render:\n%s", out)
	}
}
