package experiments

import (
	"fmt"
	"sort"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/stats"
)

// MomentPredictorResult is the extension study suggested by §4.2/§5 and the
// companion paper [13]: which single profile statistics rank the relative
// power of *general* (not equal-mean) cluster pairs best, against the
// X-measure ground truth?
type MomentPredictorResult struct {
	Params model.Params
	N      int
	Trials int
	// Accuracy maps predictor name to the fraction of pairs it ranked the
	// same way as X.
	Accuracy map[string]float64
}

// momentPredictors lists the candidate statistics. Each returns a score for
// which SMALLER means MORE powerful (like ρ itself).
var momentPredictors = map[string]func(profile.Profile) float64{
	"arith-mean": func(p profile.Profile) float64 { return p.Mean() },
	"geo-mean":   func(p profile.Profile) float64 { return p.GeoMean() },
	"median":     func(p profile.Profile) float64 { return medianOf(p) },
	"fastest":    func(p profile.Profile) float64 { return p.Fastest() },
	"slowest":    func(p profile.Profile) float64 { return p.Slowest() },
	// Variance with the opposite sign: §4's heuristic says larger variance
	// is better, so smaller (−variance) is better.
	"neg-variance": func(p profile.Profile) float64 { return -p.Variance() },
	// The sum Σ1/ρ is the cluster's aggregate computing speed — the
	// communication-free predictor.
	"neg-total-speed": func(p profile.Profile) float64 {
		total := 0.0
		for _, r := range p {
			total += 1 / r
		}
		return -total
	},
}

func medianOf(p profile.Profile) float64 {
	return stats.Median(p)
}

// MomentPredictors measures each predictor's ranking accuracy over random
// same-size cluster pairs.
func MomentPredictors(m model.Params, n, trials int, seed uint64) (MomentPredictorResult, error) {
	if n < 2 {
		return MomentPredictorResult{}, fmt.Errorf("experiments: cluster size %d must be at least 2", n)
	}
	if trials <= 0 {
		return MomentPredictorResult{}, fmt.Errorf("experiments: trials = %d must be positive", trials)
	}
	rng := stats.NewRNG(seed)
	correct := make(map[string]int, len(momentPredictors))
	decided := 0
	for t := 0; t < trials; t++ {
		p1 := profile.RandomNormalized(rng, n)
		p2 := profile.RandomNormalized(rng, n)
		truth := core.Compare(m, p1, p2)
		if truth == 0 {
			continue
		}
		decided++
		for name, score := range momentPredictors {
			s1, s2 := score(p1), score(p2)
			var guess int
			switch {
			case s1 < s2:
				guess = 1
			case s1 > s2:
				guess = -1
			}
			if guess == truth {
				correct[name]++
			}
		}
	}
	if decided == 0 {
		return MomentPredictorResult{}, fmt.Errorf("experiments: no decided pairs in %d trials", trials)
	}
	res := MomentPredictorResult{Params: m, N: n, Trials: decided, Accuracy: make(map[string]float64)}
	for name := range momentPredictors {
		res.Accuracy[name] = float64(correct[name]) / float64(decided)
	}
	return res, nil
}

// Render lists predictors by descending accuracy.
func (r MomentPredictorResult) Render() string {
	names := make([]string, 0, len(r.Accuracy))
	for name := range r.Accuracy {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if r.Accuracy[names[i]] != r.Accuracy[names[j]] {
			return r.Accuracy[names[i]] > r.Accuracy[names[j]]
		}
		return names[i] < names[j]
	})
	t := render.NewTable(
		fmt.Sprintf("Moment predictors vs X ground truth (n = %d, %d decided pairs)", r.N, r.Trials),
		"predictor", "rank accuracy")
	for _, name := range names {
		t.Add(name, fmt.Sprintf("%.1f%%", 100*r.Accuracy[name]))
	}
	return t.String()
}
