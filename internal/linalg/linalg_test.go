package linalg

import (
	"math"
	"testing"

	"hetero/internal/stats"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x − y = 1 → x = 2, y = 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal: only solvable with row exchange.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveRandomSystems(t *testing.T) {
	r := stats.NewRNG(42)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(20)
		a := NewMatrix(n, n)
		xTrue := make([]float64, n)
		for i := 0; i < n; i++ {
			xTrue[i] = r.InRange(-5, 5)
			for j := 0; j < n; j++ {
				a.Set(i, j, r.InRange(-1, 1))
			}
			// Diagonal dominance keeps the random systems well conditioned.
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], xTrue[i])
			}
		}
		if res := Residual(a, x, b); res > 1e-9 {
			t.Fatalf("n=%d: residual %v", n, res)
		}
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	b := []float64{4, 3}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 || b[0] != 4 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	sq := NewMatrix(2, 2)
	if _, err := Solve(sq, []float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestMatrixPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad dims":   func() { NewMatrix(0, 2) },
		"oob":        func() { NewMatrix(2, 2).At(2, 0) },
		"mulvec dim": func() { NewMatrix(2, 2).MulVec([]float64{1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestClone(t *testing.T) {
	a := NewMatrix(1, 1)
	a.Set(0, 0, 5)
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 5 {
		t.Fatal("Clone aliased storage")
	}
}
