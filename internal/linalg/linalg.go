// Package linalg is a small dense linear-algebra substrate: just enough —
// partial-pivot LU solving and residual checks — to support the general
// (Σ,Φ)-protocol solver in package schedule, which turns the gap-free
// worksharing conditions into an n×n linear system for the allocations.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major n×m matrix.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[m.idx(i, j)] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[m.idx(i, j)] = v }

func (m *Matrix) idx(i, j int) int {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
	return i*m.Cols + j
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// MulVec returns m·x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %dx%d times %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// Solve solves the square system a·x = b by Gaussian elimination with
// partial pivoting, returning x. It errors when the matrix is singular (or
// numerically so). a and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	// Work on copies.
	lu := a.Clone()
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the
		// diagonal.
		pivot := col
		pivotMag := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := math.Abs(lu.At(r, col)); mag > pivotMag {
				pivot, pivotMag = r, mag
			}
		}
		if pivotMag == 0 || math.IsNaN(pivotMag) {
			return nil, fmt.Errorf("linalg: singular system (pivot %d)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := lu.At(col, j)
				lu.Set(col, j, lu.At(pivot, j))
				lu.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := lu.At(r, col) * inv
			if factor == 0 {
				continue
			}
			lu.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				lu.Set(r, j, lu.At(r, j)-factor*lu.At(col, j))
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= lu.At(i, j) * x[j]
		}
		x[i] = sum / lu.At(i, i)
	}
	return x, nil
}

// Residual returns max_i |a·x − b|_i, the infinity-norm residual of a
// candidate solution — used by callers to validate conditioning.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	worst := 0.0
	for i := range ax {
		if r := math.Abs(ax[i] - b[i]); r > worst {
			worst = r
		}
	}
	return worst
}
