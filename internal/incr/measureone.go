package incr

import (
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// FullMeasure is everything the /v1/measure response reports about one
// profile: the three headline measures plus the §4 profile moments.
type FullMeasure struct {
	X        float64
	HECR     float64
	WorkRate float64
	Mean     float64
	Variance float64
	GeoMean  float64
}

// MeasureProfile evaluates the full /v1/measure payload for one profile.
// Profiles shorter than core.ParallelCutover take exactly the serial paths
// the package has always used (bit-identical results); at or above the
// cutover the folds — log-product, Σρ, Σlogρ, and the central second moment
// — run through the chunked parallel kernel (workers ≤ 0 means GOMAXPROCS),
// two passes in total, with per-chunk compensated sums combined in chunk
// order so results are deterministic and within the kernel tolerance of the
// serial fold (see internal/core kernel tests).
func MeasureProfile(m model.Params, p profile.Profile, workers int) FullMeasure {
	if len(p) < core.ParallelCutover {
		x := core.X(m, p)
		return FullMeasure{
			X:        x,
			HECR:     core.HECR(m, p),
			WorkRate: 1 / (m.TauDelta() + 1/x),
			Mean:     p.Mean(),
			Variance: p.Variance(),
			GeoMean:  p.GeoMean(),
		}
	}
	n := float64(len(p))
	a, b, td := m.A(), m.B(), m.TauDelta()
	num := td - a

	// Pass 1: one scan per chunk accumulates the log-product term, Σρ and
	// Σlogρ together, so the large-n miss path reads the profile twice in
	// total (the second pass needs the mean).
	type partial struct{ logProd, sum, sumLog float64 }
	partials := parallel.MapChunks(workers, len(p), core.ParallelChunk, func(lo, hi int) partial {
		var lp, s, sl stats.KahanSum
		for _, rho := range p[lo:hi] {
			lp.Add(math.Log1p(num / (b*rho + a)))
			s.Add(rho)
			sl.Add(math.Log(rho))
		}
		return partial{lp.Sum(), s.Sum(), sl.Sum()}
	})
	var lp, s, sl stats.KahanSum
	for _, part := range partials {
		lp.Add(part.logProd)
		s.Add(part.sum)
		sl.Add(part.sumLog)
	}
	logProd := lp.Sum()
	mean := s.Sum() / n

	// Pass 2: central second moment about the pass-1 mean, matching the
	// serial stats.Variance (population variance, eq. (7)).
	m2parts := parallel.MapChunks(workers, len(p), core.ParallelChunk, func(lo, hi int) float64 {
		var m2 stats.KahanSum
		for _, rho := range p[lo:hi] {
			d := rho - mean
			m2.Add(d * d)
		}
		return m2.Sum()
	})
	var m2 stats.KahanSum
	for _, part := range m2parts {
		m2.Add(part)
	}

	x := core.XFromLogProduct(m, logProd)
	return FullMeasure{
		X:        x,
		HECR:     core.HECRFromLogProduct(m, logProd, len(p)),
		WorkRate: 1 / (td + 1/x),
		Mean:     mean,
		Variance: m2.Sum() / n,
		GeoMean:  math.Exp(sl.Sum() / n),
	}
}
