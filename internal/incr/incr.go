// Package incr is the incremental evaluation engine for the X-measure
// family. Every measure in this repository — X, the HECR, the asymptotic
// work rate — derives from one primitive, the log-product Σᵢ log r(ρᵢ), and
// that sum is additive over computers. The Evaluator exploits this: it pays
// the O(n) scan once at construction, then answers measure queries and
// single-computer what-if/apply/undo updates in O(1) by swapping one
// log r(ρ) term in a compensated running sum.
//
// The package is the substrate for the repo's hot paths: speedup search
// (core.BestAdditive / BestMultiplicative run the same swap trick in O(n)
// total), the catalog knapsack (per-tier values precomputed once), the §4.3
// experiment sweeps (BatchHECR), and the HTTP serving path's POST /v1/batch
// (BatchMeasure with parallel fan-out).
package incr

import (
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Evaluator maintains a cluster profile together with the per-computer
// log r(ρᵢ) terms and their compensated running sum, so that measures and
// single-ρ updates cost O(1) after the O(n) construction scan.
//
// An Evaluator is not safe for concurrent mutation; wrap it in a lock or
// give each goroutine its own (see Clone).
type Evaluator struct {
	m         model.Params
	a, b, td  float64 // derived constants, computed once
	rhos      []float64
	logr      []float64
	sum, comp float64 // Neumaier running sum of logr + its compensation
	undoStack []undoRecord
}

// undoRecord snapshots exactly the state an Apply overwrote, so Undo is an
// exact inverse (bit-for-bit, no numerical drift).
type undoRecord struct {
	index     int
	rho, logr float64
	sum, comp float64
}

// New builds an Evaluator for profile p under parameters m. The profile is
// copied; later mutations of p do not affect the Evaluator.
func New(m model.Params, p profile.Profile) (*Evaluator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("incr: a cluster needs at least one computer")
	}
	e := &Evaluator{
		m:    m,
		a:    m.A(),
		b:    m.B(),
		td:   m.TauDelta(),
		rhos: make([]float64, len(p)),
		logr: make([]float64, len(p)),
	}
	for i, rho := range p {
		if err := checkRho(rho); err != nil {
			return nil, fmt.Errorf("incr: ρ[%d]: %w", i, err)
		}
		e.rhos[i] = rho
		e.logr[i] = e.logRatio(rho)
		e.add(e.logr[i])
	}
	return e, nil
}

// MustNew is New for programmatically-correct inputs; it panics on error.
func MustNew(m model.Params, p profile.Profile) *Evaluator {
	e, err := New(m, p)
	if err != nil {
		panic(err)
	}
	return e
}

func checkRho(rho float64) error {
	switch {
	case math.IsNaN(rho) || math.IsInf(rho, 0):
		return fmt.Errorf("ρ = %v is not finite", rho)
	case rho <= 0:
		return fmt.Errorf("ρ = %v must be positive", rho)
	case rho > 1:
		return fmt.Errorf("ρ = %v exceeds 1; normalize so the slowest computer has ρ = 1", rho)
	}
	return nil
}

// logRatio is core.LogRatio with the derived constants already in hand —
// the "amortized constant derivation" that makes batch loops cheap.
func (e *Evaluator) logRatio(rho float64) float64 {
	return math.Log1p((e.td - e.a) / (e.b*rho + e.a))
}

// add folds v into the Neumaier-compensated running sum.
func (e *Evaluator) add(v float64) {
	t := e.sum + v
	if math.Abs(e.sum) >= math.Abs(v) {
		e.comp += (e.sum - t) + v
	} else {
		e.comp += (v - t) + e.sum
	}
	e.sum = t
}

// N returns the cluster size.
func (e *Evaluator) N() int { return len(e.rhos) }

// Params returns the model parameters the Evaluator was built with.
func (e *Evaluator) Params() model.Params { return e.m }

// Rho returns the current ρ of computer i.
func (e *Evaluator) Rho(i int) float64 { return e.rhos[i] }

// Profile returns a copy of the current profile.
func (e *Evaluator) Profile() profile.Profile {
	p := make(profile.Profile, len(e.rhos))
	copy(p, e.rhos)
	return p
}

// LogProductRatios returns the maintained primitive Σᵢ log r(ρᵢ) in O(1).
func (e *Evaluator) LogProductRatios() float64 { return e.sum + e.comp }

// X returns the X-measure of the current profile in O(1).
func (e *Evaluator) X() float64 {
	return core.XFromLogProduct(e.m, e.LogProductRatios())
}

// HECR returns the homogeneous-equivalent computing rate in O(1).
func (e *Evaluator) HECR() float64 {
	return core.HECRFromLogProduct(e.m, e.LogProductRatios(), len(e.rhos))
}

// WorkRate returns the asymptotic work per unit lifespan 1/(τδ + 1/X) in
// O(1).
func (e *Evaluator) WorkRate() float64 {
	return 1 / (e.td + 1/e.X())
}

// WhatIf returns the X-measure the cluster would have with ρᵢ replaced by
// newRho, in O(1) and without mutating the Evaluator.
func (e *Evaluator) WhatIf(i int, newRho float64) (float64, error) {
	l, err := e.whatIfLog(i, newRho)
	if err != nil {
		return 0, err
	}
	return core.XFromLogProduct(e.m, l), nil
}

// WhatIfHECR is WhatIf for the HECR.
func (e *Evaluator) WhatIfHECR(i int, newRho float64) (float64, error) {
	l, err := e.whatIfLog(i, newRho)
	if err != nil {
		return 0, err
	}
	return core.HECRFromLogProduct(e.m, l, len(e.rhos)), nil
}

// WhatIfDrop prices removing computer i from the cluster entirely — the
// X-measure and asymptotic work rate of the remaining (n−1)-computer
// cluster — in O(1) and without mutating the Evaluator. This is the
// primitive the fault-aware replanner uses to price a candidate replan at
// each crash or outage event: the capacity delta of losing Cᵢ is one
// subtraction on the maintained log-product, not an O(n) rescan. Dropping
// the last computer yields the empty cluster (X = 0, rate = 0).
func (e *Evaluator) WhatIfDrop(i int) (x, rate float64, err error) {
	if i < 0 || i >= len(e.rhos) {
		return 0, 0, fmt.Errorf("incr: computer index %d out of range [0,%d)", i, len(e.rhos))
	}
	x = core.XFromLogProduct(e.m, e.LogProductRatios()-e.logr[i])
	if x > 0 {
		rate = 1 / (e.td + 1/x)
	}
	return x, rate, nil
}

func (e *Evaluator) whatIfLog(i int, newRho float64) (float64, error) {
	if i < 0 || i >= len(e.rhos) {
		return 0, fmt.Errorf("incr: computer index %d out of range [0,%d)", i, len(e.rhos))
	}
	if err := checkRho(newRho); err != nil {
		return 0, fmt.Errorf("incr: %w", err)
	}
	return e.LogProductRatios() - e.logr[i] + e.logRatio(newRho), nil
}

// Apply sets ρᵢ = newRho in O(1), recording an undo entry. The running sum
// absorbs the swap through compensated addition, so drift over long
// mutation sequences stays at the ulp level (the property tests pin it to
// 1e-12 relative against fresh recomputation).
func (e *Evaluator) Apply(i int, newRho float64) error {
	if i < 0 || i >= len(e.rhos) {
		return fmt.Errorf("incr: computer index %d out of range [0,%d)", i, len(e.rhos))
	}
	if err := checkRho(newRho); err != nil {
		return fmt.Errorf("incr: %w", err)
	}
	e.undoStack = append(e.undoStack, undoRecord{
		index: i, rho: e.rhos[i], logr: e.logr[i], sum: e.sum, comp: e.comp,
	})
	nl := e.logRatio(newRho)
	e.add(nl - e.logr[i])
	e.rhos[i] = newRho
	e.logr[i] = nl
	return nil
}

// Undo reverts the most recent un-undone Apply and reports whether there
// was one. The restore is exact: the pre-Apply sum and compensation are
// reinstated bit-for-bit.
func (e *Evaluator) Undo() bool {
	if len(e.undoStack) == 0 {
		return false
	}
	rec := e.undoStack[len(e.undoStack)-1]
	e.undoStack = e.undoStack[:len(e.undoStack)-1]
	e.rhos[rec.index] = rec.rho
	e.logr[rec.index] = rec.logr
	e.sum, e.comp = rec.sum, rec.comp
	return true
}

// UndoDepth returns how many Apply calls can currently be undone.
func (e *Evaluator) UndoDepth() int { return len(e.undoStack) }

// Clone returns an independent copy (shared nothing, including the undo
// stack), for handing to another goroutine.
func (e *Evaluator) Clone() *Evaluator {
	c := *e
	c.rhos = append([]float64(nil), e.rhos...)
	c.logr = append([]float64(nil), e.logr...)
	c.undoStack = append([]undoRecord(nil), e.undoStack...)
	return &c
}

// Refresh rebuilds the running sum from the stored log r terms with a full
// compensated scan, discarding any accumulated drift (and the undo stack,
// whose snapshots refer to the pre-refresh sum). Long-lived evaluators
// under adversarial mutation loads can call it periodically; the property
// tests show ordinary workloads never need to.
func (e *Evaluator) Refresh() {
	var acc stats.KahanSum
	for i, rho := range e.rhos {
		e.logr[i] = e.logRatio(rho)
		acc.Add(e.logr[i])
	}
	e.sum, e.comp = acc.Sum(), 0
	e.undoStack = e.undoStack[:0]
}
