package incr

import (
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Coalesced evaluation: the admission batcher (internal/api) merges
// concurrent /v1/measure misses from different clients into one dispatch, and
// most herd traffic shares profile content while sweeping model parameters —
// the paper's §4.3 sensitivity analysis issued one parameter point per
// client. The measures split cleanly along that axis: Mean, Variance and
// GeoMean depend only on the profile, while X, HECR and WorkRate depend on
// the profile only through the log-product scan whose integrand mixes in the
// parameters. So a flush evaluates each distinct profile's moments once and
// pays exactly one log-product scan per item.
//
// Everything here is bit-identical to MeasureProfile: the helpers reuse the
// same serial paths below core.ParallelCutover and the same chunk geometry
// (core.ParallelChunk boundaries, per-chunk compensated sums combined in
// chunk order) at or above it. Splitting MeasureProfile's fused pass-1 scan
// into separate scans cannot change any bits because each accumulated
// quantity lives in its own compensated accumulator whose operation sequence
// is unchanged — only the interleaving with other accumulators differs.

// Moments holds the parameter-independent third of a FullMeasure: the §4
// profile moments shared by every parameter point measured on one profile.
type Moments struct {
	Mean     float64
	Variance float64
	GeoMean  float64
}

// ProfileMoments computes the profile moments exactly as MeasureProfile
// does: serial stats below the cutover, the two-pass chunked kernel at or
// above it. MeasureProfile(m, p, w) returns these same bits for any m and w.
func ProfileMoments(p profile.Profile, workers int) Moments {
	if len(p) < core.ParallelCutover {
		return Moments{
			Mean:     p.Mean(),
			Variance: p.Variance(),
			GeoMean:  p.GeoMean(),
		}
	}
	n := float64(len(p))
	type partial struct{ sum, sumLog float64 }
	partials := parallel.MapChunks(workers, len(p), core.ParallelChunk, func(lo, hi int) partial {
		var s, sl stats.KahanSum
		for _, rho := range p[lo:hi] {
			s.Add(rho)
			sl.Add(math.Log(rho))
		}
		return partial{s.Sum(), sl.Sum()}
	})
	var s, sl stats.KahanSum
	for _, part := range partials {
		s.Add(part.sum)
		sl.Add(part.sumLog)
	}
	mean := s.Sum() / n

	m2parts := parallel.MapChunks(workers, len(p), core.ParallelChunk, func(lo, hi int) float64 {
		var m2 stats.KahanSum
		for _, rho := range p[lo:hi] {
			d := rho - mean
			m2.Add(d * d)
		}
		return m2.Sum()
	})
	var m2 stats.KahanSum
	for _, part := range m2parts {
		m2.Add(part)
	}
	return Moments{Mean: mean, Variance: m2.Sum() / n, GeoMean: math.Exp(sl.Sum() / n)}
}

// MeasureWithMoments evaluates the parameter-dependent measures for (m, p)
// and combines them with precomputed moments, bit-identical to
// MeasureProfile(m, p, ·): the serial path runs one core.LogProductRatios
// scan and finishes through the same XFromLogProduct/HECRFromLogProduct that
// core.X and core.HECR themselves compose (one scan instead of their two —
// the scan is deterministic, so the bits cannot differ); the chunked path
// runs the same log-product scan over the same chunk boundaries with the
// same ordered combine.
func MeasureWithMoments(m model.Params, p profile.Profile, mom Moments, workers int) FullMeasure {
	if len(p) < core.ParallelCutover {
		lp := core.LogProductRatios(m, p)
		x := core.XFromLogProduct(m, lp)
		return FullMeasure{
			X:        x,
			HECR:     core.HECRFromLogProduct(m, lp, len(p)),
			WorkRate: 1 / (m.TauDelta() + 1/x),
			Mean:     mom.Mean,
			Variance: mom.Variance,
			GeoMean:  mom.GeoMean,
		}
	}
	a, b, td := m.A(), m.B(), m.TauDelta()
	num := td - a
	partials := parallel.MapChunks(workers, len(p), core.ParallelChunk, func(lo, hi int) float64 {
		var lp stats.KahanSum
		for _, rho := range p[lo:hi] {
			lp.Add(math.Log1p(num / (b*rho + a)))
		}
		return lp.Sum()
	})
	var lp stats.KahanSum
	for _, part := range partials {
		lp.Add(part)
	}
	logProd := lp.Sum()
	x := core.XFromLogProduct(m, logProd)
	return FullMeasure{
		X:        x,
		HECR:     core.HECRFromLogProduct(m, logProd, len(p)),
		WorkRate: 1 / (td + 1/x),
		Mean:     mom.Mean,
		Variance: mom.Variance,
		GeoMean:  mom.GeoMean,
	}
}

// CoalescedItem is one entry of a coalesced flush: the model parameters to
// measure under and the index (into the flush's unique-profile table) of the
// profile to measure. Items sharing a Group share that profile's moments.
type CoalescedItem struct {
	Params model.Params
	Group  int
}

// CoalescedMeasure evaluates a whole admission-batcher flush in one
// dispatch. profiles holds the distinct profile contents of the flush; each
// item references one by Group. Per unique profile the moments are computed
// once; per item only the parameter-dependent log-product scan runs. Results
// are indexed like items and bit-identical to MeasureProfile per item — the
// property the coalesced-vs-direct golden test pins.
//
// Scheduling mirrors BatchMeasureFull via the same ScheduleBatch heuristic
// over the unique profiles: large profiles take the chunked within-profile
// kernel one at a time (their items' scans ride the same kernel), the rest
// fan out across the pool largest-first. Either axis yields the same bits —
// chunk geometry depends only on profile length, never on workers.
func CoalescedMeasure(items []CoalescedItem, profiles []profile.Profile, workers int) []FullMeasure {
	moments := make([]Moments, len(profiles))
	sched := ScheduleBatch(profiles, workers)
	large := make([]bool, len(profiles))
	for _, g := range sched.Large {
		large[g] = true
	}

	// Phase 1: moments per unique profile — large sequentially with the
	// chunked kernel, small fanned out largest-first.
	for _, g := range sched.Large {
		moments[g] = ProfileMoments(profiles[g], workers)
	}
	weights := make([]int, len(sched.Small))
	for j, g := range sched.Small {
		weights[j] = len(profiles[g])
	}
	parallel.ForEachLargestFirst(workers, weights, func(j int) {
		g := sched.Small[j]
		moments[g] = ProfileMoments(profiles[g], 1)
	})

	// Phase 2: one log-product scan per item. Items on large profiles run
	// sequentially with within-profile parallelism; the rest fan out.
	out := make([]FullMeasure, len(items))
	var small []int
	for i, it := range items {
		if large[it.Group] {
			out[i] = MeasureWithMoments(it.Params, profiles[it.Group], moments[it.Group], workers)
		} else {
			small = append(small, i)
		}
	}
	itemWeights := make([]int, len(small))
	for j, i := range small {
		itemWeights[j] = len(profiles[items[i].Group])
	}
	parallel.ForEachLargestFirst(workers, itemWeights, func(j int) {
		i := small[j]
		it := items[i]
		out[i] = MeasureWithMoments(it.Params, profiles[it.Group], moments[it.Group], 1)
	})
	return out
}
