package incr

import (
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// coalesceSizes crosses the serial/chunked boundary: well below the cutover,
// one under, exactly at, a partial final chunk, and multiple full chunks.
var coalesceSizes = []int{1, 7, 100, core.ParallelCutover - 1, core.ParallelCutover,
	core.ParallelCutover + 123, 3*core.ParallelChunk + 17}

func TestProfileMomentsMatchesMeasureProfileBits(t *testing.T) {
	m := model.Table1()
	for _, n := range coalesceSizes {
		p := randProfile(n, uint64(n))
		for _, workers := range []int{1, 3, 0} {
			want := MeasureProfile(m, p, workers)
			got := ProfileMoments(p, workers)
			if got.Mean != want.Mean || got.Variance != want.Variance || got.GeoMean != want.GeoMean {
				t.Fatalf("n=%d workers=%d: moments %+v, MeasureProfile moments {%v %v %v}",
					n, workers, got, want.Mean, want.Variance, want.GeoMean)
			}
		}
	}
}

func TestMeasureWithMomentsMatchesMeasureProfileBits(t *testing.T) {
	for _, n := range coalesceSizes {
		p := randProfile(n, uint64(100+n))
		mom := ProfileMoments(p, 0)
		for _, m := range []model.Params{
			model.Table1(),
			{Tau: 0.002, Pi: 0.9, Delta: 0.004},
			{Tau: 0.00001, Pi: 0.999, Delta: 0.0001},
		} {
			for _, workers := range []int{1, 4, 0} {
				want := MeasureProfile(m, p, workers)
				got := MeasureWithMoments(m, p, mom, workers)
				if got != want {
					t.Fatalf("n=%d workers=%d m=%+v: MeasureWithMoments = %+v, MeasureProfile = %+v",
						n, workers, m, got, want)
				}
			}
		}
	}
}

func TestCoalescedMeasureMatchesPerItemBits(t *testing.T) {
	// A flush mixing profile sizes and parameter sweeps: three items per
	// profile sharing content (a τ sweep) across serial- and chunked-size
	// groups.
	uniq := []struct{ n, seed int }{
		{10, 1}, {core.ParallelCutover, 2}, {500, 3}, {core.ParallelCutover + 777, 4},
	}
	var flushProfiles []profile.Profile
	for _, u := range uniq {
		flushProfiles = append(flushProfiles, randProfile(u.n, uint64(u.seed)))
	}
	base := model.Table1()
	var items []CoalescedItem
	for g := range flushProfiles {
		for k := 0; k < 3; k++ {
			m := base
			m.Tau = base.Tau * float64(1+k)
			items = append(items, CoalescedItem{Params: m, Group: g})
		}
	}
	for _, workers := range []int{1, 2, 0} {
		got := CoalescedMeasure(items, flushProfiles, workers)
		for i, it := range items {
			want := MeasureProfile(it.Params, flushProfiles[it.Group], 0)
			if got[i] != want {
				t.Fatalf("workers=%d item %d (group %d): coalesced %+v, direct %+v",
					workers, i, it.Group, got[i], want)
			}
		}
	}
}

func TestCoalescedMeasureEmptyFlush(t *testing.T) {
	if out := CoalescedMeasure(nil, nil, 0); len(out) != 0 {
		t.Fatalf("empty flush returned %d results", len(out))
	}
}
