package incr

import (
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func randProfile(n int, seed uint64) profile.Profile {
	return profile.RandomNormalized(stats.NewRNG(seed), n)
}

func TestScheduleBatchClassifiesByCutover(t *testing.T) {
	profiles := []profile.Profile{
		randProfile(10, 1),
		randProfile(core.ParallelCutover, 2),
		randProfile(20, 3),
		randProfile(core.ParallelCutover+5, 4),
	}
	sched := ScheduleBatch(profiles, 4)
	if want := []int{0, 2}; len(sched.Small) != 2 || sched.Small[0] != want[0] || sched.Small[1] != want[1] {
		t.Fatalf("Small = %v, want %v", sched.Small, want)
	}
	// Large is ordered by decreasing size, not input order.
	if want := []int{3, 1}; len(sched.Large) != 2 || sched.Large[0] != want[0] || sched.Large[1] != want[1] {
		t.Fatalf("Large = %v, want %v (descending by size)", sched.Large, want)
	}
}

func TestScheduleBatchDemotesWhenLargeSaturates(t *testing.T) {
	// Four cutover-size profiles with two workers: across-profile fan-out
	// already saturates the pool (4 ≥ 2×2), so everything goes Small and the
	// per-profile kernel synchronization is skipped.
	var profiles []profile.Profile
	for i := 0; i < 4; i++ {
		profiles = append(profiles, randProfile(core.ParallelCutover, uint64(10+i)))
	}
	sched := ScheduleBatch(profiles, 2)
	if len(sched.Large) != 0 || len(sched.Small) != 4 {
		t.Fatalf("Small %v / Large %v, want all four demoted to Small", sched.Small, sched.Large)
	}
	// With a wide pool the same batch keeps the within-profile axis.
	sched = ScheduleBatch(profiles, 8)
	if len(sched.Large) != 4 {
		t.Fatalf("Large %v, want all four on the chunked kernel with 8 workers", sched.Large)
	}
}

func TestScheduleBatchTiesKeepInputOrder(t *testing.T) {
	profiles := []profile.Profile{
		randProfile(core.ParallelCutover, 20),
		randProfile(core.ParallelCutover, 21),
		randProfile(core.ParallelCutover+1, 22),
	}
	sched := ScheduleBatch(profiles, 16)
	if want := []int{2, 0, 1}; sched.Large[0] != want[0] || sched.Large[1] != want[1] || sched.Large[2] != want[2] {
		t.Fatalf("Large = %v, want %v (stable on equal sizes)", sched.Large, want)
	}
}

// TestBatchMeasureFullBitIdentical pins the property the /v1/batch golden
// test relies on: whatever axis the scheduler picks, every result is
// bit-identical to a direct per-profile MeasureProfile call — including the
// chunked-kernel sizes, because MeasureProfile's result is worker-count
// invariant.
func TestBatchMeasureFullBitIdentical(t *testing.T) {
	m := model.Table1()
	profiles := []profile.Profile{
		randProfile(7, 31),
		randProfile(core.ParallelCutover+100, 32), // chunked kernel
		randProfile(300, 33),
		randProfile(core.ParallelCutover, 34), // chunked kernel, tie sizes
		randProfile(3, 35),
	}
	for _, workers := range []int{1, 3, 8} {
		got := BatchMeasureFull(m, profiles, workers)
		if len(got) != len(profiles) {
			t.Fatalf("workers=%d: %d results for %d profiles", workers, len(got), len(profiles))
		}
		for i, p := range profiles {
			if want := MeasureProfile(m, p, 1); got[i] != want {
				t.Fatalf("workers=%d profile %d (n=%d): %+v != %+v", workers, i, len(p), got[i], want)
			}
		}
	}
}

func TestBatchMeasureFullEmpty(t *testing.T) {
	if got := BatchMeasureFull(model.Table1(), nil, 4); len(got) != 0 {
		t.Fatalf("empty batch produced %d results", len(got))
	}
}

// TestWorkUnits pins the estimate shared by ScheduleBatch and the HTTP
// stream-vs-buffer arbitration: one unit per ρ-value, summed over the batch.
func TestWorkUnits(t *testing.T) {
	if got := WorkUnits(nil); got != 0 {
		t.Fatalf("WorkUnits(nil) = %d", got)
	}
	profiles := []profile.Profile{randProfile(7, 41), randProfile(300, 42), randProfile(1, 43)}
	if got := WorkUnits(profiles); got != 308 {
		t.Fatalf("WorkUnits = %d, want 308", got)
	}
}
