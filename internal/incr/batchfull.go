package incr

import (
	"runtime"
	"sort"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
)

// ScheduleLargeCutover is the profile size at which ScheduleBatch classifies
// a profile as large — the same threshold at which MeasureProfile's chunked
// kernel engages, so "large" always means "within-profile parallelism is
// available".
const ScheduleLargeCutover = core.ParallelCutover

// BatchSchedule is the evaluation plan ScheduleBatch produces for one batch:
// which profiles to fan out across the worker pool and which to evaluate one
// at a time with the pool turned inward (the chunked within-profile kernel).
type BatchSchedule struct {
	// Small holds the indices evaluated by across-profile fan-out, each on a
	// single worker.
	Small []int
	// Large holds the indices evaluated sequentially with within-profile
	// parallelism, in decreasing size order (largest first bounds the tail).
	Large []int
}

// WorkUnits is the work-units estimate behind ScheduleBatch's heuristic,
// totaled over a batch: a profile of n ρ-values is n units of work (and, on
// the serving side, ~n rendered response bytes times a small constant) no
// matter how it is scheduled. The HTTP layer uses the same number to decide
// when a /v1/batch response is large enough to stream rather than buffer.
func WorkUnits(profiles []profile.Profile) int {
	total := 0
	for _, p := range profiles {
		total += len(p)
	}
	return total
}

// ScheduleBatch picks the parallelization axis for each profile of a batch
// using a work-units heuristic. A profile of n ρ-values is n units of work
// regardless of how it is scheduled, so the only question is where the
// parallelism comes from:
//
//   - Many small profiles → fan out across profiles; per-profile evaluation
//     is serial and the pool is saturated by profile count.
//   - Few large profiles (n ≥ core.ParallelCutover) → fanning out uses at
//     most len(profiles) workers (a 3×500k batch would use 3 cores); instead
//     evaluate them one at a time with the chunked two-pass kernel spreading
//     each profile's chunks over the whole pool.
//   - Enough large profiles to saturate the pool by count alone
//     (≥ 2×workers) → demote them to the fan-out set: across-profile
//     parallelism already keeps every core busy and skips the kernel's
//     per-profile synchronization cost.
//
// Both axes produce bit-identical floats — MeasureProfile's chunk-ordered
// combine makes its result independent of the worker count — so the choice
// is pure scheduling, never semantics.
func ScheduleBatch(profiles []profile.Profile, workers int) BatchSchedule {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var sched BatchSchedule
	for i, p := range profiles {
		if len(p) >= core.ParallelCutover {
			sched.Large = append(sched.Large, i)
		} else {
			sched.Small = append(sched.Small, i)
		}
	}
	if len(sched.Large) >= 2*workers {
		sched.Small = append(sched.Small, sched.Large...)
		sched.Large = nil
	}
	sort.SliceStable(sched.Large, func(a, b int) bool {
		return len(profiles[sched.Large[a]]) > len(profiles[sched.Large[b]])
	})
	return sched
}

// BatchMeasureFull evaluates the full /v1/measure payload (measures plus
// moments) for every profile of a batch, scheduling per ScheduleBatch:
// large profiles run the chunked within-profile kernel across the whole
// pool, the rest fan out across profiles largest-first. Results are indexed
// like the input and bit-identical to calling MeasureProfile per profile —
// the property the /v1/batch ≡ /v1/measure golden test pins.
func BatchMeasureFull(m model.Params, profiles []profile.Profile, workers int) []FullMeasure {
	out := make([]FullMeasure, len(profiles))
	sched := ScheduleBatch(profiles, workers)
	for _, i := range sched.Large {
		out[i] = MeasureProfile(m, profiles[i], workers)
	}
	weights := make([]int, len(sched.Small))
	for j, i := range sched.Small {
		weights[j] = len(profiles[i])
	}
	parallel.ForEachLargestFirst(workers, weights, func(j int) {
		i := sched.Small[j]
		out[i] = MeasureProfile(m, profiles[i], 1)
	})
	return out
}
