package incr

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func relErrFull(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestMeasureProfileSmallIsBitIdenticalToSerial(t *testing.T) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(5), 512)
	got := MeasureProfile(m, p, 0)
	if got.X != core.X(m, p) || got.HECR != core.HECR(m, p) {
		t.Fatal("sub-cutover MeasureProfile diverged from the serial measures")
	}
	if got.Mean != p.Mean() || got.Variance != p.Variance() || got.GeoMean != p.GeoMean() {
		t.Fatal("sub-cutover MeasureProfile diverged from the serial moments")
	}
	if got.WorkRate != core.WorkRate(m, p) {
		t.Fatalf("WorkRate %v, want %v", got.WorkRate, core.WorkRate(m, p))
	}
}

func TestMeasureProfileLargeMatchesSerialWithinTolerance(t *testing.T) {
	const tol = 1e-12 // the kernel tolerance documented in internal/core
	for _, n := range []int{core.ParallelCutover, 1 << 14, 1 << 16} {
		m := model.Table1()
		p := profile.RandomNormalized(stats.NewRNG(uint64(n)), n)
		got := MeasureProfile(m, p, 0)
		checks := []struct {
			name      string
			got, want float64
		}{
			{"X", got.X, core.X(m, p)},
			{"HECR", got.HECR, core.HECR(m, p)},
			{"WorkRate", got.WorkRate, core.WorkRate(m, p)},
			{"Mean", got.Mean, p.Mean()},
			{"Variance", got.Variance, p.Variance()},
			{"GeoMean", got.GeoMean, p.GeoMean()},
		}
		for _, c := range checks {
			if d := relErrFull(c.got, c.want); d > tol {
				t.Fatalf("n=%d: %s rel err %g (got %v, want %v)", n, c.name, d, c.got, c.want)
			}
		}
	}
}

func TestMeasureProfileLargeIsDeterministic(t *testing.T) {
	m := model.Figs34()
	p := profile.RandomNormalized(stats.NewRNG(9), 1<<15)
	first := MeasureProfile(m, p, 8)
	for i := 0; i < 5; i++ {
		if again := MeasureProfile(m, p, 8); again != first {
			t.Fatalf("MeasureProfile nondeterministic: %+v vs %+v", again, first)
		}
	}
}

func BenchmarkMeasureProfile64KSerialPath(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(1), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := FullMeasure{
			X:        core.X(m, p),
			HECR:     core.HECR(m, p),
			WorkRate: core.WorkRate(m, p),
			Mean:     p.Mean(),
			Variance: p.Variance(),
			GeoMean:  p.GeoMean(),
		}
		benchSink = r.X
	}
}

func BenchmarkMeasureProfile64KChunked(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(1), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = MeasureProfile(m, p, 0).X
	}
}

var benchSink float64
