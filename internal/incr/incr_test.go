package incr

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	den := math.Abs(want)
	if den == 0 {
		den = 1
	}
	return math.Abs(got-want) / den
}

func testParams() []model.Params {
	return []model.Params{
		model.Table1(),
		model.Table1Fine(),
		model.Figs34(),
		{Tau: 0.01, Pi: 0.002, Delta: 0.5},
	}
}

func TestEvaluatorMatchesCoreOnConstruction(t *testing.T) {
	r := stats.NewRNG(11)
	for _, m := range testParams() {
		for _, n := range []int{1, 2, 7, 64, 1024} {
			p := profile.RandomNormalized(r, n)
			e, err := New(m, p)
			if err != nil {
				t.Fatal(err)
			}
			if re := relErr(e.X(), core.X(m, p)); re > 1e-13 {
				t.Fatalf("n=%d: X rel err %v", n, re)
			}
			if re := relErr(e.HECR(), core.HECR(m, p)); re > 1e-13 {
				t.Fatalf("n=%d: HECR rel err %v", n, re)
			}
			if re := relErr(e.WorkRate(), core.WorkRate(m, p)); re > 1e-13 {
				t.Fatalf("n=%d: WorkRate rel err %v", n, re)
			}
			if re := relErr(e.LogProductRatios(), core.LogProductRatios(m, p)); re > 1e-13 {
				t.Fatalf("n=%d: log-product rel err %v", n, re)
			}
		}
	}
}

// TestEvaluatorPropertyRandomMutations is the acceptance property test:
// over random apply/undo/what-if sequences the Evaluator must track fresh
// core.X recomputation within 1e-12 relative error.
func TestEvaluatorPropertyRandomMutations(t *testing.T) {
	const tol = 1e-12
	r := stats.NewRNG(20100419)
	for trial := 0; trial < 40; trial++ {
		m := testParams()[trial%4]
		n := 2 + r.Intn(200)
		p := profile.RandomNormalized(r, n)
		e, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		shadow := p.Clone() // ground-truth profile, recomputed fresh each check
		type snapshot struct {
			i   int
			rho float64
		}
		var history []snapshot
		ops := 200 + r.Intn(300)
		for op := 0; op < ops; op++ {
			i := r.Intn(n)
			newRho := r.InRange(1e-6, 1)
			switch r.Intn(4) {
			case 0: // WhatIf: no mutation, compare against a fresh scratch copy
				got, err := e.WhatIf(i, newRho)
				if err != nil {
					t.Fatal(err)
				}
				scratch := shadow.Clone()
				scratch[i] = newRho
				if re := relErr(got, core.X(m, scratch)); re > tol {
					t.Fatalf("trial %d op %d: WhatIf rel err %v", trial, op, re)
				}
			case 1, 2: // Apply
				history = append(history, snapshot{i, shadow[i]})
				if err := e.Apply(i, newRho); err != nil {
					t.Fatal(err)
				}
				shadow[i] = newRho
			case 3: // Undo
				if e.Undo() {
					last := history[len(history)-1]
					history = history[:len(history)-1]
					shadow[last.i] = last.rho
				} else if len(history) != 0 {
					t.Fatalf("trial %d: Undo refused with %d entries outstanding", trial, len(history))
				}
			}
			if re := relErr(e.X(), core.X(m, shadow)); re > tol {
				t.Fatalf("trial %d op %d: X rel err %v after mutation", trial, op, re)
			}
			if re := relErr(e.HECR(), core.HECR(m, shadow)); re > tol {
				t.Fatalf("trial %d op %d: HECR rel err %v after mutation", trial, op, re)
			}
		}
		// Unwind everything: the evaluator must land exactly on the original.
		for e.Undo() {
		}
		if e.UndoDepth() != 0 {
			t.Fatalf("trial %d: undo stack not empty", trial)
		}
		for i := range p {
			if e.Rho(i) != p[i] {
				t.Fatalf("trial %d: full unwind diverged at %d: %v vs %v", trial, i, e.Rho(i), p[i])
			}
		}
		if got, want := e.X(), MustNew(m, p).X(); got != want {
			t.Fatalf("trial %d: full unwind X %v != fresh %v", trial, got, want)
		}
	}
}

func TestWhatIfDoesNotMutate(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	e := MustNew(m, p)
	before := e.X()
	if _, err := e.WhatIf(1, 0.9); err != nil {
		t.Fatal(err)
	}
	if e.X() != before || e.Rho(1) != 0.5 {
		t.Fatal("WhatIf mutated the evaluator")
	}
	if _, err := e.WhatIfHECR(1, 0.9); err != nil {
		t.Fatal(err)
	}
	if e.X() != before {
		t.Fatal("WhatIfHECR mutated the evaluator")
	}
}

func TestWhatIfMatchesApply(t *testing.T) {
	m := model.Figs34()
	p := profile.MustNew(1, 0.7, 0.3, 0.2)
	e := MustNew(m, p)
	want, err := e.WhatIf(2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(2, 0.15); err != nil {
		t.Fatal(err)
	}
	if got := e.X(); got != want {
		t.Fatalf("Apply X %v != WhatIf %v", got, want)
	}
}

func TestEvaluatorValidation(t *testing.T) {
	m := model.Table1()
	if _, err := New(m, nil); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := New(model.Params{}, profile.MustNew(1)); err == nil {
		t.Fatal("invalid params accepted")
	}
	e := MustNew(m, profile.MustNew(1, 0.5))
	for _, rho := range []float64{0, -1, 1.5, math.NaN(), math.Inf(1)} {
		if err := e.Apply(0, rho); err == nil {
			t.Fatalf("Apply accepted ρ = %v", rho)
		}
		if _, err := e.WhatIf(0, rho); err == nil {
			t.Fatalf("WhatIf accepted ρ = %v", rho)
		}
	}
	for _, i := range []int{-1, 2} {
		if err := e.Apply(i, 0.5); err == nil {
			t.Fatalf("Apply accepted index %d", i)
		}
		if _, err := e.WhatIf(i, 0.5); err == nil {
			t.Fatalf("WhatIf accepted index %d", i)
		}
	}
	if e.Undo() {
		t.Fatal("Undo succeeded with empty stack")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := model.Table1()
	e := MustNew(m, profile.MustNew(1, 0.5, 0.25))
	c := e.Clone()
	if err := c.Apply(0, 0.1); err != nil {
		t.Fatal(err)
	}
	if e.Rho(0) != 1 || e.X() == c.X() {
		t.Fatal("clone shares state with original")
	}
	if !c.Undo() {
		t.Fatal("clone lost the undo stack")
	}
	if c.X() != e.X() {
		t.Fatal("clone undo diverged")
	}
}

func TestRefreshPreservesMeasures(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(3)
	p := profile.RandomNormalized(r, 256)
	e := MustNew(m, p)
	for k := 0; k < 500; k++ {
		if err := e.Apply(r.Intn(256), r.InRange(1e-3, 1)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.X()
	e.Refresh()
	if e.UndoDepth() != 0 {
		t.Fatal("Refresh kept stale undo entries")
	}
	if re := relErr(e.X(), before); re > 1e-13 {
		t.Fatalf("Refresh moved X by rel %v", re)
	}
	if re := relErr(e.X(), core.X(m, e.Profile())); re > 1e-13 {
		t.Fatalf("Refresh diverged from core.X by rel %v", re)
	}
}

func TestBatchMatchesCore(t *testing.T) {
	r := stats.NewRNG(7)
	m := model.Table1()
	profiles := make([]profile.Profile, 50)
	for i := range profiles {
		profiles[i] = profile.RandomNormalized(r, 1+r.Intn(128))
	}
	for _, workers := range []int{0, 1, 4} {
		xs := BatchX(m, profiles, workers)
		hecrs := BatchHECR(m, profiles, workers)
		ms := BatchMeasure(m, profiles, workers)
		for i, p := range profiles {
			if re := relErr(xs[i], core.X(m, p)); re > 1e-13 {
				t.Fatalf("BatchX[%d] rel err %v", i, re)
			}
			if re := relErr(hecrs[i], core.HECR(m, p)); re > 1e-13 {
				t.Fatalf("BatchHECR[%d] rel err %v", i, re)
			}
			if re := relErr(ms[i].X, core.X(m, p)); re > 1e-13 {
				t.Fatalf("BatchMeasure[%d].X rel err %v", i, re)
			}
			if re := relErr(ms[i].HECR, core.HECR(m, p)); re > 1e-13 {
				t.Fatalf("BatchMeasure[%d].HECR rel err %v", i, re)
			}
			if re := relErr(ms[i].WorkRate, core.WorkRate(m, p)); re > 1e-13 {
				t.Fatalf("BatchMeasure[%d].WorkRate rel err %v", i, re)
			}
		}
	}
	if got := BatchX(m, nil, 0); len(got) != 0 {
		t.Fatalf("BatchX(nil) = %v", got)
	}
}

func TestEvaluatorAgreesWithSpeedupSearch(t *testing.T) {
	// The O(n) core search and an Evaluator-driven argmin must agree: both
	// are the same swap trick, so this guards the two code paths against
	// drifting apart.
	m := model.Figs34()
	r := stats.NewRNG(99)
	for trial := 0; trial < 100; trial++ {
		p := profile.RandomNormalized(r, 2+r.Intn(30))
		psi := r.InRange(0.05, 0.95)
		choice, err := core.BestMultiplicative(m, p, psi)
		if err != nil {
			t.Fatal(err)
		}
		e := MustNew(m, p)
		bestIdx, bestLog := -1, 0.0
		for i := range p {
			l, err := e.whatIfLog(i, p[i]*psi)
			if err != nil {
				t.Fatal(err)
			}
			// Same ordering and tie-break as the core search: smaller
			// log-product wins, larger index on exact ties.
			if bestIdx < 0 || l <= bestLog {
				bestIdx, bestLog = i, l
			}
		}
		if bestIdx != choice.Index {
			t.Fatalf("trial %d: evaluator picks %d, core picks %d (profile %v)", trial, bestIdx, choice.Index, p)
		}
	}
}

func TestWhatIfDropMatchesFreshEvaluator(t *testing.T) {
	r := stats.NewRNG(29)
	for _, m := range testParams() {
		for _, n := range []int{2, 3, 17, 256} {
			p := profile.RandomNormalized(r, n)
			e := MustNew(m, p)
			for i := 0; i < n; i++ {
				x, rate, err := e.WhatIfDrop(i)
				if err != nil {
					t.Fatal(err)
				}
				rest := append(append(profile.Profile{}, p[:i]...), p[i+1:]...)
				want := MustNew(m, rest)
				if re := relErr(x, want.X()); re > 1e-12 {
					t.Fatalf("n=%d drop %d: X rel err %v", n, i, re)
				}
				if re := relErr(rate, want.WorkRate()); re > 1e-12 {
					t.Fatalf("n=%d drop %d: rate rel err %v", n, i, re)
				}
			}
			// Pricing must not mutate.
			if re := relErr(e.X(), core.X(m, p)); re > 1e-13 {
				t.Fatalf("n=%d: WhatIfDrop mutated the evaluator (X rel err %v)", n, re)
			}
		}
	}
}

func TestWhatIfDropEdgeCases(t *testing.T) {
	e := MustNew(model.Table1(), profile.MustNew(1))
	x, rate, err := e.WhatIfDrop(0)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 || rate != 0 {
		t.Fatalf("dropping the only computer priced X=%v rate=%v, want 0, 0", x, rate)
	}
	if _, _, err := e.WhatIfDrop(1); err == nil {
		t.Fatal("out-of-range drop accepted")
	}
	if _, _, err := e.WhatIfDrop(-1); err == nil {
		t.Fatal("negative drop accepted")
	}
}
