package incr

import (
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Measure bundles the three headline measures of one profile, as produced
// by BatchMeasure from a single log-product scan.
type Measure struct {
	X        float64
	HECR     float64
	WorkRate float64
}

// batchEnv holds the derived constants once per batch, so the per-ρ inner
// loop does no repeated A/B/τδ derivation.
type batchEnv struct {
	a, b, td float64
}

func newBatchEnv(m model.Params) batchEnv {
	return batchEnv{a: m.A(), b: m.B(), td: m.TauDelta()}
}

func (env batchEnv) logProduct(p profile.Profile) float64 {
	var acc stats.KahanSum
	num := env.td - env.a
	for _, rho := range p {
		acc.Add(math.Log1p(num / (env.b*rho + env.a)))
	}
	return acc.Sum()
}

// BatchX evaluates X for many profiles against one parameter set, deriving
// the model constants once and fanning the profiles out over
// parallel.ForEach (workers ≤ 0 means GOMAXPROCS). Results are indexed like
// the input.
func BatchX(m model.Params, profiles []profile.Profile, workers int) []float64 {
	env := newBatchEnv(m)
	out := make([]float64, len(profiles))
	parallel.ForEach(workers, len(profiles), func(i int) {
		out[i] = core.XFromLogProduct(m, env.logProduct(profiles[i]))
	})
	return out
}

// BatchHECR evaluates the HECR for many profiles against one parameter set
// (see BatchX for the evaluation strategy).
func BatchHECR(m model.Params, profiles []profile.Profile, workers int) []float64 {
	env := newBatchEnv(m)
	out := make([]float64, len(profiles))
	parallel.ForEach(workers, len(profiles), func(i int) {
		out[i] = core.HECRFromLogProduct(m, env.logProduct(profiles[i]), len(profiles[i]))
	})
	return out
}

// BatchMeasure evaluates X, HECR and the work rate for many profiles with
// one log-product scan per profile — the serving shape behind the HTTP
// POST /v1/batch endpoint.
func BatchMeasure(m model.Params, profiles []profile.Profile, workers int) []Measure {
	env := newBatchEnv(m)
	out := make([]Measure, len(profiles))
	parallel.ForEach(workers, len(profiles), func(i int) {
		l := env.logProduct(profiles[i])
		x := core.XFromLogProduct(m, l)
		out[i] = Measure{
			X:        x,
			HECR:     core.HECRFromLogProduct(m, l, len(profiles[i])),
			WorkRate: 1 / (env.td + 1/x),
		}
	})
	return out
}
