package profile

import (
	"math"
	"testing"
	"testing/quick"
)

func sanitize(raw []float64, max int) (Profile, bool) {
	rhos := make([]float64, 0, max)
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		r := math.Mod(math.Abs(v), 1)
		if r < 1e-3 {
			r += 1e-3
		}
		rhos = append(rhos, r)
		if len(rhos) == max {
			break
		}
	}
	if len(rhos) == 0 {
		return nil, false
	}
	p, err := New(rhos...)
	return p, err == nil
}

func TestQuickElementarySymmetricAgainstVieta(t *testing.T) {
	// Evaluating Π(x + ρᵢ) via the e_k coefficients at a random x must
	// match the direct product.
	f := func(raw []float64, xRaw float64) bool {
		p, ok := sanitize(raw, 8)
		if !ok {
			return true
		}
		x := math.Mod(math.Abs(xRaw), 2)
		e := p.ElementarySymmetric()
		n := len(p)
		viaCoeffs := 0.0
		pow := 1.0
		for k := n; k >= 0; k-- {
			viaCoeffs += e[k] * pow
			pow *= x
		}
		direct := 1.0
		for _, rho := range p {
			direct *= x + rho
		}
		return math.Abs(viaCoeffs-direct) <= 1e-9*math.Max(1, direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVarianceNonNegativeAndShiftRule(t *testing.T) {
	f := func(raw []float64) bool {
		p, ok := sanitize(raw, 10)
		if !ok {
			return true
		}
		v := p.Variance()
		if v < 0 {
			return false
		}
		// Variance of (0,1]-values is at most 1/4.
		return v <= 0.25+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizedPreservesRatios(t *testing.T) {
	f := func(raw []float64) bool {
		p, ok := sanitize(raw, 10)
		if !ok || len(p) < 2 {
			return true
		}
		q := p.Normalized()
		if !q.IsNormalized() {
			return false
		}
		want := p[1] / p[0]
		got := q[1] / q[0]
		return math.Abs(got-want) <= 1e-12*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinorizationIrreflexiveAndAntisymmetric(t *testing.T) {
	f := func(raw1, raw2 []float64) bool {
		p, ok1 := sanitize(raw1, 6)
		q, ok2 := sanitize(raw2, 6)
		if !ok1 || !ok2 {
			return true
		}
		if Minorizes(p, p.Clone()) {
			return false // irreflexive
		}
		if len(p) == len(q) && Minorizes(p, q) && Minorizes(q, p) {
			return false // antisymmetric
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortedDescIsPermutation(t *testing.T) {
	f := func(raw []float64) bool {
		p, ok := sanitize(raw, 10)
		if !ok {
			return true
		}
		s := p.SortedDesc()
		if !s.IsSortedDesc() || len(s) != len(p) {
			return false
		}
		// Same multiset: compare sums and products (cheap fingerprints).
		sumP, sumS, prodP, prodS := 0.0, 0.0, 1.0, 1.0
		for i := range p {
			sumP += p[i]
			sumS += s[i]
			prodP *= p[i]
			prodS *= s[i]
		}
		return math.Abs(sumP-sumS) < 1e-12 && math.Abs(prodP-prodS) < 1e-12*math.Max(1, prodP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
