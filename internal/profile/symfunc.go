package profile

import "hetero/internal/stats"

// ElementarySymmetric returns the elementary symmetric functions
// F₀⁽ⁿ⁾ … Fₙ⁽ⁿ⁾ of the profile's ρ-values (Table 5 of the paper), with
// the paper's convention F₀ ≡ 1. The returned slice has length n+1.
//
// The values are built with the standard O(n²) dynamic program over the
// coefficients of Π(x + ρᵢ): after processing ρ, e_k ← e_k + ρ·e_{k-1}.
// All ρᵢ are positive, so every addition is of same-signed terms and the
// recurrence is numerically benign.
func (p Profile) ElementarySymmetric() []float64 {
	e := make([]float64, len(p)+1)
	e[0] = 1
	for i, r := range p {
		// Highest degree first so e[k-1] is still the previous row's value.
		for k := i + 1; k >= 1; k-- {
			e[k] += r * e[k-1]
		}
	}
	return e
}

// SymmetricFunction returns F_k⁽ⁿ⁾(P) for a single k ∈ [0, n].
// For repeated use prefer ElementarySymmetric, which computes all orders in
// one pass.
func (p Profile) SymmetricFunction(k int) float64 {
	if k < 0 || k > len(p) {
		panic("profile: symmetric function order out of range")
	}
	return p.ElementarySymmetric()[k]
}

// NewtonIdentityResidual returns the residual of the k-th Newton identity
//
//	k·e_k − Σ_{i=1..k} (−1)^{i−1} e_{k−i} S_i
//
// which is identically zero for exact arithmetic. The test suite uses it to
// validate ElementarySymmetric against PowerSums on random profiles; it is
// exported (within the package tree) because the moment-predictor study
// also reports it as a numeric sanity metric.
func (p Profile) NewtonIdentityResidual(k int) float64 {
	if k < 1 || k > len(p) {
		panic("profile: Newton identity order out of range")
	}
	e := p.ElementarySymmetric()
	s := p.PowerSums(k)
	var acc stats.KahanSum
	acc.Add(float64(k) * e[k])
	sign := 1.0
	for i := 1; i <= k; i++ {
		acc.Add(-sign * e[k-i] * s[i])
		sign = -sign
	}
	return acc.Sum()
}
