package profile

import (
	"math"
	"testing"

	"hetero/internal/stats"
)

func TestLinearMatchesPaperN8(t *testing.T) {
	// §2.5: P1⁽⁸⁾ = ⟨1, 7/8, …, 1/8⟩.
	p := Linear(8)
	for i := 0; i < 8; i++ {
		want := float64(8-i) / 8
		if math.Abs(p[i]-want) > 1e-15 {
			t.Fatalf("Linear(8)[%d] = %v, want %v", i, p[i], want)
		}
	}
	if !p.IsNormalized() || !p.IsSortedDesc() {
		t.Fatal("Linear profile not normalized power-indexed")
	}
}

func TestHarmonicMatchesPaperN8(t *testing.T) {
	// §2.5: P2⁽⁸⁾ = ⟨1, 1/2, …, 1/8⟩.
	p := Harmonic(8)
	for i := 0; i < 8; i++ {
		want := 1 / float64(i+1)
		if math.Abs(p[i]-want) > 1e-15 {
			t.Fatalf("Harmonic(8)[%d] = %v, want %v", i, p[i], want)
		}
	}
}

func TestHarmonicFasterHalf(t *testing.T) {
	// The paper's motivation for Table 3: all but one of C2's computers
	// have ρ ≤ 1/2 while half of C1's have ρ > 1/2.
	n := 16
	c1, c2 := Linear(n), Harmonic(n)
	slow1, slow2 := 0, 0
	for i := 0; i < n; i++ {
		if c1[i] > 0.5 {
			slow1++
		}
		if c2[i] > 0.5 {
			slow2++
		}
	}
	if slow1 != n/2 {
		t.Fatalf("Linear has %d computers with ρ>1/2, want %d", slow1, n/2)
	}
	if slow2 != 1 {
		t.Fatalf("Harmonic has %d computers with ρ>1/2, want 1", slow2)
	}
}

func TestHomogeneous(t *testing.T) {
	p := Homogeneous(4, 0.5)
	for _, r := range p {
		if r != 0.5 {
			t.Fatalf("Homogeneous = %v", p)
		}
	}
	if p.Variance() != 0 {
		t.Fatalf("homogeneous variance = %v", p.Variance())
	}
}

func TestHomogeneousPanics(t *testing.T) {
	for _, tc := range []struct {
		n   int
		rho float64
	}{{0, 0.5}, {3, 0}, {3, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Homogeneous(%d, %v) accepted", tc.n, tc.rho)
				}
			}()
			Homogeneous(tc.n, tc.rho)
		}()
	}
}

func TestGeometric(t *testing.T) {
	p := Geometric(5, 0.5)
	want := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-15 {
			t.Fatalf("Geometric = %v", p)
		}
	}
}

func TestGeometricFloors(t *testing.T) {
	p := Geometric(100, 0.5)
	if p.Fastest() < rhoFloor {
		t.Fatalf("Geometric went below the floor: %v", p.Fastest())
	}
	if _, err := New(p...); err != nil {
		t.Fatalf("Geometric produced invalid profile: %v", err)
	}
}

func TestRandomNormalized(t *testing.T) {
	r := stats.NewRNG(8)
	for trial := 0; trial < 20; trial++ {
		p := RandomNormalized(r, 1+r.Intn(30))
		if !p.IsNormalized() {
			t.Fatalf("not normalized: %v", p)
		}
		if _, err := New(p...); err != nil {
			t.Fatalf("invalid: %v", err)
		}
	}
}

func TestSpreadAroundExactMean(t *testing.T) {
	r := stats.NewRNG(12)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		mean := r.InRange(0.1, 0.9)
		frac := r.Float64()
		p, err := SpreadAround(r, n, mean, frac)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Mean()-mean) > 1e-12 {
			t.Fatalf("mean = %v, want %v (n=%d frac=%v)", p.Mean(), mean, n, frac)
		}
		for _, x := range p {
			if x < rhoFloor-1e-12 || x > 1+1e-12 {
				t.Fatalf("value %v outside [%v,1]", x, rhoFloor)
			}
		}
	}
}

func TestSpreadAroundZeroFracHomogeneous(t *testing.T) {
	p, err := SpreadAround(stats.NewRNG(3), 6, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Variance() > 1e-30 {
		t.Fatalf("frac=0 variance = %v, want ~0", p.Variance())
	}
}

func TestSpreadAroundRejectsBadArgs(t *testing.T) {
	r := stats.NewRNG(1)
	if _, err := SpreadAround(r, 0, 0.5, 0.5); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := SpreadAround(r, 3, 0, 0.5); err == nil {
		t.Fatal("mean=0 accepted")
	}
	if _, err := SpreadAround(r, 3, 0.5, 2); err == nil {
		t.Fatal("frac=2 accepted")
	}
}

func TestTwoPointMoments(t *testing.T) {
	p, err := TwoPoint(10, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-0.5) > 1e-15 {
		t.Fatalf("mean = %v", p.Mean())
	}
	if math.Abs(p.Variance()-0.09) > 1e-15 {
		t.Fatalf("variance = %v, want d² = 0.09", p.Variance())
	}
}

func TestTwoPointOddN(t *testing.T) {
	p, err := TwoPoint(5, 0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-0.4) > 1e-15 {
		t.Fatalf("odd-n mean = %v", p.Mean())
	}
	// Middle computer sits exactly at the mean.
	if p[2] != 0.4 {
		t.Fatalf("middle value = %v", p[2])
	}
}

func TestTwoPointRejectsBadArgs(t *testing.T) {
	if _, err := TwoPoint(4, 0.5, 0.6); err == nil {
		t.Fatal("offset pushing past 1 accepted")
	}
	if _, err := TwoPoint(4, 0.1, 0.2); err == nil {
		t.Fatal("offset pushing below floor accepted")
	}
	if _, err := TwoPoint(0, 0.5, 0.1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestMaxTwoPointOffset(t *testing.T) {
	if got := MaxTwoPointOffset(0.5); math.Abs(got-(0.5-rhoFloor)) > 1e-15 {
		t.Fatalf("offset at 0.5 = %v", got)
	}
	if got := MaxTwoPointOffset(0.9); math.Abs(got-0.1) > 1e-15 {
		t.Fatalf("offset at 0.9 = %v", got)
	}
}

func TestTwoPointReachesLargeVarianceGaps(t *testing.T) {
	// The §4.3 threshold θ = 0.167 is only meaningful if the generator can
	// produce variance gaps that large; the bimodal family must reach
	// variance > 0.167 on its own.
	p, err := TwoPoint(8, 0.5, MaxTwoPointOffset(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if p.Variance() < 0.167 {
		t.Fatalf("max two-point variance = %v, cannot exercise θ = 0.167", p.Variance())
	}
}

func TestEqualMeanPair(t *testing.T) {
	r := stats.NewRNG(2718)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(30)
		p1, p2, err := EqualMeanPair(r, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1.Mean()-p2.Mean()) > 1e-12 {
			t.Fatalf("means differ: %v vs %v", p1.Mean(), p2.Mean())
		}
		if p1.Variance() == p2.Variance() {
			t.Fatal("variances equal")
		}
		if len(p1) != n || len(p2) != n {
			t.Fatalf("lengths %d/%d, want %d", len(p1), len(p2), n)
		}
	}
}

func TestEqualMeanPairRejectsZeroN(t *testing.T) {
	if _, _, err := EqualMeanPair(stats.NewRNG(1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a1, b1, err := EqualMeanPair(stats.NewRNG(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := EqualMeanPair(stats.NewRNG(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatal("EqualMeanPair not deterministic for a fixed seed")
		}
	}
}

func TestSkewedTwoPointMoments(t *testing.T) {
	r := stats.NewRNG(31415)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(30)
		k := 1 + r.Intn(n-1)
		m := r.InRange(0.2, 0.8)
		d := r.InRange(0, 0.95) * MaxSkewedOffset(n, k, m)
		p, err := SkewedTwoPoint(n, m, d, k)
		if err != nil {
			t.Fatalf("n=%d k=%d m=%v d=%v: %v", n, k, m, d, err)
		}
		if math.Abs(p.Mean()-m) > 1e-12 {
			t.Fatalf("mean %v, want %v", p.Mean(), m)
		}
		if math.Abs(p.Variance()-d*d) > 1e-10 {
			t.Fatalf("variance %v, want d² = %v", p.Variance(), d*d)
		}
		if _, err := New(p...); err != nil {
			t.Fatalf("invalid profile: %v", err)
		}
	}
}

func TestSkewedTwoPointSkewVariesWithK(t *testing.T) {
	// Same mean and variance, different k: the third moments must differ —
	// that is the whole point of the family.
	left, err := SkewedTwoPoint(10, 0.5, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	right, err := SkewedTwoPoint(10, 0.5, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(left.Mean()-right.Mean()) > 1e-12 || math.Abs(left.Variance()-right.Variance()) > 1e-12 {
		t.Fatal("first two moments should match")
	}
	if left.Describe().Skewness*right.Describe().Skewness >= 0 {
		t.Fatalf("skewness should flip sign: %v vs %v", left.Describe().Skewness, right.Describe().Skewness)
	}
}

func TestSkewedTwoPointRejectsBadArgs(t *testing.T) {
	cases := []struct {
		n, k int
		m, d float64
	}{
		{1, 1, 0.5, 0.1},  // n too small
		{4, 0, 0.5, 0.1},  // k too small
		{4, 4, 0.5, 0.1},  // k too large
		{4, 2, 0, 0.1},    // bad mean
		{4, 2, 0.5, -0.1}, // negative d
		{4, 1, 0.5, 0.9},  // values escape (0,1]
	}
	for _, tc := range cases {
		if _, err := SkewedTwoPoint(tc.n, tc.m, tc.d, tc.k); err == nil {
			t.Fatalf("SkewedTwoPoint(%d, %v, %v, %d) accepted", tc.n, tc.m, tc.d, tc.k)
		}
	}
}

func TestMaxSkewedOffsetIsTight(t *testing.T) {
	// d = MaxSkewedOffset must be admissible; 1.01× must not.
	for _, k := range []int{1, 3, 7} {
		n, m := 8, 0.4
		dmax := MaxSkewedOffset(n, k, m)
		if _, err := SkewedTwoPoint(n, m, dmax*0.999, k); err != nil {
			t.Fatalf("k=%d: d just under max rejected: %v", k, err)
		}
		if _, err := SkewedTwoPoint(n, m, dmax*1.02, k); err == nil {
			t.Fatalf("k=%d: d above max accepted", k)
		}
	}
}

func TestEqualMeanPairHardPairsHaveCloseVariances(t *testing.T) {
	// Roughly half the pairs should have variance within ±15% of each other
	// (the "hard" mode), which is what drives the §4.3 bad-pair plateau.
	r := stats.NewRNG(555)
	close, total := 0, 0
	for trial := 0; trial < 400; trial++ {
		p1, p2, err := EqualMeanPair(r, 16)
		if err != nil {
			t.Fatal(err)
		}
		total++
		v1, v2 := p1.Variance(), p2.Variance()
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		if v2 > 0 && v1/v2 > 0.85 {
			close++
		}
	}
	frac := float64(close) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("close-variance fraction %v outside [0.3, 0.7]; hard-pair mode broken", frac)
	}
}

func TestZipf(t *testing.T) {
	// s = 1 is the harmonic cluster; s = 0 homogeneous.
	z1 := Zipf(8, 1)
	h := Harmonic(8)
	for i := range h {
		if math.Abs(z1[i]-h[i]) > 1e-15 {
			t.Fatalf("Zipf(8,1) = %v, want harmonic %v", z1, h)
		}
	}
	z0 := Zipf(5, 0)
	for _, v := range z0 {
		if v != 1 {
			t.Fatalf("Zipf(5,0) = %v, want all 1", z0)
		}
	}
	// Steeper exponents give faster (smaller-ρ) tails.
	if !(Zipf(16, 2).Fastest() < Zipf(16, 1).Fastest()) {
		t.Fatal("steeper Zipf should have a faster tail")
	}
	// The floor keeps huge exponents valid.
	if _, err := New(Zipf(100, 5)...); err != nil {
		t.Fatalf("floored Zipf invalid: %v", err)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative exponent accepted")
		}
	}()
	Zipf(4, -1)
}
