package profile

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hetero/internal/stats"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		rhos []float64
		ok   bool
	}{
		{"valid", []float64{1, 0.5, 0.25}, true},
		{"single", []float64{1}, true},
		{"empty", nil, false},
		{"zero", []float64{1, 0}, false},
		{"negative", []float64{1, -0.5}, false},
		{"above one", []float64{1.5}, false},
		{"nan", []float64{math.NaN()}, false},
		{"inf", []float64{math.Inf(1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.rhos...)
			if (err == nil) != tc.ok {
				t.Fatalf("New(%v) error = %v, want ok=%v", tc.rhos, err, tc.ok)
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	raw := []float64{1, 0.5}
	p, err := New(raw...)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 0.1
	if p[0] != 1 {
		t.Fatal("New aliased caller's slice")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid input did not panic")
		}
	}()
	MustNew(-1)
}

func TestSortedDesc(t *testing.T) {
	p := MustNew(0.25, 1, 0.5)
	s := p.SortedDesc()
	want := Profile{1, 0.5, 0.25}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("SortedDesc = %v, want %v", s, want)
		}
	}
	if p[0] != 0.25 {
		t.Fatal("SortedDesc mutated receiver")
	}
	if p.IsSortedDesc() {
		t.Fatal("unsorted profile reported sorted")
	}
	if !s.IsSortedDesc() {
		t.Fatal("sorted profile reported unsorted")
	}
}

func TestNormalized(t *testing.T) {
	p := MustNew(0.5, 0.25, 0.125)
	q := p.Normalized()
	if !q.IsNormalized() {
		t.Fatalf("Normalized() = %v not normalized", q)
	}
	if q[0] != 1 || q[1] != 0.5 || q[2] != 0.25 {
		t.Fatalf("Normalized() = %v, relative speeds changed", q)
	}
	if p.IsNormalized() {
		t.Fatal("original profile misreported as normalized")
	}
}

func TestFastestSlowest(t *testing.T) {
	p := MustNew(0.5, 1, 0.25, 0.25)
	if p.Slowest() != 1 || p.Fastest() != 0.25 {
		t.Fatalf("Slowest/Fastest = %v/%v", p.Slowest(), p.Fastest())
	}
	if got := p.SlowestIndex(); got != 1 {
		t.Fatalf("SlowestIndex = %d, want 1", got)
	}
	// Ties broken toward the larger index (§3.2.2 tie-breaking rule).
	if got := p.FastestIndex(); got != 3 {
		t.Fatalf("FastestIndex = %d, want 3 (larger index on tie)", got)
	}
}

func TestPermuted(t *testing.T) {
	p := MustNew(1, 0.5, 0.25)
	q := p.Permuted([]int{2, 0, 1})
	want := Profile{0.25, 1, 0.5}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("Permuted = %v, want %v", q, want)
		}
	}
}

func TestPermutedPanicsOnBadPerm(t *testing.T) {
	p := MustNew(1, 0.5)
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Permuted(%v) did not panic", perm)
				}
			}()
			p.Permuted(perm)
		}()
	}
}

func TestSpeedUpAdditive(t *testing.T) {
	p := MustNew(1, 0.5, 1.0/3, 0.25)
	q, err := p.SpeedUpAdditive(3, 1.0/16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[3]-3.0/16) > 1e-15 {
		t.Fatalf("sped-up ρ4 = %v, want 3/16", q[3])
	}
	if p[3] != 0.25 {
		t.Fatal("SpeedUpAdditive mutated receiver")
	}
	if _, err := p.SpeedUpAdditive(3, 0.25); err == nil {
		t.Fatal("φ = ρ accepted; must require φ < ρ")
	}
	if _, err := p.SpeedUpAdditive(9, 0.1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := p.SpeedUpAdditive(0, 0); err == nil {
		t.Fatal("zero φ accepted")
	}
}

func TestSpeedUpMultiplicative(t *testing.T) {
	p := MustNew(1, 1, 1, 1)
	q, err := p.SpeedUpMultiplicative(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q[3] != 0.5 {
		t.Fatalf("sped-up ρ4 = %v, want 0.5", q[3])
	}
	for _, psi := range []float64{0, 1, 1.5, -0.5} {
		if _, err := p.SpeedUpMultiplicative(0, psi); err == nil {
			t.Fatalf("ψ = %v accepted", psi)
		}
	}
}

func TestMinorizes(t *testing.T) {
	cases := []struct {
		name string
		p, q Profile
		want bool
	}{
		{"strictly faster everywhere", MustNew(0.5, 0.25), MustNew(1, 0.5), true},
		{"faster in one spot", MustNew(1, 0.25), MustNew(1, 0.5), true},
		{"equal", MustNew(1, 0.5), MustNew(1, 0.5), false},
		{"incomparable", MustNew(0.99, 0.02), MustNew(0.5, 0.5), false},
		{"slower", MustNew(1, 0.5), MustNew(0.5, 0.25), false},
		{"length mismatch", MustNew(1), MustNew(1, 0.5), false},
		{"order irrelevant", MustNew(0.25, 0.5), MustNew(1, 0.5), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Minorizes(tc.p, tc.q); got != tc.want {
				t.Fatalf("Minorizes(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestStringNotation(t *testing.T) {
	s := MustNew(1, 0.5).String()
	if !strings.HasPrefix(s, "⟨") || !strings.HasSuffix(s, "⟩") || !strings.Contains(s, "0.5") {
		t.Fatalf("String() = %q", s)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	p := MustNew(1, 0.5, 0.25)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Profile
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if len(q) != 3 || q[2] != 0.25 {
		t.Fatalf("roundtrip = %v", q)
	}
}

func TestJSONUnmarshalValidates(t *testing.T) {
	var p Profile
	if err := json.Unmarshal([]byte(`[1, -0.5]`), &p); err == nil {
		t.Fatal("invalid profile accepted from JSON")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := MustNew(1, 0.5)
	q := p.Clone()
	q[0] = 0.9
	if p[0] != 1 {
		t.Fatal("Clone aliased storage")
	}
}

func TestDescribeDelegation(t *testing.T) {
	p := MustNew(1, 0.5)
	d := p.Describe()
	if d.N != 2 || math.Abs(d.Mean-0.75) > 1e-15 {
		t.Fatalf("Describe = %+v", d)
	}
}

func TestMeanVarianceAgainstFormulas(t *testing.T) {
	r := stats.NewRNG(4)
	for trial := 0; trial < 100; trial++ {
		p := RandomNormalized(r, 1+r.Intn(12))
		n := float64(len(p))
		var s1, s2 float64
		for _, x := range p {
			s1 += x
			s2 += x * x
		}
		if math.Abs(p.Mean()-s1/n) > 1e-12 {
			t.Fatalf("Mean mismatch for %v", p)
		}
		if math.Abs(p.Variance()-(s2/n-(s1/n)*(s1/n))) > 1e-12 {
			t.Fatalf("Variance mismatch for %v", p)
		}
	}
}

func TestPowerSums(t *testing.T) {
	p := MustNew(1, 0.5)
	s := p.PowerSums(3)
	want := []float64{2, 1.5, 1.25, 1.125}
	for k := range want {
		if math.Abs(s[k]-want[k]) > 1e-15 {
			t.Fatalf("S_%d = %v, want %v", k, s[k], want[k])
		}
	}
}

func TestPowerSumsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative order accepted")
		}
	}()
	MustNew(1).PowerSums(-1)
}
