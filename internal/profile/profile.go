// Package profile implements heterogeneity profiles P = ⟨ρ1,…,ρn⟩, the
// object the whole paper revolves around: ρi is the time computer Ci needs
// to complete one unit of work (smaller is faster).
//
// The paper's conventions (§1.1):
//   - computers are power-indexed so that ρ1 ≥ ρ2 ≥ … ≥ ρn (C1 slowest,
//     Cn fastest);
//   - profiles are normalized so the slowest computer has ρ1 = 1 — except
//     where the HECR calibration of §2.4 deliberately relaxes this and
//     allows every ρ ≤ 1.
//
// The package also provides the profile statistics used in §4 (mean,
// variance per eq. (7), geometric mean) and the elementary symmetric
// functions F_k of Table 5, plus the random-profile generators behind the
// §4.3 simulation study.
package profile

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Profile is a heterogeneity profile: the i-th entry is ρ_{i+1}, the
// per-work-unit time of one computer. Order is meaningful to worksharing
// schedules (it fixes the startup indexing) but, per Theorem 1.2, never
// affects work production.
type Profile []float64

// New validates the ρ-values and returns them as a Profile. Every value
// must be finite and strictly positive; values above 1 are rejected because
// the paper normalizes the slowest computer to ρ = 1 and every measure in
// this package assumes ρ ∈ (0, 1].
func New(rhos ...float64) (Profile, error) {
	if len(rhos) == 0 {
		return nil, fmt.Errorf("profile: a cluster needs at least one computer")
	}
	for i, r := range rhos {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("profile: ρ[%d] = %v is not finite", i, r)
		}
		if r <= 0 {
			return nil, fmt.Errorf("profile: ρ[%d] = %v must be positive", i, r)
		}
		if r > 1 {
			return nil, fmt.Errorf("profile: ρ[%d] = %v exceeds 1; normalize so the slowest computer has ρ = 1", i, r)
		}
	}
	p := make(Profile, len(rhos))
	copy(p, rhos)
	return p, nil
}

// MustNew is New for programmatically-correct literals; it panics on error.
func MustNew(rhos ...float64) Profile {
	p, err := New(rhos...)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of computers n.
func (p Profile) Len() int { return len(p) }

// Clone returns an independent copy.
func (p Profile) Clone() Profile {
	q := make(Profile, len(p))
	copy(q, p)
	return q
}

// SortedDesc returns a copy ordered by the paper's power indexing:
// nonincreasing ρ (slowest first, fastest last).
func (p Profile) SortedDesc() Profile {
	q := p.Clone()
	sort.Sort(sort.Reverse(sort.Float64Slice(q)))
	return q
}

// IsSortedDesc reports whether p already follows the power indexing.
func (p Profile) IsSortedDesc() bool {
	return sort.IsSorted(sort.Reverse(sort.Float64Slice(p)))
}

// Normalized returns a copy rescaled so the slowest computer has ρ = 1
// (divides by the maximum). The relative speeds — all the paper's measures
// care about, up to the choice of time unit — are unchanged.
func (p Profile) Normalized() Profile {
	q := p.Clone()
	m := q.Slowest()
	if m == 0 {
		return q
	}
	for i := range q {
		q[i] /= m
	}
	return q
}

// IsNormalized reports whether the slowest computer has ρ = 1.
func (p Profile) IsNormalized() bool { return p.Slowest() == 1 }

// Slowest returns max ρ (the ρ-value of the slowest computer), 0 if empty.
func (p Profile) Slowest() float64 {
	m := 0.0
	for _, r := range p {
		if r > m {
			m = r
		}
	}
	return m
}

// Fastest returns min ρ (the ρ-value of the fastest computer), 0 if empty.
func (p Profile) Fastest() float64 {
	if len(p) == 0 {
		return 0
	}
	m := p[0]
	for _, r := range p[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// FastestIndex returns the index of the fastest computer (smallest ρ,
// largest index on ties, matching the paper's tie-breaking rule of §3.2.2).
func (p Profile) FastestIndex() int {
	best := 0
	for i, r := range p {
		if r <= p[best] {
			best = i
		}
	}
	return best
}

// SlowestIndex returns the index of the slowest computer (largest ρ,
// largest index on ties).
func (p Profile) SlowestIndex() int {
	best := 0
	for i, r := range p {
		if r >= p[best] {
			best = i
		}
	}
	return best
}

// Permuted returns the profile reordered so entry i is p[perm[i]].
// It panics if perm is not a permutation of [0,n).
func (p Profile) Permuted(perm []int) Profile {
	if len(perm) != len(p) {
		panic("profile: permutation length mismatch")
	}
	seen := make([]bool, len(p))
	q := make(Profile, len(p))
	for i, j := range perm {
		if j < 0 || j >= len(p) || seen[j] {
			panic("profile: not a permutation")
		}
		seen[j] = true
		q[i] = p[j]
	}
	return q
}

// SpeedUpAdditive returns a copy with computer i sped up by the additive
// term φ: ρi ← ρi − φ (§3.2.1). It errors if the result would be
// non-positive, mirroring the paper's requirement φ < ρn.
func (p Profile) SpeedUpAdditive(i int, phi float64) (Profile, error) {
	if i < 0 || i >= len(p) {
		return nil, fmt.Errorf("profile: computer index %d out of range [0,%d)", i, len(p))
	}
	if !(phi > 0) {
		return nil, fmt.Errorf("profile: additive speedup term φ = %v must be positive", phi)
	}
	if phi >= p[i] {
		return nil, fmt.Errorf("profile: additive speedup φ = %v would drive ρ[%d] = %v to zero or below", phi, i, p[i])
	}
	q := p.Clone()
	q[i] -= phi
	return q, nil
}

// SpeedUpMultiplicative returns a copy with computer i sped up by the
// multiplicative factor ψ ∈ (0,1): ρi ← ψρi (§3.2.2).
func (p Profile) SpeedUpMultiplicative(i int, psi float64) (Profile, error) {
	if i < 0 || i >= len(p) {
		return nil, fmt.Errorf("profile: computer index %d out of range [0,%d)", i, len(p))
	}
	if !(psi > 0) || psi >= 1 {
		return nil, fmt.Errorf("profile: multiplicative speedup factor ψ = %v must be in (0,1)", psi)
	}
	q := p.Clone()
	q[i] *= psi
	return q, nil
}

// Minorizes reports whether p minorizes q in the sense of §4: same length,
// p[i] ≤ q[i] for every i and p[i] < q[i] for at least one i, after both
// are power-indexed. By Proposition 2, minorization implies p's cluster
// outperforms q's.
func Minorizes(p, q Profile) bool {
	if len(p) != len(q) || len(p) == 0 {
		return false
	}
	ps, qs := p.SortedDesc(), q.SortedDesc()
	strict := false
	for i := range ps {
		if ps[i] > qs[i] {
			return false
		}
		if ps[i] < qs[i] {
			strict = true
		}
	}
	return strict
}

// String renders the profile in the paper's angle-bracket notation.
func (p Profile) String() string {
	parts := make([]string, len(p))
	for i, r := range p {
		parts[i] = fmt.Sprintf("%.6g", r)
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// MarshalJSON encodes the profile as a plain JSON array.
func (p Profile) MarshalJSON() ([]byte, error) { return json.Marshal([]float64(p)) }

// UnmarshalJSON decodes and validates a JSON array of ρ-values.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var raw []float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	q, err := New(raw...)
	if err != nil {
		return err
	}
	*p = q
	return nil
}
