package profile

import (
	"fmt"
	"math"

	"hetero/internal/stats"
)

// rhoFloor keeps generated ρ-values strictly positive and away from the
// degenerate "infinitely fast computer" corner, where the model's measures
// lose meaning (and floating point loses digits).
const rhoFloor = 1e-3

// Linear returns the paper's cluster C1 of §2.5:
// P1⁽ⁿ⁾ = ⟨1 − (i−1)/n⟩ for i = 1..n — speeds spread evenly over [1/n, 1].
func Linear(n int) Profile {
	mustPositive(n)
	p := make(Profile, n)
	for i := 1; i <= n; i++ {
		p[i-1] = 1 - float64(i-1)/float64(n)
	}
	return p
}

// Harmonic returns the paper's cluster C2 of §2.5:
// P2⁽ⁿ⁾ = ⟨1/i⟩ for i = 1..n — speeds weighted into the fast half of the
// range.
func Harmonic(n int) Profile {
	mustPositive(n)
	p := make(Profile, n)
	for i := 1; i <= n; i++ {
		p[i-1] = 1 / float64(i)
	}
	return p
}

// Homogeneous returns the profile P⁽ρ⁾ = ⟨ρ,…,ρ⟩ of n identical computers
// (§2.4's calibration clusters).
func Homogeneous(n int, rho float64) Profile {
	mustPositive(n)
	if !(rho > 0) || rho > 1 {
		panic(fmt.Sprintf("profile: homogeneous ρ = %v outside (0,1]", rho))
	}
	p := make(Profile, n)
	for i := range p {
		p[i] = rho
	}
	return p
}

// Geometric returns the profile ⟨1, g, g², …, g^{n-1}⟩ with ratio g ∈ (0,1):
// each computer is a constant factor faster than the previous one. Used by
// the extension studies as a "multiplicatively heterogeneous" family.
func Geometric(n int, g float64) Profile {
	mustPositive(n)
	if !(g > 0) || g >= 1 {
		panic(fmt.Sprintf("profile: geometric ratio %v outside (0,1)", g))
	}
	p := make(Profile, n)
	v := 1.0
	for i := range p {
		if v < rhoFloor {
			v = rhoFloor
		}
		p[i] = v
		v *= g
	}
	return p
}

// Zipf returns the profile ⟨1, 2⁻ˢ, 3⁻ˢ, …, n⁻ˢ⟩ (floored at the package's
// ρ floor): computer i is iˢ× faster than the slowest. Volunteer fleets
// and device populations are classically Zipf-like in capability; s = 1
// recovers the paper's harmonic cluster C2, s = 0 a homogeneous one.
func Zipf(n int, s float64) Profile {
	mustPositive(n)
	if s < 0 {
		panic(fmt.Sprintf("profile: Zipf exponent %v must be non-negative", s))
	}
	p := make(Profile, n)
	for i := 1; i <= n; i++ {
		v := math.Pow(float64(i), -s)
		if v < rhoFloor {
			v = rhoFloor
		}
		p[i-1] = v
	}
	return p
}

// RandomNormalized returns n ρ-values drawn i.i.d. uniform on (rhoFloor, 1]
// and rescaled so the slowest computer has ρ = 1 (the paper's normalizing
// convention).
func RandomNormalized(r *stats.RNG, n int) Profile {
	mustPositive(n)
	p := make(Profile, n)
	for i := range p {
		p[i] = r.InRange(rhoFloor, 1)
	}
	return p.Normalized()
}

// SpreadAround returns an n-computer profile whose arithmetic mean is
// exactly mean and whose dispersion is controlled by frac ∈ [0,1]: 0 gives
// a homogeneous profile, 1 the widest mean-preserving uniform spread that
// keeps every ρ inside [rhoFloor, 1]. This is the "mean-preserving spread"
// family used to build the equal-mean cluster pairs of the §4.3 study.
func SpreadAround(r *stats.RNG, n int, mean, frac float64) (Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profile: cluster size %d must be positive", n)
	}
	if !(mean > rhoFloor) || mean > 1 {
		return nil, fmt.Errorf("profile: mean %v outside (%v, 1]", mean, rhoFloor)
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("profile: spread fraction %v outside [0,1]", frac)
	}
	u := make([]float64, n)
	var sum stats.KahanSum
	for i := range u {
		u[i] = r.Float64()
		sum.Add(u[i])
	}
	ubar := sum.Sum() / float64(n)
	// Largest scale s keeping mean + s·(uᵢ−ū) within [rhoFloor, 1] for all i.
	smax := 0.0
	first := true
	for _, ui := range u {
		v := ui - ubar
		var limit float64
		switch {
		case v > 0:
			limit = (1 - mean) / v
		case v < 0:
			limit = (mean - rhoFloor) / -v
		default:
			continue
		}
		if first || limit < smax {
			smax = limit
			first = false
		}
	}
	p := make(Profile, n)
	s := frac * smax
	for i := range p {
		p[i] = mean + s*(u[i]-ubar)
	}
	return p, nil
}

// TwoPoint returns an n-computer profile with mean exactly m: ⌊n/2⌋
// computers at m+d, ⌊n/2⌋ at m−d, and (odd n) one at m. Bimodal profiles
// reach variances up to d² ≤ min(m−rhoFloor, 1−m)², which is what makes the
// large variance gaps of the paper's θ = 0.167 threshold attainable at all
// (no unimodal family on (0,1] gets past 1/12 ≈ 0.083).
func TwoPoint(n int, m, d float64) (Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profile: cluster size %d must be positive", n)
	}
	if !(m > rhoFloor) || m > 1 {
		return nil, fmt.Errorf("profile: mean %v outside (%v, 1]", m, rhoFloor)
	}
	if d < 0 || m-d < rhoFloor || m+d > 1 {
		return nil, fmt.Errorf("profile: two-point offset %v pushes values outside [%v, 1] around mean %v", d, rhoFloor, m)
	}
	p := make(Profile, n)
	for i := 0; i < n/2; i++ {
		p[i] = m + d
		p[n-1-i] = m - d
	}
	if n%2 == 1 {
		p[n/2] = m
	}
	return p, nil
}

// MaxTwoPointOffset returns the largest admissible d for TwoPoint at mean m.
func MaxTwoPointOffset(m float64) float64 {
	lo := m - rhoFloor
	hi := 1 - m
	if lo < hi {
		return lo
	}
	return hi
}

// SkewedTwoPoint returns an n-computer profile with mean exactly m and
// variance exactly d², but with an asymmetric split: k computers sit at the
// high (slow) value m + d·√((n−k)/k) and n−k at the low (fast) value
// m − d·√(k/(n−k)). Varying k at fixed (m, d) changes the profile's
// skewness without touching its first two moments — exactly the degree of
// freedom that makes variance an imperfect power predictor (§4.3): pairs
// with matching mean and variance but different k can rank either way
// under the X-measure.
func SkewedTwoPoint(n int, m, d float64, k int) (Profile, error) {
	if n < 2 {
		return nil, fmt.Errorf("profile: skewed two-point needs n ≥ 2, got %d", n)
	}
	if k < 1 || k > n-1 {
		return nil, fmt.Errorf("profile: high-side count k = %d outside [1, %d]", k, n-1)
	}
	if !(m > rhoFloor) || m > 1 {
		return nil, fmt.Errorf("profile: mean %v outside (%v, 1]", m, rhoFloor)
	}
	if d < 0 {
		return nil, fmt.Errorf("profile: offset %v must be non-negative", d)
	}
	ratio := float64(n-k) / float64(k)
	hiVal := m + d*math.Sqrt(ratio)
	loVal := m - d*math.Sqrt(1/ratio)
	if hiVal > 1 || loVal < rhoFloor {
		return nil, fmt.Errorf("profile: skewed two-point values [%v, %v] leave [%v, 1] (m=%v d=%v k=%d/%d)", loVal, hiVal, rhoFloor, m, d, k, n)
	}
	p := make(Profile, n)
	for i := 0; i < k; i++ {
		p[i] = hiVal
	}
	for i := k; i < n; i++ {
		p[i] = loVal
	}
	return p, nil
}

// MaxSkewedOffset returns the largest admissible d for SkewedTwoPoint at
// mean m with high-side count k out of n.
func MaxSkewedOffset(n, k int, m float64) float64 {
	ratio := float64(n-k) / float64(k)
	hi := (1 - m) / math.Sqrt(ratio)
	lo := (m - rhoFloor) * math.Sqrt(ratio)
	if lo < hi {
		return lo
	}
	return hi
}

// EqualMeanPair draws a pair of n-computer profiles with identical
// arithmetic mean speed and (almost surely) different variances — the trial
// generator for the §4.3 variance-predictor experiment. See DESIGN.md §5
// for why this substitutes for the companion paper's (unavailable)
// generator.
//
// Half the pairs are "easy": the two members come from independent families
// (mean-preserving spreads and two-point mixtures) and typically have very
// different variances, where the variance heuristic is nearly always right.
// The other half are "hard": both members are skewed two-point profiles
// with closely matched variances but different skewness — the regime in
// which §4.3's "bad pairs" live, since the X-measure then turns on moments
// that variance cannot see.
func EqualMeanPair(r *stats.RNG, n int) (p1, p2 Profile, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("profile: cluster size %d must be positive", n)
	}
	const maxAttempts = 100
	for attempt := 0; attempt < maxAttempts; attempt++ {
		m := r.InRange(0.2, 0.8)
		if n >= 3 && r.Intn(2) == 0 {
			p1, p2, err = drawHardPair(r, n, m)
		} else {
			p1, err = drawEasyMember(r, n, m)
			if err == nil {
				p2, err = drawEasyMember(r, n, m)
			}
		}
		if err != nil {
			return nil, nil, err
		}
		if p1.Variance() != p2.Variance() {
			return p1, p2, nil
		}
	}
	return nil, nil, fmt.Errorf("profile: could not draw unequal variances in %d attempts", maxAttempts)
}

func drawEasyMember(r *stats.RNG, n int, m float64) (Profile, error) {
	if r.Intn(2) == 0 {
		return SpreadAround(r, n, m, r.Float64())
	}
	return TwoPoint(n, m, r.Float64()*MaxTwoPointOffset(m))
}

// drawHardPair builds two skewed two-point profiles with the same mean,
// nearly equal variances (within ±5%), and independently random skews.
func drawHardPair(r *stats.RNG, n int, m float64) (Profile, Profile, error) {
	k1 := 1 + r.Intn(n-1)
	k2 := 1 + r.Intn(n-1)
	dmax := MaxSkewedOffset(n, k1, m)
	if d2 := MaxSkewedOffset(n, k2, m); d2 < dmax {
		dmax = d2
	}
	d := r.InRange(0.05, 0.95) * dmax
	d1 := d * (1 + r.InRange(-0.05, 0.05))
	d2 := d * (1 + r.InRange(-0.05, 0.05))
	p1, err := SkewedTwoPoint(n, m, d1, k1)
	if err != nil {
		return nil, nil, err
	}
	p2, err := SkewedTwoPoint(n, m, d2, k2)
	if err != nil {
		return nil, nil, err
	}
	return p1, p2, nil
}

func mustPositive(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("profile: cluster size %d must be positive", n))
	}
}
