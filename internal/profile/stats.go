package profile

import (
	"hetero/internal/stats"
)

// Mean returns the arithmetic mean speed of the profile,
// ARITH-MEAN(P) = F₁⁽ⁿ⁾/n (§4.2).
func (p Profile) Mean() float64 { return stats.Mean(p) }

// Variance returns the population variance of the ρ-values per the paper's
// eq. (7): VAR(P) = (1/n)Σρᵢ² − ((1/n)Σρᵢ)².
func (p Profile) Variance() float64 { return stats.Variance(p) }

// GeoMean returns the geometric mean, GEO-MEAN(P) = (Fₙ⁽ⁿ⁾)^{1/n} (§4.2).
func (p Profile) GeoMean() float64 { return stats.GeoMean(p) }

// Describe returns the full descriptive statistics of the ρ-values,
// including the higher standardized moments used by the moment-predictor
// extension study.
func (p Profile) Describe() stats.Describe { return stats.DescribeSample(p) }

// PowerSums returns the power sums S_k = Σᵢ ρᵢᵏ for k = 0..kmax.
// S₂ links variance and F₂ via the paper's eqs. (7)–(8).
func (p Profile) PowerSums(kmax int) []float64 {
	if kmax < 0 {
		panic("profile: negative power-sum order")
	}
	sums := make([]float64, kmax+1)
	sums[0] = float64(len(p))
	for k := 1; k <= kmax; k++ {
		var acc stats.KahanSum
		for _, r := range p {
			pow := 1.0
			for j := 0; j < k; j++ {
				pow *= r
			}
			acc.Add(pow)
		}
		sums[k] = acc.Sum()
	}
	return sums
}
