package profile_test

import (
	"fmt"

	"hetero/internal/profile"
)

// ExampleLinear builds the paper's §2.5 sample cluster C1 for n = 8.
func ExampleLinear() {
	fmt.Println(profile.Linear(4))
	// Output: ⟨1, 0.75, 0.5, 0.25⟩
}

// ExampleHarmonic builds the paper's §2.5 sample cluster C2.
func ExampleHarmonic() {
	fmt.Println(profile.Harmonic(4))
	// Output: ⟨1, 0.5, 0.333333, 0.25⟩
}

// ExampleProfile_Variance evaluates eq. (7) of the paper.
func ExampleProfile_Variance() {
	p := profile.MustNew(0.9, 0.1)
	fmt.Printf("mean %.2f, VAR %.2f\n", p.Mean(), p.Variance())
	// Output: mean 0.50, VAR 0.16
}

// ExampleProfile_ElementarySymmetric lists the symmetric functions of
// Table 5 for a 3-computer profile.
func ExampleProfile_ElementarySymmetric() {
	p := profile.MustNew(1, 0.5, 0.25)
	e := p.ElementarySymmetric()
	fmt.Printf("F0=%.3f F1=%.3f F2=%.3f F3=%.3f\n", e[0], e[1], e[2], e[3])
	// Output: F0=1.000 F1=1.750 F2=0.875 F3=0.125
}

// ExampleMinorizes checks the §4 sufficient condition for outperformance.
func ExampleMinorizes() {
	faster := profile.MustNew(0.5, 0.25)
	slower := profile.MustNew(1, 0.5)
	fmt.Println(profile.Minorizes(faster, slower))
	// Output: true
}
