package profile

import (
	"math"
	"testing"

	"hetero/internal/stats"
)

func TestElementarySymmetricTable5(t *testing.T) {
	// Table 5 of the paper, n = 3, with (a,b,c) = (1, 0.5, 0.25).
	a, b, c := 1.0, 0.5, 0.25
	p := MustNew(a, b, c)
	e := p.ElementarySymmetric()
	want := []float64{
		1,
		a + b + c,
		a*b + a*c + b*c,
		a * b * c,
	}
	for k := range want {
		if math.Abs(e[k]-want[k]) > 1e-15 {
			t.Fatalf("F_%d = %v, want %v", k, e[k], want[k])
		}
	}
}

func TestElementarySymmetricTable5N4(t *testing.T) {
	rho := []float64{0.9, 0.7, 0.4, 0.1}
	p := MustNew(rho...)
	e := p.ElementarySymmetric()
	// Brute-force F_2 and F_3 per Table 5's n = 4 rows.
	var f2, f3 float64
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			f2 += rho[i] * rho[j]
			for k := j + 1; k < 4; k++ {
				f3 += rho[i] * rho[j] * rho[k]
			}
		}
	}
	if math.Abs(e[2]-f2) > 1e-15 || math.Abs(e[3]-f3) > 1e-15 {
		t.Fatalf("F2/F3 = %v/%v, want %v/%v", e[2], e[3], f2, f3)
	}
	if math.Abs(e[4]-0.9*0.7*0.4*0.1) > 1e-16 {
		t.Fatalf("F4 = %v", e[4])
	}
}

func TestSymmetricFunctionIsSymmetric(t *testing.T) {
	// F_k must be invariant under any reordering of the profile — the
	// defining property of §4.1.
	r := stats.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(10)
		p := RandomNormalized(r, n)
		q := p.Permuted(r.Perm(n))
		ep, eq := p.ElementarySymmetric(), q.ElementarySymmetric()
		for k := range ep {
			if math.Abs(ep[k]-eq[k]) > 1e-12*math.Max(1, math.Abs(ep[k])) {
				t.Fatalf("F_%d changed under permutation: %v vs %v", k, ep[k], eq[k])
			}
		}
	}
}

func TestNewtonIdentities(t *testing.T) {
	r := stats.NewRNG(23)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(8)
		p := RandomNormalized(r, n)
		for k := 1; k <= n; k++ {
			if res := p.NewtonIdentityResidual(k); math.Abs(res) > 1e-10 {
				t.Fatalf("Newton identity %d residual %v for %v", k, res, p)
			}
		}
	}
}

func TestEq8LinksF2AndPowerSums(t *testing.T) {
	// Paper eq. (8): F₂ = ((F₁)² − Σρ²)/2.
	r := stats.NewRNG(29)
	for trial := 0; trial < 50; trial++ {
		p := RandomNormalized(r, 2+r.Intn(10))
		e := p.ElementarySymmetric()
		s := p.PowerSums(2)
		want := (e[1]*e[1] - s[2]) / 2
		if math.Abs(e[2]-want) > 1e-12 {
			t.Fatalf("eq. (8) violated: F2 = %v, want %v for %v", e[2], want, p)
		}
	}
}

func TestSymmetricFunctionSingle(t *testing.T) {
	p := MustNew(1, 0.5)
	if p.SymmetricFunction(0) != 1 {
		t.Fatal("F0 != 1")
	}
	if p.SymmetricFunction(2) != 0.5 {
		t.Fatalf("F2 = %v, want 0.5", p.SymmetricFunction(2))
	}
}

func TestSymmetricFunctionPanics(t *testing.T) {
	p := MustNew(1, 0.5)
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("order %d accepted", k)
				}
			}()
			p.SymmetricFunction(k)
		}()
	}
}

func TestNewtonIdentityResidualPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order 0 accepted")
		}
	}()
	MustNew(1).NewtonIdentityResidual(0)
}

func TestVietaRoundtrip(t *testing.T) {
	// The e_k are the coefficients of Π(x + ρᵢ); evaluating that polynomial
	// at x = −ρᵢ must give zero for every root.
	p := MustNew(0.9, 0.6, 0.3, 0.15)
	e := p.ElementarySymmetric()
	n := len(p)
	for _, root := range p {
		x := -root
		// Σ_k e_k x^{n-k}
		val := 0.0
		pow := 1.0
		for k := n; k >= 0; k-- {
			val += e[k] * pow
			pow *= x
		}
		if math.Abs(val) > 1e-12 {
			t.Fatalf("Π(x+ρ) at x=-%v is %v, want 0", root, val)
		}
	}
}
