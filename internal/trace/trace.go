// Package trace exports worksharing schedules and simulation runs in the
// Chrome trace-event JSON format, viewable in chrome://tracing or Perfetto
// (ui.perfetto.dev). Each cluster computer becomes a "thread", the shared
// channel a dedicated track, and every model phase (receive, unpack,
// compute, pack, return) a complete event — turning the paper's Figure 2
// into an interactive timeline for any cluster.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"hetero/internal/schedule"
	"hetero/internal/sim"
)

// event is one Chrome trace "complete" (ph=X) event. Times and durations
// are in microseconds per the format; we map one model time unit to 1 µs
// scaled by the exporter's Scale.
type event struct {
	Name     string            `json:"name"`
	Category string            `json:"cat"`
	Phase    string            `json:"ph"`
	TS       float64           `json:"ts"`
	Dur      float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

// metadata names processes/threads in the viewer.
type metadata struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

// Exporter writes trace JSON. Scale multiplies model time units into the
// trace's microsecond timestamps (use 1 for µs-granularity models, 1e6 to
// view second-granularity schedules comfortably); 0 selects 1e6.
type Exporter struct {
	Scale float64
}

const channelTID = 0 // channel gets thread 0; computer i gets tid i+1

// WriteSchedule exports an analytic schedule.
func (e Exporter) WriteSchedule(w io.Writer, s *schedule.Schedule) error {
	scale := e.scale()
	var events []interface{}
	events = append(events, metadata{
		Name: "thread_name", Phase: "M", PID: 1, TID: channelTID,
		Args: map[string]string{"name": "shared channel"},
	})
	for _, seg := range s.ChannelBusy {
		events = append(events, event{
			Name: seg.Kind.String(), Category: "channel", Phase: "X",
			TS: seg.Start * scale, Dur: seg.Duration() * scale,
			PID: 1, TID: channelTID,
		})
	}
	for i, c := range s.Computers {
		events = append(events, metadata{
			Name: "thread_name", Phase: "M", PID: 1, TID: i + 1,
			Args: map[string]string{"name": fmt.Sprintf("C%d (ρ=%.4g)", i+1, c.Rho)},
		})
		for _, seg := range c.Segments {
			if seg.Kind == schedule.SegWait || seg.Duration() == 0 {
				continue
			}
			events = append(events, event{
				Name: seg.Kind.String(), Category: "computer", Phase: "X",
				TS: seg.Start * scale, Dur: seg.Duration() * scale,
				PID: 1, TID: i + 1,
				Args: map[string]string{"work": fmt.Sprintf("%.6g", c.Work)},
			})
		}
	}
	return json.NewEncoder(w).Encode(map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// WriteSimResult exports a simulated run (coarser than a schedule: one busy
// block per computer plus the channel occupations implied by the trace).
func (e Exporter) WriteSimResult(w io.Writer, r sim.Result) error {
	scale := e.scale()
	var events []interface{}
	events = append(events, metadata{
		Name: "thread_name", Phase: "M", PID: 1, TID: channelTID,
		Args: map[string]string{"name": "shared channel"},
	})
	for k, c := range r.Computers {
		tid := k + 1
		events = append(events, metadata{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": fmt.Sprintf("C%d (ρ=%.4g)", c.ID+1, c.Rho)},
		})
		spans := []struct {
			name       string
			start, end float64
			tid        int
		}{
			{"recv", c.RecvStart, c.RecvEnd, channelTID},
			{"busy", c.RecvEnd, c.BusyEnd, tid},
			{"return", c.ReturnStart, c.ResultsAt, channelTID},
		}
		for _, sp := range spans {
			if sp.end <= sp.start {
				continue
			}
			events = append(events, event{
				Name: sp.name, Category: "sim", Phase: "X",
				TS: sp.start * scale, Dur: (sp.end - sp.start) * scale,
				PID: 1, TID: sp.tid,
				Args: map[string]string{"work": fmt.Sprintf("%.6g", c.Work)},
			})
		}
	}
	return json.NewEncoder(w).Encode(map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

func (e Exporter) scale() float64 {
	if e.Scale > 0 {
		return e.Scale
	}
	return 1e6
}
