package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/sim"
)

func decodeTrace(t *testing.T, data []byte) []map[string]interface{} {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	return doc.TraceEvents
}

func TestWriteSchedule(t *testing.T) {
	m := model.Table1()
	s, err := schedule.BuildFIFO(m, profile.MustNew(1, 0.5, 0.25), 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (Exporter{}).WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	// 4 thread_name metadata (channel + 3 computers), 6 channel busy
	// segments, and 5 phases × 3 computers.
	var meta, channel, computer int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			switch ev["cat"] {
			case "channel":
				channel++
			case "computer":
				computer++
			}
		}
	}
	if meta != 4 {
		t.Fatalf("metadata events = %d, want 4", meta)
	}
	if channel != 6 {
		t.Fatalf("channel events = %d, want 6 (3 sends + 3 returns)", channel)
	}
	if computer != 15 {
		t.Fatalf("computer events = %d, want 15 (5 phases × 3)", computer)
	}
	if !strings.Contains(buf.String(), "shared channel") {
		t.Fatal("channel track unnamed")
	}
}

func TestWriteScheduleDurationsPositive(t *testing.T) {
	m := model.Table1()
	s, err := schedule.BuildFIFO(m, profile.MustNew(1, 0.5), 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (Exporter{Scale: 1}).WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTrace(t, buf.Bytes()) {
		if ev["ph"] != "X" {
			continue
		}
		if dur := ev["dur"].(float64); dur <= 0 {
			t.Fatalf("non-positive duration event: %v", ev)
		}
		if ts := ev["ts"].(float64); ts < 0 {
			t.Fatalf("negative timestamp: %v", ev)
		}
	}
}

func TestWriteSimResult(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	proto, err := sim.OptimalFIFO(m, p, 80)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunCEP(m, p, proto, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (Exporter{}).WriteSimResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	spans := 0
	for _, ev := range events {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans != 6 { // recv+busy+return per computer
		t.Fatalf("spans = %d, want 6", spans)
	}
}

func TestExporterScaleDefault(t *testing.T) {
	if (Exporter{}).scale() != 1e6 {
		t.Fatal("default scale")
	}
	if (Exporter{Scale: 2}).scale() != 2 {
		t.Fatal("explicit scale")
	}
}
