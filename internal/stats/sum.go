package stats

import "math"

// KahanSum accumulates float64 values with Neumaier's improved compensated
// summation, which keeps the error independent of the number of addends.
// The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
	n   int
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
	k.n++
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// N returns how many values were accumulated.
func (k *KahanSum) N() int { return k.n }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { *k = KahanSum{} }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Dot returns the compensated dot product of a and b. It panics if the
// lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	var k KahanSum
	for i := range a {
		k.Add(a[i] * b[i])
	}
	return k.Sum()
}

// LogSumProduct returns log(Π xs[i]) computed as Σ log xs[i], for stable
// products of many factors in (0,1). It panics if any factor is non-positive.
func LogSumProduct(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		if x <= 0 {
			panic("stats: LogSumProduct with non-positive factor")
		}
		k.Add(math.Log(x))
	}
	return k.Sum()
}
