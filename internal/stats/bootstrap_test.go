package stats

import "testing"

func TestBootstrapCICoversMean(t *testing.T) {
	r := NewRNG(99)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Norm() + 10
	}
	lo, hi := BootstrapCI(r, xs, Mean, 500, 0.05)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("95%% bootstrap CI [%v,%v] does not cover the sample mean %v", lo, hi, m)
	}
	if hi-lo > 1 {
		t.Fatalf("CI [%v,%v] implausibly wide for n=500", lo, hi)
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	lo, hi := BootstrapCI(NewRNG(1), nil, Mean, 100, 0.05)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty sample CI = [%v,%v]", lo, hi)
	}
}

func TestProportionCI(t *testing.T) {
	lo, hi := ProportionCI(76, 100, 1.96)
	if !(lo < 0.76 && 0.76 < hi) {
		t.Fatalf("CI [%v,%v] does not cover point estimate", lo, hi)
	}
	if lo < 0.6 || hi > 0.9 {
		t.Fatalf("CI [%v,%v] implausibly wide", lo, hi)
	}
}

func TestProportionCIClamps(t *testing.T) {
	lo, _ := ProportionCI(0, 10, 1.96)
	_, hi := ProportionCI(10, 10, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("clamping failed: lo=%v hi=%v", lo, hi)
	}
}

func TestProportionCIZeroN(t *testing.T) {
	lo, hi := ProportionCI(0, 0, 1.96)
	if lo != 0 || hi != 0 {
		t.Fatalf("n=0 CI = [%v,%v]", lo, hi)
	}
}
