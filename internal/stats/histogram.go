package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width bucket histogram over [Lo, Hi). Values outside
// the range are clamped into the first/last bucket so that no observation is
// silently dropped; Underflow/Overflow record how many were clamped.
type Histogram struct {
	Lo, Hi    float64
	Counts    []uint64
	Underflow uint64
	Overflow  uint64
	total     uint64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	if !(hi > lo) {
		panic("stats: NewHistogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	h.total++
	idx := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts))))
	if idx < 0 {
		h.Underflow++
		idx = 0
	} else if idx >= len(h.Counts) {
		h.Overflow++
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns how many observations were recorded.
func (h *Histogram) Total() uint64 { return h.total }

// BucketBounds returns the [lo,hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// String renders the histogram as an ASCII bar chart, one bucket per line.
func (h *Histogram) String() string {
	var maxCount uint64
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const width = 40
	var b strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if maxCount > 0 {
			bar = int(float64(c) / float64(maxCount) * width)
		}
		fmt.Fprintf(&b, "[%8.4f, %8.4f) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}
