package stats

import (
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0.1, 0.3, 0.6, 0.9, 0.95} {
		h.Observe(x)
	}
	want := []uint64{1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(-5)
	h.Observe(7)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("bounds = [%v,%v), want [4,6)", lo, hi)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(0.8)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("render missing bars:\n%s", s)
	}
	if lines := strings.Count(s, "\n"); lines != 2 {
		t.Fatalf("render has %d lines, want 2:\n%s", lines, s)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"buckets", func() { NewHistogram(0, 1, 0) }},
		{"range", func() { NewHistogram(1, 1, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}
