package stats

import "math"

// BootstrapCI estimates a (1-alpha) confidence interval for statistic fn
// over sample xs using the percentile bootstrap with rounds resamples.
// Experiments use it to attach uncertainty to the success percentages
// reported for the §4.3 variance-predictor study.
func BootstrapCI(r *RNG, xs []float64, fn func([]float64) float64, rounds int, alpha float64) (lo, hi float64) {
	if len(xs) == 0 || rounds <= 0 {
		return 0, 0
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for b := 0; b < rounds; b++ {
		for i := range resample {
			resample[i] = xs[r.Intn(len(xs))]
		}
		estimates[b] = fn(resample)
	}
	return Quantile(estimates, alpha/2), Quantile(estimates, 1-alpha/2)
}

// ProportionCI returns a normal-approximation (Wald) confidence interval for
// a success proportion k/n at the given z score (1.96 for 95%). The interval
// is clamped to [0,1].
func ProportionCI(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	p := float64(k) / float64(n)
	se := z * math.Sqrt(p*(1-p)/float64(n))
	lo, hi = p-se, p+se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
