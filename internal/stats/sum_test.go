package stats

import (
	"math"
	"testing"
)

func TestKahanSumExactOnSmallInts(t *testing.T) {
	var k KahanSum
	for i := 1; i <= 1000; i++ {
		k.Add(float64(i))
	}
	if k.Sum() != 500500 {
		t.Fatalf("sum = %v, want 500500", k.Sum())
	}
	if k.N() != 1000 {
		t.Fatalf("N = %d, want 1000", k.N())
	}
}

func TestKahanSumCompensates(t *testing.T) {
	// Classic pathological case: naive summation of 1 + 1e-16 * 1e6 loses
	// every small addend; compensated summation keeps them.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 1000000; i++ {
		k.Add(1e-16)
	}
	got := k.Sum()
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("compensated sum = %.17g, want %.17g", got, want)
	}
}

func TestKahanNeumaierHandlesLargeThenSmall(t *testing.T) {
	// Neumaier's variant (unlike plain Kahan) gets [1e100, 1, -1e100] right
	// up to the representable result.
	var k KahanSum
	for _, x := range []float64{1e100, 1, -1e100} {
		k.Add(x)
	}
	if k.Sum() != 1 {
		t.Fatalf("sum = %v, want 1", k.Sum())
	}
}

func TestKahanReset(t *testing.T) {
	var k KahanSum
	k.Add(5)
	k.Reset()
	if k.Sum() != 0 || k.N() != 0 {
		t.Fatalf("Reset left state: sum=%v n=%d", k.Sum(), k.N())
	}
}

func TestSumEmpty(t *testing.T) {
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) != 0")
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestLogSumProduct(t *testing.T) {
	xs := []float64{0.5, 0.25, 0.125}
	got := LogSumProduct(xs)
	want := math.Log(0.5 * 0.25 * 0.125)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumProduct = %v, want %v", got, want)
	}
}

func TestLogSumProductPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogSumProduct with zero factor did not panic")
		}
	}()
	LogSumProduct([]float64{1, 0})
}
