package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGSeedZeroWellMixed(t *testing.T) {
	r := NewRNG(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 0 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenExcludesZero(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum KahanSum
	for i := 0; i < n; i++ {
		sum.Add(r.Float64())
	}
	mean := sum.Sum() / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 6; v++ {
		if seen[v] < 8000 || seen[v] > 12000 {
			t.Fatalf("Intn(6) value %d appeared %d times out of 60000, badly non-uniform", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit schoolbook multiplication.
		al, ah := a&0xffffffff, a>>32
		bl, bh := b&0xffffffff, b>>32
		t0 := al * bl
		t1 := ah*bl + t0>>32
		t2 := al*bh + t1&0xffffffff
		wantLo := t0&0xffffffff | t2<<32
		wantHi := ah*bh + t1>>32 + t2>>32
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(31)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	d := DescribeSample(xs)
	if math.Abs(d.Mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", d.Mean)
	}
	if math.Abs(d.Variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", d.Variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(11)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	want := Sum(xs)
	r.Shuffle(xs)
	if got := Sum(xs); got != want {
		t.Fatalf("Shuffle changed sum: %v != %v", got, want)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(77)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Fatal("Split stream immediately collided with parent")
	}
}
