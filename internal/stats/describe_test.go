package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescribeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	d := DescribeSample(xs)
	if d.N != 8 {
		t.Fatalf("N = %d", d.N)
	}
	if !approxEq(d.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", d.Mean)
	}
	if !approxEq(d.Variance, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4 (population)", d.Variance)
	}
	if !approxEq(d.StdDev, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", d.StdDev)
	}
	if d.Min != 2 || d.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", d.Min, d.Max)
	}
}

func TestDescribeEmpty(t *testing.T) {
	d := DescribeSample(nil)
	if d.N != 0 || d.Mean != 0 || d.Variance != 0 {
		t.Fatalf("empty sample not zero: %+v", d)
	}
}

func TestDescribeConstantSample(t *testing.T) {
	d := DescribeSample([]float64{3, 3, 3, 3})
	if d.Variance != 0 || d.Skewness != 0 || d.Kurtosis != 0 {
		t.Fatalf("constant sample: %+v", d)
	}
}

func TestVarianceMatchesPaperFormula(t *testing.T) {
	// Paper eq. (7): VAR(P) = (1/n)Σρ² − ((1/n)Σρ)².
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Profiles live in (0,1]; clamp quick's wild values there.
			xs = append(xs, math.Mod(math.Abs(v), 1)+1e-9)
		}
		if len(xs) == 0 {
			return true
		}
		n := float64(len(xs))
		var sq, s KahanSum
		for _, x := range xs {
			sq.Add(x * x)
			s.Add(x)
		}
		want := sq.Sum()/n - (s.Sum()/n)*(s.Sum()/n)
		return approxEq(Variance(xs), want, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !approxEq(got, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestGeoMeanLEArithMean(t *testing.T) {
	// AM–GM inequality holds for all positive samples.
	r := NewRNG(2024)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64Open()
		}
		if GeoMean(xs) > Mean(xs)+1e-12 {
			t.Fatalf("AM-GM violated: geo=%v arith=%v xs=%v", GeoMean(xs), Mean(xs), xs)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q.25 = %v, want 2", got)
	}
	// xs must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Quantile(nil, 0.5) }},
		{"range", func() { Quantile([]float64{1}, 1.5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSkewnessSign(t *testing.T) {
	right := DescribeSample([]float64{1, 1, 1, 1, 10})
	if right.Skewness <= 0 {
		t.Fatalf("right-skewed sample has skewness %v", right.Skewness)
	}
	left := DescribeSample([]float64{-10, 1, 1, 1, 1})
	if left.Skewness >= 0 {
		t.Fatalf("left-skewed sample has skewness %v", left.Skewness)
	}
}
