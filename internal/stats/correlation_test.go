package stats

import (
	"math"
	"testing"
)

func TestPearsonPerfectLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("constant-x correlation = %v, want 0", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty correlation = %v", r)
	}
}

func TestPearsonIndependentNearZero(t *testing.T) {
	rng := NewRNG(7)
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	if r := Pearson(x, y); math.Abs(r) > 0.03 {
		t.Fatalf("independent samples correlate at %v", r)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform preserves ranks exactly.
	x := []float64{0.1, 0.7, 0.3, 0.9, 0.5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(5 * v) // nonlinear but monotone
	}
	if r := Spearman(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", r)
	}
	for i, v := range x {
		y[i] = -math.Exp(5 * v)
	}
	if r := Spearman(x, y); math.Abs(r+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1", r)
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if len(Ranks(nil)) != 0 {
		t.Fatal("empty ranks")
	}
}

func TestSpearmanLessSensitiveToOutliers(t *testing.T) {
	// A wild outlier wrecks Pearson but barely moves Spearman.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 1000}
	p := Pearson(x, y)
	s := Spearman(x, y)
	if !(s > p) || math.Abs(s-1) > 1e-12 {
		t.Fatalf("Spearman %v should be 1 and above Pearson %v", s, p)
	}
}
