package stats

import (
	"math"
	"sort"
)

// Describe summarizes a sample: count, mean, population variance, standard
// deviation, extremes, and higher standardized moments.
type Describe struct {
	N        int
	Mean     float64
	Variance float64 // population variance (divide by N), as in the paper's eq. (7)
	StdDev   float64
	Min      float64
	Max      float64
	Skewness float64 // standardized third moment (0 for symmetric samples)
	Kurtosis float64 // excess kurtosis (0 for a normal sample)
}

// DescribeSample computes descriptive statistics over xs. It returns the
// zero value for an empty sample.
func DescribeSample(xs []float64) Describe {
	d := Describe{N: len(xs)}
	if d.N == 0 {
		return d
	}
	d.Min, d.Max = xs[0], xs[0]
	var sum KahanSum
	for _, x := range xs {
		sum.Add(x)
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
	}
	n := float64(d.N)
	d.Mean = sum.Sum() / n

	var m2, m3, m4 KahanSum
	for _, x := range xs {
		dx := x - d.Mean
		dx2 := dx * dx
		m2.Add(dx2)
		m3.Add(dx2 * dx)
		m4.Add(dx2 * dx2)
	}
	d.Variance = m2.Sum() / n
	d.StdDev = math.Sqrt(d.Variance)
	if d.Variance > 0 {
		d.Skewness = (m3.Sum() / n) / math.Pow(d.Variance, 1.5)
		d.Kurtosis = (m4.Sum()/n)/(d.Variance*d.Variance) - 3
	}
	return d
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, matching the paper's
// eq. (7): (1/n)Σρᵢ² − ((1/n)Σρᵢ)².
func Variance(xs []float64) float64 {
	return DescribeSample(xs).Variance
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return math.Exp(LogSumProduct(xs) / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted; it is not
// modified. It panics for an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile fraction out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
