package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of the paired samples
// x and y. It panics on length mismatch and returns 0 when either sample
// has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy KahanSum
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy.Add(dx * dy)
		sxx.Add(dx * dx)
		syy.Add(dy * dy)
	}
	den := sxx.Sum() * syy.Sum()
	if den <= 0 {
		return 0
	}
	return sxy.Sum() / math.Sqrt(den)
}

// Spearman returns the Spearman rank correlation of the paired samples:
// Pearson correlation of their rank vectors, with average ranks for ties.
// A predictor whose score has Spearman ≈ ±1 against the X-measure ranks
// clusters (almost) perfectly even when its absolute calibration is off.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Spearman length mismatch %d vs %d", len(x), len(y)))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of xs with ties assigned their average
// rank (the standard fractional ranking).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
