// Package stats is a small, dependency-free numerics substrate used by the
// rest of the repository: a deterministic, seedable random number generator,
// compensated (Kahan) summation, descriptive statistics, histograms, and
// bootstrap confidence intervals.
//
// The paper's experiments (notably §4.3) sample hundreds of thousands of
// random heterogeneity profiles and reduce them to means, variances and
// success rates; everything needed for that lives here so experiments are
// reproducible bit-for-bit from a seed.
package stats
