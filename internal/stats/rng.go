package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is intentionally independent of
// math/rand so that experiment outputs are stable across Go releases: the
// paper's §4.3 study reports percentages over random trials, and we want the
// regenerated numbers to be reproducible from the seed recorded in
// EXPERIMENTS.md.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if freshly created with NewRNG(seed).
func (r *RNG) Seed(seed uint64) {
	// splitmix64 expansion of the seed, per Vigna's recommendation, so that
	// even seed=0 yields a well-mixed state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0,1).
func (r *RNG) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w := ah*bl + (t & mask)
	hi = ah*bh + (t >> 32) + (w >> 32)
	lo = a * b
	return hi, lo
}

// InRange returns a uniform float64 in [lo, hi).
func (r *RNG) InRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Split returns a new generator whose stream is independent of r's future
// output, for fan-out across parallel experiment shards.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
