package predict

import (
	"fmt"
	"sort"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/stats"
)

// Evaluation races a set of predictors on one stream of random cluster
// pairs against the X-measure ground truth.
type Evaluation struct {
	Params model.Params
	N      int
	Pairs  int
	// Accuracy per predictor name, over pairs where both the ground truth
	// and the predictor committed to a side.
	Accuracy map[string]float64
	// Abstained counts pairs where the predictor returned 0.
	Abstained map[string]int
}

// PairSource draws a cluster pair for one evaluation trial.
type PairSource func(r *stats.RNG, n int) (profile.Profile, profile.Profile, error)

// GeneralPairs draws two independent normalized random profiles — the
// unconditioned regime, where mean-like statistics carry most signal.
func GeneralPairs(r *stats.RNG, n int) (profile.Profile, profile.Profile, error) {
	return profile.RandomNormalized(r, n), profile.RandomNormalized(r, n), nil
}

// EqualMeanPairs draws the §4.3 equal-mean pairs — the conditioned regime,
// where the variance rule earns its keep.
func EqualMeanPairs(r *stats.RNG, n int) (profile.Profile, profile.Profile, error) {
	return profile.EqualMeanPair(r, n)
}

// Evaluate runs every predictor over `pairs` draws from src.
func Evaluate(m model.Params, predictors []Predictor, src PairSource, n, pairs int, seed uint64) (Evaluation, error) {
	if n < 2 || pairs <= 0 {
		return Evaluation{}, fmt.Errorf("predict: need n ≥ 2 and pairs > 0, got %d and %d", n, pairs)
	}
	ev := Evaluation{
		Params:    m,
		N:         n,
		Accuracy:  make(map[string]float64, len(predictors)),
		Abstained: make(map[string]int, len(predictors)),
	}
	correct := make(map[string]int, len(predictors))
	decided := make(map[string]int, len(predictors))
	rng := stats.NewRNG(seed)
	for t := 0; t < pairs; t++ {
		p1, p2, err := src(rng, n)
		if err != nil {
			return Evaluation{}, err
		}
		truth := core.Compare(m, p1, p2)
		if truth == 0 {
			continue
		}
		ev.Pairs++
		for _, pr := range predictors {
			switch guess := pr.Predict(p1, p2); {
			case guess == 0:
				ev.Abstained[pr.Name()]++
			case guess == truth:
				correct[pr.Name()]++
				decided[pr.Name()]++
			default:
				decided[pr.Name()]++
			}
		}
	}
	if ev.Pairs == 0 {
		return Evaluation{}, fmt.Errorf("predict: no decided pairs in %d draws", pairs)
	}
	for _, pr := range predictors {
		if d := decided[pr.Name()]; d > 0 {
			ev.Accuracy[pr.Name()] = float64(correct[pr.Name()]) / float64(d)
		}
	}
	return ev, nil
}

// TrainOnPairs builds a labelled training set from src and fits the linear
// scorer.
func TrainOnPairs(m model.Params, src PairSource, n, pairs int, seed uint64) (*Linear, error) {
	rng := stats.NewRNG(seed)
	var set []TrainingPair
	for t := 0; t < pairs; t++ {
		p1, p2, err := src(rng, n)
		if err != nil {
			return nil, err
		}
		truth := core.Compare(m, p1, p2)
		if truth == 0 {
			continue
		}
		f1, f2 := Extract(p1).Vector(), Extract(p2).Vector()
		diff := make([]float64, len(f1))
		for i := range diff {
			diff[i] = f1[i] - f2[i]
		}
		set = append(set, TrainingPair{Diff: diff, FirstWins: truth > 0})
	}
	return Train(set, 300, 0.5)
}

// Render lists predictors by descending accuracy.
func (ev Evaluation) Render(title string) string {
	names := make([]string, 0, len(ev.Accuracy))
	for name := range ev.Accuracy {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if ev.Accuracy[names[i]] != ev.Accuracy[names[j]] {
			return ev.Accuracy[names[i]] > ev.Accuracy[names[j]]
		}
		return names[i] < names[j]
	})
	t := render.NewTable(
		fmt.Sprintf("%s (n = %d, %d decided pairs)", title, ev.N, ev.Pairs),
		"predictor", "accuracy", "abstained")
	for _, name := range names {
		t.Add(name,
			fmt.Sprintf("%.1f%%", 100*ev.Accuracy[name]),
			fmt.Sprintf("%d", ev.Abstained[name]))
	}
	return t.String()
}
