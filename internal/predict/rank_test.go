package predict

import (
	"testing"

	"hetero/internal/model"
)

func TestRankCorrelations(t *testing.T) {
	m := model.Table1()
	rc, err := RankCorrelations(m, Scorers(), 8, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Total speed is a near-sufficient statistic: Spearman ≈ 1.
	if rc["neg-total-speed"] < 0.999 {
		t.Fatalf("total-speed rank correlation %v, want ≈1", rc["neg-total-speed"])
	}
	// Geo-mean ranks well, arithmetic mean noticeably worse, and variance
	// alone worst of the informative scores.
	if !(rc["geo-mean"] > rc["arith-mean"]) {
		t.Fatalf("geo-mean (%v) should out-rank arith-mean (%v)", rc["geo-mean"], rc["arith-mean"])
	}
	if rc["geo-mean"] < 0.9 {
		t.Fatalf("geo-mean rank correlation %v implausibly low", rc["geo-mean"])
	}
	for name, r := range rc {
		if r < -1-1e-12 || r > 1+1e-12 {
			t.Fatalf("%s correlation %v outside [-1,1]", name, r)
		}
	}
}

func TestRankCorrelationsValidation(t *testing.T) {
	m := model.Table1()
	if _, err := RankCorrelations(m, Scorers(), 1, 100, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RankCorrelations(m, Scorers(), 4, 2, 1); err == nil {
		t.Fatal("samples=2 accepted")
	}
	if _, err := RankCorrelations(m, nil, 4, 100, 1); err == nil {
		t.Fatal("no scorers accepted")
	}
}

func TestRankCorrelationsDeterministic(t *testing.T) {
	m := model.Table1()
	a, err := RankCorrelations(m, Scorers(), 6, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RankCorrelations(m, Scorers(), 6, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name := range a {
		if a[name] != b[name] {
			t.Fatalf("%s not deterministic", name)
		}
	}
}
