package predict

import (
	"fmt"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Scorer is a scalar cluster score for which smaller means more powerful
// (like ρ itself, and like the HECR).
type Scorer struct {
	Name string
	Fn   func(profile.Profile) float64
}

// Scorers returns the scalar scores behind the single-moment and composite
// predictors, for rank-correlation analysis.
func Scorers() []Scorer {
	return []Scorer{
		{"arith-mean", func(p profile.Profile) float64 { return p.Mean() }},
		{"geo-mean", func(p profile.Profile) float64 { return p.GeoMean() }},
		{"fastest", func(p profile.Profile) float64 { return p.Fastest() }},
		{"slowest", func(p profile.Profile) float64 { return p.Slowest() }},
		{"neg-variance", func(p profile.Profile) float64 { return -p.Variance() }},
		{"neg-total-speed", func(p profile.Profile) float64 { return -Extract(p).TotalSpeed }},
	}
}

// RankCorrelations draws `samples` random clusters of size n and returns
// each scorer's Spearman rank correlation with the HECR ground truth
// (smaller score should mean smaller HECR, so a perfect ranker scores +1).
// This is a stricter lens than pairwise accuracy: it integrates over the
// whole score distribution rather than sign agreements.
func RankCorrelations(m model.Params, scorers []Scorer, n, samples int, seed uint64) (map[string]float64, error) {
	if n < 2 || samples < 3 {
		return nil, fmt.Errorf("predict: need n ≥ 2 and samples ≥ 3, got %d and %d", n, samples)
	}
	if len(scorers) == 0 {
		return nil, fmt.Errorf("predict: no scorers")
	}
	rng := stats.NewRNG(seed)
	hecrs := make([]float64, samples)
	scores := make(map[string][]float64, len(scorers))
	for _, s := range scorers {
		scores[s.Name] = make([]float64, samples)
	}
	for t := 0; t < samples; t++ {
		p := profile.RandomNormalized(rng, n)
		hecrs[t] = core.HECR(m, p)
		for _, s := range scorers {
			scores[s.Name][t] = s.Fn(p)
		}
	}
	out := make(map[string]float64, len(scorers))
	for _, s := range scorers {
		out[s.Name] = stats.Spearman(scores[s.Name], hecrs)
	}
	return out, nil
}
