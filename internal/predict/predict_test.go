package predict

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestExtractFeatures(t *testing.T) {
	p := profile.MustNew(1, 0.5, 0.25)
	f := Extract(p)
	if math.Abs(f.Mean-(1.75/3)) > 1e-12 {
		t.Fatalf("mean = %v", f.Mean)
	}
	if f.Fastest != 0.25 || f.Slowest != 1 {
		t.Fatalf("extremes = %v/%v", f.Fastest, f.Slowest)
	}
	if math.Abs(f.TotalSpeed-7) > 1e-12 {
		t.Fatalf("total speed = %v, want 1+2+4", f.TotalSpeed)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Fatal("Vector/FeatureNames length mismatch")
	}
}

func TestByScorePredictor(t *testing.T) {
	pr := ByScore("mean", func(p profile.Profile) float64 { return p.Mean() })
	fast := profile.MustNew(0.2, 0.2)
	slow := profile.MustNew(0.9, 0.9)
	if pr.Predict(fast, slow) != 1 || pr.Predict(slow, fast) != -1 {
		t.Fatal("score predictor broken")
	}
	if pr.Predict(fast, fast.Clone()) != 0 {
		t.Fatal("tie not detected")
	}
	if pr.Name() != "mean" {
		t.Fatal("name lost")
	}
}

func TestMeanThenVariance(t *testing.T) {
	pr := meanThenVariance{}
	// Distinct means: decided by mean.
	if pr.Predict(profile.MustNew(0.3, 0.3), profile.MustNew(0.8, 0.8)) != 1 {
		t.Fatal("mean tier failed")
	}
	// Equal means: larger variance wins.
	if pr.Predict(profile.MustNew(0.9, 0.1), profile.MustNew(0.5, 0.5)) != 1 {
		t.Fatal("variance tier failed")
	}
	// Complete tie.
	if pr.Predict(profile.MustNew(0.5, 0.5), profile.MustNew(0.5, 0.5)) != 0 {
		t.Fatal("tie not detected")
	}
}

func TestTrainSeparatesTotalSpeed(t *testing.T) {
	// Train on general pairs; the learned scorer must beat the arithmetic
	// mean, since total speed (a feature) is nearly a sufficient statistic
	// for X at Table 1 scales.
	m := model.Table1()
	lin, err := TrainOnPairs(m, GeneralPairs, 8, 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, []Predictor{lin, ByScore("arith-mean", func(p profile.Profile) float64 { return p.Mean() })},
		GeneralPairs, 8, 600, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy["linear"] < 0.9 {
		t.Fatalf("trained accuracy %.3f implausibly low", ev.Accuracy["linear"])
	}
	if ev.Accuracy["linear"] <= ev.Accuracy["arith-mean"] {
		t.Fatalf("trained scorer (%.3f) did not beat the mean (%.3f)", ev.Accuracy["linear"], ev.Accuracy["arith-mean"])
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 10, 0.1); err == nil {
		t.Fatal("empty set accepted")
	}
	pairs := []TrainingPair{{Diff: []float64{1}, FirstWins: true}}
	if _, err := Train(pairs, 0, 0.1); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := Train(pairs, 10, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	ragged := []TrainingPair{{Diff: []float64{1}}, {Diff: []float64{1, 2}}}
	if _, err := Train(ragged, 10, 0.1); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestLinearScorePanicsOnDimensionMismatch(t *testing.T) {
	lin := &Linear{Weights: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	lin.Score(profile.MustNew(1, 0.5))
}

func TestEvaluateGeneralRanking(t *testing.T) {
	m := model.Table1()
	preds := append(SingleMoments(), Composites()...)
	ev, err := Evaluate(m, preds, GeneralPairs, 8, 800, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Structural expectations at Table 1 scales: total speed ≈ perfect,
	// geo-mean strong, raw variance weak without the equal-mean
	// conditioning.
	if ev.Accuracy["neg-total-speed"] < 0.99 {
		t.Fatalf("total speed accuracy %.3f; should be ≈1 at µs-scale A", ev.Accuracy["neg-total-speed"])
	}
	if !(ev.Accuracy["geo-mean"] > ev.Accuracy["arith-mean"]) {
		t.Fatal("geo-mean should beat arith-mean")
	}
	if !(ev.Accuracy["neg-variance"] < ev.Accuracy["geo-mean"]) {
		t.Fatal("raw variance should trail geo-mean on general pairs")
	}
}

func TestEvaluateEqualMeanRegime(t *testing.T) {
	// In the §4.3 regime the variance rule lands near the paper's ≈76-78%.
	m := model.Table1()
	ev, err := Evaluate(m, []Predictor{
		ByScore("neg-variance", func(p profile.Profile) float64 { return -p.Variance() }),
	}, EqualMeanPairs, 32, 600, 23)
	if err != nil {
		t.Fatal(err)
	}
	acc := ev.Accuracy["neg-variance"]
	if acc < 0.6 || acc > 0.95 {
		t.Fatalf("equal-mean variance accuracy %.3f outside the §4.3 regime", acc)
	}
}

func TestEvaluateValidation(t *testing.T) {
	m := model.Table1()
	if _, err := Evaluate(m, SingleMoments(), GeneralPairs, 1, 10, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Evaluate(m, SingleMoments(), GeneralPairs, 4, 0, 1); err == nil {
		t.Fatal("pairs=0 accepted")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	m := model.Table1()
	a, err := Evaluate(m, SingleMoments(), GeneralPairs, 6, 200, 31)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(m, SingleMoments(), GeneralPairs, 6, 200, 31)
	if err != nil {
		t.Fatal(err)
	}
	for name, acc := range a.Accuracy {
		if b.Accuracy[name] != acc {
			t.Fatalf("accuracy for %s not deterministic", name)
		}
	}
}

func TestRender(t *testing.T) {
	m := model.Table1()
	ev, err := Evaluate(m, SingleMoments(), GeneralPairs, 4, 100, 41)
	if err != nil {
		t.Fatal(err)
	}
	out := ev.Render("demo")
	for _, frag := range []string{"demo", "accuracy", "geo-mean"} {
		if !contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSigmoid(t *testing.T) {
	if math.Abs(sigmoid(0)-0.5) > 1e-15 {
		t.Fatalf("σ(0) = %v", sigmoid(0))
	}
	if sigmoid(50) < 0.999 || sigmoid(-50) > 0.001 {
		t.Fatal("sigmoid saturation broken")
	}
	// Numerically stable for very negative arguments.
	if v := sigmoid(-1000); v != 0 && (math.IsNaN(v) || v < 0) {
		t.Fatalf("σ(-1000) = %v", v)
	}
}

func TestGroundTruthSanity(t *testing.T) {
	// The evaluation's ground truth must itself be consistent: Compare
	// against HECR ordering on the evaluation stream.
	m := model.Table1()
	rng := stats.NewRNG(47)
	for trial := 0; trial < 50; trial++ {
		p1, p2, err := GeneralPairs(rng, 6)
		if err != nil {
			t.Fatal(err)
		}
		cmp := core.Compare(m, p1, p2)
		h1, h2 := core.HECR(m, p1), core.HECR(m, p2)
		if cmp == 1 && !(h1 < h2) || cmp == -1 && !(h2 < h1) {
			t.Fatalf("Compare and HECR disagree for %v vs %v", p1, p2)
		}
	}
}
