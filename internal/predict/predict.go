// Package predict implements the statistical-predictor study the paper
// points to as ongoing research (§4.2/§5, companion paper [13]): given only
// cheap statistics of two clusters' heterogeneity profiles, predict which
// cluster is more powerful, and measure how each predictor fares against
// the X-measure ground truth.
//
// Three predictor tiers are provided:
//
//   - single moments (mean, variance, geometric mean, extremes);
//   - hand-built composites (equal-mean variance rule of §4.3, total-speed
//     Σ1/ρ, lexicographic mean-then-variance);
//   - a trained linear scorer over the moment feature vector, fit by
//     logistic regression on labelled cluster pairs (pure stdlib).
//
// All predictors implement the same interface so the experiment harness
// can race them on identical trial streams.
package predict

import (
	"fmt"
	"math"

	"hetero/internal/profile"
)

// Features is the moment feature vector extracted from a profile. The
// fields deliberately mirror §4.2's cast: the arithmetic and geometric
// means, the variance, plus the extremes and skewness the companion study
// reaches for.
type Features struct {
	Mean     float64
	Variance float64
	GeoMean  float64
	Skewness float64
	Fastest  float64
	Slowest  float64
	// TotalSpeed is Σ 1/ρᵢ — the communication-free aggregate capacity.
	TotalSpeed float64
}

// Extract computes the feature vector of a profile.
func Extract(p profile.Profile) Features {
	d := p.Describe()
	total := 0.0
	for _, rho := range p {
		total += 1 / rho
	}
	return Features{
		Mean:       d.Mean,
		Variance:   d.Variance,
		GeoMean:    p.GeoMean(),
		Skewness:   d.Skewness,
		Fastest:    p.Fastest(),
		Slowest:    d.Max,
		TotalSpeed: total,
	}
}

// Vector returns the features as an ordered slice (the layout the linear
// scorer trains over); FeatureNames gives the matching labels.
func (f Features) Vector() []float64 {
	return []float64{f.Mean, f.Variance, f.GeoMean, f.Skewness, f.Fastest, f.Slowest, f.TotalSpeed}
}

// FeatureNames labels Vector's layout.
func FeatureNames() []string {
	return []string{"mean", "variance", "geomean", "skewness", "fastest", "slowest", "total-speed"}
}

// Predictor guesses which of two clusters is more powerful from their
// profiles alone: +1 for the first, −1 for the second, 0 for "cannot say".
type Predictor interface {
	Name() string
	Predict(p1, p2 profile.Profile) int
}

// scoreFn adapts a scalar score (smaller = more powerful, like ρ itself)
// into a Predictor.
type scoreFn struct {
	name string
	fn   func(profile.Profile) float64
}

func (s scoreFn) Name() string { return s.name }

func (s scoreFn) Predict(p1, p2 profile.Profile) int {
	a, b := s.fn(p1), s.fn(p2)
	switch {
	case a < b:
		return 1
	case a > b:
		return -1
	default:
		return 0
	}
}

// ByScore builds a predictor from a scalar profile score for which smaller
// means more powerful.
func ByScore(name string, fn func(profile.Profile) float64) Predictor {
	return scoreFn{name: name, fn: fn}
}

// SingleMoments returns the tier-one predictors.
func SingleMoments() []Predictor {
	return []Predictor{
		ByScore("arith-mean", func(p profile.Profile) float64 { return p.Mean() }),
		ByScore("geo-mean", func(p profile.Profile) float64 { return p.GeoMean() }),
		ByScore("fastest", func(p profile.Profile) float64 { return p.Fastest() }),
		ByScore("slowest", func(p profile.Profile) float64 { return p.Slowest() }),
		ByScore("neg-variance", func(p profile.Profile) float64 { return -p.Variance() }),
	}
}

// Composites returns the tier-two predictors.
func Composites() []Predictor {
	return []Predictor{
		ByScore("neg-total-speed", func(p profile.Profile) float64 { return -Extract(p).TotalSpeed }),
		meanThenVariance{},
	}
}

// meanThenVariance applies §4.3's rule lexicographically: rank by mean
// speed; when means (nearly) tie, prefer the larger variance.
type meanThenVariance struct{}

func (meanThenVariance) Name() string { return "mean-then-variance" }

func (meanThenVariance) Predict(p1, p2 profile.Profile) int {
	const meanTol = 1e-9
	m1, m2 := p1.Mean(), p2.Mean()
	switch {
	case m1 < m2-meanTol:
		return 1
	case m2 < m1-meanTol:
		return -1
	}
	v1, v2 := p1.Variance(), p2.Variance()
	switch {
	case v1 > v2:
		return 1
	case v2 > v1:
		return -1
	default:
		return 0
	}
}

// Linear is a trained linear scorer: score(P) = w·features(P); the cluster
// with the smaller score is predicted more powerful.
type Linear struct {
	Weights []float64
	Bias    float64
	name    string
}

// Name identifies the scorer (defaults to "linear").
func (l *Linear) Name() string {
	if l.name == "" {
		return "linear"
	}
	return l.name
}

// Score returns w·features(P) + bias.
func (l *Linear) Score(p profile.Profile) float64 {
	v := Extract(p).Vector()
	if len(v) != len(l.Weights) {
		panic(fmt.Sprintf("predict: scorer has %d weights for %d features", len(l.Weights), len(v)))
	}
	s := l.Bias
	for i, w := range l.Weights {
		s += w * v[i]
	}
	return s
}

// Predict compares the two clusters' scores.
func (l *Linear) Predict(p1, p2 profile.Profile) int {
	a, b := l.Score(p1), l.Score(p2)
	switch {
	case a < b:
		return 1
	case a > b:
		return -1
	default:
		return 0
	}
}

// TrainingPair is one labelled example: the feature difference of a cluster
// pair and whether the first cluster won under the X-measure.
type TrainingPair struct {
	// Diff = features(P1) − features(P2).
	Diff []float64
	// FirstWins is the X-measure ground truth.
	FirstWins bool
}

// Train fits a Linear scorer by logistic regression on pair differences:
// P(P1 wins) = σ(−w·diff), i.e. a lower score must mean a more powerful
// cluster. Plain batch gradient descent — the problem is tiny and convex.
func Train(pairs []TrainingPair, epochs int, rate float64) (*Linear, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("predict: no training pairs")
	}
	dim := len(pairs[0].Diff)
	for i, pr := range pairs {
		if len(pr.Diff) != dim {
			return nil, fmt.Errorf("predict: pair %d has %d features, want %d", i, len(pr.Diff), dim)
		}
	}
	if epochs <= 0 || rate <= 0 {
		return nil, fmt.Errorf("predict: epochs %d and rate %v must be positive", epochs, rate)
	}
	w := make([]float64, dim)
	for epoch := 0; epoch < epochs; epoch++ {
		grad := make([]float64, dim)
		for _, pr := range pairs {
			// z = −w·diff; prediction σ(z) should match FirstWins.
			z := 0.0
			for j, d := range pr.Diff {
				z -= w[j] * d
			}
			pred := sigmoid(z)
			target := 0.0
			if pr.FirstWins {
				target = 1
			}
			err := pred - target
			for j, d := range pr.Diff {
				grad[j] -= err * d // ∂z/∂wⱼ = −diffⱼ
			}
		}
		scale := rate / float64(len(pairs))
		for j := range w {
			w[j] -= scale * grad[j]
		}
	}
	return &Linear{Weights: w, name: "linear"}, nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
