package workload

import (
	"fmt"
	"math"

	"hetero/internal/stats"
)

// RayTrace renders one small tile of a procedurally generated sphere scene
// per work unit — the paper's "ray tracing on cluster computers" workload
// [20]. Each unit casts width×height primary rays through its own tile of
// the image plane against a shared scene and digests the hit geometry, so
// units are equal-size, equal-complexity, and independently verifiable.
type RayTrace struct {
	seed          uint64
	width, height int
	spheres       []sphere
	fingerprint   uint64 // folded scene geometry, mixed into every digest
}

type sphere struct {
	cx, cy, cz float64
	r          float64
}

// NewRayTrace builds a scene of nSpheres and renders tiles of
// width×height rays per unit.
func NewRayTrace(seed uint64, width, height, nSpheres int) *RayTrace {
	if width <= 0 || height <= 0 || nSpheres <= 0 {
		panic(fmt.Sprintf("workload: bad ray-trace sizes %dx%d/%d", width, height, nSpheres))
	}
	rng := stats.NewRNG(seed)
	spheres := make([]sphere, nSpheres)
	fp := seed
	for i := range spheres {
		spheres[i] = sphere{
			cx: rng.InRange(-4, 4),
			cy: rng.InRange(-4, 4),
			cz: rng.InRange(4, 14),
			r:  rng.InRange(0.3, 1.4),
		}
		fp = mix(fp, math.Float64bits(spheres[i].cx))
		fp = mix(fp, math.Float64bits(spheres[i].r))
	}
	return &RayTrace{seed: seed, width: width, height: height, spheres: spheres, fingerprint: fp}
}

// Name implements Task.
func (rt *RayTrace) Name() string { return "raytrace" }

// Run implements Task: unit u renders one cell of an 8×8 image-plane
// mosaic covering the scene; units beyond 64 revisit cells at shifted
// subpixel sample grids (supersampling layers), so every unit index is
// valid, equal-cost, and distinct.
func (rt *RayTrace) Run(unit int) uint64 {
	tileX, tileY, offset := tileOf(unit)
	digest := mix(uint64(unit), rt.fingerprint)
	for py := 0; py < rt.height; py++ {
		for px := 0; px < rt.width; px++ {
			dx, dy, dz := rt.rayDir(tileX, tileY, offset, px, py)
			if t, hit := rt.nearestHit(dx, dy, dz); hit {
				digest = mix(digest, math.Float64bits(math.Floor(t*1e6)))
			}
		}
	}
	return digest
}

// tileOf maps a unit index to its mosaic cell and supersampling offset.
func tileOf(unit int) (tileX, tileY, offset float64) {
	cell := unit % 64
	layer := unit / 64
	tileX = float64(cell%8) - 4
	tileY = float64(cell/8) - 4
	offset = float64(layer%16) / 16
	return tileX, tileY, offset
}

// rayDir returns the normalized primary ray for a pixel of the tile. The
// image plane spans directions dx, dy ∈ [−0.5, 0.5), which at the scene's
// depth (z ≈ 4..14) sweeps across all sphere positions.
func (rt *RayTrace) rayDir(tileX, tileY, offset float64, px, py int) (dx, dy, dz float64) {
	dx = (tileX + (float64(px)+offset)/float64(rt.width)) / 8
	dy = (tileY + (float64(py)+offset)/float64(rt.height)) / 8
	dz = 1
	norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
	return dx / norm, dy / norm, dz / norm
}

// nearestHit intersects the ray (from the origin, direction d) with every
// sphere and returns the nearest positive hit distance.
func (rt *RayTrace) nearestHit(dx, dy, dz float64) (float64, bool) {
	best := math.Inf(1)
	for _, s := range rt.spheres {
		// |o + t·d − c|² = r² with o = 0: t² − 2t(d·c) + |c|² − r² = 0.
		b := dx*s.cx + dy*s.cy + dz*s.cz
		c := s.cx*s.cx + s.cy*s.cy + s.cz*s.cz - s.r*s.r
		disc := b*b - c
		if disc < 0 {
			continue
		}
		sq := math.Sqrt(disc)
		for _, t := range [2]float64{b - sq, b + sq} {
			if t > 1e-9 && t < best {
				best = t
			}
		}
	}
	return best, !math.IsInf(best, 1)
}

// HitFraction re-renders units [0,units) and returns the fraction of rays
// hitting geometry — a human-checkable scene statistic for examples.
func (rt *RayTrace) HitFraction(units int) float64 {
	hits, total := 0, 0
	for u := 0; u < units; u++ {
		tileX, tileY, offset := tileOf(u)
		for py := 0; py < rt.height; py++ {
			for px := 0; px < rt.width; px++ {
				dx, dy, dz := rt.rayDir(tileX, tileY, offset, px, py)
				if _, hit := rt.nearestHit(dx, dy, dz); hit {
					hits++
				}
				total++
			}
		}
	}
	return float64(hits) / float64(total)
}
