// Package workload provides real, CPU-bound, deterministic workloads of
// the kind the paper's §1.2 cites as the CEP's motivation: "data smoothing,
// pattern matching, ray tracing, Monte-Carlo simulations, chromosome
// mapping". Each workload is a uniform bag of equal-size, equal-complexity,
// mutually independent tasks — exactly the model's workload — and each task
// is verifiable: it produces a digest that depends on every intermediate
// result, so an execution harness can prove the work was really done.
//
// Package harness executes these workloads across simulated-speed
// computers under the paper's worksharing protocols.
package workload

import (
	"fmt"
	"math"

	"hetero/internal/stats"
)

// Task is a uniform workload: Run executes one unit of work, identified by
// its index within the workload, and returns a verifiable digest. Run must
// be deterministic in (seed, unit) and safe for concurrent invocation on
// distinct units.
type Task interface {
	// Name identifies the workload family.
	Name() string
	// Run executes work unit `unit` and returns its digest.
	Run(unit int) uint64
}

// ByName constructs a workload by family name with the given seed and the
// family's default size parameters.
func ByName(name string, seed uint64) (Task, error) {
	switch name {
	case "montecarlo":
		return NewMonteCarlo(seed, 20000), nil
	case "patternmatch":
		return NewPatternMatch(seed, 1<<14, 6), nil
	case "smoothing":
		return NewSmoothing(seed, 1<<13, 32), nil
	case "raytrace":
		return NewRayTrace(seed, 24, 24, 20), nil
	default:
		return nil, fmt.Errorf("workload: unknown family %q (have montecarlo, patternmatch, smoothing, raytrace)", name)
	}
}

// MonteCarlo estimates π by dart throwing: every unit draws a fixed number
// of points in the unit square and counts hits inside the quarter circle —
// the classic embarrassingly-parallel Monte-Carlo workload.
type MonteCarlo struct {
	seed    uint64
	samples int
}

// NewMonteCarlo returns a Monte-Carlo workload with the given samples per
// work unit.
func NewMonteCarlo(seed uint64, samples int) *MonteCarlo {
	if samples <= 0 {
		panic(fmt.Sprintf("workload: samples = %d must be positive", samples))
	}
	return &MonteCarlo{seed: seed, samples: samples}
}

// Name implements Task.
func (m *MonteCarlo) Name() string { return "montecarlo" }

// Run implements Task: the digest folds the unit's hit count.
func (m *MonteCarlo) Run(unit int) uint64 {
	rng := stats.NewRNG(m.seed ^ uint64(unit)*0x9e3779b97f4a7c15)
	hits := 0
	for i := 0; i < m.samples; i++ {
		x := rng.Float64()
		y := rng.Float64()
		if x*x+y*y < 1 {
			hits++
		}
	}
	return mix(uint64(unit), uint64(hits))
}

// PiEstimate combines per-unit digests... it cannot: digests are one-way.
// Instead it re-runs the units (they are cheap and deterministic) and
// returns the aggregate π estimate — used by examples to show the workload
// computes something real.
func (m *MonteCarlo) PiEstimate(units int) float64 {
	hits := 0
	for u := 0; u < units; u++ {
		rng := stats.NewRNG(m.seed ^ uint64(u)*0x9e3779b97f4a7c15)
		for i := 0; i < m.samples; i++ {
			x := rng.Float64()
			y := rng.Float64()
			if x*x+y*y < 1 {
				hits++
			}
		}
	}
	return 4 * float64(hits) / float64(units*m.samples)
}

// PatternMatch scans a synthetic genome for a per-unit motif and counts
// (possibly overlapping) occurrences — the "chromosome mapping / pattern
// matching" workload. The genome is generated once per workload; each unit
// derives its own motif, so tasks share size and complexity but not
// answers.
type PatternMatch struct {
	seed   uint64
	genome []byte
	motif  int
}

// NewPatternMatch builds a genome of the given length over {A,C,G,T} and
// searches motifs of length motif.
func NewPatternMatch(seed uint64, genomeLen, motif int) *PatternMatch {
	if genomeLen <= 0 || motif <= 0 || motif > genomeLen {
		panic(fmt.Sprintf("workload: bad pattern-match sizes %d/%d", genomeLen, motif))
	}
	rng := stats.NewRNG(seed)
	genome := make([]byte, genomeLen)
	const alphabet = "ACGT"
	for i := range genome {
		genome[i] = alphabet[rng.Intn(4)]
	}
	return &PatternMatch{seed: seed, genome: genome, motif: motif}
}

// Name implements Task.
func (p *PatternMatch) Name() string { return "patternmatch" }

// Run implements Task: derive the unit's motif, scan, digest the count and
// the match positions.
func (p *PatternMatch) Run(unit int) uint64 {
	rng := stats.NewRNG(p.seed ^ 0xfeed ^ uint64(unit)*0x2545f4914f6cdd1d)
	motif := make([]byte, p.motif)
	const alphabet = "ACGT"
	digest := uint64(unit)
	for i := range motif {
		motif[i] = alphabet[rng.Intn(4)]
		// Fold the motif itself so zero-match units still carry a
		// seed-and-unit-dependent digest.
		digest = mix(digest, uint64(motif[i]))
	}
	count := 0
	for i := 0; i+len(motif) <= len(p.genome); i++ {
		match := true
		for j := range motif {
			if p.genome[i+j] != motif[j] {
				match = false
				break
			}
		}
		if match {
			count++
			digest = mix(digest, uint64(i))
		}
	}
	return mix(digest, uint64(count))
}

// Smoothing applies repeated moving-average passes to a per-unit synthetic
// signal — the "data smoothing" workload.
type Smoothing struct {
	seed   uint64
	length int
	passes int
}

// NewSmoothing returns a smoothing workload over signals of the given
// length with the given number of passes.
func NewSmoothing(seed uint64, length, passes int) *Smoothing {
	if length < 3 || passes <= 0 {
		panic(fmt.Sprintf("workload: bad smoothing sizes %d/%d", length, passes))
	}
	return &Smoothing{seed: seed, length: length, passes: passes}
}

// Name implements Task.
func (s *Smoothing) Name() string { return "smoothing" }

// Run implements Task: generate the unit's noisy signal, smooth it, digest
// a fingerprint of the result.
func (s *Smoothing) Run(unit int) uint64 {
	rng := stats.NewRNG(s.seed ^ 0xbead ^ uint64(unit)*0x9e3779b97f4a7c15)
	signal := make([]float64, s.length)
	for i := range signal {
		signal[i] = math.Sin(float64(i)/17) + 0.3*rng.Norm()
	}
	next := make([]float64, s.length)
	for pass := 0; pass < s.passes; pass++ {
		for i := range signal {
			lo, hi := i-1, i+1
			if lo < 0 {
				lo = 0
			}
			if hi >= s.length {
				hi = s.length - 1
			}
			next[i] = (signal[lo] + signal[i] + signal[hi]) / 3
		}
		signal, next = next, signal
	}
	digest := uint64(unit)
	for i := 0; i < s.length; i += 97 {
		digest = mix(digest, math.Float64bits(signal[i]))
	}
	return digest
}

// mix is a 64-bit hash combiner (splitmix64 finalizer over xor).
func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
