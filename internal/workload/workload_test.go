package workload

import (
	"math"
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"montecarlo", "patternmatch", "smoothing", "raytrace"} {
		task, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if task.Name() != name {
			t.Fatalf("Name() = %q, want %q", task.Name(), name)
		}
	}
	if _, err := ByName("mandelbrot", 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestTasksDeterministic(t *testing.T) {
	for _, name := range []string{"montecarlo", "patternmatch", "smoothing", "raytrace"} {
		a, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		for unit := 0; unit < 5; unit++ {
			if a.Run(unit) != b.Run(unit) {
				t.Fatalf("%s: unit %d digest not deterministic", name, unit)
			}
		}
	}
}

func TestTasksVaryByUnitAndSeed(t *testing.T) {
	for _, name := range []string{"montecarlo", "patternmatch", "smoothing", "raytrace"} {
		a, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ByName(name, 43)
		if err != nil {
			t.Fatal(err)
		}
		if a.Run(0) == a.Run(1) {
			t.Fatalf("%s: units 0 and 1 collided", name)
		}
		if a.Run(0) == c.Run(0) {
			t.Fatalf("%s: seeds 42 and 43 collided", name)
		}
	}
}

func TestTasksConcurrentSafe(t *testing.T) {
	// Run the same units concurrently and compare against sequential.
	for _, name := range []string{"montecarlo", "patternmatch", "smoothing", "raytrace"} {
		task, err := ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, 16)
		for u := range want {
			want[u] = task.Run(u)
		}
		got := make([]uint64, 16)
		done := make(chan struct{})
		for u := range got {
			u := u
			go func() {
				got[u] = task.Run(u)
				done <- struct{}{}
			}()
		}
		for range got {
			<-done
		}
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("%s: concurrent digest differs at unit %d", name, u)
			}
		}
	}
}

func TestMonteCarloPiEstimate(t *testing.T) {
	mc := NewMonteCarlo(9, 20000)
	pi := mc.PiEstimate(50)
	if math.Abs(pi-math.Pi) > 0.02 {
		t.Fatalf("π estimate %v too far from π", pi)
	}
}

func TestConstructorsPanicOnBadSizes(t *testing.T) {
	for name, fn := range map[string]func(){
		"montecarlo":        func() { NewMonteCarlo(1, 0) },
		"patternmatch":      func() { NewPatternMatch(1, 0, 4) },
		"patternmatch long": func() { NewPatternMatch(1, 4, 10) },
		"smoothing":         func() { NewSmoothing(1, 2, 3) },
		"smoothing passes":  func() { NewSmoothing(1, 100, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestPatternMatchGenomeAlphabet(t *testing.T) {
	p := NewPatternMatch(3, 1000, 4)
	for _, b := range p.genome {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("genome contains %q", b)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	a := mix(0x12345678, 0xdeadbeef)
	b := mix(0x12345679, 0xdeadbeef)
	diff := a ^ b
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Fatalf("avalanche too weak: %d differing bits", bits)
	}
}

func TestRayTraceHitsGeometry(t *testing.T) {
	rt := NewRayTrace(5, 16, 16, 20)
	frac := rt.HitFraction(8)
	if frac <= 0 || frac >= 1 {
		t.Fatalf("hit fraction %v; scene should be partially covered", frac)
	}
}

func TestRayTracePanicsOnBadSizes(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRayTrace(1, 0, 16, 5) },
		func() { NewRayTrace(1, 16, 0, 5) },
		func() { NewRayTrace(1, 16, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestRayTraceTilesDiffer(t *testing.T) {
	rt := NewRayTrace(7, 16, 16, 20)
	seen := map[uint64]bool{}
	for u := 0; u < 8; u++ {
		d := rt.Run(u)
		if seen[d] {
			t.Fatalf("tile digests collided at unit %d", u)
		}
		seen[d] = true
	}
}
