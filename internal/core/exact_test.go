package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestXExactAgreesWithFloat64(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(271)
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(r)
		exact := XExactFloat64(m, p)
		if got := X(m, p); !relClose(got, exact, 1e-11) {
			t.Fatalf("X = %.17g, exact = %.17g for %v", got, exact, p)
		}
	}
}

func TestXExactLargeCluster(t *testing.T) {
	// At n = 2^14 the float64 telescoped form must still track the
	// 256-bit reference closely.
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(3), 1<<14)
	exact := XExactFloat64(m, p)
	if got := X(m, p); !relClose(got, exact, 1e-9) {
		t.Fatalf("X = %.17g, exact = %.17g at n=2^14", got, exact)
	}
}

func TestXExactRegimeBeyondLemma1(t *testing.T) {
	// Where the rational form overflows (n = 120), the exact path and the
	// telescoped float64 path must still agree.
	m := model.Table1()
	p := profile.Homogeneous(120, 0.5)
	if _, err := XRational(m, p); err == nil {
		t.Skip("rational form unexpectedly survived; regime test moot")
	}
	exact := XExactFloat64(m, p)
	if got := X(m, p); !relClose(got, exact, 1e-10) {
		t.Fatalf("X = %.17g, exact = %.17g", got, exact)
	}
}

func TestXExactPrecisionKnob(t *testing.T) {
	m := model.Table1()
	p := profile.Linear(8)
	lo := XExact(m, p, 64)
	hi := XExact(m, p, 512)
	fLo, _ := lo.Float64()
	fHi, _ := hi.Float64()
	if !relClose(fLo, fHi, 1e-9) {
		t.Fatalf("precision levels disagree: %v vs %v", fLo, fHi)
	}
}

func TestXGradientMatchesFiniteDifferences(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(277)
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(r)
		grad := XGradient(m, p)
		for i := range p {
			h := p[i] * 1e-6
			up := p.Clone()
			up[i] += h
			down := p.Clone()
			down[i] -= h
			fd := (X(m, up) - X(m, down)) / (2 * h)
			if math.Abs(grad[i]-fd) > 1e-4*math.Abs(fd)+1e-12 {
				t.Fatalf("∂X/∂ρ[%d] = %v, finite difference %v for %v", i, grad[i], fd, p)
			}
		}
	}
}

func TestXGradientAllNegative(t *testing.T) {
	// Proposition 2 in differential form.
	m := model.Table1()
	r := stats.NewRNG(281)
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(r)
		for i, g := range XGradient(m, p) {
			if !(g < 0) {
				t.Fatalf("∂X/∂ρ[%d] = %v not negative for %v", i, g, p)
			}
		}
	}
}

func TestMostSensitiveIndexIsTheorem3(t *testing.T) {
	// The gradient ranking must agree with Theorem 3's discrete statement
	// and with brute force for small φ.
	m := model.Table1()
	r := stats.NewRNG(283)
	for trial := 0; trial < 200; trial++ {
		p := profile.RandomNormalized(r, 2+r.Intn(8))
		if got, want := MostSensitiveIndex(m, p), Theorem3Index(p); got != want {
			t.Fatalf("gradient picks %d, Theorem 3 says %d for %v", got, want, p)
		}
	}
}

func TestMarginalValueOrdering(t *testing.T) {
	// Faster computers have strictly larger marginal speedup value.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25, 0.1)
	v := MarginalSpeedupValue(m, p)
	for i := 0; i+1 < len(v); i++ {
		if !(v[i+1] > v[i]) {
			t.Fatalf("marginal values not increasing toward faster computers: %v", v)
		}
	}
}
