package core

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// RentalLifespan solves the Cluster-Rental Problem — the CEP's dual
// (footnote 3 of the paper): the asymptotic lifespan needed for cluster P
// to complete work units of work, obtained by inverting Theorem 2:
//
//	L = W · (τδ + 1/X(P)).
//
// The conversion between optimal CEP and CRP solutions is exactly this
// inversion: the same FIFO schedule, scaled to the requested work volume.
func RentalLifespan(m model.Params, p profile.Profile, work float64) float64 {
	if work < 0 {
		panic(fmt.Sprintf("core: negative work volume %v", work))
	}
	return work * (m.TauDelta() + 1/X(m, p))
}
