package core_test

import (
	"fmt"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// ExampleX evaluates the paper's power measure for the Table 4 cluster.
func ExampleX() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	fmt.Printf("X = %.4f\n", core.X(env, cluster))
	// Output: X = 9.9991
}

// ExampleHECR shows the homogeneous-equivalent rate: this 4-computer
// cluster is exactly as powerful as four speed-0.4 computers.
func ExampleHECR() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	fmt.Printf("HECR = %.4f\n", core.HECR(env, cluster))
	// Output: HECR = 0.4000
}

// ExampleW answers the Cluster-Exploitation Problem: how much work does
// the cluster complete in an hour under the optimal FIFO protocol?
func ExampleW() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	fmt.Printf("W(1h) = %.0f units\n", core.W(env, cluster, 3600))
	// Output: W(1h) = 35996 units
}

// ExampleBestAdditive reproduces Theorem 3: with one upgrade to spend, the
// fastest computer is always the right target.
func ExampleBestAdditive() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	choice, _ := core.BestAdditive(env, cluster, 1.0/16)
	fmt.Printf("upgrade C%d (work ratio %.4f)\n", choice.Index+1, choice.WorkRatio)
	// Output: upgrade C4 (work ratio 1.1333)
}

// ExampleCompare shows §4's counterexample: the cluster with the WORSE
// mean speed wins.
func ExampleCompare() {
	env := model.Table1()
	hetero := profile.MustNew(0.99, 0.02)
	homo := profile.MustNew(0.5, 0.5)
	if core.Compare(env, hetero, homo) > 0 {
		fmt.Println("heterogeneous cluster wins")
	}
	// Output: heterogeneous cluster wins
}

// ExampleTheorem4Prefers applies the multiplicative-speedup threshold.
func ExampleTheorem4Prefers() {
	env := model.Figs34() // τ raised as in Figures 3-4
	fasterWins, _, _ := core.Theorem4Prefers(env, 1, 1.0/8, 0.5)
	fmt.Printf("at ρⱼ=1/8, speed up the faster computer: %v\n", fasterWins)
	fasterWins, _, _ = core.Theorem4Prefers(env, 1, 1.0/16, 0.5)
	fmt.Printf("at ρⱼ=1/16, speed up the faster computer: %v\n", fasterWins)
	// Output:
	// at ρⱼ=1/8, speed up the faster computer: true
	// at ρⱼ=1/16, speed up the faster computer: false
}

// ExampleRentalLifespan solves the CEP's dual: how long to finish a fixed
// batch.
func ExampleRentalLifespan() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	fmt.Printf("L(100000 units) = %.1f\n", core.RentalLifespan(env, cluster, 1e5))
	// Output: L(100000 units) = 10001.0
}
