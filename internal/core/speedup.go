package core

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// SpeedupChoice records the outcome of choosing one computer to speed up.
type SpeedupChoice struct {
	// Index of the chosen computer within the profile.
	Index int
	// Profile after the speedup.
	After profile.Profile
	// WorkRatio is W(L;after)/W(L;before) — always > 1 (Proposition 2).
	WorkRatio float64
}

// BestAdditive evaluates all single-computer additive speedups by the term
// phi and returns the most advantageous one (ties broken toward the larger
// index, the paper's §3.2.2 rule). Theorem 3 guarantees the choice is
// always the cluster's fastest computer; this function still compares every
// candidate so the theorem stays checkable, but does so incrementally: the
// base log-product Σ log r(ρⱼ) is computed once and each candidate costs a
// single log r swap, making the search O(n) instead of the O(n²) of
// re-scanning the profile per candidate.
func BestAdditive(m model.Params, p profile.Profile, phi float64) (SpeedupChoice, error) {
	if !(phi > 0) || phi >= p.Fastest() {
		return SpeedupChoice{}, fmt.Errorf("core: additive term φ = %v must lie in (0, ρ_fastest = %v) so every computer can be sped up", phi, p.Fastest())
	}
	return bestIncremental(m, p, func(rho float64) float64 { return rho - phi })
}

// BestMultiplicative evaluates all single-computer multiplicative speedups
// by the factor psi ∈ (0,1) and returns the most advantageous one (ties
// broken toward the larger index). Like BestAdditive it runs in O(n) via
// incremental log-product swaps.
func BestMultiplicative(m model.Params, p profile.Profile, psi float64) (SpeedupChoice, error) {
	if !(psi > 0) || psi >= 1 {
		return SpeedupChoice{}, fmt.Errorf("core: multiplicative factor ψ = %v must lie in (0,1)", psi)
	}
	return bestIncremental(m, p, func(rho float64) float64 { return rho * psi })
}

// BestAdditiveBruteForce is the original O(n²) search kept as an independent
// reference implementation: the test suite cross-validates bestIncremental
// against it, and the benchmark harness measures the speedup.
func BestAdditiveBruteForce(m model.Params, p profile.Profile, phi float64) (SpeedupChoice, error) {
	if !(phi > 0) || phi >= p.Fastest() {
		return SpeedupChoice{}, fmt.Errorf("core: additive term φ = %v must lie in (0, ρ_fastest = %v) so every computer can be sped up", phi, p.Fastest())
	}
	return bestByBruteForce(m, p, func(i int) (profile.Profile, error) {
		return p.SpeedUpAdditive(i, phi)
	})
}

// BestMultiplicativeBruteForce is the original O(n²) search kept as an
// independent reference implementation (see BestAdditiveBruteForce).
func BestMultiplicativeBruteForce(m model.Params, p profile.Profile, psi float64) (SpeedupChoice, error) {
	if !(psi > 0) || psi >= 1 {
		return SpeedupChoice{}, fmt.Errorf("core: multiplicative factor ψ = %v must lie in (0,1)", psi)
	}
	return bestByBruteForce(m, p, func(i int) (profile.Profile, error) {
		return p.SpeedUpMultiplicative(i, psi)
	})
}

// bestIncremental compares the n single-computer speedups ρᵢ → newRho(ρᵢ)
// in O(n): with T = Σ log r(ρⱼ) precomputed, candidate i scores
// T − log r(ρᵢ) + log r(newRho(ρᵢ)). Exact ties (equal ρ, hence bit-equal
// scores) break toward the larger index exactly as the brute-force scan
// does.
func bestIncremental(m model.Params, p profile.Profile, newRho func(rho float64) float64) (SpeedupChoice, error) {
	logr := make([]float64, len(p))
	var acc stats.KahanSum
	for i, rho := range p {
		logr[i] = LogRatio(m, rho)
		acc.Add(logr[i])
	}
	total := acc.Sum()
	best := SpeedupChoice{Index: -1}
	bestLog := 0.0
	for i, rho := range p {
		// Smaller log Π r means larger X. "<=" implements the larger-index
		// tie-break.
		if l := total - logr[i] + LogRatio(m, newRho(rho)); best.Index < 0 || l <= bestLog {
			best.Index = i
			bestLog = l
		}
	}
	after := p.Clone()
	after[best.Index] = newRho(p[best.Index])
	best.After = after
	best.WorkRatio = WorkRatio(m, after, p)
	return best, nil
}

func bestByBruteForce(m model.Params, p profile.Profile, speedUp func(int) (profile.Profile, error)) (SpeedupChoice, error) {
	best := SpeedupChoice{Index: -1}
	bestLog := 0.0
	for i := range p {
		cand, err := speedUp(i)
		if err != nil {
			return SpeedupChoice{}, err
		}
		// Smaller log Π r means larger X. "<=" implements the larger-index
		// tie-break.
		if l := LogProductRatios(m, cand); best.Index < 0 || l <= bestLog {
			best = SpeedupChoice{Index: i, After: cand}
			bestLog = l
		}
	}
	best.WorkRatio = WorkRatio(m, best.After, p)
	return best, nil
}

// Theorem3Index returns the index Theorem 3 proves optimal for an additive
// speedup: the cluster's fastest computer (larger index on ties).
func Theorem3Index(p profile.Profile) int { return p.FastestIndex() }

// Theorem4Prefers applies Theorem 4 to the pair {Cᵢ, Cⱼ} with ρᵢ > ρⱼ
// (so Cⱼ is the faster computer) under a multiplicative speedup by ψ:
// it returns j's role ("faster") if ψρᵢρⱼ > Aτδ/B² (condition (1)),
// "slower" if ψρᵢρⱼ < Aτδ/B² (condition (2)), and "tie" on equality, where
// the theorem is silent. The returned bool reports whether speeding the
// FASTER computer wins.
func Theorem4Prefers(m model.Params, rhoI, rhoJ, psi float64) (fasterWins bool, boundary bool, err error) {
	if !(rhoI > rhoJ) {
		return false, false, fmt.Errorf("core: Theorem 4 needs ρᵢ > ρⱼ, got %v and %v", rhoI, rhoJ)
	}
	if !(psi > 0) || psi >= 1 {
		return false, false, fmt.Errorf("core: multiplicative factor ψ = %v must lie in (0,1)", psi)
	}
	lhs := psi * rhoI * rhoJ
	k := m.Theorem4Threshold()
	if lhs == k {
		return false, true, nil
	}
	return lhs > k, false, nil
}

// PlanStep is one round of the iterated-speedup experiment of §3.2.2.
type PlanStep struct {
	Round   int             // 1-based round number
	Index   int             // computer chosen this round
	Before  profile.Profile // profile entering the round
	After   profile.Profile // profile leaving the round
	XBefore float64
	XAfter  float64
}

// GreedyMultiplicativePlan iterates BestMultiplicative for rounds rounds,
// starting from p — the experiment behind Figures 3 and 4: at every round
// all single-computer speedups by ψ are compared via their X-values and the
// best (largest index on ties) is applied.
func GreedyMultiplicativePlan(m model.Params, p profile.Profile, psi float64, rounds int) ([]PlanStep, error) {
	if rounds < 0 {
		return nil, fmt.Errorf("core: negative round count %d", rounds)
	}
	steps := make([]PlanStep, 0, rounds)
	cur := p.Clone()
	for round := 1; round <= rounds; round++ {
		choice, err := BestMultiplicative(m, cur, psi)
		if err != nil {
			return steps, err
		}
		steps = append(steps, PlanStep{
			Round:   round,
			Index:   choice.Index,
			Before:  cur,
			After:   choice.After,
			XBefore: X(m, cur),
			XAfter:  X(m, choice.After),
		})
		cur = choice.After
	}
	return steps, nil
}
