package core

import (
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestProp3PredictionIsSound(t *testing.T) {
	// Whenever Proposition 3's inequality system holds, the predicted
	// winner must really have the larger X — for every parameter set
	// satisfying τδ ≤ A ≤ B, since the αᵢ, βᵢ are positive there.
	r := stats.NewRNG(173)
	params := []model.Params{model.Table1(), model.Figs34(), {Tau: 0.01, Pi: 0.05, Delta: 0.7}}
	predicted := 0
	for trial := 0; trial < 2000; trial++ {
		n := 2 + r.Intn(6)
		p1 := profile.RandomNormalized(r, n)
		p2 := profile.RandomNormalized(r, n)
		ok, err := Prop3Predicts(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		predicted++
		for _, m := range params {
			if Compare(m, p1, p2) != 1 {
				t.Fatalf("Prop 3 predicted %v over %v but X disagrees under %v", p1, p2, m)
			}
		}
	}
	if predicted == 0 {
		t.Fatal("Proposition 3 never fired; test vacuous")
	}
}

func TestProp3FiresOnMinorization(t *testing.T) {
	// A strictly-minorizing profile dominates every symmetric function, so
	// Prop 3 must detect it.
	p1 := profile.MustNew(0.5, 0.25, 0.125)
	p2 := profile.MustNew(1, 0.5, 0.25)
	ok, err := Prop3Predicts(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Prop 3 failed on a strictly minorizing pair")
	}
	// And must not fire in the opposite direction.
	ok, err = Prop3Predicts(p2, p1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Prop 3 fired for the dominated cluster")
	}
}

func TestProp3Inconclusive(t *testing.T) {
	// The §4 example ⟨0.99,0.02⟩ vs ⟨0.5,0.5⟩: F₁ = 1.01 > 1.0 but
	// F₂ = 0.0198 < 0.25, so the system cannot hold in either direction;
	// Prop 3 is inconclusive although X decides the winner.
	p1 := profile.MustNew(0.99, 0.02)
	p2 := profile.MustNew(0.5, 0.5)
	ok1, err := Prop3Predicts(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := Prop3Predicts(p2, p1)
	if err != nil {
		t.Fatal(err)
	}
	if ok1 || ok2 {
		t.Fatalf("Prop 3 fired (%v/%v) on an incomparable pair", ok1, ok2)
	}
}

func TestProp3RejectsSizeMismatch(t *testing.T) {
	if _, err := Prop3Predicts(profile.MustNew(1), profile.MustNew(1, 0.5)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestProp3EqualProfilesNotStrict(t *testing.T) {
	p := profile.Linear(5)
	ok, err := Prop3Predicts(p, p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Prop 3 predicted a strict winner for identical profiles")
	}
}

func TestTheorem5BiconditionalN2(t *testing.T) {
	// Theorem 5(2): for equal-mean 2-computer clusters, outperformance is
	// EQUIVALENT to larger variance. Exercise with exactly-equal means:
	// ⟨m+d, m−d⟩ pairs share mean m for any offset d.
	m := model.Table1()
	r := stats.NewRNG(179)
	for trial := 0; trial < 500; trial++ {
		mean := r.InRange(0.1, 0.9)
		dmax := mean - 0.001
		if 1-mean < dmax {
			dmax = 1 - mean
		}
		d1 := r.Float64() * dmax
		d2 := r.Float64() * dmax
		p1 := profile.MustNew(mean+d1, mean-d1)
		p2 := profile.MustNew(mean+d2, mean-d2)
		out, largerVar, err := Theorem5Biconditional(m, p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if d1 == d2 {
			continue
		}
		if out != largerVar {
			t.Fatalf("Theorem 5(2) violated: outperforms=%v largerVariance=%v for %v vs %v", out, largerVar, p1, p2)
		}
	}
}

func TestCorollary1HeterogeneityLendsPower(t *testing.T) {
	// Corollary 1: an equal-mean heterogeneous 2-cluster beats the
	// homogeneous one.
	m := model.Table1()
	homo := profile.MustNew(0.5, 0.5)
	for _, d := range []float64{0.05, 0.2, 0.4, 0.49} {
		het := profile.MustNew(0.5+d, 0.5-d)
		if Compare(m, het, homo) != 1 {
			t.Fatalf("heterogeneous ⟨%v,%v⟩ did not beat homogeneous ⟨0.5,0.5⟩", 0.5+d, 0.5-d)
		}
	}
}

func TestTheorem5RejectsWrongSizes(t *testing.T) {
	m := model.Table1()
	if _, _, err := Theorem5Biconditional(m, profile.MustNew(1, 0.5, 0.2), profile.MustNew(1, 0.5)); err == nil {
		t.Fatal("n=3 accepted")
	}
}

func TestVarPredictsPower(t *testing.T) {
	p1 := profile.MustNew(0.9, 0.1) // mean .5, var .16
	p2 := profile.MustNew(0.6, 0.4) // mean .5, var .01
	winner, err := VarPredictsPower(p1, p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if winner != 1 {
		t.Fatalf("winner = %d, want 1", winner)
	}
	winner, err = VarPredictsPower(p2, p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if winner != 2 {
		t.Fatalf("winner = %d, want 2", winner)
	}
}

func TestVarPredictsPowerRejectsUnequalMeans(t *testing.T) {
	if _, err := VarPredictsPower(profile.MustNew(1, 0.5), profile.MustNew(0.5, 0.5), 0); err == nil {
		t.Fatal("unequal means accepted")
	}
}

func TestVarPredictsPowerRejectsTies(t *testing.T) {
	p := profile.MustNew(0.7, 0.3)
	if _, err := VarPredictsPower(p, p.Clone(), 0); err == nil {
		t.Fatal("tied variances accepted")
	}
}

func TestVarianceHeuristicCanFail(t *testing.T) {
	// §4.3: variance is NOT a perfect predictor for n > 2. Find a "bad"
	// pair among random equal-mean 4-computer clusters to demonstrate the
	// phenomenon the paper reports (~23-24% of pairs).
	m := model.Table1()
	r := stats.NewRNG(181)
	bad := 0
	trials := 0
	for trial := 0; trial < 2000 && bad == 0; trial++ {
		p1, p2, err := profile.EqualMeanPair(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		winner, err := VarPredictsPower(p1, p2, 1e-9)
		if err != nil {
			continue
		}
		trials++
		actual := Compare(m, p1, p2)
		if (winner == 1 && actual < 0) || (winner == 2 && actual > 0) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatalf("no bad pair found in %d trials; §4.3's phenomenon should appear", trials)
	}
}
