package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestHECRHomogeneousIdentity(t *testing.T) {
	// A homogeneous cluster's HECR is its own ρ.
	m := model.Table1()
	for _, rho := range []float64{0.05, 0.25, 0.5, 1} {
		for _, n := range []int{1, 2, 7, 64} {
			got := HECR(m, profile.Homogeneous(n, rho))
			if !relClose(got, rho, 1e-9) {
				t.Fatalf("HECR(Hom(%d, %v)) = %v", n, rho, got)
			}
		}
	}
}

func TestHECRRoundtripThroughX(t *testing.T) {
	// By definition the HECR is the ρ at which the homogeneous cluster's X
	// equals the cluster's X.
	m := model.Table1()
	r := stats.NewRNG(139)
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(r)
		h := HECR(m, p)
		if !relClose(XHomogeneous(m, len(p), h), X(m, p), 1e-9) {
			t.Fatalf("X(P^(HECR)) = %v != X(P) = %v for %v (HECR %v)", XHomogeneous(m, len(p), h), X(m, p), p, h)
		}
	}
}

func TestHECRBracketedBySpeeds(t *testing.T) {
	// r is monotone and the HECR is r⁻¹ of a geometric mean, so it lies
	// between the fastest and slowest ρ of the cluster.
	m := model.Table1()
	r := stats.NewRNG(149)
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(r)
		h := HECR(m, p)
		if h < p.Fastest()-1e-12 || h > p.Slowest()+1e-12 {
			t.Fatalf("HECR %v outside [%v, %v] for %v", h, p.Fastest(), p.Slowest(), p)
		}
	}
}

func TestHECRNumericAgreesWithClosedForm(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(151)
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(r)
		closed := HECR(m, p)
		numeric, err := HECRNumeric(m, p, 0)
		if err != nil {
			t.Fatalf("numeric inversion failed for %v: %v", p, err)
		}
		if !relClose(closed, numeric, 1e-8) {
			t.Fatalf("closed %v != numeric %v for %v", closed, numeric, p)
		}
	}
}

func TestHECRTable3(t *testing.T) {
	// Table 3 of the paper (Table 1 parameters). Paper values: C1 =
	// 0.366/0.298/0.251 and C2 = 0.216/0.116/0.060 for n = 8/16/32. Our
	// exact evaluation of Proposition 1 gives values within 3% of those;
	// the small residual is attributable to the paper's unreported rounding
	// of its simulation constants (see EXPERIMENTS.md). We pin our exact
	// values tightly and the paper's within tolerance.
	m := model.Table1()
	cases := []struct {
		n            int
		exactC1      float64 // this implementation, pinned to 4 digits
		exactC2      float64
		paperC1      float64 // published values
		paperC2      float64
		paperRatioLo float64 // paper's "roughly" ratio commentary
		paperRatioHi float64
	}{
		{8, 0.3679, 0.2222, 0.366, 0.216, 1.6, 1.8},
		{16, 0.2958, 0.1176, 0.298, 0.116, 2.4, 2.7},
		{32, 0.2464, 0.0606, 0.251, 0.060, 4.0, 4.3},
	}
	for _, tc := range cases {
		c1 := HECR(m, profile.Linear(tc.n))
		c2 := HECR(m, profile.Harmonic(tc.n))
		if math.Abs(c1-tc.exactC1) > 5e-4 || math.Abs(c2-tc.exactC2) > 5e-4 {
			t.Fatalf("n=%d: HECRs %.4f/%.4f drifted from pinned %.4f/%.4f", tc.n, c1, c2, tc.exactC1, tc.exactC2)
		}
		if math.Abs(c1-tc.paperC1)/tc.paperC1 > 0.03 || math.Abs(c2-tc.paperC2)/tc.paperC2 > 0.03 {
			t.Fatalf("n=%d: HECRs %.4f/%.4f differ from paper %.3f/%.3f by more than 3%%", tc.n, c1, c2, tc.paperC1, tc.paperC2)
		}
		ratio := HECRRatio(m, profile.Linear(tc.n), profile.Harmonic(tc.n))
		if ratio < tc.paperRatioLo || ratio > tc.paperRatioHi {
			t.Fatalf("n=%d: HECR ratio %v outside paper's range [%v,%v]", tc.n, ratio, tc.paperRatioLo, tc.paperRatioHi)
		}
		// C1's HECR must exceed C2's: most of C2's computers are faster.
		if !(c1 > c2) {
			t.Fatalf("n=%d: expected HECR(C1) > HECR(C2), got %v vs %v", tc.n, c1, c2)
		}
	}
}

func TestHECRConsistentWithCompare(t *testing.T) {
	// Smaller HECR must mean larger X for equal-size clusters.
	m := model.Table1()
	r := stats.NewRNG(157)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(10)
		p := profile.RandomNormalized(r, n)
		q := profile.RandomNormalized(r, n)
		cmp := Compare(m, p, q)
		h1, h2 := HECR(m, p), HECR(m, q)
		switch {
		case cmp > 0 && !(h1 < h2):
			t.Fatalf("X says p wins but HECRs are %v vs %v", h1, h2)
		case cmp < 0 && !(h2 < h1):
			t.Fatalf("X says q wins but HECRs are %v vs %v", h1, h2)
		}
	}
}

func TestHECRLargeCluster(t *testing.T) {
	m := model.Table1()
	p := profile.Harmonic(1 << 14)
	h := HECR(m, p)
	if math.IsNaN(h) || h <= 0 || h > 1 {
		t.Fatalf("HECR(n=2^14 harmonic) = %v", h)
	}
	if h < p.Fastest() || h > p.Slowest() {
		t.Fatalf("HECR %v outside speed bracket", h)
	}
}

func TestHECRNumericHonorsTolerance(t *testing.T) {
	m := model.Table1()
	p := profile.Linear(8)
	coarse, err := HECRNumeric(m, p, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coarse-HECR(m, p)) > 2e-3 {
		t.Fatalf("coarse numeric HECR %v too far from %v", coarse, HECR(m, p))
	}
}

func TestEquivalentClusterSize(t *testing.T) {
	m := model.Table1()
	// A homogeneous cluster measured against its own speed is its own size.
	p := profile.Homogeneous(6, 0.5)
	n, err := EquivalentClusterSize(m, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-6) > 1e-9 {
		t.Fatalf("self-equivalent size %v, want 6", n)
	}
	// Bracketing: ceil(n) machines beat the cluster, floor(n) lose to it.
	het := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	n, err = EquivalentClusterSize(m, het, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("size %v", n)
	}
	lo, hi := int(math.Floor(n)), int(math.Ceil(n))
	if lo >= 1 && XHomogeneous(m, lo, 0.3) >= X(m, het) {
		t.Fatalf("floor(%v) machines should lose", n)
	}
	if XHomogeneous(m, hi, 0.3) < X(m, het)-1e-9 {
		t.Fatalf("ceil(%v) machines should win", n)
	}
	// Faster reference machines mean fewer of them.
	nFast, err := EquivalentClusterSize(m, het, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(nFast < n) {
		t.Fatalf("faster reference needs %v ≥ %v machines", nFast, n)
	}
}

func TestEquivalentClusterSizeValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	for _, rho := range []float64{0, -0.5, 1.5} {
		if _, err := EquivalentClusterSize(m, p, rho); err == nil {
			t.Fatalf("ρ = %v accepted", rho)
		}
	}
}
