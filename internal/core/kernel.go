package core

import (
	"math"

	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Chunked evaluation kernels for the §4.3 large-profile regime (n up to
// 2^16 and beyond). The X-measure's primitive Σᵢ log r(ρᵢ) is a fold over
// independent per-computer terms, so it decomposes exactly like the paper's
// divisible-load worksharing: split the profile into contiguous chunks, fold
// each chunk with its own compensated accumulator on its own worker, then
// combine the per-chunk partials in chunk order with one more compensated
// fold. The combine order is fixed (chunk order, not completion order), so
// results are deterministic across runs; they differ from the serial fold
// only by the reassociation of the compensated sums, which the kernel tests
// pin to ≤ 1e-12 relative on profiles up to n = 2^16 (observed ≪ 1 ulp of
// the final measure in practice).

const (
	// ParallelCutover is the profile size at which the chunked kernels stop
	// delegating to the serial fold. Below it, goroutine fan-out costs more
	// than the scan; above it, chunks amortize the handoff. The value is a
	// conservative multiple of ParallelChunk so that a parallel evaluation
	// always has at least two full chunks per worker pair.
	ParallelCutover = 8192

	// ParallelChunk is the per-chunk item count of the chunked kernels:
	// large enough that a chunk's fold dominates its scheduling cost, small
	// enough that 16 workers stay busy on a 2^16-entry profile.
	ParallelChunk = 4096
)

// LogProductRatiosChunked returns log Πᵢ r(ρᵢ) — the same primitive as
// LogProductRatios — evaluated by the chunked parallel kernel when the
// profile is at least ParallelCutover long (workers ≤ 0 means GOMAXPROCS).
// Small profiles take the serial fold unchanged, so callers can use this
// unconditionally without perturbing existing small-n results.
func LogProductRatiosChunked(m model.Params, p profile.Profile, workers int) float64 {
	if len(p) < ParallelCutover {
		return LogProductRatios(m, p)
	}
	a, b, num := m.A(), m.B(), m.TauDelta()-m.A()
	partials := parallel.MapChunks(workers, len(p), ParallelChunk, func(lo, hi int) float64 {
		var acc stats.KahanSum
		for _, rho := range p[lo:hi] {
			acc.Add(math.Log1p(num / (b*rho + a)))
		}
		return acc.Sum()
	})
	var acc stats.KahanSum
	for _, part := range partials {
		acc.Add(part)
	}
	return acc.Sum()
}

// XChunked is X evaluated through the chunked kernel; see
// LogProductRatiosChunked for the cutover and determinism contract.
func XChunked(m model.Params, p profile.Profile, workers int) float64 {
	return XFromLogProduct(m, LogProductRatiosChunked(m, p, workers))
}

// HECRChunked is HECR evaluated through the chunked kernel.
func HECRChunked(m model.Params, p profile.Profile, workers int) float64 {
	return HECRFromLogProduct(m, LogProductRatiosChunked(m, p, workers), len(p))
}
