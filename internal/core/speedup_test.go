package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestTheorem3BestAdditiveIsAlwaysFastest(t *testing.T) {
	// Theorem 3, verified by brute force on random clusters: the most
	// advantageous additive speedup always targets the fastest computer.
	m := model.Table1()
	r := stats.NewRNG(163)
	for trial := 0; trial < 300; trial++ {
		p := profile.RandomNormalized(r, 2+r.Intn(10))
		phi := p.Fastest() * r.InRange(0.05, 0.95)
		choice, err := BestAdditive(m, p, phi)
		if err != nil {
			t.Fatal(err)
		}
		if choice.Index != Theorem3Index(p) {
			t.Fatalf("brute force picked %d, Theorem 3 says %d, profile %v φ=%v", choice.Index, Theorem3Index(p), p, phi)
		}
		if choice.WorkRatio <= 1 {
			t.Fatalf("work ratio %v not > 1", choice.WorkRatio)
		}
	}
}

func TestTable4WorkRatios(t *testing.T) {
	// Table 4: P = ⟨1, 1/2, 1/3, 1/4⟩, φ = 1/16, Table 1 parameters.
	// The published ratios are 1.008 / 1.014 / 1.034 / 1.159; evaluating
	// the paper's own expression (1) yields 1.0067 / 1.0286 / 1.0692 /
	// 1.1333 — the published middle entries are not consistent with
	// eq. (1) at any (τ, π, δ) we could find (see EXPERIMENTS.md). The
	// qualitative content of the table is what Theorem 3 asserts and what
	// we pin here: ratios strictly increase toward the fastest computer,
	// the fastest wins by a large margin, and the fastest/slowest
	// advantage ratio ≈ 20× matches the published 15.9/0.8 ≈ 20×.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	phi := 1.0 / 16
	pinned := []float64{1.0067, 1.0286, 1.0692, 1.1333}
	var ratios [4]float64
	for i := 0; i < 4; i++ {
		q, err := p.SpeedUpAdditive(i, phi)
		if err != nil {
			t.Fatal(err)
		}
		ratios[i] = WorkRatio(m, q, p)
		if math.Abs(ratios[i]-pinned[i]) > 5e-4 {
			t.Fatalf("ratio[%d] = %.4f drifted from pinned %.4f", i, ratios[i], pinned[i])
		}
	}
	for i := 0; i < 3; i++ {
		if !(ratios[i] < ratios[i+1]) {
			t.Fatalf("ratios not increasing toward the fastest computer: %v", ratios)
		}
	}
	advantage := (ratios[3] - 1) / (ratios[0] - 1)
	if advantage < 15 || advantage > 25 {
		t.Fatalf("fastest/slowest advantage ratio %v outside the paper's ≈20× regime", advantage)
	}
}

func TestBestAdditiveRejectsBadPhi(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.25)
	for _, phi := range []float64{0, -0.1, 0.25, 0.5} {
		if _, err := BestAdditive(m, p, phi); err == nil {
			t.Fatalf("φ = %v accepted", phi)
		}
	}
}

func TestBestMultiplicativeRejectsBadPsi(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.25)
	for _, psi := range []float64{0, 1, 1.5, -0.5} {
		if _, err := BestMultiplicative(m, p, psi); err == nil {
			t.Fatalf("ψ = %v accepted", psi)
		}
	}
}

func TestBestMultiplicativeTieBreaksToLargerIndex(t *testing.T) {
	// On a homogeneous cluster all speedups tie; the paper's rule picks the
	// largest index (§3.2.2).
	m := model.Figs34()
	choice, err := BestMultiplicative(m, profile.MustNew(1, 1, 1, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Index != 3 {
		t.Fatalf("tie broken to index %d, want 3", choice.Index)
	}
}

func TestTheorem4AgreesWithBruteForce(t *testing.T) {
	// For a pair {Cᵢ, Cⱼ} embedded in a random cluster, Theorem 4's
	// threshold test must agree with direct X comparison of the two
	// candidate speedups. Use the Fig 3/4 parameters, whose threshold
	// K ≈ 0.04 sits inside the reachable range of ψρᵢρⱼ so both branches
	// get exercised.
	m := model.Figs34()
	r := stats.NewRNG(167)
	branch1, branch2 := 0, 0
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(6)
		p := profile.RandomNormalized(r, n)
		i := r.Intn(n)
		j := r.Intn(n)
		if p[i] == p[j] {
			continue
		}
		if p[i] < p[j] {
			i, j = j, i // ensure ρᵢ > ρⱼ
		}
		psi := r.InRange(0.05, 0.95)
		fasterWins, boundary, err := Theorem4Prefers(m, p[i], p[j], psi)
		if err != nil {
			t.Fatal(err)
		}
		if boundary {
			continue
		}
		pi, err := p.SpeedUpMultiplicative(i, psi)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := p.SpeedUpMultiplicative(j, psi)
		if err != nil {
			t.Fatal(err)
		}
		bruteFasterWins := Compare(m, pj, pi) > 0
		if fasterWins != bruteFasterWins {
			t.Fatalf("Theorem 4 says fasterWins=%v, brute force says %v (ρᵢ=%v ρⱼ=%v ψ=%v K=%v)",
				fasterWins, bruteFasterWins, p[i], p[j], psi, m.Theorem4Threshold())
		}
		if fasterWins {
			branch1++
		} else {
			branch2++
		}
	}
	if branch1 == 0 || branch2 == 0 {
		t.Fatalf("test did not exercise both Theorem 4 branches (%d/%d)", branch1, branch2)
	}
}

func TestTheorem4PrefersValidation(t *testing.T) {
	m := model.Table1()
	if _, _, err := Theorem4Prefers(m, 0.5, 0.5, 0.5); err == nil {
		t.Fatal("equal speeds accepted")
	}
	if _, _, err := Theorem4Prefers(m, 0.25, 0.5, 0.5); err == nil {
		t.Fatal("ρᵢ < ρⱼ accepted")
	}
	if _, _, err := Theorem4Prefers(m, 1, 0.5, 1); err == nil {
		t.Fatal("ψ = 1 accepted")
	}
}

func TestGreedyPlanReproducesFigures3And4(t *testing.T) {
	// Figures 3–4: starting from ⟨1,1,1,1⟩ with ψ = 1/2 under the Fig 3/4
	// parameters, phase 1 (16 rounds) repeatedly speeds the then-fastest
	// computer in blocks of four — C4 ×4, C3 ×4, C2 ×4, C1 ×4 — ending at
	// ⟨1/16,…⟩; phase 2 then speeds the then-slowest computer, sweeping
	// C4, C3, C2, C1 to reach ⟨1/32,…⟩.
	m := model.Figs34()
	steps, err := GreedyMultiplicativePlan(m, profile.MustNew(1, 1, 1, 1), 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 20 {
		t.Fatalf("got %d steps", len(steps))
	}
	wantIndex := []int{
		3, 3, 3, 3, // phase 1: C4 down to 1/16
		2, 2, 2, 2, // C3
		1, 1, 1, 1, // C2
		0, 0, 0, 0, // C1 — profile now ⟨1/16,1/16,1/16,1/16⟩
		3, 2, 1, 0, // phase 2: slowest (tie-break high index) each round
	}
	for k, s := range steps {
		if s.Index != wantIndex[k] {
			t.Fatalf("round %d chose C%d, want C%d", s.Round, s.Index+1, wantIndex[k]+1)
		}
		if !(s.XAfter > s.XBefore) {
			t.Fatalf("round %d did not increase X", s.Round)
		}
	}
	after16 := steps[15].After
	for _, rho := range after16 {
		if rho != 1.0/16 {
			t.Fatalf("after phase 1, profile = %v, want all 1/16", after16)
		}
	}
	after20 := steps[19].After
	for _, rho := range after20 {
		if rho != 1.0/32 {
			t.Fatalf("after phase 2 sweep, profile = %v, want all 1/32", after20)
		}
	}
}

func TestGreedyPlanZeroRounds(t *testing.T) {
	steps, err := GreedyMultiplicativePlan(model.Table1(), profile.Linear(4), 0.5, 0)
	if err != nil || len(steps) != 0 {
		t.Fatalf("zero rounds: %v, %v", steps, err)
	}
	if _, err := GreedyMultiplicativePlan(model.Table1(), profile.Linear(4), 0.5, -1); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestGreedyPlanDoesNotMutateInput(t *testing.T) {
	p := profile.MustNew(1, 1)
	if _, err := GreedyMultiplicativePlan(model.Figs34(), p, 0.5, 3); err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 || p[1] != 1 {
		t.Fatalf("input mutated: %v", p)
	}
}

func TestBestAdditivePicksStrictlyBestWhenUnique(t *testing.T) {
	// With distinct speeds the optimum is unique; check WorkRatio is the
	// max across all candidates.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	choice, err := BestAdditive(m, p, 1.0/16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		q, err := p.SpeedUpAdditive(i, 1.0/16)
		if err != nil {
			t.Fatal(err)
		}
		if r := WorkRatio(m, q, p); r > choice.WorkRatio+1e-15 {
			t.Fatalf("candidate %d ratio %v beats chosen %v", i, r, choice.WorkRatio)
		}
	}
}
