package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// TestMostSensitiveIndexLargeN is the underflow regression test: for
// clusters large enough that exp(Σ log r) flushes to zero, the old
// gradient-based ranking saw every component as −0 and degenerated to the
// last index. The prod-free ranking must keep returning the fastest
// computer (Theorem 3) regardless of where it sits.
func TestMostSensitiveIndexLargeN(t *testing.T) {
	// Expensive-network, tiny-result parameters: log r(1) ≈ −0.095, so the
	// log-product passes the double-precision underflow point (≈ −745)
	// before n = 2^13.
	m := model.Params{Tau: 0.01, Pi: 0.1, Delta: 0.01}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1 << 13, 1 << 16} {
		p := make(profile.Profile, n)
		for i := range p {
			p[i] = 1
		}
		fastest := n / 3 // deliberately NOT the last index
		p[fastest] = 0.25
		if prod := math.Exp(LogProductRatios(m, p)); prod != 0 {
			t.Fatalf("n=%d: exp(Σ log r) = %v; test needs the underflow regime", n, prod)
		}
		if got := MostSensitiveIndex(m, p); got != fastest {
			t.Fatalf("n=%d: MostSensitiveIndex = %d, want fastest index %d", n, got, fastest)
		}
		if got, want := MostSensitiveIndex(m, p), p.FastestIndex(); got != want {
			t.Fatalf("n=%d: disagrees with FastestIndex: %d vs %d", n, got, want)
		}
	}
}

// TestSensitivityScoreMatchesGradientRanking checks that in the small-n
// regime (no underflow) the prod-free score orders computers exactly like
// the true gradient magnitude.
func TestSensitivityScoreMatchesGradientRanking(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(29)
	for trial := 0; trial < 200; trial++ {
		p := profile.RandomNormalized(r, 2+r.Intn(12))
		score := SensitivityScore(m, p)
		grad := XGradient(m, p)
		for i := range p {
			for j := range p {
				gi, gj := math.Abs(grad[i]), math.Abs(grad[j])
				if gi == 0 || gj == 0 {
					t.Fatalf("gradient underflowed at n=%d; enlarge the small-n regime bound", len(p))
				}
				// Strict gradient order must be reproduced; ties may go
				// either way at ulp level.
				if gi > gj*(1+1e-12) && score[i] <= score[j]*(1-1e-12) {
					t.Fatalf("score order disagrees with gradient: |g[%d]|=%v > |g[%d]|=%v but score %v ≤ %v",
						i, gi, j, gj, score[i], score[j])
				}
			}
		}
	}
}

// TestBestSpeedupMatchesBruteForce cross-validates the O(n) incremental
// speedup search against the retained O(n²) reference on random clusters.
func TestBestSpeedupMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(31)
	for _, m := range []model.Params{model.Table1(), model.Figs34()} {
		for trial := 0; trial < 150; trial++ {
			p := profile.RandomNormalized(r, 2+r.Intn(40))
			phi := p.Fastest() * r.InRange(0.05, 0.95)
			fast, err := BestAdditive(m, p, phi)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := BestAdditiveBruteForce(m, p, phi)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Index != brute.Index {
				t.Fatalf("additive: incremental picks %d, brute force %d (profile %v, φ=%v)", fast.Index, brute.Index, p, phi)
			}
			if math.Abs(fast.WorkRatio-brute.WorkRatio) > 1e-12*brute.WorkRatio {
				t.Fatalf("additive: work ratios diverge: %v vs %v", fast.WorkRatio, brute.WorkRatio)
			}

			psi := r.InRange(0.05, 0.95)
			fastM, err := BestMultiplicative(m, p, psi)
			if err != nil {
				t.Fatal(err)
			}
			bruteM, err := BestMultiplicativeBruteForce(m, p, psi)
			if err != nil {
				t.Fatal(err)
			}
			if fastM.Index != bruteM.Index {
				t.Fatalf("multiplicative: incremental picks %d, brute force %d (profile %v, ψ=%v)", fastM.Index, bruteM.Index, p, psi)
			}
		}
	}
}

// TestBruteForceSpeedupTieBreak pins the reference implementations to the
// same §3.2.2 larger-index tie-break as the fast path.
func TestBruteForceSpeedupTieBreak(t *testing.T) {
	m := model.Figs34()
	p := profile.MustNew(1, 1, 1, 1)
	brute, err := BestMultiplicativeBruteForce(m, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := BestMultiplicative(m, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if brute.Index != 3 || fast.Index != 3 {
		t.Fatalf("tie broken to %d (brute) / %d (fast), want 3", brute.Index, fast.Index)
	}
	if _, err := BestAdditiveBruteForce(m, p, 2); err == nil {
		t.Fatal("brute-force additive accepted φ ≥ ρ_fastest")
	}
	if _, err := BestMultiplicativeBruteForce(m, p, 1); err == nil {
		t.Fatal("brute-force multiplicative accepted ψ = 1")
	}
}
