package core

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// Prop3Predicts applies Proposition 3's sufficient condition for cluster P1
// to outperform cluster P2: for every index pair i < j in {0..n},
//
//	Fᵢ(P1)·Fⱼ(P2) ≥ Fᵢ(P2)·Fⱼ(P1),
//
// with at least one strict inequality. It returns true only when the whole
// system holds; false means the test is inconclusive (NOT that P2 wins).
// The clusters must have the same size.
func Prop3Predicts(p1, p2 profile.Profile) (bool, error) {
	if len(p1) != len(p2) {
		return false, fmt.Errorf("core: Proposition 3 compares equal-size clusters, got %d and %d", len(p1), len(p2))
	}
	f1 := p1.ElementarySymmetric()
	f2 := p2.ElementarySymmetric()
	strict := false
	for i := 0; i <= len(p1); i++ {
		for j := i + 1; j <= len(p1); j++ {
			lhs := f1[i] * f2[j]
			rhs := f2[i] * f1[j]
			if lhs < rhs {
				return false, nil
			}
			if lhs > rhs {
				strict = true
			}
		}
	}
	return strict, nil
}

// VarPredictsPower applies the §4.2/§4.3 heuristic to two equal-mean
// clusters: predict that the cluster with the larger profile variance is
// the more powerful one. It returns the predicted winner (1 or 2), or an
// error if the means differ by more than meanTol (the heuristic is only
// defined for equal mean speeds) or the variances tie.
func VarPredictsPower(p1, p2 profile.Profile, meanTol float64) (int, error) {
	if meanTol <= 0 {
		meanTol = 1e-9
	}
	m1, m2 := p1.Mean(), p2.Mean()
	if diff := m1 - m2; diff > meanTol || diff < -meanTol {
		return 0, fmt.Errorf("core: variance heuristic needs equal mean speeds, got %v and %v", m1, m2)
	}
	v1, v2 := p1.Variance(), p2.Variance()
	switch {
	case v1 > v2:
		return 1, nil
	case v2 > v1:
		return 2, nil
	default:
		return 0, fmt.Errorf("core: variances tie at %v", v1)
	}
}

// Theorem5Biconditional checks the n = 2 biconditional of Theorem 5(2) for
// two equal-mean 2-computer clusters: P1 outperforms P2 iff
// VAR(P1) > VAR(P2). It returns the truth of both sides so callers (and the
// property tests) can assert they agree.
func Theorem5Biconditional(m model.Params, p1, p2 profile.Profile) (outperforms, largerVariance bool, err error) {
	if len(p1) != 2 || len(p2) != 2 {
		return false, false, fmt.Errorf("core: Theorem 5(2) is stated for 2-computer clusters, got %d and %d", len(p1), len(p2))
	}
	return Compare(m, p1, p2) > 0, p1.Variance() > p2.Variance(), nil
}
