// Package core implements the paper's primary contribution: measuring the
// computing power of a heterogeneous cluster through its optimal solutions
// to the Cluster-Exploitation Problem.
//
// The central quantities, for a cluster with heterogeneity profile
// P = ⟨ρ1,…,ρn⟩ in an environment with constants A = π+τ, B = 1+(1+δ)π:
//
//   - the X-measure of Theorem 2,
//     X(P) = Σᵢ [1/(Bρᵢ+A)] Πⱼ<ᵢ (Bρⱼ+τδ)/(Bρⱼ+A),
//     which this package evaluates through the telescoped closed form
//     X(P) = (1 − Πᵢ r(ρᵢ)) / (A − τδ) with r(ρ) = (Bρ+τδ)/(Bρ+A);
//   - the asymptotic work production W(L;P) = L / (τδ + 1/X(P));
//   - the homogeneous-equivalent computing rate (HECR) of Proposition 1;
//   - the speedup results of §3 (Theorems 3 and 4) and a greedy iterated
//     speedup planner reproducing Figures 3 and 4;
//   - the symmetric-function machinery of §4 (Lemma 1's rational form of X
//     and Proposition 3's sufficient outperformance test) and the moment
//     results of Theorem 5.
//
// The telescoped form makes the two structural facts the paper leans on
// self-evident: X is symmetric in the ρᵢ (Theorem 1.2 — work production is
// independent of the startup order) and strictly decreasing in every ρᵢ
// (Proposition 2 — faster clusters complete more work). It is also the key
// to numerical robustness: Π r(ρᵢ) is accumulated as Σ log1p(·) so that
// clusters as large as n = 2¹⁶ (the paper's §4.3 study) are handled at full
// float64 precision.
package core
