package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// FuzzXInvariants drives the X-measure with arbitrary float material and
// checks the structural invariants that must hold for every valid profile:
// 0 < X < 1/(A−τδ), permutation invariance, HECR bracketing, and agreement
// between the independent implementations.
func FuzzXInvariants(f *testing.F) {
	f.Add(1.0, 0.5, 0.25, 0.125)
	f.Add(0.001, 0.001, 1.0, 1.0)
	f.Add(0.9999, 0.0001, 0.5, 0.51)
	m := model.Table1()
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		rhos := make([]float64, 0, 4)
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
			r := math.Mod(math.Abs(v), 1)
			if r == 0 {
				continue
			}
			rhos = append(rhos, r)
		}
		if len(rhos) == 0 {
			return
		}
		p, err := profile.New(rhos...)
		if err != nil {
			return
		}
		x := X(m, p)
		if !(x > 0) || x >= 1/(m.A()-m.TauDelta()) {
			t.Fatalf("X = %v out of range for %v", x, p)
		}
		if xd := XDirect(m, p); math.Abs(x-xd) > 1e-8*x {
			t.Fatalf("X forms disagree: %v vs %v for %v", x, xd, p)
		}
		// Reverse is a permutation; X must not care.
		rev := make(profile.Profile, len(p))
		for i := range p {
			rev[i] = p[len(p)-1-i]
		}
		if xr := X(m, rev); math.Abs(x-xr) > 1e-10*x {
			t.Fatalf("X not permutation invariant: %v vs %v", x, xr)
		}
		h := HECR(m, p)
		if h < p.Fastest()-1e-9 || h > p.Slowest()+1e-9 {
			t.Fatalf("HECR %v outside [%v,%v]", h, p.Fastest(), p.Slowest())
		}
	})
}
