package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// kernelTolerance is the documented agreement bound between the chunked and
// serial folds: the only difference between the two is the reassociation of
// compensated sums across chunk boundaries, so the relative error stays at
// the few-ulp level even at n = 2^16. The tests pin 1e-12 relative; observed
// values are orders of magnitude smaller.
const kernelTolerance = 1e-12

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / scale
}

func TestChunkedMatchesSerialUpTo64K(t *testing.T) {
	for _, m := range []model.Params{model.Table1(), model.Figs34(), model.Table1Fine()} {
		for _, n := range []int{1, 100, ParallelCutover - 1, ParallelCutover, 1 << 14, 1 << 16} {
			p := profile.RandomNormalized(stats.NewRNG(uint64(n)+7), n)
			serial := LogProductRatios(m, p)
			chunked := LogProductRatiosChunked(m, p, 0)
			if d := relDiff(serial, chunked); d > kernelTolerance {
				t.Fatalf("n=%d %v: log-product rel diff %g (serial %v, chunked %v)", n, m, d, serial, chunked)
			}
			if d := relDiff(X(m, p), XChunked(m, p, 0)); d > kernelTolerance {
				t.Fatalf("n=%d %v: X rel diff %g", n, m, d)
			}
			if d := relDiff(HECR(m, p), HECRChunked(m, p, 0)); d > kernelTolerance {
				t.Fatalf("n=%d %v: HECR rel diff %g", n, m, d)
			}
		}
	}
}

func TestChunkedBelowCutoverIsBitIdentical(t *testing.T) {
	// Under the cutover the chunked entry points delegate to the serial fold,
	// so results are the same bits — existing small-n callers see no change.
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(42), ParallelCutover-1)
	if LogProductRatiosChunked(m, p, 0) != LogProductRatios(m, p) {
		t.Fatal("sub-cutover chunked fold diverged from the serial fold")
	}
	if XChunked(m, p, 0) != X(m, p) || HECRChunked(m, p, 0) != HECR(m, p) {
		t.Fatal("sub-cutover chunked measures diverged from the serial measures")
	}
}

func TestChunkedIsDeterministic(t *testing.T) {
	// The combine folds per-chunk partials in chunk order, not completion
	// order, so repeated parallel runs agree bit-for-bit.
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(3), 1<<15)
	first := LogProductRatiosChunked(m, p, 0)
	for i := 0; i < 8; i++ {
		if again := LogProductRatiosChunked(m, p, 8); again != first {
			t.Fatalf("chunked kernel nondeterministic: %v vs %v", again, first)
		}
	}
}

func TestChunkedSingleWorkerMatchesParallel(t *testing.T) {
	m := model.Figs34()
	p := profile.RandomNormalized(stats.NewRNG(11), 1<<14)
	if LogProductRatiosChunked(m, p, 1) != LogProductRatiosChunked(m, p, 8) {
		t.Fatal("worker count changed the chunked result")
	}
}

func BenchmarkLogProductSerial64K(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(1), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = LogProductRatios(m, p)
	}
}

func BenchmarkLogProductChunked64K(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(1), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = LogProductRatiosChunked(m, p, 0)
	}
}

var sinkFloat float64
