package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestLemma1CoefficientsPositive(t *testing.T) {
	// Lemma 1 requires all αᵢ, βᵢ > 0 (that positivity is what powers
	// Proposition 3's Claim 1).
	alpha, beta, err := Lemma1Coefficients(model.Table1(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha) != 12 || len(beta) != 13 {
		t.Fatalf("lengths %d/%d, want 12/13", len(alpha), len(beta))
	}
	for i, a := range alpha {
		if !(a > 0) {
			t.Fatalf("α[%d] = %v not positive", i, a)
		}
	}
	for i, b := range beta {
		if !(b > 0) {
			t.Fatalf("β[%d] = %v not positive", i, b)
		}
	}
}

func TestLemma1Claim1(t *testing.T) {
	// Claim 1 inside Proposition 3's proof: αᵢβⱼ > αⱼβᵢ for all i < j.
	for _, m := range []model.Params{model.Table1(), model.Figs34()} {
		alpha, beta, err := Lemma1Coefficients(m, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(alpha); i++ {
			for j := i + 1; j < len(alpha); j++ {
				if !(alpha[i]*beta[j] > alpha[j]*beta[i]) {
					t.Fatalf("Claim 1 fails at (%d,%d) under %v", i, j, m)
				}
			}
		}
	}
}

func TestXRationalMatchesTelescoped(t *testing.T) {
	r := stats.NewRNG(191)
	for _, m := range []model.Params{model.Table1(), model.Figs34()} {
		for trial := 0; trial < 100; trial++ {
			p := profile.RandomNormalized(r, 1+r.Intn(16))
			xr, err := XRational(m, p)
			if err != nil {
				t.Fatalf("n=%d: %v", len(p), err)
			}
			if !relClose(xr, X(m, p), 1e-9) {
				t.Fatalf("rational %v != telescoped %v for %v under %v", xr, X(m, p), p, m)
			}
		}
	}
}

func TestXRationalDenominatorIsProduct(t *testing.T) {
	// The Lemma 1 denominator is Πᵢ(Bρᵢ + A); check against the scaled
	// coefficient expansion: Σ β̄ᵢFᵢ = A⁻ⁿ·Π(Bρᵢ+A).
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	_, beta, err := Lemma1Coefficients(m, len(p))
	if err != nil {
		t.Fatal(err)
	}
	f := p.ElementarySymmetric()
	den := 0.0
	for i := range beta {
		den += beta[i] * f[i]
	}
	want := 1.0
	for _, rho := range p {
		want *= m.B()*rho + m.A()
	}
	want /= math.Pow(m.A(), float64(len(p)))
	if !relClose(den, want, 1e-12) {
		t.Fatalf("denominator %v != scaled product %v", den, want)
	}
}

func TestLemma1RejectsBadN(t *testing.T) {
	if _, _, err := Lemma1Coefficients(model.Table1(), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestXRationalFailsGracefullyAtHugeN(t *testing.T) {
	// (B/A)ⁿ overflows float64 near n ≈ 62 for Table 1 parameters; the
	// rational path must report the failure instead of returning garbage.
	m := model.Table1()
	p := profile.Homogeneous(120, 0.5)
	if _, err := XRational(m, p); err == nil {
		t.Fatal("expected overflow error at n=120")
	}
	// The primary path is unaffected.
	if x := X(m, p); math.IsNaN(x) || x <= 0 {
		t.Fatalf("X(n=120) = %v", x)
	}
}
