package core

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// HECR returns the homogeneous-equivalent computing rate of Proposition 1:
// the ρ such that n identical speed-ρ computers match the cluster's
// X-measure. Writing D for the geometric mean of the r(ρᵢ),
//
//	HECR = (A·D − τδ) / (B·(1 − D)).
//
// Smaller HECR means a more powerful cluster. The value always lies between
// the cluster's fastest and slowest ρ (r is monotone, D is intermediate),
// and equals ρ exactly for homogeneous clusters.
func HECR(m model.Params, p profile.Profile) float64 {
	return HECRFromLogProduct(m, LogProductRatios(m, p), len(p))
}

// HECRFromLogProduct finishes the HECR evaluation from the primitive
// quantity log Π r(ρᵢ) and the cluster size n. Callers that maintain the
// log-product incrementally (internal/incr) use this to share one numerical
// path with HECR.
func HECRFromLogProduct(m model.Params, logProd float64, n int) float64 {
	logD := logProd / float64(n)
	// Numerator A·D − τδ = (A − τδ) + A·(D − 1); both pieces are computed
	// without cancellation: expm1 gives D−1 directly.
	dm1 := math.Expm1(logD) // D − 1 ∈ (−1, 0)
	num := (m.A() - m.TauDelta()) + m.A()*dm1
	den := m.B() * -dm1 // B·(1 − D)
	return num / den
}

// HECRNumeric inverts X(P⁽ρ⁾) = X(P) by bisection on ρ. It is an
// independent implementation used to cross-validate the closed form; tol is
// the absolute tolerance on ρ (use 0 for a tight default).
func HECRNumeric(m model.Params, p profile.Profile, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-14
	}
	target := LogProductRatios(m, p) / float64(len(p))
	// Solve log r(ρ) = target. log r is strictly increasing in ρ; bracket
	// with the cluster's own extremes, which bound the HECR.
	lo, hi := p.Fastest(), p.Slowest()
	if logRatio(m, lo) > target || logRatio(m, hi) < target {
		return 0, fmt.Errorf("core: HECR target outside bracket [%v, %v]", lo, hi)
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break // bracket at float resolution
		}
		if logRatio(m, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// HECRRatio returns HECR(p1)/HECR(p2) — the "work advantage" figure the
// paper reads off Table 3 (e.g. C1's HECR over C2's grows from ≈1.7 at
// n = 8 to >4 at n = 32).
func HECRRatio(m model.Params, p1, p2 profile.Profile) float64 {
	return HECR(m, p1) / HECR(m, p2)
}

// EquivalentClusterSize answers the procurement question dual to the HECR:
// how many homogeneous speed-ρ computers does it take to match cluster P?
// Inverting eq. (2) for n (allowing fractional "machines"):
//
//	n = log(1 − (A−τδ)·X(P)) / log r(ρ).
//
// The result is exact in the X sense: XHomogeneous(⌈n⌉, ρ) ≥ X(P) >
// XHomogeneous(⌊n⌋, ρ) whenever n is not an integer.
func EquivalentClusterSize(m model.Params, p profile.Profile, rho float64) (float64, error) {
	if !(rho > 0) || rho > 1 {
		return 0, fmt.Errorf("core: reference speed ρ = %v outside (0,1]", rho)
	}
	return LogProductRatios(m, p) / logRatio(m, rho), nil
}
