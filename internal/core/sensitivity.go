package core

import (
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// XGradient returns ∂X/∂ρᵢ for every computer. Differentiating the
// telescoped form X = (1 − Π r(ρⱼ))/(A − τδ) gives the closed form
//
//	∂X/∂ρᵢ = −Π · B / ((Bρᵢ + τδ)(Bρᵢ + A)),
//
// using r'(ρ)/r(ρ) = B(A−τδ)/((Bρ+τδ)(Bρ+A)). Every component is negative
// (Proposition 2 in differential form: speeding any computer up — lowering
// its ρ — raises X), and the component with the smallest ρ has the largest
// magnitude, which is Theorem 3 in the limit of small additive speedups.
func XGradient(m model.Params, p profile.Profile) []float64 {
	prodLog := LogProductRatios(m, p)
	prod := math.Exp(prodLog)
	b, a, td := m.B(), m.A(), m.TauDelta()
	grad := make([]float64, len(p))
	for i, rho := range p {
		grad[i] = -prod * b / ((b*rho + td) * (b*rho + a))
	}
	return grad
}

// MarginalSpeedupValue returns −∂X/∂ρᵢ for each computer: the instantaneous
// work-measure gain per unit of additive speedup. The upgrade-advisor
// tooling uses it to rank candidates without evaluating X n times.
func MarginalSpeedupValue(m model.Params, p profile.Profile) []float64 {
	grad := XGradient(m, p)
	for i := range grad {
		grad[i] = -grad[i]
	}
	return grad
}

// MostSensitiveIndex returns the computer whose additive speedup raises X
// fastest (ties broken toward the larger index, matching the paper's rule).
// By Theorem 3 this is always the fastest computer.
func MostSensitiveIndex(m model.Params, p profile.Profile) int {
	value := MarginalSpeedupValue(m, p)
	best := 0
	for i, v := range value {
		if v >= value[best] {
			best = i
		}
	}
	return best
}
