package core

import (
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// XGradient returns ∂X/∂ρᵢ for every computer. Differentiating the
// telescoped form X = (1 − Π r(ρⱼ))/(A − τδ) gives the closed form
//
//	∂X/∂ρᵢ = −Π · B / ((Bρᵢ + τδ)(Bρᵢ + A)),
//
// using r'(ρ)/r(ρ) = B(A−τδ)/((Bρ+τδ)(Bρ+A)). Every component is negative
// (Proposition 2 in differential form: speeding any computer up — lowering
// its ρ — raises X), and the component with the smallest ρ has the largest
// magnitude, which is Theorem 3 in the limit of small additive speedups.
//
// Beware that the common factor Π = exp(Σ log r) underflows to 0 for
// clusters large enough that Σ log r < log(min subnormal) ≈ −745, making
// every component −0. Consumers that only need the *ranking* should use
// SensitivityScore, which drops the index-independent factor.
func XGradient(m model.Params, p profile.Profile) []float64 {
	prodLog := LogProductRatios(m, p)
	prod := math.Exp(prodLog)
	b, a, td := m.B(), m.A(), m.TauDelta()
	grad := make([]float64, len(p))
	for i, rho := range p {
		grad[i] = -prod * b / ((b*rho + td) * (b*rho + a))
	}
	return grad
}

// MarginalSpeedupValue returns −∂X/∂ρᵢ for each computer: the instantaneous
// work-measure gain per unit of additive speedup. The upgrade-advisor
// tooling uses it to rank candidates without evaluating X n times.
func MarginalSpeedupValue(m model.Params, p profile.Profile) []float64 {
	grad := XGradient(m, p)
	for i := range grad {
		grad[i] = -grad[i]
	}
	return grad
}

// SensitivityScore returns the prod-free sensitivity factors
// 1/((Bρᵢ+τδ)(Bρᵢ+A)). Each equals |∂X/∂ρᵢ| up to the index-independent
// positive constant Π·B, so their ranking is exactly the gradient's — but
// unlike the gradient they never underflow: for large n the common factor
// Π = Πⱼ r(ρⱼ) shrinks below the smallest subnormal and math.Exp flushes it
// to zero, which once made every gradient component 0 and the argmax
// degenerate.
func SensitivityScore(m model.Params, p profile.Profile) []float64 {
	b, a, td := m.B(), m.A(), m.TauDelta()
	score := make([]float64, len(p))
	for i, rho := range p {
		score[i] = 1 / ((b*rho + td) * (b*rho + a))
	}
	return score
}

// MostSensitiveIndex returns the computer whose additive speedup raises X
// fastest (ties broken toward the larger index, matching the paper's rule).
// By Theorem 3 this is always the fastest computer. The ranking uses the
// prod-free SensitivityScore rather than XGradient, so it stays exact even
// when exp(Σ log r) underflows to 0 at large n.
func MostSensitiveIndex(m model.Params, p profile.Profile) int {
	score := SensitivityScore(m, p)
	best := 0
	for i, v := range score {
		if v >= score[best] {
			best = i
		}
	}
	return best
}
