package core

import (
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestDecomposeReassemblesX(t *testing.T) {
	// Eq. (3) must reproduce X for every profile and every pair, because
	// X is startup-order invariant.
	r := stats.NewRNG(401)
	for _, m := range []model.Params{model.Table1(), model.Figs34()} {
		for trial := 0; trial < 200; trial++ {
			n := 2 + r.Intn(8)
			p := profile.RandomNormalized(r, n)
			i := r.Intn(n)
			j := r.Intn(n)
			if i == j {
				continue
			}
			d, err := Decompose(m, p, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if !relClose(d.X(), X(m, p), 1e-10) {
				t.Fatalf("Lead·Y + Z = %v != X = %v for %v pair (%d,%d)", d.X(), X(m, p), p, i, j)
			}
			if !(d.Lead > 0 && d.Y > 0 && d.Z >= 0) {
				t.Fatalf("eq. (3) pieces must be positive: %+v", d)
			}
		}
	}
}

func TestDecomposeTheorem3ViaLead(t *testing.T) {
	// Theorem 3's proof: an additive speedup of the faster computer gives
	// the larger Lead (Y and Z are untouched). Verify the proof step
	// directly.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	phi := 1.0 / 16
	// Pair {C1 (slower), C4 (faster)}: speeding C4 must beat speeding C1.
	spedSlow, err := p.SpeedUpAdditive(0, phi)
	if err != nil {
		t.Fatal(err)
	}
	spedFast, err := p.SpeedUpAdditive(3, phi)
	if err != nil {
		t.Fatal(err)
	}
	dSlow, err := Decompose(m, spedSlow, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	dFast, err := Decompose(m, spedFast, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Y and Z are shared (they never mention ρ₁ or ρ₄).
	if !relClose(dSlow.Y, dFast.Y, 1e-12) || !relClose(dSlow.Z, dFast.Z, 1e-12) {
		t.Fatalf("Y/Z should not depend on the pair's speeds: %+v vs %+v", dSlow, dFast)
	}
	if !(dFast.Lead > dSlow.Lead) {
		t.Fatalf("Theorem 3 proof step violated: Lead(fast) %v ≤ Lead(slow) %v", dFast.Lead, dSlow.Lead)
	}
}

func TestDecomposeTwoComputerCluster(t *testing.T) {
	// n = 2: Y = 1, Z = 0, X = Lead exactly.
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	d, err := Decompose(m, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Y != 1 || d.Z != 0 {
		t.Fatalf("n=2 pieces: %+v", d)
	}
	if !relClose(d.Lead, X(m, p), 1e-12) {
		t.Fatalf("n=2 Lead %v != X %v", d.Lead, X(m, p))
	}
}

func TestDecomposeValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 2}} {
		if _, err := Decompose(m, p, pair[0], pair[1]); err == nil {
			t.Fatalf("pair %v accepted", pair)
		}
	}
	if _, err := Decompose(m, profile.MustNew(1), 0, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
}
