package core

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// Decomposition is the paper's eq. (3): with a startup order putting
// computers i and j last (s_n = i, s_{n−1} = j),
//
//	X(P) = Lead · Y + Z
//	Lead = (A + B(ρᵢ+ρⱼ) + τδ) / (A² + AB(ρᵢ+ρⱼ) + B²ρᵢρⱼ)
//	Y    = Π_{k ≠ i,j} r(ρ_k)         (positive)
//	Z    = X(P without ρᵢ, ρⱼ)        (positive)
//
// Both Theorems 3 and 4 are one-line consequences: a speedup of ρᵢ or ρⱼ
// changes only Lead, so comparing two candidate speedups reduces to
// comparing two scalar fractions. This type exposes the pieces so the
// theorems' proof identity is directly checkable in code.
type Decomposition struct {
	I, J int
	Lead float64
	Y    float64
	Z    float64
}

// X reassembles Lead·Y + Z.
func (d Decomposition) X() float64 { return d.Lead*d.Y + d.Z }

// Decompose computes eq. (3) for the pair {i, j} of the profile. The
// profile needs at least two computers and i ≠ j.
func Decompose(m model.Params, p profile.Profile, i, j int) (Decomposition, error) {
	n := len(p)
	if n < 2 {
		return Decomposition{}, fmt.Errorf("core: eq. (3) needs at least 2 computers, got %d", n)
	}
	if i == j || i < 0 || j < 0 || i >= n || j >= n {
		return Decomposition{}, fmt.Errorf("core: invalid pair (%d, %d) for n = %d", i, j, n)
	}
	a, b, td := m.A(), m.B(), m.TauDelta()
	sum := p[i] + p[j]
	prod := p[i] * p[j]
	d := Decomposition{
		I:    i,
		J:    j,
		Lead: (a + b*sum + td) / (a*a + a*b*sum + b*b*prod),
		Y:    1,
	}
	rest := make(profile.Profile, 0, n-2)
	for k, rho := range p {
		if k == i || k == j {
			continue
		}
		d.Y *= Ratio(m, rho)
		rest = append(rest, rho)
	}
	if len(rest) > 0 {
		d.Z = X(m, rest)
	}
	return d, nil
}
