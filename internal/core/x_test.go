package core

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func relClose(a, b, rel float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*math.Max(scale, 1e-300)
}

// randomProfile draws a profile of size 1..12 for property tests.
func randomProfile(r *stats.RNG) profile.Profile {
	return profile.RandomNormalized(r, 1+r.Intn(12))
}

func TestRatioProperties(t *testing.T) {
	m := model.Table1()
	for _, rho := range []float64{1e-4, 0.01, 0.25, 0.5, 1} {
		r := Ratio(m, rho)
		if !(r > 0 && r < 1) {
			t.Fatalf("r(%v) = %v outside (0,1)", rho, r)
		}
	}
	// Monotone increasing in ρ.
	if !(Ratio(m, 0.2) < Ratio(m, 0.7)) {
		t.Fatal("Ratio not increasing in ρ")
	}
}

func TestLogRatioMatchesLog(t *testing.T) {
	m := model.Table1()
	for _, rho := range []float64{0.001, 0.1, 1} {
		// The naive log(Ratio) reference loses ~5 digits to cancellation
		// (r ≈ 1), so compare at the reference's accuracy, not logRatio's.
		want := math.Log(Ratio(m, rho))
		if got := logRatio(m, rho); math.Abs(got-want) > 1e-10*math.Abs(want) {
			t.Fatalf("logRatio(%v) = %v, want %v", rho, got, want)
		}
	}
}

func TestXFormsAgree(t *testing.T) {
	// The telescoped closed form, the direct eq. (1) sum, and Lemma 1's
	// rational form are three independent derivations of the same measure;
	// they must agree on random profiles.
	r := stats.NewRNG(101)
	m := model.Table1()
	for trial := 0; trial < 300; trial++ {
		p := randomProfile(r)
		xt := X(m, p)
		xd := XDirect(m, p)
		if !relClose(xt, xd, 1e-10) {
			t.Fatalf("telescoped %v != direct %v for %v", xt, xd, p)
		}
		xr, err := XRational(m, p)
		if err != nil {
			t.Fatalf("rational form failed for n=%d: %v", len(p), err)
		}
		if !relClose(xt, xr, 1e-9) {
			t.Fatalf("telescoped %v != rational %v for %v", xt, xr, p)
		}
	}
}

func TestXPermutationInvariance(t *testing.T) {
	// Theorem 1.2: work production — hence X — is identical under every
	// startup indexing.
	r := stats.NewRNG(103)
	m := model.Table1()
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(r)
		q := p.Permuted(r.Perm(len(p)))
		if x1, x2 := X(m, p), X(m, q); !relClose(x1, x2, 1e-12) {
			t.Fatalf("X changed under permutation: %v vs %v", x1, x2)
		}
		// The direct sum is where order could sneak in; check it too.
		if x1, x2 := XDirect(m, p), XDirect(m, q); !relClose(x1, x2, 1e-10) {
			t.Fatalf("XDirect changed under permutation: %v vs %v", x1, x2)
		}
	}
}

func TestXMonotone(t *testing.T) {
	// Proposition 2: speeding up any computer strictly increases X.
	r := stats.NewRNG(107)
	m := model.Table1()
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(r)
		i := r.Intn(len(p))
		phi := p[i] * r.InRange(0.05, 0.9)
		q, err := p.SpeedUpAdditive(i, phi)
		if err != nil {
			t.Fatal(err)
		}
		if !(X(m, q) > X(m, p)) {
			t.Fatalf("X did not increase: %v -> %v (sped ρ[%d] by %v)", X(m, p), X(m, q), i, phi)
		}
		if WorkRatio(m, q, p) <= 1 {
			t.Fatalf("work ratio %v not > 1", WorkRatio(m, q, p))
		}
	}
}

func TestXHomogeneousMatchesGeneral(t *testing.T) {
	m := model.Table1()
	for _, n := range []int{1, 2, 8, 33} {
		for _, rho := range []float64{0.01, 0.3, 1} {
			got := XHomogeneous(m, n, rho)
			want := X(m, profile.Homogeneous(n, rho))
			if !relClose(got, want, 1e-12) {
				t.Fatalf("XHomogeneous(n=%d, ρ=%v) = %v, want %v", n, rho, got, want)
			}
		}
	}
}

func TestXHomogeneousPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 accepted")
		}
	}()
	XHomogeneous(model.Table1(), 0, 0.5)
}

func TestSection4MeanCounterexample(t *testing.T) {
	// §4: ⟨0.99, 0.02⟩ outperforms ⟨0.5, 0.5⟩ although its mean ρ is larger
	// — mean speed is not a valid power predictor.
	m := model.Table1()
	hetero := profile.MustNew(0.99, 0.02)
	homo := profile.MustNew(0.5, 0.5)
	if !(X(m, hetero) > X(m, homo)) {
		t.Fatalf("X(⟨0.99,0.02⟩) = %v not > X(⟨0.5,0.5⟩) = %v", X(m, hetero), X(m, homo))
	}
	if !(hetero.Mean() > homo.Mean()) {
		t.Fatal("test premise broken: heterogeneous cluster should have the worse mean")
	}
	if got := Compare(m, hetero, homo); got != 1 {
		t.Fatalf("Compare = %d, want 1", got)
	}
}

func TestMinorizationImpliesOutperformance(t *testing.T) {
	r := stats.NewRNG(109)
	m := model.Table1()
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(r)
		i := r.Intn(len(p))
		q, err := p.SpeedUpAdditive(i, p[i]*0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !profile.Minorizes(q, p) {
			t.Fatalf("speedup result does not minorize original: %v vs %v", q, p)
		}
		if Compare(m, q, p) != 1 {
			t.Fatal("minorizing profile did not outperform")
		}
	}
}

func TestWorkProductionRelations(t *testing.T) {
	m := model.Table1()
	p := profile.Linear(8)
	l := 3600.0
	w := W(m, p, l)
	if !relClose(w, l*WorkRate(m, p), 1e-12) {
		t.Fatalf("W = %v, want L·rate = %v", w, l*WorkRate(m, p))
	}
	// Doubling the lifespan doubles the (asymptotic) work.
	if !relClose(W(m, p, 2*l), 2*w, 1e-12) {
		t.Fatal("W not linear in L")
	}
	if W(m, p, 0) != 0 {
		t.Fatal("W(0) != 0")
	}
}

func TestWPanicsOnNegativeLifespan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative lifespan accepted")
		}
	}()
	W(model.Table1(), profile.Linear(4), -1)
}

func TestRentalLifespanInvertsW(t *testing.T) {
	// CEP↔CRP duality: the lifespan to do W units is exactly the L at which
	// the CEP completes W units.
	m := model.Table1()
	r := stats.NewRNG(113)
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(r)
		work := r.InRange(1, 1e6)
		l := RentalLifespan(m, p, work)
		if !relClose(W(m, p, l), work, 1e-10) {
			t.Fatalf("roundtrip W(L(work)) = %v, want %v", W(m, p, l), work)
		}
	}
}

func TestRentalLifespanPanicsOnNegativeWork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative work accepted")
		}
	}()
	RentalLifespan(model.Table1(), profile.Linear(4), -5)
}

func TestMoreComputersMorePower(t *testing.T) {
	// Adding a computer (any computer) increases X: the extra term in
	// eq. (1) is positive.
	m := model.Table1()
	p4, p5 := profile.Linear(4), profile.Linear(5)
	if !(X(m, p5.Normalized()) > 0) {
		t.Fatal("sanity")
	}
	small := profile.MustNew(1, 0.5)
	big := profile.MustNew(1, 0.5, 1)
	if !(X(m, big) > X(m, small)) {
		t.Fatal("extra (slow) computer did not increase X")
	}
	_ = p4
}

func TestXLargeClusterStable(t *testing.T) {
	// The §4.3 study uses clusters up to n = 2^16; X and Compare must stay
	// finite and consistent at that scale.
	m := model.Table1()
	r := stats.NewRNG(127)
	p := profile.RandomNormalized(r, 1<<16)
	x := X(m, p)
	if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
		t.Fatalf("X(n=2^16) = %v", x)
	}
	// X is bounded by its ρ→0 limit 1/(A−τδ)·(1 − (τδ/A)ⁿ) < 1/(A−τδ).
	if x >= 1/(m.A()-m.TauDelta()) {
		t.Fatalf("X = %v exceeds theoretical supremum %v", x, 1/(m.A()-m.TauDelta()))
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(131)
	for trial := 0; trial < 100; trial++ {
		p, q := randomProfile(r), randomProfile(r)
		if Compare(m, p, q) != -Compare(m, q, p) {
			t.Fatalf("Compare not antisymmetric for %v, %v", p, q)
		}
	}
	p := profile.Linear(6)
	if Compare(m, p, p.Clone()) != 0 {
		t.Fatal("Compare(p,p) != 0")
	}
}

func TestXUpperBoundTheoreticalSupremum(t *testing.T) {
	// For any profile, 0 < X < 1/(A−τδ).
	m := model.Table1()
	r := stats.NewRNG(137)
	sup := 1 / (m.A() - m.TauDelta())
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(r)
		x := X(m, p)
		if !(x > 0 && x < sup) {
			t.Fatalf("X = %v outside (0, %v) for %v", x, sup, p)
		}
	}
}
