package core

import (
	"math"
	"testing"
	"testing/quick"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// sanitizeProfile maps arbitrary quick-generated float64s into a valid
// heterogeneity profile (ρ ∈ (0,1], 1..12 computers); it reports false when
// the raw material is unusable.
func sanitizeProfile(raw []float64) (profile.Profile, bool) {
	rhos := make([]float64, 0, 12)
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		r := math.Mod(math.Abs(v), 1)
		if r < 1e-3 {
			r += 1e-3
		}
		rhos = append(rhos, r)
		if len(rhos) == 12 {
			break
		}
	}
	if len(rhos) == 0 {
		return nil, false
	}
	p, err := profile.New(rhos...)
	if err != nil {
		return nil, false
	}
	return p, true
}

func TestQuickXPermutationInvariant(t *testing.T) {
	m := model.Table1()
	f := func(raw []float64, seed uint16) bool {
		p, ok := sanitizeProfile(raw)
		if !ok {
			return true
		}
		// Rotate by seed — a cheap deterministic permutation.
		k := int(seed) % len(p)
		rotated := append(p.Clone()[k:], p[:k]...)
		return relClose(X(m, p), X(m, rotated), 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProposition2(t *testing.T) {
	// Any speedup of any computer strictly increases X.
	m := model.Table1()
	f := func(raw []float64, idx uint8, fracRaw float64) bool {
		p, ok := sanitizeProfile(raw)
		if !ok {
			return true
		}
		i := int(idx) % len(p)
		frac := math.Mod(math.Abs(fracRaw), 0.9) + 0.05
		q, err := p.SpeedUpAdditive(i, p[i]*frac)
		if err != nil {
			return false
		}
		return X(m, q) > X(m, p) && WorkRatio(m, q, p) > 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHECRBracketAndRoundtrip(t *testing.T) {
	m := model.Table1()
	f := func(raw []float64) bool {
		p, ok := sanitizeProfile(raw)
		if !ok {
			return true
		}
		h := HECR(m, p)
		if h < p.Fastest()-1e-12 || h > p.Slowest()+1e-12 {
			return false
		}
		return relClose(XHomogeneous(m, len(p), h), X(m, p), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTheorem3(t *testing.T) {
	m := model.Table1()
	f := func(raw []float64, fracRaw float64) bool {
		p, ok := sanitizeProfile(raw)
		if !ok || len(p) < 2 {
			return true
		}
		frac := math.Mod(math.Abs(fracRaw), 0.9) + 0.05
		choice, err := BestAdditive(m, p, p.Fastest()*frac)
		if err != nil {
			return false
		}
		return choice.Index == Theorem3Index(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGradientNegativeAndRanked(t *testing.T) {
	m := model.Table1()
	f := func(raw []float64) bool {
		p, ok := sanitizeProfile(raw)
		if !ok {
			return true
		}
		grad := XGradient(m, p)
		for i, g := range grad {
			if !(g < 0) {
				return false
			}
			// Faster computer ⇒ steeper (more negative) gradient.
			for j := range grad {
				if p[j] < p[i] && grad[j] > grad[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRentalDuality(t *testing.T) {
	m := model.Table1()
	f := func(raw []float64, workRaw float64) bool {
		p, ok := sanitizeProfile(raw)
		if !ok {
			return true
		}
		work := math.Mod(math.Abs(workRaw), 1e6) + 1
		return relClose(W(m, p, RentalLifespan(m, p, work)), work, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
