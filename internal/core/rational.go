package core

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Lemma1Coefficients returns the positive constants α₀..α_{n−1} and
// β₀..β_n of Lemma 1, which express the X-measure as a ratio of linear
// combinations of the profile's elementary symmetric functions:
//
//	X(P) = (Σᵢ αᵢ Fᵢ⁽ⁿ⁾(P)) / (Σᵢ βᵢ Fᵢ⁽ⁿ⁾(P))
//	αᵢ = Bⁱ · Σ_{k=0}^{n−1−i} A^{n−1−k−i}·(τδ)^k
//	βᵢ = Bⁱ · A^{n−i}
//
// To keep the coefficients inside float64 range (Aⁿ underflows beyond
// n ≈ 60 for µs-scale A), both families are rescaled by the common factor
// A^{−n}; the ratio X is unchanged. The practical validity range is
// n ≲ 50 for Table 1 parameters — callers wanting larger n should use X
// directly; this form exists as Lemma 1's independent evaluation path.
func Lemma1Coefficients(m model.Params, n int) (alpha, beta []float64, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("core: cluster size %d must be positive", n)
	}
	a, b, td := m.A(), m.B(), m.TauDelta()
	boa := b / a // B/A, typically huge
	toa := td / a
	alpha = make([]float64, n)
	beta = make([]float64, n+1)
	// Rescaled: ᾱᵢ = (B/A)ⁱ·(1/A)·Σ_{k=0}^{n−1−i} (τδ/A)^k, β̄ᵢ = (B/A)ⁱ.
	pow := 1.0
	for i := 0; i <= n; i++ {
		beta[i] = pow
		if i < n {
			var geo stats.KahanSum
			t := 1.0
			for k := 0; k <= n-1-i; k++ {
				geo.Add(t)
				t *= toa
			}
			alpha[i] = pow / a * geo.Sum()
		}
		pow *= boa
	}
	if isBad(beta[n]) || isBad(alpha[0]) {
		return nil, nil, fmt.Errorf("core: Lemma 1 coefficients overflow float64 at n = %d for %v", n, m)
	}
	return alpha, beta, nil
}

// XRational evaluates X(P) through Lemma 1's rational form in the
// elementary symmetric functions. It is an independent path used for
// cross-validation; it fails for cluster sizes where the coefficients
// leave float64 range.
func XRational(m model.Params, p profile.Profile) (float64, error) {
	alpha, beta, err := Lemma1Coefficients(m, len(p))
	if err != nil {
		return 0, err
	}
	f := p.ElementarySymmetric()
	var num, den stats.KahanSum
	for i, ai := range alpha {
		num.Add(ai * f[i])
	}
	for i, bi := range beta {
		den.Add(bi * f[i])
	}
	x := num.Sum() / den.Sum()
	if isBad(x) {
		return 0, fmt.Errorf("core: rational form lost precision at n = %d", len(p))
	}
	return x, nil
}

// isBad reports overflow, NaN, or a full underflow to zero — all of which
// signal that the unscaled Lemma 1 evaluation left float64 range.
func isBad(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0) || x == 0
}
