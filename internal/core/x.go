package core

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Ratio returns r(ρ) = (Bρ + τδ)/(Bρ + A), the per-computer attenuation
// factor appearing in the X-measure. Because τδ ≤ A, r(ρ) ∈ (0, 1) for all
// ρ > 0, and r is strictly increasing in ρ (slower computers attenuate the
// remaining lifespan less than they contribute).
func Ratio(m model.Params, rho float64) float64 {
	b := m.B() * rho
	return (b + m.TauDelta()) / (b + m.A())
}

// LogRatio returns log r(ρ) = log1p((τδ − A)/(Bρ + A)), computed to full
// precision even when r(ρ) is within ulps of 1 (small A, large ρ). It is the
// additive building block of every measure here: consumers that evaluate
// many related clusters (internal/incr, the catalog knapsack) precompute
// these terms once and recombine them instead of rescanning profiles.
func LogRatio(m model.Params, rho float64) float64 {
	return math.Log1p((m.TauDelta() - m.A()) / (m.B()*rho + m.A()))
}

// logRatio is the historical internal spelling of LogRatio.
func logRatio(m model.Params, rho float64) float64 { return LogRatio(m, rho) }

// LogProductRatios returns log Πᵢ r(ρᵢ) via compensated summation of
// log r(ρᵢ). This is the numerically primitive quantity from which X and
// the HECR both derive.
func LogProductRatios(m model.Params, p profile.Profile) float64 {
	var acc stats.KahanSum
	for _, rho := range p {
		acc.Add(logRatio(m, rho))
	}
	return acc.Sum()
}

// X returns the X-measure X(P) of Theorem 2 using the telescoped closed
// form X(P) = (1 − Πᵢ r(ρᵢ)) / (A − τδ), evaluated as −expm1(Σ log r(ρᵢ))
// for stability. X is the package's primary measure of cluster power:
// X(P1) ≥ X(P2) iff W(L;P1) ≥ W(L;P2) for every lifespan L.
func X(m model.Params, p profile.Profile) float64 {
	return XFromLogProduct(m, LogProductRatios(m, p))
}

// XFromLogProduct finishes the X evaluation from the primitive quantity
// log Π r(ρᵢ). Callers that maintain the log-product incrementally
// (internal/incr) use this to share one numerical path with X.
func XFromLogProduct(m model.Params, logProd float64) float64 {
	return -math.Expm1(logProd) / (m.A() - m.TauDelta())
}

// XDirect returns X(P) by direct evaluation of the sum in Theorem 2's
// eq. (1). It is mathematically identical to X and exists as an independent
// implementation path: the test suite cross-validates the two on random
// inputs, and benchmarks compare their cost and numerical behaviour.
func XDirect(m model.Params, p profile.Profile) float64 {
	a, b, td := m.A(), m.B(), m.TauDelta()
	var acc stats.KahanSum
	prefix := 1.0 // Πⱼ<ᵢ r(ρⱼ)
	for _, rho := range p {
		denom := b*rho + a
		acc.Add(prefix / denom)
		prefix *= (b*rho + td) / denom
	}
	return acc.Sum()
}

// XHomogeneous returns X(P⁽ρ⁾) for a homogeneous n-computer cluster via the
// geometric-series closed form of eq. (2):
// X = (1 − r(ρ)ⁿ)/(A − τδ).
func XHomogeneous(m model.Params, n int, rho float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("core: cluster size %d must be positive", n))
	}
	return -math.Expm1(float64(n)*logRatio(m, rho)) / (m.A() - m.TauDelta())
}

// WorkRate returns the asymptotic work completed per unit lifespan under
// the optimal FIFO protocol: W(L;P)/L = 1/(τδ + 1/X(P)) (Theorem 2).
func WorkRate(m model.Params, p profile.Profile) float64 {
	return 1 / (m.TauDelta() + 1/X(m, p))
}

// W returns the asymptotic work production W(L;P) = L/(τδ + 1/X(P)).
func W(m model.Params, p profile.Profile, lifespan float64) float64 {
	if lifespan < 0 {
		panic(fmt.Sprintf("core: negative lifespan %v", lifespan))
	}
	return lifespan * WorkRate(m, p)
}

// WorkRatio returns W(L;P')/W(L;P), the figure of merit the paper uses to
// compare an upgraded cluster P' against the original P (Table 4). The
// ratio is independent of L.
func WorkRatio(m model.Params, pNew, pOld profile.Profile) float64 {
	return WorkRate(m, pNew) / WorkRate(m, pOld)
}

// Compare orders two clusters by computing power: it returns +1 if p1
// outperforms p2 (X(P1) > X(P2)), −1 if p2 outperforms p1, and 0 on exact
// ties. Comparison is done on log Π r, the primitive quantity, to avoid
// losing resolution through the final subtraction in X.
func Compare(m model.Params, p1, p2 profile.Profile) int {
	l1, l2 := LogProductRatios(m, p1), LogProductRatios(m, p2)
	// Smaller product ⇒ larger X ⇒ more powerful.
	switch {
	case l1 < l2:
		return 1
	case l1 > l2:
		return -1
	default:
		return 0
	}
}
