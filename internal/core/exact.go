package core

import (
	"math/big"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// XExact evaluates the X-measure in arbitrary-precision arithmetic
// (math/big with the given mantissa precision in bits; 0 selects 256).
// It exists to referee the float64 implementations: the test suite measures
// X and XDirect against it on adversarial profiles, and the numerical
// ablation (BenchmarkXForms) uses it to quantify each form's error. There
// is no float64 range limitation, so it also covers regimes where the
// Lemma 1 rational form over/underflows.
func XExact(m model.Params, p profile.Profile, prec uint) *big.Float {
	if prec == 0 {
		prec = 256
	}
	bf := func(x float64) *big.Float { return new(big.Float).SetPrec(prec).SetFloat64(x) }

	a := bf(m.A())
	b := bf(m.B())
	td := bf(m.TauDelta())

	// Π (Bρ + τδ)/(Bρ + A)
	prod := bf(1)
	num := new(big.Float).SetPrec(prec)
	den := new(big.Float).SetPrec(prec)
	for _, rho := range p {
		brho := new(big.Float).SetPrec(prec).Mul(b, bf(rho))
		num.Add(brho, td)
		den.Add(brho, a)
		prod.Mul(prod, num)
		prod.Quo(prod, den)
	}

	// X = (1 − Π) / (A − τδ)
	x := bf(1)
	x.Sub(x, prod)
	denom := new(big.Float).SetPrec(prec).Sub(a, td)
	return x.Quo(x, denom)
}

// XExactFloat64 is XExact rounded back to float64 — the reference value
// for error measurements.
func XExactFloat64(m model.Params, p profile.Profile) float64 {
	v, _ := XExact(m, p, 0).Float64()
	return v
}
