package spill

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestPutGetRoundtrip(t *testing.T) {
	st := openTest(t, Config{})
	for i := 0; i < 100; i++ {
		st.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("body-%d-%s", i, strings.Repeat("x", i))))
	}
	for i := 0; i < 100; i++ {
		got, ok := st.Get(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatalf("key-%d: miss", i)
		}
		want := fmt.Sprintf("body-%d-%s", i, strings.Repeat("x", i))
		if string(got) != want {
			t.Fatalf("key-%d: got %q want %q", i, got, want)
		}
	}
	if _, ok := st.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	s := st.Stats()
	if s.Hits != 100 || s.Misses != 1 || s.Writes != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOverwriteWins(t *testing.T) {
	st := openTest(t, Config{})
	st.Put("k", []byte("one"))
	st.Put("k", []byte("three")) // different length → rewritten
	got, ok := st.Get("k")
	if !ok || string(got) != "three" {
		t.Fatalf("got %q ok=%v", got, ok)
	}
	// Same-length overwrite is skipped (deterministic bodies).
	st.Put("k", []byte("THREE"))
	got, _ = st.Get("k")
	if string(got) != "three" {
		t.Fatalf("same-length overwrite should be a no-op, got %q", got)
	}
}

func TestDiskBudgetRetiresWholeSegments(t *testing.T) {
	st := openTest(t, Config{SegmentBytes: 4 << 10, MaxBytes: 16 << 10})
	body := bytes.Repeat([]byte("b"), 1024)
	for i := 0; i < 64; i++ {
		st.Put(fmt.Sprintf("key-%04d", i), body)
	}
	s := st.Stats()
	if s.DiskBytes > 16<<10 {
		t.Fatalf("disk bytes %d over budget", s.DiskBytes)
	}
	if s.RetiredSegments == 0 {
		t.Fatal("expected whole-segment retirement")
	}
	// Newest keys must survive, oldest must be gone.
	if _, ok := st.Get("key-0063"); !ok {
		t.Fatal("newest key evicted")
	}
	if _, ok := st.Get("key-0000"); ok {
		t.Fatal("oldest key survived a full-budget sweep")
	}
}

func TestIndexBudgetRetires(t *testing.T) {
	// Index budget of 10 entries worth; write 100 tiny keys.
	st := openTest(t, Config{SegmentBytes: 1 << 10, MaxIndexBytes: 10 * indexEntryCost})
	for i := 0; i < 100; i++ {
		st.Put(fmt.Sprintf("key-%04d", i), []byte("v"))
	}
	s := st.Stats()
	if s.IndexBytes > 10*indexEntryCost {
		t.Fatalf("index bytes %d over budget %d", s.IndexBytes, 10*indexEntryCost)
	}
	if s.RetiredSegments == 0 {
		t.Fatal("expected retirement under index pressure")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	st := openTest(t, Config{MaxBytes: 1 << 10})
	st.Put("big", bytes.Repeat([]byte("x"), 2<<10))
	if _, ok := st.Get("big"); ok {
		t.Fatal("over-budget entry stored")
	}
	if st.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d", st.Stats().Rejected)
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	for i := 0; i < 20; i++ {
		st.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	st.Put("key-3", []byte("replacement")) // later record must win
	st.Close()

	st2 := openTest(t, Config{Dir: dir})
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("val-%d", i)
		if i == 3 {
			want = "replacement"
		}
		got, ok := st2.Get(fmt.Sprintf("key-%d", i))
		if !ok || string(got) != want {
			t.Fatalf("key-%d after reopen: got %q ok=%v want %q", i, got, ok, want)
		}
	}
}

// TestCrashRecoveryTruncatesTornTail simulates a crash mid-append: a
// trailing partial record (and a CRC-corrupted one) must be truncated
// on reopen, with every earlier record recovered intact.
func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	for i := 0; i < 10; i++ {
		st.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segment files")
	}
	// Append a torn record: a header promising more bytes than exist.
	f, err := os.OpenFile(segs[0], os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[4:8], 100)
	binary.LittleEndian.PutUint32(hdr[8:12], 100000)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := openTest(t, Config{Dir: dir})
	for i := 0; i < 10; i++ {
		got, ok := st2.Get(fmt.Sprintf("key-%d", i))
		if !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d lost after torn-tail recovery (got %q ok=%v)", i, got, ok)
		}
	}
	if st2.Stats().Corrupt == 0 {
		t.Fatal("torn tail not counted")
	}
	// The torn bytes must be gone from disk so a fresh append is clean.
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	st2.Put("after-crash", []byte("ok"))
	if got, ok := st2.Get("after-crash"); !ok || string(got) != "ok" {
		t.Fatal("append after recovery failed")
	}
	_ = fi
}

func TestBitFlipReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	body := bytes.Repeat([]byte("payload-"), 512)
	st.Put("victim", body)

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("victim"); ok {
		t.Fatal("corrupt record served")
	}
	if st.Stats().Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
	// The slot must be refillable after the drop.
	st.Put("victim", body)
	if got, ok := st.Get("victim"); !ok || !bytes.Equal(got, body) {
		t.Fatal("refill after corruption failed")
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	st := openTest(t, Config{SegmentBytes: 1 << 20, CompactFraction: 0.3})
	big := bytes.Repeat([]byte("x"), 4096)
	for i := 0; i < 32; i++ {
		st.Put(fmt.Sprintf("key-%d", i), big)
	}
	// Overwrite most keys with different-length bodies → dead bytes.
	small := bytes.Repeat([]byte("y"), 128)
	for i := 0; i < 28; i++ {
		st.Put(fmt.Sprintf("key-%d", i), small)
	}
	// Seal the active segment so it is compactable.
	st.mu.Lock()
	if st.active != nil {
		st.active.sealed = true
		st.active = nil
	}
	st.mu.Unlock()
	st.CompactNow()
	s := st.Stats()
	if s.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", s)
	}
	for i := 0; i < 32; i++ {
		want := big
		if i < 28 {
			want = small
		}
		got, ok := st.Get(fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("key-%d wrong after compaction (ok=%v len=%d)", i, ok, len(got))
		}
	}
	if s.DeadBytes >= st.Stats().DiskBytes {
		t.Fatalf("dead bytes not reclaimed: %+v", s)
	}
}

func TestAppenderCommitAndAbort(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	ap := st.Begin("streamed")
	if ap == nil {
		t.Fatal("Begin returned nil")
	}
	ap.Write([]byte("hello "))
	ap.Write([]byte("world"))
	if !ap.Commit() {
		t.Fatal("Commit failed")
	}
	got, ok := st.Get("streamed")
	if !ok || string(got) != "hello world" {
		t.Fatalf("got %q ok=%v", got, ok)
	}

	ap2 := st.Begin("aborted")
	ap2.Write([]byte("junk"))
	ap2.Abort()
	if _, ok := st.Get("aborted"); ok {
		t.Fatal("aborted record visible")
	}
	// Aborted private segment file must be unlinked.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	for _, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("zero-byte leftover segment %s", p)
		}
	}
}

func TestAppenderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	ap := st.Begin("k")
	ap.Write(bytes.Repeat([]byte("z"), 10000))
	ap.Commit()
	st.Close()
	st2 := openTest(t, Config{Dir: dir})
	got, ok := st2.Get("k")
	if !ok || len(got) != 10000 {
		t.Fatalf("streamed record lost on reopen (ok=%v len=%d)", ok, len(got))
	}
}

// An uncommitted appender file left by a crash must be dropped at Open.
func TestUncommittedAppenderTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	st.Put("good", []byte("v"))
	ap := st.Begin("half")
	ap.Write([]byte("body bytes"))
	// Simulate crash: no Commit, no Abort. Close store underneath.
	st.Close()

	st2 := openTest(t, Config{Dir: dir})
	if _, ok := st2.Get("half"); ok {
		t.Fatal("uncommitted record visible after reopen")
	}
	if got, ok := st2.Get("good"); !ok || string(got) != "v" {
		t.Fatal("committed record lost")
	}
}

func TestOpenVerifiedStreamsBody(t *testing.T) {
	st := openTest(t, Config{})
	body := bytes.Repeat([]byte("0123456789abcdef"), 64<<10/16*3) // ~192 KiB, > chunk
	st.Put("k", body)
	ent, ok := st.OpenVerified("k")
	if !ok {
		t.Fatal("OpenVerified miss")
	}
	defer ent.Close()
	if ent.BodyLen() != int64(len(body)) {
		t.Fatalf("BodyLen = %d want %d", ent.BodyLen(), len(body))
	}
	out := make([]byte, 0, len(body))
	buf := make([]byte, 4096)
	var off int64
	for off < ent.BodyLen() {
		n, err := ent.ReadBodyAt(buf, off)
		if n == 0 {
			t.Fatalf("ReadBodyAt stalled at %d: %v", off, err)
		}
		out = append(out, buf[:n]...)
		off += int64(n)
	}
	if !bytes.Equal(out, body) {
		t.Fatal("streamed body differs")
	}
}

func TestOpenVerifiedRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir})
	st.Put("k", bytes.Repeat([]byte("x"), 100000))
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	raw, _ := os.ReadFile(segs[0])
	raw[len(raw)-5] ^= 0x01
	os.WriteFile(segs[0], raw, 0o644)
	if _, ok := st.OpenVerified("k"); ok {
		t.Fatal("corrupt record passed chunked verification")
	}
}

// A reader pin must keep a retired segment readable until Close.
func TestRetiredSegmentPinnedByReader(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, Config{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 1 << 20})
	body := bytes.Repeat([]byte("p"), 2048)
	st.Put("pinned", body)
	ent, ok := st.OpenVerified("pinned")
	if !ok {
		t.Fatal("miss")
	}
	// Force retirement of everything.
	st.mu.Lock()
	for len(st.order) > 0 {
		st.retireLocked(st.order[0])
	}
	st.mu.Unlock()
	buf := make([]byte, 64)
	if _, err := ent.ReadBodyAt(buf, 0); err != nil {
		t.Fatalf("pinned read failed after retirement: %v", err)
	}
	ent.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 0 {
		t.Fatalf("doomed segment not unlinked after last Close: %v", segs)
	}
}

func TestScanRecordsRejectsGarbage(t *testing.T) {
	// Arbitrary garbage must scan to a zero-length valid prefix.
	garbage := []byte("this is not a segment file at all, definitely not")
	end, torn := ScanRecords(bytes.NewReader(garbage), int64(len(garbage)), func(int64, uint32, uint32, []byte) {
		t.Fatal("callback on garbage")
	})
	if end != 0 || !torn {
		t.Fatalf("end=%d torn=%v", end, torn)
	}
}

func TestScanRecordsRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	type kv struct{ k, v string }
	recs := []kv{{"a", "1"}, {"bb", ""}, {"ccc", strings.Repeat("v", 3000)}}
	for _, r := range recs {
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(r.k)))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(r.v)))
		crc := crc32.ChecksumIEEE([]byte(r.k))
		crc = crc32.Update(crc, crc32.IEEETable, []byte(r.v))
		crc = crc32.Update(crc, crc32.IEEETable, hdr[4:12])
		binary.LittleEndian.PutUint32(hdr[0:4], crc)
		buf.Write(hdr[:])
		buf.WriteString(r.k)
		buf.WriteString(r.v)
	}
	var got []kv
	end, torn := ScanRecords(bytes.NewReader(buf.Bytes()), int64(buf.Len()), func(off int64, kl, bl uint32, key []byte) {
		got = append(got, kv{string(key), ""})
	})
	if torn || end != int64(buf.Len()) || len(got) != len(recs) {
		t.Fatalf("end=%d torn=%v n=%d", end, torn, len(got))
	}
}

func TestPutReportsDurability(t *testing.T) {
	st := openTest(t, Config{})
	if !st.Put("k", []byte("body")) {
		t.Fatal("Put of a fresh entry reported failure")
	}
	// Same-length overwrite dedupes but the bytes are durable: still true.
	if !st.Put("k", []byte("BODY")) {
		t.Fatal("deduped Put reported failure")
	}
	if st.Put("", []byte("body")) {
		t.Fatal("empty-key Put reported success")
	}
	st.Close()
	if st.Put("late", []byte("body")) {
		t.Fatal("Put after Close reported success")
	}
}

func TestCompactBudgetMeters(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := &compactBudget{rate: 100, burst: 50}
	// First grant starts with a full burst.
	if wait := b.grant(t0); wait != 0 {
		t.Fatalf("first grant wait = %v, want 0", wait)
	}
	// Spending the burst and more forces a wait sized to the deficit.
	b.charge(150) // tokens = -100
	wait := b.grant(t0)
	if want := time.Duration(101) * time.Second / 100; wait != want {
		t.Fatalf("deficit wait = %v, want %v", wait, want)
	}
	// Elapsed time refills at rate bytes/sec, capped at burst.
	if wait := b.grant(t0.Add(2 * time.Second)); wait != 0 {
		t.Fatalf("post-refill wait = %v, want 0", wait)
	}
	if wait := b.grant(t0.Add(100 * time.Second)); wait != 0 {
		t.Fatalf("wait after long idle = %v, want 0", wait)
	}
	if b.tokens > b.burst {
		t.Fatalf("tokens %d exceed burst %d", b.tokens, b.burst)
	}
	// Unlimited budget never waits regardless of charges.
	u := &compactBudget{rate: -1}
	u.charge(1 << 40)
	if wait := u.grant(t0); wait != 0 {
		t.Fatalf("unlimited budget wait = %v, want 0", wait)
	}
}

func TestCompactionThrottledByRate(t *testing.T) {
	// A 1 byte/sec budget means the second compaction kick must observe at
	// least one throttle sleep (the first consumed the burst).
	st := openTest(t, Config{
		SegmentBytes:       512,
		MaxBytes:           1 << 20,
		CompactBytesPerSec: 1,
	})
	deadline := time.Now().Add(5 * time.Second)
	for round := 0; ; round++ {
		if st.Stats().CompactThrottles > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no throttle observed: stats = %+v", st.Stats())
		}
		// Distinct lengths per round so overwrites rewrite (same-length
		// bodies dedupe) and sealed segments accumulate dead bytes; the
		// never-overwritten stable key seeds each segment with live bytes
		// so every compaction pass debits the budget.
		body := strings.Repeat("x", 100+round%50)
		st.Put(fmt.Sprintf("stable-%d", round), []byte(body))
		for i := 0; i < 8; i++ {
			st.Put(fmt.Sprintf("k-%d", i), []byte(body))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
