package spill

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzSpillSegmentDecode hammers the segment record scanner with
// arbitrary bytes. Properties: it never panics, never reports a valid
// prefix past the input, every callback offset is within the valid
// prefix, and appending garbage after a valid record stream never
// corrupts the records before it.
func FuzzSpillSegmentDecode(f *testing.F) {
	valid := func(k, v string) []byte {
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(k)))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(v)))
		crc := crc32.ChecksumIEEE([]byte(k))
		crc = crc32.Update(crc, crc32.IEEETable, []byte(v))
		crc = crc32.Update(crc, crc32.IEEETable, hdr[4:12])
		binary.LittleEndian.PutUint32(hdr[0:4], crc)
		return append(append(hdr[:], k...), v...)
	}
	f.Add([]byte{})
	f.Add(valid("key", "body"))
	f.Add(append(valid("a", "1"), valid("bb", "22")...))
	f.Add(append(valid("a", "1"), 0xff, 0xfe))
	f.Add(bytes.Repeat([]byte{0}, 64))
	huge := make([]byte, recordHeaderSize)
	binary.LittleEndian.PutUint32(huge[4:8], 1<<31-1)
	binary.LittleEndian.PutUint32(huge[8:12], 1<<31-1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var offs []int64
		end, _ := ScanRecords(bytes.NewReader(data), int64(len(data)), func(off int64, kl, bl uint32, key []byte) {
			if off < 0 || off+recordHeaderSize+int64(kl)+int64(bl) > int64(len(data)) {
				t.Fatalf("record at %d overruns input", off)
			}
			if uint32(len(key)) != kl {
				t.Fatalf("key slice %d != keyLen %d", len(key), kl)
			}
			offs = append(offs, off)
		})
		if end < 0 || end > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", end, len(data))
		}
		for _, off := range offs {
			if off >= end {
				t.Fatalf("callback at %d past valid prefix %d", off, end)
			}
		}
		// Prefix property: records decoded from data must also decode
		// from data truncated to the valid prefix.
		var n2 int
		end2, torn2 := ScanRecords(bytes.NewReader(data[:end]), end, func(int64, uint32, uint32, []byte) { n2++ })
		if end2 != end || torn2 || n2 != len(offs) {
			t.Fatalf("re-scan of valid prefix diverged: end2=%d torn=%v n=%d want %d", end2, torn2, n2, len(offs))
		}
	})
}
