// Package spill is a bounded on-disk second-level cache: an append-only
// segment-file store with a compact in-memory index. It sits below the
// byte-budgeted in-memory response caches (internal/api) as an
// evict-to-disk sink and above peer fetch / local evaluation as a read
// tier, trading one sequential disk read for a full re-evaluation of a
// large sweep.
//
// Layout and invariants (DESIGN.md S32):
//
//   - Data lives in numbered segment files (seg-%016x.seg) under Dir.
//     Segments are append-only; records are never modified in place.
//   - Each record is framed as
//     crc32 | keyLen | bodyLen | key | body
//     (all fixed-width fields uint32 little-endian). The CRC (IEEE) is
//     computed over key ++ body ++ keyLen ++ bodyLen — key/body first so
//     a streaming writer can accumulate it before the lengths are known.
//   - The in-memory index maps a sampled 64-bit key hash to
//     (segment, offset, lengths). Hash collisions are resolved on read:
//     every record stores its full key and a lookup compares it byte
//     for byte, so a collision is at worst a miss, never a wrong body.
//     (The serving tiers above already rely on key→body determinism.)
//   - Both budgets — MaxBytes of disk and MaxIndexBytes of index — are
//     enforced by retiring whole segments, oldest-registered first.
//     Retirement drops the segment's live index entries; readers that
//     hold a segment open pin it (refcount) and the file is unlinked
//     once the last reader closes.
//   - Overwrites and retired readers leave dead bytes behind; a
//     background goroutine compacts any sealed segment whose dead
//     fraction reaches CompactFraction by re-appending its live records
//     to the active segment and retiring it.
//   - Open scans existing segments record by record, truncates at the
//     first torn or CRC-invalid record (crash mid-append), and rebuilds
//     the index with later records winning.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	recordHeaderSize = 12

	// DefaultSegmentBytes seals the shared append segment once it
	// crosses this size, making it eligible for retirement/compaction.
	DefaultSegmentBytes = 4 << 20

	// DefaultMaxBytes bounds total segment bytes on disk.
	DefaultMaxBytes = 1 << 30

	// DefaultMaxIndexBytes bounds the in-memory index footprint.
	DefaultMaxIndexBytes = 16 << 20

	// DefaultCompactFraction is the dead-byte fraction at which a
	// sealed segment is compacted.
	DefaultCompactFraction = 0.5

	// DefaultCompactBytesPerSec caps how fast background compaction may
	// rewrite live bytes. Write-through mode turns every cache insert
	// into a store write, so dead bytes accrue as fast as the serving
	// path overwrites entries; without a budget the 50%-dead trigger
	// makes the compactor contend with the write firehose for the store
	// lock. 32 MiB/s clears a default segment in ~125 ms while leaving
	// the lock mostly free for foreground puts.
	DefaultCompactBytesPerSec = 32 << 20

	// indexEntryCost is the accounted in-memory cost of one index
	// entry (map bucket share + entryLoc + per-segment hash slot).
	indexEntryCost = 64

	// maxFieldLen bounds keyLen/bodyLen during scans so a corrupt
	// header cannot drive a giant allocation.
	maxFieldLen = 1 << 30
)

// Config configures a Store. Zero fields take the defaults above.
type Config struct {
	// Dir is the directory holding segment files. Required; created
	// if missing.
	Dir string
	// MaxBytes bounds total on-disk segment bytes.
	MaxBytes int64
	// MaxIndexBytes bounds the accounted in-memory index bytes.
	MaxIndexBytes int64
	// SegmentBytes is the roll size for the shared append segment.
	SegmentBytes int64
	// CompactFraction is the dead fraction that triggers compaction
	// of a sealed segment.
	CompactFraction float64
	// CompactBytesPerSec caps how many live bytes per second background
	// compaction may rewrite (a token bucket with one segment of burst).
	// 0 takes DefaultCompactBytesPerSec; negative disables the cap.
	CompactBytesPerSec int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxBytes <= 0 {
		out.MaxBytes = DefaultMaxBytes
	}
	if out.MaxIndexBytes <= 0 {
		out.MaxIndexBytes = DefaultMaxIndexBytes
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = DefaultSegmentBytes
	}
	if out.CompactFraction <= 0 || out.CompactFraction > 1 {
		out.CompactFraction = DefaultCompactFraction
	}
	if out.CompactBytesPerSec == 0 {
		out.CompactBytesPerSec = DefaultCompactBytesPerSec
	}
	return out
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Hits            uint64
	Misses          uint64
	Writes          uint64
	Rejected        uint64
	Corrupt         uint64
	RetiredSegments uint64
	Compactions     uint64
	// CompactDeferred counts compaction kicks that arrived while one was
	// already pending or running — the in-progress backpressure signal a
	// sustained write-through load produces.
	CompactDeferred uint64
	// CompactThrottles counts rate-limit sleeps the compactor took to
	// stay under CompactBytesPerSec.
	CompactThrottles uint64
	// CompactedBytes is the total live bytes compaction has rewritten.
	CompactedBytes     uint64
	CompactBytesPerSec int64
	Segments           int
	Entries            int
	DiskBytes          int64
	DeadBytes          int64
	IndexBytes         int64
	MaxBytes           int64
	MaxIndexBytes      int64
}

type entryLoc struct {
	seq     uint64
	off     int64
	keyLen  uint32
	bodyLen uint32
}

func (l entryLoc) recordLen() int64 {
	return recordHeaderSize + int64(l.keyLen) + int64(l.bodyLen)
}

type segment struct {
	seq    uint64
	path   string
	f      *os.File
	size   int64
	dead   int64
	live   int
	sealed bool
	// hashes remembers which index slots this segment ever owned so
	// retirement can drop them without a full index sweep.
	hashes []uint64
	refs   int
	doomed bool
}

// Store is a bounded append-only segment store. All methods are safe
// for concurrent use.
type Store struct {
	cfg Config

	mu        sync.RWMutex
	segs      map[uint64]*segment
	order     []uint64 // registration order; retirement pops the front
	active    *segment
	index     map[uint64]entryLoc
	nextSeq   uint64
	diskBytes int64
	closed    bool

	hits             atomic.Uint64
	misses           atomic.Uint64
	writes           atomic.Uint64
	rejected         atomic.Uint64
	corrupt          atomic.Uint64
	retired          atomic.Uint64
	compactions      atomic.Uint64
	compactDeferred  atomic.Uint64
	compactThrottles atomic.Uint64
	compactedBytes   atomic.Uint64

	compactReq  chan struct{}
	compactDone chan struct{}
}

// Open opens (or creates) a store rooted at cfg.Dir, recovering any
// existing segments: each is scanned record by record, truncated at the
// first torn or CRC-invalid record, and its surviving records are
// indexed in sequence order (later records win).
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("spill: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	st := &Store{
		cfg:         cfg,
		segs:        make(map[uint64]*segment),
		index:       make(map[uint64]entryLoc),
		compactReq:  make(chan struct{}, 1),
		compactDone: make(chan struct{}),
	}
	if err := st.recover(); err != nil {
		st.closeFiles()
		return nil, err
	}
	go st.compactLoop()
	return st, nil
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%016x.seg", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func (st *Store) recover() error {
	names, err := os.ReadDir(st.cfg.Dir)
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		if seq, ok := parseSegName(de.Name()); ok && !de.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		path := filepath.Join(st.cfg.Dir, segName(seq))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("spill: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("spill: %w", err)
		}
		seg := &segment{seq: seq, path: path, f: f, sealed: true}
		validEnd, torn := ScanRecords(f, fi.Size(), func(off int64, keyLen, bodyLen uint32, key []byte) {
			h := hashBytes(key)
			loc := entryLoc{seq: seq, off: off, keyLen: keyLen, bodyLen: bodyLen}
			if old, ok := st.index[h]; ok {
				st.markDeadLocked(old)
			}
			st.index[h] = loc
			seg.hashes = append(seg.hashes, h)
			seg.live++
		})
		if torn {
			st.corrupt.Add(1)
		}
		if validEnd < fi.Size() {
			if err := f.Truncate(validEnd); err != nil {
				f.Close()
				return fmt.Errorf("spill: truncating torn tail of %s: %w", path, err)
			}
		}
		seg.size = validEnd
		if seg.size == 0 && seg.live == 0 {
			// Empty or fully torn segment: drop it.
			f.Close()
			os.Remove(path)
			continue
		}
		st.segs[seq] = seg
		st.order = append(st.order, seq)
		st.diskBytes += seg.size
		if seq >= st.nextSeq {
			st.nextSeq = seq + 1
		}
	}
	// Recompute dead bytes: anything not live is dead.
	for _, seg := range st.segs {
		var liveBytes int64
		for _, h := range seg.hashes {
			if loc, ok := st.index[h]; ok && loc.seq == seg.seq {
				liveBytes += loc.recordLen()
			}
		}
		seg.dead = seg.size - liveBytes
	}
	st.enforceBudgetsLocked()
	return nil
}

// ScanRecords walks the record framing over r, invoking fn for every
// intact record, and returns the offset of the first torn, oversized,
// or CRC-invalid record (the valid prefix length) plus whether the scan
// stopped early for that reason. The key slice passed to fn is only
// valid for the duration of the call. Exported for the framing fuzzer.
func ScanRecords(r io.ReaderAt, size int64, fn func(off int64, keyLen, bodyLen uint32, key []byte)) (validEnd int64, torn bool) {
	var hdr [recordHeaderSize]byte
	var off int64
	for off < size {
		if size-off < recordHeaderSize {
			return off, true
		}
		if _, err := r.ReadAt(hdr[:], off); err != nil {
			return off, true
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		keyLen := binary.LittleEndian.Uint32(hdr[4:8])
		bodyLen := binary.LittleEndian.Uint32(hdr[8:12])
		if keyLen == 0 || keyLen > maxFieldLen || bodyLen > maxFieldLen {
			return off, true
		}
		recLen := recordHeaderSize + int64(keyLen) + int64(bodyLen)
		if off+recLen > size {
			return off, true
		}
		buf := make([]byte, keyLen+bodyLen)
		if _, err := r.ReadAt(buf, off+recordHeaderSize); err != nil {
			return off, true
		}
		crc := crc32.ChecksumIEEE(buf)
		crc = crc32.Update(crc, crc32.IEEETable, hdr[4:12])
		if crc != wantCRC {
			return off, true
		}
		fn(off, keyLen, bodyLen, buf[:keyLen])
		off += recLen
	}
	return off, false
}

func (st *Store) markDeadLocked(loc entryLoc) {
	if seg, ok := st.segs[loc.seq]; ok {
		seg.dead += loc.recordLen()
		seg.live--
	}
}

func (st *Store) indexBytesLocked() int64 {
	return int64(len(st.index)) * indexEntryCost
}

// Put stores body under key, overwriting any previous entry. Entries
// larger than the whole disk budget are rejected. Put never blocks on
// readers of other segments; it appends to the shared active segment.
// The return value reports whether the entry is durably stored (an
// identical-length live entry counts: deterministic keys make it the
// same body); false means a rejection or an I/O failure, so callers
// that promise durability — the evict writer, the shutdown flush — can
// count what the store actually dropped.
func (st *Store) Put(key string, body []byte) bool {
	h := hashString(key)
	rec := recordHeaderSize + int64(len(key)) + int64(len(body))
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	if rec > st.cfg.MaxBytes || len(key) == 0 || int64(len(key)) > maxFieldLen || int64(len(body)) > maxFieldLen {
		st.rejected.Add(1)
		return false
	}
	// Deterministic keys mean an identical-length live entry is the
	// same body; skip the rewrite.
	if old, ok := st.index[h]; ok && old.keyLen == uint32(len(key)) && old.bodyLen == uint32(len(body)) {
		return true
	}
	n := st.putLocked(h, key, body)
	st.enforceBudgetsLocked()
	st.kickCompactLocked()
	return n > 0
}

// putLocked appends one record and returns its on-disk length, 0 when
// the write was rejected or failed.
func (st *Store) putLocked(h uint64, key string, body []byte) int64 {
	seg, err := st.activeLocked()
	if err != nil {
		st.rejected.Add(1)
		return 0
	}
	off := seg.size
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(body)))
	crc := crc32.ChecksumIEEE([]byte(key))
	crc = crc32.Update(crc, crc32.IEEETable, body)
	crc = crc32.Update(crc, crc32.IEEETable, hdr[4:12])
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	if _, err := seg.f.WriteAt(hdr[:], off); err != nil {
		st.rejected.Add(1)
		return 0
	}
	if _, err := seg.f.WriteAt([]byte(key), off+recordHeaderSize); err != nil {
		st.rejected.Add(1)
		return 0
	}
	if _, err := seg.f.WriteAt(body, off+recordHeaderSize+int64(len(key))); err != nil {
		st.rejected.Add(1)
		return 0
	}
	rec := recordHeaderSize + int64(len(key)) + int64(len(body))
	seg.size += rec
	st.diskBytes += rec
	if old, ok := st.index[h]; ok {
		st.markDeadLocked(old)
	}
	st.index[h] = entryLoc{seq: seg.seq, off: off, keyLen: uint32(len(key)), bodyLen: uint32(len(body))}
	seg.hashes = append(seg.hashes, h)
	seg.live++
	st.writes.Add(1)
	if seg.size >= st.cfg.SegmentBytes {
		seg.sealed = true
		st.active = nil
	}
	return rec
}

func (st *Store) activeLocked() (*segment, error) {
	if st.active != nil {
		return st.active, nil
	}
	seq := st.nextSeq
	st.nextSeq++
	path := filepath.Join(st.cfg.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{seq: seq, path: path, f: f}
	st.segs[seq] = seg
	st.order = append(st.order, seq)
	st.active = seg
	return seg, nil
}

func (st *Store) enforceBudgetsLocked() {
	for (st.diskBytes > st.cfg.MaxBytes || st.indexBytesLocked() > st.cfg.MaxIndexBytes) && len(st.order) > 0 {
		st.retireLocked(st.order[0])
	}
}

// retireLocked removes the segment from the store accounting and index.
// The file is unlinked immediately unless a reader holds it pinned, in
// which case the last Close unlinks it.
func (st *Store) retireLocked(seq uint64) {
	seg, ok := st.segs[seq]
	if !ok {
		return
	}
	for i, s := range st.order {
		if s == seq {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
	for _, h := range seg.hashes {
		if loc, ok := st.index[h]; ok && loc.seq == seq {
			delete(st.index, h)
		}
	}
	delete(st.segs, seq)
	st.diskBytes -= seg.size
	if st.active == seg {
		st.active = nil
	}
	st.retired.Add(1)
	if seg.refs > 0 {
		seg.doomed = true
		return
	}
	seg.f.Close()
	os.Remove(seg.path)
}

// Get returns a copy of the body stored under key. A CRC failure or a
// hash-collision key mismatch reads as a miss; corruption additionally
// drops the index entry so the slot can be refilled.
func (st *Store) Get(key string) ([]byte, bool) {
	h := hashString(key)
	st.mu.RLock()
	loc, ok := st.index[h]
	if !ok || st.closed {
		st.mu.RUnlock()
		st.misses.Add(1)
		return nil, false
	}
	seg := st.segs[loc.seq]
	buf := make([]byte, loc.recordLen())
	_, err := seg.f.ReadAt(buf, loc.off)
	st.mu.RUnlock()
	if err != nil || !verifyRecordBuf(buf) {
		st.dropCorrupt(h, loc)
		st.misses.Add(1)
		return nil, false
	}
	if string(buf[recordHeaderSize:recordHeaderSize+int(loc.keyLen)]) != key {
		// Sampled-hash collision: treat as a miss, keep the entry.
		st.misses.Add(1)
		return nil, false
	}
	st.hits.Add(1)
	return buf[recordHeaderSize+int(loc.keyLen):], true
}

// verifyRecordBuf checks header lengths and CRC of a full record buffer.
// Key equality is checked separately so a collision is not "corrupt".
func verifyRecordBuf(buf []byte) bool {
	if len(buf) < recordHeaderSize {
		return false
	}
	keyLen := binary.LittleEndian.Uint32(buf[4:8])
	bodyLen := binary.LittleEndian.Uint32(buf[8:12])
	if recordHeaderSize+int64(keyLen)+int64(bodyLen) != int64(len(buf)) {
		return false
	}
	crc := crc32.ChecksumIEEE(buf[recordHeaderSize:])
	crc = crc32.Update(crc, crc32.IEEETable, buf[4:12])
	return crc == binary.LittleEndian.Uint32(buf[0:4])
}

func (st *Store) dropCorrupt(h uint64, loc entryLoc) {
	st.corrupt.Add(1)
	st.mu.Lock()
	if cur, ok := st.index[h]; ok && cur == loc {
		delete(st.index, h)
		st.markDeadLocked(loc)
	}
	st.mu.Unlock()
}

// Entry is a pinned, CRC-verified handle onto one stored record,
// suitable for streaming the body in O(chunk) memory. Close releases
// the pin; a retired segment's file is unlinked on last Close.
type Entry struct {
	st   *Store
	seg  *segment
	loc  entryLoc
	once sync.Once
}

// BodyLen reports the stored body length.
func (e *Entry) BodyLen() int64 { return int64(e.loc.bodyLen) }

// ReadBodyAt reads into p from the body at offset off.
func (e *Entry) ReadBodyAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(e.loc.bodyLen) {
		return 0, io.EOF
	}
	if rem := int64(e.loc.bodyLen) - off; int64(len(p)) > rem {
		p = p[:rem]
	}
	return e.seg.f.ReadAt(p, e.loc.off+recordHeaderSize+int64(e.loc.keyLen)+off)
}

// Close releases the segment pin.
func (e *Entry) Close() {
	e.once.Do(func() {
		st := e.st
		st.mu.Lock()
		e.seg.refs--
		if e.seg.doomed && e.seg.refs == 0 {
			e.seg.f.Close()
			os.Remove(e.seg.path)
		}
		st.mu.Unlock()
	})
}

// OpenVerified pins the record stored under key and fully verifies its
// CRC and key bytes in fixed-size chunks before returning, so no
// corrupt byte can reach a streaming consumer. It returns false on
// miss, collision, or corruption.
func (st *Store) OpenVerified(key string) (*Entry, bool) {
	h := hashString(key)
	st.mu.Lock()
	loc, ok := st.index[h]
	if !ok || st.closed {
		st.mu.Unlock()
		st.misses.Add(1)
		return nil, false
	}
	seg := st.segs[loc.seq]
	seg.refs++
	st.mu.Unlock()
	ent := &Entry{st: st, seg: seg, loc: loc}
	ok, corrupt := verifyEntryChunked(seg.f, loc, key)
	if !ok {
		ent.Close()
		if corrupt {
			st.dropCorrupt(h, loc)
		}
		st.misses.Add(1)
		return nil, false
	}
	st.hits.Add(1)
	return ent, true
}

// verifyEntryChunked re-derives the record CRC with a bounded buffer and
// compares the stored key against key. corrupt reports whether the
// failure was CRC/framing (as opposed to a benign hash collision).
func verifyEntryChunked(f *os.File, loc entryLoc, key string) (ok, corrupt bool) {
	var hdr [recordHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], loc.off); err != nil {
		return false, true
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != loc.keyLen ||
		binary.LittleEndian.Uint32(hdr[8:12]) != loc.bodyLen {
		return false, true
	}
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	var crc uint32
	keyMatches := uint32(len(key)) == loc.keyLen
	total := int64(loc.keyLen) + int64(loc.bodyLen)
	for done := int64(0); done < total; {
		n := total - done
		if n > chunk {
			n = chunk
		}
		if _, err := f.ReadAt(buf[:n], loc.off+recordHeaderSize+done); err != nil {
			return false, true
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
		if keyMatches && done < int64(loc.keyLen) {
			kn := int64(loc.keyLen) - done
			if kn > n {
				kn = n
			}
			if string(buf[:kn]) != key[done:done+kn] {
				keyMatches = false
			}
		}
		done += n
	}
	crc = crc32.Update(crc, crc32.IEEETable, hdr[4:12])
	if crc != binary.LittleEndian.Uint32(hdr[0:4]) {
		return false, true
	}
	return keyMatches, false
}

// Appender streams one record into its own private segment, committing
// it atomically into the index at Commit. No store lock is held while
// the caller writes, so a client-paced stream never blocks the store.
type Appender struct {
	st     *Store
	f      *os.File
	path   string
	seq    uint64
	h      uint64
	keyLen uint32
	size   int64
	crc    uint32
	err    error
	done   bool
}

// Begin starts a streamed append for key. Returns nil if the store is
// closed, the key is invalid, or the segment file cannot be created.
func (st *Store) Begin(key string) *Appender {
	if len(key) == 0 || int64(len(key)) > maxFieldLen {
		return nil
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	seq := st.nextSeq
	st.nextSeq++
	st.mu.Unlock()
	path := filepath.Join(st.cfg.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil
	}
	ap := &Appender{st: st, f: f, path: path, seq: seq, h: hashString(key), keyLen: uint32(len(key))}
	// Placeholder header; CRC and bodyLen are patched at Commit. A
	// crash before Commit leaves an invalid record that recovery
	// truncates away.
	var hdr [recordHeaderSize]byte
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		ap.err = err
	}
	if _, err := f.WriteAt([]byte(key), recordHeaderSize); err != nil {
		ap.err = err
	}
	ap.size = recordHeaderSize + int64(len(key))
	ap.crc = crc32.ChecksumIEEE([]byte(key))
	return ap
}

// Write appends body bytes. It never fails the caller's stream: errors
// are remembered and surface as a failed Commit.
func (ap *Appender) Write(p []byte) (int, error) {
	if ap.err == nil {
		if ap.size+int64(len(p))-recordHeaderSize-int64(ap.keyLen) > maxFieldLen {
			ap.err = errors.New("spill: body too large")
		} else if _, err := ap.f.WriteAt(p, ap.size); err != nil {
			ap.err = err
		} else {
			ap.size += int64(len(p))
			ap.crc = crc32.Update(ap.crc, crc32.IEEETable, p)
		}
	}
	return len(p), nil
}

// Commit patches the header and registers the record in the index. The
// record becomes visible atomically; on any prior write error the
// appender aborts instead.
func (ap *Appender) Commit() bool {
	if ap.done {
		return false
	}
	bodyLen := ap.size - recordHeaderSize - int64(ap.keyLen)
	if ap.err != nil || bodyLen < 0 {
		ap.Abort()
		return false
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[4:8], ap.keyLen)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(bodyLen))
	crc := crc32.Update(ap.crc, crc32.IEEETable, hdr[4:12])
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	if _, err := ap.f.WriteAt(hdr[:], 0); err != nil {
		ap.Abort()
		return false
	}
	ap.done = true
	st := ap.st
	rec := ap.size
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || rec > st.cfg.MaxBytes {
		ap.f.Close()
		os.Remove(ap.path)
		if !st.closed {
			st.rejected.Add(1)
		}
		return false
	}
	seg := &segment{
		seq: ap.seq, path: ap.path, f: ap.f,
		size: rec, live: 1, sealed: true,
		hashes: []uint64{ap.h},
	}
	st.segs[ap.seq] = seg
	st.order = append(st.order, ap.seq)
	st.diskBytes += rec
	if old, ok := st.index[ap.h]; ok {
		st.markDeadLocked(old)
	}
	st.index[ap.h] = entryLoc{seq: ap.seq, off: 0, keyLen: ap.keyLen, bodyLen: uint32(bodyLen)}
	st.writes.Add(1)
	st.enforceBudgetsLocked()
	st.kickCompactLocked()
	return true
}

// Abort discards the in-progress record and its private segment file.
func (ap *Appender) Abort() {
	if ap.done {
		return
	}
	ap.done = true
	ap.f.Close()
	os.Remove(ap.path)
}

func (st *Store) kickCompactLocked() {
	if st.closed {
		return
	}
	select {
	case st.compactReq <- struct{}{}:
	default:
		// A kick while one is already pending or running: the compactor
		// is behind the write load. Counted as backpressure, not queued
		// — the pending pass re-evaluates every victim anyway.
		st.compactDeferred.Add(1)
	}
}

// compactBudget is the compactor's token bucket over rewritten live
// bytes: rate bytes/second of sustained rewrite with one segment of
// burst. Pure arithmetic (the caller supplies the clock and does the
// sleeping) so the policy is unit-testable without timers.
type compactBudget struct {
	rate   int64 // bytes/sec; <= 0 disables the cap
	burst  int64
	tokens int64
	last   time.Time
}

// grant credits tokens for the time elapsed since the previous call and
// returns how long the compactor must wait before the next rewrite may
// start (0 = go now). The first call starts with a full burst.
func (b *compactBudget) grant(now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0
	}
	if b.last.IsZero() {
		b.tokens = b.burst
	} else {
		b.tokens += int64(now.Sub(b.last).Seconds() * float64(b.rate))
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens > 0 {
		return 0
	}
	return time.Duration((1 - b.tokens) * int64(time.Second) / b.rate)
}

// charge debits the bytes one compaction pass actually rewrote.
func (b *compactBudget) charge(n int64) {
	if b.rate > 0 {
		b.tokens -= n
	}
}

func (st *Store) isClosed() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.closed
}

func (st *Store) compactLoop() {
	defer close(st.compactDone)
	budget := &compactBudget{rate: st.cfg.CompactBytesPerSec, burst: st.cfg.SegmentBytes}
	for range st.compactReq {
		for {
			wait := budget.grant(time.Now())
			if wait <= 0 {
				break
			}
			st.compactThrottles.Add(1)
			if wait > time.Second {
				wait = time.Second
			}
			time.Sleep(wait)
			if st.isClosed() {
				break // compactOnce is a no-op now; don't stall Close
			}
		}
		budget.charge(st.compactOnce())
	}
}

// compactOnce rewrites the live records of the worst sealed segment
// whose dead fraction reaches CompactFraction, then retires it,
// returning the live bytes rewritten (the quantity the rate budget
// meters). It runs under the store lock: at most SegmentBytes of
// sequential I/O.
func (st *Store) compactOnce() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0
	}
	var victim *segment
	for _, seq := range st.order {
		seg := st.segs[seq]
		if seg == st.active || !seg.sealed || seg.size == 0 {
			continue
		}
		if float64(seg.dead)/float64(seg.size) < st.cfg.CompactFraction {
			continue
		}
		if victim == nil || seg.dead > victim.dead {
			victim = seg
		}
	}
	if victim == nil {
		return 0
	}
	var rewritten int64
	for _, h := range victim.hashes {
		loc, ok := st.index[h]
		if !ok || loc.seq != victim.seq {
			continue
		}
		buf := make([]byte, loc.recordLen())
		if _, err := victim.f.ReadAt(buf, loc.off); err != nil || !verifyRecordBuf(buf) {
			st.corrupt.Add(1)
			delete(st.index, h)
			st.markDeadLocked(loc)
			continue
		}
		key := string(buf[recordHeaderSize : recordHeaderSize+int(loc.keyLen)])
		body := buf[recordHeaderSize+int(loc.keyLen):]
		rewritten += st.putLocked(h, key, body)
	}
	st.retireLocked(victim.seq)
	st.compactions.Add(1)
	st.compactedBytes.Add(uint64(rewritten))
	st.enforceBudgetsLocked()
	return rewritten
}

// CompactNow synchronously runs one compaction pass, bypassing the rate
// budget (test hook).
func (st *Store) CompactNow() { st.compactOnce() }

// Stats returns a snapshot of counters and sizes.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	var dead int64
	for _, seg := range st.segs {
		dead += seg.dead
	}
	s := Stats{
		Segments:           len(st.segs),
		Entries:            len(st.index),
		DiskBytes:          st.diskBytes,
		DeadBytes:          dead,
		IndexBytes:         st.indexBytesLocked(),
		MaxBytes:           st.cfg.MaxBytes,
		MaxIndexBytes:      st.cfg.MaxIndexBytes,
		CompactBytesPerSec: st.cfg.CompactBytesPerSec,
	}
	st.mu.RUnlock()
	s.Hits = st.hits.Load()
	s.Misses = st.misses.Load()
	s.Writes = st.writes.Load()
	s.Rejected = st.rejected.Load()
	s.Corrupt = st.corrupt.Load()
	s.RetiredSegments = st.retired.Load()
	s.Compactions = st.compactions.Load()
	s.CompactDeferred = st.compactDeferred.Load()
	s.CompactThrottles = st.compactThrottles.Load()
	s.CompactedBytes = st.compactedBytes.Load()
	return s
}

func (st *Store) closeFiles() {
	for _, seg := range st.segs {
		seg.f.Close()
	}
}

// Close stops compaction and closes all segment files. Data on disk
// remains valid for a later Open.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	close(st.compactReq)
	<-st.compactDone
	st.mu.Lock()
	st.closeFiles()
	st.mu.Unlock()
	return nil
}

// hashString mirrors the serving tier's sampled FNV-1a: full hash for
// short keys, head/tail plus strided middle samples for long ones.
// Collisions are safe — reads compare the stored key byte for byte.
const (
	fnvOffset64     = 14695981039346656037
	fnvPrime64      = 1099511628211
	hashSampleLimit = 1024
)

func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	n := len(s)
	if n <= hashSampleLimit {
		for i := 0; i < n; i++ {
			h ^= uint64(s[i])
			h *= fnvPrime64
		}
		return h
	}
	for i := 0; i < 256; i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	stride := (n - 512) / 512
	if stride < 1 {
		stride = 1
	}
	for i := 256; i < n-256; i += stride {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	for i := n - 256; i < n; i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= uint64(n)
	h *= fnvPrime64
	return h
}

func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	n := len(b)
	if n <= hashSampleLimit {
		for i := 0; i < n; i++ {
			h ^= uint64(b[i])
			h *= fnvPrime64
		}
		return h
	}
	for i := 0; i < 256; i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	stride := (n - 512) / 512
	if stride < 1 {
		stride = 1
	}
	for i := 256; i < n-256; i += stride {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	for i := n - 256; i < n; i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	h ^= uint64(n)
	h *= fnvPrime64
	return h
}
