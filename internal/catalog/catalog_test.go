package catalog

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func sampleCatalog() Catalog {
	return Catalog{
		{Name: "econo", Rho: 1, Price: 1},
		{Name: "mid", Rho: 0.5, Price: 3},
		{Name: "fast", Rho: 0.25, Price: 5},
		{Name: "turbo", Rho: 0.1, Price: 14},
	}
}

func TestOptimizeBeatsBruteForceNever(t *testing.T) {
	// Exhaustively enumerate all compositions within small budgets and
	// confirm the knapsack's X is maximal.
	m := model.Table1()
	c := sampleCatalog()
	for budget := 1; budget <= 18; budget++ {
		opt, err := Optimize(m, c, budget)
		if err != nil {
			if budget < cheapest(c) {
				continue
			}
			t.Fatalf("budget %d: %v", budget, err)
		}
		bestX := bruteForceBestX(t, m, c, budget)
		if opt.X < bestX-1e-9*bestX {
			t.Fatalf("budget %d: knapsack X %v below brute-force optimum %v (design %v)", budget, opt.X, bestX, opt)
		}
		if opt.Cost > budget {
			t.Fatalf("budget %d: design overspends (%d)", budget, opt.Cost)
		}
	}
}

// bruteForceBestX enumerates compositions recursively.
func bruteForceBestX(t *testing.T, m model.Params, c Catalog, budget int) float64 {
	t.Helper()
	best := 0.0
	var recurse func(tier int, remaining int, rhos []float64)
	recurse = func(tier, remaining int, rhos []float64) {
		if tier == len(c) {
			if len(rhos) == 0 {
				return
			}
			p, err := profile.New(rhos...)
			if err != nil {
				t.Fatal(err)
			}
			if x := core.X(m, p); x > best {
				best = x
			}
			return
		}
		for n := 0; n*c[tier].Price <= remaining; n++ {
			next := rhos
			for k := 0; k < n; k++ {
				next = append(next, c[tier].Rho)
			}
			recurse(tier+1, remaining-n*c[tier].Price, next)
		}
	}
	recurse(0, budget, nil)
	return best
}

func TestOptimizeBeatsHeuristics(t *testing.T) {
	m := model.Table1()
	c := sampleCatalog()
	for _, budget := range []int{10, 17, 30, 53} {
		opt, err := Optimize(m, c, budget)
		if err != nil {
			t.Fatal(err)
		}
		fastest, err := BuyFastest(m, c, budget)
		if err != nil {
			t.Fatal(err)
		}
		most, err := BuyMost(m, c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if opt.X < fastest.X-1e-12 || opt.X < most.X-1e-12 {
			t.Fatalf("budget %d: optimum %v lost to a heuristic (%v / %v)", budget, opt.X, fastest.X, most.X)
		}
	}
}

func TestHeuristicsCanBeStrictlySuboptimal(t *testing.T) {
	// At some budget the knapsack must beat at least one heuristic strictly
	// for this catalog; otherwise the study is vacuous.
	m := model.Table1()
	c := sampleCatalog()
	strictly := false
	for budget := 5; budget <= 40 && !strictly; budget++ {
		opt, err := Optimize(m, c, budget)
		if err != nil {
			continue
		}
		fastest, err1 := BuyFastest(m, c, budget)
		most, err2 := BuyMost(m, c, budget)
		if err1 == nil && opt.X > fastest.X*(1+1e-9) {
			strictly = true
		}
		if err2 == nil && opt.X > most.X*(1+1e-9) {
			strictly = true
		}
	}
	if !strictly {
		t.Fatal("knapsack never strictly beat the heuristics on this catalog")
	}
}

func TestOptimizeUsesWholeValueStructure(t *testing.T) {
	// The knapsack objective must equal −Σ log r over the chosen machines.
	m := model.Table1()
	c := sampleCatalog()
	opt, err := Optimize(m, c, 23)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, n := range opt.Counts {
		sum += float64(n) * -core.LogProductRatios(m, profile.Profile{c[i].Rho})
	}
	if got := -core.LogProductRatios(m, opt.Profile); math.Abs(got-sum) > 1e-12*sum {
		t.Fatalf("additivity broken: %v vs %v", got, sum)
	}
}

func TestValidation(t *testing.T) {
	m := model.Table1()
	if _, err := Optimize(m, Catalog{}, 10); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := Optimize(m, Catalog{{Name: "x", Rho: 0, Price: 1}}, 10); err == nil {
		t.Fatal("ρ=0 accepted")
	}
	if _, err := Optimize(m, Catalog{{Name: "x", Rho: 0.5, Price: 0}}, 10); err == nil {
		t.Fatal("price=0 accepted")
	}
	if _, err := Optimize(m, sampleCatalog(), 0); err == nil {
		t.Fatal("budget=0 accepted")
	}
	if _, err := Optimize(m, Catalog{{Name: "x", Rho: 0.5, Price: 100}}, 10); err == nil {
		t.Fatal("unaffordable budget accepted")
	}
	if _, err := BuyFastest(m, Catalog{{Name: "x", Rho: 0.5, Price: 100}}, 10); err == nil {
		t.Fatal("BuyFastest unaffordable accepted")
	}
	if _, err := BuyMost(m, Catalog{{Name: "x", Rho: 0.5, Price: 100}}, 10); err == nil {
		t.Fatal("BuyMost unaffordable accepted")
	}
}

func TestHeuristicShapes(t *testing.T) {
	m := model.Table1()
	c := sampleCatalog()
	fastest, err := BuyFastest(m, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	// 30 buys two turbos (28) then... remaining 2 buys econos.
	if fastest.Counts[3] != 2 {
		t.Fatalf("BuyFastest turbo count = %d, want 2 (counts %v)", fastest.Counts[3], fastest.Counts)
	}
	most, err := BuyMost(m, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	if most.Counts[0] != 30 || len(most.Profile) != 30 {
		t.Fatalf("BuyMost counts %v", most.Counts)
	}
}

func TestDesignProfileSorted(t *testing.T) {
	m := model.Table1()
	opt, err := Optimize(m, sampleCatalog(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Profile.IsSortedDesc() {
		t.Fatalf("design profile not power-indexed: %v", opt.Profile)
	}
}

func TestOptimizeScalesToRealisticBudgets(t *testing.T) {
	m := model.Table1()
	rng := stats.NewRNG(1)
	c := make(Catalog, 12)
	for i := range c {
		c[i] = Tier{
			Name:  string(rune('a' + i)),
			Rho:   rng.InRange(0.02, 1),
			Price: 1 + rng.Intn(500),
		}
	}
	opt, err := Optimize(m, c, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > 10000 || len(opt.Profile) == 0 {
		t.Fatalf("bad design %v", opt)
	}
}

func TestOptimizeWithValuesMatchesOptimize(t *testing.T) {
	// A budget sweep reusing one precomputed value vector must reproduce
	// Optimize exactly — that reuse is the point of the API.
	m := model.Table1()
	c := sampleCatalog()
	values := c.Values(m)
	if len(values) != len(c) {
		t.Fatalf("%d values for %d tiers", len(values), len(c))
	}
	for i, v := range values {
		if !(v > 0) {
			t.Fatalf("values[%d] = %v not positive", i, v)
		}
		if want := -core.LogRatio(m, c[i].Rho); v != want {
			t.Fatalf("values[%d] = %v, want −log r = %v", i, v, want)
		}
	}
	for budget := 1; budget <= 60; budget++ {
		want, errWant := Optimize(m, c, budget)
		got, errGot := OptimizeWithValues(m, c, budget, values)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("budget %d: error mismatch %v vs %v", budget, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if got.Cost != want.Cost || got.X != want.X {
			t.Fatalf("budget %d: %v vs %v", budget, got, want)
		}
		for i := range c {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("budget %d: counts %v vs %v", budget, got.Counts, want.Counts)
			}
		}
	}
}

func TestOptimizeWithValuesValidation(t *testing.T) {
	m := model.Table1()
	c := sampleCatalog()
	if _, err := OptimizeWithValues(m, c, 10, []float64{1}); err == nil {
		t.Fatal("mismatched value vector accepted")
	}
	if _, err := OptimizeWithValues(m, c, 0, c.Values(m)); err == nil {
		t.Fatal("zero budget accepted")
	}
}
