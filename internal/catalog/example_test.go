package catalog_test

import (
	"fmt"

	"hetero/internal/catalog"
	"hetero/internal/model"
)

// ExampleOptimize designs the most powerful cluster a budget can buy — an
// exact unbounded knapsack thanks to the X-measure's per-machine
// additivity.
func ExampleOptimize() {
	env := model.Table1()
	cat := catalog.Catalog{
		{Name: "econo", Rho: 1, Price: 7},
		{Name: "turbo", Rho: 0.1, Price: 55},
	}
	d, err := catalog.Optimize(env, cat, 131)
	if err != nil {
		panic(err)
	}
	fmt.Printf("buy %d econo + %d turbo (cost %d, X %.2f)\n", d.Counts[0], d.Counts[1], d.Cost, d.X)
	// Output: buy 3 econo + 2 turbo (cost 131, X 23.00)
}
