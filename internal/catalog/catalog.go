// Package catalog solves the cluster-design problem: given a machine
// catalog (speed tiers with prices) and a budget, compose the most powerful
// cluster money can buy.
//
// The telescoped X-measure makes this exactly solvable. Because
//
//	X(P) = (1 − Π r(ρᵢ))/(A − τδ),   r(ρ) = (Bρ+τδ)/(Bρ+A) ∈ (0,1),
//
// maximizing X is minimizing Σ log r(ρᵢ), and each purchased machine
// contributes its own additive value −log r(ρ) > 0 independent of the rest
// of the cluster. Composing a budget-constrained cluster is therefore an
// UNBOUNDED KNAPSACK: items = catalog tiers, value = −log r(ρ), weight =
// price. The package solves it exactly by dynamic programming over integer
// prices and compares the optimum against the folk heuristics ("buy the
// fastest you can afford", "buy as many as possible").
package catalog

import (
	"fmt"
	"sort"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// Tier is one catalog entry: a machine model with speed ρ and an integer
// price (choose your own currency unit; the DP is pseudo-polynomial in the
// budget).
type Tier struct {
	Name  string
	Rho   float64
	Price int
}

// Catalog is a set of purchasable machine tiers.
type Catalog []Tier

// Validate checks tier sanity.
func (c Catalog) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("catalog: empty catalog")
	}
	for i, t := range c {
		if !(t.Rho > 0) || t.Rho > 1 {
			return fmt.Errorf("catalog: tier %d (%s) ρ = %v outside (0,1]", i, t.Name, t.Rho)
		}
		if t.Price <= 0 {
			return fmt.Errorf("catalog: tier %d (%s) price %d must be positive", i, t.Name, t.Price)
		}
	}
	return nil
}

// Values returns each tier's additive knapsack value −log r(ρ) > 0 — the
// machine's contribution to −Σ log r, the monotone transform of X. The
// slice is indexed like the catalog. Callers running the DP repeatedly
// (budget sweeps, the HTTP /v1/design endpoint under load) compute this
// once and pass it to OptimizeWithValues, so re-solves never re-derive
// per-tier values.
func (c Catalog) Values(m model.Params) []float64 {
	values := make([]float64, len(c))
	for i, t := range c {
		values[i] = -core.LogRatio(m, t.Rho)
	}
	return values
}

// Design is a purchased cluster composition.
type Design struct {
	// Counts[i] is how many of catalog tier i to buy.
	Counts []int
	// Cost is the total price.
	Cost int
	// Profile is the resulting cluster profile (tiers repeated by count,
	// slowest first).
	Profile profile.Profile
	// X is the composition's power measure.
	X float64
}

// Optimize returns the X-maximal composition affordable within budget,
// solved exactly by unbounded-knapsack DP. A budget too small for any tier
// yields an error.
func Optimize(m model.Params, c Catalog, budget int) (Design, error) {
	if err := c.Validate(); err != nil {
		return Design{}, err
	}
	if err := m.Validate(); err != nil {
		return Design{}, err
	}
	return OptimizeWithValues(m, c, budget, c.Values(m))
}

// OptimizeWithValues is Optimize with the per-tier knapsack values already
// derived (see Catalog.Values). values must be indexed like the catalog;
// passing values computed for different parameters silently optimizes for
// those parameters instead.
func OptimizeWithValues(m model.Params, c Catalog, budget int, values []float64) (Design, error) {
	if err := m.Validate(); err != nil {
		return Design{}, err
	}
	if err := c.Validate(); err != nil {
		return Design{}, err
	}
	if len(values) != len(c) {
		return Design{}, fmt.Errorf("catalog: %d precomputed values for %d tiers", len(values), len(c))
	}
	if budget <= 0 {
		return Design{}, fmt.Errorf("catalog: budget %d must be positive", budget)
	}
	// DP over budgets: best[b] = max total value spendable within b;
	// choice[b] = tier whose purchase attains best[b], or −1 when best[b]
	// is inherited from b−1 (one unit of money left unspent).
	best := make([]float64, budget+1)
	choice := make([]int, budget+1)
	for b := 1; b <= budget; b++ {
		best[b] = best[b-1]
		choice[b] = -1
		for t, tier := range c {
			if tier.Price > b {
				continue
			}
			if v := best[b-tier.Price] + values[t]; v > best[b] {
				best[b] = v
				choice[b] = t
			}
		}
	}
	if best[budget] == 0 {
		return Design{}, fmt.Errorf("catalog: budget %d cannot afford any tier (cheapest costs %d)", budget, cheapest(c))
	}
	// Recover the composition by walking the choices back down.
	counts := make([]int, len(c))
	cost := 0
	for b := budget; b > 0; {
		t := choice[b]
		if t == -1 {
			b--
			continue
		}
		counts[t]++
		cost += c[t].Price
		b -= c[t].Price
	}
	return assembleDesign(m, c, counts, cost)
}

// BuyFastest is the folk heuristic "spend everything on the fastest tier
// you can afford, repeatedly".
func BuyFastest(m model.Params, c Catalog, budget int) (Design, error) {
	if err := c.Validate(); err != nil {
		return Design{}, err
	}
	tiers := append(Catalog(nil), c...)
	sort.SliceStable(tiers, func(i, j int) bool { return tiers[i].Rho < tiers[j].Rho }) // fastest first
	counts := make([]int, len(c))
	cost := 0
	remaining := budget
	for _, tier := range tiers {
		for tier.Price <= remaining {
			counts[indexOf(c, tier)]++
			cost += tier.Price
			remaining -= tier.Price
		}
	}
	if cost == 0 {
		return Design{}, fmt.Errorf("catalog: budget %d cannot afford any tier", budget)
	}
	return assembleDesign(m, c, counts, cost)
}

// BuyMost is the folk heuristic "maximize the machine count": buy the
// cheapest tier exclusively.
func BuyMost(m model.Params, c Catalog, budget int) (Design, error) {
	if err := c.Validate(); err != nil {
		return Design{}, err
	}
	cheapIdx := 0
	for i, t := range c {
		if t.Price < c[cheapIdx].Price {
			cheapIdx = i
		}
	}
	n := budget / c[cheapIdx].Price
	if n == 0 {
		return Design{}, fmt.Errorf("catalog: budget %d cannot afford any tier", budget)
	}
	counts := make([]int, len(c))
	counts[cheapIdx] = n
	return assembleDesign(m, c, counts, n*c[cheapIdx].Price)
}

func assembleDesign(m model.Params, c Catalog, counts []int, cost int) (Design, error) {
	var rhos []float64
	for i, n := range counts {
		for k := 0; k < n; k++ {
			rhos = append(rhos, c[i].Rho)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rhos)))
	p, err := profile.New(rhos...)
	if err != nil {
		return Design{}, err
	}
	return Design{
		Counts:  counts,
		Cost:    cost,
		Profile: p,
		X:       core.X(m, p),
	}, nil
}

// String summarizes the composition.
func (d Design) String() string {
	return fmt.Sprintf("Design{cost %d, n %d, X %.4f}", d.Cost, len(d.Profile), d.X)
}

func cheapest(c Catalog) int {
	min := c[0].Price
	for _, t := range c[1:] {
		if t.Price < min {
			min = t.Price
		}
	}
	return min
}

func indexOf(c Catalog, tier Tier) int {
	for i, t := range c {
		if t == tier {
			return i
		}
	}
	panic("catalog: tier not in catalog")
}
