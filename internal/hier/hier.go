// Package hier composes the Cluster-Exploitation Problem hierarchically:
// a master server feeds sub-servers, each of which runs the CEP over its
// own sub-cluster. The paper's model is flat; grids and federated volunteer
// pools (its §1 motivation) are not. The composition principle:
//
// A sub-cluster that solves the CEP at asymptotic work rate R = 1/(τδ+1/X)
// needs L(w) = w/R time units to complete w units (the Cluster-Rental dual),
// linearly in w — exactly the signature of a single model computer, whose
// busy time is Bρw. A subtree is therefore equivalent, from its parent's
// point of view, to one computer with
//
//	ρ_eff = (τδ + 1/X_sub) / B
//
// (the parent also charges the standard unpack/pack overhead (B−1)·ρ_eff·w,
// which for µs-scale π is negligible but kept for exactness). Folding
// leaves bottom-up yields an equivalent flat profile for any tree, which
// the ordinary X/HECR machinery then measures.
//
// The model deliberately makes one simplification, stated here because it
// bounds what conclusions the package supports: a sub-server is assumed to
// store-and-forward its whole package before redistributing (no pipelining
// between levels), matching the store-and-forward semantics of the flat
// model's messages. Under that assumption the equivalence above is exact in
// the asymptotic regime; with cross-level pipelining a hierarchy could only
// do better.
package hier

import (
	"fmt"
	"strings"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// Node is a cluster tree: either a leaf computer (Rho > 0, no children) or
// an internal sub-server with children (Rho ignored; the sub-server itself
// only coordinates, matching the paper's server C0 which computes no work).
type Node struct {
	// Rho is the leaf computer's speed; must be 0 for internal nodes.
	Rho float64
	// Children are the sub-clusters fed by this node's sub-server.
	Children []*Node
}

// Leaf returns a leaf computer node.
func Leaf(rho float64) *Node { return &Node{Rho: rho} }

// Cluster returns an internal node over the given children.
func Cluster(children ...*Node) *Node { return &Node{Children: children} }

// Validate checks structural sanity: leaves have ρ ∈ (0,1], internal nodes
// have ≥1 child and no own speed, and the tree is non-empty.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("hier: nil node")
	}
	if len(n.Children) == 0 {
		if !(n.Rho > 0) || n.Rho > 1 {
			return fmt.Errorf("hier: leaf ρ = %v outside (0,1]", n.Rho)
		}
		return nil
	}
	if n.Rho != 0 {
		return fmt.Errorf("hier: internal node has ρ = %v; sub-servers do no work", n.Rho)
	}
	for i, c := range n.Children {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("hier: child %d: %w", i, err)
		}
	}
	return nil
}

// Leaves returns the tree's leaf speeds in left-to-right order.
func (n *Node) Leaves() profile.Profile {
	if len(n.Children) == 0 {
		return profile.Profile{n.Rho}
	}
	var out profile.Profile
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Depth returns the tree height (1 for a single leaf).
func (n *Node) Depth() int {
	if len(n.Children) == 0 {
		return 1
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// EffectiveRho folds the subtree into its single-computer equivalent speed
// as seen by the parent: leaves return their own ρ; internal nodes compute
// the equivalent profile of their children, then ρ_eff = (τδ + 1/X)/B.
// An error is returned when a fold leaves (0,1] — a subtree faster than a
// normalized top-level computer, which the caller must renormalize.
func (n *Node) EffectiveRho(m model.Params) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	return effectiveRho(m, n)
}

func effectiveRho(m model.Params, n *Node) (float64, error) {
	if len(n.Children) == 0 {
		return n.Rho, nil
	}
	equiv := make(profile.Profile, len(n.Children))
	for i, c := range n.Children {
		r, err := effectiveRho(m, c)
		if err != nil {
			return 0, err
		}
		equiv[i] = r
	}
	x := core.X(m, equiv)
	rho := (m.TauDelta() + 1/x) / m.B()
	if !(rho > 0) {
		return 0, fmt.Errorf("hier: non-positive effective ρ %v", rho)
	}
	return rho, nil
}

// EquivalentProfile returns the profile the tree's ROOT server sees: one
// effective computer per child subtree. For a flat tree this is simply the
// leaf profile.
//
// Effective ρ values may exceed 1: a subtree wrapping coordination overhead
// around a speed-1 machine is slower than the machine itself. The paper's
// ρ ≤ 1 bound is only a normalization convention (its own footnote 5
// relaxes it for HECR calibration), and every measure in package core is
// well-defined for any positive ρ, so the returned profile intentionally
// skips the convention check.
func (n *Node) EquivalentProfile(m model.Params) (profile.Profile, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(n.Children) == 0 {
		return profile.Profile{n.Rho}, nil
	}
	equiv := make(profile.Profile, len(n.Children))
	for i, c := range n.Children {
		r, err := effectiveRho(m, c)
		if err != nil {
			return nil, err
		}
		equiv[i] = r
	}
	return equiv, nil
}

// X returns the X-measure of the whole tree as seen by the root.
func (n *Node) X(m model.Params) (float64, error) {
	p, err := n.EquivalentProfile(m)
	if err != nil {
		return 0, err
	}
	return core.X(m, p), nil
}

// String renders the tree in a compact parenthesized form.
func (n *Node) String() string {
	if len(n.Children) == 0 {
		return fmt.Sprintf("%.4g", n.Rho)
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// FlatComparison quantifies the cost of hierarchy: the X-measure of the
// tree vs the X-measure of the same leaves organized flat under one server.
type FlatComparison struct {
	Tree          *Node
	XTree         float64
	XFlat         float64
	HierarchyLoss float64 // 1 − XTree/XFlat: work lost to the extra level(s)
}

// CompareWithFlat computes the comparison. The flat organization can only
// win under this package's store-and-forward composition (the extra level
// serializes), so HierarchyLoss ≥ 0 up to rounding.
func CompareWithFlat(m model.Params, tree *Node) (FlatComparison, error) {
	xTree, err := tree.X(m)
	if err != nil {
		return FlatComparison{}, err
	}
	leaves := tree.Leaves()
	flat, err := profile.New(leaves...)
	if err != nil {
		return FlatComparison{}, err
	}
	xFlat := core.X(m, flat)
	return FlatComparison{
		Tree:          tree,
		XTree:         xTree,
		XFlat:         xFlat,
		HierarchyLoss: 1 - xTree/xFlat,
	}, nil
}
