package hier

import (
	"math"
	"strings"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		tree *Node
		ok   bool
	}{
		{"leaf", Leaf(0.5), true},
		{"flat", Cluster(Leaf(1), Leaf(0.5)), true},
		{"nested", Cluster(Cluster(Leaf(1), Leaf(0.5)), Leaf(0.25)), true},
		{"bad leaf", Leaf(0), false},
		{"leaf above 1", Leaf(1.5), false},
		{"internal with rho", &Node{Rho: 0.5, Children: []*Node{Leaf(1)}}, false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tree.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestLeavesAndDepth(t *testing.T) {
	tree := Cluster(Cluster(Leaf(1), Leaf(0.5)), Leaf(0.25))
	leaves := tree.Leaves()
	want := profile.Profile{1, 0.5, 0.25}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("Leaves = %v", leaves)
		}
	}
	if tree.Depth() != 3 {
		t.Fatalf("Depth = %d", tree.Depth())
	}
	if Leaf(1).Depth() != 1 {
		t.Fatal("leaf depth != 1")
	}
}

func TestLeafEffectiveRhoIsItself(t *testing.T) {
	m := model.Table1()
	r, err := Leaf(0.37).EffectiveRho(m)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.37 {
		t.Fatalf("leaf ρ_eff = %v", r)
	}
}

func TestSubtreeActsLikeRentalDual(t *testing.T) {
	// ρ_eff must equal the sub-cluster's per-unit rental time divided by B:
	// the subtree processes w units in B·ρ_eff·w = w·(τδ + 1/X_sub).
	m := model.Table1()
	sub := profile.MustNew(1, 0.5, 0.25)
	tree := Cluster(Leaf(1), Leaf(0.5), Leaf(0.25))
	r, err := tree.EffectiveRho(m)
	if err != nil {
		t.Fatal(err)
	}
	want := core.RentalLifespan(m, sub, 1) / m.B()
	if math.Abs(r-want) > 1e-12*want {
		t.Fatalf("ρ_eff = %v, want rental/B = %v", r, want)
	}
}

func TestHierarchyNeverBeatsFlat(t *testing.T) {
	// Under store-and-forward composition the extra level serializes, so
	// any tree's X is at most the flat organization's X.
	m := model.Table1()
	r := stats.NewRNG(83)
	for trial := 0; trial < 50; trial++ {
		// Random 2-level tree over 4-9 leaves.
		nLeaves := 4 + r.Intn(6)
		leaves := make([]*Node, nLeaves)
		for i := range leaves {
			leaves[i] = Leaf(r.InRange(0.05, 1))
		}
		split := 1 + r.Intn(nLeaves-1)
		tree := Cluster(Cluster(leaves[:split]...), Cluster(leaves[split:]...))
		cmp, err := CompareWithFlat(m, tree)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.HierarchyLoss < -1e-9 {
			t.Fatalf("hierarchy beat flat: loss %v for %v", cmp.HierarchyLoss, tree)
		}
		if cmp.XTree <= 0 || cmp.XFlat <= 0 {
			t.Fatalf("bad X values: %+v", cmp)
		}
	}
}

func TestTwoLevelLossIsSmallAtTinyCommunication(t *testing.T) {
	// With µs-scale communication a two-level hierarchy costs almost
	// nothing: a subtree aggregates its children's speed nearly perfectly.
	m := model.Table1()
	tree := Cluster(
		Cluster(Leaf(1), Leaf(0.5)),
		Cluster(Leaf(0.5), Leaf(0.25)),
	)
	cmp, err := CompareWithFlat(m, tree)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HierarchyLoss > 0.01 {
		t.Fatalf("two-level loss %v suspiciously large at Table 1 scales", cmp.HierarchyLoss)
	}
}

func TestDeepTreesDegradeMonotonically(t *testing.T) {
	// Chaining a computer behind k sub-server levels can only slow it.
	m := model.Table1()
	prev := math.Inf(1)
	node := Leaf(0.5)
	for depth := 1; depth <= 5; depth++ {
		x, err := Cluster(node).X(m)
		if err != nil {
			t.Fatal(err)
		}
		if x > prev+1e-12 {
			t.Fatalf("depth %d raised X: %v after %v", depth, x, prev)
		}
		prev = x
		node = Cluster(node)
	}
}

func TestEquivalentProfileAllowsSlowerThanOneSubtrees(t *testing.T) {
	// A subtree that wraps coordination overhead around a speed-1 machine
	// folds to ρ_eff > 1 — slower than any normalized computer. That is
	// legitimate (the ρ ≤ 1 bound is a convention, per the paper's
	// footnote 5) and the measures must stay consistent: wrapping strictly
	// reduces X.
	m := model.Params{Tau: 0.9, Pi: 0.01, Delta: 1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	tree := Cluster(Cluster(Leaf(1)))
	p, err := tree.EquivalentProfile(m)
	if err != nil {
		t.Fatal(err)
	}
	if !(p[0] > 1) {
		t.Fatalf("wrapped machine ρ_eff = %v, want > 1 at τ = 0.9", p[0])
	}
	xWrapped, err := tree.X(m)
	if err != nil {
		t.Fatal(err)
	}
	xBare, err := Cluster(Leaf(1)).X(m)
	if err != nil {
		t.Fatal(err)
	}
	if !(xWrapped < xBare) {
		t.Fatalf("wrapping did not reduce X: %v vs %v", xWrapped, xBare)
	}
}

func TestString(t *testing.T) {
	tree := Cluster(Cluster(Leaf(1), Leaf(0.5)), Leaf(0.25))
	s := tree.String()
	if !strings.Contains(s, "(") || !strings.Contains(s, "0.25") {
		t.Fatalf("String = %q", s)
	}
}

func TestXMatchesManualFold(t *testing.T) {
	m := model.Table1()
	inner := profile.MustNew(0.8, 0.4)
	rhoEff := (m.TauDelta() + 1/core.X(m, inner)) / m.B()
	tree := Cluster(Cluster(Leaf(0.8), Leaf(0.4)), Leaf(0.6))
	xTree, err := tree.X(m)
	if err != nil {
		t.Fatal(err)
	}
	manual := core.X(m, profile.MustNew(rhoEff, 0.6))
	if math.Abs(xTree-manual) > 1e-12*manual {
		t.Fatalf("tree X %v != manual fold %v", xTree, manual)
	}
}

func TestErrorPropagation(t *testing.T) {
	m := model.Table1()
	bad := Cluster(Leaf(0)) // invalid leaf inside a cluster
	if _, err := bad.EffectiveRho(m); err == nil {
		t.Fatal("EffectiveRho accepted invalid tree")
	}
	if _, err := bad.EquivalentProfile(m); err == nil {
		t.Fatal("EquivalentProfile accepted invalid tree")
	}
	if _, err := bad.X(m); err == nil {
		t.Fatal("X accepted invalid tree")
	}
	if _, err := CompareWithFlat(m, bad); err == nil {
		t.Fatal("CompareWithFlat accepted invalid tree")
	}
	// Nested invalidity must surface from deep children too.
	deep := Cluster(Cluster(Leaf(0.5), Cluster(Leaf(-1))))
	if err := deep.Validate(); err == nil {
		t.Fatal("deep invalid leaf accepted")
	}
}

func TestEffectiveRhoOfValidTrees(t *testing.T) {
	m := model.Table1()
	r, err := Cluster(Leaf(0.5), Leaf(0.5)).EffectiveRho(m)
	if err != nil {
		t.Fatal(err)
	}
	// Two speed-0.5 machines federate into something faster than one.
	if !(r < 0.5) {
		t.Fatalf("ρ_eff = %v, want < 0.5", r)
	}
}
