package hier_test

import (
	"fmt"

	"hetero/internal/hier"
	"hetero/internal/model"
)

// ExampleCompareWithFlat measures what federating a cluster into two
// halves costs at grid-scale (expensive) links.
func ExampleCompareWithFlat() {
	env := model.Params{Tau: 0.02, Pi: 1e-5, Delta: 1}
	tree := hier.Cluster(
		hier.Cluster(hier.Leaf(1), hier.Leaf(0.75)),
		hier.Cluster(hier.Leaf(0.5), hier.Leaf(0.25)),
	)
	cmp, _ := hier.CompareWithFlat(env, tree)
	fmt.Printf("hierarchy loses %.1f%% of the flat cluster's work\n", 100*cmp.HierarchyLoss)
	// Output: hierarchy loses 15.5% of the flat cluster's work
}
