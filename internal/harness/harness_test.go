package harness

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/workload"
)

func testTask(t *testing.T) workload.Task {
	t.Helper()
	// Small sizes keep the real computation fast in tests.
	return workload.NewMonteCarlo(11, 500)
}

func TestRunFIFOEndToEnd(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	rep, err := RunFIFO(m, p, testTask(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Virtual timing matches the analytic schedule exactly.
	if math.Abs(rep.Makespan-100) > 1e-6 {
		t.Fatalf("makespan %v != L", rep.Makespan)
	}
	// Whole units lose at most n tasks to rounding.
	if rep.RoundingLoss() < 0 || rep.RoundingLoss() >= float64(len(p)) {
		t.Fatalf("rounding loss %v outside [0, n)", rep.RoundingLoss())
	}
	if math.Abs(rep.ModelWork-core.W(m, p, 100)) > 1e-9*rep.ModelWork {
		t.Fatalf("model work %v != W(L;P)", rep.ModelWork)
	}
	// The parallel execution verifies against a sequential recomputation.
	if err := rep.VerifySequential(testTask(t)); err != nil {
		t.Fatal(err)
	}
	if rep.UnitsDone == 0 || rep.Digest == 0 {
		t.Fatalf("suspicious report: %+v", rep)
	}
	if rep.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestRunFIFOFasterComputersGetMoreUnits(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	rep, err := RunFIFO(m, p, testTask(t), 200)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.Computers[2].Units > rep.Computers[1].Units && rep.Computers[1].Units > rep.Computers[0].Units) {
		t.Fatalf("unit counts not increasing toward faster computers: %d/%d/%d",
			rep.Computers[0].Units, rep.Computers[1].Units, rep.Computers[2].Units)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	rep, err := RunFIFO(m, p, testTask(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	rep.Computers[0].Digest ^= 1
	if rep.VerifySequential(testTask(t)) == nil {
		t.Fatal("tampered digest passed verification")
	}
}

func TestVerifyRejectsWrongTask(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	rep, err := RunFIFO(m, p, testTask(t), 50)
	if err != nil {
		t.Fatal(err)
	}
	other := workload.NewSmoothing(1, 64, 2)
	if rep.VerifySequential(other) == nil {
		t.Fatal("wrong task accepted")
	}
}

func TestRunFIFODeterministicDigest(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25, 0.125)
	a, err := RunFIFO(m, p, testTask(t), 80)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFIFO(m, p, testTask(t), 80)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.UnitsDone != b.UnitsDone {
		t.Fatal("parallel execution digest not deterministic")
	}
	// And equal to the protocol-independent reference digest.
	counts := make([]int, len(a.Computers))
	for i, c := range a.Computers {
		counts[i] = c.Units
	}
	if ref := DigestAll(testTask(t), counts); ref != a.Digest {
		t.Fatalf("digest %x != reference %x", a.Digest, ref)
	}
}

func TestRunFIFOPropagatesScheduleErrors(t *testing.T) {
	m := model.Table1()
	if _, err := RunFIFO(m, profile.MustNew(1), testTask(t), -1); err == nil {
		t.Fatal("negative lifespan accepted")
	}
}

func TestAllWorkloadFamiliesRunEndToEnd(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	for _, task := range []workload.Task{
		workload.NewMonteCarlo(3, 200),
		workload.NewPatternMatch(3, 4096, 8),
		workload.NewSmoothing(3, 512, 4),
	} {
		rep, err := RunFIFO(m, p, task, 30)
		if err != nil {
			t.Fatalf("%s: %v", task.Name(), err)
		}
		if err := rep.VerifySequential(task); err != nil {
			t.Fatalf("%s: %v", task.Name(), err)
		}
	}
}
