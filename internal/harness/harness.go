// Package harness executes a worksharing protocol end to end: real work
// (package workload tasks computed on real goroutines, one per cluster
// computer) under virtual model time (the §2.1 cost accounting of package
// sim). The combination gives the best of both worlds — outputs are
// verifiable computations, while timing stays deterministic and exactly
// comparable to the analytical schedule, so tests can assert both "the
// work was really done" and "it finished exactly when Theorem 2 says".
//
// Work units are discrete here (the model's w may be fractional; the
// harness floors allocations to whole tasks and reports the rounding),
// which is how a deployment would actually cut packages from a bag of
// equal-size tasks.
package harness

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/workload"
)

// ComputerReport is one computer's end-to-end outcome.
type ComputerReport struct {
	Index     int     // position in the startup order
	Rho       float64 // the computer's speed
	Units     int     // whole work units assigned (⌊wᵢ⌋)
	Digest    uint64  // fold of the task digests — proof of computation
	RecvEnd   float64 // virtual time the package arrived
	BusyEnd   float64 // virtual time unpack+compute+pack finished
	ResultsAt float64 // virtual time results arrived at the server
}

// Report is the outcome of an end-to-end run.
type Report struct {
	Task      string
	Lifespan  float64
	Computers []ComputerReport
	// UnitsDone is the total whole units computed (≤ the model's W(L;P)
	// because allocations are floored to whole tasks).
	UnitsDone int
	// ModelWork is the fractional W(L;P) the continuous model predicts.
	ModelWork float64
	// Makespan is the virtual time the last results arrived.
	Makespan float64
	// Digest folds every computer's digest — the run's verifiable output.
	Digest uint64
}

// RunFIFO executes the optimal FIFO protocol for the cluster over the
// given lifespan, computing every assigned unit of task for real (in
// parallel across computers), and returns the verified report.
func RunFIFO(m model.Params, p profile.Profile, task workload.Task, lifespan float64) (*Report, error) {
	sched, err := schedule.BuildFIFO(m, p, lifespan)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Task:      task.Name(),
		Lifespan:  lifespan,
		ModelWork: sched.TotalWork,
		Computers: make([]ComputerReport, len(sched.Computers)),
	}

	// Discretize: computer i gets ⌊wᵢ⌋ whole units; unit indices are
	// assigned contiguously in startup order so every unit is computed
	// exactly once.
	next := 0
	for i, c := range sched.Computers {
		units := int(math.Floor(c.Work))
		rep.Computers[i] = ComputerReport{
			Index:     i,
			Rho:       c.Rho,
			Units:     units,
			RecvEnd:   c.Segment(schedule.SegReceive).End,
			BusyEnd:   c.Segment(schedule.SegPack).End,
			ResultsAt: c.ResultsArrive,
		}
		rep.UnitsDone += units
		next += units
	}

	// Real computation, one goroutine per computer (the cluster's natural
	// parallelism); each computer folds its units' digests.
	starts := make([]int, len(rep.Computers))
	acc := 0
	for i, c := range rep.Computers {
		starts[i] = acc
		acc += c.Units
	}
	digests := parallel.Map(0, len(rep.Computers), func(i int) uint64 {
		d := uint64(0)
		for u := starts[i]; u < starts[i]+rep.Computers[i].Units; u++ {
			d = fold(d, task.Run(u))
		}
		return d
	})
	var whole uint64
	for i, d := range digests {
		rep.Computers[i].Digest = d
		whole = fold(whole, d)
		if rep.Computers[i].ResultsAt > rep.Makespan {
			rep.Makespan = rep.Computers[i].ResultsAt
		}
	}
	rep.Digest = whole
	return rep, nil
}

// VerifySequential recomputes every unit on a single goroutine and checks
// the parallel run's digest — the harness's own integrity check, used by
// tests and the CLI's -verify flag.
func (r *Report) VerifySequential(task workload.Task) error {
	if task.Name() != r.Task {
		return fmt.Errorf("harness: verifying %q report with %q task", r.Task, task.Name())
	}
	var whole uint64
	unit := 0
	for _, c := range r.Computers {
		var d uint64
		for u := 0; u < c.Units; u++ {
			d = fold(d, task.Run(unit))
			unit++
		}
		if d != c.Digest {
			return fmt.Errorf("harness: computer %d digest mismatch: parallel %x vs sequential %x", c.Index, c.Digest, d)
		}
		whole = fold(whole, d)
	}
	if whole != r.Digest {
		return fmt.Errorf("harness: whole-run digest mismatch")
	}
	return nil
}

// Throughput returns verified units per virtual time unit.
func (r *Report) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.UnitsDone) / r.Makespan
}

// RoundingLoss returns the work fraction lost to whole-task discretization,
// ModelWork − UnitsDone (always within n units of zero).
func (r *Report) RoundingLoss() float64 {
	return r.ModelWork - float64(r.UnitsDone)
}

// fold combines digests order-dependently (it must distinguish permuted
// unit assignments).
func fold(a, b uint64) uint64 {
	a ^= b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2)
	a *= 0xff51afd7ed558ccd
	return a ^ (a >> 33)
}

// Baseline digests: DigestAll computes the fold of units [0,total) split
// across the given per-computer counts sequentially — the reference a
// protocol-independent checker would produce.
func DigestAll(task workload.Task, counts []int) uint64 {
	var whole uint64
	unit := 0
	for _, n := range counts {
		var d uint64
		for u := 0; u < n; u++ {
			d = fold(d, task.Run(unit))
			unit++
		}
		whole = fold(whole, d)
	}
	return whole
}
