package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"hetero/internal/core"
)

// streamOf runs the streaming renderer for one batch body into a buffer and
// fails the test on a pre-stream rejection.
func streamOf(t *testing.T, s *Server, body []byte) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	status, msg, err := s.BatchBodyStream(context.Background(), &buf, body)
	if status != 200 {
		t.Fatalf("stream status %d: %s", status, msg)
	}
	return buf.Bytes(), err
}

// TestBatchStreamBitIdentical is the streaming half of the golden
// equivalence contract: across every scheduling regime the buffered path
// exercises — fan-out, the chunked within-profile kernel, dedupe collapse,
// canonical-cache consult — the streamed bytes must equal the buffered
// response exactly, which in turn equals spliced per-profile /v1/measure.
func TestBatchStreamBitIdentical(t *testing.T) {
	small1 := randomRhos(5, 21)
	small2 := randomRhos(9, 22)
	cacheable := randomRhos(batchCacheMinProfile+10, 23)
	large := randomRhos(core.ParallelCutover, 24)
	regimes := []struct {
		name string
		sets [][]float64
	}{
		{"many_small_fanout", [][]float64{small1, small2, randomRhos(3, 25)}},
		{"chunked_large", [][]float64{large}},
		{"mixed_sizes", [][]float64{small1, large, cacheable, small2}},
		{"dedup_collapse", [][]float64{small1, cacheable, small1, small1, cacheable}},
	}
	for _, regime := range regimes {
		t.Run(regime.name, func(t *testing.T) {
			body := marshalBatch(t, regime.sets)
			buffered := NewServer()
			status, want, msg := buffered.BatchBody(body)
			if status != 200 {
				t.Fatalf("buffered status %d: %s", status, msg)
			}
			streaming := NewServer()
			got, err := streamOf(t, streaming, body)
			if err != nil {
				t.Fatalf("stream terminated early: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("streamed bytes diverge from buffered\nstream   %.200q\nbuffered %.200q", got, want)
			}
			if !bytes.Equal(got, expectedBatchBody(t, regime.sets)) {
				t.Fatal("streamed bytes diverge from spliced per-profile measure")
			}
			// A second streamed pass on a warm server (canonical cache
			// populated, dedupe counters nonzero) must produce the same bytes.
			again, err := streamOf(t, streaming, body)
			if err != nil || !bytes.Equal(again, want) {
				t.Fatalf("warm streamed pass diverged (err %v)", err)
			}
		})
	}
}

// TestBatchStreamHTTP pins the HTTP behavior of a forced-streaming server:
// the body on the wire is byte-identical to a buffered server's, it travels
// chunked (no Content-Length — the response was never assembled), and the
// statz streamed counter records it.
func TestBatchStreamHTTP(t *testing.T) {
	sets := [][]float64{randomRhos(40, 31), randomRhos(7, 32), randomRhos(40, 31)}
	body := marshalBatch(t, sets)

	s := NewServer()
	s.StreamBatchThreshold = 1 // everything streams
	srv := newTestServerFrom(t, s)
	resp, err := http.Post(srv+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("streamed response advertised Content-Length %d; the body must not have been assembled", resp.ContentLength)
	}
	if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
		t.Fatalf("streamed response not chunked: %v", resp.TransferEncoding)
	}

	status, want, msg := NewServer().BatchBody(body)
	if status != 200 {
		t.Fatalf("buffered status %d: %s", status, msg)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP streamed body diverges from buffered\nstream   %.200q\nbuffered %.200q", got, want)
	}

	stz := statzOf(t, s)
	if stz.Batch.Streamed != 1 {
		t.Fatalf("statz streamed = %d, want 1", stz.Batch.Streamed)
	}
	if stz.Batch.Requests != 1 || stz.Batch.Profiles != 3 {
		t.Fatalf("statz requests/profiles = %d/%d, want 1/3", stz.Batch.Requests, stz.Batch.Profiles)
	}
	if stz.Batch.Deduped != 1 {
		t.Fatalf("statz deduped = %d, want 1 (repeated first profile)", stz.Batch.Deduped)
	}
}

// cancelWriter collects the stream and cancels a context once `limit` total
// bytes have been written. Writes always succeed — modeling a client that
// disconnects (context death) rather than a broken pipe — so the renderer's
// only exit is its own per-fragment cancellation check.
type cancelWriter struct {
	buf    bytes.Buffer
	limit  int
	cancel context.CancelFunc
}

func (w *cancelWriter) Write(p []byte) (int, error) {
	n, err := w.buf.Write(p)
	if w.buf.Len() >= w.limit && w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	return n, err
}

// streamErrorEnvelope is the decoded shape of a (possibly trailer-terminated)
// streamed batch response.
type streamErrorEnvelope struct {
	Count   int               `json:"count"`
	Results []json.RawMessage `json:"results"`
	Error   *struct {
		Message        string `json:"message"`
		ResultsWritten int    `json:"results_written"`
	} `json:"error"`
}

// TestBatchStreamCancelTrailer: cancellation mid-stream must terminate the
// response as valid JSON via the structured trailer — truncated results,
// results_written naming exactly how many, the cause in message — and the
// bytes before the trailer must be a prefix of the buffered rendering.
func TestBatchStreamCancelTrailer(t *testing.T) {
	sets := [][]float64{randomRhos(16, 41), randomRhos(16, 42), randomRhos(16, 43), randomRhos(16, 44)}
	body := marshalBatch(t, sets)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelWriter{limit: 40, cancel: cancel} // past the envelope + part of fragment 1
	s := NewServer()
	status, msg, err := s.BatchBodyStream(ctx, w, body)
	if status != 200 {
		t.Fatalf("status %d: %s", status, msg)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	out := w.buf.Bytes()
	if !json.Valid(out) {
		t.Fatalf("trailer-terminated stream is not valid JSON: %q", out)
	}
	var env streamErrorEnvelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil {
		t.Fatalf("no error trailer in truncated stream: %q", out)
	}
	if env.Count != len(sets) || len(env.Results) >= len(sets) {
		t.Fatalf("count %d, %d results — want truncation below %d", env.Count, len(env.Results), len(sets))
	}
	if env.Error.ResultsWritten != len(env.Results) {
		t.Fatalf("results_written %d but %d results present", env.Error.ResultsWritten, len(env.Results))
	}
	if env.Error.Message == "" {
		t.Fatal("trailer message empty")
	}
	// Everything before the trailer is a prefix of the buffered rendering.
	prefix := out[:bytes.LastIndex(out, []byte(`],"error"`))]
	_, want, _ := NewServer().BatchBody(body)
	if !bytes.HasPrefix(want, prefix) {
		t.Fatalf("truncated stream is not a prefix of the buffered body\nprefix   %.120q\nbuffered %.120q", prefix, want)
	}
}

// TestBatchStreamPreCancelled: a context dead before the first byte must
// produce a plain error status over HTTP (nothing streamed, no trailer).
func TestBatchStreamPreCancelled(t *testing.T) {
	s := NewServer()
	s.StreamBatchThreshold = 1
	srv := newTestServerFrom(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv+"/v1/batch",
		bytes.NewReader(marshalBatch(t, [][]float64{randomRhos(4, 51)})))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("request with dead context unexpectedly completed")
	}
	// The server must remain healthy for the next client.
	if code := postJSON(t, srv+"/v1/batch", BatchRequest{Profiles: [][]float64{{1, 0.5}}}, nil); code != 200 {
		t.Fatalf("follow-up request status %d", code)
	}
}

// TestBatchStreamClientDisconnect: a client vanishing mid-stream must abort
// the per-profile evaluation promptly — handler goroutines wind down (checked
// by goroutine-count settling, meaningful under -race) and the server keeps
// serving.
func TestBatchStreamClientDisconnect(t *testing.T) {
	s := NewServer()
	s.StreamBatchThreshold = 1
	srv := newTestServerFrom(t, s)

	// Enough profiles that the stream cannot finish before the cancel lands.
	sets := make([][]float64, 512)
	for i := range sets {
		sets[i] = randomRhos(64, uint64(60+i))
	}
	body := marshalBatch(t, sets)

	before := runtime.NumGoroutine()
	client := &http.Client{}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Read a sliver of the stream, then walk away.
	if _, err := io.ReadFull(resp.Body, make([]byte, 256)); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	cancel()
	resp.Body.Close()
	client.CloseIdleConnections()

	// The handler must notice the disconnect and return; poll until the
	// goroutine count settles back near the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d after disconnect", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := postJSON(t, srv+"/v1/batch", BatchRequest{Profiles: [][]float64{{1, 0.5}}}, nil); code != 200 {
		t.Fatalf("server unhealthy after disconnect: status %d", code)
	}
}

// TestUnifiedBodyCap: every POST endpoint must enforce the one Server-level
// body cap with the same structured 413 — no endpoint-private limits.
func TestUnifiedBodyCap(t *testing.T) {
	s := NewServer()
	s.MaxBody = 256
	srv := newTestServerFrom(t, s)
	oversized := bytes.Repeat([]byte("1"), 300)
	for _, ep := range []string{"/v1/batch", "/v1/simulate/faulty", "/v1/schedule", "/v1/design"} {
		resp, err := http.Post(srv+ep, "application/json", bytes.NewReader(oversized))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		decodeErr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", ep, resp.StatusCode)
		}
		if decodeErr != nil || !strings.Contains(e["error"], "256") {
			t.Fatalf("%s: 413 not structured with the limit: %v %v", ep, e, decodeErr)
		}
	}
	// The faulty path must follow a raised cap too — its old private constant
	// was 1 MiB, so a body just past that proves the unified limit governs.
	s2 := NewServer()
	s2.MaxBody = 4 << 20
	srv2 := newTestServerFrom(t, s2)
	req := []byte(`{"profile":[1,0.5],"lifespan":100,"faults":[]}`)
	padded := append(req[:len(req)-1], []byte(`,"pad":"`+strings.Repeat("x", 2<<20)+`"}`)...)
	resp, err := http.Post(srv2+"/v1/simulate/faulty", "application/json", bytes.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("2 MiB faulty body under a 4 MiB cap: status %d, want 200", resp.StatusCode)
	}
}

// TestBatchCountFromBody pins the sniffing fallback's explicit unknown.
func TestBatchCountFromBody(t *testing.T) {
	cases := []struct {
		body string
		n    int
		ok   bool
	}{
		{`{"count":42,"results":[]}`, 42, true},
		{`{"count":7`, 7, true},
		{`{"count":,"results":[]}`, 0, false}, // no digits
		{`{"results":[],"count":3}`, 0, false},
		{``, 0, false},
		{`{"count":`, 0, false},
	}
	for _, c := range cases {
		n, ok := batchCountFromBody([]byte(c.body))
		if n != c.n || ok != c.ok {
			t.Fatalf("batchCountFromBody(%q) = (%d, %v), want (%d, %v)", c.body, n, ok, c.n, c.ok)
		}
	}
}

// TestBatchProfilesUnknown: a cached entry with no admission-time meta and an
// unsniffable body must count the request under profiles_unknown rather than
// silently adding zero profiles.
func TestBatchProfilesUnknown(t *testing.T) {
	s := NewServer()
	s.noteBatchCached([]byte(`:not a batch body:`), 0)
	if got := s.batchProfilesUnknown.Load(); got != 1 {
		t.Fatalf("profiles_unknown = %d, want 1", got)
	}
	if got := s.batchRequests.Load(); got != 1 {
		t.Fatalf("requests = %d, want 1 (unknown still counts the request)", got)
	}
	// With meta present the count comes from admission time, no sniffing.
	s.noteBatchCached([]byte(`garbage`), 5)
	if got := s.batchProfiles.Load(); got != 5 {
		t.Fatalf("profiles = %d, want 5 from meta", got)
	}
	if stz := statzOf(t, s); stz.Batch.ProfilesUnknown != 1 {
		t.Fatalf("statz profiles_unknown = %d, want 1", stz.Batch.ProfilesUnknown)
	}
}

// TestBatchRawFrontMetaCounts: a raw body-front hit must recover the exact
// profile count stored at admission — the bug this PR fixes was repeats
// counting zero profiles.
func TestBatchRawFrontMetaCounts(t *testing.T) {
	s := NewServer()
	sets := [][]float64{randomRhos(batchRawMinBody/8, 71), randomRhos(5, 72)}
	body := marshalBatch(t, sets)
	if len(body) < batchRawMinBody {
		t.Fatal("body too short to engage the raw front")
	}
	if status, _, msg := s.BatchBody(body); status != 200 {
		t.Fatalf("status %d: %s", status, msg)
	}
	if status, _, _ := s.BatchBody(body); status != 200 {
		t.Fatal("repeat failed")
	}
	if got := s.batchRawHits.Load(); got != 1 {
		t.Fatalf("raw hits = %d, want 1", got)
	}
	if got := s.batchProfiles.Load(); got != 4 {
		t.Fatalf("profiles = %d, want 4 (2 per request, both counted)", got)
	}
	if got := s.batchProfilesUnknown.Load(); got != 0 {
		t.Fatalf("profiles_unknown = %d, want 0 — meta must carry the count", got)
	}
}

// FuzzBatchStreamFraming: wherever the context dies during the stream, the
// bytes written so far plus the trailer must always parse as JSON, with
// results_written matching the results actually present.
func FuzzBatchStreamFraming(f *testing.F) {
	f.Add(uint16(0), uint8(3), uint8(4))
	f.Add(uint16(11), uint8(1), uint8(1))
	f.Add(uint16(40), uint8(5), uint8(2))
	f.Add(uint16(300), uint8(4), uint8(8))
	f.Add(uint16(65535), uint8(2), uint8(50))
	f.Fuzz(func(t *testing.T, cancelAfter uint16, nProf, nRho uint8) {
		n := int(nProf)%12 + 1
		k := int(nRho)%48 + 1
		sets := make([][]float64, n)
		for i := range sets {
			rhos := make([]float64, k)
			for j := range rhos {
				rhos[j] = 1 / float64(i+j+1)
			}
			sets[i] = rhos
		}
		body, err := json.Marshal(BatchRequest{Profiles: sets})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		w := &cancelWriter{limit: int(cancelAfter), cancel: cancel}
		s := NewServer()
		status, msg, serr := s.BatchBodyStream(ctx, w, body)
		if status != 200 {
			t.Fatalf("status %d: %s", status, msg)
		}
		out := w.buf.Bytes()
		if !json.Valid(out) {
			t.Fatalf("stream output invalid JSON (cancelAfter %d): %q", cancelAfter, out)
		}
		var env streamErrorEnvelope
		if err := json.Unmarshal(out, &env); err != nil {
			t.Fatal(err)
		}
		if env.Count != n {
			t.Fatalf("count %d, want %d", env.Count, n)
		}
		if serr != nil {
			if env.Error == nil || env.Error.ResultsWritten != len(env.Results) {
				t.Fatalf("truncated stream without a coherent trailer: err %v, %q", serr, out)
			}
		} else if env.Error != nil || len(env.Results) != n {
			t.Fatalf("complete stream carries a trailer or short results: %q", out)
		}
	})
}
