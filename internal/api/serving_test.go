package api

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hetero/internal/core"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestBatchMatchesMeasure(t *testing.T) {
	srv := testServer(t)
	req := BatchRequest{Profiles: [][]float64{
		{1, 0.5, 0.25},
		{1},
		{0.9, 0.8, 0.7, 0.6, 0.5},
	}}
	var out BatchResponse
	if code := postJSON(t, srv.URL+"/v1/batch", req, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Count != 3 || len(out.Results) != 3 {
		t.Fatalf("count %d, %d results", out.Count, len(out.Results))
	}
	m := model.Table1()
	for i, rhos := range req.Profiles {
		p := profile.MustNew(rhos...)
		got := out.Results[i]
		if math.Abs(got.X-core.X(m, p)) > 1e-12*core.X(m, p) {
			t.Fatalf("results[%d].X = %v, want %v", i, got.X, core.X(m, p))
		}
		if math.Abs(got.HECR-core.HECR(m, p)) > 1e-12 {
			t.Fatalf("results[%d].HECR = %v, want %v", i, got.HECR, core.HECR(m, p))
		}
		if math.Abs(got.Mean-p.Mean()) > 1e-15 {
			t.Fatalf("results[%d].Mean = %v, want %v", i, got.Mean, p.Mean())
		}
	}
}

func TestBatchCustomParams(t *testing.T) {
	srv := testServer(t)
	m := model.Figs34()
	var out BatchResponse
	code := postJSON(t, srv.URL+"/v1/batch", BatchRequest{
		Profiles: [][]float64{{1, 0.5}},
		Params:   &m,
	}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	p := profile.MustNew(1, 0.5)
	if math.Abs(out.Results[0].X-core.X(m, p)) > 1e-12*core.X(m, p) {
		t.Fatalf("X = %v, want %v under Figs34 params", out.Results[0].X, core.X(m, p))
	}
}

func TestBatchRejectsBadInput(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name string
		body interface{}
		code int
	}{
		{"empty", BatchRequest{}, 400},
		{"bad rho", BatchRequest{Profiles: [][]float64{{1, -0.5}}}, 400},
		{"bad params", BatchRequest{Profiles: [][]float64{{1}}, Params: &model.Params{Tau: -1, Pi: 0, Delta: 1}}, 400},
	}
	for _, tc := range cases {
		if code := postJSON(t, srv.URL+"/v1/batch", tc.body, nil); code != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestBatchRejectsOversized(t *testing.T) {
	srv := testServer(t)
	req := BatchRequest{Profiles: make([][]float64, MaxBatchProfiles+1)}
	for i := range req.Profiles {
		req.Profiles[i] = []float64{1}
	}
	if code := postJSON(t, srv.URL+"/v1/batch", req, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", code)
	}
}

func TestBatchAgreesWithIncr(t *testing.T) {
	// The endpoint must serve exactly what the library's batch path yields.
	srv := testServer(t)
	profiles := [][]float64{{1, 0.5, 0.25, 0.125}, {0.3, 0.2}}
	var out BatchResponse
	if code := postJSON(t, srv.URL+"/v1/batch", BatchRequest{Profiles: profiles}, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	ps := []profile.Profile{profile.MustNew(profiles[0]...), profile.MustNew(profiles[1]...)}
	want := incr.BatchMeasure(model.Table1(), ps, 1)
	for i := range ps {
		if out.Results[i].X != want[i].X || out.Results[i].HECR != want[i].HECR || out.Results[i].WorkRate != want[i].WorkRate {
			t.Fatalf("results[%d] = %+v diverges from incr %+v", i, out.Results[i], want[i])
		}
	}
}

func newTestServerFrom(t *testing.T, s *Server) string {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestMeasureCacheHitIsByteIdentical(t *testing.T) {
	srv := testServer(t)
	url := srv.URL + "/v1/measure?profile=1,0.5,0.25"
	code1, miss := getBody(t, url)
	code2, hit := getBody(t, url)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d, %d", code1, code2)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatalf("cache hit differs from miss:\nmiss %q\nhit  %q", miss, hit)
	}
	// Different spellings of the same floats share one cache entry.
	code3, respelled := getBody(t, srv.URL+"/v1/measure?profile=1.0,5e-1,0.250")
	if code3 != 200 || !bytes.Equal(miss, respelled) {
		t.Fatalf("respelled floats served different bytes")
	}
	var statz StatzResponse
	if code := getJSON(t, srv.URL+"/v1/statz", &statz); code != 200 {
		t.Fatalf("statz status %d", code)
	}
	if statz.MeasureCache.Hits < 2 || statz.MeasureCache.Misses < 1 {
		t.Fatalf("counters %+v, want ≥2 hits and ≥1 miss", statz.MeasureCache)
	}
	if statz.MeasureCache.Size < 1 || statz.MeasureCache.Capacity != DefaultMeasureCacheSize {
		t.Fatalf("occupancy %+v", statz.MeasureCache)
	}
}

func TestMeasureCacheDistinguishesParams(t *testing.T) {
	srv := testServer(t)
	_, def := getBody(t, srv.URL+"/v1/measure?profile=1,0.5")
	_, fine := getBody(t, srv.URL+"/v1/measure?profile=1,0.5&tau=1e-5&pi=10e-5")
	if bytes.Equal(def, fine) {
		t.Fatal("different params served the same cached body")
	}
}

func TestStatzTracksBatch(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 3; i++ {
		if code := postJSON(t, srv.URL+"/v1/batch", BatchRequest{Profiles: [][]float64{{1}, {0.5}}}, nil); code != 200 {
			t.Fatalf("batch status %d", code)
		}
	}
	var statz StatzResponse
	if code := getJSON(t, srv.URL+"/v1/statz", &statz); code != 200 {
		t.Fatalf("status %d", code)
	}
	if statz.Batch.Requests != 3 || statz.Batch.Profiles != 6 {
		t.Fatalf("batch counters %+v, want 3 requests / 6 profiles", statz.Batch)
	}
	resp, err := http.Post(srv.URL+"/v1/statz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST statz status %d", resp.StatusCode)
	}
}

func TestMeasureCacheEviction(t *testing.T) {
	// A capacity-2 server must evict the least recently used entry and keep
	// serving correct results for evicted keys (as fresh misses).
	s := NewServerCacheSize(2)
	srv := newTestServerFrom(t, s)
	urls := []string{
		srv + "/v1/measure?profile=1",
		srv + "/v1/measure?profile=1,0.5",
		srv + "/v1/measure?profile=1,0.5,0.25",
	}
	for _, u := range urls {
		if code, _ := getBody(t, u); code != 200 {
			t.Fatalf("status %d for %s", code, u)
		}
	}
	hits, misses, size, capacity := s.cache.Stats()
	if capacity != 2 || size != 2 {
		t.Fatalf("size %d / capacity %d, want 2/2", size, capacity)
	}
	if hits != 0 || misses != 3 {
		t.Fatalf("hits %d misses %d, want 0/3", hits, misses)
	}
	// The first URL was evicted; re-fetching must miss yet still be correct.
	code, body := getBody(t, urls[0])
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(string(body), `"x"`) {
		t.Fatalf("evicted re-fetch body %q", body)
	}
	if h, m, _, _ := s.cache.Stats(); h != 0 || m != 4 {
		t.Fatalf("hits %d misses %d after evicted re-fetch, want 0/4", h, m)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := NewServerCacheSize(0)
	srv := newTestServerFrom(t, s)
	for i := 0; i < 2; i++ {
		if code, _ := getBody(t, srv+"/v1/measure?profile=1,0.5"); code != 200 {
			t.Fatalf("status %d", code)
		}
	}
	if hits, _, size, _ := s.cache.Stats(); hits != 0 || size != 0 {
		t.Fatalf("disabled cache recorded hits=%d size=%d", hits, size)
	}
}

func TestResponseCacheConcurrency(t *testing.T) {
	// Hammer one cache from many goroutines; the race detector (tier-1 runs
	// this package under -race) does the real checking.
	c := newResponseCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if _, ok := c.Get(key); !ok {
					c.Put(key, []byte(key))
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, size, _ := c.Stats(); size > 8 {
		t.Fatalf("cache overflowed its bound: size %d", size)
	}
}
