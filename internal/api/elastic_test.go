package api

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
)

func TestSimulateElasticEndpoint(t *testing.T) {
	srv := testServer(t)
	// Empty plan, no policy: ride salvage of an intact cluster — zero
	// degradation, policy echoed.
	var rep sim.ElasticReport
	code := postJSON(t, srv.URL+"/v1/simulate/elastic", ElasticRequest{
		Profile: []float64{1, 0.5, 0.25}, Lifespan: 3600,
	}, &rep)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.FaultFree <= 0 || math.Abs(rep.Degradation) > 1e-9 || rep.Policy != "salvage-ride" {
		t.Fatalf("empty plan: %+v", rep)
	}
	// Joins + replan: the replanner recruits the cohort and beats the base
	// cluster's fault-free yardstick (negative degradation).
	req := ElasticRequest{
		Profile: []float64{0.95, 0.9}, Lifespan: 3600,
		Faults: []fault.Fault{
			{Kind: fault.Join, Computer: 2, At: 200, Rho: 0.3},
			{Kind: fault.Join, Computer: 3, At: 200, Rho: 0.35},
		},
		Replan: true,
	}
	if code := postJSON(t, srv.URL+"/v1/simulate/elastic", req, &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Joins != 2 || rep.Degradation >= 0 || rep.Policy != "salvage-replan" {
		t.Fatalf("joins+replan: %+v", rep)
	}
	// The endpoint serves exactly what the library computes.
	want, err := sim.SimulateElastic(nil, model.Table1(), profile.MustNew(0.95, 0.9), 3600,
		fault.Plan{Faults: req.Faults}, sim.ElasticPolicy{Replan: true}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Useful != want.Useful || rep.Dispatched != want.Dispatched {
		t.Fatalf("endpoint %+v diverges from library %+v", rep, want)
	}
	// Redundancy string parses like the cepsim flag; units are reported.
	if code := postJSON(t, srv.URL+"/v1/simulate/elastic", ElasticRequest{
		Profile: []float64{0.5, 0.5, 0.5, 0.5}, Lifespan: 3600,
		Redundancy: "replicated-2@0.1",
	}, &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Policy != "replicated-2@0.1" || rep.Units == 0 || rep.UnitsCompleted != rep.Units {
		t.Fatalf("redundant: %+v", rep)
	}
	if rep.Overhead < 2-1e-9 || rep.Overhead > 2+1e-9 {
		t.Fatalf("replicated-2 empty-plan overhead %v ≠ 2", rep.Overhead)
	}
}

func TestSimulateElasticEndpointRejections(t *testing.T) {
	srv := testServer(t)
	cases := []struct{ name, body string }{
		{"both policies", `{"profile":[0.5,0.5],"lifespan":10,"replan":true,"redundancy":"2"}`},
		{"bad redundancy", `{"profile":[0.5],"lifespan":10,"redundancy":"coded:2of1"}`},
		{"replication of one", `{"profile":[0.5],"lifespan":10,"redundancy":"1"}`},
		{"join rho", `{"profile":[0.5],"lifespan":10,"faults":[{"kind":"join","computer":1,"at":1,"rho":2}]}`},
		{"join index", `{"profile":[0.5],"lifespan":10,"faults":[{"kind":"join","computer":0,"at":1,"rho":0.5}]}`},
		{"jitter range", `{"profile":[0.5],"lifespan":10,"rho_jitter":1.5}`},
		{"margin without scheme", `{"profile":[0.5],"lifespan":10,"redundancy":"off@0.1"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/simulate/elastic", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestStatzSimulateCounters drives both simulate routes and checks the
// /v1/statz simulate block: request counts per route, the redundant
// subset, and the ride-vs-replan decision tally.
func TestStatzSimulateCounters(t *testing.T) {
	srv := testServer(t)
	var rep sim.ElasticReport
	if code := postJSON(t, srv.URL+"/v1/simulate/elastic", ElasticRequest{
		Profile: []float64{1, 0.5, 0.25}, Lifespan: 3600,
		Faults: []fault.Fault{{Kind: fault.Crash, Computer: 2, At: 900}},
		Replan: true,
	}, &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rep.Decisions) == 0 {
		t.Fatalf("no decisions: %+v", rep)
	}
	elasticDecisions := len(rep.Decisions)
	if code := postJSON(t, srv.URL+"/v1/simulate/elastic", ElasticRequest{
		Profile: []float64{0.5, 0.5}, Lifespan: 3600, Redundancy: "2",
	}, &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	var drep sim.DegradedReport
	if code := postJSON(t, srv.URL+"/v1/simulate/faulty", FaultyRequest{
		Profile: []float64{1, 0.5}, Lifespan: 3600, Replan: true,
		Faults: []fault.Fault{{Kind: fault.Crash, Computer: 1, At: 900}},
	}, &drep); code != 200 {
		t.Fatalf("status %d", code)
	}

	resp, err := http.Get(srv.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statz StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	st := statz.Simulate
	if st.FaultyRequests != 1 || st.ElasticRequests != 2 || st.RedundantRequests != 1 {
		t.Fatalf("request counters: %+v", st)
	}
	if want := uint64(elasticDecisions + len(drep.Decisions)); st.ReplanDecisions != want {
		t.Fatalf("decisions %d, want %d: %+v", st.ReplanDecisions, want, st)
	}
	if st.ReplansAdopted > st.ReplanDecisions {
		t.Fatalf("adopted %d > decisions %d", st.ReplansAdopted, st.ReplanDecisions)
	}
}
