package api

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"

	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/spill"
)

// The streaming render path for POST /v1/batch. The buffered path
// (batchpath.go) assembles the whole response — up to MaxBatchProfiles
// large-n fragments — in one []byte before writing, so its peak memory is
// O(sum of fragment sizes): exactly where the paper's workload model (batch
// evaluation over many heterogeneity profiles) pushes hardest. This file
// renders the same bytes incrementally: the `{"count":N,"results":[`
// envelope goes out first, then each per-profile fragment is rendered into
// a small reusable buffer, written, and flushed, so peak memory is O(the
// largest single fragment) no matter how many profiles the batch carries.
//
// The streamed bytes are bit-identical to the buffered rendering on
// success — both splice the same appendMeasureResponse fragments into the
// same frame, and incr.MeasureProfile is worker-count invariant — so the
// buffered golden test (batch ≡ spliced per-profile measure) doubles as the
// streaming oracle. What streaming gives up is cacheability: bytes that
// were never assembled cannot be admitted to the raw body-front, so
// responses *worth caching* (small enough to buffer) keep the buffered
// path, and the two are arbitrated by incr.ScheduleBatch's work-units
// heuristic against StreamBatchThreshold.
//
// Errors after the first flushed byte cannot become an HTTP error status;
// the JSON is instead terminated with a structured trailer object (see
// writeStreamTrailer) that tells the client the results array is truncated
// and why.

// DefaultStreamBatchThreshold is the work-units estimate (incr.WorkUnits:
// one unit per ρ-value) at which a /v1/batch response streams instead of
// buffering, when the Server does not override it. One unit costs ~19
// bytes of rendered response at full float precision, so the default —
// one million units — streams responses past roughly 20 MB while smaller
// (cacheable) responses keep the buffered raw-body-front treatment.
const DefaultStreamBatchThreshold = 1 << 20

// streamBatchThreshold resolves the Server's streaming threshold:
// 0 means the package default, negative disables streaming entirely.
func (s *Server) streamBatchThreshold() int {
	switch {
	case s.StreamBatchThreshold > 0:
		return s.StreamBatchThreshold
	case s.StreamBatchThreshold < 0:
		return math.MaxInt
	}
	return DefaultStreamBatchThreshold
}

// shouldStreamBatch decides stream-vs-buffer for one decoded batch from the
// same work-units estimate incr.ScheduleBatch plans evaluation with.
func (s *Server) shouldStreamBatch(profiles []profile.Profile) bool {
	return incr.WorkUnits(profiles) >= s.streamBatchThreshold()
}

// serveBatchLarge handles POST /v1/batch bodies large enough that the
// response may stream (handleBatch routes smaller bodies — which can never
// reach the work-units threshold — through the buffered BatchBody). The
// raw body-front is still consulted first: a hit serves cached (buffered)
// bytes without decoding; on a miss the body is decoded once and the
// work-units estimate picks the render path.
func (s *Server) serveBatchLarge(w http.ResponseWriter, r *http.Request, body []byte) {
	s.ensureBatchCaches()
	front := len(body) >= batchRawMinBody && s.batchRawCache != nil && s.batchRawCache.capacity > 0
	var key string
	var h uint64
	if front {
		key = string(body)
		h = hashString(key)
		if resp, meta, ok := s.batchRawCache.lookupStrMeta(h, key); ok {
			s.batchRawHits.Add(1)
			s.noteBatchCached(resp, meta)
			writeRawJSON(w, http.StatusOK, resp)
			return
		}
	}
	// Spill tier: a response for these exact body bytes — evicted from
	// the memory front or teed off an earlier stream — serves straight
	// from the segment reader, fragment-by-fragment, before any decode.
	// Peak memory stays O(chunk); the entry is NOT promoted to memory
	// (promotion would re-materialize an O(response) body).
	if front && s.serveSpillStream(w, key) {
		return
	}
	m, profiles, status, msg := s.decodeBatchRequest(body)
	if status != 0 {
		writeError(w, status, msg)
		return
	}
	s.noteBatch(len(profiles))
	if s.shouldStreamBatch(profiles) {
		teeKey := ""
		if front {
			teeKey = key
		}
		s.streamBatch(r.Context(), w, m, profiles, teeKey)
		return
	}
	if !front {
		writeRawJSON(w, http.StatusOK, s.renderBatchBuffered(m, profiles))
		return
	}
	resp, _, coalesced, err := s.batchRawCache.fillStrMeta(h, key, func() ([]byte, int64, error) {
		return s.renderBatchBuffered(m, profiles), int64(len(profiles)), nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if coalesced {
		s.batchRawHits.Add(1)
	}
	writeRawJSON(w, http.StatusOK, resp)
}

// streamBatch writes one decoded batch response incrementally to an HTTP
// response, flushing after every fragment so the peak buffered state —
// ours and net/http's — stays O(one fragment). A non-empty teeKey also
// copies the streamed bytes into a spill appender (its private segment
// file), committed only when the stream completes cleanly — an error
// trailer or snapped connection aborts the tee so no truncated response
// can ever be served later.
func (s *Server) streamBatch(ctx context.Context, w http.ResponseWriter, m model.Params, profiles []profile.Profile, teeKey string) {
	if err := ctx.Err(); err != nil {
		// Nothing written yet: a plain error status is still possible.
		writeError(w, http.StatusServiceUnavailable, "request cancelled before streaming began")
		return
	}
	s.batchStreamed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	dst := io.Writer(w)
	var ap *spill.Appender
	if teeKey != "" {
		if ap = s.spillBegin(teeKey); ap != nil {
			// Appender writes never fail the client stream: errors are
			// remembered inside and surface as a failed Commit.
			dst = io.MultiWriter(w, ap)
		}
	}
	// A write error means the client is gone; there is no one to deliver a
	// trailer to, so the error is dropped after the stream is abandoned.
	err := s.writeBatchStream(ctx, dst, flush, m, profiles)
	if ap != nil {
		if err == nil {
			ap.Commit()
		} else {
			ap.Abort()
		}
	}
}

// spillStreamChunk is the read-copy granularity for serving a spilled
// batch response; it bounds the serve path's peak memory per request.
const spillStreamChunk = 64 << 10

// serveSpillStream serves a spilled response for the exact body key over
// HTTP, chunk by chunk with per-chunk flushes. The record's CRC and key
// were fully verified by OpenVerified before the first byte goes out, so
// corruption can never reach a client — it reads as a miss and the
// caller falls through to evaluation.
func (s *Server) serveSpillStream(w http.ResponseWriter, key string) bool {
	ent, ok := s.spillOpenStream(key)
	if !ok {
		return false
	}
	defer ent.Close()
	s.batchStreamed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	_ = s.copySpillStream(w, flush, ent)
	return true
}

// copySpillStream copies a verified spill entry to w in fixed-size
// chunks, sniffing the profile count off the first chunk for the batch
// statz counters. A mid-copy read error (the segment was pre-verified,
// so only hardware faults remain) abandons the stream like a snapped
// client connection.
func (s *Server) copySpillStream(w io.Writer, flush func(), ent *spill.Entry) error {
	buf := make([]byte, spillStreamChunk)
	var off int64
	for off < ent.BodyLen() {
		n, err := ent.ReadBodyAt(buf, off)
		if n > 0 {
			if off == 0 {
				if c, ok := batchCountFromBody(buf[:n]); ok {
					s.noteBatch(c)
				} else {
					s.batchRequests.Add(1)
					s.batchProfilesUnknown.Add(1)
				}
			}
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
			flush()
			off += int64(n)
		}
		if err != nil && off < ent.BodyLen() {
			return err
		}
	}
	return nil
}

// BatchBodyStream runs the POST /v1/batch hot path for a raw request body
// with the streaming renderer, writing the response to w instead of
// assembling it. A non-200 status means the request was rejected before
// any byte was written (msg describes why, nothing reaches w). Status 200
// with a nil error means the complete response — bit-identical to
// BatchBody's — was written; a non-nil error means the stream terminated
// early with the structured JSON trailer (context cancellation) or an
// unfinished body (write failure). It exists so cmd/benchbatch and the
// equivalence/fuzz tests can drive the streaming engine free of net/http.
func (s *Server) BatchBodyStream(ctx context.Context, w io.Writer, body []byte) (status int, msg string, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ensureBatchCaches()
	defer s.drainResizes()
	// Spill tier (only when enabled — with spill off this path is
	// byte-for-byte the historical one): serve a stored response for
	// these exact body bytes fragment-by-fragment from the segment
	// reader, or tee the freshly rendered stream into the spill store.
	storeKey := ""
	if s.spill != nil && len(body) >= batchRawMinBody {
		storeKey = spillBatchKey(body)
		if ent, ok := s.spillOpenStreamKey(storeKey); ok {
			s.batchStreamed.Add(1)
			err := s.copySpillStream(w, func() {}, ent)
			ent.Close()
			return http.StatusOK, "", err
		}
	}
	m, profiles, status, msg := s.decodeBatchRequest(body)
	if status != 0 {
		return status, msg, nil
	}
	s.noteBatch(len(profiles))
	s.batchStreamed.Add(1)
	dst := w
	var ap *spill.Appender
	if storeKey != "" {
		if ap = s.spillBeginKey(storeKey); ap != nil {
			dst = io.MultiWriter(w, ap)
		}
	}
	err = s.writeBatchStream(ctx, dst, func() {}, m, profiles)
	if ap != nil {
		if err == nil {
			ap.Commit()
		} else {
			ap.Abort()
		}
	}
	return http.StatusOK, "", err
}

// writeBatchStream is the incremental renderer: envelope, then one
// fragment at a time from a reusable buffer, then the closing frame. The
// produced bytes match renderBatchBuffered exactly on success.
//
// Dedupe still evaluates each distinct profile once: a fragment whose
// profile recurs later in the batch is retained (a stable copy when it was
// rendered into the scratch buffer) until its last use is written, then
// released — so retention is bounded by the duplicated uniques actually in
// flight, and a fully distinct sweep retains nothing.
//
// Cancellation is checked before each fragment's evaluation, so a client
// disconnect aborts the per-profile work promptly instead of evaluating
// the remaining profiles into a dead socket.
func (s *Server) writeBatchStream(ctx context.Context, w io.Writer, flush func(), m model.Params, profiles []profile.Profile) error {
	uniq, canon, dups := dedupeProfiles(profiles)
	s.batchDeduped.Add(uint64(dups))
	lastUse := make([]int, len(uniq))
	for i, u := range canon {
		lastUse[u] = i
	}
	held := make([][]byte, len(uniq))

	scratch := make([]byte, 0, 4096)
	env := make([]byte, 0, 32)
	env = append(env, `{"count":`...)
	env = strconv.AppendInt(env, int64(len(profiles)), 10)
	env = append(env, `,"results":[`...)
	if _, err := w.Write(env); err != nil {
		return err
	}
	for i := range profiles {
		if err := ctx.Err(); err != nil {
			return s.writeStreamTrailer(w, flush, i, err)
		}
		u := canon[i]
		frag := held[u]
		if frag == nil {
			var stable bool
			frag, stable = s.renderStreamFragment(&scratch, m, profiles[uniq[u]])
			if lastUse[u] > i {
				if !stable {
					cp := make([]byte, len(frag))
					copy(cp, frag)
					frag = cp
				}
				held[u] = frag
			}
		}
		if i > 0 {
			if _, err := w.Write(commaByte); err != nil {
				return err
			}
		}
		// Each fragment is a full measure body; the trailing newline only
		// belongs to the end of the response.
		if _, err := w.Write(frag[:len(frag)-1]); err != nil {
			return err
		}
		if lastUse[u] == i {
			held[u] = nil
		}
		flush()
	}
	if _, err := w.Write(closeFrame); err != nil {
		return err
	}
	flush()
	return nil
}

var (
	commaByte  = []byte{','}
	closeFrame = []byte("]}\n")
)

// writeStreamTrailer terminates a partially streamed response as valid
// JSON: the results array is closed and a structured error object is
// appended, so a client sees
//
//	{"count":N,"results":[...],"error":{"message":M,"results_written":K}}
//
// with K < N — unambiguous truncation rather than a snapped connection.
// The returned error is the cause, so callers can report it.
func (s *Server) writeStreamTrailer(w io.Writer, flush func(), written int, cause error) error {
	msg, err := json.Marshal(cause.Error())
	if err != nil {
		msg = []byte(`"error"`)
	}
	t := make([]byte, 0, 48+len(msg))
	t = append(t, `],"error":{"message":`...)
	t = append(t, msg...)
	t = append(t, `,"results_written":`...)
	t = strconv.AppendInt(t, int64(written), 10)
	t = append(t, '}', '}', '\n')
	if _, werr := w.Write(t); werr != nil {
		return werr
	}
	flush()
	return cause
}

// renderStreamFragment renders the measure body for one profile
// (newline-terminated, like every fragment). Cache-eligible profiles go
// through the canonical measure cache exactly as the buffered path does —
// the returned body is then cache-owned and stable. Otherwise the fragment
// is rendered into the caller's reusable scratch buffer (stable = false:
// the bytes are only valid until the next render, so callers retaining
// them must copy). Large profiles turn the pool inward through the chunked
// within-profile kernel; the result is worker-count invariant either way,
// which is what keeps streamed bytes bit-identical to buffered ones.
func (s *Server) renderStreamFragment(scratch *[]byte, m model.Params, p profile.Profile) (frag []byte, stable bool) {
	workers := 1
	if len(p) >= incr.ScheduleLargeCutover {
		workers = 0
	}
	if s.cache == nil || s.cache.capacity <= 0 || len(p) < batchCacheMinProfile {
		fm := incr.MeasureProfile(m, p, workers)
		*scratch = appendMeasureResponse((*scratch)[:0], p, fm)
		return *scratch, false
	}
	key := string(appendCanonicalKey(make([]byte, 0, 26*(len(p)+3)), m, p))
	h := hashString(key)
	if body, ok := s.cache.lookupStr(h, key); ok {
		s.batchCanonHits.Add(1)
		return body, true
	}
	body, _, _ := s.cache.fillStr(h, key, func() ([]byte, error) {
		fm := incr.MeasureProfile(m, p, workers)
		return appendMeasureResponse(make([]byte, 0, 20*(len(p)+6)), p, fm), nil
	})
	return body, true
}
