package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newServingServer returns a server whose middleware chain is initialized
// with the given config, plus the wrapped handler for a stub route.
func newServingServer(t *testing.T, cfg ServingConfig, stub http.Handler) (*Server, http.Handler) {
	t.Helper()
	s := NewServer()
	s.Serving = cfg
	s.initServing()
	return s, s.wrap(stub)
}

func TestAdmissionShedsAtCapacity(t *testing.T) {
	// Fill every run slot and every queue slot with blocked requests; the
	// next arrival must shed deterministically with 429 + Retry-After, and
	// after release everything completes and the counters agree.
	const maxConc, depth = 2, 2
	entered := make(chan struct{}, maxConc+depth)
	release := make(chan struct{})
	stub := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"status": "done"})
	})
	s, h := newServingServer(t, ServingConfig{MaxConcurrent: maxConc, QueueDepth: depth, RequestTimeout: time.Minute}, stub)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	codes := make(chan int, maxConc+depth)
	for i := 0; i < maxConc+depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/block")
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Wait for the run slots to fill, then for the queued requests to claim
	// their queue tokens.
	for i := 0; i < maxConc; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("run slots never filled")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queueTokens) < maxConc+depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d tokens", len(s.queueTokens), maxConc+depth)
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/block")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var msg map[string]string
	if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
		t.Fatalf("shed response not a structured error: %q", body)
	}

	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	}
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge %d after drain, want 0", got)
	}
}

func TestAdmissionExemptsObservability(t *testing.T) {
	// healthz and statz must answer even with zero admission capacity
	// available (queue tokens all taken).
	s, h := newServingServer(t, ServingConfig{MaxConcurrent: 1, QueueDepth: 1}, NewServer().Handler())
	for i := 0; i < cap(s.queueTokens); i++ {
		s.queueTokens <- struct{}{}
	}
	for _, path := range []string{"/v1/healthz", "/v1/statz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s returned %d under saturation, want 200", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/measure?profile=1", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("measure returned %d under saturation, want 429", rec.Code)
	}
}

func TestRecovererTurnsPanicsIntoJSON500(t *testing.T) {
	s, h := newServingServer(t, ServingConfig{}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var msg map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &msg); err != nil || msg["error"] == "" {
		t.Fatalf("panic response not a structured error: %q", rec.Body.String())
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	// The server keeps serving after a panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError || s.panics.Load() != 2 {
		t.Fatalf("second panic: status %d, counter %d", rec.Code, s.panics.Load())
	}
}

func TestDeadlineAttachedToRequestContext(t *testing.T) {
	var sawDeadline bool
	_, h := newServingServer(t, ServingConfig{RequestTimeout: 5 * time.Second}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if !sawDeadline {
		t.Fatal("handler context carried no deadline")
	}

	var sawAny bool
	_, h = newServingServer(t, ServingConfig{RequestTimeout: -1}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawAny = r.Context().Deadline()
		w.WriteHeader(http.StatusOK)
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if sawAny {
		t.Fatal("negative RequestTimeout still attached a deadline")
	}
}

func TestStatzReportsServingCounters(t *testing.T) {
	s := NewServer()
	s.Serving = ServingConfig{MaxConcurrent: 7, QueueDepth: 9}
	url := newTestServerFrom(t, s)
	var statz StatzResponse
	if code := getJSON(t, url+"/v1/statz", &statz); code != 200 {
		t.Fatalf("status %d", code)
	}
	if statz.Serving.MaxConcurrent != 7 || statz.Serving.QueueDepth != 9 {
		t.Fatalf("serving stats %+v, want the configured limits", statz.Serving)
	}
	if statz.Serving.Shed != 0 || statz.Serving.Panics != 0 || statz.Serving.InFlight != 0 {
		t.Fatalf("fresh server has nonzero counters: %+v", statz.Serving)
	}
}

// TestEndpointErrorsAreStructuredJSON is the 4xx table test: every route
// answers wrong methods with a JSON 405 + Allow header, bad inputs with a
// JSON 4xx, and unknown paths land on a JSON 404 — never a text/plain body.
func TestEndpointErrorsAreStructuredJSON(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		code      int
		wantAllow string
	}{
		{"measure wrong method", http.MethodPost, "/v1/measure", "{}", 405, "GET"},
		{"measure missing profile", http.MethodGet, "/v1/measure", "", 400, ""},
		{"measure bad rho", http.MethodGet, "/v1/measure?profile=1,junk", "", 400, ""},
		{"measure bad param", http.MethodGet, "/v1/measure?profile=1&tau=-3", "", 400, ""},
		{"compare wrong method", http.MethodPost, "/v1/compare", "{}", 405, "GET"},
		{"compare missing p2", http.MethodGet, "/v1/compare?p1=1", "", 400, ""},
		{"batch wrong method", http.MethodGet, "/v1/batch", "", 405, "POST"},
		{"batch bad json", http.MethodPost, "/v1/batch", "{", 400, ""},
		{"batch empty", http.MethodPost, "/v1/batch", "{}", 400, ""},
		{"schedule wrong method", http.MethodGet, "/v1/schedule", "", 405, "POST"},
		{"schedule bad json", http.MethodPost, "/v1/schedule", "nope", 400, ""},
		{"schedule bad lifespan", http.MethodPost, "/v1/schedule", `{"profile":[1,0.5],"lifespan":-1}`, 422, ""},
		{"design wrong method", http.MethodGet, "/v1/design", "", 405, "POST"},
		{"design bad json", http.MethodPost, "/v1/design", "[", 400, ""},
		{"speedup wrong method", http.MethodPost, "/v1/speedup", "{}", 405, "GET"},
		{"speedup no mode", http.MethodGet, "/v1/speedup?profile=1,0.5", "", 400, ""},
		{"speedup both modes", http.MethodGet, "/v1/speedup?profile=1,0.5&phi=0.1&psi=2", "", 400, ""},
		{"faulty wrong method", http.MethodGet, "/v1/simulate/faulty", "", 405, "POST"},
		{"faulty bad json", http.MethodPost, "/v1/simulate/faulty", "{", 400, ""},
		{"faulty bad plan", http.MethodPost, "/v1/simulate/faulty", `{"profile":[1],"lifespan":10,"faults":[{"kind":"crash","computer":5,"at":1}]}`, 400, ""},
		{"statz wrong method", http.MethodPost, "/v1/statz", "{}", 405, "GET"},
		{"unknown path", http.MethodGet, "/v1/nope", "", 404, ""},
		{"root path", http.MethodGet, "/", "", 404, ""},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, resp.StatusCode, tc.code, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		var msg map[string]string
		if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
			t.Errorf("%s: body %q is not a structured error", tc.name, body)
		}
		if tc.wantAllow != "" && resp.Header.Get("Allow") != tc.wantAllow {
			t.Errorf("%s: Allow %q, want %q", tc.name, resp.Header.Get("Allow"), tc.wantAllow)
		}
	}
}

// TestHandlerHonorsCancelledParent drives the 504 path of the faulty
// endpoint: a request whose context is already done must map the
// simulation's context error to a JSON 504 and count it.
func TestHandlerHonorsCancelledParent(t *testing.T) {
	s := NewServer()
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate/faulty",
		strings.NewReader(`{"profile":[1,0.5],"lifespan":3600,"replan":true}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	// The admission middleware may also observe the dead context first; both
	// rejections are acceptable, but they must be structured and counted.
	if rec.Code != http.StatusGatewayTimeout && rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 504 or 503", rec.Code)
	}
	var msg map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &msg); err != nil || msg["error"] == "" {
		t.Fatalf("body %q is not a structured error", rec.Body.String())
	}
	if s.deadlines.Load() != 1 {
		t.Fatalf("deadline counter %d, want 1", s.deadlines.Load())
	}
}
