package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"hetero/internal/core"
	"hetero/internal/model"
)

// The raw-query front layer for /v1/compare and /v1/speedup. Both endpoints
// parse profiles exactly like /v1/measure but carry them through url.Values;
// for the large profiles where parsing rivals evaluation, the same
// front-cache treatment applies: the exact RawQuery string (plus a
// per-endpoint key prefix) is a cache key checked before any parsing, with
// misses singleflight-coalesced and errors never cached. Small queries take
// the plain parse path untouched.

// Key prefixes namespace each endpoint's entries inside the shared raw
// cache. They start with a 0x01 control byte, which can never appear in a
// RawQuery (the HTTP request line rejects raw control bytes), so no measure
// query — whose key is the bare RawQuery — can collide with them.
const (
	compareKeyPrefix = "\x01c|"
	speedupKeyPrefix = "\x01s|"
)

// serveQueryCached serves one GET query endpoint through the raw front
// cache: queries of at least rawFastPathMinQuery bytes are looked up (and
// filled, coalescing concurrent identical misses) under prefix+rawQuery;
// smaller ones render directly. render returns (status, body, errMsg) with
// the body newline-terminated; non-200 outcomes propagate to every
// coalesced waiter and are never cached.
func (s *Server) serveQueryCached(w http.ResponseWriter, prefix, rawQuery string, render func(string) (int, []byte, string)) {
	if len(rawQuery) < rawFastPathMinQuery || s.rawCache == nil || s.rawCache.capacity <= 0 {
		status, body, msg := render(rawQuery)
		if status != http.StatusOK {
			writeError(w, status, msg)
			return
		}
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	key := prefix + rawQuery
	h := hashString(key)
	if body, ok := s.rawCache.lookupStr(h, key); ok {
		s.drainResizes()
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	body, _, err := s.rawCache.fillStr(h, key, func() ([]byte, error) {
		// Spill tier: the prefixed key is namespaced inside the raw
		// layer, so a compare/speedup entry — evicted, or persisted at
		// admission in write-through mode — round-trips through disk (and
		// restarts) under the same spelling. Hit → promoted by the fill
		// insert.
		if b, ok := s.spillGet(spillLayerRaw, key); ok {
			return b, nil
		}
		status, body, msg := render(rawQuery)
		if status != http.StatusOK {
			return nil, &statusError{status: status, msg: msg}
		}
		return body, nil
	})
	s.drainResizes()
	if err != nil {
		if se, ok := err.(*statusError); ok {
			writeError(w, se.status, se.msg)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeRawJSON(w, http.StatusOK, body)
}

// renderCompare computes the /v1/compare response body for a raw query.
func (s *Server) renderCompare(rawQuery string) (int, []byte, string) {
	q, _ := url.ParseQuery(rawQuery) // best-effort, matching r.URL.Query()
	m, err := s.paramsFromValues(q)
	if err != nil {
		return http.StatusBadRequest, nil, err.Error()
	}
	p1, err := profileFromString(q.Get("p1"))
	if err != nil {
		return http.StatusBadRequest, nil, "p1: " + err.Error()
	}
	p2, err := profileFromString(q.Get("p2"))
	if err != nil {
		return http.StatusBadRequest, nil, "p2: " + err.Error()
	}
	resp := CompareResponse{Winner: 0}
	switch core.Compare(m, p1, p2) {
	case 1:
		resp.Winner = 1
	case -1:
		resp.Winner = 2
	}
	resp.P1 = measureResponse(m, p1)
	resp.P2 = measureResponse(m, p2)
	return marshalBody(resp)
}

// renderSpeedup computes the /v1/speedup response body for a raw query.
func (s *Server) renderSpeedup(rawQuery string) (int, []byte, string) {
	q, _ := url.ParseQuery(rawQuery)
	m, err := s.paramsFromValues(q)
	if err != nil {
		return http.StatusBadRequest, nil, err.Error()
	}
	p, err := profileFromString(q.Get("profile"))
	if err != nil {
		return http.StatusBadRequest, nil, err.Error()
	}
	phiStr, psiStr := q.Get("phi"), q.Get("psi")
	var (
		choice core.SpeedupChoice
		mode   string
	)
	switch {
	case phiStr != "" && psiStr != "":
		return http.StatusBadRequest, nil, "pass exactly one of phi, psi"
	case phiStr != "":
		phi, perr := strconv.ParseFloat(phiStr, 64)
		if perr != nil {
			return http.StatusBadRequest, nil, "bad phi"
		}
		choice, err = core.BestAdditive(m, p, phi)
		mode = "additive"
	case psiStr != "":
		psi, perr := strconv.ParseFloat(psiStr, 64)
		if perr != nil {
			return http.StatusBadRequest, nil, "bad psi"
		}
		choice, err = core.BestMultiplicative(m, p, psi)
		mode = "multiplicative"
	default:
		return http.StatusBadRequest, nil, "pass one of phi, psi"
	}
	if err != nil {
		return http.StatusUnprocessableEntity, nil, err.Error()
	}
	return marshalBody(SpeedupResponse{
		Index: choice.Index, After: choice.After, WorkRatio: choice.WorkRatio, Mode: mode,
	})
}

// marshalBody renders v exactly as writeJSON's json.Encoder would — Marshal
// plus the trailing newline — so cached bodies are byte-identical to the
// uncached path.
func marshalBody(v interface{}) (int, []byte, string) {
	b, err := json.Marshal(v)
	if err != nil {
		return http.StatusInternalServerError, nil, err.Error()
	}
	return http.StatusOK, append(b, '\n'), ""
}

// paramsFromValues overlays tau/pi/delta query parameters on the defaults.
func (s *Server) paramsFromValues(q url.Values) (model.Params, error) {
	m := s.Defaults
	for _, f := range []struct {
		key string
		dst *float64
	}{{"tau", &m.Tau}, {"pi", &m.Pi}, {"delta", &m.Delta}} {
		if v := q.Get(f.key); v != "" {
			parsed, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return m, fmt.Errorf("bad %s: %v", f.key, err)
			}
			*f.dst = parsed
		}
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}
