package api

import (
	"testing"

	"hetero/internal/model"
)

// FuzzCanonicalKey drives the cache-key canonicalization with arbitrary
// query-style inputs and checks the two properties the /v1/measure cache
// depends on:
//
//  1. losslessness — ParseCanonicalKey(CanonicalKey(m, p)) reproduces every
//     float64 exactly, so distinct clusters can never collide on one key;
//  2. determinism/spelling-independence — re-rendering the parsed values
//     yields the identical key, so "0.5", "5e-1" and "0.50" share an entry.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("1,0.5,0.25", 1e-6, 10e-6, 1.0)
	f.Add("1", 1e-5, 10e-5, 1.0)
	f.Add("0.5,5e-1,0.50", 0.2, 10e-6, 1.0)
	f.Add("0.0000001,1", 1e-6, 0.0, 0.25)
	f.Fuzz(func(t *testing.T, profileStr string, tau, pi, delta float64) {
		p, err := profileFromString(profileStr)
		if err != nil {
			t.Skip()
		}
		m := model.Params{Tau: tau, Pi: pi, Delta: delta}
		if m.Validate() != nil {
			t.Skip()
		}
		key := CanonicalKey(m, p)
		m2, p2, err := ParseCanonicalKey(key)
		if err != nil {
			t.Fatalf("key %q does not parse back: %v", key, err)
		}
		if m2 != m {
			t.Fatalf("params round-trip: %+v → %q → %+v", m, key, m2)
		}
		if len(p2) != len(p) {
			t.Fatalf("profile length round-trip: %d → %d (key %q)", len(p), len(p2), key)
		}
		for i := range p {
			if p2[i] != p[i] {
				t.Fatalf("ρ[%d] round-trip: %v → %v (key %q)", i, p[i], p2[i], key)
			}
		}
		if key2 := CanonicalKey(m2, p2); key2 != key {
			t.Fatalf("key not deterministic: %q vs %q", key, key2)
		}
	})
}
