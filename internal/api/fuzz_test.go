package api

import (
	"math"
	"testing"

	"hetero/internal/fault"
	"hetero/internal/model"
)

// FuzzCanonicalKey drives the cache-key canonicalization with arbitrary
// query-style inputs and checks the two properties the /v1/measure cache
// depends on:
//
//  1. losslessness — ParseCanonicalKey(CanonicalKey(m, p)) reproduces every
//     float64 exactly, so distinct clusters can never collide on one key;
//  2. determinism/spelling-independence — re-rendering the parsed values
//     yields the identical key, so "0.5", "5e-1" and "0.50" share an entry.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("1,0.5,0.25", 1e-6, 10e-6, 1.0)
	f.Add("1", 1e-5, 10e-5, 1.0)
	f.Add("0.5,5e-1,0.50", 0.2, 10e-6, 1.0)
	f.Add("0.0000001,1", 1e-6, 0.0, 0.25)
	f.Fuzz(func(t *testing.T, profileStr string, tau, pi, delta float64) {
		p, err := profileFromString(profileStr)
		if err != nil {
			t.Skip()
		}
		m := model.Params{Tau: tau, Pi: pi, Delta: delta}
		if m.Validate() != nil {
			t.Skip()
		}
		key := CanonicalKey(m, p)
		m2, p2, err := ParseCanonicalKey(key)
		if err != nil {
			t.Fatalf("key %q does not parse back: %v", key, err)
		}
		if m2 != m {
			t.Fatalf("params round-trip: %+v → %q → %+v", m, key, m2)
		}
		if len(p2) != len(p) {
			t.Fatalf("profile length round-trip: %d → %d (key %q)", len(p), len(p2), key)
		}
		for i := range p {
			if p2[i] != p[i] {
				t.Fatalf("ρ[%d] round-trip: %v → %v (key %q)", i, p[i], p2[i], key)
			}
		}
		if key2 := CanonicalKey(m2, p2); key2 != key {
			t.Fatalf("key not deterministic: %q vs %q", key, key2)
		}
	})
}

// FuzzFaultPlanParse drives the POST /v1/simulate/faulty decoder with
// arbitrary bodies. The decoder is the trust boundary for the fault
// subsystem, so the invariants are absolute:
//
//  1. it never panics, whatever the bytes;
//  2. anything it accepts is fully simulatable — the plan re-validates, the
//     lifespan is positive and finite, and no NaN/±Inf reached the profile
//     or the fault times (JSON cannot spell them and the validators refuse
//     the loopholes, e.g. overlapping windows or inverted intervals).
func FuzzFaultPlanParse(f *testing.F) {
	f.Add([]byte(`{"profile":[1,0.5],"lifespan":3600}`))
	f.Add([]byte(`{"profile":[1,0.5],"lifespan":3600,"replan":true,"faults":[{"kind":"crash","computer":1,"at":100}]}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"faults":[{"kind":"outage","computer":0,"at":1,"until":5},{"kind":"outage","computer":0,"at":3,"until":7}]}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"faults":[{"kind":"blackout","at":2}]}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"faults":[{"kind":"slowdown","computer":0,"at":-3,"factor":2}]}`))
	f.Add([]byte(`{"profile":[NaN],"lifespan":1e999}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"params":{"tau":1e-6,"pi":1e-5,"delta":1}}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		defaults := model.Table1()
		m, p, lifespan, plan, _, err := decodeFaultyRequest(defaults, body)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted params fail validation: %v (body %q)", verr, body)
		}
		if len(p) == 0 {
			t.Fatalf("accepted an empty profile (body %q)", body)
		}
		for i, rho := range p {
			if math.IsNaN(rho) || math.IsInf(rho, 0) || rho <= 0 || rho > 1 {
				t.Fatalf("accepted ρ[%d] = %v (body %q)", i, rho, body)
			}
		}
		if !(lifespan > 0) || math.IsInf(lifespan, 0) {
			t.Fatalf("accepted lifespan %v (body %q)", lifespan, body)
		}
		if verr := plan.Validate(len(p)); verr != nil {
			t.Fatalf("accepted plan fails re-validation: %v (body %q)", verr, body)
		}
		for _, fa := range plan.Faults {
			if math.IsNaN(fa.At) || math.IsInf(fa.At, 0) || fa.At < 0 {
				t.Fatalf("accepted fault time %v (body %q)", fa.At, body)
			}
		}
	})
}

// FuzzElasticPlanParse drives the POST /v1/simulate/elastic decoder with
// arbitrary bodies — the join-aware sibling of FuzzFaultPlanParse, plus
// the policy surface. The invariants:
//
//  1. it never panics, whatever the bytes;
//  2. anything accepted is fully simulatable — the plan re-validates with
//     joins interleaved among outages and blackouts, join ρ-values are in
//     (0,1], the policy is coherent (never replan AND redundancy, margin
//     only with an enabled scheme), and the jitter options re-validate.
func FuzzElasticPlanParse(f *testing.F) {
	f.Add([]byte(`{"profile":[1,0.5],"lifespan":3600}`))
	f.Add([]byte(`{"profile":[1,0.5],"lifespan":3600,"replan":true,"faults":[{"kind":"join","computer":2,"at":100,"rho":0.5}]}`))
	f.Add([]byte(`{"profile":[0.5,0.5],"lifespan":3600,"redundancy":"2@0.15","rho_jitter":0.15,"seed":7}`))
	f.Add([]byte(`{"profile":[0.5,0.5,0.5],"lifespan":3600,"redundancy":"coded:2of3"}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"faults":[{"kind":"join","computer":1,"at":2,"rho":0.5},{"kind":"blackout","at":3,"until":4},{"kind":"outage","computer":1,"at":5,"until":7}]}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"replan":true,"redundancy":"3"}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"redundancy":"off@0.1"}`))
	f.Add([]byte(`{"profile":[1],"lifespan":10,"faults":[{"kind":"join","computer":0,"at":1,"rho":0.5}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		defaults := model.Table1()
		m, p, lifespan, plan, pol, opt, err := decodeElasticRequest(defaults, body)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted params fail validation: %v (body %q)", verr, body)
		}
		if len(p) == 0 {
			t.Fatalf("accepted an empty profile (body %q)", body)
		}
		for i, rho := range p {
			if math.IsNaN(rho) || math.IsInf(rho, 0) || rho <= 0 || rho > 1 {
				t.Fatalf("accepted ρ[%d] = %v (body %q)", i, rho, body)
			}
		}
		if !(lifespan > 0) || math.IsInf(lifespan, 0) {
			t.Fatalf("accepted lifespan %v (body %q)", lifespan, body)
		}
		if verr := plan.Validate(len(p)); verr != nil {
			t.Fatalf("accepted plan fails re-validation: %v (body %q)", verr, body)
		}
		for _, fa := range plan.Faults {
			if math.IsNaN(fa.At) || math.IsInf(fa.At, 0) || fa.At < 0 {
				t.Fatalf("accepted fault time %v (body %q)", fa.At, body)
			}
			if fa.Kind == fault.Join && (math.IsNaN(fa.Rho) || fa.Rho <= 0 || fa.Rho > 1) {
				t.Fatalf("accepted join ρ %v (body %q)", fa.Rho, body)
			}
		}
		if verr := pol.Validate(); verr != nil {
			t.Fatalf("accepted policy fails re-validation: %v (body %q)", verr, body)
		}
		if pol.Replan && pol.Redundancy.Enabled() {
			t.Fatalf("accepted contradictory policy (body %q)", body)
		}
		if verr := opt.Validate(); verr != nil {
			t.Fatalf("accepted options fail re-validation: %v (body %q)", verr, body)
		}
	})
}

// FuzzParseCanonicalKey drives the strict parser with arbitrary strings —
// the direction FuzzCanonicalKey cannot cover. The contract:
//
//  1. it never panics, whatever the input;
//  2. malformed keys (trailing or empty fields, missing profile, junk
//     floats, out-of-range values, non-canonical spellings) always error;
//  3. anything accepted is a fixed point: re-rendering the parsed values
//     reproduces the input byte-for-byte, and re-parsing agrees exactly.
func FuzzParseCanonicalKey(f *testing.F) {
	// Well-formed keys.
	f.Add(CanonicalKey(model.Table1(), []float64{1, 0.5, 0.25}))
	f.Add(CanonicalKey(model.Figs34(), []float64{1}))
	// Malformed: trailing/empty fields, wrong arity, junk.
	f.Add("0x1p-20|0x1.4p-17|0x1p+00|0x1p+00,")
	f.Add("0x1p-20|0x1.4p-17|0x1p+00|,0x1p+00")
	f.Add("0x1p-20|0x1.4p-17|0x1p+00||0x1p+00")
	f.Add("0x1p-20|0x1.4p-17|0x1p+00")
	f.Add("1|2")
	f.Add("")
	f.Add("NaN|0x1.4p-17|0x1p+00|0x1p+00")
	f.Add("+Inf|0x1.4p-17|0x1p+00|0x1p+00")
	f.Add("1e-6|1e-5|1|1,0.5") // decimal spellings are not canonical
	f.Fuzz(func(t *testing.T, key string) {
		m, p, err := ParseCanonicalKey(key)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted params fail validation: %v (key %q)", verr, key)
		}
		if len(p) == 0 {
			t.Fatalf("accepted an empty profile (key %q)", key)
		}
		again := CanonicalKey(m, p)
		if again != key {
			t.Fatalf("accepted key is not canonical: %q re-renders as %q", key, again)
		}
		m2, p2, err := ParseCanonicalKey(again)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", again, err)
		}
		if m2 != m || len(p2) != len(p) {
			t.Fatalf("re-parse of %q disagrees: %+v vs %+v", again, m2, m)
		}
		for i := range p {
			if p2[i] != p[i] {
				t.Fatalf("re-parse ρ[%d]: %v vs %v", i, p2[i], p[i])
			}
		}
	})
}
