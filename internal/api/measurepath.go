package api

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"hetero/internal/cluster"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// The /v1/measure hot path. GET /v1/measure is the service's dominant
// traffic shape, and — FIFO optimality depending only on the profile — the
// steady state is overwhelmingly cache hits. This file makes that steady
// state allocation-free: the query is parsed by slicing the raw string (no
// url.Values map), the canonical key is built into a pooled byte buffer,
// and the cache is probed with the compiler's string(bytes) map-lookup
// optimization. The alloc gates in measure_alloc_test.go pin the cached
// path to 0 allocs/op and bound the miss path.
//
// Pool ownership rule: a measureScratch belongs to exactly one request from
// Get to Put; nothing it holds may outlive the request. Bodies handed to
// the caller are either cache-owned (stable) or freshly copied, never
// aliases of scratch memory.

// measureScratch carries the per-request buffers of the measure hot path.
type measureScratch struct {
	rhos []float64 // decoded profile
	key  []byte    // canonical cache key
	enc  []byte    // JSON encoding buffer (miss path)
}

var measureScratchPool = sync.Pool{
	New: func() interface{} {
		return &measureScratch{
			rhos: make([]float64, 0, 64),
			key:  make([]byte, 0, 512),
			enc:  make([]byte, 0, 1024),
		}
	},
}

// MeasureQuery runs the /v1/measure hot path for a raw query string without
// the HTTP layer: parse, canonicalize, cache lookup, and on a miss the
// (possibly chunked-parallel) evaluation plus JSON encoding. It returns the
// HTTP status and, for status 200, the response body. It exists so the
// benchmark harness (cmd/benchserve) and the allocation gates can measure
// the serving path proper, free of net/http and ResponseWriter overhead.
// The returned body is cache-owned or freshly allocated — never scratch —
// so it remains valid after the call.
func (s *Server) MeasureQuery(rawQuery string) (status int, body []byte) {
	if s.cache == nil {
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.rawCache == nil {
		s.rawCache = newResponseCache(s.cache.capacity)
	}
	sc := measureScratchPool.Get().(*measureScratch)
	status, body, _ = s.measure(sc, rawQuery)
	measureScratchPool.Put(sc)
	return status, body
}

// rawFastPathMinQuery is the query length at which the raw-query front
// cache engages. Parsing and canonical-key building cost O(len(query)); for
// large profiles they rival the evaluation itself, so a herd of identical
// large requests gains little from coalescing at the canonical layer alone
// — every member still pays the parse. Above this threshold the raw
// RawQuery string is itself a cache key checked before any parsing: an
// exact-spelling hit (or coalesced wait) skips the parse entirely. Below
// it, parsing costs microseconds and the canonical layer's exact-LRU
// behavior (which small-cache tests pin) is preserved untouched.
const rawFastPathMinQuery = 4096

// rawFrontEngages reports whether rawQuery is served through the raw-query
// front cache. The fleet tier keys off this too: a request does its peer
// fetch/push at the layer it will be cached at, and only there.
func (s *Server) rawFrontEngages(rawQuery string) bool {
	return len(rawQuery) >= rawFastPathMinQuery && s.rawCache != nil && s.rawCache.capacity > 0
}

// statusError carries a non-200 outcome through the raw layer's
// singleflight so every coalesced waiter of a malformed herd receives the
// same status and message, and nothing is cached.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// measure is the hot path shared by handleMeasure and MeasureQuery. On
// error it returns (status, nil, message); on success (200, body, "").
//
// Large queries go through the raw-query front cache first — exact
// RawQuery string → body, nginx-style — so repeated identical spellings
// skip the parse. Different spellings of the same cluster still unify at
// the canonical layer below. The raw layer never caches errors, and its
// mapping is deterministic (the response depends only on the query), so a
// raw entry outliving its canonical twin still serves correct bytes.
func (s *Server) measure(sc *measureScratch, rawQuery string) (int, []byte, string) {
	if s.rawFrontEngages(rawQuery) {
		h := hashString(rawQuery)
		if body, ok := s.rawCache.lookupStr(h, rawQuery); ok {
			return 200, body, ""
		}
		body, _, err := s.rawCache.fillStr(h, rawQuery, func() ([]byte, error) {
			// Spill tier: a raw entry this layer evicted — or, in
			// write-through mode, one persisted at admission time and
			// surviving a restart — may still be on disk. Consulted after
			// the memory layers (we are the flight leader of a miss) and
			// before any peer fetch or evaluation; a hit is promoted back
			// into memory by the fill insert and skips the parse exactly
			// as a raw-layer peer hit would.
			if b, ok := s.spillGet(spillLayerRaw, rawQuery); ok {
				return b, nil
			}
			// Fleet tier: this exact spelling may already be warm on its
			// owning replica. A raw-layer peer hit skips the parse entirely —
			// the whole point of peering this layer — and a fallback remembers
			// the owner so the locally computed body is offered back to it.
			var pushOwner string
			if cl := s.cluster; cl != nil {
				if owner, self := cl.Owner(h); !self {
					if b, ok := cl.Fetch(owner, cluster.LayerRaw, []byte(rawQuery)); ok {
						return b, nil
					}
					pushOwner = owner
				}
			}
			// With coalescing on, hand the raw query to the admission batcher
			// before any parsing: the flush shares the decode, moments and
			// render across the herd. We are this spelling's flight leader, so
			// the raw front still caches whatever comes back. A rejected
			// submit (queue full, draining) falls through to the inline path.
			if b := s.batcher; b != nil {
				if res, ok := b.submitRaw(rawQuery); ok {
					if res.status != 200 {
						return nil, &statusError{status: res.status, msg: res.msg}
					}
					if pushOwner != "" {
						s.cluster.Push(pushOwner, cluster.LayerRaw, []byte(rawQuery), res.body)
					}
					return res.body, nil
				}
			}
			status, body, msg := s.measureCanonical(sc, rawQuery)
			if status != 200 {
				return nil, &statusError{status: status, msg: msg}
			}
			if pushOwner != "" {
				s.cluster.Push(pushOwner, cluster.LayerRaw, []byte(rawQuery), body)
			}
			return body, nil
		})
		if err != nil {
			if se, ok := err.(*statusError); ok {
				return se.status, nil, se.msg
			}
			return 500, nil, err.Error()
		}
		return 200, body, ""
	}
	return s.measureCanonical(sc, rawQuery)
}

// measureCanonical is the canonical-key layer: parse, canonicalize, sharded
// lookup, singleflight-coalesced evaluation on a miss.
func (s *Server) measureCanonical(sc *measureScratch, rawQuery string) (int, []byte, string) {
	m, status, msg := s.parseMeasureQuery(sc, rawQuery)
	if status != 0 {
		return status, nil, msg
	}
	sc.key = appendCanonicalKey(sc.key[:0], m, sc.rhos)
	h := hashKey(sc.key)
	if body, ok := s.cache.lookup(h, sc.key); ok {
		return 200, body, ""
	}
	// Miss: evaluate and encode under singleflight, so a burst of identical
	// misses costs one evaluation. The closure allocates (it escapes), which
	// is part of the documented miss-path allocation budget. With coalescing
	// on, the evaluation is handed to the admission batcher instead — we are
	// this key's flight leader, so the body the flush computes is published
	// here exactly as an inline evaluation would be; a rejected submit falls
	// through to the inline path.
	body, _, err := s.cache.fill(h, sc.key, func() ([]byte, error) {
		// Spill tier: disk before peers, peers before evaluation. A hit
		// returns the stored bytes verbatim (CRC-checked); the fill
		// insert promotes them back into the memory tier. In
		// write-through mode this is also the warm-restart path: the key
		// was persisted at admission (or by the shutdown flush), so a
		// reopened store answers here with zero re-evaluations.
		if b, ok := s.spillGet(spillLayerCanonical, string(sc.key)); ok {
			return b, nil
		}
		// Fleet tier: on a miss of a peer-owned key, ask the owner for the
		// cached bytes before evaluating (hedged; never triggers evaluation
		// on the owner). Timeout or error falls through to the local paths
		// below — a degraded fleet serves exactly as a single replica would —
		// and the locally computed body is then offered back to the owner so
		// the fleet still converges on one evaluation per key. Each request
		// consults at most ONE peer layer — the one it will be cached at: a
		// large query already did its peer work at the raw front above, and
		// repeating it here would double the (key-sized) upload and the tail
		// for a fetch that can only hit when the same cluster was warmed
		// under a different spelling.
		var pushOwner string
		if cl := s.cluster; cl != nil && !s.rawFrontEngages(rawQuery) {
			if owner, self := cl.Owner(h); !self {
				if b, ok := cl.Fetch(owner, cluster.LayerCanonical, sc.key); ok {
					return b, nil
				}
				pushOwner = owner
			}
		}
		if b := s.batcher; b != nil {
			if out, ok := b.submitParsed(m, sc.rhos); ok {
				if pushOwner != "" {
					s.cluster.Push(pushOwner, cluster.LayerCanonical, sc.key, out)
				}
				return out, nil
			}
		}
		s.measureEvals.Add(1)
		fm := incr.MeasureProfile(m, profile.Profile(sc.rhos), 0)
		sc.enc = appendMeasureResponse(sc.enc[:0], sc.rhos, fm)
		out := make([]byte, len(sc.enc))
		copy(out, sc.enc)
		if pushOwner != "" {
			s.cluster.Push(pushOwner, cluster.LayerCanonical, sc.key, out)
		}
		return out, nil
	})
	if err != nil {
		return 500, nil, err.Error()
	}
	return 200, body, ""
}

// measureQueryParts holds the four decoded parameter values of a measure
// query, still as strings. splitMeasureQuery fills it; parseMeasureParams
// and parseProfileValue finish the job. The split exists so the admission
// batcher's flush can decode the (typically huge) profile value once per
// distinct spelling while still parsing the (tiny) model parameters per
// item.
type measureQueryParts struct {
	profileVal, tauVal, piVal, deltaVal string
}

// splitMeasureQuery decodes the measure parameters from the raw query by
// slicing, replicating net/url.ParseQuery semantics: '&'-separated pairs,
// first occurrence wins, pairs containing ';' are dropped, keys and values
// are percent-decoded ('+' means space). The common unescaped spelling never
// allocates; escaped pairs take a url.QueryUnescape fallback.
func splitMeasureQuery(rawQuery string) measureQueryParts {
	var q measureQueryParts
	var sawProfile, sawTau, sawPi, sawDelta bool
	rest := rawQuery
	for rest != "" {
		var pair string
		pair, rest, _ = strings.Cut(rest, "&")
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue // ParseQuery drops empty and semicolon-containing pairs
		}
		key, val, _ := strings.Cut(pair, "=")
		key, ok := unescapeComponent(key)
		if !ok {
			continue // ParseQuery drops pairs whose key fails to unescape
		}
		switch key {
		case "profile", "tau", "pi", "delta":
		default:
			continue
		}
		val, ok = unescapeComponent(val)
		if !ok {
			continue
		}
		switch key {
		case "profile":
			if !sawProfile {
				q.profileVal, sawProfile = val, true
			}
		case "tau":
			if !sawTau {
				q.tauVal, sawTau = val, true
			}
		case "pi":
			if !sawPi {
				q.piVal, sawPi = val, true
			}
		case "delta":
			if !sawDelta {
				q.deltaVal, sawDelta = val, true
			}
		}
	}
	return q
}

// parseMeasureParams decodes tau/pi/delta on top of the defaults and
// validates the resulting parameter set. Errors are reported in the same
// order as the pre-sharding handler: params first, then the profile (which
// parseProfileValue handles).
func parseMeasureParams(defaults model.Params, q measureQueryParts) (model.Params, int, string) {
	m := defaults
	for _, f := range [3]struct {
		name string
		val  string
		dst  *float64
	}{{"tau", q.tauVal, &m.Tau}, {"pi", q.piVal, &m.Pi}, {"delta", q.deltaVal, &m.Delta}} {
		if f.val == "" {
			continue
		}
		parsed, err := strconv.ParseFloat(f.val, 64)
		if err != nil {
			return m, 400, "bad " + f.name + ": " + err.Error()
		}
		*f.dst = parsed
	}
	if err := m.Validate(); err != nil {
		return m, 400, err.Error()
	}
	return m, 0, ""
}

// parseProfileValue decodes one profile parameter value into dst (reusing
// its backing array), applying the same admission checks as profile.New.
func parseProfileValue(profileVal string, dst []float64) ([]float64, int, string) {
	if profileVal == "" {
		return dst, 400, "missing profile"
	}
	dst = dst[:0]
	rest := profileVal
	for {
		part, tail, found := strings.Cut(rest, ",")
		part = strings.TrimSpace(part)
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return dst, 400, fmt.Sprintf("bad ρ-value %q", part)
		}
		if msg := checkRhoValue(len(dst), v); msg != "" {
			return dst, 400, msg
		}
		dst = append(dst, v)
		if !found {
			break
		}
		rest = tail
	}
	return dst, 0, ""
}

// parseMeasureQuery decodes profile/tau/pi/delta from the raw query:
// splitMeasureQuery's pair scan, then parameters, then the profile — the
// composition the admission batcher unbundles to share the profile decode
// across a flush.
func (s *Server) parseMeasureQuery(sc *measureScratch, rawQuery string) (model.Params, int, string) {
	q := splitMeasureQuery(rawQuery)
	m, status, msg := parseMeasureParams(s.Defaults, q)
	if status != 0 {
		return m, status, msg
	}
	sc.rhos, status, msg = parseProfileValue(q.profileVal, sc.rhos)
	if status != 0 {
		return m, status, msg
	}
	return m, 0, ""
}

// checkRhoValue applies profile.New's admission checks to one decoded ρ
// without building a Profile, returning the same message text.
func checkRhoValue(i int, r float64) string {
	switch {
	case math.IsNaN(r) || math.IsInf(r, 0):
		return fmt.Sprintf("profile: ρ[%d] = %v is not finite", i, r)
	case r <= 0:
		return fmt.Sprintf("profile: ρ[%d] = %v must be positive", i, r)
	case r > 1:
		return fmt.Sprintf("profile: ρ[%d] = %v exceeds 1; normalize so the slowest computer has ρ = 1", i, r)
	}
	return ""
}

// unescapeComponent percent-decodes one query component. The fast path —
// no '%' or '+' — returns the input unchanged without allocating; anything
// else takes the url.QueryUnescape fallback. ok = false means the component
// is malformed and its pair must be dropped, as ParseQuery does.
func unescapeComponent(s string) (string, bool) {
	if strings.IndexByte(s, '%') < 0 && strings.IndexByte(s, '+') < 0 {
		return s, true
	}
	out, err := url.QueryUnescape(s)
	if err != nil {
		return "", false
	}
	return out, true
}

// appendProfileEcho renders the profile-echo prefix of the /v1/measure body
// — everything up to and including the closing bracket of the profile array.
// It is the profile-dependent (and typically dominant) part of the response;
// the admission batcher renders it once per distinct profile in a flush and
// memcpys it into each item's body.
func appendProfileEcho(dst []byte, rhos []float64) []byte {
	dst = append(dst, `{"profile":[`...)
	for i, rho := range rhos {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONFloat(dst, rho)
	}
	dst = append(dst, ']')
	return dst
}

// appendMeasureTail renders the measure fields that follow the profile echo,
// closing the object and appending the trailing newline json.Encoder emits.
func appendMeasureTail(dst []byte, fm incr.FullMeasure) []byte {
	dst = append(dst, `,"x":`...)
	dst = appendJSONFloat(dst, fm.X)
	dst = append(dst, `,"hecr":`...)
	dst = appendJSONFloat(dst, fm.HECR)
	dst = append(dst, `,"work_rate":`...)
	dst = appendJSONFloat(dst, fm.WorkRate)
	dst = append(dst, `,"mean":`...)
	dst = appendJSONFloat(dst, fm.Mean)
	dst = append(dst, `,"variance":`...)
	dst = appendJSONFloat(dst, fm.Variance)
	dst = append(dst, `,"geo_mean":`...)
	dst = appendJSONFloat(dst, fm.GeoMean)
	dst = append(dst, '}', '\n')
	return dst
}

// appendMeasureResponse renders the /v1/measure JSON body into dst,
// byte-identical to json.Marshal of MeasureResponse (field order follows
// the struct; floats use appendJSONFloat) plus the trailing newline that
// json.Encoder emits.
func appendMeasureResponse(dst []byte, rhos []float64, fm incr.FullMeasure) []byte {
	dst = appendProfileEcho(dst, rhos)
	return appendMeasureTail(dst, fm)
}

// appendJSONFloat appends f exactly as encoding/json's floatEncoder renders
// a float64: shortest round-trip form, 'e' format outside [1e-6, 1e21) with
// the two-digit exponent collapsed ("e-06" → "e-6").
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}
