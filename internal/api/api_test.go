package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer().Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, dst interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body interface{}, dst interface{}) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	var out map[string]string
	if code := getJSON(t, srv.URL+"/v1/healthz", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("body %v", out)
	}
}

func TestMeasureMatchesLibrary(t *testing.T) {
	srv := testServer(t)
	var out MeasureResponse
	if code := getJSON(t, srv.URL+"/v1/measure?profile=1,0.5,0.25", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	if math.Abs(out.X-core.X(m, p)) > 1e-12 {
		t.Fatalf("X = %v, want %v", out.X, core.X(m, p))
	}
	if math.Abs(out.HECR-core.HECR(m, p)) > 1e-12 {
		t.Fatalf("HECR = %v", out.HECR)
	}
}

func TestMeasureCustomParams(t *testing.T) {
	srv := testServer(t)
	var out MeasureResponse
	if code := getJSON(t, srv.URL+"/v1/measure?profile=1,0.5&tau=0.01", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	m := model.Table1()
	m.Tau = 0.01
	want := core.X(m, profile.MustNew(1, 0.5))
	if math.Abs(out.X-want) > 1e-12 {
		t.Fatalf("X = %v, want %v under τ=0.01", out.X, want)
	}
}

func TestMeasureErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/v1/measure", http.StatusBadRequest},
		{"/v1/measure?profile=1,-0.5", http.StatusBadRequest},
		{"/v1/measure?profile=1,abc", http.StatusBadRequest},
		{"/v1/measure?profile=1&tau=-1", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := getJSON(t, srv.URL+tc.path, nil); code != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.path, code, tc.code)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/measure", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST measure: %d", resp.StatusCode)
	}
}

func TestCompare(t *testing.T) {
	srv := testServer(t)
	var out CompareResponse
	if code := getJSON(t, srv.URL+"/v1/compare?p1=0.99,0.02&p2=0.5,0.5", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Winner != 1 {
		t.Fatalf("winner = %d, want 1 (§4 counterexample)", out.Winner)
	}
	if !(out.P1.X > out.P2.X) {
		t.Fatalf("payload inconsistent: %+v", out)
	}
}

func TestSchedule(t *testing.T) {
	srv := testServer(t)
	var out ScheduleResponse
	code := postJSON(t, srv.URL+"/v1/schedule",
		ScheduleRequest{Profile: []float64{1, 0.5, 0.25}, Lifespan: 3600}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	if math.Abs(out.TotalWork-core.W(m, p, 3600)) > 1e-6 {
		t.Fatalf("total work %v", out.TotalWork)
	}
	if len(out.Computers) != 3 || out.Computers[2].ResultsAt > 3600+1e-6 {
		t.Fatalf("computers %+v", out.Computers)
	}
	// Allocations grow toward the fastest computer.
	if !(out.Allocations[2] > out.Allocations[1] && out.Allocations[1] > out.Allocations[0]) {
		t.Fatalf("allocations %v", out.Allocations)
	}
}

func TestScheduleErrors(t *testing.T) {
	srv := testServer(t)
	if code := postJSON(t, srv.URL+"/v1/schedule", ScheduleRequest{Profile: []float64{1}, Lifespan: -1}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("negative lifespan: %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/schedule", ScheduleRequest{Profile: []float64{-1}, Lifespan: 10}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad profile: %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/schedule", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	gr, err := http.Get(srv.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET schedule: %d", gr.StatusCode)
	}
}

func TestDesign(t *testing.T) {
	srv := testServer(t)
	var out DesignResponse
	req := map[string]interface{}{
		"budget": 40,
		"catalog": []map[string]interface{}{
			{"Name": "econo", "Rho": 1, "Price": 7},
			{"Name": "turbo", "Rho": 0.1, "Price": 55},
		},
	}
	if code := postJSON(t, srv.URL+"/v1/design", req, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Cost > 40 || len(out.Profile) == 0 || out.X <= 0 {
		t.Fatalf("design %+v", out)
	}
}

func TestDesignErrors(t *testing.T) {
	srv := testServer(t)
	req := map[string]interface{}{"budget": 1, "catalog": []map[string]interface{}{
		{"Name": "x", "Rho": 0.5, "Price": 100},
	}}
	if code := postJSON(t, srv.URL+"/v1/design", req, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("unaffordable: %d", code)
	}
}

func TestUnknownRoute(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		go func() {
			var out MeasureResponse
			url := fmt.Sprintf("%s/v1/measure?profile=1,0.%d", srv.URL, 1+i%8)
			resp, err := http.Get(url)
			if err != nil {
				done <- err
				return
			}
			defer resp.Body.Close()
			done <- json.NewDecoder(resp.Body).Decode(&out)
		}()
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpeedup(t *testing.T) {
	srv := testServer(t)
	var out SpeedupResponse
	if code := getJSON(t, srv.URL+"/v1/speedup?profile=1,0.5,0.25&phi=0.05", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	// Theorem 3: the fastest computer (index 2) is the upgrade target.
	if out.Index != 2 || out.Mode != "additive" || out.WorkRatio <= 1 {
		t.Fatalf("payload %+v", out)
	}
	if code := getJSON(t, srv.URL+"/v1/speedup?profile=1,1&psi=0.5", &out); code != 200 {
		t.Fatalf("psi status %d", code)
	}
	if out.Mode != "multiplicative" {
		t.Fatalf("payload %+v", out)
	}
}

func TestSpeedupErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/v1/speedup?profile=1,0.5", http.StatusBadRequest},                  // neither
		{"/v1/speedup?profile=1,0.5&phi=0.1&psi=0.5", http.StatusBadRequest},  // both
		{"/v1/speedup?profile=1,0.5&phi=abc", http.StatusBadRequest},          // bad phi
		{"/v1/speedup?profile=1,0.5&phi=0.9", http.StatusUnprocessableEntity}, // φ ≥ fastest
		{"/v1/speedup?profile=1,0.5&psi=1.5", http.StatusUnprocessableEntity}, // ψ ≥ 1
	}
	for _, tc := range cases {
		if code := getJSON(t, srv.URL+tc.path, nil); code != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.path, code, tc.code)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		"/v1/compare?p2=1,0.5",          // missing p1
		"/v1/compare?p1=1,0.5",          // missing p2
		"/v1/compare?p1=abc&p2=1",       // bad p1
		"/v1/compare?p1=1&p2=-1",        // bad p2
		"/v1/compare?p1=1&p2=1&tau=bad", // bad params
	}
	for _, path := range cases {
		if code := getJSON(t, srv.URL+path, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d", path, code)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/compare", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST compare: %d", resp.StatusCode)
	}
}

func TestCompareTie(t *testing.T) {
	srv := testServer(t)
	var out CompareResponse
	if code := getJSON(t, srv.URL+"/v1/compare?p1=0.5,0.5&p2=0.5,0.5", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Winner != 0 {
		t.Fatalf("tie winner = %d", out.Winner)
	}
}

func TestDesignMethodAndJSONErrors(t *testing.T) {
	srv := testServer(t)
	gr, err := http.Get(srv.URL + "/v1/design")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET design: %d", gr.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/v1/design", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
}

func TestDesignCustomParams(t *testing.T) {
	srv := testServer(t)
	var out DesignResponse
	req := map[string]interface{}{
		"budget": 20,
		"params": map[string]float64{"tau": 1e-6, "pi": 1e-5, "delta": 1},
		"catalog": []map[string]interface{}{
			{"Name": "box", "Rho": 0.5, "Price": 5},
		},
	}
	if code := postJSON(t, srv.URL+"/v1/design", req, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Profile) != 4 {
		t.Fatalf("profile %v, want 4 boxes", out.Profile)
	}
}

func TestSpeedupMethodAndProfileErrors(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/speedup", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST speedup: %d", resp.StatusCode)
	}
	if code := getJSON(t, srv.URL+"/v1/speedup?phi=0.1", nil); code != http.StatusBadRequest {
		t.Fatalf("missing profile: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/speedup?profile=1&tau=bad&phi=0.1", nil); code != http.StatusBadRequest {
		t.Fatalf("bad tau: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/speedup?profile=1,0.5&psi=abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad psi: %d", code)
	}
}

func TestScheduleCustomParams(t *testing.T) {
	srv := testServer(t)
	var out ScheduleResponse
	params := model.Table1()
	params.Tau = 1e-5
	code := postJSON(t, srv.URL+"/v1/schedule",
		ScheduleRequest{Profile: []float64{1, 0.5}, Lifespan: 100, Params: &params}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.TotalWork <= 0 {
		t.Fatalf("work %v", out.TotalWork)
	}
}
