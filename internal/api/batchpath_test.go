package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"hetero/internal/core"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// randomRhos draws one normalized n-computer profile at full float64
// precision (spellings round-trip exactly through both the batch JSON and
// the measure query string).
func randomRhos(n int, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	return []float64(profile.RandomNormalized(rng, n))
}

// measureQueryFor renders the /v1/measure query for one profile with
// round-trippable spellings.
func measureQueryFor(rhos []float64) string {
	var b strings.Builder
	b.Grow(9 + 26*len(rhos))
	b.WriteString("profile=")
	for i, rho := range rhos {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(rho, 'g', -1, 64))
	}
	return b.String()
}

// expectedBatchBody assembles the batch response a server would have to
// produce if /v1/batch is exactly "per-profile /v1/measure": each result is
// the measure body for that profile, spliced into the count+results frame.
// The measure side runs on its own fresh server so the two paths compute
// independently.
func expectedBatchBody(t *testing.T, rhoSets [][]float64) []byte {
	t.Helper()
	s := NewServer()
	var out []byte
	out = append(out, `{"count":`...)
	out = strconv.AppendInt(out, int64(len(rhoSets)), 10)
	out = append(out, `,"results":[`...)
	for i, rhos := range rhoSets {
		status, body := s.MeasureQuery(measureQueryFor(rhos))
		if status != 200 {
			t.Fatalf("measure for profile %d: status %d", i, status)
		}
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, body[:len(body)-1]...)
	}
	return append(out, ']', '}', '\n')
}

func marshalBatch(t *testing.T, rhoSets [][]float64) []byte {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Profiles: rhoSets})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBatchBitIdenticalToMeasure is the golden equivalence contract of the
// batch engine: across every scheduling regime — across-profile fan-out,
// the within-profile chunked kernel (n ≥ core.ParallelCutover), dedupe
// collapse, canonical-cache consult, and the raw body-front repeat — the
// /v1/batch response must be byte-identical to splicing the per-profile
// /v1/measure bodies, computed on an independent server.
func TestBatchBitIdenticalToMeasure(t *testing.T) {
	small1 := randomRhos(5, 1)
	small2 := randomRhos(9, 2)
	cacheable := randomRhos(batchCacheMinProfile+10, 3) // consults the canonical cache
	large := randomRhos(core.ParallelCutover, 4)        // chunked two-pass kernel
	regimes := []struct {
		name string
		sets [][]float64
	}{
		{"many_small_fanout", [][]float64{small1, small2, randomRhos(3, 5)}},
		{"chunked_large", [][]float64{large}},
		{"mixed_sizes", [][]float64{small1, large, cacheable, small2}},
		{"dedup_collapse", [][]float64{small1, cacheable, small1, small1, cacheable}},
	}
	for _, regime := range regimes {
		t.Run(regime.name, func(t *testing.T) {
			s := NewServer()
			body := marshalBatch(t, regime.sets)
			status, resp, msg := s.BatchBody(body)
			if status != 200 {
				t.Fatalf("batch status %d: %s", status, msg)
			}
			want := expectedBatchBody(t, regime.sets)
			if !bytes.Equal(resp, want) {
				t.Fatalf("batch diverges from per-profile measure\nbatch   %.200q\nmeasure %.200q", resp, want)
			}
			// The repeat must serve the same bytes whether it resolves at the
			// raw body-front (large bodies) or recomputes (small ones).
			status2, resp2, _ := s.BatchBody(body)
			if status2 != 200 || !bytes.Equal(resp, resp2) {
				t.Fatalf("repeated body served different bytes (status %d)", status2)
			}
		})
	}
}

// TestBatchMatchesEncodingJSON pins the frame assembly itself: the
// hand-assembled batch body must equal json.Encoder on the BatchResponse
// struct the old engine marshaled, field for field and byte for byte.
func TestBatchMatchesEncodingJSON(t *testing.T) {
	sets := [][]float64{randomRhos(4, 7), randomRhos(6, 8)}
	s := NewServer()
	status, resp, msg := s.BatchBody(marshalBatch(t, sets))
	if status != 200 {
		t.Fatalf("status %d: %s", status, msg)
	}
	var decoded BatchResponse
	if err := json.Unmarshal(resp, &decoded); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, buf.Bytes()) {
		t.Fatalf("assembled body is not canonical encoding/json output:\nassembled %.200q\nencoded   %.200q", resp, buf.Bytes())
	}
	if decoded.Count != 2 || len(decoded.Results) != 2 {
		t.Fatalf("count %d / %d results", decoded.Count, len(decoded.Results))
	}
}

// TestBatchDedupeCounters drives a duplicate-heavy batch and checks the
// bookkeeping: duplicates counted, the canonical layer consulted for the
// cache-eligible profile across requests, the raw front for repeated
// bodies.
func TestBatchDedupeCounters(t *testing.T) {
	s := NewServer()
	cacheable := randomRhos(batchCacheMinProfile, 11)
	small := randomRhos(4, 12)
	body := marshalBatch(t, [][]float64{cacheable, small, cacheable, small, cacheable})
	if status, _, msg := s.BatchBody(body); status != 200 {
		t.Fatalf("status %d: %s", status, msg)
	}
	if got := s.batchDeduped.Load(); got != 3 {
		t.Fatalf("deduped = %d, want 3 (two extra cacheable + one extra small)", got)
	}
	// A different body sharing the cacheable profile: its fragment must come
	// from the canonical cache.
	body2 := marshalBatch(t, [][]float64{cacheable, randomRhos(5, 13)})
	if status, _, msg := s.BatchBody(body2); status != 200 {
		t.Fatalf("status %d: %s", status, msg)
	}
	if got := s.batchCanonHits.Load(); got == 0 {
		t.Fatal("cacheable profile not served from the canonical cache on the second request")
	}
	if len(body) >= batchRawMinBody {
		before := s.batchRawHits.Load()
		if status, _, _ := s.BatchBody(body); status != 200 {
			t.Fatal("repeat failed")
		}
		if s.batchRawHits.Load() != before+1 {
			t.Fatal("repeated large body did not hit the raw body-front cache")
		}
	}
	// Statz must surface all three counters.
	if stz := statzOf(t, s); stz.Batch.Deduped == 0 || stz.Batch.CacheHits == 0 {
		t.Fatalf("statz batch counters not folded: %+v", stz.Batch)
	}
}

func statzOf(t *testing.T, s *Server) StatzResponse {
	t.Helper()
	srv := newTestServerFrom(t, s)
	var stz StatzResponse
	if code := getJSON(t, srv+"/v1/statz", &stz); code != 200 {
		t.Fatalf("statz status %d", code)
	}
	return stz
}

// TestBatchBodyCap: the request-body byte cap must reject oversized bodies
// with a structured 413 before any JSON decoding, like the /v1/simulate/faulty
// cap, and leave ordinary bodies unaffected.
func TestBatchBodyCap(t *testing.T) {
	s := NewServer()
	s.MaxBatchBody = 512
	srv := newTestServerFrom(t, s)
	huge := strings.NewReader(`{"profiles":[[` + strings.Repeat("1,", 400) + `1]]}`)
	resp, err := http.Post(srv+"/v1/batch", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("413 body not a structured error: %v %v", e, err)
	}
	if code := postJSON(t, srv+"/v1/batch", BatchRequest{Profiles: [][]float64{{1, 0.5}}}, nil); code != 200 {
		t.Fatalf("small body rejected: status %d", code)
	}
}

// TestBatchErrorsNotCached: a malformed large body must fail identically on
// every attempt (nothing cached by the raw front), and a valid large body
// afterwards must succeed.
func TestBatchErrorsNotCached(t *testing.T) {
	s := NewServer()
	bad := []byte(`{"profiles":[[` + strings.Repeat("1,", batchRawMinBody/2) + `7]]}`) // ρ=7 > 1
	if len(bad) < batchRawMinBody {
		t.Fatal("bad body too short to engage the raw front")
	}
	for i := 0; i < 2; i++ {
		status, _, msg := s.BatchBody(bad)
		if status != 400 || !strings.Contains(msg, "exceeds 1") {
			t.Fatalf("attempt %d: status %d msg %q", i, status, msg)
		}
	}
	if s.batchRawCache.counters().size != 0 {
		t.Fatal("error response was cached in the raw body-front")
	}
}

// TestDedupeProfiles covers the grouping helper directly, including the
// hash-collision guard (equality check, not hash equality, decides).
func TestDedupeProfiles(t *testing.T) {
	a := profile.MustNew(1, 0.5)
	b := profile.MustNew(1, 0.25)
	uniq, canon, dups := dedupeProfiles([]profile.Profile{a, b, a, a})
	if len(uniq) != 2 || uniq[0] != 0 || uniq[1] != 1 {
		t.Fatalf("uniq = %v", uniq)
	}
	if dups != 2 {
		t.Fatalf("dups = %d, want 2", dups)
	}
	want := []int{0, 1, 0, 0}
	for i, c := range canon {
		if c != want[i] {
			t.Fatalf("canon = %v, want %v", canon, want)
		}
	}
	if hashProfileBits(a) == hashProfileBits(b) {
		t.Fatal("distinct profiles collide (suspicious hash)")
	}
	// Prefix profiles must not collide via length confusion.
	if hashProfileBits(profile.MustNew(1)) == hashProfileBits(profile.MustNew(1, 1)) {
		t.Fatal("length not mixed into the profile hash")
	}
}

// TestBatchDecodeHandParser pins the in-place profiles parser against
// encoding/json semantics: float spellings decode identically (both sides
// bottom out in strconv.ParseFloat), whitespace is insignificant, unknown
// keys are skipped, a duplicate "profiles" key restarts rather than
// appends, and every malformed shape is rejected with the right status.
func TestBatchDecodeHandParser(t *testing.T) {
	s := NewServer()
	// Exponent/sign spellings plus aggressive whitespace must serve the
	// exact bytes of the plainly-spelled equivalent batch.
	spelled := []byte("{ \"unknown\" : {\"nested\": [1, \"x\"]},\n\t\"profiles\" : [ [ 1e0 , 5E-1 ] ,\r\n [0.25, 2.5e-1, 5e-1] ] }")
	status, resp, msg := s.BatchBody(spelled)
	if status != 200 {
		t.Fatalf("spelled batch: status %d: %s", status, msg)
	}
	want := expectedBatchBody(t, [][]float64{{1, 0.5}, {0.25, 0.25, 0.5}})
	if !bytes.Equal(resp, want) {
		t.Fatalf("spelled batch diverges:\ngot  %.200q\nwant %.200q", resp, want)
	}
	// A duplicate "profiles" key takes the last value, like encoding/json.
	status, resp, msg = s.BatchBody([]byte(`{"profiles":[[1]],"profiles":[[0.5,0.5]]}`))
	if status != 200 {
		t.Fatalf("duplicate key: status %d: %s", status, msg)
	}
	if want := expectedBatchBody(t, [][]float64{{0.5, 0.5}}); !bytes.Equal(resp, want) {
		t.Fatalf("duplicate key did not take the last value: %.200q", resp)
	}
	bad := []struct {
		name, body, wantMsg string
		status              int
	}{
		{"profiles_null", `{"profiles":null}`, "profiles must be non-empty", 400},
		{"profiles_empty", `{"profiles":[ ]}`, "profiles must be non-empty", 400},
		{"profiles_object", `{"profiles":{"a":1}}`, "profiles must be an array of arrays", 400},
		{"element_scalar", `{"profiles":[1]}`, "profiles[0] must be an array of numbers", 400},
		{"element_null", `{"profiles":[[1],null]}`, "profiles[1] must be an array of numbers", 400},
		{"rho_string", `{"profiles":[["a"]]}`, "profiles[0]: ρ values must be numbers", 400},
		{"rho_bool", `{"profiles":[[1],[true]]}`, "profiles[1]: ρ values must be numbers", 400},
		{"rho_nested", `{"profiles":[[[1]]]}`, "profiles[0]: ρ values must be numbers", 400},
		{"rho_invalid", `{"profiles":[[-1]]}`, "profiles[0]: ", 400},
		{"trailing_garbage", "{\"profiles\":[[1]]} x", "invalid JSON", 400},
		{"not_an_object", `[[1]]`, "invalid JSON", 400},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			status, _, msg := s.BatchBody([]byte(tc.body))
			if status != tc.status {
				t.Fatalf("status %d (%s), want %d", status, msg, tc.status)
			}
			if !strings.Contains(msg, tc.wantMsg) {
				t.Fatalf("msg %q does not contain %q", msg, tc.wantMsg)
			}
		})
	}
}
