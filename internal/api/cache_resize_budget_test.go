package api

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// bodyForBudgetKey derives a ~300-byte body from its key so any entry found
// in the cache can be verified against its key alone, no matter how many
// resizes and evictions it survived.
func bodyForBudgetKey(key string) []byte {
	return []byte(fmt.Sprintf(`{"key":%q,"pad":%q}`, key, strings.Repeat(key, 280/len(key))))
}

// auditShardBudgets walks every shard under the resize epoch and checks the
// byte-budget invariants an entry surviving a resize must respect: the
// shard's resident bytes never exceed its per-shard budget, and the bytes
// account reconciles exactly with the sum of its entries' costs. It returns
// the audited totals.
func auditShardBudgets(t *testing.T, c *responseCache) (entries int, bytesTotal int64) {
	t.Helper()
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	for i := range c.set.shards {
		sh := &c.set.shards[i]
		sh.mu.Lock()
		if sh.byteBudget > 0 && sh.bytes > sh.byteBudget {
			sh.mu.Unlock()
			t.Fatalf("shard %d holds %d bytes over its budget %d", i, sh.bytes, sh.byteBudget)
		}
		var sum int64
		for el := sh.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			sum += entryCost(e.key, e.body)
			if !bytes.Equal(e.body, bodyForBudgetKey(e.key)) {
				sh.mu.Unlock()
				t.Fatalf("shard %d entry %q corrupted", i, e.key)
			}
		}
		if sum != sh.bytes {
			sh.mu.Unlock()
			t.Fatalf("shard %d bytes account drifted: recorded %d, recomputed %d", i, sh.bytes, sum)
		}
		entries += sh.order.Len()
		bytesTotal += sh.bytes
		sh.mu.Unlock()
	}
	return entries, bytesTotal
}

// TestResizeRoundTripUnderByteBudget is the -race contract for the full
// grow-then-shrink round trip with the byte budget ACTIVE (small enough that
// evictions run throughout): entries surviving each migration must respect
// the per-shard budgets with an exactly-reconciling bytes account, bodies
// must stay key-consistent, and a concurrent herd on a fresh key must still
// evaluate exactly once per key even while migrations and budget evictions
// interleave with the flights.
func TestResizeRoundTripUnderByteBudget(t *testing.T) {
	const (
		keyspace   = 1024
		goroutines = 8
		iters      = 300
		budget     = 64 << 10 // holds ~200 of the ~330-byte entries: evictions guaranteed
	)
	c := newCache(cacheOptions{entries: 4096, maxBytes: budget, coalesce: true, adaptive: true})
	c.checkEvery = 8
	base := c.Shards()

	// Phase 1 — grow under contention while the budget evicts. Keys may be
	// legitimately re-evaluated here (the budget evicts them between visits),
	// so correctness is body-vs-key, not eval counts.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := (g + it*goroutines) % keyspace
				key := fmt.Sprintf("budget|%04d", k)
				h := hashString(key)
				body, ok := c.lookupStr(h, key)
				if !ok {
					var err error
					body, _, err = c.fillStr(h, key, func() ([]byte, error) {
						return bodyForBudgetKey(key), nil
					})
					if err != nil {
						t.Errorf("fill %s: %v", key, err)
						return
					}
				}
				if !bytes.Equal(body, bodyForBudgetKey(key)) {
					t.Errorf("key %s served wrong body", key)
					return
				}
				c.maybeResize()
			}
		}(g)
	}
	wg.Wait()
	grown := c.Shards()
	if grown <= base {
		t.Fatalf("no adaptive growth (%d → %d): the round trip is vacuous", base, grown)
	}
	ct := c.counters()
	if ct.evicted == 0 {
		t.Fatalf("no evictions with a %d-byte budget: the budget was never active", budget)
	}
	if _, total := auditShardBudgets(t, c); total > budget {
		t.Fatalf("resident bytes %d exceed the cache budget %d after growth", total, budget)
	}

	// Phase 2 — shrink: same traffic, windows now classified cold. Herd
	// rounds ride along: all goroutines fill one fresh key concurrently and
	// it must evaluate exactly once, flights interleaving with downward
	// migrations and evictions.
	c.hotWindow = 0
	c.shrinkIdle = 0
	const herdRounds = 64
	var herdEvals [herdRounds]atomic.Int64
	for round := 0; round < herdRounds; round++ {
		key := fmt.Sprintf("budget|herd-%04d", round)
		h := hashString(key)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body, _, err := c.fillStr(h, key, func() ([]byte, error) {
					herdEvals[round].Add(1)
					return bodyForBudgetKey(key), nil
				})
				if err != nil {
					t.Errorf("herd fill %s: %v", key, err)
					return
				}
				if !bytes.Equal(body, bodyForBudgetKey(key)) {
					t.Errorf("herd key %s served wrong body", key)
				}
				c.maybeResize()
			}()
		}
		wg.Wait()
		// Background gets keep cold windows crossing so shrink evaluations
		// actually trigger between herds.
		for i := 0; i < 32; i++ {
			c.Get(fmt.Sprintf("budget|%04d", i))
			c.maybeResize()
		}
	}
	for round := range herdEvals {
		if n := herdEvals[round].Load(); n != 1 {
			t.Fatalf("herd round %d evaluated %d times, want exactly once", round, n)
		}
	}
	if got := c.Shards(); got >= grown {
		t.Fatalf("no shrink after contention subsided (still %d shards, grew to %d)", got, grown)
	}
	if _, total := auditShardBudgets(t, c); total > budget {
		t.Fatalf("resident bytes %d exceed the cache budget %d after shrink", total, budget)
	}
	if after := c.counters(); after.resizes < 2 {
		t.Fatalf("resizes %d cannot cover a grow-then-shrink round trip", after.resizes)
	}
}
