package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"

	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
)

// The POST /v1/batch hot path. The paper makes cluster power a function of
// the profile alone, so the production traffic shape is "score a large
// population of profiles against one parameter set" — repeated sweeps where
// whole request bodies, individual profiles within a request, and profiles
// across requests all recur. This file layers three reuse mechanisms over
// the size-adaptive evaluation kernel (incr.ScheduleBatch):
//
//  1. A raw body-front cache: the exact request body is the key, so a
//     repeated sweep (identical bytes) is served without JSON decoding or
//     evaluation, singleflight-coalesced like the /v1/measure raw layer.
//  2. Within-request dedupe: bit-identical profiles in one batch are
//     grouped by a float-bits hash and evaluated once.
//  3. The canonical measure cache: unique profiles of at least
//     batchCacheMinProfile ρ-values consult and populate the same
//     canonical-key cache /v1/measure uses, so a batch warm-up serves later
//     GET /v1/measure traffic and vice versa.
//
// Responses are assembled from the per-profile rendered fragments
// (appendMeasureResponse bytes, the same bodies the measure cache stores),
// byte-identical to json.Encoder on BatchResponse — the golden equivalence
// tests pin both identities.

// DefaultMaxBody caps every POST request body when the Server does not
// override it: 16 MiB, sized so a full MaxBatchProfiles batch of moderate
// profiles fits while a hostile stream cannot balloon decode memory. One
// cap covers all POST endpoints (/v1/batch, /v1/simulate/faulty,
// /v1/schedule, /v1/design) so raising it for batch traffic never leaves a
// stale per-endpoint cap behind.
const DefaultMaxBody = 16 << 20

// DefaultMaxBatchBody is the historical name of DefaultMaxBody, kept so
// existing configuration code keeps compiling.
//
// Deprecated: use DefaultMaxBody.
const DefaultMaxBatchBody = DefaultMaxBody

// batchRawMinBody is the body length at which the raw body-front cache
// engages — same rationale and value as the measure raw layer's query gate:
// below it, decoding costs little and caching exact spellings would only
// dilute the LRU.
const batchRawMinBody = rawFastPathMinQuery

// batchCacheMinProfile is the smallest profile (in ρ-values) the batch path
// will read or write through the canonical measure cache. Below it the
// canonical key build and shard lock cost more than re-evaluating, and tiny
// batch entries would thrash the LRU that /v1/measure hits depend on.
const batchCacheMinProfile = 128

// maxBody resolves the Server's unified POST body cap: MaxBody wins, then
// the deprecated MaxBatchBody, then the package default.
func (s *Server) maxBody() int {
	if s.MaxBody > 0 {
		return s.MaxBody
	}
	if s.MaxBatchBody > 0 {
		return s.MaxBatchBody
	}
	return DefaultMaxBody
}

// BatchBody runs the POST /v1/batch hot path for a raw request body without
// the HTTP layer: raw body-front cache, JSON decode, dedupe, size-adaptive
// evaluation, byte-exact assembly. It returns the HTTP status and, for
// status 200, the fully buffered response body (newline-terminated,
// matching json.Encoder). It exists so cmd/benchbatch and the equivalence
// tests can measure the batch engine proper, free of net/http overhead; the
// HTTP handler streams oversized responses instead (see batchstream.go) and
// only takes this buffered path below the streaming threshold.
func (s *Server) BatchBody(body []byte) (status int, resp []byte, msg string) {
	s.ensureBatchCaches()
	defer s.drainResizes()

	// Raw body-front lookup: for large bodies the exact bytes are a cache
	// key checked before any decoding, so a repeated sweep costs one hash
	// instead of a decode + evaluation. The profile count rides on the
	// entry's meta (stored at admission), so a hit never re-parses bytes.
	front := len(body) >= batchRawMinBody && s.batchRawCache != nil && s.batchRawCache.capacity > 0
	var key string
	var h uint64
	if front {
		key = string(body)
		h = hashString(key)
		if resp, meta, ok := s.batchRawCache.lookupStrMeta(h, key); ok {
			s.batchRawHits.Add(1)
			s.noteBatchCached(resp, meta)
			return 200, resp, ""
		}
	}
	// Spill tier: a response for these exact body bytes may be on disk —
	// evicted, stream-teed, or (in write-through mode) persisted at
	// admission and surviving a restart — consulted after the memory
	// front, before any decoding or evaluation. A hit is promoted back
	// into the memory front (with its sniffed profile count as meta) by
	// the fill.
	if front {
		if sb, ok := s.spillGet(spillLayerBatch, key); ok {
			resp, meta, _, err := s.batchRawCache.fillStrMeta(h, key, func() ([]byte, int64, error) {
				var count int64
				if n, ok := batchCountFromBody(sb); ok {
					count = int64(n)
				}
				return sb, count, nil
			})
			if err == nil {
				s.noteBatchCached(resp, meta)
				return 200, resp, ""
			}
		}
	}
	m, profiles, status, msg := s.decodeBatchRequest(body)
	if status != 0 {
		return status, nil, msg
	}
	s.noteBatch(len(profiles))
	if !front {
		return 200, s.renderBatchBuffered(m, profiles), ""
	}
	// Errors were rejected above, before the cache layer — the fill can only
	// publish valid bodies, and a herd of identical misses still evaluates
	// once (each waiter decoded for itself, which it needed anyway to learn
	// whether the response should stream).
	resp, _, coalesced, err := s.batchRawCache.fillStrMeta(h, key, func() ([]byte, int64, error) {
		return s.renderBatchBuffered(m, profiles), int64(len(profiles)), nil
	})
	if err != nil {
		return 500, nil, err.Error()
	}
	if coalesced {
		s.batchRawHits.Add(1)
	}
	return 200, resp, ""
}

// ensureBatchCaches lazily builds the cache layers for zero-constructed
// Server literals (Handler does the same once for the HTTP path).
func (s *Server) ensureBatchCaches() {
	if s.cache == nil {
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.batchRawCache == nil {
		s.batchRawCache = newResponseCache(s.cache.capacity)
	}
}

// noteBatch bumps the /v1/statz batch counters for one served request of n
// profiles.
func (s *Server) noteBatch(n int) {
	s.batchRequests.Add(1)
	s.batchProfiles.Add(uint64(n))
}

// noteBatchCached counts one request served from the raw body-front. The
// profile count comes from the entry's admission-time meta; entries
// predating the meta (or hand-inserted) fall back to sniffing the body, and
// when even that fails the request is counted under the explicit
// profiles_unknown statz counter instead of silently contributing zero.
func (s *Server) noteBatchCached(resp []byte, meta int64) {
	if meta > 0 {
		s.noteBatch(int(meta))
		return
	}
	if n, ok := batchCountFromBody(resp); ok {
		s.noteBatch(n)
		return
	}
	s.batchRequests.Add(1)
	s.batchProfilesUnknown.Add(1)
}

// batchCountFromBody recovers the profile count from a rendered batch
// response, which starts `{"count":N,...` when buffered. ok = false means
// the body does not carry a leading count (a streamed response terminated
// by an error trailer, or foreign bytes) — callers must treat the count as
// unknown rather than zero.
func batchCountFromBody(b []byte) (int, bool) {
	const pre = `{"count":`
	if len(b) < len(pre)+1 || string(b[:len(pre)]) != pre {
		return 0, false
	}
	n, digits := 0, 0
	for _, c := range b[len(pre):] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
		digits++
	}
	if digits == 0 {
		return 0, false
	}
	return n, true
}

// decodeBatchRequest parses and validates one POST /v1/batch body. A zero
// status means success; otherwise status/msg describe the rejection. It is
// shared by the buffered and streaming paths, so validation happens exactly
// once per request, before any cache admission or byte is written.
//
// The profiles array is decoded by profilesField's hand parser over the
// value's bytes in place, with one reusable ρ scratch buffer, so decode-side
// peak memory is the validated profiles plus O(largest single profile) —
// json.Unmarshal into [][]float64 would hold a second full copy (plus
// append-growth garbage) live at once, which on a MaxBatchProfiles batch
// dwarfs everything the streaming render path saves. Oversized batches are
// rejected as soon as the count crosses MaxBatchProfiles, before the
// remaining profiles are decoded at all.
func (s *Server) decodeBatchRequest(body []byte) (m model.Params, profiles []profile.Profile, status int, msg string) {
	m = s.Defaults
	var req struct {
		Profiles profilesField `json:"profiles"`
		Params   *model.Params `json:"params"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		if req.Profiles.status != 0 {
			return m, nil, req.Profiles.status, req.Profiles.msg
		}
		return m, nil, 400, "invalid JSON: " + err.Error()
	}
	if len(req.Profiles.profiles) == 0 {
		return m, nil, 400, "profiles must be non-empty"
	}
	if req.Params != nil {
		m = *req.Params
	}
	if err := m.Validate(); err != nil {
		return m, nil, 400, err.Error()
	}
	return m, req.Profiles.profiles, 0, ""
}

// profilesField decodes the "profiles" key of a batch request. Its
// UnmarshalJSON receives the array's bytes as a subslice of the request body
// (encoding/json does not copy the value for a custom unmarshaler) and
// parses them directly — faster than reflection-driven [][]float64 decoding
// and without its full second copy of every ρ. A rejection is carried in
// status/msg (413 over-limit, 400 shape/validation) alongside the returned
// error, so decodeBatchRequest can answer with the precise status.
type profilesField struct {
	profiles []profile.Profile
	status   int
	msg      string
}

// errBatchReject aborts json.Unmarshal once profilesField has recorded a
// rejection; the recorded status/msg carry the real diagnosis.
var errBatchReject = errors.New("batch request rejected")

func (pf *profilesField) fail(status int, msg string) error {
	pf.status, pf.msg = status, msg
	return errBatchReject
}

// UnmarshalJSON parses `[[ρ,...],...]` in place. json.Unmarshal has already
// syntax-checked the whole body (checkValid runs before any decoding), so
// data is well-formed JSON and the parser only decides shape: every element
// must be an array of numbers that profile.New accepts.
func (pf *profilesField) UnmarshalJSON(data []byte) error {
	pf.profiles = nil // duplicate "profiles" keys restart, like encoding/json
	i := skipJSONSpace(data, 0)
	if i < len(data) && data[i] == 'n' { // null: same as absent
		return nil
	}
	if i >= len(data) || data[i] != '[' {
		return pf.fail(400, "profiles must be an array of arrays")
	}
	i = skipJSONSpace(data, i+1)
	if i < len(data) && data[i] == ']' {
		return nil
	}
	var scratch []float64
	for i < len(data) {
		if len(pf.profiles) >= MaxBatchProfiles {
			return pf.fail(413, fmt.Sprintf("batch exceeds the limit of %d profiles; shard across requests", MaxBatchProfiles))
		}
		if data[i] != '[' {
			return pf.fail(400, fmt.Sprintf("profiles[%d] must be an array of numbers", len(pf.profiles)))
		}
		i = skipJSONSpace(data, i+1)
		scratch = scratch[:0]
		for i < len(data) && data[i] != ']' {
			start := i
			for i < len(data) && data[i] != ',' && data[i] != ']' && !isJSONSpace(data[i]) {
				i++
			}
			f, err := strconv.ParseFloat(string(data[start:i]), 64)
			if err != nil {
				return pf.fail(400, fmt.Sprintf("profiles[%d]: ρ values must be numbers", len(pf.profiles)))
			}
			scratch = append(scratch, f)
			i = skipJSONSpace(data, i)
			if i < len(data) && data[i] == ',' {
				i = skipJSONSpace(data, i+1)
			}
		}
		i++ // past the inner ']'
		p, err := profile.New(scratch...)
		if err != nil {
			return pf.fail(400, fmt.Sprintf("profiles[%d]: %v", len(pf.profiles), err))
		}
		pf.profiles = append(pf.profiles, p)
		i = skipJSONSpace(data, i)
		if i < len(data) && data[i] == ',' {
			i = skipJSONSpace(data, i+1)
			continue
		}
		break // the outer ']'
	}
	return nil
}

func isJSONSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func skipJSONSpace(data []byte, i int) int {
	for i < len(data) && isJSONSpace(data[i]) {
		i++
	}
	return i
}

// renderBatchBuffered dedupes, evaluates and assembles one decoded batch
// request into a single body — the cacheable rendering. Peak memory is
// O(sum of fragment sizes); responses estimated above the streaming
// threshold take writeBatchStream instead (HTTP path only).
func (s *Server) renderBatchBuffered(m model.Params, profiles []profile.Profile) []byte {
	// Dedupe bit-identical profiles within the request: repeated sweeps
	// often carry the same candidate many times, and every duplicate shares
	// its representative's rendered fragment.
	uniq, canon, dups := dedupeProfiles(profiles)
	s.batchDeduped.Add(uint64(dups))

	frags := s.renderUnique(m, profiles, uniq)

	// Assemble `{"count":N,"results":[f1,f2,...]}` + '\n' from the fragments
	// (each a full measure body whose trailing newline is stripped) —
	// byte-identical to json.Encoder on BatchResponse.
	est := 32
	for _, f := range frags {
		est += len(f) + 1
	}
	out := make([]byte, 0, est)
	out = append(out, `{"count":`...)
	out = strconv.AppendInt(out, int64(len(profiles)), 10)
	out = append(out, `,"results":[`...)
	for i := range profiles {
		if i > 0 {
			out = append(out, ',')
		}
		f := frags[canon[i]]
		out = append(out, f[:len(f)-1]...)
	}
	out = append(out, ']', '}', '\n')
	return out
}

// renderUnique produces the rendered measure fragment for every unique
// profile (indices into profiles), consulting the canonical cache for
// profiles large enough to be worth it and scheduling the remaining
// evaluations size-adaptively: large profiles run the chunked
// within-profile kernel sequentially across the pool, the rest fan out
// largest-first. Fragment values are independent of the schedule —
// incr.MeasureProfile is worker-count-invariant — so /v1/batch stays
// bit-identical to /v1/measure in every regime.
func (s *Server) renderUnique(m model.Params, profiles []profile.Profile, uniq []int) [][]byte {
	frags := make([][]byte, len(uniq))
	useCache := s.cache != nil && s.cache.capacity > 0

	// Cache consult pass: resolve what memory already holds, so the
	// scheduling decision below sees only the profiles that truly need
	// evaluation.
	type job struct {
		u   int    // index into uniq/frags
		key string // canonical key; "" = bypass the cache
	}
	var jobs []job
	for u, i := range uniq {
		p := profiles[i]
		if !useCache || len(p) < batchCacheMinProfile {
			jobs = append(jobs, job{u: u})
			continue
		}
		key := string(appendCanonicalKey(make([]byte, 0, 26*(len(p)+3)), m, p))
		if body, ok := s.cache.lookupStr(hashString(key), key); ok {
			s.batchCanonHits.Add(1)
			frags[u] = body
			continue
		}
		jobs = append(jobs, job{u: u, key: key})
	}

	jobProfiles := make([]profile.Profile, len(jobs))
	for j, jb := range jobs {
		jobProfiles[j] = profiles[uniq[jb.u]]
	}
	render := func(jb job) []byte {
		p := profiles[uniq[jb.u]]
		eval := func(workers int) ([]byte, error) {
			fm := incr.MeasureProfile(m, p, workers)
			return appendMeasureResponse(make([]byte, 0, 20*(len(p)+6)), p, fm), nil
		}
		if jb.key == "" {
			body, _ := eval(1)
			return body
		}
		// Through the canonical cache: the fill populates the same entry
		// /v1/measure serves from, and coalesces with any concurrent measure
		// request for the same cluster.
		workers := 1
		if len(p) >= incr.ScheduleLargeCutover {
			workers = 0
		}
		body, _, _ := s.cache.fillStr(hashString(jb.key), jb.key, func() ([]byte, error) {
			return eval(workers)
		})
		return body
	}

	sched := incr.ScheduleBatch(jobProfiles, 0)
	for _, j := range sched.Large {
		frags[jobs[j].u] = render(jobs[j])
	}
	weights := make([]int, len(sched.Small))
	for k, j := range sched.Small {
		weights[k] = len(jobProfiles[j])
	}
	parallel.ForEachLargestFirst(0, weights, func(k int) {
		j := sched.Small[k]
		frags[jobs[j].u] = render(jobs[j])
	})
	return frags
}

// dedupeProfiles groups bit-identical profiles: uniq lists one
// representative index per distinct profile (in first-appearance order),
// canon[i] is the position in uniq of profile i's representative, and dups
// counts the entries that collapsed onto an earlier one. Identity is exact
// float64 equality — profiles are validated finite and positive, so == has
// no NaN corner — and candidates are pre-grouped by a hash of the raw float
// bits, with an equality check guarding against hash collisions.
func dedupeProfiles(profiles []profile.Profile) (uniq []int, canon []int, dups int) {
	canon = make([]int, len(profiles))
	reps := make(map[uint64][]int, len(profiles))
	for i, p := range profiles {
		h := hashProfileBits(p)
		found := -1
		for _, u := range reps[h] {
			if equalProfile(profiles[uniq[u]], p) {
				found = u
				break
			}
		}
		if found < 0 {
			found = len(uniq)
			uniq = append(uniq, i)
			reps[h] = append(reps[h], found)
		} else {
			dups++
		}
		canon[i] = found
	}
	return uniq, canon, dups
}

// hashProfileBits is FNV-1a over the length and the IEEE-754 bits of every
// ρ — no canonical-key build, no allocation.
func hashProfileBits(p profile.Profile) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(p)))
	for _, rho := range p {
		mix(math.Float64bits(rho))
	}
	return h
}

func equalProfile(a, b profile.Profile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drainResizes evaluates any pending contention-adaptive shard resizes.
// Must run outside every cache operation (maybeResize takes the resize
// epoch exclusively), which is why the request paths call it last.
func (s *Server) drainResizes() {
	if s.cache != nil {
		s.cache.maybeResize()
	}
	if s.rawCache != nil {
		s.rawCache.maybeResize()
	}
	if s.batchRawCache != nil {
		s.batchRawCache.maybeResize()
	}
}
