package api

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
)

// The POST /v1/batch hot path. The paper makes cluster power a function of
// the profile alone, so the production traffic shape is "score a large
// population of profiles against one parameter set" — repeated sweeps where
// whole request bodies, individual profiles within a request, and profiles
// across requests all recur. This file layers three reuse mechanisms over
// the size-adaptive evaluation kernel (incr.ScheduleBatch):
//
//  1. A raw body-front cache: the exact request body is the key, so a
//     repeated sweep (identical bytes) is served without JSON decoding or
//     evaluation, singleflight-coalesced like the /v1/measure raw layer.
//  2. Within-request dedupe: bit-identical profiles in one batch are
//     grouped by a float-bits hash and evaluated once.
//  3. The canonical measure cache: unique profiles of at least
//     batchCacheMinProfile ρ-values consult and populate the same
//     canonical-key cache /v1/measure uses, so a batch warm-up serves later
//     GET /v1/measure traffic and vice versa.
//
// Responses are assembled from the per-profile rendered fragments
// (appendMeasureResponse bytes, the same bodies the measure cache stores),
// byte-identical to json.Encoder on BatchResponse — the golden equivalence
// tests pin both identities.

// DefaultMaxBatchBody caps the POST /v1/batch request body when the Server
// does not override it: 16 MiB, sized so a full MaxBatchProfiles batch of
// moderate profiles fits while a hostile stream cannot balloon decode
// memory. (The /v1/simulate/faulty cap is 1 MiB; batch bodies are
// legitimately larger.)
const DefaultMaxBatchBody = 16 << 20

// batchRawMinBody is the body length at which the raw body-front cache
// engages — same rationale and value as the measure raw layer's query gate:
// below it, decoding costs little and caching exact spellings would only
// dilute the LRU.
const batchRawMinBody = rawFastPathMinQuery

// batchCacheMinProfile is the smallest profile (in ρ-values) the batch path
// will read or write through the canonical measure cache. Below it the
// canonical key build and shard lock cost more than re-evaluating, and tiny
// batch entries would thrash the LRU that /v1/measure hits depend on.
const batchCacheMinProfile = 128

// maxBatchBody resolves the Server's batch body cap.
func (s *Server) maxBatchBody() int {
	if s.MaxBatchBody > 0 {
		return s.MaxBatchBody
	}
	return DefaultMaxBatchBody
}

// BatchBody runs the POST /v1/batch hot path for a raw request body without
// the HTTP layer: raw body-front cache, JSON decode, dedupe, size-adaptive
// evaluation, byte-exact assembly. It returns the HTTP status and, for
// status 200, the response body (newline-terminated, matching
// json.Encoder). It exists so cmd/benchbatch and the equivalence tests can
// measure the batch engine proper, free of net/http overhead.
func (s *Server) BatchBody(body []byte) (status int, resp []byte, msg string) {
	if s.cache == nil {
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.batchRawCache == nil {
		s.batchRawCache = newResponseCache(s.cache.capacity)
	}
	status, resp, msg = s.batchFront(body)
	s.drainResizes()
	return status, resp, msg
}

// batchFront is the raw body-front layer: for large bodies the exact bytes
// are a cache key checked before any decoding, so a repeated sweep costs one
// hash instead of a decode + evaluation. Errors carry through the
// singleflight as statusError and are never cached; the mapping body →
// response is deterministic, so a stale-looking entry still serves correct
// bytes.
func (s *Server) batchFront(body []byte) (int, []byte, string) {
	if len(body) < batchRawMinBody || s.batchRawCache == nil || s.batchRawCache.capacity <= 0 {
		return s.batchCompute(body)
	}
	key := string(body)
	h := hashString(key)
	if resp, ok := s.batchRawCache.lookupStr(h, key); ok {
		s.batchRawHits.Add(1)
		s.noteBatch(batchCountFromBody(resp))
		return 200, resp, ""
	}
	resp, coalesced, err := s.batchRawCache.fillStr(h, key, func() ([]byte, error) {
		st, b, m := s.batchCompute(body)
		if st != 200 {
			return nil, &statusError{status: st, msg: m}
		}
		return b, nil
	})
	if err != nil {
		if se, ok := err.(*statusError); ok {
			return se.status, nil, se.msg
		}
		return 500, nil, err.Error()
	}
	if coalesced {
		// The computing request counted itself inside batchCompute; a
		// coalesced waiter is its own request and counts here.
		s.batchRawHits.Add(1)
		s.noteBatch(batchCountFromBody(resp))
	}
	return 200, resp, ""
}

// noteBatch bumps the /v1/statz batch counters for one served request of n
// profiles.
func (s *Server) noteBatch(n int) {
	s.batchRequests.Add(1)
	s.batchProfiles.Add(uint64(n))
}

// batchCountFromBody recovers the profile count from a rendered batch
// response, which always starts `{"count":N,...` — so raw-layer hits keep
// the statz profile counter exact without decoding the body.
func batchCountFromBody(b []byte) int {
	const pre = `{"count":`
	if len(b) < len(pre) || string(b[:len(pre)]) != pre {
		return 0
	}
	n := 0
	for _, c := range b[len(pre):] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// batchCompute decodes, validates, dedupes, evaluates and renders one batch
// request — everything below the raw body-front layer.
func (s *Server) batchCompute(body []byte) (int, []byte, string) {
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return 400, nil, "invalid JSON: " + err.Error()
	}
	if len(req.Profiles) == 0 {
		return 400, nil, "profiles must be non-empty"
	}
	if len(req.Profiles) > MaxBatchProfiles {
		return 413, nil, fmt.Sprintf("batch of %d profiles exceeds the limit of %d; shard across requests", len(req.Profiles), MaxBatchProfiles)
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	if err := m.Validate(); err != nil {
		return 400, nil, err.Error()
	}
	profiles := make([]profile.Profile, len(req.Profiles))
	for i, rhos := range req.Profiles {
		p, err := profile.New(rhos...)
		if err != nil {
			return 400, nil, fmt.Sprintf("profiles[%d]: %v", i, err)
		}
		profiles[i] = p
	}
	s.noteBatch(len(profiles))

	// Dedupe bit-identical profiles within the request: repeated sweeps
	// often carry the same candidate many times, and every duplicate shares
	// its representative's rendered fragment.
	uniq, canon, dups := dedupeProfiles(profiles)
	s.batchDeduped.Add(uint64(dups))

	frags := s.renderUnique(m, profiles, uniq)

	// Assemble `{"count":N,"results":[f1,f2,...]}` + '\n' from the fragments
	// (each a full measure body whose trailing newline is stripped) —
	// byte-identical to json.Encoder on BatchResponse.
	est := 32
	for _, f := range frags {
		est += len(f) + 1
	}
	out := make([]byte, 0, est)
	out = append(out, `{"count":`...)
	out = strconv.AppendInt(out, int64(len(profiles)), 10)
	out = append(out, `,"results":[`...)
	for i := range profiles {
		if i > 0 {
			out = append(out, ',')
		}
		f := frags[canon[i]]
		out = append(out, f[:len(f)-1]...)
	}
	out = append(out, ']', '}', '\n')
	return 200, out, ""
}

// renderUnique produces the rendered measure fragment for every unique
// profile (indices into profiles), consulting the canonical cache for
// profiles large enough to be worth it and scheduling the remaining
// evaluations size-adaptively: large profiles run the chunked
// within-profile kernel sequentially across the pool, the rest fan out
// largest-first. Fragment values are independent of the schedule —
// incr.MeasureProfile is worker-count-invariant — so /v1/batch stays
// bit-identical to /v1/measure in every regime.
func (s *Server) renderUnique(m model.Params, profiles []profile.Profile, uniq []int) [][]byte {
	frags := make([][]byte, len(uniq))
	useCache := s.cache != nil && s.cache.capacity > 0

	// Cache consult pass: resolve what memory already holds, so the
	// scheduling decision below sees only the profiles that truly need
	// evaluation.
	type job struct {
		u   int    // index into uniq/frags
		key string // canonical key; "" = bypass the cache
	}
	var jobs []job
	for u, i := range uniq {
		p := profiles[i]
		if !useCache || len(p) < batchCacheMinProfile {
			jobs = append(jobs, job{u: u})
			continue
		}
		key := string(appendCanonicalKey(make([]byte, 0, 26*(len(p)+3)), m, p))
		if body, ok := s.cache.lookupStr(hashString(key), key); ok {
			s.batchCanonHits.Add(1)
			frags[u] = body
			continue
		}
		jobs = append(jobs, job{u: u, key: key})
	}

	jobProfiles := make([]profile.Profile, len(jobs))
	for j, jb := range jobs {
		jobProfiles[j] = profiles[uniq[jb.u]]
	}
	render := func(jb job) []byte {
		p := profiles[uniq[jb.u]]
		eval := func(workers int) ([]byte, error) {
			fm := incr.MeasureProfile(m, p, workers)
			return appendMeasureResponse(make([]byte, 0, 20*(len(p)+6)), p, fm), nil
		}
		if jb.key == "" {
			body, _ := eval(1)
			return body
		}
		// Through the canonical cache: the fill populates the same entry
		// /v1/measure serves from, and coalesces with any concurrent measure
		// request for the same cluster.
		workers := 1
		if len(p) >= incr.ScheduleLargeCutover {
			workers = 0
		}
		body, _, _ := s.cache.fillStr(hashString(jb.key), jb.key, func() ([]byte, error) {
			return eval(workers)
		})
		return body
	}

	sched := incr.ScheduleBatch(jobProfiles, 0)
	for _, j := range sched.Large {
		frags[jobs[j].u] = render(jobs[j])
	}
	weights := make([]int, len(sched.Small))
	for k, j := range sched.Small {
		weights[k] = len(jobProfiles[j])
	}
	parallel.ForEachLargestFirst(0, weights, func(k int) {
		j := sched.Small[k]
		frags[jobs[j].u] = render(jobs[j])
	})
	return frags
}

// dedupeProfiles groups bit-identical profiles: uniq lists one
// representative index per distinct profile (in first-appearance order),
// canon[i] is the position in uniq of profile i's representative, and dups
// counts the entries that collapsed onto an earlier one. Identity is exact
// float64 equality — profiles are validated finite and positive, so == has
// no NaN corner — and candidates are pre-grouped by a hash of the raw float
// bits, with an equality check guarding against hash collisions.
func dedupeProfiles(profiles []profile.Profile) (uniq []int, canon []int, dups int) {
	canon = make([]int, len(profiles))
	reps := make(map[uint64][]int, len(profiles))
	for i, p := range profiles {
		h := hashProfileBits(p)
		found := -1
		for _, u := range reps[h] {
			if equalProfile(profiles[uniq[u]], p) {
				found = u
				break
			}
		}
		if found < 0 {
			found = len(uniq)
			uniq = append(uniq, i)
			reps[h] = append(reps[h], found)
		} else {
			dups++
		}
		canon[i] = found
	}
	return uniq, canon, dups
}

// hashProfileBits is FNV-1a over the length and the IEEE-754 bits of every
// ρ — no canonical-key build, no allocation.
func hashProfileBits(p profile.Profile) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(p)))
	for _, rho := range p {
		mix(math.Float64bits(rho))
	}
	return h
}

func equalProfile(a, b profile.Profile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drainResizes evaluates any pending contention-adaptive shard resizes.
// Must run outside every cache operation (maybeResize takes the resize
// epoch exclusively), which is why the request paths call it last.
func (s *Server) drainResizes() {
	if s.cache != nil {
		s.cache.maybeResize()
	}
	if s.rawCache != nil {
		s.rawCache.maybeResize()
	}
	if s.batchRawCache != nil {
		s.batchRawCache.maybeResize()
	}
}
