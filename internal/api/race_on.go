//go:build race

package api

// raceEnabled reports whether the race detector is compiled in; the
// allocation gates skip under -race because instrumentation allocates.
const raceEnabled = true
