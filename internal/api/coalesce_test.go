package api

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetero/internal/stats"
)

// measureOutcome is one /v1/measure result in comparable form.
type measureOutcome struct {
	status int
	body   string
	msg    string
}

func measureOutcomeOf(s *Server, rawQuery string) measureOutcome {
	sc := measureScratchPool.Get().(*measureScratch)
	status, body, msg := s.measure(sc, rawQuery)
	measureScratchPool.Put(sc)
	return measureOutcome{status, string(body), msg}
}

// bigProfileVal renders a profile value long enough to engage the raw-query
// front layer (and with it the batcher's raw submission flavor).
func bigProfileVal(seed uint64, n int) string {
	rng := stats.NewRNG(seed)
	var sb strings.Builder
	sb.WriteString("1")
	for i := 1; i < n; i++ {
		fmt.Fprintf(&sb, ",0.%03d", 1+rng.Uint64()%999)
	}
	return sb.String()
}

// coalesceQuerySet builds the golden-test traffic: small parsed-flavor
// queries (sensitivity sweeps over a shared profile, plus distinct
// profiles), large raw-flavor sweeps, spelling variants that unify at the
// canonical layer, error shapes at both flavors, and exact duplicates.
func coalesceQuerySet(t *testing.T) []string {
	t.Helper()
	shared := "1,0.5,0.25,0.125,0.0625"
	big1 := bigProfileVal(1, 900)
	big2 := bigProfileVal(2, 900)
	if len(big1) < rawFastPathMinQuery {
		t.Fatalf("big profile value too short to engage raw front: %d < %d",
			len(big1), rawFastPathMinQuery)
	}
	var qs []string
	for i := 0; i < 24; i++ {
		qs = append(qs, fmt.Sprintf("profile=%s&tau=0.%02d", shared, i+1))
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 12; i++ {
		qs = append(qs, fmt.Sprintf("profile=1,0.%03d,0.%03d&pi=0.5",
			1+rng.Uint64()%999, 1+rng.Uint64()%999))
	}
	for i := 0; i < 12; i++ {
		big := big1
		if i%2 == 1 {
			big = big2
		}
		qs = append(qs, fmt.Sprintf("profile=%s&tau=0.%02d", big, i+1))
	}
	qs = append(qs,
		"profile="+shared+"&tau=0.0100", // same float as tau=0.01: canonical twin
		"profile="+shared+"&tau=0.01",
		"tau=0.1",                  // missing profile (parsed flavor)
		"profile=1,0.5&tau=abc",    // bad tau (parsed flavor)
		"profile=1,0.5,xyz",        // bad ρ (parsed flavor)
		"profile=1,2",              // ρ > 1 (parsed flavor)
		"profile="+big1+"&tau=abc", // bad tau (raw flavor)
		"profile=2,"+big1,          // ρ > 1 (raw flavor)
	)
	return append(qs, qs...) // exact duplicates ride the singleflight/hit paths
}

func truncOutcome(o measureOutcome) string {
	body := o.body
	if len(body) > 160 {
		body = body[:160] + "..."
	}
	return fmt.Sprintf("(%d, %q, %q)", o.status, body, o.msg)
}

// TestCoalescedMeasureByteIdentical is the golden gate the issue demands:
// with coalescing on, every response — success or error, parsed or raw
// flavor, hit or miss — must be byte-identical to the uncoalesced server's.
func TestCoalescedMeasureByteIdentical(t *testing.T) {
	qs := coalesceQuerySet(t)
	base := NewServer()
	want := make(map[string]measureOutcome, len(qs))
	for _, q := range qs {
		if _, ok := want[q]; !ok {
			want[q] = measureOutcomeOf(base, q)
		}
	}

	srv := NewServer()
	srv.EnableCoalesce(CoalesceConfig{MaxBatch: 16, MaxWait: time.Millisecond})
	defer srv.CloseCoalesce()

	const workers = 8
	errs := make(chan string, len(qs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(qs); i += workers {
				q := qs[i]
				if got, exp := measureOutcomeOf(srv, q), want[q]; got != exp {
					name := q
					if len(name) > 80 {
						name = name[:80] + "..."
					}
					errs <- fmt.Sprintf("query %q:\n got %s\nwant %s",
						name, truncOutcome(got), truncOutcome(exp))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	srv.CloseCoalesce()
	b := srv.batcher
	if b.submitted.Load() == 0 {
		t.Error("batcher accepted no submissions; the coalesced path was not exercised")
	}
	if sub, ans := b.submitted.Load(), b.answered.Load(); sub != ans {
		t.Errorf("submitted %d but answered %d: items lost or double-delivered", sub, ans)
	}
	if sub, fi := b.submitted.Load(), b.flushItems.Load(); sub != fi {
		t.Errorf("submitted %d but flushed %d items", sub, fi)
	}
	if b.rawSubmits.Load() == 0 {
		t.Error("no raw-flavor submissions; large queries did not reach the batcher")
	}
	if b.parseErrors.Load() == 0 {
		t.Error("no parse errors recorded; raw-flavor error queries did not reach the flush")
	}
}

// TestCoalesceCollapsesHerd pins the tentpole's core promise: a herd of
// distinct small queries collapses from N pool dispatches into ~N/flush-size
// coalesced flushes, visible in the statz counters.
func TestCoalesceCollapsesHerd(t *testing.T) {
	srv := NewServer()
	srv.EnableCoalesce(CoalesceConfig{MaxBatch: 32, MaxWait: 200 * time.Millisecond})
	defer srv.CloseCoalesce()

	const herd = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			q := fmt.Sprintf("profile=1,0.5,0.25&tau=0.%03d", i+1)
			if status, _ := srv.MeasureQuery(q); status != 200 {
				t.Errorf("query %d: status %d", i, status)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	b := srv.batcher
	if got := b.submitted.Load(); got != herd {
		t.Fatalf("submitted = %d, want %d (distinct keys must all miss and submit)", got, herd)
	}
	if f := b.flushes.Load(); f > herd/4 {
		t.Errorf("herd of %d took %d flushes; want ≤ %d", herd, f, herd/4)
	}
	if mf := b.maxFlush.Load(); mf < herd/4 {
		t.Errorf("max flush = %d, want ≥ %d", mf, herd/4)
	}
	// Every item sweeps the same profile, so each flush holds one group.
	if g, f := b.groups.Load(), b.flushes.Load(); g != f {
		t.Errorf("groups = %d over %d flushes; the shared profile should form one group per flush", g, f)
	}
	if sh := b.sharedItems.Load(); sh < herd/2 {
		t.Errorf("shared items = %d, want ≥ %d", sh, herd/2)
	}
}

// TestCoalesceCloseAnswersPending pins the drain contract: items accepted
// before Close are flushed and answered (status 200), Close returns only
// after, and later submissions fall back inline instead of failing.
func TestCoalesceCloseAnswersPending(t *testing.T) {
	srv := NewServer()
	srv.EnableCoalesce(CoalesceConfig{MaxBatch: 64, MaxWait: 50 * time.Millisecond})

	const pending = 3
	results := make(chan int, pending)
	for i := 0; i < pending; i++ {
		go func(i int) {
			status, _ := srv.MeasureQuery(fmt.Sprintf("profile=1,0.5&tau=0.%d", i+1))
			results <- status
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.batcher.submitted.Load() < pending {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d submissions accepted", srv.batcher.submitted.Load(), pending)
		}
		time.Sleep(100 * time.Microsecond)
	}

	closed := make(chan struct{})
	go func() { srv.CloseCoalesce(); close(closed) }()
	for i := 0; i < pending; i++ {
		select {
		case status := <-results:
			if status != 200 {
				t.Errorf("pending item answered with status %d", status)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending item not answered during drain")
		}
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("CloseCoalesce did not return")
	}
	if ans := srv.batcher.answered.Load(); ans != pending {
		t.Errorf("answered = %d, want %d", ans, pending)
	}

	// After the drain the inline fallback serves new traffic.
	if status, _ := srv.MeasureQuery("profile=1,0.5&tau=0.9"); status != 200 {
		t.Errorf("post-drain request: status %d", status)
	}
	if srv.batcher.fallbacks.Load() == 0 {
		t.Error("post-drain request did not record an inline fallback")
	}
}

// TestCoalesceStressDelivery races many clients against flush timers, tiny
// queues (forcing inline fallbacks), a tiny cache (forcing steady misses),
// and a concurrent drain. Every request must return the exact uncoalesced
// outcome, and the counters must prove exactly-once delivery: each accepted
// submission answered exactly once. Run it under -race to check the scratch
// aliasing and drain protocols.
func TestCoalesceStressDelivery(t *testing.T) {
	big := bigProfileVal(7, 900)
	var queries []string
	for i := 0; i < 16; i++ {
		queries = append(queries, fmt.Sprintf("profile=1,0.5,0.25,0.125&tau=0.%02d", i+1))
	}
	rng := stats.NewRNG(9)
	for i := 0; i < 8; i++ {
		queries = append(queries, fmt.Sprintf("profile=1,0.%03d&delta=0.5", 1+rng.Uint64()%999))
	}
	for i := 0; i < 6; i++ {
		queries = append(queries, fmt.Sprintf("profile=%s&tau=0.%02d", big, i+1))
	}
	queries = append(queries,
		"profile=1,0.5&tau=abc",
		"profile=1,3",
		"profile="+big+"&pi=abc",
	)

	base := NewServer()
	want := make(map[string]measureOutcome, len(queries))
	for _, q := range queries {
		want[q] = measureOutcomeOf(base, q)
	}

	// Cache of 8 entries over ~30 distinct keys: evictions keep the miss —
	// and with it the batcher — hot for the whole run.
	srv := NewServerCacheSize(8)
	srv.EnableCoalesce(CoalesceConfig{MaxBatch: 4, MaxWait: 200 * time.Microsecond, Queue: 8})

	const (
		workers = 16
		iters   = 40
	)
	var done atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(w*31+i*7)%len(queries)]
				if got, exp := measureOutcomeOf(srv, q), want[q]; got != exp {
					select {
					case errs <- fmt.Sprintf("worker %d iter %d:\n got %s\nwant %s",
						w, i, truncOutcome(got), truncOutcome(exp)):
					default:
					}
				}
				// One worker drains the batcher mid-run; everything after
				// falls back inline and must stay byte-identical.
				if w == 0 && i == iters/2 {
					srv.CloseCoalesce()
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	b := srv.batcher
	if sub, ans := b.submitted.Load(), b.answered.Load(); sub != ans {
		t.Errorf("submitted %d but answered %d: items lost or double-delivered", sub, ans)
	}
	if sub, fi := b.submitted.Load(), b.flushItems.Load(); sub != fi {
		t.Errorf("submitted %d but flushed %d items", sub, fi)
	}
	if b.submitted.Load() == 0 {
		t.Error("stress run never reached the batcher")
	}
	if total := done.Load(); total != workers*iters {
		t.Errorf("completed %d of %d requests", total, workers*iters)
	}
}
