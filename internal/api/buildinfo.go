package api

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo is the /v1/statz build block: enough to tell the replicas of a
// heterogeneous fleet apart when diagnosing skew (a hedge-win imbalance is
// read very differently when the slow replica runs last week's build).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	VCS       string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// buildInfo reads the binary's embedded build metadata once; the values are
// process-constant.
var buildInfo = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCS = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
})

// markStarted pins the uptime epoch to the first Handler construction (the
// moment the replica starts serving); uptime falls back to the first statz
// read for servers driven without Handler.
func (s *Server) markStarted() {
	s.startOnce.Do(func() { s.started = time.Now() })
}

// uptime reports how long this replica has been serving.
func (s *Server) uptime() time.Duration {
	s.markStarted()
	return time.Since(s.started)
}
