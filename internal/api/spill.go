package api

import (
	"strings"
	"sync"
	"sync/atomic"

	"hetero/internal/spill"
)

// Spill-tier wiring: internal/spill is the bounded on-disk second-level
// cache under the in-memory response caches. Each memory layer gets an
// eviction sink that offers the evicted (key, body) to a bounded queue;
// one background writer drains it into the store. Reads consult the
// store inside the singleflight fill closures — after every in-memory
// layer, before peer fetch and before local evaluation — so a spill hit
// is promoted back into memory by the normal fill insert and pushed to
// no peer. Keys are namespaced with one layer byte so the three memory
// layers can never alias each other on disk.
const (
	spillLayerCanonical byte = 'c' // canonical measure cache keys
	spillLayerRaw       byte = 'r' // raw-query front keys (incl. compare/speedup prefixes)
	spillLayerBatch     byte = 'b' // /v1/batch raw body-front keys

	// spillQueueEntries and spillQueueMaxBytes bound the evict hand-off
	// queue; beyond either, evictions are dropped (counted) rather than
	// ever blocking a shard lock.
	spillQueueEntries  = 256
	spillQueueMaxBytes = 64 << 20

	// spillFlushMaxBytes bounds the best-effort shutdown flush of
	// still-resident memory entries in write-through mode: CloseSpill
	// stops offering once this many body+key bytes have been handed to
	// the store, so a huge memory tier can't stall a drain indefinitely.
	// Entries already spilled dedupe inside store.Put, so the common
	// warm-shutdown flush touches far less than this ceiling.
	spillFlushMaxBytes = 256 << 20
)

type spillItem struct {
	layer byte
	key   string
	body  []byte
}

// spillTier owns the background evict writer in front of a spill.Store.
type spillTier struct {
	store        *spill.Store
	queue        chan spillItem
	queuedBytes  atomic.Int64
	drops        atomic.Uint64
	failedWrites atomic.Uint64 // store.Put returned false in writeLoop
	flushed      atomic.Uint64 // entries flushed durably by CloseSpill
	writeThrough bool
	closeOnce    sync.Once
	done         chan struct{}
	// closeMu orders late evictions against queue close: offer holds it
	// shared around the send, CloseSpill exclusively around the close.
	closeMu sync.RWMutex
	closed  bool
}

// SpillOptions configures the spill tier's wiring to the memory layers.
type SpillOptions struct {
	// WriteThrough offers every memory-tier insert to the spill queue at
	// admission time (not only on eviction) and adds a bounded
	// best-effort flush of still-resident entries during CloseSpill, so
	// a warm restart re-serves the working set from segment recovery
	// with zero re-evaluations. Off by default: write-through turns the
	// spill writer into a firehose sized to the insert rate, which only
	// pays off when restarts are routine (rolling fleet deploys).
	WriteThrough bool
}

// EnableSpill attaches store as the evict-to-disk tier under every
// response-cache layer. Call before serving traffic; pair with
// CloseSpill on shutdown (after the HTTP server has drained). The
// server takes ownership: CloseSpill closes the store.
func (s *Server) EnableSpill(store *spill.Store) {
	s.EnableSpillOptions(store, SpillOptions{})
}

// EnableSpillOptions is EnableSpill with explicit options (write-through
// durability mode for heterod's -spill-write-through flag).
func (s *Server) EnableSpillOptions(store *spill.Store, opts SpillOptions) {
	if s.cache == nil {
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.rawCache == nil {
		s.rawCache = newResponseCache(s.cache.capacity)
	}
	if s.batchRawCache == nil {
		s.batchRawCache = newResponseCache(s.cache.capacity)
	}
	t := &spillTier{
		store:        store,
		queue:        make(chan spillItem, spillQueueEntries),
		done:         make(chan struct{}),
		writeThrough: opts.WriteThrough,
	}
	go t.writeLoop()
	s.spill = t
	s.cache.setEvictSink(func(key string, body []byte) { t.offer(spillLayerCanonical, key, body) })
	s.rawCache.setEvictSink(func(key string, body []byte) { t.offer(spillLayerRaw, key, body) })
	s.batchRawCache.setEvictSink(func(key string, body []byte) { t.offer(spillLayerBatch, key, body) })
	if opts.WriteThrough {
		s.cache.setInsertSink(func(key string, body []byte) { t.offer(spillLayerCanonical, key, body) })
		s.rawCache.setInsertSink(func(key string, body []byte) { t.offer(spillLayerRaw, key, body) })
		s.batchRawCache.setInsertSink(func(key string, body []byte) { t.offer(spillLayerBatch, key, body) })
	}
}

// CloseSpill stops the evict writer (draining queued entries), flushes
// still-resident memory entries in write-through mode (bounded by
// spillFlushMaxBytes), and closes the store. Call after the HTTP server
// has stopped accepting requests. No-op when spill is off.
func (s *Server) CloseSpill() {
	t := s.spill
	if t == nil {
		return
	}
	t.closeOnce.Do(func() {
		t.closeMu.Lock()
		t.closed = true
		close(t.queue)
		t.closeMu.Unlock()
		<-t.done
		if t.writeThrough {
			s.flushResident(t)
		}
		t.store.Close()
	})
}

// flushResident offers every still-resident memory entry to the store
// directly (the queue is closed by now), best-effort and bounded: the
// write-through queue already carried the steady state to disk, so this
// pass exists to catch entries whose offers were dropped at the queue
// bound. References are snapshotted under the shard locks (bodies are
// immutable) and written after, so no disk I/O runs under a lock.
func (s *Server) flushResident(t *spillTier) {
	var pending []spillItem
	var budget int64 = spillFlushMaxBytes
	snapshot := func(layer byte) func(key string, body []byte) bool {
		return func(key string, body []byte) bool {
			cost := int64(len(key) + len(body))
			if cost > budget {
				return false
			}
			budget -= cost
			pending = append(pending, spillItem{layer: layer, key: key, body: body})
			return true
		}
	}
	if s.cache != nil {
		s.cache.forEachEntry(snapshot(spillLayerCanonical))
	}
	if s.rawCache != nil {
		s.rawCache.forEachEntry(snapshot(spillLayerRaw))
	}
	if s.batchRawCache != nil {
		s.batchRawCache.forEachEntry(snapshot(spillLayerBatch))
	}
	for _, it := range pending {
		if t.store.Put(spillKey(it.layer, it.key), it.body) {
			t.flushed.Add(1)
		} else {
			t.failedWrites.Add(1)
		}
	}
}

// offer hands an evicted (or, in write-through mode, freshly admitted)
// entry to the writer without ever blocking: it runs under a cache shard
// lock. Over-full queues drop (counted). The byte bound is reserved with
// an atomic add BEFORE the send and undone on every rejection path —
// a load-then-add check would let concurrent offers each observe room
// and overshoot the bound together.
func (t *spillTier) offer(layer byte, key string, body []byte) {
	cost := int64(len(key) + len(body))
	if t.queuedBytes.Add(cost) > spillQueueMaxBytes {
		t.queuedBytes.Add(-cost)
		t.drops.Add(1)
		return
	}
	t.closeMu.RLock()
	defer t.closeMu.RUnlock()
	if t.closed {
		t.queuedBytes.Add(-cost)
		t.drops.Add(1)
		return
	}
	select {
	case t.queue <- spillItem{layer: layer, key: key, body: body}:
	default:
		t.queuedBytes.Add(-cost)
		t.drops.Add(1)
	}
}

func (t *spillTier) writeLoop() {
	defer close(t.done)
	for it := range t.queue {
		if !t.store.Put(spillKey(it.layer, it.key), it.body) {
			t.failedWrites.Add(1)
		}
		t.queuedBytes.Add(-int64(len(it.key) + len(it.body)))
	}
}

func spillKey(layer byte, key string) string {
	return string(layer) + key
}

// spillBatchKey builds the batch-layer store key straight from the raw
// body bytes in a single allocation — the only O(body) allocation on the
// streamed spill-hit path (the peak-memory bound benchserve certifies).
func spillBatchKey(body []byte) string {
	var b strings.Builder
	b.Grow(1 + len(body))
	b.WriteByte(spillLayerBatch)
	b.Write(body)
	return b.String()
}

// spillGet consults the disk tier for a memory-layer key. Callers sit
// inside a singleflight fill closure, so a hit is promoted back into
// the memory tier by the insert that follows the closure's return.
func (s *Server) spillGet(layer byte, key string) ([]byte, bool) {
	t := s.spill
	if t == nil {
		return nil, false
	}
	return t.store.Get(spillKey(layer, key))
}

// spillOpenStream pins a CRC-verified streaming handle for a batch-layer
// key so the streamed render path can serve the body fragment-by-
// fragment in O(chunk) memory. nil when spill is off or the key misses.
func (s *Server) spillOpenStream(key string) (*spill.Entry, bool) {
	return s.spillOpenStreamKey(spillKey(spillLayerBatch, key))
}

// spillOpenStreamKey is spillOpenStream for a pre-built store key
// (spillBatchKey), sparing the hit path a second O(body) copy.
func (s *Server) spillOpenStreamKey(storeKey string) (*spill.Entry, bool) {
	t := s.spill
	if t == nil {
		return nil, false
	}
	return t.store.OpenVerified(storeKey)
}

// spillBegin starts a streamed tee of a batch response into the spill
// tier; nil when spill is off (callers must tolerate nil).
func (s *Server) spillBegin(key string) *spill.Appender {
	return s.spillBeginKey(spillKey(spillLayerBatch, key))
}

// spillBeginKey is spillBegin for a pre-built store key (spillBatchKey).
func (s *Server) spillBeginKey(storeKey string) *spill.Appender {
	t := s.spill
	if t == nil {
		return nil
	}
	return t.store.Begin(storeKey)
}

// SpillStats is the /v1/statz view of the on-disk spill tier.
type SpillStats struct {
	Enabled          bool   `json:"enabled"`
	WriteThrough     bool   `json:"write_through"`
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Writes           uint64 `json:"writes"`
	DroppedWrites    uint64 `json:"dropped_writes"` // offers dropped at the hand-off queue
	FailedWrites     uint64 `json:"failed_writes"`  // store.Put failures in the writer/flush
	FlushedWrites    uint64 `json:"flushed_writes"` // entries the shutdown flush made durable
	Rejected         uint64 `json:"rejected"`       // entries over the whole disk budget
	Corrupt          uint64 `json:"corrupt"`        // CRC failures read as misses
	RetiredSegments  uint64 `json:"retired_segments"`
	Compactions      uint64 `json:"compactions"`
	CompactDeferred  uint64 `json:"compact_deferred"`  // kicks coalesced behind an in-progress pass
	CompactThrottles uint64 `json:"compact_throttles"` // rate-budget sleeps in the compactor
	CompactedBytes   uint64 `json:"compacted_bytes"`   // live bytes rewritten by compaction
	Segments         int    `json:"segments"`
	Entries          int    `json:"entries"`
	Bytes            int64  `json:"bytes"`
	DeadBytes        int64  `json:"dead_bytes"`
	MaxBytes         int64  `json:"max_bytes"`
	IndexBytes       int64  `json:"index_bytes"`
	MaxIndexBytes    int64  `json:"max_index_bytes"`
}

// SpillStatsNow snapshots the spill tier's statz block (zero value when
// the tier is off) — the handle cmd/benchserve's sweep regime asserts hit
// and corruption counters through, like Cluster().Stats() for the fleet.
func (s *Server) SpillStatsNow() SpillStats { return s.spillStats() }

func (s *Server) spillStats() SpillStats {
	t := s.spill
	if t == nil {
		return SpillStats{}
	}
	st := t.store.Stats()
	return SpillStats{
		Enabled:          true,
		WriteThrough:     t.writeThrough,
		Hits:             st.Hits,
		Misses:           st.Misses,
		Writes:           st.Writes,
		DroppedWrites:    t.drops.Load(),
		FailedWrites:     t.failedWrites.Load(),
		FlushedWrites:    t.flushed.Load(),
		Rejected:         st.Rejected,
		Corrupt:          st.Corrupt,
		RetiredSegments:  st.RetiredSegments,
		Compactions:      st.Compactions,
		CompactDeferred:  st.CompactDeferred,
		CompactThrottles: st.CompactThrottles,
		CompactedBytes:   st.CompactedBytes,
		Segments:         st.Segments,
		Entries:          st.Entries,
		Bytes:            st.DiskBytes,
		DeadBytes:        st.DeadBytes,
		MaxBytes:         st.MaxBytes,
		IndexBytes:       st.IndexBytes,
		MaxIndexBytes:    st.MaxIndexBytes,
	}
}
