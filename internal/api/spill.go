package api

import (
	"strings"
	"sync"
	"sync/atomic"

	"hetero/internal/spill"
)

// Spill-tier wiring: internal/spill is the bounded on-disk second-level
// cache under the in-memory response caches. Each memory layer gets an
// eviction sink that offers the evicted (key, body) to a bounded queue;
// one background writer drains it into the store. Reads consult the
// store inside the singleflight fill closures — after every in-memory
// layer, before peer fetch and before local evaluation — so a spill hit
// is promoted back into memory by the normal fill insert and pushed to
// no peer. Keys are namespaced with one layer byte so the three memory
// layers can never alias each other on disk.
const (
	spillLayerCanonical byte = 'c' // canonical measure cache keys
	spillLayerRaw       byte = 'r' // raw-query front keys (incl. compare/speedup prefixes)
	spillLayerBatch     byte = 'b' // /v1/batch raw body-front keys

	// spillQueueEntries and spillQueueMaxBytes bound the evict hand-off
	// queue; beyond either, evictions are dropped (counted) rather than
	// ever blocking a shard lock.
	spillQueueEntries  = 256
	spillQueueMaxBytes = 64 << 20
)

type spillItem struct {
	layer byte
	key   string
	body  []byte
}

// spillTier owns the background evict writer in front of a spill.Store.
type spillTier struct {
	store       *spill.Store
	queue       chan spillItem
	queuedBytes atomic.Int64
	drops       atomic.Uint64
	closeOnce   sync.Once
	done        chan struct{}
	// closeMu orders late evictions against queue close: offer holds it
	// shared around the send, CloseSpill exclusively around the close.
	closeMu sync.RWMutex
	closed  bool
}

// EnableSpill attaches store as the evict-to-disk tier under every
// response-cache layer. Call before serving traffic; pair with
// CloseSpill on shutdown (after the HTTP server has drained). The
// server takes ownership: CloseSpill closes the store.
func (s *Server) EnableSpill(store *spill.Store) {
	if s.cache == nil {
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.rawCache == nil {
		s.rawCache = newResponseCache(s.cache.capacity)
	}
	if s.batchRawCache == nil {
		s.batchRawCache = newResponseCache(s.cache.capacity)
	}
	t := &spillTier{
		store: store,
		queue: make(chan spillItem, spillQueueEntries),
		done:  make(chan struct{}),
	}
	go t.writeLoop()
	s.spill = t
	s.cache.setEvictSink(func(key string, body []byte) { t.offer(spillLayerCanonical, key, body) })
	s.rawCache.setEvictSink(func(key string, body []byte) { t.offer(spillLayerRaw, key, body) })
	s.batchRawCache.setEvictSink(func(key string, body []byte) { t.offer(spillLayerBatch, key, body) })
}

// CloseSpill stops the evict writer (draining queued entries) and
// closes the store. Call after the HTTP server has stopped accepting
// requests. No-op when spill is off.
func (s *Server) CloseSpill() {
	t := s.spill
	if t == nil {
		return
	}
	t.closeOnce.Do(func() {
		t.closeMu.Lock()
		t.closed = true
		close(t.queue)
		t.closeMu.Unlock()
		<-t.done
		t.store.Close()
	})
}

// offer hands an evicted entry to the writer without ever blocking:
// it runs under a cache shard lock. Over-full queues drop (counted).
func (t *spillTier) offer(layer byte, key string, body []byte) {
	cost := int64(len(key) + len(body))
	if t.queuedBytes.Load()+cost > spillQueueMaxBytes {
		t.drops.Add(1)
		return
	}
	t.closeMu.RLock()
	defer t.closeMu.RUnlock()
	if t.closed {
		t.drops.Add(1)
		return
	}
	select {
	case t.queue <- spillItem{layer: layer, key: key, body: body}:
		t.queuedBytes.Add(cost)
	default:
		t.drops.Add(1)
	}
}

func (t *spillTier) writeLoop() {
	defer close(t.done)
	for it := range t.queue {
		t.store.Put(spillKey(it.layer, it.key), it.body)
		t.queuedBytes.Add(-int64(len(it.key) + len(it.body)))
	}
}

func spillKey(layer byte, key string) string {
	return string(layer) + key
}

// spillBatchKey builds the batch-layer store key straight from the raw
// body bytes in a single allocation — the only O(body) allocation on the
// streamed spill-hit path (the peak-memory bound benchserve certifies).
func spillBatchKey(body []byte) string {
	var b strings.Builder
	b.Grow(1 + len(body))
	b.WriteByte(spillLayerBatch)
	b.Write(body)
	return b.String()
}

// spillGet consults the disk tier for a memory-layer key. Callers sit
// inside a singleflight fill closure, so a hit is promoted back into
// the memory tier by the insert that follows the closure's return.
func (s *Server) spillGet(layer byte, key string) ([]byte, bool) {
	t := s.spill
	if t == nil {
		return nil, false
	}
	return t.store.Get(spillKey(layer, key))
}

// spillOpenStream pins a CRC-verified streaming handle for a batch-layer
// key so the streamed render path can serve the body fragment-by-
// fragment in O(chunk) memory. nil when spill is off or the key misses.
func (s *Server) spillOpenStream(key string) (*spill.Entry, bool) {
	return s.spillOpenStreamKey(spillKey(spillLayerBatch, key))
}

// spillOpenStreamKey is spillOpenStream for a pre-built store key
// (spillBatchKey), sparing the hit path a second O(body) copy.
func (s *Server) spillOpenStreamKey(storeKey string) (*spill.Entry, bool) {
	t := s.spill
	if t == nil {
		return nil, false
	}
	return t.store.OpenVerified(storeKey)
}

// spillBegin starts a streamed tee of a batch response into the spill
// tier; nil when spill is off (callers must tolerate nil).
func (s *Server) spillBegin(key string) *spill.Appender {
	return s.spillBeginKey(spillKey(spillLayerBatch, key))
}

// spillBeginKey is spillBegin for a pre-built store key (spillBatchKey).
func (s *Server) spillBeginKey(storeKey string) *spill.Appender {
	t := s.spill
	if t == nil {
		return nil
	}
	return t.store.Begin(storeKey)
}

// SpillStats is the /v1/statz view of the on-disk spill tier.
type SpillStats struct {
	Enabled         bool   `json:"enabled"`
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Writes          uint64 `json:"writes"`
	DroppedWrites   uint64 `json:"dropped_writes"` // evictions dropped at the hand-off queue
	Rejected        uint64 `json:"rejected"`       // entries over the whole disk budget
	Corrupt         uint64 `json:"corrupt"`        // CRC failures read as misses
	RetiredSegments uint64 `json:"retired_segments"`
	Compactions     uint64 `json:"compactions"`
	Segments        int    `json:"segments"`
	Entries         int    `json:"entries"`
	Bytes           int64  `json:"bytes"`
	DeadBytes       int64  `json:"dead_bytes"`
	MaxBytes        int64  `json:"max_bytes"`
	IndexBytes      int64  `json:"index_bytes"`
	MaxIndexBytes   int64  `json:"max_index_bytes"`
}

// SpillStatsNow snapshots the spill tier's statz block (zero value when
// the tier is off) — the handle cmd/benchserve's sweep regime asserts hit
// and corruption counters through, like Cluster().Stats() for the fleet.
func (s *Server) SpillStatsNow() SpillStats { return s.spillStats() }

func (s *Server) spillStats() SpillStats {
	t := s.spill
	if t == nil {
		return SpillStats{}
	}
	st := t.store.Stats()
	return SpillStats{
		Enabled:         true,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Writes:          st.Writes,
		DroppedWrites:   t.drops.Load(),
		Rejected:        st.Rejected,
		Corrupt:         st.Corrupt,
		RetiredSegments: st.RetiredSegments,
		Compactions:     st.Compactions,
		Segments:        st.Segments,
		Entries:         st.Entries,
		Bytes:           st.DiskBytes,
		DeadBytes:       st.DeadBytes,
		MaxBytes:        st.MaxBytes,
		IndexBytes:      st.IndexBytes,
		MaxIndexBytes:   st.MaxIndexBytes,
	}
}
