package api

import (
	"bytes"
	"strings"
	"testing"
)

// largePairQuery builds a /v1/compare query (p1, p2) big enough to clear the
// raw front gate, with round-trippable float spellings.
func largePairQuery(n int, seed1, seed2 uint64) string {
	q := "p1=" + largeTestQuery(n, seed1)[len("profile="):] +
		"&p2=" + largeTestQuery(n, seed2)[len("profile="):]
	return q
}

// TestCompareRawFrontCacheHit: a repeated large /v1/compare query must be
// served from the raw front byte-identically, and the hit must show up in
// the shared raw cache's counters (which statz folds into RawHits).
func TestCompareRawFrontCacheHit(t *testing.T) {
	s := NewServer()
	srv := newTestServerFrom(t, s)
	q := largePairQuery(512, 21, 22)
	if len(q) < rawFastPathMinQuery {
		t.Fatalf("query too small (%d bytes) to engage the raw front", len(q))
	}
	url := srv + "/v1/compare?" + q
	code1, miss := getBody(t, url)
	hitsBefore := s.rawCache.counters().hits
	code2, hit := getBody(t, url)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d / %d", code1, code2)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatal("raw-front hit served different bytes than the miss")
	}
	if s.rawCache.counters().hits != hitsBefore+1 {
		t.Fatal("second request did not hit the raw front cache")
	}
}

// TestSpeedupRawFrontCacheHit is the same contract for /v1/speedup.
func TestSpeedupRawFrontCacheHit(t *testing.T) {
	s := NewServer()
	srv := newTestServerFrom(t, s)
	// φ must lie below the fastest (smallest) ρ; RandomNormalized floors ρ at
	// ~1e-3, so 1e-4 is always admissible.
	q := largeTestQuery(512, 23) + "&phi=0.0001"
	if len(q) < rawFastPathMinQuery {
		t.Fatalf("query too small (%d bytes) to engage the raw front", len(q))
	}
	url := srv + "/v1/speedup?" + q
	code1, miss := getBody(t, url)
	code2, hit := getBody(t, url)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d / %d", code1, code2)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatal("raw-front hit served different bytes than the miss")
	}
	if s.rawCache.counters().hits == 0 {
		t.Fatal("second request did not hit the raw front cache")
	}
}

// TestRawFrontPrefixNamespacing: one RawQuery string carrying the parameters
// of BOTH endpoints, sent to /v1/compare and /v1/speedup in turn, must cache
// under distinct keys — the per-endpoint prefixes keep a compare body from
// ever being served for a speedup request (or vice versa), even though the
// query strings are identical.
func TestRawFrontPrefixNamespacing(t *testing.T) {
	s := NewServer()
	srv := newTestServerFrom(t, s)
	q := largePairQuery(512, 24, 25) + "&profile=" +
		largeTestQuery(512, 26)[len("profile="):] + "&phi=0.0001"
	codeC1, compare1 := getBody(t, srv+"/v1/compare?"+q)
	codeS1, speedup1 := getBody(t, srv+"/v1/speedup?"+q)
	codeC2, compare2 := getBody(t, srv+"/v1/compare?"+q)
	codeS2, speedup2 := getBody(t, srv+"/v1/speedup?"+q)
	if codeC1 != 200 || codeS1 != 200 || codeC2 != 200 || codeS2 != 200 {
		t.Fatalf("statuses %d/%d/%d/%d", codeC1, codeS1, codeC2, codeS2)
	}
	if !bytes.Equal(compare1, compare2) || !bytes.Equal(speedup1, speedup2) {
		t.Fatal("cached repeats diverged from their misses")
	}
	if bytes.Equal(compare1, speedup1) {
		t.Fatal("compare and speedup served the same body for one query (prefix collision)")
	}
	if !bytes.Contains(compare1, []byte(`"winner"`)) || !bytes.Contains(speedup1, []byte(`"mode"`)) {
		t.Fatalf("responses lost their shapes:\ncompare %.120q\nspeedup %.120q", compare1, speedup1)
	}
}

// TestCompareSpeedupErrorsNotCached: large erroneous queries must fail
// identically on every attempt and leave nothing in the raw cache.
func TestCompareSpeedupErrorsNotCached(t *testing.T) {
	s := NewServer()
	srv := newTestServerFrom(t, s)
	pad := strings.Repeat("0.001,", rawFastPathMinQuery/6)
	badCompare := "/v1/compare?p1=" + pad + "nope&p2=1"
	badSpeedup := "/v1/speedup?profile=" + pad + "1&phi=bogus"
	for i := 0; i < 2; i++ {
		if code, _ := getBody(t, srv+badCompare); code != 400 {
			t.Fatalf("compare attempt %d: status %d, want 400", i, code)
		}
		if code, _ := getBody(t, srv+badSpeedup); code != 400 {
			t.Fatalf("speedup attempt %d: status %d, want 400", i, code)
		}
	}
	if size := s.rawCache.counters().size; size != 0 {
		t.Fatalf("%d error responses cached in the raw front", size)
	}
}

// TestCompareSmallQueryUnaffected: small queries bypass the front layer
// entirely and keep the historical behavior.
func TestCompareSmallQueryUnaffected(t *testing.T) {
	s := NewServer()
	srv := newTestServerFrom(t, s)
	code, body := getBody(t, srv+"/v1/compare?p1=1,0.5&p2=1,1")
	if code != 200 || !bytes.Contains(body, []byte(`"winner"`)) {
		t.Fatalf("status %d body %.120q", code, body)
	}
	if ct := s.rawCache.counters(); ct.size != 0 || ct.hits != 0 {
		t.Fatalf("small query touched the raw front: %+v", ct)
	}
}
