package api

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// The cross-request coalescing admission batcher. Singleflight collapses
// concurrent misses for one key; this layer collapses concurrent misses for
// *different* keys into shared flushes, because herd traffic that misses on
// distinct keys still overlaps enormously: the paper's §4.3 sensitivity
// sweeps issue one parameter point per request over a shared fleet profile,
// and §3's what-if scans perturb one machine of a common base. A flush
// groups items by profile content and pays the profile-sized costs — decode,
// profile moments, response echo — once per distinct
// profile instead of once per request; each item then costs one
// parameter-dependent log-product scan plus its body assembly, and the whole
// flush is one incr dispatch instead of one per miss.
//
// Wiring (see measurepath.go): the batcher sits *under* the existing
// singleflight layers, inside their compute closures, so exactly-once-per-key
// semantics are untouched. Small queries submit after parse + canonical
// lookup, from inside the canonical cache's fill closure (the submitter is
// that key's flight leader). Large queries submit their raw query string
// from inside the raw front's fillStr closure — before any parsing — so the
// flush can share the decode itself. Responses are byte-identical to the
// uncoalesced path: the flush uses the same parse helpers, the same
// JSON renderer and incr helpers that are
// bit-identical to MeasureProfile (see internal/incr/coalesce.go).
//
// Flush policy is the classic bounded batcher: a bounded in-channel, flush
// when MaxBatch items pend or the oldest has waited MaxWait, whichever comes
// first. Every item carries its own buffered response channel; a full queue
// or a draining batcher rejects the submit and the caller falls back to the
// inline path, so the batcher can only ever add bounded latency, never
// unavailability.

// Default admission-batcher tuning: flushes of up to 64 items, sealed after
// at most 2ms — the latency bound a coalesced miss can pay on top of its own
// evaluation. The queue holds a few flushes' worth of items so submitters
// ahead of a slow flush keep their fast-fallback behavior instead of
// blocking.
const (
	DefaultCoalesceMaxBatch = 64
	DefaultCoalesceMaxWait  = 2 * time.Millisecond
)

// CoalesceConfig tunes the admission batcher enabled by EnableCoalesce.
type CoalesceConfig struct {
	// MaxBatch seals a flush at this many items; 0 means
	// DefaultCoalesceMaxBatch.
	MaxBatch int
	// MaxWait seals a flush when its first item has waited this long; 0
	// means DefaultCoalesceMaxWait.
	MaxWait time.Duration
	// Queue bounds the in-channel; 0 means 4×MaxBatch.
	Queue int
}

// coalesceResult is one item's response: the measure outcome exactly as the
// inline path would have produced it.
type coalesceResult struct {
	status int
	body   []byte
	msg    string
}

// coalesceItem is one pending submission. Exactly one flavor is set: raw
// items carry the unparsed query (decoded in the flush, shared per distinct
// profile spelling); parsed items carry the decoded params and profile (the
// submitter already holds that key's canonical flight leadership, so the
// flush computes the body and the submitter's fill publishes it).
//
// A parsed item's rhos alias the submitter's pooled scratch. That is safe
// because the submitter blocks until its response channel delivers — the
// scratch cannot be reused while the flush reads it — but the flush must
// never retain rhos past the response send.
type coalesceItem struct {
	raw      bool
	rawQuery string
	m        model.Params
	rhos     []float64
	resp     chan coalesceResult
	enqueued time.Time
}

// measureBatcher is the admission batcher: one collector goroutine drains
// the bounded channel into flushes.
type measureBatcher struct {
	srv *Server
	cfg CoalesceConfig

	ch   chan coalesceItem
	stop chan struct{}
	done chan struct{}

	// draining rejects new submits; inflight counts submits between
	// acceptance and response delivery. Close waits for inflight to reach
	// zero after setting draining, which guarantees the channel is empty and
	// every accepted item answered before the collector stops.
	draining atomic.Bool
	inflight atomic.Int64

	// Counters surfaced through /v1/statz.
	submitted   atomic.Uint64 // accepted submissions
	rawSubmits  atomic.Uint64 // accepted raw-flavor submissions
	fallbacks   atomic.Uint64 // rejected submits (queue full or draining)
	flushes     atomic.Uint64
	flushItems  atomic.Uint64
	maxFlush    atomic.Uint64
	groups      atomic.Uint64 // distinct profile groups across flushes
	sharedItems atomic.Uint64 // items that shared a group with another item
	parseErrors atomic.Uint64
	answered    atomic.Uint64
	queuedNs    atomic.Uint64 // submit → flush sealed, summed over items
	evalNs      atomic.Uint64 // flush sealed → response sent, summed over items
}

func newMeasureBatcher(srv *Server, cfg CoalesceConfig) *measureBatcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultCoalesceMaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultCoalesceMaxWait
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.MaxBatch
	}
	b := &measureBatcher{
		srv:  srv,
		cfg:  cfg,
		ch:   make(chan coalesceItem, cfg.Queue),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues one item and blocks until its response. ok = false means
// the batcher did not accept it (queue full or draining) and the caller must
// evaluate inline.
func (b *measureBatcher) submit(it coalesceItem) (coalesceResult, bool) {
	// inflight is raised before the draining check: a Close that sets
	// draining after our check finds inflight > 0 and waits for our item, so
	// an accepted item is always answered before the collector stops.
	b.inflight.Add(1)
	if b.draining.Load() {
		b.inflight.Add(-1)
		b.fallbacks.Add(1)
		return coalesceResult{}, false
	}
	it.enqueued = time.Now()
	select {
	case b.ch <- it:
	default:
		b.inflight.Add(-1)
		b.fallbacks.Add(1)
		return coalesceResult{}, false
	}
	b.submitted.Add(1)
	if it.raw {
		b.rawSubmits.Add(1)
	}
	res := <-it.resp
	b.inflight.Add(-1)
	return res, true
}

// submitRaw coalesces one raw-query miss; called from inside the raw
// front's fillStr closure.
func (b *measureBatcher) submitRaw(rawQuery string) (coalesceResult, bool) {
	return b.submit(coalesceItem{
		raw:      true,
		rawQuery: rawQuery,
		resp:     make(chan coalesceResult, 1),
	})
}

// submitParsed coalesces one already-parsed canonical miss; called from
// inside the canonical cache's fill closure, so the caller is the flight
// leader for this key and publishes the returned body itself.
func (b *measureBatcher) submitParsed(m model.Params, rhos []float64) ([]byte, bool) {
	res, ok := b.submit(coalesceItem{
		m:    m,
		rhos: rhos,
		resp: make(chan coalesceResult, 1),
	})
	if !ok {
		return nil, false
	}
	return res.body, true
}

// Close drains the batcher: new submits are rejected (callers fall back
// inline), every accepted item is flushed and answered, then the collector
// stops. Safe to call more than once.
func (b *measureBatcher) Close() {
	if b.draining.Swap(true) {
		<-b.done
		return
	}
	for b.inflight.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(b.stop)
	<-b.done
}

// run is the collector: it seals batches on size or max-wait and flushes
// them. It exits only when Close has proven no item is in flight.
func (b *measureBatcher) run() {
	defer close(b.done)
	batch := make([]coalesceItem, 0, b.cfg.MaxBatch)
	for {
		var first coalesceItem
		select {
		case first = <-b.ch:
		case <-b.stop:
			return
		}
		batch = append(batch[:0], first)
		timer := time.NewTimer(b.cfg.MaxWait)
	collect:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case it := <-b.ch:
				batch = append(batch, it)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.flush(batch)
		for i := range batch {
			batch[i] = coalesceItem{} // drop scratch aliases promptly
		}
	}
}

// coalesceGroup is one distinct profile content within a flush.
type coalesceGroup struct {
	rhos     []float64
	bitsHash uint64
	echo     []byte // rendered profile-echo fragment, built once
}

// profMemo caches the decode of one distinct profile-value spelling within a
// flush.
type profMemo struct {
	rhos   []float64
	group  int
	status int
	msg    string
}

// hashRhoBits hashes the exact float64 bit patterns of a profile — the
// grouping prefilter; groups are confirmed by full comparison.
func hashRhoBits(rhos []float64) uint64 {
	h := uint64(fnvOffset64)
	for _, r := range rhos {
		h ^= math.Float64bits(r)
		h *= fnvPrime64
	}
	return h
}

// flush evaluates one sealed batch: decode (no cache locks), group,
// evaluate (one coalesced incr dispatch), render, answer. The flush
// goroutine never touches a response cache — every submitter is a flight
// leader in the layer it came from (raw front for raw items, canonical for
// parsed ones) and publishes its own body — so it can never deadlock
// against cache locks or a pending adaptive shard resize, and a raw miss's
// per-item cost stays free of the canonical layer's full-key map hashing.
// The one semantic this trades away versus the inline path: a coalesced
// raw miss does not warm the canonical layer, so a later *different*
// spelling of the same cluster re-evaluates instead of hitting. Spelling
// variants within one flush still unify (they share a group), and the raw
// front caches every exact spelling as before.
func (b *measureBatcher) flush(batch []coalesceItem) {
	sealed := time.Now()
	b.flushes.Add(1)
	b.flushItems.Add(uint64(len(batch)))
	for {
		cur := b.maxFlush.Load()
		if uint64(len(batch)) <= cur || b.maxFlush.CompareAndSwap(cur, uint64(len(batch))) {
			break
		}
	}

	responded := make([]bool, len(batch))
	reply := func(i int, res coalesceResult) {
		if responded[i] {
			return
		}
		responded[i] = true
		b.answered.Add(1)
		b.queuedNs.Add(uint64(sealed.Sub(batch[i].enqueued)))
		b.evalNs.Add(uint64(time.Since(sealed)))
		batch[i].resp <- res
	}
	// A panic anywhere below must not strand submitters: answer the
	// leftovers with a 500 and keep the collector alive.
	defer func() {
		if r := recover(); r != nil {
			for i := range batch {
				reply(i, coalesceResult{status: 500, msg: fmt.Sprintf("coalesce flush: %v", r)})
			}
		}
	}()

	// Phase 1: decode. Raw items parse here — params per item, profile once
	// per distinct spelling. Parsed items group by content.
	var (
		groups []coalesceGroup
		memo   map[string]*profMemo
		byHash map[uint64][]int
	)
	findGroup := func(rhos []float64) int {
		h := hashRhoBits(rhos)
		if byHash == nil {
			byHash = make(map[uint64][]int)
		}
		for _, g := range byHash[h] {
			if floatsEqual(groups[g].rhos, rhos) {
				return g
			}
		}
		groups = append(groups, coalesceGroup{rhos: rhos, bitsHash: h})
		g := len(groups) - 1
		byHash[h] = append(byHash[h], g)
		return g
	}

	type itemPlan struct {
		m     model.Params
		group int
		eval  int // index into evalItems, -1 when not evaluated
	}
	plans := make([]itemPlan, len(batch))
	var evalItems []incr.CoalescedItem
	evalOwner := make([]int, 0, len(batch))

	for i := range batch {
		it := &batch[i]
		plans[i].eval = -1
		var m model.Params
		var rhos []float64
		if it.raw {
			q := splitMeasureQuery(it.rawQuery)
			var status int
			var msg string
			m, status, msg = parseMeasureParams(b.srv.Defaults, q)
			if status != 0 {
				b.parseErrors.Add(1)
				reply(i, coalesceResult{status: status, msg: msg})
				continue
			}
			if memo == nil {
				memo = make(map[string]*profMemo)
			}
			pm, ok := memo[q.profileVal]
			if !ok {
				pm = &profMemo{}
				pm.rhos, pm.status, pm.msg = parseProfileValue(q.profileVal, nil)
				if pm.status == 0 {
					pm.group = findGroup(pm.rhos)
				}
				memo[q.profileVal] = pm
			}
			if pm.status != 0 {
				b.parseErrors.Add(1)
				reply(i, coalesceResult{status: pm.status, msg: pm.msg})
				continue
			}
			rhos, plans[i].group = pm.rhos, pm.group
		} else {
			m, rhos = it.m, it.rhos
			plans[i].group = findGroup(rhos)
		}
		plans[i].m = m
		plans[i].eval = len(evalItems)
		evalItems = append(evalItems, incr.CoalescedItem{Params: m, Group: plans[i].group})
		evalOwner = append(evalOwner, i)
		_ = rhos
	}

	b.groups.Add(uint64(len(groups)))

	// Phase 2: one coalesced dispatch for the whole flush.
	uniques := make([]profile.Profile, len(groups))
	groupItems := make([]int, len(groups))
	for g := range groups {
		uniques[g] = profile.Profile(groups[g].rhos)
	}
	for _, i := range evalOwner {
		groupItems[plans[i].group]++
	}
	for g := range groups {
		if groupItems[g] > 1 {
			b.sharedItems.Add(uint64(groupItems[g]))
		}
	}
	b.srv.measureEvals.Add(uint64(len(evalItems)))
	measures := incr.CoalescedMeasure(evalItems, uniques, 0)

	// Phase 3: render — echo fragment once per group, tail per item.
	bodies := make([][]byte, len(batch))
	for _, i := range evalOwner {
		g := plans[i].group
		if groups[g].echo == nil {
			groups[g].echo = appendProfileEcho(make([]byte, 0, 16*len(groups[g].rhos)+16), groups[g].rhos)
		}
		echo := groups[g].echo
		body := make([]byte, len(echo), len(echo)+256)
		copy(body, echo)
		bodies[i] = appendMeasureTail(body, measures[plans[i].eval])
	}

	// Phase 4: answer. Every submitter publishes the body itself — parsed
	// items into the canonical layer (the submitter is that key's flight
	// leader), raw items into the raw front (the submitter is that
	// spelling's flight leader).
	for i := range batch {
		if !responded[i] {
			reply(i, coalesceResult{status: 200, body: bodies[i]})
		}
	}
}

// floatsEqual reports exact element-wise equality of two profiles — the
// grouping confirmation after the bit-hash prefilter. Bit-pattern equality
// (not ==) so grouping can never conflate distinct patterns; values that
// parse from queries are never NaN, but parsed items arrive pre-decoded and
// the comparison must stay exact regardless.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
