package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
)

// Limits on one POST /v1/simulate/faulty request: the simulation is
// O((n + faults)·log n), so these keep worst-case latency bounded. The
// request body itself is capped by the Server-wide MaxBody limit, like
// every other POST endpoint.
const (
	MaxFaultyProfile = 4096
	MaxFaults        = 1024
)

// FaultyRequest is the POST /v1/simulate/faulty body. Outage and blackout
// faults whose "until" is omitted (or zero) are treated as permanent.
type FaultyRequest struct {
	Profile  []float64     `json:"profile"`
	Lifespan float64       `json:"lifespan"`
	Params   *model.Params `json:"params,omitempty"`
	Faults   []fault.Fault `json:"faults,omitempty"`
	Replan   bool          `json:"replan,omitempty"`
}

// decodeFaultyRequest parses and fully validates a /v1/simulate/faulty body
// against the given default parameters. It is the exact surface the fuzz
// harness drives: any body either yields a simulatable input or a
// descriptive error — never a panic, and never NaN/±Inf smuggled into the
// simulation (encoding/json already rejects non-finite literals; the
// validators reject the rest).
func decodeFaultyRequest(defaults model.Params, body []byte) (m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, replan bool, err error) {
	var req FaultyRequest
	if err = json.Unmarshal(body, &req); err != nil {
		err = fmt.Errorf("invalid JSON: %w", err)
		return
	}
	m = defaults
	if req.Params != nil {
		m = *req.Params
	}
	if err = m.Validate(); err != nil {
		return
	}
	if len(req.Profile) > MaxFaultyProfile {
		err = fmt.Errorf("profile of %d computers exceeds the limit of %d", len(req.Profile), MaxFaultyProfile)
		return
	}
	if p, err = profile.New(req.Profile...); err != nil {
		return
	}
	if !(req.Lifespan > 0) || math.IsInf(req.Lifespan, 0) {
		err = fmt.Errorf("lifespan %v must be positive and finite", req.Lifespan)
		return
	}
	lifespan = req.Lifespan
	if len(req.Faults) > MaxFaults {
		err = fmt.Errorf("%d faults exceed the limit of %d", len(req.Faults), MaxFaults)
		return
	}
	plan = fault.Plan{Faults: req.Faults}
	for i := range plan.Faults {
		f := &plan.Faults[i]
		if (f.Kind == fault.Outage || f.Kind == fault.Blackout) && f.Until == 0 {
			f.Until = math.Inf(1)
		}
	}
	if err = plan.Validate(len(p)); err != nil {
		return
	}
	replan = req.Replan
	return
}

func (s *Server) handleSimulateFaulty(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	m, p, lifespan, plan, replan, err := decodeFaultyRequest(s.Defaults, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.faultyRequests.Add(1)
	rep, err := sim.SimulateFaulty(r.Context(), m, p, lifespan, plan, replan, sim.Options{})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadlines.Add(1)
			writeError(w, http.StatusGatewayTimeout, "simulation exceeded the request deadline")
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.countDecisions(rep.Decisions)
	writeJSON(w, http.StatusOK, rep)
}
