package api

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"hetero/internal/spill"
)

// TestSpillOfferBoundUnderRace: concurrent offers must never enqueue more
// than spillQueueMaxBytes. The old load-then-add check let every racing
// offer observe room and overshoot together; the reserve-then-undo scheme
// holds the bound no matter the interleaving. Run with -race (the Makefile
// test target does) to also catch accounting races.
func TestSpillOfferBoundUnderRace(t *testing.T) {
	// No writeLoop: nothing drains the queue, so the byte bound is the
	// only thing standing between the offers and the entry-capacity cap.
	tier := &spillTier{
		queue: make(chan spillItem, spillQueueEntries),
		done:  make(chan struct{}),
	}
	body := make([]byte, 1<<20)
	const goroutines, perG = 32, 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tier.offer(spillLayerCanonical, fmt.Sprintf("k-%d-%d", g, i), body)
			}
		}(g)
	}
	wg.Wait()

	var queued int64
	accepted := 0
drain:
	for {
		select {
		case it := <-tier.queue:
			queued += int64(len(it.key) + len(it.body))
			accepted++
		default:
			break drain
		}
	}
	if queued > spillQueueMaxBytes {
		t.Fatalf("queue held %d bytes, bound is %d", queued, spillQueueMaxBytes)
	}
	if got := tier.queuedBytes.Load(); got != queued {
		t.Fatalf("queuedBytes account %d, actual queued %d", got, queued)
	}
	if drops := tier.drops.Load(); int(drops) != goroutines*perG-accepted {
		t.Fatalf("drops %d + accepted %d != offers %d", drops, accepted, goroutines*perG)
	}
	if accepted == 0 {
		t.Fatal("every offer dropped — bound test exercised nothing")
	}
}

// newWriteThroughServer builds a server whose memory tier comfortably
// holds the working set (nothing evicts — the write-through offers and the
// shutdown flush are the only routes to disk) on top of a spill store in
// dir.
func newWriteThroughServer(t *testing.T, dir string) *Server {
	t.Helper()
	st, err := spill.Open(spill.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServerWithCache(CacheConfig{
		Entries: 256, MaxBytes: 1 << 20, Shards: 1, Coalesce: true,
	})
	s.EnableSpillOptions(st, SpillOptions{WriteThrough: true})
	return s
}

// TestSpillWriteThroughRestartRoundtrip is the tentpole's end-to-end
// contract at the API layer: populate over HTTP-equivalent entry points,
// shut the spill tier down cleanly, reopen the same directory under a
// fresh server (empty memory), and every previously served response —
// point, buffered /v1/batch, and streamed /v1/batch — must come back
// byte-identical with zero re-evaluations.
func TestSpillWriteThroughRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s1 := newWriteThroughServer(t, dir)

	const n = 8
	queries := make([]string, n)
	want := make([][]byte, n)
	for i := range queries {
		queries[i] = fmt.Sprintf("profile=1,0.5,0.%03d", i+101)
		status, body := s1.MeasureQuery(queries[i])
		if status != 200 {
			t.Fatalf("query %d: status %d", i, status)
		}
		want[i] = body
	}
	if s1.cache.counters().evicted != 0 {
		t.Fatal("working set evicted; this test must exercise write-through, not evict-to-disk")
	}
	batchReq := bigBatchBody(t, 7, 450)
	status, wantBatch, msg := s1.BatchBody(batchReq)
	if status != 200 {
		t.Fatalf("batch: %d %s", status, msg)
	}
	streamReq := bigBatchBody(t, 8, 450)
	var streamBuf bytes.Buffer
	if status, msg, err := s1.BatchBodyStream(context.Background(), &streamBuf, streamReq); err != nil || status != 200 {
		t.Fatalf("stream: status %d msg %q err %v", status, msg, err)
	}
	wantStream := append([]byte(nil), streamBuf.Bytes()...)

	// Clean shutdown: drains the write-through queue and flushes whatever
	// the queue bound dropped. Everything served above is now on disk.
	s1.CloseSpill()

	s2 := newWriteThroughServer(t, dir)
	t.Cleanup(s2.CloseSpill)
	for i, q := range queries {
		status, body := s2.MeasureQuery(q)
		if status != 200 {
			t.Fatalf("restart query %d: status %d", i, status)
		}
		if !bytes.Equal(body, want[i]) {
			t.Fatalf("restart query %d diverged:\n got %q\nwant %q", i, body, want[i])
		}
	}
	status, got, msg := s2.BatchBody(batchReq)
	if status != 200 || !bytes.Equal(got, wantBatch) {
		t.Fatalf("restart batch diverged (status %d %s)", status, msg)
	}
	streamBuf.Reset()
	if status, msg, err := s2.BatchBodyStream(context.Background(), &streamBuf, streamReq); err != nil || status != 200 {
		t.Fatalf("restart stream: status %d msg %q err %v", status, msg, err)
	}
	if !bytes.Equal(streamBuf.Bytes(), wantStream) {
		t.Fatal("restart streamed batch diverged")
	}
	if evals := s2.MeasureEvals(); evals != 0 {
		t.Fatalf("restarted server ran %d evaluations, want 0", evals)
	}
	ss := s2.spillStats()
	if !ss.WriteThrough {
		t.Fatal("statz does not report write-through")
	}
	if ss.Hits == 0 {
		t.Fatal("restarted server reported no spill hits")
	}
}

// TestSpillRestartTornTailRecovery: a crash mid-append leaves a torn tail
// on the newest segment; reopening through the API layer must truncate it
// and still serve every fully committed response byte-identically with
// zero re-evaluations.
func TestSpillRestartTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := newWriteThroughServer(t, dir)
	const n = 4
	queries := make([]string, n)
	want := make([][]byte, n)
	for i := range queries {
		queries[i] = fmt.Sprintf("profile=1,0.5,0.%03d", i+301)
		status, body := s1.MeasureQuery(queries[i])
		if status != 200 {
			t.Fatalf("query %d: status %d", i, status)
		}
		want[i] = body
	}
	s1.CloseSpill()

	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err %v)", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A header-sized prefix of garbage: what a record interrupted by a
	// crash before its CRC and body made it to disk looks like.
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x40, 0, 0, 0, 0x40, 0, 0, 0, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := newWriteThroughServer(t, dir)
	t.Cleanup(s2.CloseSpill)
	for i, q := range queries {
		status, body := s2.MeasureQuery(q)
		if status != 200 || !bytes.Equal(body, want[i]) {
			t.Fatalf("post-recovery query %d diverged (status %d)", i, status)
		}
	}
	if evals := s2.MeasureEvals(); evals != 0 {
		t.Fatalf("post-recovery server ran %d evaluations, want 0", evals)
	}
}
