package api

import (
	"bytes"
	"net/http"
	"strconv"

	"hetero/internal/cluster"
)

// Fleet cache tier (see internal/cluster and DESIGN.md S31). When enabled,
// every cache key has one owning replica on a consistent-hash ring; a local
// miss on a peer-owned key fetches the owner's cached bytes (hedged) before
// evaluating, and a local evaluation of a peer-owned key offers the result
// to the owner afterwards — so a fleet of R replicas warms each distinct key
// once instead of R times. The peer protocol serves cached bytes only: a
// get can never trigger an evaluation on the owner, so a fleet-wide cold
// key can never amplify into a fan-out of evaluations.
//
// Both endpoints are POST with the key in the request body, first byte
// selecting the cache layer (cluster.LayerCanonical / cluster.LayerRaw):
//
//	POST /internal/peer/get   body = layer ++ key
//	     → 200 + cached bytes, or 404 when the owner is cold
//	POST /internal/peer/put   body = layer ++ key ++ '\n' ++ response-body
//	     → 204, or 400 when this replica does not own the key / the key is
//	       malformed (canonical keys never contain '\n', and raw keys are
//	       URL query strings, so the framing is unambiguous)
//
// The endpoints are internal: they are exempt from admission control (a
// saturated replica must still answer its peers cheaply) and trust their
// callers to be fleet members — puts are validated for ownership and (for
// the canonical layer) strict key canonicality, but bodies are accepted as
// rendered; the fleet shares one trust domain.

// EnableCluster attaches the peer tier. Call before serving traffic; the
// peer endpoints are always mounted and answer 404 (miss) until a tier is
// attached, so replicas may bind listeners first and learn the fleet
// membership second (as cmd/benchserve does).
func (s *Server) EnableCluster(p *cluster.Peers) { s.cluster = p }

// Cluster returns the attached peer tier (nil when clustering is off).
func (s *Server) Cluster() *cluster.Peers { return s.cluster }

// MeasureEvals reports how many profile evaluations this replica has run on
// the measure path (inline and coalesced-flush), whether or not clustering
// is enabled. The fleet benchmark sums it across replicas to certify that R
// replicas evaluate each distinct key ~once, not ~R times.
func (s *Server) MeasureEvals() uint64 { return s.measureEvals.Load() }

// handlePeerGet serves cached bytes to a fleet peer: 200 with the body on a
// warm key, 404 on a cold one (or when no tier is attached). It never
// evaluates — the never-worse guarantee of the tier rests on misses being
// cheap here.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	req, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	if len(req) < 2 {
		writeError(w, http.StatusBadRequest, "peer get: want layer byte + key")
		return
	}
	layer, key := req[0], req[1:]
	var body []byte
	var found bool
	if s.cluster != nil {
		switch layer {
		case cluster.LayerCanonical:
			// A peer-served hit counts as a local cache hit and refreshes the
			// entry's LRU position: keys a fleet keeps asking for stay warm.
			body, found = s.cache.lookup(hashKey(key), key)
		case cluster.LayerRaw:
			if s.rawCache != nil {
				body, found = s.rawCache.lookupStr(hashKey(key), string(key))
			}
		default:
			writeError(w, http.StatusBadRequest, "peer get: unknown layer")
			return
		}
		if !found && s.servePeerGetFromSpill(w, layer, key) {
			return
		}
	}
	if !found {
		s.servedGetMisses.Add(1)
		w.WriteHeader(http.StatusNotFound)
		return
	}
	s.servedGets.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(body)
}

// servePeerGetFromSpill answers a peer get from the on-disk tier after the
// memory layers miss: an owner that has evicted a key it owns — or was
// restarted since serving it, in write-through mode — still serves the
// cached bytes without an evaluation, which is what keeps the fleet's
// ≤1.25-evals-per-key bound intact across restarts. The handle is fully
// CRC-verified before the first byte is written, so corruption degrades to
// a plain miss (never a bad byte), and the body streams in fixed-size
// chunks (raw-front bodies can be large). The entry is deliberately not
// promoted back into memory: a key only peers are asking for should not
// displace this replica's own working set. Reports whether it wrote a
// response.
func (s *Server) servePeerGetFromSpill(w http.ResponseWriter, layer byte, key []byte) bool {
	var slayer byte
	switch layer {
	case cluster.LayerCanonical:
		slayer = spillLayerCanonical
	case cluster.LayerRaw:
		slayer = spillLayerRaw
	default:
		return false
	}
	ent, ok := s.spillOpenStreamKey(spillKey(slayer, string(key)))
	if !ok {
		return false
	}
	defer ent.Close()
	s.servedGetsSpill.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(ent.BodyLen(), 10))
	buf := make([]byte, spillStreamChunk)
	for off := int64(0); off < ent.BodyLen(); {
		n, err := ent.ReadBodyAt(buf, off)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true
			}
			off += int64(n)
		}
		if err != nil {
			// The record was verified before the 200; a mid-stream read
			// failure truncates the response short of Content-Length, which
			// the peer's HTTP client surfaces as an error (and treats as a
			// miss) — still never a bad byte.
			return true
		}
	}
	return true
}

// handlePeerPut accepts a response body a peer computed for a key this
// replica owns, warming the owner without an evaluation. Rejected (400) when
// no tier is attached, when this replica does not own the key, or when a
// canonical-layer key fails strict ParseCanonicalKey validation — a put can
// therefore only ever add an entry the owner could have computed itself.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	req, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	reject := func(msg string) {
		s.rejectedPuts.Add(1)
		writeError(w, http.StatusBadRequest, msg)
	}
	if s.cluster == nil {
		reject("peer put: cluster tier not enabled")
		return
	}
	if len(req) < 2 {
		reject("peer put: want layer byte + key + '\\n' + body")
		return
	}
	layer, rest := req[0], req[1:]
	nl := bytes.IndexByte(rest, '\n')
	if nl <= 0 || nl == len(rest)-1 {
		reject("peer put: want layer byte + key + '\\n' + body")
		return
	}
	key, body := rest[:nl], rest[nl+1:]
	if _, self := s.cluster.Owner(hashKey(key)); !self {
		reject("peer put: not the owner of this key")
		return
	}
	switch layer {
	case cluster.LayerCanonical:
		if _, _, err := ParseCanonicalKey(string(key)); err != nil {
			reject("peer put: " + err.Error())
			return
		}
		s.cache.Put(string(key), append([]byte(nil), body...))
	case cluster.LayerRaw:
		if s.rawCache == nil || len(key) < rawFastPathMinQuery {
			// The raw front only ever caches large spellings; a small raw key
			// is a protocol violation, not a cache policy question.
			reject("peer put: raw key below front-layer threshold")
			return
		}
		s.rawCache.Put(string(key), append([]byte(nil), body...))
	default:
		reject("peer put: unknown layer")
		return
	}
	s.acceptedPuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// ClusterStats is the /v1/statz view of the fleet cache tier. LocalEvals is
// reported even when the tier is disabled (the fleet benchmark's no-peer
// baseline needs it); everything else is zero until EnableCluster. The
// aggregate counters sum the per-peer client-side counters in Peers;
// ServedGets/AcceptedPuts count this replica's server side of the protocol.
type ClusterStats struct {
	Enabled         bool               `json:"enabled"`
	Self            string             `json:"self,omitempty"`
	Replicas        int                `json:"replicas,omitempty"`
	HedgeDelayMs    float64            `json:"hedge_delay_ms,omitempty"`
	TimeoutMs       float64            `json:"timeout_ms,omitempty"`
	LocalEvals      uint64             `json:"local_evals"`
	PeerHits        uint64             `json:"peer_hits"`
	PeerMisses      uint64             `json:"peer_misses"`
	Hedges          uint64             `json:"hedges"`
	HedgeWins       uint64             `json:"hedge_wins"`
	Fallbacks       uint64             `json:"fallbacks"`
	Errors          uint64             `json:"errors"`
	Pushes          uint64             `json:"pushes"`
	PushErrors      uint64             `json:"push_errors"`
	ServedGets      uint64             `json:"served_gets"`
	ServedGetsSpill uint64             `json:"served_gets_spill"`
	ServedGetMisses uint64             `json:"served_get_misses"`
	AcceptedPuts    uint64             `json:"accepted_puts"`
	RejectedPuts    uint64             `json:"rejected_puts"`
	Peers           []cluster.PeerStat `json:"peers,omitempty"`
}

// clusterStats assembles the statz block.
func (s *Server) clusterStats() ClusterStats {
	cs := ClusterStats{
		LocalEvals:      s.measureEvals.Load(),
		ServedGets:      s.servedGets.Load(),
		ServedGetsSpill: s.servedGetsSpill.Load(),
		ServedGetMisses: s.servedGetMisses.Load(),
		AcceptedPuts:    s.acceptedPuts.Load(),
		RejectedPuts:    s.rejectedPuts.Load(),
	}
	cl := s.cluster
	if cl == nil {
		return cs
	}
	cs.Enabled = true
	cs.Self = cl.Self()
	cs.Replicas = cl.Ring().Size()
	cs.HedgeDelayMs = float64(cl.HedgeDelay().Microseconds()) / 1e3
	cs.TimeoutMs = float64(cl.Timeout().Microseconds()) / 1e3
	cs.Peers = cl.Stats()
	for _, p := range cs.Peers {
		cs.PeerHits += p.Hits
		cs.PeerMisses += p.Misses
		cs.Hedges += p.Hedges
		cs.HedgeWins += p.HedgeWins
		cs.Fallbacks += p.Fallbacks
		cs.Errors += p.Errors
		cs.Pushes += p.Pushes
		cs.PushErrors += p.PushErrors
	}
	return cs
}
