package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
)

// ElasticRequest is the POST /v1/simulate/elastic body. It extends the
// faulty request with join events (in faults, kind "join") and a policy
// choice: replan salvage, or a redundancy scheme spelled like the cepsim
// -redundancy flag ("2", "replicated-3", "coded:2of4", with an optional
// "@margin" suffix such as "2@0.15"). Replan and redundancy are mutually
// exclusive; both absent means ride salvage.
type ElasticRequest struct {
	Profile    []float64     `json:"profile"`
	Lifespan   float64       `json:"lifespan"`
	Params     *model.Params `json:"params,omitempty"`
	Faults     []fault.Fault `json:"faults,omitempty"`
	Replan     bool          `json:"replan,omitempty"`
	Redundancy string        `json:"redundancy,omitempty"`
	// RhoJitter perturbs each machine's realized ρ by up to the given
	// fraction (deterministically, from Seed) — the unpredicted-straggler
	// regime where redundancy earns its overhead.
	RhoJitter float64 `json:"rho_jitter,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

// decodeElasticRequest parses and fully validates a /v1/simulate/elastic
// body against the given default parameters, under the same profile and
// fault-count limits as /v1/simulate/faulty. Like decodeFaultyRequest it
// is a fuzz surface: any body either yields a simulatable input or a
// descriptive error — never a panic, never NaN/±Inf smuggled through.
func decodeElasticRequest(defaults model.Params, body []byte) (m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, pol sim.ElasticPolicy, opt sim.Options, err error) {
	var req ElasticRequest
	if err = json.Unmarshal(body, &req); err != nil {
		err = fmt.Errorf("invalid JSON: %w", err)
		return
	}
	m = defaults
	if req.Params != nil {
		m = *req.Params
	}
	if err = m.Validate(); err != nil {
		return
	}
	if len(req.Profile) > MaxFaultyProfile {
		err = fmt.Errorf("profile of %d computers exceeds the limit of %d", len(req.Profile), MaxFaultyProfile)
		return
	}
	if p, err = profile.New(req.Profile...); err != nil {
		return
	}
	if !(req.Lifespan > 0) || math.IsInf(req.Lifespan, 0) {
		err = fmt.Errorf("lifespan %v must be positive and finite", req.Lifespan)
		return
	}
	lifespan = req.Lifespan
	if len(req.Faults) > MaxFaults {
		err = fmt.Errorf("%d faults exceed the limit of %d", len(req.Faults), MaxFaults)
		return
	}
	plan = fault.Plan{Faults: req.Faults}
	for i := range plan.Faults {
		f := &plan.Faults[i]
		if (f.Kind == fault.Outage || f.Kind == fault.Blackout) && f.Until == 0 {
			f.Until = math.Inf(1)
		}
	}
	if err = plan.Validate(len(p)); err != nil {
		return
	}
	pol.Replan = req.Replan
	if pol.Redundancy, err = sim.ParseRedundancy(req.Redundancy); err != nil {
		return
	}
	if err = pol.Validate(); err != nil {
		return
	}
	opt = sim.Options{RhoJitter: req.RhoJitter, Seed: req.Seed}
	if err = opt.Validate(); err != nil {
		return
	}
	return
}

func (s *Server) handleSimulateElastic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	m, p, lifespan, plan, pol, opt, err := decodeElasticRequest(s.Defaults, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.elasticRequests.Add(1)
	if pol.Redundancy.Enabled() {
		s.redundantRequests.Add(1)
	}
	rep, err := sim.SimulateElastic(r.Context(), m, p, lifespan, plan, pol, opt)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadlines.Add(1)
			writeError(w, http.StatusGatewayTimeout, "simulation exceeded the request deadline")
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.countDecisions(rep.Decisions)
	writeJSON(w, http.StatusOK, rep)
}

// countDecisions folds one simulation's ride-vs-replan decision trail into
// the /v1/statz simulate counters.
func (s *Server) countDecisions(ds []sim.DecisionReport) {
	s.replanDecisions.Add(uint64(len(ds)))
	for _, d := range ds {
		if d.Replanned {
			s.replansAdopted.Add(1)
		}
	}
}
