package api

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Serving-path defaults. They bound resource usage under unattended
// operation: at most MaxConcurrent requests execute at once, at most
// QueueDepth more wait for a slot, and every admitted request carries a
// RequestTimeout deadline on its context.
const (
	DefaultMaxConcurrent  = 64
	DefaultQueueDepth     = 128
	DefaultRequestTimeout = 30 * time.Second
	DefaultRetryAfter     = time.Second
)

// ServingConfig tunes the hardening middleware that wraps every route (see
// Server.Handler). The zero value means "use the defaults"; set
// RequestTimeout negative to disable per-request deadlines.
type ServingConfig struct {
	// MaxConcurrent bounds simultaneously executing requests.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// MaxConcurrent; arrivals past the queue are shed with 429.
	QueueDepth int
	// RequestTimeout is the deadline attached to each request's context.
	// Handlers that compute for a long time (POST /v1/simulate/faulty)
	// observe it and give up with 504.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with shed (429) responses.
	RetryAfter time.Duration
}

func (c ServingConfig) withDefaults() ServingConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// initServing materializes the admission-control channels from the
// configured (or default) ServingConfig. Called once from Handler.
func (s *Server) initServing() {
	if s.runTokens != nil {
		return
	}
	s.serving = s.Serving.withDefaults()
	s.runTokens = make(chan struct{}, s.serving.MaxConcurrent)
	s.queueTokens = make(chan struct{}, s.serving.MaxConcurrent+s.serving.QueueDepth)
}

// wrap is the hardening chain applied outside the route mux: panic
// recovery outermost (so a fault anywhere yields a JSON 500, not a dropped
// connection), then bounded admission, then the per-request deadline.
func (s *Server) wrap(next http.Handler) http.Handler {
	return s.recoverer(s.admission(s.deadline(next)))
}

// recoverer converts a handler panic into a JSON 500 and counts it, instead
// of letting net/http kill the connection. http.ErrAbortHandler keeps its
// documented meaning and is re-raised.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				s.panics.Add(1)
				writeError(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// exemptFromAdmission lists the paths that must answer even when the server
// is saturated: liveness probes, the stats page an operator needs to
// diagnose the saturation, and the peer cache protocol — a saturated
// replica still answers peer gets cheaply (cache probe, no evaluation), and
// shedding them would convert fleet-wide hits into fleet-wide evaluations
// exactly when the fleet is busiest.
func exemptFromAdmission(path string) bool {
	return path == "/v1/healthz" || path == "/v1/statz" ||
		strings.HasPrefix(path, "/internal/peer/")
}

// admission enforces the bounded queue: a request first claims a queue
// token (shed with 429 + Retry-After when none remain), then waits for one
// of MaxConcurrent run slots, giving up with 503 if its deadline expires in
// line.
func (s *Server) admission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromAdmission(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.queueTokens <- struct{}{}:
		default:
			s.shed.Add(1)
			secs := int(s.serving.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "server at capacity; retry later")
			return
		}
		defer func() { <-s.queueTokens }()
		select {
		case s.runTokens <- struct{}{}:
		case <-r.Context().Done():
			s.deadlines.Add(1)
			writeError(w, http.StatusServiceUnavailable, "timed out waiting for an execution slot")
			return
		}
		defer func() { <-s.runTokens }()
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// deadline attaches the per-request timeout to the context. Handlers doing
// bounded work ignore it cheaply; the simulation endpoints poll it.
func (s *Server) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.serving.RequestTimeout <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.serving.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
