package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetero/internal/cluster"
	"hetero/internal/spill"
)

// testFleet is a fleet of in-process replicas behind real listeners.
type testFleet struct {
	servers []*Server
	http    []*httptest.Server
	addrs   []string
}

// newTestFleet starts n replicas, binds their listeners, then attaches the
// peer tier with the full membership — the late-bound EnableCluster order
// heterod and benchserve both use.
func newTestFleet(t *testing.T, n int, cfg func(i int) cluster.Config) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		s := NewServerCacheSize(256)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.http = append(f.http, ts)
		f.addrs = append(f.addrs, strings.TrimPrefix(ts.URL, "http://"))
	}
	for i, s := range f.servers {
		c := cluster.Config{Self: f.addrs[i], Peers: f.addrs, HedgeDelay: -1, Timeout: time.Second}
		if cfg != nil {
			c = cfg(i)
		}
		p, err := cluster.New(c)
		if err != nil {
			t.Fatal(err)
		}
		s.EnableCluster(p)
	}
	return f
}

// ownerIndex says which replica owns the canonical key of the given query on
// replica 0's ring (all rings agree).
func (f *testFleet) ownerIndex(t *testing.T, rawQuery string) int {
	t.Helper()
	s := f.servers[0]
	sc := &measureScratch{}
	m, status, msg := s.parseMeasureQuery(sc, rawQuery)
	if status != 0 {
		t.Fatalf("parse %q: %d %s", rawQuery, status, msg)
	}
	key := appendCanonicalKey(nil, m, sc.rhos)
	owner, _ := s.cluster.Owner(hashKey(key))
	for i, a := range f.addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in fleet %v", owner, f.addrs)
	return -1
}

// queryOwnedBy searches small profile queries until one's canonical key is
// owned by replica want and not (when distinct is true) by the toucher.
func (f *testFleet) queryOwnedBy(t *testing.T, want int) string {
	t.Helper()
	for seed := 0; seed < 1000; seed++ {
		q := fmt.Sprintf("profile=1,0.5,0.%03d", seed+100)
		if f.ownerIndex(t, q) == want {
			return q
		}
	}
	t.Fatal("no query found owned by the wanted replica")
	return ""
}

func clusterStatzOf(t *testing.T, s *Server) ClusterStats {
	t.Helper()
	w := httptest.NewRecorder()
	s.handleStatz(w, httptest.NewRequest(http.MethodGet, "/v1/statz", nil))
	var out StatzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("statz: %v", err)
	}
	return out.Cluster
}

// TestPeerFetchGolden pins the tier's core guarantee: a response served via
// a peer fetch is byte-identical to the one local evaluation produces, and
// the fetching replica runs zero evaluations for it.
func TestPeerFetchGolden(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	q := f.queryOwnedBy(t, 0)

	solo := NewServerCacheSize(16)
	status, want := solo.MeasureQuery(q)
	if status != 200 {
		t.Fatalf("solo status %d", status)
	}

	// Warm the owner, then ask the non-owner: its miss must resolve via the
	// peer tier, byte-identical.
	if status, body := f.servers[0].MeasureQuery(q); status != 200 || !bytes.Equal(body, want) {
		t.Fatalf("owner: status %d, body match %v", status, bytes.Equal(body, want))
	}
	status, got := f.servers[1].MeasureQuery(q)
	if status != 200 {
		t.Fatalf("peer fetch status %d", status)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer-fetched body differs:\n got %q\nwant %q", got, want)
	}
	if evals := f.servers[1].MeasureEvals(); evals != 0 {
		t.Fatalf("non-owner ran %d evaluations, want 0", evals)
	}
	cs := clusterStatzOf(t, f.servers[1])
	if cs.PeerHits != 1 || cs.Fallbacks != 0 {
		t.Fatalf("fetcher cluster stats: %+v", cs)
	}
	os := clusterStatzOf(t, f.servers[0])
	if os.ServedGets != 1 {
		t.Fatalf("owner served_gets = %d, want 1", os.ServedGets)
	}

	// A repeat on the fetcher is now a plain local hit: still identical, no
	// new peer traffic.
	if _, body := f.servers[1].MeasureQuery(q); !bytes.Equal(body, want) {
		t.Fatal("local re-hit after peer fetch differs")
	}
	if cs2 := clusterStatzOf(t, f.servers[1]); cs2.PeerHits != 1 {
		t.Fatalf("re-hit went back to the peer: %+v", cs2)
	}
}

// TestPeerPushWarmsOwner pins the push-on-fallback half of the convergence
// argument: when a non-owner evaluates (cold fleet), the owner is warmed
// without ever evaluating.
func TestPeerPushWarmsOwner(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	q := f.queryOwnedBy(t, 0)

	// Cold fleet; the non-owner touches first: peer miss, local evaluation,
	// push to the owner.
	status, want := f.servers[1].MeasureQuery(q)
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if evals := f.servers[1].MeasureEvals(); evals != 1 {
		t.Fatalf("toucher evals = %d, want 1", evals)
	}
	cs := clusterStatzOf(t, f.servers[1])
	if cs.PeerMisses != 1 || cs.Pushes != 1 || cs.PushErrors != 0 {
		t.Fatalf("toucher cluster stats: %+v", cs)
	}

	// The owner now serves from cache: zero evaluations fleet-wide beyond
	// the first.
	status, got := f.servers[0].MeasureQuery(q)
	if status != 200 || !bytes.Equal(got, want) {
		t.Fatalf("owner after push: status %d, match %v", status, bytes.Equal(got, want))
	}
	if evals := f.servers[0].MeasureEvals(); evals != 0 {
		t.Fatalf("owner evals = %d, want 0 (push should have warmed it)", evals)
	}
	os := clusterStatzOf(t, f.servers[0])
	if os.AcceptedPuts != 1 {
		t.Fatalf("owner accepted_puts = %d, want 1", os.AcceptedPuts)
	}
}

// TestPeerFallbackAllPeersDown pins the never-worse guarantee: with every
// peer dead, each request still answers 200 with the correct bytes via
// local evaluation.
func TestPeerFallbackAllPeersDown(t *testing.T) {
	// One live replica whose two "peers" are closed listeners.
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	d1 := strings.TrimPrefix(dead1.URL, "http://")
	d2 := strings.TrimPrefix(dead2.URL, "http://")
	dead1.Close()
	dead2.Close()

	s := NewServerCacheSize(64)
	p, err := cluster.New(cluster.Config{
		Self:       "127.0.0.1:1",
		Peers:      []string{"127.0.0.1:1", d1, d2},
		HedgeDelay: time.Millisecond,
		Timeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.EnableCluster(p)
	solo := NewServerCacheSize(64)

	sawPeerOwned := false
	for i := 0; i < 12; i++ {
		q := fmt.Sprintf("profile=1,0.75,0.%03d", i+200)
		_, want := solo.MeasureQuery(q)
		status, got := s.MeasureQuery(q)
		if status != 200 || !bytes.Equal(got, want) {
			t.Fatalf("query %d with peers down: status %d, match %v", i, status, bytes.Equal(got, want))
		}
		sc := &measureScratch{}
		m, _, _ := s.parseMeasureQuery(sc, q)
		if _, self := s.cluster.Owner(hashKey(appendCanonicalKey(nil, m, sc.rhos))); !self {
			sawPeerOwned = true
		}
	}
	if !sawPeerOwned {
		t.Fatal("no query was peer-owned; fallback path never exercised")
	}
	cs := clusterStatzOf(t, s)
	if cs.Errors == 0 || cs.Fallbacks == 0 {
		t.Fatalf("expected fetch errors + fallbacks with all peers down: %+v", cs)
	}
	if cs.LocalEvals != 12 {
		t.Fatalf("local_evals = %d, want 12 (every request evaluated locally)", cs.LocalEvals)
	}
}

// TestPeerEndpointValidation pins the protocol's guard rails.
func TestPeerEndpointValidation(t *testing.T) {
	// Without a tier attached: gets answer 404 (miss), puts are rejected.
	bare := NewServerCacheSize(16)
	h := bare.Handler()
	do := func(h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(method, path, bytes.NewReader(body)))
		return w
	}
	if w := do(h, http.MethodPost, cluster.PeerGetPath, []byte("cwhatever")); w.Code != http.StatusNotFound {
		t.Fatalf("get without tier: %d", w.Code)
	}
	if w := do(h, http.MethodPost, cluster.PeerPutPath, []byte("ckey\nbody")); w.Code != http.StatusBadRequest {
		t.Fatalf("put without tier: %d", w.Code)
	}
	if w := do(h, http.MethodGet, cluster.PeerGetPath, nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on peer get: %d", w.Code)
	}

	f := newTestFleet(t, 2, nil)
	s0, h0 := f.servers[0], f.http[0].Config.Handler

	// Malformed frames and unknown layers.
	for _, body := range [][]byte{nil, {'c'}, []byte("x123")} {
		if w := do(h0, http.MethodPost, cluster.PeerGetPath, body); w.Code != http.StatusBadRequest && w.Code != http.StatusNotFound {
			t.Fatalf("get %q: %d", body, w.Code)
		}
	}
	if w := do(h0, http.MethodPost, cluster.PeerPutPath, []byte("cnonewline")); w.Code != http.StatusBadRequest {
		t.Fatalf("put without newline: %d", w.Code)
	}

	// A put for a key this replica does not own is rejected.
	q := f.queryOwnedBy(t, 1) // owned by replica 1, offered to replica 0
	sc := &measureScratch{}
	m, _, _ := s0.parseMeasureQuery(sc, q)
	key := appendCanonicalKey(nil, m, sc.rhos)
	frame := append(append([]byte{cluster.LayerCanonical}, key...), '\n')
	frame = append(frame, []byte(`{"fake":1}`)...)
	if w := do(h0, http.MethodPost, cluster.PeerPutPath, frame); w.Code != http.StatusBadRequest {
		t.Fatalf("put for peer-owned key: %d", w.Code)
	}

	// A put whose key is not strictly canonical is rejected even on the
	// right owner.
	bogus := []byte("cnot-a-canonical-key\nbody")
	if w := do(h0, http.MethodPost, cluster.PeerPutPath, bogus); w.Code != http.StatusBadRequest {
		t.Fatalf("put with bogus key: %d", w.Code)
	}
	// Raw-layer puts below the front-layer threshold are rejected.
	small := append(append([]byte{cluster.LayerRaw}, []byte("profile=1,0.5")...), '\n')
	small = append(small, []byte("body")...)
	if w := do(h0, http.MethodPost, cluster.PeerPutPath, small); w.Code != http.StatusBadRequest {
		t.Fatalf("small raw put: %d", w.Code)
	}
	if cs := clusterStatzOf(t, s0); cs.RejectedPuts < 3 {
		t.Fatalf("rejected_puts = %d, want ≥3", cs.RejectedPuts)
	}
}

// TestPeerRawLayer exercises the raw-front peer path: a large exact spelling
// warmed on its raw-owner is served to the rest of the fleet without any
// parsing, byte-identical.
func TestPeerRawLayer(t *testing.T) {
	f := newTestFleet(t, 2, nil)

	// Build a ≥4096-byte query and find a spelling whose raw hash is owned
	// by replica 0 (vary a tail parameter to move the hash).
	var q string
	ownedBy0 := false
	for seed := 0; seed < 200 && !ownedBy0; seed++ {
		var sb strings.Builder
		sb.WriteString("profile=1")
		for i := 0; i < 700; i++ {
			fmt.Fprintf(&sb, ",0.%03d", 100+(i+seed)%800)
		}
		q = sb.String()
		if len(q) < rawFastPathMinQuery {
			t.Fatalf("query too short: %d", len(q))
		}
		owner, _ := f.servers[1].cluster.Owner(hashString(q))
		ownedBy0 = owner == f.addrs[0]
	}
	if !ownedBy0 {
		t.Fatal("no raw spelling owned by replica 0 found")
	}

	solo := NewServerCacheSize(16)
	_, want := solo.MeasureQuery(q)

	if status, body := f.servers[0].MeasureQuery(q); status != 200 || !bytes.Equal(body, want) {
		t.Fatalf("owner raw warm: %d", status)
	}
	status, got := f.servers[1].MeasureQuery(q)
	if status != 200 || !bytes.Equal(got, want) {
		t.Fatalf("raw peer fetch: status %d, match %v", status, bytes.Equal(got, want))
	}
	if evals := f.servers[1].MeasureEvals(); evals != 0 {
		t.Fatalf("raw fetcher evals = %d, want 0", evals)
	}
	if cs := clusterStatzOf(t, f.servers[1]); cs.PeerHits == 0 {
		t.Fatalf("no raw peer hit recorded: %+v", cs)
	}
}

// TestStatzUptimeAndBuild covers the fleet-operator statz additions.
func TestStatzUptimeAndBuild(t *testing.T) {
	s := NewServerCacheSize(16)
	_ = s.Handler()
	time.Sleep(10 * time.Millisecond)
	w := httptest.NewRecorder()
	s.handleStatz(w, httptest.NewRequest(http.MethodGet, "/v1/statz", nil))
	var out StatzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", out.UptimeSeconds)
	}
	if out.Build.GoVersion == "" {
		t.Fatal("build.go_version empty")
	}
	if !out.Cluster.Enabled && out.Cluster.Replicas != 0 {
		t.Fatalf("disabled cluster block reports replicas: %+v", out.Cluster)
	}
	// The block round-trips through real JSON (field names pinned).
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"uptime_seconds", "build", "cluster"} {
		if _, ok := raw[field]; !ok {
			t.Fatalf("statz missing %q", field)
		}
	}
}

// TestPeerGetDoesNotEvaluate pins the no-amplification property: a get for
// a cold key answers 404 without running an evaluation.
func TestPeerGetDoesNotEvaluate(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	q := f.queryOwnedBy(t, 0)
	sc := &measureScratch{}
	m, _, _ := f.servers[0].parseMeasureQuery(sc, q)
	key := appendCanonicalKey(nil, m, sc.rhos)

	resp, err := http.Post(f.http[0].URL+cluster.PeerGetPath, "application/octet-stream",
		bytes.NewReader(append([]byte{cluster.LayerCanonical}, key...)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold peer get: %d, want 404", resp.StatusCode)
	}
	if evals := f.servers[0].MeasureEvals(); evals != 0 {
		t.Fatalf("peer get triggered %d evaluations", evals)
	}
	if cs := clusterStatzOf(t, f.servers[0]); cs.ServedGetMisses != 1 {
		t.Fatalf("served_get_misses = %d, want 1", cs.ServedGetMisses)
	}
}

// TestPeerGetServesFromSpill: an owner that holds a key only on disk must
// still answer /internal/peer/get with the cached bytes — CRC-verified,
// with zero evaluations — instead of forcing the asking replica into a
// redundant local evaluation. This is what keeps the fleet's
// evals-per-key bound intact after the owner's memory tier turns over.
func TestPeerGetServesFromSpill(t *testing.T) {
	dir := t.TempDir()
	st, err := spill.Open(spill.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// The owner's memory tier holds ~2 entries, so filler traffic evicts
	// the key under test; write-through makes it durable at admission.
	s0 := NewServerWithCache(CacheConfig{Entries: 256, MaxBytes: 700, Shards: 1, Coalesce: true})
	s0.EnableSpillOptions(st, SpillOptions{WriteThrough: true})
	t.Cleanup(s0.CloseSpill)
	s1 := NewServerCacheSize(256)
	f := &testFleet{servers: []*Server{s0, s1}}
	for _, s := range f.servers {
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.http = append(f.http, ts)
		f.addrs = append(f.addrs, strings.TrimPrefix(ts.URL, "http://"))
	}
	for i, s := range f.servers {
		p, err := cluster.New(cluster.Config{Self: f.addrs[i], Peers: f.addrs, HedgeDelay: -1, Timeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		s.EnableCluster(p)
	}

	// Collect owner-owned queries: the first is the key under test, the
	// rest are the filler that evicts it from the owner's memory tier.
	// All are self-owned on s0, so warming them never touches the peer.
	var owned []string
	for seed := 0; seed < 2000 && len(owned) < 13; seed++ {
		q := fmt.Sprintf("profile=1,0.5,0.%03d", seed+100)
		if f.ownerIndex(t, q) == 0 {
			owned = append(owned, q)
		}
	}
	if len(owned) < 13 {
		t.Fatalf("found only %d owner-owned queries", len(owned))
	}
	q := owned[0]
	status, want := s0.MeasureQuery(q)
	if status != 200 {
		t.Fatalf("owner warm status %d", status)
	}
	sc := &measureScratch{}
	m, pstatus, msg := s0.parseMeasureQuery(sc, q)
	if pstatus != 0 {
		t.Fatalf("parse: %d %s", pstatus, msg)
	}
	key := appendCanonicalKey(nil, m, sc.rhos)
	waitSpill(t, "write-through offer to land", func() bool {
		_, ok := s0.spillGet(spillLayerCanonical, string(key))
		return ok
	})
	for _, fq := range owned[1:] {
		if status, _ := s0.MeasureQuery(fq); status != 200 {
			t.Fatalf("filler %q status %d", fq, status)
		}
	}
	if _, ok := s0.cache.Get(string(key)); ok {
		t.Fatal("key still memory-resident on the owner; test needs it disk-only")
	}
	ownerEvals := s0.MeasureEvals()

	// The non-owner's miss goes to the owner, whose memory misses but
	// whose spill tier serves the verified bytes — no evaluation anywhere.
	status, got := s1.MeasureQuery(q)
	if status != 200 {
		t.Fatalf("peer fetch status %d", status)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("spill-served peer body differs:\n got %q\nwant %q", got, want)
	}
	if evals := s1.MeasureEvals(); evals != 0 {
		t.Fatalf("non-owner ran %d evaluations, want 0", evals)
	}
	if evals := s0.MeasureEvals(); evals != ownerEvals {
		t.Fatalf("owner re-evaluated (%d -> %d) serving a disk-resident key", ownerEvals, evals)
	}
	cs := clusterStatzOf(t, s0)
	if cs.ServedGetsSpill != 1 {
		t.Fatalf("served_gets_spill = %d, want 1 (stats %+v)", cs.ServedGetsSpill, cs)
	}
	fcs := clusterStatzOf(t, s1)
	if fcs.PeerHits != 1 {
		t.Fatalf("fetcher peer_hits = %d, want 1", fcs.PeerHits)
	}
}
