package api

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"hetero/internal/profile"
	"hetero/internal/stats"
)

// TestMeasurePathMatchesEncodingJSON pins the hand encoder to the exact
// bytes json.Marshal produced before the zero-allocation rewrite: same
// field order, same float spellings, same trailing newline.
func TestMeasurePathMatchesEncodingJSON(t *testing.T) {
	s := NewServerCacheSize(0) // disabled cache: every call renders fresh
	rng := stats.NewRNG(99)
	queries := []string{
		"profile=1,0.5,0.25",
		"profile=1",
		"profile=1,0.5&tau=0.01",
		"profile=0.003,0.9995,1&tau=0.2&pi=1e-5&delta=0.25",
	}
	for i := 0; i < 40; i++ {
		n := 1 + int(rng.Uint64()%12)
		p := profile.RandomNormalized(rng, n)
		parts := make([]string, len(p))
		for j, rho := range p {
			parts[j] = strconv.FormatFloat(rho, 'g', -1, 64)
		}
		queries = append(queries, "profile="+strings.Join(parts, ","))
	}
	for _, q := range queries {
		status, body := s.MeasureQuery(q)
		if status != 200 {
			t.Fatalf("query %q: status %d", q, status)
		}
		// Re-derive the reference bytes through the pre-rewrite path.
		m := s.Defaults
		var out MeasureResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("query %q: body %q does not decode: %v", q, body, err)
		}
		values, _ := splitQueryForTest(q)
		if v, ok := values["tau"]; ok {
			m.Tau, _ = strconv.ParseFloat(v, 64)
		}
		if v, ok := values["pi"]; ok {
			m.Pi, _ = strconv.ParseFloat(v, 64)
		}
		if v, ok := values["delta"]; ok {
			m.Delta, _ = strconv.ParseFloat(v, 64)
		}
		p, err := profileFromString(values["profile"])
		if err != nil {
			t.Fatalf("query %q: reference profile parse: %v", q, err)
		}
		want, err := json.Marshal(measureResponse(m, p))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if string(body) != string(want) {
			t.Fatalf("query %q:\n got %q\nwant %q", q, body, want)
		}
	}
}

func splitQueryForTest(q string) (map[string]string, error) {
	out := map[string]string{}
	for _, pair := range strings.Split(q, "&") {
		k, v, _ := strings.Cut(pair, "=")
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out, nil
}

// TestAppendJSONFloatMatchesMarshal fuzzes the float encoder against
// encoding/json across magnitudes, including the e-06 → e-6 cleanup branch.
func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	rng := stats.NewRNG(7)
	cases := []float64{0, 1, -1, 0.5, 1e-6, 9.999e-7, 1e21, 9.99e20, 1e-9,
		-2.5e-8, 3.141592653589793, 1e300, 5e-324, math.MaxFloat64}
	for i := 0; i < 2000; i++ {
		mag := math.Pow(10, float64(int(rng.Uint64()%60))-30)
		cases = append(cases, (rng.Float64()*2-1)*mag)
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f); string(got) != string(want) {
			t.Fatalf("appendJSONFloat(%g) = %q, want %q", f, got, want)
		}
	}
}

// TestMeasureQueryParsingMatchesLegacy drives both the sliced parser (via
// MeasureQuery) and the legacy url.Values path (via profileFromString +
// paramsFromQuery semantics) over awkward queries and demands identical
// outcomes: same status, and for 200s the same body bytes.
func TestMeasureQueryParsingMatchesLegacy(t *testing.T) {
	s := NewServerCacheSize(0)
	cases := []struct {
		query  string
		status int
	}{
		{"profile=1,0.5,0.25", 200},
		{"profile=1%2C0.5", 200},            // escaped comma
		{"profile=1,+0.5", 200},             // '+' decodes to a trimmable space
		{"profile=1&profile=0.5", 200},      // first occurrence wins
		{"tau=0.01&profile=1,0.5", 200},     // order independence
		{"profile=1,0.5&unknown=x", 200},    // unknown params ignored
		{"profile=1,0.5&tau=", 200},         // empty param value skipped
		{"", 400},                           // missing everything
		{"profile=", 400},                   // empty profile
		{"profile=1,abc", 400},              // bad ρ
		{"profile=1,", 400},                 // trailing comma
		{"profile=1,-0.5", 400},             // negative ρ
		{"profile=1,2", 400},                // ρ above 1
		{"profile=1&tau=-1", 400},           // invalid params
		{"profile=1&tau=abc", 400},          // unparsable param
		{"profile=1;tau=2", 400},            // semicolon pair dropped → no profile
		{"profile=1%GG", 400},               // broken escape → pair dropped
		{"profile=1&tau=0.5&tau=junk", 200}, // later duplicates ignored
	}
	for _, tc := range cases {
		status, body := s.MeasureQuery(tc.query)
		if status != tc.status {
			t.Fatalf("query %q: status %d, want %d", tc.query, status, tc.status)
		}
		if status == 200 && !strings.Contains(string(body), `"x"`) {
			t.Fatalf("query %q: body %q", tc.query, body)
		}
	}
}

// TestMeasureCachedPathZeroAlloc is the tentpole's steady-state gate: with
// the cache warm, the measure hot path — raw-query parse, canonical key,
// shard lookup — performs zero allocations per request.
func TestMeasureCachedPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	s := NewServer()
	queries := []string{
		"profile=1,0.5,0.25",
		"profile=1,0.5,0.25&tau=0.01",
		"profile=0.9,0.8,0.7,0.6,0.5,0.4,0.3,0.2,0.1,1",
	}
	for _, q := range queries {
		if status, _ := s.MeasureQuery(q); status != 200 { // warm the cache
			t.Fatalf("warmup status for %q", q)
		}
	}
	for _, q := range queries {
		allocs := testing.AllocsPerRun(200, func() {
			status, _ := s.MeasureQuery(q)
			if status != 200 {
				t.Fatal("cached query failed")
			}
		})
		if allocs != 0 {
			t.Errorf("cached measure path for %q: %v allocs/op, want 0", q, allocs)
		}
	}
}

// TestMeasureMissPathBoundedAllocs bounds the miss path: evaluation, JSON
// encoding into pooled scratch, one owned copy for the cache, and the
// singleflight/LRU bookkeeping. The budget is deliberately loose — the gate
// exists to catch accidental O(n) or per-request regressions, not to pin
// the exact count.
func TestMeasureMissPathBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const missBudget = 24
	s := NewServerCacheSize(1 << 20) // no eviction during the run
	queries := make([]string, 0, 4096)
	for i := 0; i < cap(queries); i++ {
		queries = append(queries, fmt.Sprintf("profile=1,0.5,0.%04d", i+1))
	}
	idx := 0
	allocs := testing.AllocsPerRun(2000, func() {
		status, _ := s.MeasureQuery(queries[idx])
		if status != 200 {
			t.Fatal("miss query failed")
		}
		idx++
	})
	if allocs > missBudget {
		t.Errorf("miss path: %v allocs/op, budget %d", allocs, missBudget)
	}
}

// largeTestQuery builds a /v1/measure query long enough to engage the
// raw-query front layer (≥ rawFastPathMinQuery bytes).
func largeTestQuery(n int, seed uint64) string {
	rng := stats.NewRNG(seed)
	p := profile.RandomNormalized(rng, n)
	var b strings.Builder
	b.WriteString("profile=")
	for i, rho := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(rho, 'g', -1, 64))
	}
	return b.String()
}

// TestRawLayerLargeQueryHitZeroAlloc extends the steady-state gate to the
// raw-query front layer: a repeated large query resolves by probing the raw
// map with the RawQuery string itself — no parse, no key build, and no
// allocation.
func TestRawLayerLargeQueryHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	q := largeTestQuery(1024, 5)
	if len(q) < rawFastPathMinQuery {
		t.Fatalf("test query too short to engage the raw layer: %d bytes", len(q))
	}
	s := NewServer()
	if status, _ := s.MeasureQuery(q); status != 200 {
		t.Fatal("warmup failed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		status, _ := s.MeasureQuery(q)
		if status != 200 {
			t.Fatal("cached large query failed")
		}
	})
	if allocs != 0 {
		t.Errorf("raw-layer hit path: %v allocs/op, want 0", allocs)
	}
	// The repeats must have resolved at the raw layer, not re-parsed into
	// canonical hits.
	rawHits, _, _, _, _ := s.rawCache.statsFull()
	if rawHits == 0 {
		t.Error("no raw-layer hits recorded; large query did not take the fast path")
	}
}

// TestRawLayerSpellingsUnifyAtCanonicalLayer: two spellings of one cluster
// are distinct raw keys but one canonical key — the second spelling must
// raw-miss, canonical-hit, and serve byte-identical JSON.
func TestRawLayerSpellingsUnifyAtCanonicalLayer(t *testing.T) {
	q1 := largeTestQuery(1024, 6)
	// Respell without changing any float64: "0.5" → "5e-1" on the first rho
	// would need knowledge of the value; instead append a no-op duplicate
	// parameter, which changes the raw bytes but not the parse.
	q2 := q1 + "&profile=ignored-duplicate"
	s := NewServer()
	st1, b1 := s.MeasureQuery(q1)
	st2, b2 := s.MeasureQuery(q2)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("statuses %d, %d", st1, st2)
	}
	if string(b1) != string(b2) {
		t.Fatal("two spellings of one cluster served different bytes")
	}
	_, misses, _, _, _ := s.cache.statsFull()
	if misses != 1 {
		t.Fatalf("canonical misses = %d, want 1 (second spelling must unify)", misses)
	}
}

// TestRawLayerDoesNotCacheErrors: a malformed large query is answered 400
// through the raw layer's singleflight and must not leave a cached entry.
func TestRawLayerDoesNotCacheErrors(t *testing.T) {
	q := largeTestQuery(1024, 7) + ",not-a-number"
	if len(q) < rawFastPathMinQuery {
		t.Fatal("query too short for the raw layer")
	}
	s := NewServer()
	for i := 0; i < 3; i++ {
		if status, _ := s.MeasureQuery(q); status != 400 {
			t.Fatalf("attempt %d: status %d, want 400", i, status)
		}
	}
	if _, _, size, _, _ := s.rawCache.statsFull(); size != 0 {
		t.Fatalf("raw layer cached %d entries for an erroring query", size)
	}
}
