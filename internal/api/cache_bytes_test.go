package api

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheByteBudgetEviction: with a single shard and a tight byte budget,
// resident bytes must never exceed the budget, eviction must proceed from
// the cold end, and the bytes account must track every removal exactly.
func TestCacheByteBudgetEviction(t *testing.T) {
	c := newCache(cacheOptions{entries: 100, maxBytes: 100, shards: 1, coalesce: true})
	body := bytes.Repeat([]byte("x"), 27) // cost = 3 (key) + 27 = 30 per entry
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%02d", i), body)
		if ct := c.counters(); ct.bytes > 100 {
			t.Fatalf("after insert %d: resident bytes %d exceed budget 100", i, ct.bytes)
		}
	}
	ct := c.counters()
	if ct.size != 3 || ct.bytes != 90 {
		t.Fatalf("size %d bytes %d, want 3 entries / 90 bytes (floor(100/30))", ct.size, ct.bytes)
	}
	if ct.evicted != 7 {
		t.Fatalf("evicted %d, want 7", ct.evicted)
	}
	// LRU: only the three hottest keys survive.
	if _, ok := c.Get("k00"); ok {
		t.Fatal("coldest entry survived byte-budget eviction")
	}
	for _, k := range []string{"k07", "k08", "k09"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("hot entry %s evicted", k)
		}
	}
}

// TestCacheOversizedEntryRejected: an entry whose own cost exceeds the
// shard's whole byte budget must be rejected (counted, not inserted), and a
// stale smaller entry under the same key must be dropped rather than served.
func TestCacheOversizedEntryRejected(t *testing.T) {
	c := newCache(cacheOptions{entries: 10, maxBytes: 50, shards: 1, coalesce: true})
	c.Put("key", []byte("small"))
	if _, ok := c.Get("key"); !ok {
		t.Fatal("small entry not admitted")
	}
	c.Put("key", bytes.Repeat([]byte("y"), 200))
	if _, ok := c.Get("key"); ok {
		t.Fatal("oversized update left a stale body readable")
	}
	ct := c.counters()
	if ct.rejected != 1 {
		t.Fatalf("rejected %d, want 1", ct.rejected)
	}
	if ct.bytes != 0 || ct.size != 0 {
		t.Fatalf("rejection leaked residency: %d entries / %d bytes", ct.size, ct.bytes)
	}
}

// TestCacheUpdateInPlaceAdjustsBytes: re-putting a key with a different body
// size must adjust the bytes account by the delta, not double-count the key.
func TestCacheUpdateInPlaceAdjustsBytes(t *testing.T) {
	c := newCache(cacheOptions{entries: 10, maxBytes: 1000, shards: 1, coalesce: true})
	c.Put("k", bytes.Repeat([]byte("a"), 40))
	if ct := c.counters(); ct.bytes != 41 {
		t.Fatalf("bytes %d, want 41", ct.bytes)
	}
	c.Put("k", bytes.Repeat([]byte("b"), 10))
	ct := c.counters()
	if ct.bytes != 11 || ct.size != 1 {
		t.Fatalf("after shrink: %d entries / %d bytes, want 1 / 11", ct.size, ct.bytes)
	}
}

// TestServerCacheStaysUnderByteBudget is the acceptance-criterion memory
// regression test: a hostile large-n workload (hundreds of distinct
// profiles, plus some whose single entry exceeds any shard budget) against
// a server with a small -cache-bytes budget must keep every cache layer's
// resident bytes under the budget at all times, with evictions and
// rejections doing the bounding — not growth.
func TestServerCacheStaysUnderByteBudget(t *testing.T) {
	const budget = 64 << 10
	s := NewServerWithCache(CacheConfig{Entries: 256, MaxBytes: budget, Coalesce: true, Adaptive: true})
	checkBudgets := func(step string) {
		t.Helper()
		for name, c := range map[string]*responseCache{
			"canonical": s.cache, "raw": s.rawCache, "batchRaw": s.batchRawCache,
		} {
			if ct := c.counters(); ct.bytes > budget {
				t.Fatalf("%s: %s cache resident bytes %d exceed budget %d", step, name, ct.bytes, budget)
			}
		}
	}
	// Distinct medium profiles: admissible per shard, collectively far over
	// budget, so the byte bound must evict.
	for i := 0; i < 300; i++ {
		status, _ := s.MeasureQuery(measureQueryFor(randomRhos(64, uint64(1000+i))))
		if status != 200 {
			t.Fatalf("measure %d: status %d", i, status)
		}
		checkBudgets(fmt.Sprintf("medium %d", i))
	}
	// Hostile large-n queries: each canonical and raw entry exceeds any
	// shard's budget outright and must be rejected, not admitted.
	for i := 0; i < 8; i++ {
		status, _ := s.MeasureQuery(measureQueryFor(randomRhos(2048, uint64(2000+i))))
		if status != 200 {
			t.Fatalf("large measure %d: status %d", i, status)
		}
		checkBudgets(fmt.Sprintf("large %d", i))
	}
	// Distinct large batch bodies exercise the batch raw front the same way.
	for i := 0; i < 6; i++ {
		body := marshalBatch(t, [][]float64{randomRhos(256, uint64(3000+i)), randomRhos(256, uint64(3100+i))})
		if len(body) < batchRawMinBody {
			t.Fatalf("batch body %d too small (%d bytes) to engage the raw front", i, len(body))
		}
		if status, _, msg := s.BatchBody(body); status != 200 {
			t.Fatalf("batch %d: status %d: %s", i, status, msg)
		}
		checkBudgets(fmt.Sprintf("batch %d", i))
	}
	canon := s.cache.counters()
	if canon.evicted == 0 {
		t.Fatal("no evictions under a workload far over budget: the byte bound is not enforced")
	}
	if canon.rejected == 0 {
		t.Fatal("no rejections from over-budget large-n entries")
	}
}

// TestAdaptiveResizeExactlyOnce is the -race stress contract for
// contention-adaptive sharding: with checkEvery forced tiny so resizes
// interleave aggressively with lookups and fills, every key must still be
// computed exactly once, every cached body must survive migration intact,
// and the per-op counters must reconcile to the op count across resizes.
func TestAdaptiveResizeExactlyOnce(t *testing.T) {
	const (
		keyspace   = 512
		goroutines = 8
		iters      = 400
	)
	c := newCache(cacheOptions{entries: 4096, maxBytes: DefaultCacheBytes, coalesce: true, adaptive: true})
	c.checkEvery = 8 // force frequent resize evaluations
	startShards := c.Shards()
	var evals [keyspace]atomic.Int64
	bodyFor := func(k int) []byte { return []byte(fmt.Sprintf(`{"key":%d}`, k)) }
	keyFor := func(k int) string { return fmt.Sprintf("stress|%04d", k) }
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				// Strided so goroutine g covers every residue ≡ g (mod
				// goroutines): the union provably visits all keyspace keys.
				k := (g + it*goroutines) % keyspace
				key := keyFor(k)
				h := hashString(key)
				body, ok := c.lookupStr(h, key)
				if !ok {
					var err error
					body, _, err = c.fillStr(h, key, func() ([]byte, error) {
						evals[k].Add(1)
						return bodyFor(k), nil
					})
					if err != nil {
						t.Errorf("fill %s: %v", key, err)
						return
					}
				}
				if !bytes.Equal(body, bodyFor(k)) {
					t.Errorf("key %s served wrong body %q", key, body)
					return
				}
				c.maybeResize()
			}
		}(g)
	}
	wg.Wait()
	for k := range evals {
		if n := evals[k].Load(); n != 1 {
			t.Fatalf("key %d evaluated %d times, want exactly once", k, n)
		}
	}
	ct := c.counters()
	if ct.resizes == 0 || ct.shards <= startShards {
		t.Fatalf("no adaptive growth happened (resizes %d, shards %d→%d): the stress is vacuous",
			ct.resizes, startShards, ct.shards)
	}
	if ct.shards > adaptiveMaxShards {
		t.Fatalf("shards %d exceed adaptiveMaxShards %d", ct.shards, adaptiveMaxShards)
	}
	// Migration preserved every entry (capacity ≫ keyspace, so nothing was
	// legitimately evicted) and the counters reconcile exactly.
	if ct.size != keyspace || ct.evicted != 0 || ct.rejected != 0 {
		t.Fatalf("size %d evicted %d rejected %d, want %d/0/0", ct.size, ct.evicted, ct.rejected, keyspace)
	}
	if total := ct.hits + ct.misses + ct.coalesced; total != goroutines*iters {
		t.Fatalf("counters lost across migration: hits+misses+coalesced = %d, want %d", total, goroutines*iters)
	}
	for k := 0; k < keyspace; k++ {
		if body, ok := c.Get(keyFor(k)); !ok || !bytes.Equal(body, bodyFor(k)) {
			t.Fatalf("key %d lost or corrupted by migration", k)
		}
	}
}

// TestAdaptiveShardShrink: shard growth driven by a contention burst must
// reverse once the burst subsides — same traffic volume, but windows now
// close slowly (hotWindow 0 makes every crossing cold) and the idle
// threshold is already met, so pending evaluations halve the shard count
// back to the initial geometry without losing entries.
func TestAdaptiveShardShrink(t *testing.T) {
	c := newCache(cacheOptions{entries: 4096, maxBytes: DefaultCacheBytes, coalesce: true, adaptive: true})
	c.checkEvery = 8
	base := c.Shards()
	for i := 0; i < 4096; i++ {
		c.Put(fmt.Sprintf("burst%d", i), []byte("x"))
		c.maybeResize()
	}
	grown := c.Shards()
	if grown <= base {
		t.Fatalf("no growth under hot traffic (%d → %d): the shrink test is vacuous", base, grown)
	}
	c.hotWindow = 0  // every window now reads as cold
	c.shrinkIdle = 0 // and the cache counts as idle immediately
	for i := 0; i < 4096 && c.Shards() > base; i++ {
		c.Get(fmt.Sprintf("burst%d", i%64))
		c.maybeResize()
	}
	if got := c.Shards(); got != base {
		t.Fatalf("shards stuck at %d after contention subsided, want base %d", got, base)
	}
	if body, ok := c.Get("burst4095"); !ok || !bytes.Equal(body, []byte("x")) {
		t.Fatal("entry lost or corrupted by downward migration")
	}
	if c.counters().resizes < 2 {
		t.Fatalf("resizes %d cannot cover growth and shrink", c.counters().resizes)
	}
}

// TestAdaptiveShrinkExactlyOnce is the -race contract for downward resizes:
// with every window forced cold while goroutines lookup/fill a shared
// keyspace, migrations to fewer shards must interleave with the singleflight
// protocol without a key ever being evaluated twice, a body corrupted, or a
// counter lost.
func TestAdaptiveShrinkExactlyOnce(t *testing.T) {
	const (
		keyspace   = 256
		goroutines = 8
		iters      = 300
	)
	c := newCache(cacheOptions{entries: 4096, maxBytes: DefaultCacheBytes, coalesce: true, adaptive: true})
	c.checkEvery = 8
	base := c.Shards()
	for i := 0; i < 2048; i++ {
		c.Put(fmt.Sprintf("warm%d", i), []byte("w"))
		c.maybeResize()
	}
	grown := c.Shards()
	if grown <= base {
		t.Fatalf("no growth before the shrink stress (%d → %d)", base, grown)
	}
	preOps := c.counters()
	c.hotWindow = 0
	c.shrinkIdle = 0
	var evals [keyspace]atomic.Int64
	bodyFor := func(k int) []byte { return []byte(fmt.Sprintf(`{"cold":%d}`, k)) }
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := (g + it*goroutines) % keyspace
				key := fmt.Sprintf("cold|%04d", k)
				h := hashString(key)
				body, ok := c.lookupStr(h, key)
				if !ok {
					var err error
					body, _, err = c.fillStr(h, key, func() ([]byte, error) {
						evals[k].Add(1)
						return bodyFor(k), nil
					})
					if err != nil {
						t.Errorf("fill %s: %v", key, err)
						return
					}
				}
				if !bytes.Equal(body, bodyFor(k)) {
					t.Errorf("key %s served wrong body %q", key, body)
					return
				}
				c.maybeResize()
			}
		}(g)
	}
	wg.Wait()
	for k := range evals {
		if n := evals[k].Load(); n != 1 {
			t.Fatalf("key %d evaluated %d times across shrinks, want exactly once", k, n)
		}
	}
	got := c.Shards()
	if got >= grown || got < base {
		t.Fatalf("shards %d after cold stress, want in [%d, %d)", got, base, grown)
	}
	ct := c.counters()
	if delta := (ct.hits + ct.misses + ct.coalesced) - (preOps.hits + preOps.misses + preOps.coalesced); delta != goroutines*iters {
		t.Fatalf("counters lost across downward migration: delta %d, want %d", delta, goroutines*iters)
	}
}

// TestAdaptiveResizeRespectsFloors: growth must stop when halving per-shard
// capacity would drop below cacheMinPerShard, and explicit shard counts must
// never resize.
func TestAdaptiveResizeRespectsFloors(t *testing.T) {
	c := newCache(cacheOptions{entries: 32, maxBytes: 0, coalesce: true, adaptive: true})
	c.checkEvery = 1
	// entries=32 starts at 4 shards (8 entries each). Growing to 8 shards
	// would leave 4 < cacheMinPerShard entries per shard, so every pending
	// resize must be a no-op.
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte(strings.Repeat("z", 8)))
		c.maybeResize()
	}
	if got := c.Shards(); got > 32/cacheMinPerShard {
		t.Fatalf("shards %d violate the %d-entry-per-shard floor", got, cacheMinPerShard)
	}
	fixed := newCache(cacheOptions{entries: 4096, maxBytes: 0, shards: 2, coalesce: true})
	fixed.checkEvery = 1
	for i := 0; i < 100; i++ {
		fixed.Put(fmt.Sprintf("k%d", i), []byte("body"))
		fixed.maybeResize()
	}
	if got := fixed.Shards(); got != 2 {
		t.Fatalf("explicitly sharded cache resized to %d shards", got)
	}
}
