package api

import (
	"testing"

	"hetero/internal/stats"
)

// TestHashKeyHashStringAgree pins the invariant adaptive resizes depend on:
// hashKey over bytes and hashString over the equal string must produce the
// same shard hash, on both sides of the sampling cutoff and at the stride
// boundary lengths.
func TestHashKeyHashStringAgree(t *testing.T) {
	rng := stats.NewRNG(7)
	sizes := []int{0, 1, 31, hashSampleCutoff - 1, hashSampleCutoff,
		hashSampleCutoff + 1, hashSampleCutoff + hashSampleProbes,
		4096, 100_000}
	for _, n := range sizes {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Uint64())
		}
		if got, want := hashKey(b), hashString(string(b)); got != want {
			t.Fatalf("len %d: hashKey = %#x, hashString = %#x", n, got, want)
		}
	}
}

// TestHashSampledSpreadsParameterVariants checks the sample keeps the herd
// shapes sharded: long keys differing only in their head (canonical
// parameter prefix) or tail (sweep query suffix) must not collapse onto one
// hash value.
func TestHashSampledSpreadsParameterVariants(t *testing.T) {
	base := make([]byte, 50_000)
	for i := range base {
		base[i] = byte('a' + i%16)
	}
	seen := map[uint64]bool{}
	for v := 0; v < 64; v++ {
		head := append([]byte(nil), base...)
		head[5] = byte(v)
		seen[hashKey(head)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("head variants produced only %d distinct hashes", len(seen))
	}
	seen = map[uint64]bool{}
	for v := 0; v < 64; v++ {
		tail := append([]byte(nil), base...)
		tail[len(tail)-5] = byte(v)
		seen[hashKey(tail)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("tail variants produced only %d distinct hashes", len(seen))
	}
}
