// Package api exposes the library over HTTP as a small JSON service — the
// deployment face of the reproduction: a scheduler node (or a curious
// colleague with curl) can ask for cluster measures, optimal schedules, and
// budget designs without linking Go code.
//
// Endpoints (all GET unless noted):
//
//	GET  /v1/measure?profile=1,0.5,0.25[&tau=..&pi=..&delta=..]
//	     → X, HECR, work rate, moments
//	GET  /v1/compare?p1=..&p2=..            → winner + per-cluster measures
//	POST /v1/schedule {profile, lifespan}   → allocations + timeline
//	POST /v1/design {catalog, budget}       → knapsack-optimal composition
//	GET  /v1/speedup?profile=..&phi=|psi=   → which computer to upgrade (§3)
//	GET  /v1/healthz                        → liveness
//
// Parameters default to the paper's Table 1 environment.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"hetero/internal/catalog"
	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
)

// Server carries the default environment.
type Server struct {
	Defaults model.Params
}

// NewServer returns a server defaulting to Table 1 parameters.
func NewServer() *Server { return &Server{Defaults: model.Table1()} }

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/measure", s.handleMeasure)
	mux.HandleFunc("/v1/compare", s.handleCompare)
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/design", s.handleDesign)
	mux.HandleFunc("/v1/speedup", s.handleSpeedup)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// MeasureResponse is the /v1/measure payload.
type MeasureResponse struct {
	Profile  profile.Profile `json:"profile"`
	X        float64         `json:"x"`
	HECR     float64         `json:"hecr"`
	WorkRate float64         `json:"work_rate"`
	Mean     float64         `json:"mean"`
	Variance float64         `json:"variance"`
	GeoMean  float64         `json:"geo_mean"`
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m, err := s.paramsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := profileFromString(r.URL.Query().Get("profile"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, MeasureResponse{
		Profile:  p,
		X:        core.X(m, p),
		HECR:     core.HECR(m, p),
		WorkRate: core.WorkRate(m, p),
		Mean:     p.Mean(),
		Variance: p.Variance(),
		GeoMean:  p.GeoMean(),
	})
}

// CompareResponse is the /v1/compare payload.
type CompareResponse struct {
	P1     MeasureResponse `json:"p1"`
	P2     MeasureResponse `json:"p2"`
	Winner int             `json:"winner"` // 1, 2, or 0 for a tie
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m, err := s.paramsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p1, err := profileFromString(r.URL.Query().Get("p1"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "p1: "+err.Error())
		return
	}
	p2, err := profileFromString(r.URL.Query().Get("p2"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "p2: "+err.Error())
		return
	}
	resp := CompareResponse{Winner: 0}
	switch core.Compare(m, p1, p2) {
	case 1:
		resp.Winner = 1
	case -1:
		resp.Winner = 2
	}
	for _, pair := range []struct {
		dst *MeasureResponse
		p   profile.Profile
	}{{&resp.P1, p1}, {&resp.P2, p2}} {
		*pair.dst = MeasureResponse{
			Profile: pair.p, X: core.X(m, pair.p), HECR: core.HECR(m, pair.p),
			WorkRate: core.WorkRate(m, pair.p), Mean: pair.p.Mean(),
			Variance: pair.p.Variance(), GeoMean: pair.p.GeoMean(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ScheduleRequest is the /v1/schedule body.
type ScheduleRequest struct {
	Profile  []float64     `json:"profile"`
	Lifespan float64       `json:"lifespan"`
	Params   *model.Params `json:"params,omitempty"`
}

// ScheduleResponse is the /v1/schedule payload.
type ScheduleResponse struct {
	TotalWork   float64           `json:"total_work"`
	Allocations []float64         `json:"allocations"`
	Computers   []ScheduleSegment `json:"computers"`
}

// ScheduleSegment summarizes one computer's timeline.
type ScheduleSegment struct {
	Rho       float64 `json:"rho"`
	Work      float64 `json:"work"`
	RecvEnd   float64 `json:"recv_end"`
	BusyEnd   float64 `json:"busy_end"`
	ResultsAt float64 `json:"results_at"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ScheduleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	p, err := profile.New(req.Profile...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sched, err := schedule.BuildFIFO(m, p, req.Lifespan)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := ScheduleResponse{TotalWork: sched.TotalWork}
	for _, c := range sched.Computers {
		resp.Allocations = append(resp.Allocations, c.Work)
		resp.Computers = append(resp.Computers, ScheduleSegment{
			Rho:       c.Rho,
			Work:      c.Work,
			RecvEnd:   c.Segment(schedule.SegReceive).End,
			BusyEnd:   c.Segment(schedule.SegPack).End,
			ResultsAt: c.ResultsArrive,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// DesignRequest is the /v1/design body.
type DesignRequest struct {
	Catalog []catalog.Tier `json:"catalog"`
	Budget  int            `json:"budget"`
	Params  *model.Params  `json:"params,omitempty"`
}

// DesignResponse is the /v1/design payload.
type DesignResponse struct {
	Counts  []int           `json:"counts"`
	Cost    int             `json:"cost"`
	Profile profile.Profile `json:"profile"`
	X       float64         `json:"x"`
	HECR    float64         `json:"hecr"`
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req DesignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	design, err := catalog.Optimize(m, catalog.Catalog(req.Catalog), req.Budget)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DesignResponse{
		Counts:  design.Counts,
		Cost:    design.Cost,
		Profile: design.Profile,
		X:       design.X,
		HECR:    core.HECR(m, design.Profile),
	})
}

// SpeedupResponse is the /v1/speedup payload: which single computer to
// upgrade, per §3 of the paper.
type SpeedupResponse struct {
	Index     int             `json:"index"` // 0-based computer to upgrade
	After     profile.Profile `json:"after"`
	WorkRatio float64         `json:"work_ratio"`
	Mode      string          `json:"mode"` // "additive" or "multiplicative"
}

func (s *Server) handleSpeedup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m, err := s.paramsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := profileFromString(r.URL.Query().Get("profile"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := r.URL.Query()
	phiStr, psiStr := q.Get("phi"), q.Get("psi")
	var (
		choice core.SpeedupChoice
		mode   string
	)
	switch {
	case phiStr != "" && psiStr != "":
		writeError(w, http.StatusBadRequest, "pass exactly one of phi, psi")
		return
	case phiStr != "":
		phi, perr := strconv.ParseFloat(phiStr, 64)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad phi")
			return
		}
		choice, err = core.BestAdditive(m, p, phi)
		mode = "additive"
	case psiStr != "":
		psi, perr := strconv.ParseFloat(psiStr, 64)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad psi")
			return
		}
		choice, err = core.BestMultiplicative(m, p, psi)
		mode = "multiplicative"
	default:
		writeError(w, http.StatusBadRequest, "pass one of phi, psi")
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SpeedupResponse{
		Index: choice.Index, After: choice.After, WorkRatio: choice.WorkRatio, Mode: mode,
	})
}

// paramsFromQuery overlays tau/pi/delta query parameters on the defaults.
func (s *Server) paramsFromQuery(r *http.Request) (model.Params, error) {
	m := s.Defaults
	q := r.URL.Query()
	for _, f := range []struct {
		key string
		dst *float64
	}{{"tau", &m.Tau}, {"pi", &m.Pi}, {"delta", &m.Delta}} {
		if v := q.Get(f.key); v != "" {
			parsed, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return m, fmt.Errorf("bad %s: %v", f.key, err)
			}
			*f.dst = parsed
		}
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

func profileFromString(s string) (profile.Profile, error) {
	if s == "" {
		return nil, fmt.Errorf("missing profile")
	}
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ-value %q", part)
		}
		rhos = append(rhos, v)
	}
	return profile.New(rhos...)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
